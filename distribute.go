package ripple

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"ripple/internal/campaign/pool"
	"ripple/internal/dist"
	"ripple/internal/network"
	"ripple/internal/stats"
	"ripple/internal/trace"
)

// WorkerEnv marks a process as a spawned campaign worker. Distribute
// sets it on the workers it launches; a process that finds it set serves
// leased runs over stdin/stdout instead of coordinating, and exits when
// the campaign ends.
const WorkerEnv = "RIPPLE_DIST_WORKER"

// DistributeOptions controls Campaign.Distribute.
type DistributeOptions struct {
	// Workers is the number of local worker processes to spawn (required,
	// ≥ 1).
	Workers int
	// WorkerArgs are the arguments the spawned workers run with; nil uses
	// this process's own arguments (os.Args[1:]). The workers execute the
	// same program, which must reach Campaign.Distribute with an
	// identical Campaign value — see the re-exec contract on Distribute.
	WorkerArgs []string
	// Checkpoint, when non-empty, persists completed runs to this file so
	// an interrupted campaign can restart without losing them. With
	// Resume set the file must already exist and the campaign continues
	// from it (and keeps writing it); otherwise a fresh checkpoint is
	// started.
	Checkpoint string
	Resume     bool
	// LeaseTimeout reclaims runs from a stalled worker (0 = 2 minutes).
	LeaseTimeout time.Duration
	// Logf reports worker churn and checkpoint restores; nil discards.
	Logf func(format string, args ...any)
}

// Distribute executes the campaign's runs across locally spawned worker
// processes and returns seed-averaged results in scenario order,
// bit-identical to RunBatch on the same campaign. Every (scenario ×
// seed) run is an independently leased unit; workers that die or stall
// forfeit their leases to the survivors.
//
// The re-exec contract: each worker is this same executable, started
// with WorkerArgs and the WorkerEnv environment variable set. The
// program must construct the same Campaign and call Distribute again;
// finding WorkerEnv set, the call serves runs over stdin/stdout and then
// terminates the process — in a worker it never returns. Scenarios that
// set TraceJSONL run their trace pass locally in the coordinator, so
// trace output needs no cross-process plumbing.
func (c Campaign) Distribute(opt DistributeOptions) ([]*Result, error) {
	if len(c.Scenarios) == 0 {
		return nil, nil
	}
	cells, err := newBatchCells(c)
	if err != nil {
		return nil, err
	}
	if os.Getenv(WorkerEnv) != "" {
		serveBatchWorker(cells)
	}
	if opt.Workers < 1 {
		return nil, fmt.Errorf("ripple: Distribute: Workers = %d, need at least 1", opt.Workers)
	}
	var ck *dist.Checkpoint
	if opt.Checkpoint != "" {
		if opt.Resume {
			if ck, err = dist.LoadCheckpoint(opt.Checkpoint); err != nil {
				return nil, err
			}
		} else {
			ck = dist.NewCheckpoint(opt.Checkpoint)
		}
	}
	coord := dist.NewCoordinator(dist.Options{
		LeaseTimeout: opt.LeaseTimeout,
		Checkpoint:   ck,
		Logf:         opt.Logf,
	})
	argv := opt.WorkerArgs
	if argv == nil {
		argv = os.Args[1:]
	}
	ws, err := dist.SpawnWorkers(coord, opt.Workers,
		append([]string{os.Args[0]}, argv...), []string{WorkerEnv + "=1"})
	if err != nil {
		return nil, err
	}
	out, err := coord.RunGrid(dist.GridSpec{
		Fingerprint: cells.fp,
		NumCells:    len(cells.units),
		RunsPerCell: 1,
		Progress:    c.Progress,
	})
	coord.Close()
	if werr := ws.Wait(); werr != nil && err == nil && opt.Logf != nil {
		opt.Logf("ripple: %v", werr)
	}
	if err != nil {
		return nil, err
	}
	return cells.fold(c, out)
}

// serveBatchWorker is the worker side of the re-exec contract: serve
// leased runs on stdin/stdout, then exit the process.
func serveBatchWorker(cells *batchCells) {
	rw := struct {
		io.Reader
		io.Writer
	}{os.Stdin, os.Stdout}
	w, err := dist.NewWorker(rw, fmt.Sprintf("worker-%d", os.Getpid()))
	if err == nil {
		err = w.ServeGrid(cells)
	}
	if err != nil && err != dist.ErrShutdown {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// batchUnit is one leased run: a seed of a scenario.
type batchUnit struct{ sc, seed int }

// batchCells adapts a Campaign to the distributed execution layer: the
// flat cell index enumerates (scenario, seed) pairs, a cell's payload is
// its single run's network.Result (every field round-trips JSON
// exactly), and both sides derive the same fingerprint from the
// campaign's shape.
type batchCells struct {
	cfgs  []*network.Config
	seeds [][]uint64
	units []batchUnit
	fp    string
}

func newBatchCells(c Campaign) (*batchCells, error) {
	b := &batchCells{}
	h := sha256.New()
	fmt.Fprintf(h, "campaign %d\n", len(c.Scenarios))
	for i, s := range c.Scenarios {
		cfg, err := s.toConfig()
		if err != nil {
			if len(c.Scenarios) == 1 {
				return nil, err
			}
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		seeds := s.Seeds
		if len(seeds) == 0 {
			seeds = []uint64{1}
		}
		b.cfgs = append(b.cfgs, cfg)
		b.seeds = append(b.seeds, seeds)
		for j := range seeds {
			b.units = append(b.units, batchUnit{i, j})
		}
		fmt.Fprintf(h, "scenario %d stations %d scheme %d flows %d dur %d seeds %v\n",
			i, len(cfg.Positions), cfg.Scheme, len(cfg.Flows), cfg.Duration, seeds)
	}
	b.fp = fmt.Sprintf("%x", h.Sum(nil)[:16])
	return b, nil
}

// Fingerprint implements dist.CellSet.
func (b *batchCells) Fingerprint() string { return b.fp }

// NumCells implements dist.CellSet.
func (b *batchCells) NumCells() int { return len(b.units) }

// RunsPerCell implements dist.CellSet.
func (b *batchCells) RunsPerCell() int { return 1 }

// RunCell implements dist.CellSet: one seed of one scenario.
func (b *batchCells) RunCell(i int) (any, map[string]stats.State, error) {
	u := b.units[i]
	cfg := *b.cfgs[u.sc]
	cfg.Seed = b.seeds[u.sc][u.seed]
	res, err := network.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, dist.ResultStats([]*network.Result{res}), nil
}

// fold decodes the distributed payloads back into per-scenario per-seed
// results, runs any trace passes locally, and folds exactly as RunBatch
// does.
func (b *batchCells) fold(c Campaign, out *dist.GridOutput) ([]*Result, error) {
	perSeed := make([][]*network.Result, len(b.cfgs))
	for i := range perSeed {
		perSeed[i] = make([]*network.Result, len(b.seeds[i]))
	}
	for i, raw := range out.Payloads {
		u := b.units[i]
		if err := json.Unmarshal(raw, &perSeed[u.sc][u.seed]); err != nil {
			return nil, fmt.Errorf("ripple: distributed run %d payload: %w", i, err)
		}
	}
	// Trace passes stay local: the recorder hook writes to this process's
	// io.Writer, exactly as RunBatch's dedicated trace leaves do.
	recs := make([]*trace.Recorder, len(c.Scenarios))
	p := pool.Shared()
	if c.Parallel > 0 {
		p = pool.New(c.Parallel)
	}
	err := p.Do(len(c.Scenarios), func(i int) error {
		s := c.Scenarios[i]
		if s.TraceJSONL == nil {
			return nil
		}
		recs[i] = &trace.Recorder{W: s.TraceJSONL}
		cfg := *b.cfgs[i]
		cfg.Seed = b.seeds[i][0]
		cfg.Trace = recs[i].Hook()
		if _, err := network.Run(cfg); err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
		if err := recs[i].Err(); err != nil {
			return fmt.Errorf("scenario %d: ripple: trace write: %w", i, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(b.cfgs))
	for i := range results {
		results[i] = foldResult(b.cfgs[i], perSeed[i], recs[i])
	}
	return results, nil
}
