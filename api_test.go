package ripple

import (
	"math"
	"strings"
	"testing"
)

func TestRouteSetsExposed(t *testing.T) {
	cases := []struct {
		rs   RouteSet
		name string
	}{
		{Route0(), "ROUTE0"},
		{Route1(), "ROUTE1"},
		{Route2(), "ROUTE2"},
	}
	for _, c := range cases {
		if c.rs.Name != c.name {
			t.Errorf("route set name = %q, want %q", c.rs.Name, c.name)
		}
		for _, p := range []Path{c.rs.Flow1, c.rs.Flow2, c.rs.Flow3} {
			if len(p) < 2 {
				t.Errorf("%s has degenerate path %v", c.name, p)
			}
		}
	}
	// Table II spot checks through the public API.
	if r1 := Route1(); len(r1.Flow1) != 3 || r1.Flow1[1] != 1 {
		t.Errorf("ROUTE1 flow1 = %v, want [0 1 3]", r1.Flow1)
	}
	if r2 := Route2(); r2.Flow3[1] != 1 {
		t.Errorf("ROUTE2 flow3 = %v, want [5 1 7]", r2.Flow3)
	}
}

func TestLineWithCrossExposed(t *testing.T) {
	top, main, cross := LineWithCrossTopology(4)
	if len(main) != 5 || len(cross) != 4 {
		t.Fatalf("main %v cross %v", main, cross)
	}
	if len(top.Positions) != 8 {
		t.Fatalf("stations = %d", len(top.Positions))
	}
}

func TestScenarioMaxAggregationOverride(t *testing.T) {
	top, path := LineTopology(2)
	base := Scenario{
		Topology: top,
		Scheme:   SchemeRIPPLE,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration: Second,
		Radio:    IdealRadio(),
	}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	small := base
	small.MaxAggregation = 2
	limited, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if limited.Total.Mean >= full.Total.Mean {
		t.Fatalf("agg=2 (%.1f) should underperform agg=16 (%.1f)",
			limited.Total.Mean, full.Total.Mean)
	}
}

func TestScenarioMultiRateAndLowRate(t *testing.T) {
	top, path := LineTopology(2)
	base := Scenario{
		Topology: top,
		Scheme:   SchemeDCF,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration: Second,
		Radio:    DefaultRadio().WithLowRatePHY(),
	}
	slow, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.MultiRate = true
	boosted, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if boosted.Total.Mean <= slow.Total.Mean {
		t.Fatalf("multi-rate %.2f should beat fixed 6 Mbps %.2f",
			boosted.Total.Mean, slow.Total.Mean)
	}
}

func TestScenarioRTSThreshold(t *testing.T) {
	top, path := LineTopology(1)
	res, err := Run(Scenario{
		Topology:     top,
		Scheme:       SchemeAFR,
		Flows:        []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration:     Second,
		RTSThreshold: 1,
		Radio:        IdealRadio(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Mean <= 0 {
		t.Fatal("RTS-protected AFR delivered nothing")
	}
}

func TestRouterAPI(t *testing.T) {
	top := RoofnetTopology()
	r, err := NewRouter(top, DefaultRadio())
	if err != nil {
		t.Fatal(err)
	}
	path, err := r.Path(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 || path[0] != 0 || path[len(path)-1] != 8 {
		t.Fatalf("path = %v", path)
	}
	if etx := r.PathETX(path); etx < float64(len(path)-1) {
		t.Fatalf("PathETX = %.2f below hop count %d", etx, len(path)-1)
	}
	q := r.LinkQuality(path[0], path[1])
	if q <= 0 || q > 1 {
		t.Fatalf("LinkQuality = %v", q)
	}
	if _, err := NewRouter(top, DefaultRadio().WithBER(2)); err == nil {
		t.Fatal("invalid BER must error")
	}
	// The discovered route must actually carry traffic.
	res, err := Run(Scenario{
		Topology: top,
		Scheme:   SchemeRIPPLE,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration: Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Mean <= 0 {
		t.Fatal("ETX route carried nothing")
	}
}

func TestRouterIdealProfileMatchesGeometry(t *testing.T) {
	top, _ := LineTopology(3)
	r, err := NewRouter(top, IdealRadio())
	if err != nil {
		t.Fatal(err)
	}
	// With zero shadowing, adjacent 100 m links are perfect.
	if q := r.LinkQuality(0, 1); math.Abs(q-1) > 1e-9 {
		t.Fatalf("ideal 100m link quality = %v", q)
	}
	// A 300 m link is dead but a 200 m one is perfect with zero
	// shadowing, so the minimum-ETX path takes exactly one relay.
	p, err := r.Path(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("ideal-profile path = %v, want one intermediate relay", p)
	}
	if q := r.LinkQuality(p[1], p[2]); math.Abs(q-1) > 1e-9 {
		t.Fatalf("chosen hop quality = %v, want 1", q)
	}
}

func TestNetFlowTo(t *testing.T) {
	top, _ := LineTopology(3)
	net, err := NewNet(top, IdealRadio())
	if err != nil {
		t.Fatal(err)
	}
	f := net.FlowTo(0, 3, FTP{})
	if len(f.Path) < 2 || f.Path[0] != 0 || f.Path[len(f.Path)-1] != 3 {
		t.Fatalf("FlowTo path = %v", f.Path)
	}
	sc := net.Scenario(SchemeRIPPLE, f)
	if sc.Radio != net.Radio || len(sc.Topology.Positions) != 4 {
		t.Fatalf("Net.Scenario did not carry net state: %+v", sc)
	}
	sc.Duration = 500 * Millisecond
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Mean <= 0 {
		t.Fatal("endpoint-declared flow carried nothing")
	}
	if res.Flows[0].ID != 1 {
		t.Fatalf("auto-assigned flow ID = %d, want 1", res.Flows[0].ID)
	}
}

func TestNetFlowToBadEndpointsErrorAtRun(t *testing.T) {
	top, _ := LineTopology(2)
	net, err := NewNet(top, DefaultRadio())
	if err != nil {
		t.Fatal(err)
	}
	sc := net.Scenario(SchemeRIPPLE, net.FlowTo(0, 99, FTP{}))
	sc.Duration = 100 * Millisecond
	_, runErr := Run(sc)
	if runErr == nil {
		t.Fatal("unreachable destination must fail the run")
	}
	if !strings.Contains(runErr.Error(), "flow 1") || !strings.Contains(runErr.Error(), "0→99") {
		t.Fatalf("err = %v, want flow and endpoints named", runErr)
	}
}

func TestCBRIntervalThrottlesRate(t *testing.T) {
	top, path := LineTopology(1)
	base := Scenario{
		Topology: top,
		Scheme:   SchemeDCF,
		Duration: Second,
		Radio:    IdealRadio(),
	}
	saturated := base
	saturated.Flows = []Flow{{ID: 1, Path: path, Traffic: CBR{}}}
	full, err := Run(saturated)
	if err != nil {
		t.Fatal(err)
	}
	// 1000-byte packets every 10 ms = 0.8 Mbps offered load.
	paced := base
	paced.Flows = []Flow{{ID: 1, Path: path, Traffic: CBR{Interval: 10 * Millisecond}}}
	slow, err := Run(paced)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Total.Mean >= full.Total.Mean {
		t.Fatalf("paced CBR (%.2f) should be below saturation (%.2f)",
			slow.Total.Mean, full.Total.Mean)
	}
	if math.Abs(slow.Total.Mean-0.8) > 0.1 {
		t.Fatalf("paced CBR = %.3f Mbps, want ≈0.8", slow.Total.Mean)
	}
	// Halving the packet size halves the delivered rate.
	small := base
	small.Flows = []Flow{{ID: 1, Path: path, Traffic: CBR{Interval: 10 * Millisecond, PacketSize: 500}}}
	half, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half.Total.Mean-0.4) > 0.05 {
		t.Fatalf("500-byte paced CBR = %.3f Mbps, want ≈0.4", half.Total.Mean)
	}
}

func TestVoIPBitrateParameter(t *testing.T) {
	top, path := LineTopology(1)
	run := func(spec VoIP) *Result {
		t.Helper()
		res, err := Run(Scenario{
			Topology: top,
			Scheme:   SchemeDCF,
			Radio:    IdealRadio(),
			Flows:    []Flow{{ID: 1, Path: path, Traffic: spec}},
			Duration: 4 * Second,
			Seeds:    []uint64{1, 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	std := run(VoIP{})
	fat := run(VoIP{BitrateKbps: 192})
	if fat.Total.Mean <= std.Total.Mean {
		t.Fatalf("192 kbps codec (%.3f Mbps) should outcarry 96 kbps (%.3f Mbps)",
			fat.Total.Mean, std.Total.Mean)
	}
}

func TestWebParametersChangeWorkload(t *testing.T) {
	top, path := LineTopology(1)
	run := func(spec Web) *Result {
		t.Helper()
		res, err := Run(Scenario{
			Topology: top,
			Scheme:   SchemeDCF,
			Radio:    IdealRadio(),
			Flows:    []Flow{{ID: 1, Path: path, Traffic: spec}},
			Duration: 2 * Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	std := run(Web{})
	// Tiny transfers with no think time complete far more often.
	small := run(Web{MeanTransferBytes: 2e3, MeanOffTime: Millisecond})
	if small.Flows[0].Transfers.Mean <= std.Flows[0].Transfers.Mean {
		t.Fatalf("2 KB transfers completed %.0f, default 80 KB %.0f — want more",
			small.Flows[0].Transfers.Mean, std.Flows[0].Transfers.Mean)
	}
}
