package ripple

import (
	"math"
	"testing"
)

func TestRouteSetsExposed(t *testing.T) {
	cases := []struct {
		rs   RouteSet
		name string
	}{
		{Route0(), "ROUTE0"},
		{Route1(), "ROUTE1"},
		{Route2(), "ROUTE2"},
	}
	for _, c := range cases {
		if c.rs.Name != c.name {
			t.Errorf("route set name = %q, want %q", c.rs.Name, c.name)
		}
		for _, p := range []Path{c.rs.Flow1, c.rs.Flow2, c.rs.Flow3} {
			if len(p) < 2 {
				t.Errorf("%s has degenerate path %v", c.name, p)
			}
		}
	}
	// Table II spot checks through the public API.
	if r1 := Route1(); len(r1.Flow1) != 3 || r1.Flow1[1] != 1 {
		t.Errorf("ROUTE1 flow1 = %v, want [0 1 3]", r1.Flow1)
	}
	if r2 := Route2(); r2.Flow3[1] != 1 {
		t.Errorf("ROUTE2 flow3 = %v, want [5 1 7]", r2.Flow3)
	}
}

func TestLineWithCrossExposed(t *testing.T) {
	top, main, cross := LineWithCrossTopology(4)
	if len(main) != 5 || len(cross) != 4 {
		t.Fatalf("main %v cross %v", main, cross)
	}
	if len(top.Positions) != 8 {
		t.Fatalf("stations = %d", len(top.Positions))
	}
}

func TestScenarioMaxAggregationOverride(t *testing.T) {
	top, path := LineTopology(2)
	base := Scenario{
		Topology: top,
		Scheme:   SchemeRIPPLE,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: TrafficFTP}},
		Duration: Second,
		Radio:    RadioIdeal,
	}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	small := base
	small.MaxAggregation = 2
	limited, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if limited.TotalMbps >= full.TotalMbps {
		t.Fatalf("agg=2 (%.1f) should underperform agg=16 (%.1f)",
			limited.TotalMbps, full.TotalMbps)
	}
}

func TestScenarioMultiRateAndLowRate(t *testing.T) {
	top, path := LineTopology(2)
	base := Scenario{
		Topology:   top,
		Scheme:     SchemeDCF,
		Flows:      []Flow{{ID: 1, Path: path, Traffic: TrafficFTP}},
		Duration:   Second,
		LowRatePHY: true,
	}
	slow, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.MultiRate = true
	boosted, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if boosted.TotalMbps <= slow.TotalMbps {
		t.Fatalf("multi-rate %.2f should beat fixed 6 Mbps %.2f",
			boosted.TotalMbps, slow.TotalMbps)
	}
}

func TestScenarioRTSThreshold(t *testing.T) {
	top, path := LineTopology(1)
	res, err := Run(Scenario{
		Topology:     top,
		Scheme:       SchemeAFR,
		Flows:        []Flow{{ID: 1, Path: path, Traffic: TrafficFTP}},
		Duration:     Second,
		RTSThreshold: 1,
		Radio:        RadioIdeal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbps <= 0 {
		t.Fatal("RTS-protected AFR delivered nothing")
	}
}

func TestRouterAPI(t *testing.T) {
	top := RoofnetTopology()
	r, err := NewRouter(top, RadioDefault)
	if err != nil {
		t.Fatal(err)
	}
	path, err := r.Path(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 || path[0] != 0 || path[len(path)-1] != 8 {
		t.Fatalf("path = %v", path)
	}
	if etx := r.PathETX(path); etx < float64(len(path)-1) {
		t.Fatalf("PathETX = %.2f below hop count %d", etx, len(path)-1)
	}
	q := r.LinkQuality(path[0], path[1])
	if q <= 0 || q > 1 {
		t.Fatalf("LinkQuality = %v", q)
	}
	if _, err := NewRouter(top, RadioProfile(99)); err == nil {
		t.Fatal("unknown profile must error")
	}
	// The discovered route must actually carry traffic.
	res, err := Run(Scenario{
		Topology: top,
		Scheme:   SchemeRIPPLE,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: TrafficFTP}},
		Duration: Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbps <= 0 {
		t.Fatal("ETX route carried nothing")
	}
}

func TestRouterIdealProfileMatchesGeometry(t *testing.T) {
	top, _ := LineTopology(3)
	r, err := NewRouter(top, RadioIdeal)
	if err != nil {
		t.Fatal(err)
	}
	// With zero shadowing, adjacent 100 m links are perfect.
	if q := r.LinkQuality(0, 1); math.Abs(q-1) > 1e-9 {
		t.Fatalf("ideal 100m link quality = %v", q)
	}
	// A 300 m link is dead but a 200 m one is perfect with zero
	// shadowing, so the minimum-ETX path takes exactly one relay.
	p, err := r.Path(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("ideal-profile path = %v, want one intermediate relay", p)
	}
	if q := r.LinkQuality(p[1], p[2]); math.Abs(q-1) > 1e-9 {
		t.Fatalf("chosen hop quality = %v, want 1", q)
	}
}
