#!/bin/sh
# bench.sh — run the repo's key benchmarks and record them as BENCH_<n>.json.
#
# The benchmarks cover the perf-critical layers: the raw event core
# (EngineThroughput), a dense-topology figure (Fig3), the event-heavy
# hidden-terminal figure (Fig6b), the full campaign engine
# (CampaignSuitePooled), sparse city-scale world construction
# (WorldBuildCity; its dense O(N²) twin WorldBuildCityDense costs ~25 s per
# iteration and is not part of the routine set — run it by hand for a
# before/after pair, as BENCH_3.json records), the distributed
# campaign path (CampaignSingleProcess vs CampaignDistributed, the same
# 48-run campaign through RunBatch and through 4 spawned workers; on a
# multi-core machine the second approaches min(4, cores)× the first,
# on one core it measures the spawn + framing overhead), and the mobile
# epoch-world path (EpochRebuildCity's speedup_x is the per-epoch
# incremental rebuild vs from-scratch ratio at N=5k; EpochWorldMobile1k's
# B/op guards against a dense fallback sneaking into epoch derivation).
#
# Usage:
#   scripts/bench.sh [-short] [-count N] [-label LABEL] [-out FILE] [-enforce]
#
#   -short    run on the CI smoke budget (shrinks simulated durations)
#   -count N  repetitions per benchmark (default 3; the JSON keeps the min)
#   -label L  run label stored in the JSON (default: short|full)
#   -out F    JSON file to create or append to (default: next free BENCH_<n>.json)
#   -enforce  fail if scripts/bench_thresholds.txt is exceeded (CI gate)
#
# Appending to an existing file accumulates runs, so a before/after pair
# lands in one document: run once at the base commit with -label before,
# then after the change with -label after and the same -out.
set -eu
cd "$(dirname "$0")/.."

SHORT=""
COUNT=3
LABEL=""
OUT=""
ENFORCE=""
while [ $# -gt 0 ]; do
  case "$1" in
    -short) SHORT="-short" ;;
    -count) COUNT="$2"; shift ;;
    -label) LABEL="$2"; shift ;;
    -out) OUT="$2"; shift ;;
    -enforce) ENFORCE="-thresholds scripts/bench_thresholds.txt" ;;
    *) echo "usage: scripts/bench.sh [-short] [-count N] [-label LABEL] [-out FILE] [-enforce]" >&2; exit 2 ;;
  esac
  shift
done

if [ -z "$LABEL" ]; then
  if [ -n "$SHORT" ]; then LABEL=short; else LABEL=full; fi
fi
if [ -z "$OUT" ]; then
  n=1
  while [ -e "BENCH_$n.json" ]; do n=$((n + 1)); done
  OUT="BENCH_$n.json"
fi

PAT='^(BenchmarkEngineThroughput|BenchmarkFig3|BenchmarkFig6b|BenchmarkCampaignSuitePooled|BenchmarkWorldBuildCity|BenchmarkCampaignSingleProcess|BenchmarkCampaignDistributed|BenchmarkEpochRebuildCity|BenchmarkEpochWorldMobile1k)$'

echo "bench: pattern=$PAT count=$COUNT label=$LABEL out=$OUT ${SHORT:+(short)}" >&2
# Buffer through a temp file rather than a pipe: POSIX sh has no pipefail,
# and a benchmark that crashes mid-run must fail the script, not record a
# partial snapshot.
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
go test $SHORT -run '^$' -bench "$PAT" -benchmem -benchtime 1x -count "$COUNT" . > "$RAW"
go run ./scripts/benchjson -label "$LABEL" -out "$OUT" $ENFORCE ${SHORT:+-short} < "$RAW"
echo "bench: wrote $OUT" >&2
