#!/bin/sh
# check_pkgdoc.sh — fail if any Go package under internal/ (or the public
# root package) lacks a godoc package comment: a "// Package <name>" (or
# "// Command <name>" for mains) block immediately above the package clause
# in at least one non-test file.
#
# Usage: sh scripts/check_pkgdoc.sh   (from the repo root)
set -eu

fail=0
dirs=$(find internal -type d; echo .)
for d in $dirs; do
    # Only directories that actually contain non-test Go files.
    files=$(find "$d" -maxdepth 1 -name '*.go' ! -name '*_test.go' 2>/dev/null)
    [ -n "$files" ] || continue
    ok=0
    for f in $files; do
        # The doc comment must be contiguous with the package clause: find
        # the line "package X" and require the preceding line to be a
        # comment whose block starts with "// Package" or "// Command".
        if awk '
            /^package [a-zA-Z_]/ { pkgline = NR; exit }
            { lines[NR] = $0 }
            END {
                if (pkgline < 2) exit 1
                # Walk the comment block upward from the package clause.
                first = ""
                for (i = pkgline - 1; i >= 1; i--) {
                    if (lines[i] ~ /^\/\//) { first = lines[i]; continue }
                    break
                }
                if (first ~ /^\/\/ (Package|Command) /) exit 0
                exit 1
            }' "$f"; then
            ok=1
            break
        fi
    done
    if [ "$ok" -eq 0 ]; then
        echo "missing package comment: $d" >&2
        fail=1
    fi
done
exit $fail
