// Command benchjson converts `go test -bench` output on stdin into the
// repo's machine-readable BENCH_<n>.json format, appending a labelled run
// to an existing file so before/after trajectories accumulate in one
// document. It can also enforce regression thresholds (scripts/bench.sh
// -enforce uses this in CI).
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | \
//	    go run ./scripts/benchjson -label after -out BENCH_1.json \
//	    [-thresholds scripts/bench_thresholds.txt]
//
// Each run records, per benchmark, the minimum ns/op over the -count
// repetitions (minimum, not mean: scheduler noise only ever adds time)
// and the B/op, allocs/op and custom metrics of that fastest repetition.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark's result within a run.
type Bench struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labelled invocation of the benchmark suite.
type Run struct {
	Label      string            `json:"label"`
	Date       string            `json:"date"`
	Benchmarks map[string]*Bench `json:"benchmarks"`
}

// File is the BENCH_<n>.json document: a run trajectory.
type File struct {
	Runs []Run `json:"runs"`
}

func main() {
	label := flag.String("label", "bench", "label for this run (e.g. before, after, ci)")
	out := flag.String("out", "", "JSON file to create or append the run to (default stdout)")
	thresholds := flag.String("thresholds", "", "threshold file: lines of '<bench> <field> <limit> [short-only]' (limit '>=N' is a floor); violating any fails")
	short := flag.Bool("short", false, "the benchmarks ran on the -short budget (enables short-only thresholds)")
	delta := flag.String("delta", "", "print a markdown first→last run delta table for the given BENCH JSON and exit (no stdin read)")
	flag.Parse()

	if *delta != "" {
		if err := printDelta(*delta); err != nil {
			fatal(err)
		}
		return
	}

	run := Run{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]*Bench{},
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		// Pass through on stderr so CI logs keep the raw output without
		// corrupting the JSON document when -out is omitted (stdout).
		fmt.Fprintln(os.Stderr, line)
		b, name, ok := parseLine(line)
		if !ok {
			continue
		}
		if prev, exists := run.Benchmarks[name]; !exists || b.NsOp < prev.NsOp {
			run.Benchmarks[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(run.Benchmarks) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin"))
	}

	var doc File
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				fatal(fmt.Errorf("benchjson: %s: %w", *out, err))
			}
		}
	}
	doc.Runs = append(doc.Runs, run)
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if *thresholds != "" {
		if err := enforce(*thresholds, run, *short); err != nil {
			fatal(err)
		}
	}
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkEngineThroughput-8  1  33436583 ns/op  44305 events/run  10347928 B/op  186932 allocs/op
func parseLine(line string) (*Bench, string, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return nil, "", false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	b := &Bench{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, "", false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsOp = v
		case "B/op":
			b.BOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	if b.NsOp == 0 {
		return nil, "", false
	}
	return b, name, true
}

// printDelta renders the first→last run comparison of a BENCH JSON as a
// GitHub-flavored markdown table (the CI bench-smoke job appends it to
// the job summary). A single-run document prints that run's numbers with
// an empty delta column.
func printDelta(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if len(doc.Runs) == 0 {
		return fmt.Errorf("benchjson: %s: no runs", path)
	}
	first, last := doc.Runs[0], doc.Runs[len(doc.Runs)-1]
	fmt.Printf("**%s**: `%s` → `%s`\n\n", path, first.Label, last.Label)
	fmt.Println("| benchmark | field | " + first.Label + " | " + last.Label + " | Δ |")
	fmt.Println("| --- | --- | ---: | ---: | ---: |")
	names := make([]string, 0, len(last.Benchmarks))
	for name := range last.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := last.Benchmarks[name]
		a := first.Benchmarks[name]
		row := func(field string, av, bv float64) {
			if bv == 0 {
				return
			}
			deltaCol := ""
			from := ""
			if a != nil && av != 0 && len(doc.Runs) > 1 {
				deltaCol = fmt.Sprintf("%+.1f%%", 100*(bv-av)/av)
				from = fmt.Sprintf("%.4g", av)
			}
			fmt.Printf("| %s | %s | %s | %.4g | %s |\n", name, field, from, bv, deltaCol)
		}
		var av, avB, avA float64
		if a != nil {
			av, avB, avA = a.NsOp, a.BOp, a.AllocsOp
		}
		row("ns/op", av, b.NsOp)
		row("B/op", avB, b.BOp)
		row("allocs/op", avA, b.AllocsOp)
		metrics := make([]string, 0, len(b.Metrics))
		for m := range b.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			var amv float64
			if a != nil {
				amv = a.Metrics[m]
			}
			row(m, amv, b.Metrics[m])
		}
	}
	return nil
}

// enforce reads threshold lines "<bench> <field> <limit> [short-only]"
// (field one of ns_op, b_op, allocs_op, or a custom metric name) and fails
// if the run exceeds any of them. A limit of ">=N" is a floor instead:
// the run fails if the value drops below N — used for throughput metrics
// like runs/sec where regression means getting smaller. Missing
// benchmarks fail too: a silently-skipped benchmark must not pass the
// gate. Lines marked short-only gate only -short runs — used for
// macro-benchmarks whose per-op costs scale with the simulated duration.
func enforce(path string, run Run, short bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var failed []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[3] == "short-only" {
			if !short {
				continue
			}
			fields = fields[:3]
		}
		if len(fields) != 3 {
			return fmt.Errorf("benchjson: %s: bad threshold line %q (want '<bench> <field> <limit> [short-only]')", path, line)
		}
		limit := fields[2]
		floor := strings.HasPrefix(limit, ">=")
		if floor {
			limit = limit[2:]
		}
		maxV, err := strconv.ParseFloat(limit, 64)
		if err != nil {
			return fmt.Errorf("benchjson: %s: bad limit in %q: %w", path, line, err)
		}
		b, ok := run.Benchmarks[fields[0]]
		if !ok {
			failed = append(failed, fmt.Sprintf("%s: benchmark missing from run", fields[0]))
			continue
		}
		var got float64
		switch fields[1] {
		case "ns_op":
			got = b.NsOp
		case "b_op":
			got = b.BOp
		case "allocs_op":
			got = b.AllocsOp
		default:
			// A typo'd or absent metric must fail loudly: reading it as 0
			// would satisfy any threshold forever.
			v, ok := b.Metrics[fields[1]]
			if !ok {
				return fmt.Errorf("benchjson: %s: unknown field %q for %s (have ns_op, b_op, allocs_op%s)",
					path, fields[1], fields[0], metricNames(b))
			}
			got = v
		}
		if floor {
			if got < maxV {
				failed = append(failed, fmt.Sprintf("%s %s = %g below floor %g", fields[0], fields[1], got, maxV))
			}
		} else if got > maxV {
			failed = append(failed, fmt.Sprintf("%s %s = %g exceeds threshold %g", fields[0], fields[1], got, maxV))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("benchjson: thresholds exceeded:\n  %s", strings.Join(failed, "\n  "))
	}
	fmt.Fprintln(os.Stderr, "benchjson: all thresholds satisfied")
	return nil
}

// metricNames lists a benchmark's custom metrics for error messages.
func metricNames(b *Bench) string {
	var names []string
	for k := range b.Metrics {
		names = append(names, k)
	}
	if len(names) == 0 {
		return ""
	}
	return ", " + strings.Join(names, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
