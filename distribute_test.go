package ripple_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ripple"
)

// distCampaign is the campaign both the test and its re-exec'd workers
// construct: two scenarios, two seeds each, small enough to finish fast
// but with distinct per-flow results worth comparing.
func distCampaign() ripple.Campaign {
	mk := func(scheme ripple.Scheme) ripple.Scenario {
		top, path := ripple.LineTopology(3)
		return ripple.Scenario{
			Topology: top,
			Scheme:   scheme,
			Flows:    []ripple.Flow{{ID: 1, Path: path, Traffic: ripple.FTP{}}},
			Seeds:    []uint64{1, 2},
			Duration: 300 * ripple.Millisecond,
		}
	}
	return ripple.Campaign{Scenarios: []ripple.Scenario{
		mk(ripple.SchemeDCF), mk(ripple.SchemeRIPPLE),
	}}
}

// TestDistributeWorkerHelper is not a test: it is the program the
// spawned workers run (the standard re-exec helper pattern). With
// WorkerEnv set, Distribute serves leased runs on stdin/stdout and exits
// the process; without it, the helper is skipped.
func TestDistributeWorkerHelper(t *testing.T) {
	if os.Getenv(ripple.WorkerEnv) == "" {
		t.Skip("helper process for TestDistributeEqualsRunBatch")
	}
	distCampaign().Distribute(ripple.DistributeOptions{}) // never returns
}

// TestDistributeEqualsRunBatch is the public API's correctness bar:
// distributing a campaign over two spawned worker processes returns
// results deeply equal to RunBatch in-process.
func TestDistributeEqualsRunBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	c := distCampaign()
	want, err := ripple.RunBatch(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Distribute(ripple.DistributeOptions{
		Workers:    2,
		WorkerArgs: []string{"-test.run=TestDistributeWorkerHelper"},
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distributed results differ from RunBatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestDistributeCheckpointRoundTrip drives the public checkpoint path:
// a first distributed run writes the file; a resumed run restores every
// cell from it (no worker executes anything) and returns equal results.
func TestDistributeCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	c := distCampaign()
	want, err := ripple.RunBatch(c)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opts := ripple.DistributeOptions{
		Workers:    1,
		WorkerArgs: []string{"-test.run=TestDistributeWorkerHelper"},
		Checkpoint: path,
	}
	first, err := c.Distribute(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, want) {
		t.Error("first distributed run differs from RunBatch")
	}
	opts.Resume = true
	resumed, err := c.Distribute(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, want) {
		t.Error("resumed run differs from RunBatch")
	}
}

func TestDistributeValidates(t *testing.T) {
	if _, err := distCampaign().Distribute(ripple.DistributeOptions{}); err == nil {
		t.Error("Workers = 0 accepted")
	}
	if res, err := (ripple.Campaign{}).Distribute(ripple.DistributeOptions{}); err != nil || res != nil {
		t.Errorf("empty campaign: %v, %v", res, err)
	}
}
