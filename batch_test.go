package ripple

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func batchScenario(scheme Scheme, seeds ...uint64) Scenario {
	top, path := LineTopology(3)
	return Scenario{
		Topology: top,
		Scheme:   scheme,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: TrafficFTP}},
		Duration: 500 * Millisecond,
		Seeds:    seeds,
	}
}

func TestRunBatchMatchesIndividualRuns(t *testing.T) {
	scenarios := []Scenario{
		batchScenario(SchemeDCF, 1, 2),
		batchScenario(SchemeRIPPLE, 1, 2),
		batchScenario(SchemeAFR, 1, 2),
	}
	batch, err := RunBatch(Campaign{Scenarios: scenarios})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("results = %d", len(batch))
	}
	for i, s := range scenarios {
		solo, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], solo) {
			t.Errorf("scenario %d: batch result differs from individual run:\n%+v\nvs\n%+v",
				i, batch[i], solo)
		}
	}
}

func TestRunBatchDeterministicAcrossParallelism(t *testing.T) {
	scenarios := []Scenario{
		batchScenario(SchemeDCF, 1, 2, 3),
		batchScenario(SchemeRIPPLE, 1, 2, 3),
	}
	serial, err := RunBatch(Campaign{Scenarios: scenarios, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunBatch(Campaign{Scenarios: scenarios, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("parallelism changed batch results")
	}
}

func TestRunBatchReportsCIs(t *testing.T) {
	res, err := Run(batchScenario(SchemeRIPPLE, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbpsCI95 <= 0 {
		t.Errorf("TotalMbpsCI95 = %v, want > 0 over three distinct seeds", res.TotalMbpsCI95)
	}
	if res.Flows[0].ThroughputCI95 <= 0 {
		t.Errorf("ThroughputCI95 = %v, want > 0", res.Flows[0].ThroughputCI95)
	}
	// Single seed: no interval.
	one, err := Run(batchScenario(SchemeRIPPLE, 1))
	if err != nil {
		t.Fatal(err)
	}
	if one.TotalMbpsCI95 != 0 || one.Flows[0].ThroughputCI95 != 0 {
		t.Error("single-seed run must not report a CI")
	}
}

func TestRunBatchProgressAndEmpty(t *testing.T) {
	if res, err := RunBatch(Campaign{}); err != nil || res != nil {
		t.Fatalf("empty campaign = %v, %v", res, err)
	}
	var calls, lastTotal int
	_, err := RunBatch(Campaign{
		Scenarios: []Scenario{batchScenario(SchemeDCF, 1, 2)},
		Progress:  func(done, total int) { calls++; lastTotal = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || lastTotal != 2 {
		t.Fatalf("progress calls/total = %d/%d, want 2/2", calls, lastTotal)
	}
}

func TestRunBatchTracedScenario(t *testing.T) {
	var buf bytes.Buffer
	sc := batchScenario(SchemeRIPPLE, 1, 2)
	sc.TraceJSONL = &buf
	res, err := RunBatch(Campaign{Scenarios: []Scenario{sc}})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no trace written")
	}
	if len(res[0].AirtimePerNode) == 0 || res[0].BusyFraction <= 0 {
		t.Fatalf("airtime accounting missing: %+v", res[0])
	}
}

func TestRunBatchErrorNamesScenario(t *testing.T) {
	bad := batchScenario(SchemeRIPPLE, 1)
	bad.Scheme = Scheme(42)
	_, err := RunBatch(Campaign{Scenarios: []Scenario{batchScenario(SchemeDCF, 1), bad}})
	if err == nil {
		t.Fatal("bad scenario must fail the batch")
	}
	if got := err.Error(); got != "scenario 1: ripple: unknown scheme 42" {
		t.Fatalf("err = %q", got)
	}
}

func TestCompareRejectsTraceWriter(t *testing.T) {
	sc := batchScenario(SchemeDCF, 1)
	sc.TraceJSONL = &bytes.Buffer{}
	if _, err := Compare(sc, SchemeDCF, SchemeRIPPLE); err == nil {
		t.Fatal("Compare with TraceJSONL must error, not silently drop the trace")
	}
}

func TestCompareRunsSchemesInParallel(t *testing.T) {
	sc := batchScenario(0, 1)
	out, err := Compare(sc, SchemeDCF, SchemeRIPPLE, SchemeAFR)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("Compare = %v", out)
	}
	for _, label := range []string{"DCF", "RIPPLE", "AFR"} {
		if v, ok := out[label]; !ok || v <= 0 || math.IsNaN(v) {
			t.Errorf("Compare[%s] = %v, %v", label, v, ok)
		}
	}
	// Compare must agree with running each scheme alone.
	solo := sc
	solo.Scheme = SchemeRIPPLE
	res, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	if out["RIPPLE"] != res.TotalMbps {
		t.Errorf("Compare RIPPLE = %v, solo run = %v", out["RIPPLE"], res.TotalMbps)
	}
}
