package ripple

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

func batchScenario(scheme Scheme, seeds ...uint64) Scenario {
	top, path := LineTopology(3)
	return Scenario{
		Topology: top,
		Scheme:   scheme,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration: 500 * Millisecond,
		Seeds:    seeds,
	}
}

func TestRunBatchMatchesIndividualRuns(t *testing.T) {
	scenarios := []Scenario{
		batchScenario(SchemeDCF, 1, 2),
		batchScenario(SchemeRIPPLE, 1, 2),
		batchScenario(SchemeAFR, 1, 2),
	}
	batch, err := RunBatch(Campaign{Scenarios: scenarios})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("results = %d", len(batch))
	}
	for i, s := range scenarios {
		solo, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], solo) {
			t.Errorf("scenario %d: batch result differs from individual run:\n%+v\nvs\n%+v",
				i, batch[i], solo)
		}
	}
}

func TestRunBatchDeterministicAcrossParallelism(t *testing.T) {
	scenarios := []Scenario{
		batchScenario(SchemeDCF, 1, 2, 3),
		batchScenario(SchemeRIPPLE, 1, 2, 3),
	}
	serial, err := RunBatch(Campaign{Scenarios: scenarios, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunBatch(Campaign{Scenarios: scenarios, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("parallelism changed batch results")
	}
}

// Every metric of a multi-seed run must carry a populated interval; a
// single-seed run reports the bare value with N=1 and no interval.
func TestRunBatchReportsTypedMetrics(t *testing.T) {
	res, err := Run(batchScenario(SchemeRIPPLE, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	checkMetric := func(name string, m Metric, wantCI bool) {
		t.Helper()
		if m.N != 3 {
			t.Errorf("%s.N = %d, want 3", name, m.N)
		}
		if wantCI && m.CI95 <= 0 {
			t.Errorf("%s.CI95 = %v, want > 0 over three distinct seeds", name, m.CI95)
		}
		if m.Min > m.Mean || m.Mean > m.Max {
			t.Errorf("%s: Min %v ≤ Mean %v ≤ Max %v violated", name, m.Min, m.Mean, m.Max)
		}
	}
	checkMetric("Total", res.Total, true)
	checkMetric("Fairness", res.Fairness, false) // one flow: identically 1
	checkMetric("Events", res.Events, true)
	f := res.Flows[0]
	checkMetric("Throughput", f.Throughput, true)
	checkMetric("Delay", f.Delay, true)
	checkMetric("Reorder", f.Reorder, false)
	checkMetric("Delivered", f.Delivered, true)
	if f.Delay.Mean <= 0 {
		t.Errorf("Delay.Mean = %v ms, want > 0", f.Delay.Mean)
	}

	// Single seed: no interval, N=1, Min=Mean=Max.
	one, err := Run(batchScenario(SchemeRIPPLE, 1))
	if err != nil {
		t.Fatal(err)
	}
	if one.Total.CI95 != 0 || one.Flows[0].Throughput.CI95 != 0 {
		t.Error("single-seed run must not report a CI")
	}
	if one.Total.N != 1 || one.Total.Min != one.Total.Mean || one.Total.Max != one.Total.Mean {
		t.Errorf("single-seed Total = %+v", one.Total)
	}
}

func TestMetricString(t *testing.T) {
	if got := (Metric{Mean: 3.14159, N: 1}).String(); got != "3.14" {
		t.Errorf("single-sample Metric.String() = %q", got)
	}
	got := (Metric{Mean: 3.14159, CI95: 0.25, N: 3}).String()
	if !strings.Contains(got, "±") {
		t.Errorf("multi-sample Metric.String() = %q, want ± interval", got)
	}
}

func TestRunBatchProgressAndEmpty(t *testing.T) {
	if res, err := RunBatch(Campaign{}); err != nil || res != nil {
		t.Fatalf("empty campaign = %v, %v", res, err)
	}
	var calls, lastTotal int
	_, err := RunBatch(Campaign{
		Scenarios: []Scenario{batchScenario(SchemeDCF, 1, 2)},
		Progress:  func(done, total int) { calls++; lastTotal = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 || lastTotal != 2 {
		t.Fatalf("progress calls/total = %d/%d, want 2/2", calls, lastTotal)
	}
}

// Under Parallel: 1 the runs complete strictly in leaf order, so Progress
// must see done=1..total exactly once each, in order, with a constant
// total.
func TestRunBatchProgressOrderSerial(t *testing.T) {
	var dones []int
	var totals []int
	_, err := RunBatch(Campaign{
		Scenarios: []Scenario{
			batchScenario(SchemeDCF, 1, 2),
			batchScenario(SchemeRIPPLE, 1, 2, 3),
		},
		Parallel: 1,
		Progress: func(done, total int) { dones = append(dones, done); totals = append(totals, total) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(dones, want) {
		t.Fatalf("serial progress done sequence = %v, want %v", dones, want)
	}
	for _, total := range totals {
		if total != 5 {
			t.Fatalf("progress totals = %v, want all 5", totals)
		}
	}
}

func TestRunBatchTracedScenario(t *testing.T) {
	var buf bytes.Buffer
	sc := batchScenario(SchemeRIPPLE, 1, 2)
	sc.TraceJSONL = &buf
	res, err := RunBatch(Campaign{Scenarios: []Scenario{sc}})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no trace written")
	}
	if len(res[0].AirtimePerNode) == 0 || res[0].BusyFraction <= 0 {
		t.Fatalf("airtime accounting missing: %+v", res[0])
	}
}

// failWriter fails after the first write, like a full disk mid-trace.
type failWriter struct{ writes int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestRunBatchTraceWriterFailure(t *testing.T) {
	sc := batchScenario(SchemeRIPPLE, 1)
	sc.TraceJSONL = &failWriter{}
	_, err := RunBatch(Campaign{Scenarios: []Scenario{sc}})
	if err == nil {
		t.Fatal("failing trace writer must fail the batch")
	}
	if !strings.Contains(err.Error(), "trace write") || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want trace write failure naming the cause", err)
	}
	// In a multi-scenario campaign the error names the scenario.
	sc2 := batchScenario(SchemeRIPPLE, 1)
	sc2.TraceJSONL = &failWriter{}
	_, err = RunBatch(Campaign{Scenarios: []Scenario{batchScenario(SchemeDCF, 1), sc2}})
	if err == nil || !strings.Contains(err.Error(), "scenario 1:") {
		t.Fatalf("err = %v, want scenario-prefixed trace failure", err)
	}
}

func TestRunBatchErrorNamesScenario(t *testing.T) {
	bad := batchScenario(SchemeRIPPLE, 1)
	bad.Scheme = Scheme(42)
	_, err := RunBatch(Campaign{Scenarios: []Scenario{batchScenario(SchemeDCF, 1), bad}})
	if err == nil {
		t.Fatal("bad scenario must fail the batch")
	}
	if got := err.Error(); got != "scenario 1: ripple: unknown scheme 42" {
		t.Fatalf("err = %q", got)
	}
	// A bad flow spec is prefixed the same way.
	bad2 := batchScenario(SchemeRIPPLE, 1)
	bad2.Flows[0].Traffic = CBR{Interval: -1}
	_, err = RunBatch(Campaign{Scenarios: []Scenario{batchScenario(SchemeDCF, 1), bad2}})
	if err == nil || !strings.HasPrefix(err.Error(), "scenario 1: ") {
		t.Fatalf("err = %v, want scenario 1 prefix", err)
	}
	// Single-scenario batches (ripple.Run) keep errors unprefixed.
	_, err = RunBatch(Campaign{Scenarios: []Scenario{bad}})
	if err == nil || strings.Contains(err.Error(), "scenario") {
		t.Fatalf("single-scenario err = %v, want unprefixed", err)
	}
}

func TestCompareRejectsTraceWriter(t *testing.T) {
	sc := batchScenario(SchemeDCF, 1)
	sc.TraceJSONL = &bytes.Buffer{}
	if _, err := Compare(sc, SchemeDCF, SchemeRIPPLE); err == nil {
		t.Fatal("Compare with TraceJSONL must error, not silently drop the trace")
	}
}

func TestCompareReturnsFullResults(t *testing.T) {
	sc := batchScenario(0, 1, 2)
	out, err := Compare(sc, SchemeDCF, SchemeRIPPLE, SchemeAFR)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("Compare = %v", out)
	}
	for _, label := range []string{"DCF", "RIPPLE", "AFR"} {
		res, ok := out[label]
		if !ok || res.Total.Mean <= 0 || math.IsNaN(res.Total.Mean) {
			t.Fatalf("Compare[%s] = %+v, %v", label, res, ok)
		}
		// The full result is available per scheme: delay, fairness and
		// intervals without re-running.
		if res.Flows[0].Delay.Mean <= 0 || res.Total.CI95 <= 0 || res.Fairness.N != 2 {
			t.Errorf("Compare[%s] metrics incomplete: %+v", label, res)
		}
	}
	// Compare must agree with running each scheme alone.
	solo := sc
	solo.Scheme = SchemeRIPPLE
	res, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out["RIPPLE"], res) {
		t.Errorf("Compare RIPPLE = %+v, solo run = %+v", out["RIPPLE"], res)
	}
}
