package ripple

import "fmt"

// Net bundles a topology with its ETX router so flows can be declared by
// endpoints — the forwarder list between a source and destination is
// computed from the link model instead of threaded through by hand:
//
//	net, _ := ripple.NewNet(top, ripple.DefaultRadio())
//	res, err := ripple.Run(net.Scenario(ripple.SchemeRIPPLE,
//		net.FlowTo(0, 3, ripple.FTP{}),
//		net.FlowTo(5, 7, ripple.VoIP{}),
//	))
//
// The same Radio configures route discovery and the simulated medium, so
// the ETX metric always matches the channel the packets will see.
type Net struct {
	// Topology is the station layout the net was built over.
	Topology Topology
	// Radio is the propagation environment of both router and medium.
	Radio Radio
	// Routing is the route policy prefilled into scenarios built with
	// Scenario (zero = StaticRouting(); set with WithRouting).
	Routing Routing
	// Mobility is the motion model prefilled into scenarios built with
	// Scenario (zero = StaticMobility(); set with WithMobility).
	Mobility Mobility
	// Faults is the fault injection prefilled into scenarios built with
	// Scenario (zero = NoFaults(); set with WithFaults).
	Faults Faults

	router *Router
}

// NewNet builds the ETX link table for a topology under the given radio.
func NewNet(top Topology, r Radio) (*Net, error) {
	router, err := NewRouter(top, r)
	if err != nil {
		return nil, err
	}
	return &Net{Topology: top, Radio: r, router: router}, nil
}

// Router returns the net's ETX router, for path inspection beyond FlowTo.
func (n *Net) Router() *Router { return n.router }

// WithRouting sets the route policy scenarios built from this net will use
// and returns the net for chaining:
//
//	net, _ := ripple.NewNet(top, ripple.DefaultRadio())
//	sc := net.WithRouting(ripple.CongestionRouting()).Scenario(...)
//
// FlowTo keeps declaring flows over the minimum-ETX path either way — a
// dynamic policy re-routes from the same endpoints once the run starts.
func (n *Net) WithRouting(r Routing) *Net {
	n.Routing = r
	return n
}

// WithMobility sets the motion model scenarios built from this net will
// use and returns the net for chaining:
//
//	sc := net.WithMobility(ripple.WaypointMobility()).Scenario(...)
//
// FlowTo still declares flows over the initial topology's minimum-ETX
// path; under motion the run swaps routes at each epoch boundary.
func (n *Net) WithMobility(m Mobility) *Net {
	n.Mobility = m
	return n
}

// WithFaults sets the fault injection scenarios built from this net will
// use and returns the net for chaining:
//
//	sc := net.WithFaults(ripple.StationChurn(4*ripple.Second, 0)).Scenario(...)
//
// FlowTo still declares flows over the clean topology's minimum-ETX path;
// the run degrades it as the fault schedule unfolds.
func (n *Net) WithFaults(f Faults) *Net {
	n.Faults = f
	return n
}

// FlowTo declares a flow from src to dst carrying the given traffic, with
// the minimum-ETX path as its forwarder list. A route-discovery failure
// (unreachable destination, station outside the topology) is carried
// inside the returned Flow and surfaces, with the endpoints named, when
// the scenario runs — so flow declarations compose without per-call error
// checks. The flow's ID is assigned from its position in Scenario.Flows
// (see Flow.ID).
func (n *Net) FlowTo(src, dst NodeID, t TrafficSpec) Flow {
	path, err := n.router.Path(src, dst)
	if err != nil {
		return Flow{Traffic: t, err: fmt.Errorf("no route %d→%d: %w", src, dst, err)}
	}
	return Flow{Path: path, Traffic: t}
}

// Scenario assembles a scenario over this net: the topology and radio are
// prefilled so the run uses exactly the environment the routes were
// computed for. Tune the remaining knobs (Duration, Seeds, …) on the
// returned value.
func (n *Net) Scenario(scheme Scheme, flows ...Flow) Scenario {
	return Scenario{
		Topology: n.Topology,
		Radio:    n.Radio,
		Routing:  n.Routing,
		Mobility: n.Mobility,
		Faults:   n.Faults,
		Scheme:   scheme,
		Flows:    flows,
	}
}
