package ripple_test

// Distributed-campaign benchmarks: the same campaign through RunBatch
// (single process) and Distribute (4 spawned workers), both reporting
// runs/sec so BENCH_<n>.json records the scaling side by side. On a
// multi-core machine the distributed run approaches
// min(4, cores)× the single-process rate; on a single core it measures
// the protocol + process overhead instead (see docs/distributed.md).

import (
	"os"
	"testing"

	"ripple"
)

// benchDistCampaign is the workload: 8 scenarios × 6 seeds = 48 runs,
// on the same short per-run budget the campaign-suite benchmarks use.
func benchDistCampaign() ripple.Campaign {
	dur := 150 * ripple.Millisecond
	if testing.Short() {
		dur = 50 * ripple.Millisecond
	}
	var scenarios []ripple.Scenario
	for _, hops := range []int{2, 3, 4, 5} {
		for _, scheme := range []ripple.Scheme{ripple.SchemeDCF, ripple.SchemeRIPPLE} {
			top, path := ripple.LineTopology(hops)
			scenarios = append(scenarios, ripple.Scenario{
				Topology: top,
				Scheme:   scheme,
				Flows:    []ripple.Flow{{ID: 1, Path: path, Traffic: ripple.FTP{}}},
				Seeds:    []uint64{1, 2, 3, 4, 5, 6},
				Duration: dur,
			})
		}
	}
	return ripple.Campaign{Scenarios: scenarios}
}

func benchDistRuns(c ripple.Campaign) int {
	n := 0
	for _, s := range c.Scenarios {
		n += len(s.Seeds)
	}
	return n
}

// TestDistributeBenchHelper is the worker program for
// BenchmarkCampaignDistributed (re-exec helper pattern, not a test).
func TestDistributeBenchHelper(t *testing.T) {
	if os.Getenv(ripple.WorkerEnv) == "" {
		t.Skip("helper process for BenchmarkCampaignDistributed")
	}
	benchDistCampaign().Distribute(ripple.DistributeOptions{}) // never returns
}

// BenchmarkCampaignSingleProcess is the single-process baseline for the
// distributed comparison: the identical campaign through RunBatch.
func BenchmarkCampaignSingleProcess(b *testing.B) {
	c := benchDistCampaign()
	for i := 0; i < b.N; i++ {
		if _, err := ripple.RunBatch(c); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(benchDistRuns(c)*b.N)/secs, "runs/sec")
	}
}

// BenchmarkCampaignDistributed shards the same campaign across 4 worker
// processes per iteration (spawn, lease, stream, assemble — the full
// distributed path, process startup included).
func BenchmarkCampaignDistributed(b *testing.B) {
	c := benchDistCampaign()
	args := []string{"-test.run=TestDistributeBenchHelper"}
	if testing.Short() {
		// Workers must agree on the campaign shape, and the helper sizes
		// it off testing.Short.
		args = append(args, "-test.short")
	}
	for i := 0; i < b.N; i++ {
		if _, err := c.Distribute(ripple.DistributeOptions{Workers: 4, WorkerArgs: args}); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(benchDistRuns(c)*b.N)/secs, "runs/sec")
	}
}
