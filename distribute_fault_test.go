package ripple_test

import (
	"os"
	"reflect"
	"testing"

	"ripple"
)

// faultyCampaign exercises every fault mode across a distributed run: one
// scenario under station churn, one under a partition plus link flaps.
// Fault schedules draw from the fault seed, not the run seeds, so worker
// processes must reconstruct the exact same failure timeline from the
// campaign spec alone.
func faultyCampaign() ripple.Campaign {
	top, path := ripple.LineTopology(4)
	mk := func(f ripple.Faults) ripple.Scenario {
		return ripple.Scenario{
			Topology: top,
			Scheme:   ripple.SchemeRIPPLE,
			Flows:    []ripple.Flow{{ID: 1, Path: path, Traffic: ripple.FTP{}}},
			Seeds:    []uint64{1, 2},
			Duration: 500 * ripple.Millisecond,
			Faults:   f,
		}
	}
	return ripple.Campaign{Scenarios: []ripple.Scenario{
		mk(ripple.StationChurn(200*ripple.Millisecond, 100*ripple.Millisecond).
			WithEpoch(50 * ripple.Millisecond)),
		mk(ripple.LinkFlaps(2).
			WithPartition(100*ripple.Millisecond, 200*ripple.Millisecond).
			WithEpoch(50 * ripple.Millisecond).
			WithSeed(7)),
	}}
}

// TestDistributeFaultyWorkerHelper is the re-exec'd worker program for
// TestDistributeFaultyCampaign (see TestDistributeWorkerHelper).
func TestDistributeFaultyWorkerHelper(t *testing.T) {
	if os.Getenv(ripple.WorkerEnv) == "" {
		t.Skip("helper process for TestDistributeFaultyCampaign")
	}
	faultyCampaign().Distribute(ripple.DistributeOptions{}) // never returns
}

// TestDistributeFaultyCampaign pins the distributed-equals-local bar with
// fault injection on: leased runs on two worker processes must return
// results deeply equal to RunBatch in-process, crash timelines included.
func TestDistributeFaultyCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	c := faultyCampaign()
	want, err := ripple.RunBatch(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Distribute(ripple.DistributeOptions{
		Workers:    2,
		WorkerArgs: []string{"-test.run=TestDistributeFaultyWorkerHelper"},
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distributed faulty results differ from RunBatch:\ngot  %+v\nwant %+v", got, want)
	}
}
