package ripple

import (
	"ripple/internal/pkt"
	"ripple/internal/routing"
	"ripple/internal/topology"
)

// The topology constructors mirror the paper's layouts (see package
// topology for the geometry rationale).

// Fig1Topology returns the paper's eight-station multi-flow topology, with
// the three Table II route sets accessible via RouteSet.
func Fig1Topology() Topology { return fromInternal(topology.Fig1()) }

// LineTopology returns a straight line of hops+1 stations 100 m apart and
// the full-line path (Fig. 7(a)).
func LineTopology(hops int) (Topology, Path) {
	t, p := topology.Line(hops)
	return fromInternal(t), fromPath(p)
}

// LineWithCrossTopology returns the Fig. 7(b) layout: the main line plus a
// 3-hop cross flow through its middle station.
func LineWithCrossTopology(hops int) (Topology, Path, Path) {
	t, main, cross := topology.LineWithCross(hops)
	return fromInternal(t), fromPath(main), fromPath(cross)
}

// RegularTopology returns the Fig. 5(a) regular-collision layout: n
// parallel 3-hop flows all within carrier-sense range.
func RegularTopology(nFlows int) (Topology, []Path) {
	t, paths := topology.Regular(nFlows)
	out := make([]Path, len(paths))
	for i, p := range paths {
		out[i] = fromPath(p)
	}
	return fromInternal(t), out
}

// HiddenTopology returns the Fig. 5(b) hidden-collision layout: the main
// 3-hop flow plus nHidden single-hop interferer flows whose sources are
// hidden from the main source. Use HiddenRadio() with it.
func HiddenTopology(nHidden int) (Topology, Path, []Path) {
	t, main, hidden := topology.Hidden(nHidden)
	out := make([]Path, len(hidden))
	for i, p := range hidden {
		out[i] = fromPath(p)
	}
	return fromInternal(t), fromPath(main), out
}

// WigleTopology returns the Fig. 9 access-point topology, the eight Fig. 10
// flow paths, and the hidden S→R pair. Use HiddenRadio() for the ±hidden
// variants.
func WigleTopology() (Topology, []Path, Path) {
	t, flows, hidden := topology.Wigle()
	out := make([]Path, len(flows))
	for i, p := range flows {
		out[i] = fromPath(p)
	}
	return fromInternal(t), out, fromPath(hidden)
}

// RoofnetTopology returns the Fig. 11 rooftop mesh.
func RoofnetTopology() Topology { return fromInternal(topology.Roofnet()) }

// CityTopology returns a near-square jittered block-grid city of at least n
// stations — the city-scale random-geometric mesh behind the -scaling
// sweep. Equal (n, seed) pairs produce bit-identical layouts. Pair it with
// CityRadio(), whose tightened neighbor pruning keeps world construction
// and memory O(N·k) at these sizes.
func CityTopology(n int, seed uint64) Topology {
	t, _ := topology.CityN(n, seed)
	return fromInternal(t)
}

// RouteSet is one row of Table II: a predetermined route per flow of the
// Fig. 1 topology.
type RouteSet struct {
	Name  string
	Flow1 Path // 0 → 3
	Flow2 Path // 0 → 4
	Flow3 Path // 5 → 7
}

// Route0, Route1, Route2 return the Table II route sets.
func Route0() RouteSet { return fromRouteSet(routing.Route0()) }

// Route1 returns the second Table II route set.
func Route1() RouteSet { return fromRouteSet(routing.Route1()) }

// Route2 returns the third Table II route set.
func Route2() RouteSet { return fromRouteSet(routing.Route2()) }

func fromRouteSet(rs routing.RouteSet) RouteSet {
	return RouteSet{
		Name:  rs.Name,
		Flow1: fromPath(rs.Flow1),
		Flow2: fromPath(rs.Flow2),
		Flow3: fromPath(rs.Flow3),
	}
}

func fromInternal(t topology.Topology) Topology {
	out := Topology{Name: t.Name, Positions: make([]Position, len(t.Positions))}
	for i, p := range t.Positions {
		out.Positions[i] = Position{X: p.X, Y: p.Y}
	}
	return out
}

func fromPath(p routing.Path) Path {
	out := make(Path, len(p))
	for i, n := range p {
		out[i] = int(n)
	}
	return out
}

func pktNode(n NodeID) pkt.NodeID { return pkt.NodeID(n) }
