package ripple

import (
	"fmt"
	"strings"

	"ripple/internal/radio"
	"ripple/internal/topology"
)

// Radio describes the wireless environment of a scenario: a named
// propagation profile plus optional overrides. The zero value is
// DefaultRadio(). Build variants by chaining:
//
//	ripple.DefaultRadio().WithBER(1e-5)        // the paper's noisy channel
//	ripple.HiddenRadio()                       // hidden-terminal experiments
//	ripple.IdealRadio()                        // no shadowing, no bit errors
//	ripple.DefaultRadio().WithLowRatePHY()     // 6 Mbps PHY (Table III)
//
// The same Radio drives both route discovery (NewRouter, NewNet) and the
// simulation itself, so the ETX metric and the medium always agree.
type Radio struct {
	profile radioProfile
	// ber overrides the profile's bit error rate when berSet.
	ber     float64
	berSet  bool
	lowRate bool
	// prune overrides the profile's neighbor-pruning cutoff when pruneSet.
	prune    float64
	pruneSet bool
}

// radioPos aliases the simulator's position type for config assembly.
type radioPos = radio.Pos

type radioProfile int

const (
	radioDefault radioProfile = iota
	radioHidden
	radioIdeal
)

// DefaultRadio returns the paper's shadowing model: path-loss exponent 5,
// 8 dB deviation, 281 mW transmit power, ~258 m half-loss range, BER 1e-6.
func DefaultRadio() Radio { return Radio{profile: radioDefault} }

// HiddenRadio narrows carrier sensing (≈1.3× decode range) for the
// hidden-terminal scenarios, as the paper tunes per experiment.
func HiddenRadio() Radio { return Radio{profile: radioHidden} }

// IdealRadio disables shadowing and bit errors (for calibration).
func IdealRadio() Radio { return Radio{profile: radioIdeal} }

// CityRadio returns the profile for city-scale worlds (CityTopology): the
// default propagation model with neighbor pruning tightened to 3 shadowing
// sigmas, which keeps link-plan memory and build time O(N·k) at 10⁴+
// stations for a false-prune probability of ≈1.3e-3 per receiver draw.
func CityRadio() Radio { return DefaultRadio().WithPruneSigma(topology.CityPruneSigma) }

// WithBER returns a copy of the radio with the channel bit error rate set
// (the paper's "clear" channel is 1e-6, "noisy" is 1e-5). It overrides the
// profile's default — including IdealRadio's zero.
func (r Radio) WithBER(ber float64) Radio {
	r.ber = ber
	r.berSet = true
	return r
}

// WithLowRatePHY returns a copy of the radio with both PHY rates switched
// to 6 Mbps (the Table III setting).
func (r Radio) WithLowRatePHY() Radio {
	r.lowRate = true
	return r
}

// WithPruneSigma returns a copy of the radio with the medium's
// neighbor-pruning cutoff set, in shadowing standard deviations: receivers
// whose mean power is more than sigma deviations below the carrier-sense
// threshold are skipped entirely by the transmit fast path. 0 disables
// pruning, reproducing the exact (unpruned) medium bit for bit; the
// profile default of 6 is statistically indistinguishable from it
// (false-prune probability ≈ 1e−9 per receiver per frame) but much faster
// on sparse topologies.
func (r Radio) WithPruneSigma(sigma float64) Radio {
	r.prune = sigma
	r.pruneSet = true
	return r
}

// String names the radio configuration, e.g. "default(ber=1e-05,lowrate)".
func (r Radio) String() string {
	name := map[radioProfile]string{
		radioDefault: "default", radioHidden: "hidden", radioIdeal: "ideal",
	}[r.profile]
	var opts []string
	if r.berSet {
		opts = append(opts, fmt.Sprintf("ber=%g", r.ber))
	}
	if r.lowRate {
		opts = append(opts, "lowrate")
	}
	if r.pruneSet {
		opts = append(opts, fmt.Sprintf("prune=%g", r.prune))
	}
	if len(opts) == 0 {
		return name
	}
	return name + "(" + strings.Join(opts, ",") + ")"
}

// config resolves the profile and overrides into the simulator's radio
// configuration. It is the single profile→config mapping, shared by
// Scenario (the medium) and NewRouter/NewNet (the ETX link model), so the
// two can never disagree — the v1 API zeroed IdealRadio's bit error rate
// in one place but not the other.
func (r Radio) config() (radio.Config, error) {
	var rc radio.Config
	switch r.profile {
	case radioDefault:
		rc = radio.DefaultConfig()
	case radioHidden:
		rc = topology.HiddenRadio()
	case radioIdeal:
		rc = radio.DefaultConfig()
		rc.ShadowSigmaDB = 0
		rc.BitErrorRate = 0
	default:
		return radio.Config{}, fmt.Errorf("ripple: unknown radio profile %d", int(r.profile))
	}
	if r.berSet {
		if r.ber < 0 || r.ber >= 1 {
			return radio.Config{}, fmt.Errorf("ripple: bit error rate %g outside [0,1)", r.ber)
		}
		rc.BitErrorRate = r.ber
	}
	if r.pruneSet {
		if r.prune < 0 {
			return radio.Config{}, fmt.Errorf("ripple: prune sigma %g negative (0 disables pruning)", r.prune)
		}
		rc.PruneSigma = r.prune
	}
	return rc, nil
}
