package ripple

import (
	"fmt"
	"strings"

	"ripple/internal/network"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// Routing selects how flow routes — and thus the prioritised forwarder
// lists of the opportunistic schemes — are computed, mirroring the Radio
// pattern: named policies plus chainable options. The zero value is
// StaticRouting(): flows keep exactly the paths they were declared with
// (Net.FlowTo's minimum-ETX path, or an explicit Flow.Path), and nothing
// is recomputed during the run.
//
//	ripple.ETXRouting()                              // min-ETX from endpoints
//	ripple.CongestionRouting()                       // ORCD-style, routes around queues
//	ripple.CongestionRouting().WithAlpha(0.5)        // heavier backlog weight
//	ripple.CongestionRouting().WithEpoch(200 * ripple.Millisecond)
//	ripple.ETXRouting().WithForwarders(3)            // exactly 3 relays per route
//	ripple.ETXRouting().WithForwarders(2).WithPriority(ripple.PriorityNearDst)
//
// The same radio drives the policy's link metric and the simulated medium,
// so routes are always computed over the channel the packets will see.
type Routing struct {
	kind  network.RoutePolicyKind
	alpha float64
	epoch Time
	k     int
	rule  routing.SizingRule
}

// Priority selects which relays survive when WithForwarders resizes a
// route's candidate set.
type Priority int

const (
	// PrioritySpaced keeps evenly spaced relays along the route (default).
	PrioritySpaced Priority = iota
	// PriorityNearDst keeps the relays closest to the destination.
	PriorityNearDst
	// PriorityNearSrc keeps the relays closest to the source.
	PriorityNearSrc
)

// StaticRouting returns the default policy: declared flow paths, used as
// given and never recomputed. Equivalent to the zero Routing value.
func StaticRouting() Routing { return Routing{} }

// ETXRouting recomputes each flow's route as the minimum-ETX path between
// its endpoints at run start (De Couto et al.; the metric ExOR/MORE use).
// For flows declared with Net.FlowTo this reproduces the declared path; it
// matters when paths were written by hand or the radio changed.
func ETXRouting() Routing { return Routing{kind: network.RouteETX} }

// CongestionRouting routes around queue buildup, after Bhorkar et al.'s
// opportunistic routing with congestion diversity (ORCD): a link into a
// relay costs its ETX plus alpha per packet sitting in the relay's MAC
// queue, and routes are recomputed from live queue depths every epoch
// (default 500 ms; see WithEpoch, WithAlpha).
func CongestionRouting() Routing { return Routing{kind: network.RouteCongestion} }

// GeoRouting selects each relay by greedy geographic progress (Li et al.):
// from every hop, the next forwarder is the usable neighbor closest to the
// destination, with minimum-ETX recovery when greed stalls in a void. Under
// mobility the policy is rebuilt each epoch over that epoch's positions,
// which makes it the natural partner of WaypointMobility/MarkovMobility.
func GeoRouting() Routing { return Routing{kind: network.RouteGeo} }

// WithAlpha returns a copy with the congestion backlog weight set, in ETX
// units per queued packet (default 0.25). Only meaningful for
// CongestionRouting.
func (r Routing) WithAlpha(alpha float64) Routing {
	r.alpha = alpha
	return r
}

// WithEpoch returns a copy with the dynamic-policy recompute interval set
// (default 500 ms). Only meaningful for policies that react to load.
func (r Routing) WithEpoch(epoch Time) Routing {
	r.epoch = epoch
	return r
}

// WithForwarders returns a copy that forces every route to carry exactly
// min(k, available) intermediate relays: longer routes are truncated by the
// priority rule, shorter ones padded with off-route stations that make ETX
// progress toward the destination. k counts relays between the endpoints.
// This is the forwarder-list-sizing axis of Blomer & Jindal ("How many
// relays should there be?") — primarily an opportunistic-scheme knob, since
// padding lengthens the hop-by-hop walk of predetermined schemes.
func (r Routing) WithForwarders(k int) Routing {
	r.k = k
	return r
}

// WithPriority returns a copy with the relay-sizing priority rule set
// (default PrioritySpaced). Only meaningful together with WithForwarders.
func (r Routing) WithPriority(p Priority) Routing {
	switch p {
	case PriorityNearDst:
		r.rule = routing.SizeNearDst
	case PriorityNearSrc:
		r.rule = routing.SizeNearSrc
	default:
		r.rule = routing.SizeSpaced
	}
	return r
}

// String names the routing configuration for sweep labels, e.g.
// "congestion(alpha=0.5,epoch=200ms)" or "etx(k=3/neardst)".
func (r Routing) String() string {
	name := r.kind.String()
	var opts []string
	if r.alpha > 0 {
		opts = append(opts, fmt.Sprintf("alpha=%g", r.alpha))
	}
	if r.epoch > 0 {
		opts = append(opts, fmt.Sprintf("epoch=%v", r.epoch))
	}
	if r.k > 0 {
		k := fmt.Sprintf("k=%d", r.k)
		if r.rule != routing.SizeSpaced {
			k += "/" + r.rule.String()
		}
		opts = append(opts, k)
	}
	if len(opts) == 0 {
		return name
	}
	return name + "(" + strings.Join(opts, ",") + ")"
}

// spec resolves the public options into the simulator's routing spec.
func (r Routing) spec() network.RoutingSpec {
	return network.RoutingSpec{
		Kind:  r.kind,
		Alpha: r.alpha,
		Epoch: sim.Time(r.epoch),
		K:     r.k,
		Rule:  r.rule,
	}
}
