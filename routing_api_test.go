package ripple

import (
	"testing"

	"ripple/internal/network"
	"ripple/internal/routing"
)

func TestRoutingStrings(t *testing.T) {
	cases := map[string]Routing{
		"static":                         {},
		"etx":                            ETXRouting(),
		"congestion":                     CongestionRouting(),
		"congestion(alpha=0.5)":          CongestionRouting().WithAlpha(0.5),
		"congestion(epoch=200ms)":        CongestionRouting().WithEpoch(200 * Millisecond),
		"etx(k=3)":                       ETXRouting().WithForwarders(3),
		"etx(k=2/neardst)":               ETXRouting().WithForwarders(2).WithPriority(PriorityNearDst),
		"static(k=1/nearsrc)":            StaticRouting().WithForwarders(1).WithPriority(PriorityNearSrc),
		"congestion(alpha=0.5,epoch=1s)": CongestionRouting().WithAlpha(0.5).WithEpoch(Second),
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestRoutingSpecMapping(t *testing.T) {
	r := CongestionRouting().WithAlpha(0.4).WithEpoch(250 * Millisecond).
		WithForwarders(2).WithPriority(PriorityNearDst)
	spec := r.spec()
	want := network.RoutingSpec{
		Kind:  network.RouteCongestion,
		Alpha: 0.4,
		Epoch: 250 * Millisecond,
		K:     2,
		Rule:  routing.SizeNearDst,
	}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if z := (Routing{}).spec(); z != (network.RoutingSpec{}) {
		t.Fatalf("zero Routing must map to the zero spec, got %+v", z)
	}
}

func TestNetWithRoutingPrefillsScenario(t *testing.T) {
	top, _ := LineTopology(3)
	net, err := NewNet(top, DefaultRadio())
	if err != nil {
		t.Fatal(err)
	}
	r := CongestionRouting().WithForwarders(2)
	sc := net.WithRouting(r).Scenario(SchemeRIPPLE, net.FlowTo(0, 3, FTP{}))
	if sc.Routing != r {
		t.Fatalf("Scenario.Routing = %v, want %v", sc.Routing, r)
	}
	cfg, err := sc.toConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Routing.Kind != network.RouteCongestion || cfg.Routing.K != 2 {
		t.Fatalf("config routing = %+v", cfg.Routing)
	}
}

func TestScenarioRoutingRuns(t *testing.T) {
	top, _ := LineTopology(3)
	net, err := NewNet(top, DefaultRadio())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Routing{StaticRouting(), ETXRouting(), CongestionRouting(),
		ETXRouting().WithForwarders(1)} {
		sc := net.WithRouting(r).Scenario(SchemeRIPPLE, net.FlowTo(0, 3, CBR{}))
		sc.Duration = 200 * Millisecond
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if res.Total.Mean <= 0 {
			t.Fatalf("%v: no throughput", r)
		}
	}
}
