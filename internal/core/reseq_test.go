package core

import (
	"testing"

	"ripple/internal/forward"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// newRqHarness builds a Ripple with only the pieces the Rq path touches.
func newRqHarness(t *testing.T, opt Options) (*sim.Engine, *Ripple, *[]int64) {
	t.Helper()
	eng := sim.NewEngine()
	delivered := &[]int64{}
	env := forward.Env{
		Eng: eng,
		P:   phys.Default(),
		ID:  3,
		RNG: sim.NewRNG(1, 1),
		C:   &forward.Counters{},
		Deliver: func(p *pkt.Packet) {
			*delivered = append(*delivered, p.MacSeq)
		},
	}
	return eng, New(env, opt), delivered
}

func rqPkt(macSeq int64) *pkt.Packet {
	return &pkt.Packet{UID: uint64(macSeq) + 1, FlowID: 1, MacSeq: macSeq, Src: 0, Dst: 3, Bytes: 1000}
}

func TestRqDeliversInOrder(t *testing.T) {
	eng, r, got := newRqHarness(t, DefaultOptions())
	for _, s := range []int64{0, 1, 2, 3} {
		r.deliver(rqPkt(s))
	}
	eng.Run(sim.Second)
	want := []int64{0, 1, 2, 3}
	assertSeqs(t, *got, want)
}

func TestRqHoldsGapThenDrains(t *testing.T) {
	eng, r, got := newRqHarness(t, DefaultOptions())
	r.deliver(rqPkt(0))
	r.deliver(rqPkt(2)) // gap at 1
	r.deliver(rqPkt(3))
	if len(*got) != 1 {
		t.Fatalf("delivered %v before gap filled", *got)
	}
	r.deliver(rqPkt(1)) // retransmission arrives
	eng.Run(sim.Second)
	assertSeqs(t, *got, []int64{0, 1, 2, 3})
}

func TestRqHoldTimeoutSkipsAbandonedGap(t *testing.T) {
	opt := DefaultOptions()
	opt.RqHold = 10 * sim.Millisecond
	eng, r, got := newRqHarness(t, opt)
	r.deliver(rqPkt(0))
	r.deliver(rqPkt(2))
	r.deliver(rqPkt(3))
	eng.Run(sim.Second) // hold expires; seq 1 never comes
	assertSeqs(t, *got, []int64{0, 2, 3})
}

func TestRqCapOverflowSkips(t *testing.T) {
	opt := DefaultOptions()
	opt.RqCap = 4
	opt.RqHold = sim.Second * 100 // effectively never
	eng, r, got := newRqHarness(t, opt)
	r.deliver(rqPkt(0))
	for s := int64(2); s < 8; s++ { // 6 buffered > cap 4 forces a skip
		r.deliver(rqPkt(s))
	}
	eng.Run(sim.Second)
	if len(*got) < 5 {
		t.Fatalf("cap overflow did not skip: delivered %v", *got)
	}
	// Order must still be non-decreasing in MacSeq.
	for i := 1; i < len(*got); i++ {
		if (*got)[i] < (*got)[i-1] {
			t.Fatalf("out-of-order delivery %v", *got)
		}
	}
}

func TestRqDropsDuplicates(t *testing.T) {
	eng, r, got := newRqHarness(t, DefaultOptions())
	c := r.env.C
	r.deliver(rqPkt(0))
	r.deliver(rqPkt(0)) // dup of delivered
	r.deliver(rqPkt(2))
	r.deliver(rqPkt(2)) // dup of buffered
	r.deliver(rqPkt(1))
	eng.Run(sim.Second)
	assertSeqs(t, *got, []int64{0, 1, 2})
	if c.Duplicates != 2 {
		t.Fatalf("Duplicates = %d, want 2", c.Duplicates)
	}
}

func TestRqSeparateStreamsIndependent(t *testing.T) {
	eng, r, got := newRqHarness(t, DefaultOptions())
	a := rqPkt(0)
	b := &pkt.Packet{UID: 100, FlowID: 2, MacSeq: 0, Src: 5, Dst: 3}
	bGap := &pkt.Packet{UID: 101, FlowID: 2, MacSeq: 2, Src: 5, Dst: 3}
	r.deliver(a)
	r.deliver(bGap) // flow 2 has a gap...
	r.deliver(b)    // ...now seq 0 arrives
	r.deliver(rqPkt(1))
	eng.Run(sim.Second)
	// Flow 1 delivered 0,1; flow 2 delivered 0 and later (hold) 2.
	if len(*got) != 4 {
		t.Fatalf("delivered %d packets, want 4: %v", len(*got), *got)
	}
}

func TestRqDisabledPassesThrough(t *testing.T) {
	opt := DefaultOptions()
	opt.RqEnabled = false
	eng, r, got := newRqHarness(t, opt)
	r.deliver(rqPkt(2))
	r.deliver(rqPkt(0))
	eng.Run(sim.Second)
	assertSeqs(t, *got, []int64{2, 0}) // raw arrival order
}

func assertSeqs(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}
