package core

import (
	"testing"

	"ripple/internal/forward"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// harness wires real engine + medium + one Ripple per station.
type harness struct {
	eng       *sim.Engine
	med       *radio.Medium
	agents    []*Ripple
	counters  []forward.Counters
	delivered [][]*pkt.Packet
	frames    []*pkt.Frame // all transmissions, via medium trace
}

func idealRadio() radio.Config {
	c := radio.DefaultConfig()
	c.ShadowSigmaDB = 0
	c.BitErrorRate = 0
	return c
}

func newHarness(t *testing.T, positions []radio.Pos, rc radio.Config,
	paths map[int]routing.Path, opt Options) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine()}
	h.med = radio.NewMedium(h.eng, rc, phys.Default(), positions, sim.NewRNG(1, 1))
	h.med.Trace = func(_ sim.Time, ev string, node pkt.NodeID, f *pkt.Frame) {
		if ev == "tx" {
			h.frames = append(h.frames, f)
		}
	}
	routes := forward.NewRouteBook(5)
	for id, p := range paths {
		routes.Add(id, p)
	}
	h.agents = make([]*Ripple, len(positions))
	h.counters = make([]forward.Counters, len(positions))
	h.delivered = make([][]*pkt.Packet, len(positions))
	for i := range positions {
		i := i
		env := forward.Env{
			Eng:    h.eng,
			Med:    h.med,
			P:      phys.Default(),
			ID:     pkt.NodeID(i),
			RNG:    sim.NewRNG(9, 100+uint64(i)),
			Routes: routes,
			C:      &h.counters[i],
			Deliver: func(p *pkt.Packet) {
				h.delivered[i] = append(h.delivered[i], p)
			},
		}
		h.agents[i] = New(env, opt)
		h.med.Attach(pkt.NodeID(i), h.agents[i])
	}
	return h
}

func (h *harness) inject(from pkt.NodeID, flow, n int, dst pkt.NodeID) {
	for k := 0; k < n; k++ {
		p := &pkt.Packet{
			UID: uint64(flow)<<32 | uint64(k) + 1, FlowID: flow,
			Seq: int64(k), Bytes: 1000, Src: from, Dst: dst,
			Created: h.eng.Now(),
		}
		h.agents[from].Send(p)
	}
}

func linePositions(n int) []radio.Pos {
	out := make([]radio.Pos, n)
	for i := range out {
		out[i] = radio.Pos{X: float64(i * 100)}
	}
	return out
}

func TestRippleEndToEndDelivery(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 32, 3)
	h.eng.Run(100 * sim.Millisecond)
	if got := len(h.delivered[3]); got != 32 {
		t.Fatalf("delivered %d packets, want 32", got)
	}
	for i, p := range h.delivered[3] {
		if p.MacSeq != int64(i) {
			t.Fatalf("Rq order broken at %d: %v", i, p.MacSeq)
		}
	}
}

func TestRippleAggregatesSixteen(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 16, 3)
	h.eng.Run(100 * sim.Millisecond)
	if h.counters[0].TxData != 1 {
		t.Fatalf("source sent %d frames for 16 packets, want 1 aggregate", h.counters[0].TxData)
	}
}

// TestRippleOpportunisticSkip verifies the core mTXOP behaviour: with zero
// shadowing, station 2 (200 m) decodes the source's frame directly and
// relays first; station 1's lower-priority timer is cancelled by the
// sensed carrier, so station 1 never transmits a data relay.
func TestRippleOpportunisticSkip(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 4, 3)
	h.eng.Run(50 * sim.Millisecond)
	if len(h.delivered[3]) != 4 {
		t.Fatalf("delivered %d", len(h.delivered[3]))
	}
	for _, f := range h.frames {
		if f.Kind == pkt.Data && f.Tx == 1 {
			t.Fatal("station 1 relayed data despite station 2's higher priority")
		}
	}
	if h.counters[1].RelayCancels == 0 {
		t.Fatal("station 1 should have cancelled its relay timer")
	}
}

// TestRippleRelayChainWhenFarLinkFails forces the full hop-by-hop chain by
// spacing stations so only adjacent links decode (the Fig. 2 walkthrough).
func TestRippleRelayChainWhenFarLinkFails(t *testing.T) {
	// 180 m spacing: adjacent 180 m < 258 m decodes; 360 m does not.
	positions := []radio.Pos{{X: 0}, {X: 180}, {X: 360}, {X: 540}}
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, positions, idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 4, 3)
	h.eng.Run(100 * sim.Millisecond)
	if len(h.delivered[3]) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(h.delivered[3]))
	}
	// Both forwarders must have relayed data (hop-by-hop chain).
	dataTx := map[pkt.NodeID]bool{}
	for _, f := range h.frames {
		if f.Kind == pkt.Data {
			dataTx[f.Tx] = true
		}
	}
	if !dataTx[1] || !dataTx[2] {
		t.Fatalf("relay chain incomplete: data transmitters %v", dataTx)
	}
	if h.counters[1].Relays == 0 || h.counters[2].Relays == 0 {
		t.Fatalf("relay counters = %d/%d, want both > 0",
			h.counters[1].Relays, h.counters[2].Relays)
	}
}

// TestRippleNoForwarderCaching: a forwarder that misses its relay window
// (carrier sensed) must not retransmit later — retransmission is end-to-end
// from the source only.
func TestRippleNoForwarderCaching(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 8, 3)
	h.eng.Run(100 * sim.Millisecond)
	// Station 1 cancelled relays (station 2 outprioritised it); its queue
	// must stay empty — no cached copies.
	if h.agents[1].QueueLen() != 0 {
		t.Fatalf("forwarder cached %d packets", h.agents[1].QueueLen())
	}
}

func TestRippleEndToEndRetryOnDeadPath(t *testing.T) {
	// Destination and forwarders out of range: the source retries
	// end-to-end and eventually drops.
	positions := []radio.Pos{{X: 0}, {X: 600}}
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, positions, idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 2, 1)
	h.eng.Run(2 * sim.Second)
	p := phys.Default()
	if h.counters[0].AckTimeouts < uint64(p.RetryLimit) {
		t.Fatalf("timeouts = %d, want ≥%d", h.counters[0].AckTimeouts, p.RetryLimit)
	}
	if h.counters[0].MACDrops != 2 {
		t.Fatalf("MACDrops = %d, want 2", h.counters[0].MACDrops)
	}
	if len(h.delivered) > 1 && len(h.delivered[1]) != 0 {
		t.Fatal("nothing should be delivered on a dead path")
	}
}

// TestRippleTwoWayTraffic: both endpoints send simultaneously (the TCP
// data/ACK pattern); both directions must complete without interference
// from each other's mTXOPs.
func TestRippleTwoWayTraffic(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 16, 3)
	h.inject(3, 1, 16, 0)
	h.eng.Run(200 * sim.Millisecond)
	if len(h.delivered[3]) != 16 {
		t.Fatalf("forward direction delivered %d/16", len(h.delivered[3]))
	}
	if len(h.delivered[0]) != 16 {
		t.Fatalf("reverse direction delivered %d/16", len(h.delivered[0]))
	}
}

// TestRippleAckRelayedTowardSource checks the (i−1)·Slot+SIFS ACK relay
// rule: with only adjacent links decodable the ACK must be relayed by both
// forwarders back to the source (total ACK transmissions ≥ 3 per mTXOP).
func TestRippleAckRelayedTowardSource(t *testing.T) {
	positions := []radio.Pos{{X: 0}, {X: 180}, {X: 360}, {X: 540}}
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, positions, idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 1, 3)
	h.eng.Run(50 * sim.Millisecond)
	var acks int
	ackTx := map[pkt.NodeID]bool{}
	for _, f := range h.frames {
		if f.Kind == pkt.Ack {
			acks++
			ackTx[f.Tx] = true
		}
	}
	if !ackTx[3] || !ackTx[2] || !ackTx[1] {
		t.Fatalf("ACK relay chain incomplete: transmitters %v over %d acks", ackTx, acks)
	}
	// The source must have completed without retries.
	if h.counters[0].AckTimeouts != 0 {
		t.Fatalf("source timed out %d times", h.counters[0].AckTimeouts)
	}
}

// TestRippleNoAggSendsSinglePacketFrames checks the R1 configuration.
func TestRippleNoAggSendsSinglePacketFrames(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxAgg = 1
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, opt)
	h.inject(0, 1, 8, 3)
	h.eng.Run(100 * sim.Millisecond)
	for _, f := range h.frames {
		if f.Kind == pkt.Data && len(f.Packets) > 1 {
			t.Fatalf("R1 frame carries %d packets", len(f.Packets))
		}
	}
	if len(h.delivered[3]) != 8 {
		t.Fatalf("delivered %d/8", len(h.delivered[3]))
	}
}

// TestRipplePartialCorruptionRetransmitsOnlyLost: with a BER that corrupts
// some sub-packets, the source retransmits only unacked ones; the
// destination ends up with every packet exactly once.
func TestRipplePartialCorruptionRetransmitsOnlyLost(t *testing.T) {
	rc := idealRadio()
	rc.BitErrorRate = 3e-5 // 1000B packet: ≈22% corruption per packet
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), rc, paths, DefaultOptions())
	h.inject(0, 1, 32, 3)
	h.eng.Run(sim.Second)
	if got := len(h.delivered[3]); got != 32 {
		t.Fatalf("delivered %d packets, want 32", got)
	}
	seen := map[uint64]bool{}
	for _, p := range h.delivered[3] {
		if seen[p.UID] {
			t.Fatalf("duplicate delivery of %d", p.UID)
		}
		seen[p.UID] = true
	}
	// Partial retransmission means more packet transmissions than packets.
	if h.counters[0].TxPackets <= 32 {
		t.Fatalf("TxPackets = %d, expected retransmissions beyond 32", h.counters[0].TxPackets)
	}
}

// TestRippleMacSeqAssignedOnAccept: queue-rejected packets must not consume
// MAC sequence numbers (that would leave permanent Rq gaps).
func TestRippleMacSeqAssignedOnAccept(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 60, 1) // 50-limit queue: 10 rejected
	if h.counters[0].QueueDrops != 10 {
		t.Fatalf("QueueDrops = %d", h.counters[0].QueueDrops)
	}
	h.eng.Run(sim.Second)
	if got := len(h.delivered[1]); got != 50 {
		t.Fatalf("delivered %d, want 50", got)
	}
	// MacSeqs of delivered packets must be exactly 0..49 in order.
	for i, p := range h.delivered[1] {
		if p.MacSeq != int64(i) {
			t.Fatalf("MacSeq hole at %d: got %d", i, p.MacSeq)
		}
	}
}
