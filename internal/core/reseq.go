package core

import (
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// reseq is the receive queue Rq of the paper's Remark 6: with aggregation,
// packets of one frame can be partially corrupted, so a correct packet with
// a higher sequence number may arrive before the retransmission of a
// corrupted lower one. Rq holds such packets and delivers in order. A hold
// timeout bounds head-of-line blocking when the source permanently dropped
// a packet (retry limit), in which case Rq skips the gap.
//
// Buffered packets carry a reference (pkt.Pool): the buffer may outlive
// the source's own hold on a packet, so Rq refs on insert and releases
// after in-order delivery. The hold timer is one event per stream, revived
// with Reschedule, so buffering allocates nothing after warm-up.
type reseq struct {
	expected  int64
	buf       map[int64]*pkt.Packet
	holdEv    *sim.Event
	holdArmed bool
	holdFn    func() // bound once to this stream
}

func (r *Ripple) newReseq() *reseq {
	q := &reseq{buf: make(map[int64]*pkt.Packet)}
	q.holdFn = func() {
		q.holdArmed = false
		r.skipGap(q)
	}
	return q
}

// deliver routes a received packet through Rq (when enabled) to transport.
func (r *Ripple) deliver(p *pkt.Packet) {
	if !r.opt.RqEnabled {
		r.env.Deliver(p)
		return
	}
	key := streamKey{flow: p.FlowID, src: p.Src}
	q, ok := r.rq[key]
	if !ok {
		q = r.newReseq()
		r.rq[key] = q
	}
	switch {
	case p.MacSeq < q.expected:
		r.env.C.Duplicates++
		return
	case p.MacSeq == q.expected:
		q.expected++
		r.env.Deliver(p)
		r.drain(q)
	default: // gap: buffer and wait for the end-to-end retransmission
		if _, dup := q.buf[p.MacSeq]; dup {
			r.env.C.Duplicates++
			return
		}
		if len(q.buf) >= r.opt.RqCap {
			r.skipGap(q)
		}
		q.buf[p.MacSeq] = p
		p.Ref() // the buffer may outlive the source's hold on the packet
		r.armHold(q)
	}
}

// drain delivers consecutively buffered packets and manages the hold timer.
func (r *Ripple) drain(q *reseq) {
	for {
		p, ok := q.buf[q.expected]
		if !ok {
			break
		}
		delete(q.buf, q.expected)
		q.expected++
		r.env.Deliver(p)
		p.Release() // delivered in order: the buffer's reference ends
	}
	if len(q.buf) == 0 {
		r.env.Eng.Cancel(q.holdEv)
		q.holdArmed = false
	} else {
		r.rearmHold(q)
	}
}

func (r *Ripple) armHold(q *reseq) {
	if q.holdArmed {
		return
	}
	r.rearmHold(q)
}

func (r *Ripple) rearmHold(q *reseq) {
	if q.holdEv == nil {
		q.holdEv = r.env.Eng.After(r.opt.RqHold, q.holdFn)
	} else {
		r.env.Eng.Reschedule(q.holdEv, r.env.Eng.Now()+r.opt.RqHold)
	}
	q.holdArmed = true
}

// skipGap advances expected to the lowest buffered sequence number (the
// missing packets were abandoned by the source) and drains from there.
func (r *Ripple) skipGap(q *reseq) {
	if len(q.buf) == 0 {
		return
	}
	low := int64(-1)
	for seq := range q.buf {
		if low < 0 || seq < low {
			low = seq
		}
	}
	q.expected = low
	r.drain(q)
}
