// Package core implements RIPPLE, the paper's contribution: an opportunistic
// forwarding scheme for interactive traffic built from two mechanisms.
//
// Multi-hop transmission opportunity (mTXOP): after the source wins one DCF
// transmission opportunity, the frame ripples to the destination without
// further contention. The destination acknowledges after SIFS; forwarder of
// rank i (1 = closest to the destination) relays a data frame after sensing
// the channel idle for i·Slot + SIFS, and relays a MAC ACK after
// (i−1)·Slot + SIFS with ranks counted toward the source. Forwarders never
// cache: an overheard frame is relayed at most once, immediately, or
// discarded, and retransmission is end-to-end from the source — so relaying
// can never reorder packets.
//
// Two-way packet aggregation: up to MaxAgg (16) packets, each with its own
// CRC, ride in one frame; the MAC ACK carries a reception bitmap and only
// corrupted packets are retransmitted. Both endpoints aggregate (TCP data
// one way, TCP ACKs the other). The send queue Sq retains unacknowledged
// packets; the receive queue Rq resequences packets broken by partial frame
// corruption before delivery to the upper layer.
package core

import (
	"ripple/internal/forward"
	"ripple/internal/mac"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// Options tunes RIPPLE behaviour; DefaultOptions matches the paper.
type Options struct {
	// MaxAgg is the aggregation limit (paper: 16; 1 disables aggregation,
	// which is the "R1" configuration of Figs. 3-4).
	MaxAgg int
	// RqEnabled enables the destination resequencing queue (Remark 6).
	RqEnabled bool
	// RqHold bounds how long Rq withholds out-of-order packets waiting for
	// an end-to-end retransmission to fill a gap. Needed because a packet
	// dropped at the source after the retry limit would otherwise stall
	// the stream forever.
	RqHold sim.Time
	// RqCap bounds the resequencing buffer per stream.
	RqCap int
	// RelayDefer selects how a forwarder's "channel idle for T" relay rule
	// treats unrelated carrier. When false (strict), any sensed carrier
	// during the wait discards the overheard frame — the letter of §III-A.
	// When true (default), the forwarder pauses while busy and restarts
	// the T wait at the next idle, discarding only on evidence that a
	// higher-priority station already covered the frame (a decoded relay
	// or ACK of the same mTXOP) or when the defer deadline passes. Without
	// deferral, any background traffic breaks every mTXOP, contradicting
	// the paper's Remark 3 that broken mTXOPs "are likely to be
	// insignificant"; see DESIGN.md.
	RelayDefer bool
	// RelayDeferLimit bounds how long a deferred relay may wait before the
	// frame is discarded (the source's retry supersedes it anyway).
	RelayDeferLimit sim.Time
	// LocalAggOnRelay lets a forwarder top up a relayed frame with its own
	// queued packets bound for the same destination ("a forwarder
	// aggregates local packets (if the frame is not large enough) so that
	// both multi-hop and local packets are sent in one transmission",
	// Remark 3). Piggybacked packets are acknowledged by the same bitmap
	// ACK; unacknowledged ones return to the local queue.
	LocalAggOnRelay bool
}

// DefaultOptions returns the paper's configuration (aggregation 16, Rq on,
// relay deferral bounded at 2 ms).
func DefaultOptions() Options {
	return Options{
		MaxAgg:          16,
		RqEnabled:       true,
		RqHold:          25 * sim.Millisecond,
		RqCap:           128,
		RelayDefer:      true,
		RelayDeferLimit: 2 * sim.Millisecond,
	}
}

// Ripple is the per-station RIPPLE agent.
type Ripple struct {
	env forward.Env
	opt Options

	queue *mac.Queue // Sq: pending packets not yet in service
	cont  *mac.Contender

	// Source-side exchange state (one outstanding mTXOP per station).
	inService  []*pkt.Packet
	svcFlow    int
	svcDst     pkt.NodeID
	exchanging bool
	curTxop    uint64
	txopSeq    uint64
	attempts   int
	ackTimer   *sim.Event

	// Forwarder relay state: armed idle-timers (paused and resumed around
	// busy periods in deferral mode). Kept as an ordered slice — map
	// iteration order would randomise event scheduling and break run
	// determinism.
	relays   []*pendingRelay
	seenData map[uint64]bool // TxopIDs whose data we already relayed
	seenAck  map[uint64]bool // TxopIDs whose ACK we already relayed

	// Destination-side resequencing (Rq), one per incoming stream.
	rq map[streamKey]*reseq
	// macSeq assigns MAC-stream sequence numbers to locally originated
	// packets, one counter per outgoing stream.
	macSeq map[streamKey]int64
	// piggy tracks local packets riding on relayed frames (LocalAggOnRelay),
	// keyed by the mTXOP they joined, until the bitmap ACK covers them.
	piggy map[uint64][]*pkt.Packet

	// Hot-path scratch and free lists: okScratch collects the decoded
	// sub-packets of one reception (valid only within the handler),
	// freeRelays recycles pendingRelay structs (each keeps its event and
	// packet buffer), freeTx recycles the SIFS-delayed transmit actions.
	okScratch  []*pkt.Packet
	freeRelays []*pendingRelay
	freeTx     *delayedTx

	// down marks the station crashed (fault injection): every MAC upcall
	// and local send is ignored until Recover.
	down bool
}

type streamKey struct {
	flow int
	src  pkt.NodeID
}

var _ forward.Scheme = (*Ripple)(nil)

// New creates the RIPPLE agent for one station.
func New(env forward.Env, opt Options) *Ripple {
	if opt.MaxAgg < 1 {
		opt.MaxAgg = 1
	}
	r := &Ripple{
		env:      env,
		opt:      opt,
		queue:    env.NewQueue(env.P.QueueLimit),
		seenData: make(map[uint64]bool),
		seenAck:  make(map[uint64]bool),
		rq:       make(map[streamKey]*reseq),
		macSeq:   make(map[streamKey]int64),
		piggy:    make(map[uint64][]*pkt.Packet),
	}
	r.cont = env.NewContender(r.onGrant)
	return r
}

// Send implements forward.Scheme: a locally originated packet enters Sq
// and is stamped with its MAC-stream sequence number (what Rq orders by).
func (r *Ripple) Send(p *pkt.Packet) bool {
	if r.down {
		r.env.C.CrashDrops++
		p.Release() // station is crashed: terminal drop point
		return false
	}
	if r.env.Routes.Unreachable(p.FlowID) {
		// The destination is known unreachable this epoch: drop at the
		// source instead of burning airtime on doomed retries.
		r.env.C.Unreachable++
		r.env.Routes.NoteUnreachableDrop(p.FlowID)
		p.Release()
		return false
	}
	p.EnqueuedAt = r.env.Eng.Now()
	key := streamKey{flow: p.FlowID, src: p.Src}
	if !r.queue.Push(p) {
		r.env.C.QueueDrops++
		p.Release() // queue full: terminal drop point for the sender's ref
		return false
	}
	p.MacSeq = r.macSeq[key]
	r.macSeq[key]++
	r.maybeRequest()
	return true
}

// QueueLen implements forward.Scheme.
func (r *Ripple) QueueLen() int { return r.queue.Len() + len(r.inService) }

func (r *Ripple) maybeRequest() {
	if r.exchanging {
		return
	}
	if len(r.inService) == 0 && r.queue.Len() == 0 {
		return
	}
	r.cont.Request()
}

// onGrant: the station won a DCF transmission opportunity — launch an mTXOP.
func (r *Ripple) onGrant() {
	if len(r.inService) > 0 {
		// Retransmitting: top up the batch with fresh packets of the same
		// stream ("when the source (re)transmits, we allow multiple
		// packets to be aggregated in the (re)transmitted frame").
		if len(r.inService) < r.opt.MaxAgg {
			r.inService = r.queue.PopNWhereInto(r.inService,
				r.opt.MaxAgg-len(r.inService), func(p *pkt.Packet) bool {
					return p.FlowID == r.svcFlow && p.Dst == r.svcDst
				})
		}
	} else {
		head := r.queue.Peek()
		if head == nil {
			return
		}
		r.svcFlow = head.FlowID
		r.svcDst = head.Dst
		r.inService = r.queue.PopNWhereInto(r.inService[:0], r.opt.MaxAgg, func(p *pkt.Packet) bool {
			return p.FlowID == head.FlowID && p.Dst == head.Dst
		})
	}
	if len(r.inService) == 0 {
		return
	}
	fwd := r.env.Routes.FwdList(r.svcFlow, r.env.ID, r.svcDst)
	if len(fwd) == 0 {
		if r.env.Routes.Unreachable(r.svcFlow) {
			r.env.C.Unreachable += uint64(len(r.inService))
			for _, p := range r.inService {
				r.env.Routes.NoteUnreachableDrop(r.svcFlow)
				p.Release()
			}
		} else {
			r.env.C.MACDrops += uint64(len(r.inService))
			for _, p := range r.inService {
				p.Release()
			}
		}
		r.inService = r.inService[:0]
		r.maybeRequest()
		return
	}
	r.txopSeq++
	r.curTxop = uint64(r.env.ID)<<32 | r.txopSeq
	f := &pkt.Frame{
		Kind:     pkt.Data,
		Tx:       r.env.ID,
		Rx:       pkt.Broadcast,
		Origin:   r.env.ID,
		FinalDst: r.svcDst,
		FwdList:  fwd, // RouteBook-owned, immutable until the next route update
		TxopID:   r.curTxop,
		Packets:  append([]*pkt.Packet(nil), r.inService...),
		FlowID:   r.svcFlow,
		// Multi-rate extension: pick the rate for the most probable first
		// hop (the forwarder nearest the source); farther forwarders and
		// the destination may then decode opportunistically or not.
		RateBps: r.env.Rate(fwd[len(fwd)-1]),
	}
	f.Duration = r.dataDuration(f)
	for _, p := range f.Packets {
		p.Retries++
	}
	r.exchanging = true
	r.env.C.TxFrames++
	r.env.C.TxData++
	r.env.C.TxPackets += uint64(len(f.Packets))
	if r.attempts > 0 {
		r.env.C.Retries++
	}
	r.env.Med.Transmit(f)
}

func (r *Ripple) dataDuration(f *pkt.Frame) sim.Time {
	perPkt := phys.PerPacketCRCBytes
	if r.opt.MaxAgg == 1 {
		perPkt = 0
	}
	payload := f.PayloadBytes(phys.MACHeaderBytes, perPkt, phys.ForwarderEntryBytes)
	return r.env.P.DataTimeAt(payload, f.RateBps)
}

func (r *Ripple) ackDuration(fwdEntries int) sim.Time {
	bytes := phys.ACKFrameBytes + phys.BitmapACKBytes + fwdEntries*phys.ForwarderEntryBytes
	return r.env.P.PHYHdr + sim.Time(float64(bytes*8)/r.env.P.BasicBps*1e9)
}

// TxDone implements radio.MAC: after the source's own data frame ends, arm
// the end-to-end ACK timeout covering the worst-case mTXOP duration.
func (r *Ripple) TxDone(f *pkt.Frame) {
	if r.down || f.Kind != pkt.Data || f.Origin != r.env.ID || f.TxopID != r.curTxop || !r.exchanging {
		return
	}
	m := len(f.FwdList) - 1 // forwarders (list includes the destination)
	hopGap := r.env.P.SIFS + sim.Time(m)*r.env.P.Slot
	dataPath := sim.Time(m) * (hopGap + f.Duration)
	ackPath := sim.Time(m+1) * (hopGap + r.ackDuration(len(f.FwdList)))
	timeout := dataPath + ackPath + 4*sim.Microsecond
	r.ackTimer = r.env.Eng.After(timeout, r.onAckTimeout)
}

func (r *Ripple) onAckTimeout() {
	if !r.exchanging {
		return
	}
	r.exchanging = false
	r.attempts++
	r.env.C.AckTimeouts++
	if r.dropExpired() {
		// Failure detection (fault injection): only abandoned packets —
		// retry budget exhausted, not single mTXOP timeouts, which are
		// routine on a lossy channel — feed forwarder blacklisting. No-op
		// unless RouteBook.EnableFailureDetection was called.
		r.env.Routes.NoteTxFailure(r.svcFlow, r.env.ID, r.svcDst)
	}
	if len(r.inService) == 0 {
		r.attempts = 0
		r.cont.Success()
	} else {
		r.cont.Failure()
	}
	r.maybeRequest()
}

// dropExpired discards in-service packets past the retry limit and
// reports whether any packet was abandoned.
func (r *Ripple) dropExpired() bool {
	kept := r.inService[:0]
	dropped := false
	for _, p := range r.inService {
		if p.Retries > r.env.P.RetryLimit {
			r.env.C.MACDrops++
			dropped = true
			p.Release() // abandoned by the source: terminal drop point
			continue
		}
		kept = append(kept, p)
	}
	r.inService = kept
	return dropped
}

// FrameReceived implements radio.MAC.
func (r *Ripple) FrameReceived(f *pkt.Frame, pktOK []bool) {
	if r.down {
		return // reception completed after the crash: the station is gone
	}
	switch f.Kind {
	case pkt.Ack:
		r.handleAck(f)
	case pkt.Data:
		r.handleData(f, pktOK)
	}
}

// handleAck covers both roles: the mTXOP source consuming its end-to-end
// MAC ACK, and a forwarder relaying the ACK back toward the source.
func (r *Ripple) handleAck(f *pkt.Frame) {
	if pending, ok := r.piggy[f.TxopID]; ok {
		// The bitmap covers packets we piggybacked onto this mTXOP's
		// relay; acknowledged ones are done, the rest await reclaim.
		kept := pending[:0]
		for _, p := range pending {
			if forward.Acked(f.AckedUIDs, p.UID) {
				p.Release() // delivered: our piggyback custody ends
			} else {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(r.piggy, f.TxopID)
		} else {
			r.piggy[f.TxopID] = kept
		}
	}
	if r.exchanging && f.Origin == r.env.ID {
		matched := f.TxopID == r.curTxop
		kept := r.inService[:0]
		for _, p := range r.inService {
			if forward.Acked(f.AckedUIDs, p.UID) {
				matched = true
				p.Release() // acknowledged end to end: the source's ref ends
				continue
			}
			kept = append(kept, p)
		}
		r.inService = kept
		if matched {
			r.env.Eng.Cancel(r.ackTimer)
			r.exchanging = false
			r.attempts = 0
			r.env.Routes.NoteTxSuccess(r.svcFlow, r.env.ID)
			r.cont.Success()
			r.maybeRequest()
		}
		return
	}

	// Forwarder: relay the MAC ACK toward the source after (i−1)·Slot+SIFS
	// idle, where i ranks stations by proximity to the source.
	myData := f.RankOf(r.env.ID)
	if myData < 0 || f.Origin == r.env.ID {
		return
	}
	n := len(f.FwdList)
	myAck := n - myData
	txAck := n // the destination (ACK originator) outranks every relay
	if tr := f.RankOf(f.Tx); tr > 0 {
		txAck = n - tr
	}
	// A decoded ACK proves the destination received the data frame: any
	// pending data relay of this mTXOP is obsolete. A relayed ACK from a
	// station nearer the source also covers our pending ACK relay.
	r.suppressRelay(f.TxopID^dataRelayTag, 0)
	r.suppressRelay(f.TxopID, txAck)
	if myAck >= txAck || r.seenAck[f.TxopID] {
		return
	}
	r.armRelay(f.TxopID, f.TxopID, false, myAck,
		sim.Time(myAck-1)*r.env.P.Slot+r.env.P.SIFS, f, nil)
}

// fireAckRelay relays a decoded MAC ACK toward the source.
func (r *Ripple) fireAckRelay(p *pendingRelay) {
	f := p.frame
	r.seenAck[f.TxopID] = true
	relay := f.Clone()
	relay.Tx = r.env.ID
	relay.Duration = r.ackDuration(len(relay.FwdList))
	r.env.C.TxFrames++
	r.env.C.Relays++
	r.env.Med.Transmit(relay)
}

// handleData covers the destination (ACK + deliver) and forwarder (relay)
// roles for an opportunistic data frame.
func (r *Ripple) handleData(f *pkt.Frame, pktOK []bool) {
	myRank := f.RankOf(r.env.ID)
	if myRank < 0 || f.Origin == r.env.ID {
		return
	}
	// okScratch is valid only within this handler; anything retained
	// (the relay's packet set) is copied at arm time.
	okPkts := r.okScratch[:0]
	for i, p := range f.Packets {
		if i < len(pktOK) && pktOK[i] {
			okPkts = append(okPkts, p)
		}
	}
	r.okScratch = okPkts[:0]
	if len(okPkts) == 0 {
		// Header decodable but every sub-packet corrupted: stay silent so
		// a forwarder that fared better can relay; EIFS applies.
		r.cont.NoteCorrupted()
		return
	}

	if myRank == 0 {
		// Destination: bitmap-ACK after SIFS, deliver through Rq.
		r.env.C.RxData++
		okUIDs := make([]uint64, len(okPkts))
		for i, p := range okPkts {
			okUIDs[i] = p.UID
		}
		ack := &pkt.Frame{
			Kind:      pkt.Ack,
			Tx:        r.env.ID,
			Rx:        f.Origin,
			Origin:    f.Origin,
			FinalDst:  f.Origin,
			FwdList:   f.FwdList, // immutable once transmitted
			TxopID:    f.TxopID,
			AckedUIDs: okUIDs,
			Acker:     r.env.ID,
			AckerRank: 0,
			FlowID:    f.FlowID,
		}
		ack.Duration = r.ackDuration(len(ack.FwdList))
		r.delayTx(r.env.P.SIFS, ack)
		for _, p := range okPkts {
			r.deliver(p)
		}
		return
	}

	// Forwarder of rank i: relay after i·Slot + SIFS of idle channel. Only
	// relay frames moving toward the destination (transmitter ranked
	// farther from it than we are), and at most once per mTXOP.
	txRank := len(f.FwdList) // the origin outranks the whole list
	if tr := f.RankOf(f.Tx); tr >= 0 {
		txRank = tr
	}
	// A decoded relay from a station nearer the destination covers any
	// relay we still have pending for this mTXOP.
	r.suppressRelay(f.TxopID^dataRelayTag, txRank)
	if myRank >= txRank || r.seenData[f.TxopID] {
		return
	}
	r.armRelay(f.TxopID^dataRelayTag, f.TxopID, true, myRank,
		sim.Time(myRank)*r.env.P.Slot+r.env.P.SIFS, f, okPkts)
}

// fireDataRelay relays the decoded sub-packets of an overheard data frame.
func (r *Ripple) fireDataRelay(p *pendingRelay) {
	f := p.frame
	r.seenData[f.TxopID] = true
	relay := f.Clone()
	relay.Tx = r.env.ID
	// The relay frame outlives the pooled pendingRelay, so it gets its own
	// copy of the packet set.
	relay.Packets = append([]*pkt.Packet(nil), p.pkts...)
	if r.opt.LocalAggOnRelay && len(relay.Packets) < r.opt.MaxAgg {
		r.piggyback(relay)
	}
	relay.Duration = r.dataDuration(relay)
	r.env.C.TxFrames++
	r.env.C.Relays++
	r.env.Med.Transmit(relay)
}

// piggyback tops a relayed frame up with local packets bound for the same
// destination (Remark 3). They are reclaimed on ACK or timeout.
func (r *Ripple) piggyback(relay *pkt.Frame) {
	room := r.opt.MaxAgg - len(relay.Packets)
	local := r.queue.PopNWhere(room, func(p *pkt.Packet) bool {
		return p.Dst == relay.FinalDst
	})
	if len(local) == 0 {
		return
	}
	relay.Packets = append(relay.Packets, local...)
	r.piggy[relay.TxopID] = append(r.piggy[relay.TxopID], local...)
	// If the mTXOP's ACK never comes back through us, reclaim the packets
	// so they are retransmitted in our own transmission opportunity.
	deadline := 4 * (r.env.P.SIFS + 5*r.env.P.Slot + r.dataDuration(relay))
	r.env.Eng.After(deadline, func() { r.reclaimPiggy(relay.TxopID) })
}

// reclaimPiggy returns unacknowledged piggybacked packets to the queue.
func (r *Ripple) reclaimPiggy(txop uint64) {
	pending := r.piggy[txop]
	if len(pending) == 0 {
		return
	}
	delete(r.piggy, txop)
	for i := len(pending) - 1; i >= 0; i-- {
		r.queue.PushFront(pending[i])
	}
	r.maybeRequest()
}

// dataRelayTag disambiguates data-relay timers from ACK-relay timers for
// the same mTXOP in the relays map.
const dataRelayTag = 0x8000000000000000

// pendingRelay is a forwarder's armed (or deferred) relay of one frame.
// Structs are pooled per Ripple agent: each keeps its timer event (revived
// with Reschedule), its once-bound timer closure and its packet buffer, so
// arming a relay allocates nothing after warm-up. pkts holds a reference
// on every retained packet (released when the relay fires or is
// discarded), which keeps the packets alive even if the source abandons
// them while the relay is deferred.
type pendingRelay struct {
	key      uint64
	txop     uint64
	isData   bool
	rank     int // my relay rank in the frame's direction
	wait     sim.Time
	deadline sim.Time
	frame    *pkt.Frame
	pkts     []*pkt.Packet // decoded sub-packets (data relays only)
	run      func()        // bound once: the relay's idle-timer callback
	ev       *sim.Event
}

// newRelay pops a recycled pendingRelay or allocates one with its timer
// callback bound.
func (r *Ripple) newRelay() *pendingRelay {
	if n := len(r.freeRelays); n > 0 {
		p := r.freeRelays[n-1]
		r.freeRelays[n-1] = nil
		r.freeRelays = r.freeRelays[:n-1]
		return p
	}
	p := &pendingRelay{}
	p.run = func() { r.relayTimer(p) }
	return p
}

// releaseRelay drops the relay's packet references and recycles the
// struct. The caller must already have cancelled/consumed its timer and
// removed it from r.relays. The timer event is explicitly marked cancelled
// here: a recycled struct whose previous life's event merely *fired* would
// otherwise look "still armed" to onCarrierIdle's !Canceled() check when
// its next life is armed during a busy period, and the relay would never
// be scheduled.
func (r *Ripple) releaseRelay(p *pendingRelay) {
	r.env.Eng.Cancel(p.ev)
	for i, pk := range p.pkts {
		pk.Release()
		p.pkts[i] = nil
	}
	p.pkts = p.pkts[:0]
	p.frame = nil
	r.freeRelays = append(r.freeRelays, p)
}

// delayedTx transmits a frame after a fixed delay unless the station is
// mid-transmission by then (the SIFS-spaced ACK rule). Pooled so the
// per-reception ACK schedule allocates nothing.
type delayedTx struct {
	r    *Ripple
	f    *pkt.Frame
	next *delayedTx
}

func (a *delayedTx) Run() {
	r, f := a.r, a.f
	a.f = nil
	a.next = r.freeTx
	r.freeTx = a
	if r.down || r.env.Med.Transmitting(r.env.ID) {
		return
	}
	r.env.C.TxFrames++
	r.env.Med.Transmit(f)
}

// delayTx schedules f for transmission after d, skipping it if the
// station is transmitting at that instant (matching the inline ACK rule).
func (r *Ripple) delayTx(d sim.Time, f *pkt.Frame) {
	a := r.freeTx
	if a != nil {
		r.freeTx = a.next
		a.next = nil
	} else {
		a = &delayedTx{r: r}
	}
	a.f = f
	r.env.Eng.Do(r.env.Eng.Now()+d, a)
}

// findRelay returns the pending relay with the given key, or nil.
func (r *Ripple) findRelay(key uint64) *pendingRelay {
	for _, p := range r.relays {
		if p.key == key {
			return p
		}
	}
	return nil
}

// dropRelay removes a pending relay from the ordered list.
func (r *Ripple) dropRelay(p *pendingRelay) {
	for i, q := range r.relays {
		if q == p {
			r.relays = append(r.relays[:i], r.relays[i+1:]...)
			return
		}
	}
}

// armRelay schedules an opportunistic relay that fires once the channel has
// been idle for `wait`. In strict mode any sensed carrier discards the
// frame; in deferral mode the wait restarts at the next idle period until
// the defer deadline, and decoded evidence of higher-priority coverage
// (suppressRelay) discards it. okPkts (data relays) is copied into the
// relay's own buffer with a reference per packet.
func (r *Ripple) armRelay(key, txop uint64, isData bool, rank int, wait sim.Time,
	f *pkt.Frame, okPkts []*pkt.Packet) {
	busy := r.env.Med.CarrierBusy(r.env.ID)
	if busy && !r.opt.RelayDefer {
		r.env.C.RelayCancels++
		return
	}
	if old := r.findRelay(key); old != nil {
		r.env.Eng.Cancel(old.ev)
		r.dropRelay(old)
		r.releaseRelay(old)
	}
	p := r.newRelay()
	p.key, p.txop, p.isData, p.rank = key, txop, isData, rank
	p.wait = wait
	p.deadline = r.env.Eng.Now() + r.opt.RelayDeferLimit
	p.frame = f
	p.pkts = append(p.pkts, okPkts...)
	for _, pk := range p.pkts {
		pk.Ref()
	}
	r.relays = append(r.relays, p)
	if !busy {
		r.schedule(p)
	}
}

func (r *Ripple) schedule(p *pendingRelay) {
	// One timer event per pendingRelay, revived in place: Reschedule gives
	// it a fresh insertion sequence, so ordering matches a newly created
	// event exactly.
	if p.ev == nil {
		p.ev = r.env.Eng.After(p.wait, p.run)
		return
	}
	r.env.Eng.Reschedule(p.ev, r.env.Eng.Now()+p.wait)
}

// relayTimer is the relay's idle-wait callback.
func (r *Ripple) relayTimer(p *pendingRelay) {
	if r.env.Med.CarrierBusy(r.env.ID) || r.env.Med.Transmitting(r.env.ID) {
		// Raced with a carrier transition in the same instant; the
		// busy handler keeps or discards the pending state.
		if !r.opt.RelayDefer {
			r.dropRelay(p)
			r.env.C.RelayCancels++
			r.releaseRelay(p)
		}
		return
	}
	r.dropRelay(p)
	if p.isData {
		r.fireDataRelay(p)
	} else {
		r.fireAckRelay(p)
	}
	r.releaseRelay(p)
}

// onCarrierBusy pauses (deferral) or discards (strict) every armed relay.
func (r *Ripple) onCarrierBusy() {
	if !r.opt.RelayDefer {
		for _, p := range r.relays {
			r.env.Eng.Cancel(p.ev)
			r.env.C.RelayCancels++
			r.releaseRelay(p)
		}
		r.relays = r.relays[:0]
		return
	}
	for _, p := range r.relays {
		// Cancel pauses the wait; the event struct stays with the relay
		// and is revived by schedule at the next idle.
		r.env.Eng.Cancel(p.ev)
	}
}

// onCarrierIdle restarts deferred relay waits in arm order, expiring stale
// ones.
func (r *Ripple) onCarrierIdle() {
	if !r.opt.RelayDefer {
		return
	}
	now := r.env.Eng.Now()
	kept := r.relays[:0]
	for _, p := range r.relays {
		if p.ev != nil && !p.ev.Canceled() {
			kept = append(kept, p)
			continue
		}
		if now >= p.deadline {
			r.env.C.RelayCancels++
			r.releaseRelay(p)
			continue
		}
		kept = append(kept, p)
		r.schedule(p)
	}
	r.relays = kept
}

// suppressRelay discards pending relays covered by a decoded transmission:
// a data frame or ACK of the same mTXOP from a station ranked ahead of us.
func (r *Ripple) suppressRelay(key uint64, coveringRank int) {
	p := r.findRelay(key)
	if p == nil {
		return
	}
	if coveringRank < p.rank {
		r.env.Eng.Cancel(p.ev)
		r.dropRelay(p)
		r.env.C.RelayCancels++
		r.releaseRelay(p)
	}
}

// FrameCorrupted implements radio.MAC.
func (r *Ripple) FrameCorrupted() {
	if r.down {
		return
	}
	r.cont.NoteCorrupted()
}

// ChannelBusy implements radio.MAC: carrier pauses (or, in strict mode,
// discards) pending relays and freezes the contender.
func (r *Ripple) ChannelBusy() {
	if r.down {
		return
	}
	r.onCarrierBusy()
	r.cont.OnBusy()
}

// ChannelIdle implements radio.MAC: deferred relays restart their wait.
func (r *Ripple) ChannelIdle() {
	if r.down {
		return
	}
	r.onCarrierIdle()
	r.cont.OnIdle()
}

// Crash implements forward.Scheme: the station dies. Every packet it holds
// custody of — the in-service batch, the send queue, armed relay buffers,
// piggybacked packets awaiting a bitmap ACK and the resequencing buffers —
// is released back to the pool so the pool-balance invariant survives the
// crash, and all pending timers are withdrawn. Receptions the medium
// already scheduled still run their bookkeeping but the down guards ignore
// them. macSeq deliberately survives: restarting stream sequence numbers
// at zero would make the destination's resequencer treat every
// post-recovery packet as a stale duplicate.
func (r *Ripple) Crash() {
	if r.down {
		return
	}
	r.down = true
	var dropped uint64
	// Source-side exchange state.
	r.env.Eng.Cancel(r.ackTimer)
	r.exchanging = false
	r.attempts = 0
	for _, p := range r.inService {
		dropped++
		p.Release()
	}
	r.inService = r.inService[:0]
	// Send queue.
	for {
		p := r.queue.Pop()
		if p == nil {
			break
		}
		dropped++
		p.Release()
	}
	// Armed relays: releaseRelay cancels each timer and drops the packet
	// references.
	for _, p := range r.relays {
		dropped += uint64(len(p.pkts))
		r.releaseRelay(p)
	}
	r.relays = r.relays[:0]
	// Piggybacked custody; the reclaim timers find an empty map and return.
	for txop, pending := range r.piggy {
		for _, p := range pending {
			dropped++
			p.Release()
		}
		delete(r.piggy, txop)
	}
	// Destination-side resequencing buffers.
	for key, q := range r.rq {
		r.env.Eng.Cancel(q.holdEv)
		for seq, p := range q.buf {
			dropped++
			p.Release()
			delete(q.buf, seq)
		}
		delete(r.rq, key)
	}
	// Duplicate-suppression memory dies with the station.
	clear(r.seenData)
	clear(r.seenAck)
	r.cont.Cancel()
	r.env.C.CrashDrops += dropped
}

// Recover implements forward.Scheme: the station reboots with empty MAC
// state. Carrier transitions during the outage were dropped by the down
// guards, so the contender is realigned with the medium's current view.
func (r *Ripple) Recover() {
	if !r.down {
		return
	}
	r.down = false
	if r.env.Med.CarrierBusy(r.env.ID) {
		r.cont.OnBusy()
	} else {
		r.cont.OnIdle()
	}
	r.maybeRequest()
}
