package core

import (
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// TestLocalAggOnRelay reproduces Remark 3's forwarder behaviour: station 1
// forwards flow 1 (0→3) and also originates its own flow 2 (1→3); with
// LocalAggOnRelay its relays carry both multi-hop and local packets in one
// transmission.
func TestLocalAggOnRelay(t *testing.T) {
	opt := DefaultOptions()
	opt.LocalAggOnRelay = true
	// Space stations so relays are mandatory (adjacent links only).
	positions := linePositions(4)
	for i := range positions {
		positions[i].X = float64(i * 180)
	}
	paths := map[int]routing.Path{
		1: {0, 1, 2, 3},
		2: {1, 2, 3},
	}
	h := newHarness(t, positions, idealRadio(), paths, opt)
	h.inject(0, 1, 20, 3)
	h.inject(1, 2, 20, 3)
	h.eng.Run(300 * sim.Millisecond)

	if got := len(h.delivered[3]); got != 40 {
		t.Fatalf("destination received %d packets, want 40", got)
	}
	mixed := 0
	for _, f := range h.frames {
		if f.Kind != pkt.Data || f.Tx != 1 {
			continue
		}
		flows := map[int]bool{}
		for _, p := range f.Packets {
			flows[p.FlowID] = true
		}
		if flows[1] && flows[2] {
			mixed++
		}
	}
	if mixed == 0 {
		t.Fatal("no relay carried both multi-hop and local packets")
	}
}

// TestLocalAggOffKeepsFlowsSeparate is the control: without the option no
// frame mixes flows.
func TestLocalAggOffKeepsFlowsSeparate(t *testing.T) {
	positions := linePositions(4)
	for i := range positions {
		positions[i].X = float64(i * 180)
	}
	paths := map[int]routing.Path{
		1: {0, 1, 2, 3},
		2: {1, 2, 3},
	}
	h := newHarness(t, positions, idealRadio(), paths, DefaultOptions())
	h.inject(0, 1, 20, 3)
	h.inject(1, 2, 20, 3)
	h.eng.Run(300 * sim.Millisecond)

	if got := len(h.delivered[3]); got != 40 {
		t.Fatalf("destination received %d packets, want 40", got)
	}
	for _, f := range h.frames {
		if f.Kind != pkt.Data {
			continue
		}
		flows := map[int]bool{}
		for _, p := range f.Packets {
			flows[p.FlowID] = true
		}
		if len(flows) > 1 {
			t.Fatalf("frame from %d mixes flows without LocalAggOnRelay", f.Tx)
		}
	}
}

// TestLocalAggReclaimOnLostAck: piggybacked packets whose mTXOP dies are
// reclaimed and eventually delivered via the forwarder's own TXOPs.
func TestLocalAggReclaimOnLostAck(t *testing.T) {
	opt := DefaultOptions()
	opt.LocalAggOnRelay = true
	// Lossy last hop: some mTXOPs fail end-to-end.
	rc := idealRadio()
	rc.ShadowSigmaDB = 8
	positions := linePositions(4)
	for i := range positions {
		positions[i].X = float64(i * 170)
	}
	paths := map[int]routing.Path{
		1: {0, 1, 2, 3},
		2: {1, 2, 3},
	}
	h := newHarness(t, positions, rc, paths, opt)
	h.inject(0, 1, 30, 3)
	h.inject(1, 2, 30, 3)
	h.eng.Run(2 * sim.Second)

	// Every flow-2 packet must arrive exactly once despite losses.
	seen := map[uint64]int{}
	for _, p := range h.delivered[3] {
		if p.FlowID == 2 {
			seen[p.UID]++
		}
	}
	if len(seen) != 30 {
		t.Fatalf("flow 2 delivered %d distinct packets, want 30", len(seen))
	}
	for uid, n := range seen {
		if n != 1 {
			t.Fatalf("packet %d delivered %d times", uid, n)
		}
	}
}
