// Package mac implements the IEEE 802.11 DCF channel-access machinery shared
// by every forwarding scheme: DIFS/EIFS deferral, slotted binary-exponential
// backoff, and the drop-tail interface queue (Table I: 50 packets).
package mac

import (
	"ripple/internal/phys"
	"ripple/internal/sim"
)

// Contender runs the DCF contention procedure for one station. The owning
// scheme forwards carrier transitions to OnBusy/OnIdle, requests a
// transmission opportunity with Request, and is called back via grant when
// it may transmit. Every grant is preceded by a DIFS (or EIFS) idle period
// plus a fresh random backoff, matching the paper's per-packet
// T_backoff + T_DIFS accounting.
type Contender struct {
	eng   *sim.Engine
	p     phys.Params
	rng   *sim.RNG
	grant func()

	cw      int // current contention window
	pending bool
	slots   int // remaining backoff slots; -1 when no backoff drawn
	busy    bool
	eifs    bool // apply EIFS instead of DIFS on the next deferral

	// deferEv and slotEv are each one event revived in place with
	// Reschedule, and deferFn/slotFn are their callbacks bound once, so
	// the per-exchange DIFS/backoff machinery allocates nothing after
	// warm-up.
	deferEv   *sim.Event
	slotEv    *sim.Event
	deferFn   func()
	slotFn    func()
	slotStart sim.Time
	idleAt    sim.Time
}

// NewContender creates a contender. busyNow seeds the initial carrier state
// (normally false at t=0); grant is invoked exactly once per Request.
func NewContender(eng *sim.Engine, p phys.Params, rng *sim.RNG, grant func()) *Contender {
	c := &Contender{eng: eng, p: p, rng: rng, grant: grant, cw: p.CWMin, slots: -1}
	c.deferFn = c.deferDone
	c.slotFn = func() {
		c.slots = 0
		c.doGrant()
	}
	return c
}

// Request asks for one transmission opportunity. It is idempotent while a
// request is outstanding. The grant callback fires after the channel has
// been idle for DIFS/EIFS plus the drawn backoff.
func (c *Contender) Request() {
	if c.pending {
		return
	}
	c.pending = true
	if c.slots < 0 {
		c.slots = c.rng.IntN(c.cw + 1)
	}
	if !c.busy {
		c.startDefer()
	}
}

// Cancel withdraws an outstanding request (e.g. the queue drained another
// way). Safe to call at any time.
func (c *Contender) Cancel() {
	c.pending = false
	c.eng.Cancel(c.deferEv)
	c.stopSlots()
}

// Success resets the contention window after an acknowledged exchange.
func (c *Contender) Success() {
	c.cw = c.p.CWMin
	c.slots = -1
}

// Failure doubles the contention window after a failed exchange, up to
// CWMax, and discards any leftover backoff so the retry draws a fresh one.
func (c *Contender) Failure() {
	c.cw = min(2*(c.cw+1)-1, c.p.CWMax)
	c.slots = -1
}

// ResetWindow restores the minimum contention window without touching any
// in-progress countdown (used when a packet is abandoned).
func (c *Contender) ResetWindow() { c.cw = c.p.CWMin }

// NoteCorrupted records that the station just received an undecodable
// frame, so its next deferral must use EIFS instead of DIFS.
func (c *Contender) NoteCorrupted() { c.eifs = true }

// OnBusy must be called on every idle→busy carrier transition.
func (c *Contender) OnBusy() {
	if c.busy {
		return
	}
	c.busy = true
	c.eng.Cancel(c.deferEv)
	if c.slotEv != nil && !c.slotEv.Canceled() {
		// Freeze the countdown: credit only whole elapsed slots.
		elapsed := int((c.eng.Now() - c.slotStart) / c.p.Slot)
		c.slots -= elapsed
		if c.slots < 0 {
			c.slots = 0
		}
	}
	c.stopSlots()
}

// OnIdle must be called on every busy→idle carrier transition.
func (c *Contender) OnIdle() {
	if !c.busy {
		return
	}
	c.busy = false
	c.idleAt = c.eng.Now()
	if c.pending {
		c.startDefer()
	}
}

// Busy reports the carrier state as last seen by the contender.
func (c *Contender) Busy() bool { return c.busy }

func (c *Contender) startDefer() {
	ifs := c.p.DIFS()
	if c.eifs {
		ifs = c.p.EIFS()
	}
	if c.deferEv == nil {
		c.deferEv = c.eng.At(c.idleAt+ifs, c.deferFn)
		return
	}
	c.eng.Reschedule(c.deferEv, c.idleAt+ifs)
}

func (c *Contender) deferDone() {
	c.eifs = false
	if c.slots <= 0 {
		c.doGrant()
		return
	}
	c.slotStart = c.eng.Now()
	if c.slotEv == nil {
		c.slotEv = c.eng.After(sim.Time(c.slots)*c.p.Slot, c.slotFn)
		return
	}
	c.eng.Reschedule(c.slotEv, c.eng.Now()+sim.Time(c.slots)*c.p.Slot)
}

func (c *Contender) doGrant() {
	c.pending = false
	c.slots = -1
	c.grant()
}

func (c *Contender) stopSlots() {
	// Cancel only: the event struct stays with the contender and is
	// revived by the next deferDone. Cancelled-vs-fired state keeps the
	// OnBusy freeze-credit check exact (a cancelled event is not counting
	// down; a fired one was).
	c.eng.Cancel(c.slotEv)
}
