package mac

import (
	"testing"

	"ripple/internal/audit"
	"ripple/internal/pkt"
)

// mk builds distinguishable packets.
func mk(uids ...uint64) []*pkt.Packet {
	out := make([]*pkt.Packet, len(uids))
	for i, u := range uids {
		out[i] = &pkt.Packet{UID: u}
	}
	return out
}

func uids(ps []*pkt.Packet) []uint64 {
	out := make([]uint64, len(ps))
	for i, p := range ps {
		out[i] = p.UID
	}
	return out
}

func eq(a []uint64, b ...uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// drain pops everything and returns the UIDs in order.
func drain(q *Queue) []uint64 {
	var out []uint64
	for p := q.Pop(); p != nil; p = q.Pop() {
		out = append(out, p.UID)
	}
	return out
}

func TestQueueRingWrapKeepsFIFO(t *testing.T) {
	q := NewQueue(4)
	// Interleave pushes and pops so head walks all the way around the ring
	// several times without ever exceeding the limit.
	for u := uint64(1); u <= 16; u++ {
		if !q.Push(&pkt.Packet{UID: u}) {
			t.Fatalf("push %d rejected below limit", u)
		}
		if u >= 3 {
			q.Pop()
		}
	}
	got := drain(q)
	if !eq(got, 15, 16) {
		t.Fatalf("drained %v, want [15 16]", got)
	}
}

func TestQueuePushFrontAfterWrap(t *testing.T) {
	q := NewQueue(4)
	for _, p := range mk(1, 2, 3) {
		q.Push(p)
	}
	q.Pop()
	q.Pop() // head is now mid-ring
	q.PushFront(&pkt.Packet{UID: 9})
	q.PushFront(&pkt.Packet{UID: 8})
	got := drain(q)
	if !eq(got, 8, 9, 3) {
		t.Fatalf("drained %v, want [8 9 3]", got)
	}
}

func TestQueuePushFrontGrowsPastLimit(t *testing.T) {
	q := NewQueue(2)
	q.Push(&pkt.Packet{UID: 1})
	q.Push(&pkt.Packet{UID: 2})
	// Front reinsertions (an in-service batch returning) may exceed the
	// drop-tail limit and must grow the ring rather than drop.
	for u := uint64(10); u < 20; u++ {
		q.PushFront(&pkt.Packet{UID: u})
	}
	if q.Len() != 12 {
		t.Fatalf("Len = %d, want 12", q.Len())
	}
	got := drain(q)
	if !eq(got, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10, 1, 2) {
		t.Fatalf("drained %v", got)
	}
}

func TestQueuePopNWhereIntoReusesScratch(t *testing.T) {
	q := NewQueue(8)
	for _, p := range mk(1, 2, 3, 4, 5, 6) {
		q.Push(p)
	}
	scratch := make([]*pkt.Packet, 0, 8)
	got := q.PopNWhereInto(scratch, 2, func(p *pkt.Packet) bool { return p.UID%2 == 0 })
	if !eq(uids(got), 2, 4) {
		t.Fatalf("selected %v, want [2 4]", uids(got))
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("PopNWhereInto must append into the caller's scratch")
	}
	rest := drain(q)
	if !eq(rest, 1, 3, 5, 6) {
		t.Fatalf("remainder %v, want [1 3 5 6]", rest)
	}
}

func TestQueuePopNWhereAcrossWrap(t *testing.T) {
	q := NewQueue(4)
	for _, p := range mk(1, 2, 3, 4) {
		q.Push(p)
	}
	q.Pop()
	q.Pop()
	q.Push(&pkt.Packet{UID: 5})
	q.Push(&pkt.Packet{UID: 6}) // ring has wrapped: [3 4 5 6]
	got := q.PopNWhere(10, func(p *pkt.Packet) bool { return p.UID >= 5 })
	if !eq(uids(got), 5, 6) {
		t.Fatalf("selected %v, want [5 6]", uids(got))
	}
	if rest := drain(q); !eq(rest, 3, 4) {
		t.Fatalf("remainder %v, want [3 4]", rest)
	}
}

func TestQueueDropAccountingUnchanged(t *testing.T) {
	q := NewQueue(2)
	q.Push(&pkt.Packet{UID: 1})
	q.Push(&pkt.Packet{UID: 2})
	if q.Push(&pkt.Packet{UID: 3}) {
		t.Fatal("push above limit must be rejected")
	}
	if q.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", q.Drops())
	}
	if q.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d, want 2", q.MaxDepth())
	}
}

func TestQueueZeroAllocSteadyState(t *testing.T) {
	q := NewQueue(50)
	ps := mk(1, 2, 3, 4, 5, 6, 7, 8)
	scratch := make([]*pkt.Packet, 0, 16)
	allocs := testing.AllocsPerRun(200, func() {
		for _, p := range ps {
			q.Push(p)
		}
		q.PushFront(ps[0])
		q.Pop()
		scratch = q.PopNWhereInto(scratch[:0], 8, func(*pkt.Packet) bool { return true })
	})
	if allocs != 0 {
		t.Fatalf("steady-state queue ops allocated %.1f times per run", allocs)
	}
}

func TestQueueAuditTapMirrorsEveryPath(t *testing.T) {
	// Every mutation path — Push, PushFront, Pop, PopN/PopNInto,
	// PopNWhere/PopNWhereInto, and rejected pushes — must keep the audit
	// tap's mirror equal to Len(); Event panics on the first divergence.
	a := audit.New()
	q := NewQueue(4)
	q.SetAudit(a.RegisterQueue(1, 4, q.Len))
	ps := mk(1, 2, 3, 4, 5, 6)

	q.Push(ps[0])
	q.Push(ps[1])
	q.Push(ps[2])
	a.Event(1)
	q.Pop()
	q.PushFront(ps[3])
	a.Event(2)
	q.PopNInto(nil, 2)
	a.Event(3)
	q.Push(ps[4])
	q.PopNWhereInto(nil, 2, func(p *pkt.Packet) bool { return p.UID%2 == 0 })
	a.Event(4)
	q.PopN(q.Len())
	a.AtDrain()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}

	// A rejected push (queue full) is a drop, not custody: the tap must
	// not count it.
	q2 := NewQueue(1)
	q2.SetAudit(a.RegisterQueue(2, 1, q2.Len))
	q2.Push(ps[0])
	if q2.Push(ps[5]) {
		t.Fatal("push over limit succeeded")
	}
	a.Event(5)
	q2.Pop()
	a.AtDrain()
}
