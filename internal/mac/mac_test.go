package mac

import (
	"testing"
	"testing/quick"

	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

func newTestContender(t *testing.T) (*sim.Engine, *Contender, *[]sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	grants := &[]sim.Time{}
	c := NewContender(eng, phys.Default(), sim.NewRNG(1, 1), func() {
		*grants = append(*grants, eng.Now())
	})
	return eng, c, grants
}

func TestContenderGrantsAfterDIFSPlusBackoff(t *testing.T) {
	eng, c, grants := newTestContender(t)
	p := phys.Default()
	c.Request()
	eng.Run(sim.Second)
	if len(*grants) != 1 {
		t.Fatalf("grants = %d, want 1", len(*grants))
	}
	at := (*grants)[0]
	if at < p.DIFS() {
		t.Fatalf("grant at %v before DIFS %v", at, p.DIFS())
	}
	max := p.DIFS() + sim.Time(p.CWMin)*p.Slot
	if at > max {
		t.Fatalf("grant at %v after DIFS+CWmin·slot %v", at, max)
	}
	// Grant must land exactly on a slot boundary after DIFS.
	if (at-p.DIFS())%p.Slot != 0 {
		t.Fatalf("grant at %v not slot-aligned", at)
	}
}

func TestContenderRequestIdempotent(t *testing.T) {
	eng, c, grants := newTestContender(t)
	c.Request()
	c.Request()
	c.Request()
	eng.Run(sim.Second)
	if len(*grants) != 1 {
		t.Fatalf("grants = %d, want 1 for repeated Request", len(*grants))
	}
}

func TestContenderFreezesDuringBusy(t *testing.T) {
	eng, c, grants := newTestContender(t)
	p := phys.Default()
	c.Request()
	// Channel goes busy before the backoff can complete and stays busy for
	// 10 ms: no grant may fire during that period.
	eng.At(p.DIFS(), func() { c.OnBusy() })
	eng.At(p.DIFS()+10*sim.Millisecond, func() { c.OnIdle() })
	eng.Run(sim.Second)
	if len(*grants) != 1 {
		t.Fatalf("grants = %d, want 1", len(*grants))
	}
	if (*grants)[0] < p.DIFS()+10*sim.Millisecond {
		t.Fatalf("grant at %v fired during busy period", (*grants)[0])
	}
}

func TestContenderBackoffResumesNotRestarts(t *testing.T) {
	// With a frozen countdown, the remaining slots after resume must be
	// less than or equal to the original draw: total elapsed idle time
	// before the grant is bounded by DIFS + CWmin slots + DIFS.
	eng, c, grants := newTestContender(t)
	p := phys.Default()
	c.Request()
	busyAt := p.DIFS() + 2*p.Slot
	idleAt := busyAt + 5*sim.Millisecond
	eng.At(busyAt, func() { c.OnBusy() })
	eng.At(idleAt, func() { c.OnIdle() })
	eng.Run(sim.Second)
	grant := (*grants)[0]
	worst := idleAt + p.DIFS() + sim.Time(p.CWMin)*p.Slot
	if grant > worst {
		t.Fatalf("grant at %v suggests backoff restarted (worst resume %v)", grant, worst)
	}
}

func TestContenderFailureDoublesWindow(t *testing.T) {
	eng, c, _ := newTestContender(t)
	p := phys.Default()
	if c.cw != p.CWMin {
		t.Fatalf("initial cw = %d", c.cw)
	}
	c.Failure()
	if c.cw != 2*(p.CWMin+1)-1 {
		t.Fatalf("cw after failure = %d, want 31", c.cw)
	}
	for i := 0; i < 20; i++ {
		c.Failure()
	}
	if c.cw != p.CWMax {
		t.Fatalf("cw must cap at CWMax, got %d", c.cw)
	}
	c.Success()
	if c.cw != p.CWMin {
		t.Fatalf("cw after success = %d, want CWMin", c.cw)
	}
	_ = eng
}

func TestContenderEIFSAfterCorruption(t *testing.T) {
	eng, c, grants := newTestContender(t)
	p := phys.Default()
	// Simulate: corrupted frame ends at t=0 (busy→idle with eifs noted).
	c.OnBusy()
	c.NoteCorrupted()
	c.Request()
	c.OnIdle()
	eng.Run(sim.Second)
	if len(*grants) != 1 {
		t.Fatalf("grants = %d", len(*grants))
	}
	if (*grants)[0] < p.EIFS() {
		t.Fatalf("grant at %v before EIFS %v", (*grants)[0], p.EIFS())
	}
}

func TestContenderCancelWithdraws(t *testing.T) {
	eng, c, grants := newTestContender(t)
	c.Request()
	c.Cancel()
	eng.Run(sim.Second)
	if len(*grants) != 0 {
		t.Fatal("cancelled request must not grant")
	}
}

func TestContenderGrantSlotAlignedProperty(t *testing.T) {
	p := phys.Default()
	prop := func(seed uint32) bool {
		eng := sim.NewEngine()
		var at sim.Time
		c := NewContender(eng, p, sim.NewRNG(uint64(seed), 2), func() { at = eng.Now() })
		c.Request()
		eng.Run(sim.Second)
		return at >= p.DIFS() && (at-p.DIFS())%p.Slot == 0 &&
			at <= p.DIFS()+sim.Time(p.CWMin)*p.Slot
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePushPopFIFO(t *testing.T) {
	q := NewQueue(3)
	for i := 0; i < 3; i++ {
		if !q.Push(&pkt.Packet{Seq: int64(i)}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if q.Push(&pkt.Packet{Seq: 3}) {
		t.Fatal("push beyond limit must fail")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", q.Drops())
	}
	for i := 0; i < 3; i++ {
		p := q.Pop()
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("pop %d = %v", i, p)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop from empty queue must return nil")
	}
}

func TestQueuePushFrontBypassesLimit(t *testing.T) {
	q := NewQueue(1)
	q.Push(&pkt.Packet{Seq: 1})
	q.PushFront(&pkt.Packet{Seq: 0})
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2 (front insert exceeds limit)", q.Len())
	}
	if q.Pop().Seq != 0 {
		t.Fatal("PushFront must go to the head")
	}
}

func TestQueuePopN(t *testing.T) {
	q := NewQueue(10)
	for i := 0; i < 5; i++ {
		q.Push(&pkt.Packet{Seq: int64(i)})
	}
	got := q.PopN(3)
	if len(got) != 3 || got[0].Seq != 0 || got[2].Seq != 2 {
		t.Fatalf("PopN(3) = %v", got)
	}
	if q.Len() != 2 {
		t.Fatalf("len after PopN = %d", q.Len())
	}
	if len(q.PopN(10)) != 2 {
		t.Fatal("PopN beyond length should return remainder")
	}
}

func TestQueuePopNWhere(t *testing.T) {
	q := NewQueue(10)
	for i := 0; i < 6; i++ {
		q.Push(&pkt.Packet{Seq: int64(i), FlowID: i % 2})
	}
	got := q.PopNWhere(2, func(p *pkt.Packet) bool { return p.FlowID == 1 })
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 3 {
		t.Fatalf("PopNWhere = %+v", got)
	}
	// Remaining order preserved: 0,2,4,5.
	wantSeqs := []int64{0, 2, 4, 5}
	for _, w := range wantSeqs {
		if p := q.Pop(); p.Seq != w {
			t.Fatalf("remaining order broken: got %d, want %d", p.Seq, w)
		}
	}
}

func TestQueueMaxDepth(t *testing.T) {
	q := NewQueue(10)
	for i := 0; i < 4; i++ {
		q.Push(&pkt.Packet{})
	}
	q.Pop()
	q.Pop()
	if q.MaxDepth() != 4 {
		t.Fatalf("MaxDepth = %d, want 4", q.MaxDepth())
	}
}
