package mac

import (
	"ripple/internal/audit"
	"ripple/internal/pkt"
)

// Queue is the drop-tail MAC interface queue (Sq in the paper). The zero
// value is unusable; create with NewQueue.
//
// The implementation is a growable ring buffer, so every operation —
// including PushFront, which the retransmission and piggyback-reclaim
// paths hit per packet — runs in O(1) without allocating. PopN and
// PopNWhere append into a caller-supplied slice, letting hot callers
// recycle one scratch buffer across exchanges.
type Queue struct {
	limit   int
	buf     []*pkt.Packet // ring storage, len(buf) is a power of two
	head    int           // index of the first queued packet
	count   int
	drops   uint64
	maxSeen int
	// tap mirrors enqueues/dequeues into the deep-audit plane; nil (the
	// default) costs one predicted branch per operation.
	tap *audit.QueueTap
}

// SetAudit attaches a deep-audit tap; every enqueue and dequeue is
// mirrored into it so the auditor can cross-check custody after each
// engine event. A nil tap (auditing off) is the default.
func (q *Queue) SetAudit(t *audit.QueueTap) { q.tap = t }

// NewQueue creates a queue holding at most limit packets. (Front
// reinsertion may transiently exceed the limit; the ring grows on demand.)
func NewQueue(limit int) *Queue {
	capacity := 1
	for capacity < limit {
		capacity *= 2
	}
	return &Queue{limit: limit, buf: make([]*pkt.Packet, capacity)}
}

// grow doubles the ring, linearising the queue to the front.
func (q *Queue) grow() {
	next := make([]*pkt.Packet, 2*len(q.buf))
	mask := len(q.buf) - 1
	for i := 0; i < q.count; i++ {
		next[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = next
	q.head = 0
}

// Push appends a packet; it reports false (and counts a drop) if full.
func (q *Queue) Push(p *pkt.Packet) bool {
	if q.count >= q.limit {
		q.drops++
		return false
	}
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)&(len(q.buf)-1)] = p
	q.count++
	if q.count > q.maxSeen {
		q.maxSeen = q.count
	}
	q.tap.Enq()
	return true
}

// PushFront reinserts a packet at the head (retransmission priority).
// Front insertions are allowed to exceed the limit by the in-service batch
// so that partial retransmission never loses custody of unacked packets.
func (q *Queue) PushFront(p *pkt.Packet) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = p
	q.count++
	q.tap.Enq()
}

// Pop removes and returns the head packet, or nil when empty.
func (q *Queue) Pop() *pkt.Packet {
	if q.count == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.count--
	q.tap.Deq()
	return p
}

// PopN removes and returns up to n head packets.
func (q *Queue) PopN(n int) []*pkt.Packet {
	if n > q.count {
		n = q.count
	}
	if n == 0 {
		return nil
	}
	return q.PopNInto(nil, n)
}

// PopNInto removes up to n head packets, appending them to dst (which may
// be a recycled scratch buffer) and returning the extended slice.
func (q *Queue) PopNInto(dst []*pkt.Packet, n int) []*pkt.Packet {
	for ; n > 0 && q.count > 0; n-- {
		dst = append(dst, q.Pop())
	}
	return dst
}

// PopNWhere removes and returns up to n head-most packets satisfying keep,
// preserving the order of the remainder. Used by relays that aggregate only
// packets bound for the same next hop.
func (q *Queue) PopNWhere(n int, keep func(*pkt.Packet) bool) []*pkt.Packet {
	if n == 0 || q.count == 0 {
		return nil
	}
	return q.PopNWhereInto(nil, n, keep)
}

// PopNWhereInto is PopNWhere appending into a caller-supplied slice. The
// remainder is compacted in place within the ring, so the non-selected
// packets keep their order without allocation.
func (q *Queue) PopNWhereInto(dst []*pkt.Packet, n int, keep func(*pkt.Packet) bool) []*pkt.Packet {
	if n == 0 || q.count == 0 {
		return dst
	}
	mask := len(q.buf) - 1
	taken := 0
	w := 0 // logical write index of the next kept-back packet
	for i := 0; i < q.count; i++ {
		p := q.buf[(q.head+i)&mask]
		if taken < n && keep(p) {
			dst = append(dst, p)
			taken++
			q.tap.Deq()
			continue
		}
		q.buf[(q.head+w)&mask] = p
		w++
	}
	for i := w; i < q.count; i++ {
		q.buf[(q.head+i)&mask] = nil
	}
	q.count = w
	return dst
}

// Peek returns the head packet without removing it, or nil when empty.
func (q *Queue) Peek() *pkt.Packet {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.count }

// Drops returns the number of packets rejected because the queue was full.
func (q *Queue) Drops() uint64 { return q.drops }

// MaxDepth returns the high-water mark of the queue depth.
func (q *Queue) MaxDepth() int { return q.maxSeen }
