package mac

import "ripple/internal/pkt"

// Queue is the drop-tail MAC interface queue (Sq in the paper). The zero
// value is unusable; create with NewQueue.
type Queue struct {
	limit   int
	items   []*pkt.Packet
	drops   uint64
	maxSeen int
}

// NewQueue creates a queue holding at most limit packets.
func NewQueue(limit int) *Queue {
	return &Queue{limit: limit, items: make([]*pkt.Packet, 0, limit)}
}

// Push appends a packet; it reports false (and counts a drop) if full.
func (q *Queue) Push(p *pkt.Packet) bool {
	if len(q.items) >= q.limit {
		q.drops++
		return false
	}
	q.items = append(q.items, p)
	if len(q.items) > q.maxSeen {
		q.maxSeen = len(q.items)
	}
	return true
}

// PushFront reinserts a packet at the head (retransmission priority).
// Front insertions are allowed to exceed the limit by the in-service batch
// so that partial retransmission never loses custody of unacked packets.
func (q *Queue) PushFront(p *pkt.Packet) {
	q.items = append([]*pkt.Packet{p}, q.items...)
}

// Pop removes and returns the head packet, or nil when empty.
func (q *Queue) Pop() *pkt.Packet {
	if len(q.items) == 0 {
		return nil
	}
	p := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return p
}

// PopN removes and returns up to n head packets.
func (q *Queue) PopN(n int) []*pkt.Packet {
	if n > len(q.items) {
		n = len(q.items)
	}
	if n == 0 {
		return nil
	}
	out := make([]*pkt.Packet, n)
	copy(out, q.items[:n])
	for i := 0; i < n; i++ {
		q.items[i] = nil
	}
	q.items = q.items[n:]
	return out
}

// PopNWhere removes and returns up to n head-most packets satisfying keep,
// preserving the order of the remainder. Used by relays that aggregate only
// packets bound for the same next hop.
func (q *Queue) PopNWhere(n int, keep func(*pkt.Packet) bool) []*pkt.Packet {
	if n == 0 || len(q.items) == 0 {
		return nil
	}
	out := make([]*pkt.Packet, 0, n)
	rest := q.items[:0]
	for _, p := range q.items {
		if len(out) < n && keep(p) {
			out = append(out, p)
		} else {
			rest = append(rest, p)
		}
	}
	for i := len(rest); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = rest
	return out
}

// Peek returns the head packet without removing it, or nil when empty.
func (q *Queue) Peek() *pkt.Packet {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.items) }

// Drops returns the number of packets rejected because the queue was full.
func (q *Queue) Drops() uint64 { return q.drops }

// MaxDepth returns the high-water mark of the queue depth.
func (q *Queue) MaxDepth() int { return q.maxSeen }
