// Package audit is the simulator's invariant-audit plane. The paper's
// schemes lean on conservation properties — every opportunistic duplicate
// accounted for, custody always balanced, event time never flowing
// backwards — that the test suite asserts at a few chosen points. This
// package turns them into a catalogue checkable at any point of any run.
//
// Two cost tiers share the catalogue:
//
//   - Always-on counters are maintained unconditionally because they are
//     nearly free: pkt.Pool counts allocations and classifies every final
//     release as delivered or dropped, and network.Run verifies the
//     conservation identity (allocated = delivered + dropped + in-flight)
//     after every drain via CheckPoolConservation.
//
//   - Deep mode (ripple.Scenario.Audit, `ripplesim -audit`, or the
//     RIPPLE_AUDIT environment variable) attaches an Auditor: MAC queues
//     report every enqueue/dequeue through QueueTaps, and the engine
//     re-validates the catalogue after every event, so a violation
//     panics within one event of the state transition that caused it —
//     with a structured report — instead of surfacing as a corrupt
//     result table long after.
//
// A nil *Auditor is valid and inert: every method nil-checks, so wired
// code pays one predictable branch when auditing is off.
package audit

import (
	"fmt"
	"strings"
)

// QueueBoundSlack is how far past its configured limit a MAC queue may
// transiently grow: PushFront reinserts the in-service batch (bounded by
// the aggregation limit, 16) ahead of the limit check so that partial
// retransmission never loses custody of unacked packets.
const QueueBoundSlack = 16

// QueueTap mirrors one MAC queue's depth as seen through its
// enqueue/dequeue call sites. The audit cross-checks the mirror against
// the queue's own Len() after every event: a divergence means some
// mutation path bypassed the taps — custody changed hands untracked.
type QueueTap struct {
	station int
	limit   int
	depth   int
	lenFn   func() int
}

// Enq records one enqueue. Safe on a nil tap (auditing off).
func (t *QueueTap) Enq() {
	if t != nil {
		t.depth++
	}
}

// Deq records one dequeue. Safe on a nil tap.
func (t *QueueTap) Deq() {
	if t != nil {
		t.depth--
	}
}

// Auditor holds deep-mode audit state for one run. Like the engine it
// watches, an Auditor is single-goroutine. The zero value is not used;
// create with New. A nil *Auditor is inert.
type Auditor struct {
	taps []*QueueTap
	down map[int]bool
	last int64 // most recent event time observed
	n    uint64
}

// New returns an empty deep-mode auditor.
func New() *Auditor {
	return &Auditor{down: make(map[int]bool)}
}

// RegisterQueue attaches a tap for one station's MAC queue. lenFn must
// report the queue's current depth. Returns nil when the auditor is nil,
// which the tap methods tolerate.
func (a *Auditor) RegisterQueue(station, limit int, lenFn func() int) *QueueTap {
	if a == nil {
		return nil
	}
	t := &QueueTap{station: station, limit: limit, lenFn: lenFn}
	a.taps = append(a.taps, t)
	return t
}

// StationDown records a station crash: its custody must drain to zero and
// stay there until StationUp.
func (a *Auditor) StationDown(station int) {
	if a != nil {
		a.down[station] = true
	}
}

// StationUp clears a station's crashed status.
func (a *Auditor) StationUp(station int) {
	if a != nil {
		delete(a.down, station)
	}
}

// Event validates the catalogue after one engine event at time now:
// event time is monotone, every tap agrees with its queue, every queue
// respects its bound (plus the in-service slack), and crashed stations
// hold nothing. Panics with a structured report on the first violation.
func (a *Auditor) Event(now int64) {
	if a == nil {
		return
	}
	a.n++
	if now < a.last {
		a.violate("event-time monotonicity",
			"event at t=%d after event at t=%d", now, a.last)
	}
	a.last = now
	a.checkQueues()
}

// AtDrain validates the end-of-run catalogue after the engine has
// quiesced: tap consistency and crashed-station custody as in Event.
// (Pool conservation is checked by the caller via CheckPoolConservation,
// which has the counters in hand.)
func (a *Auditor) AtDrain() {
	if a == nil {
		return
	}
	a.checkQueues()
}

func (a *Auditor) checkQueues() {
	for _, t := range a.taps {
		actual := t.lenFn()
		if t.depth != actual {
			a.violate("queue custody balance",
				"station %d: tap depth %d, queue reports %d", t.station, t.depth, actual)
		}
		if actual > t.limit+QueueBoundSlack {
			a.violate("queue bound respect",
				"station %d: depth %d exceeds limit %d + slack %d",
				t.station, actual, t.limit, QueueBoundSlack)
		}
		if a.down[t.station] && actual != 0 {
			a.violate("crashed-station custody",
				"station %d is down but holds %d packets", t.station, actual)
		}
	}
}

// violate panics with a structured report naming the broken invariant.
func (a *Auditor) violate(invariant, format string, args ...any) {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: invariant violated: %s\n", invariant)
	fmt.Fprintf(&b, "  detail: %s\n", fmt.Sprintf(format, args...))
	fmt.Fprintf(&b, "  after event %d at t=%d", a.n, a.last)
	panic(b.String())
}

// CheckPoolConservation verifies the packet-pool conservation identity —
// every allocation is exactly one of delivered, dropped, or still in
// flight — and panics with a structured report when it fails. Maintained
// always-on: the counters it reads cost one increment per packet
// lifetime, so every run checks it at drain, deep mode or not.
func CheckPoolConservation(gets, delivered, dropped, inUse int) {
	if gets == delivered+dropped+inUse {
		return
	}
	panic(fmt.Sprintf(
		"audit: invariant violated: packet conservation\n"+
			"  detail: allocated %d != delivered %d + dropped %d + in-flight %d (= %d)",
		gets, delivered, dropped, inUse, delivered+dropped+inUse))
}
