package audit

import (
	"strings"
	"testing"
)

// mustViolate runs fn and requires it to panic with a report naming the
// given invariant.
func mustViolate(t *testing.T, invariant string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no violation reported for %q", invariant)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "audit: invariant violated") ||
			!strings.Contains(msg, invariant) {
			t.Fatalf("violation report %v does not name %q", r, invariant)
		}
	}()
	fn()
}

// TestNilAuditorInert pins the wiring contract: every method — and the
// taps a nil auditor hands out — must be a safe no-op, so audit-off code
// paths need no conditionals.
func TestNilAuditorInert(t *testing.T) {
	var a *Auditor
	tap := a.RegisterQueue(1, 10, func() int { return 99 })
	if tap != nil {
		t.Fatalf("nil auditor returned a live tap %+v", tap)
	}
	tap.Enq()
	tap.Deq()
	a.StationDown(1)
	a.StationUp(1)
	a.Event(5)
	a.Event(3) // would violate monotonicity on a live auditor
	a.AtDrain()
}

// TestEventTimeMonotonicity: equal times are fine (many events share an
// instant), going backwards is not.
func TestEventTimeMonotonicity(t *testing.T) {
	a := New()
	a.Event(5)
	a.Event(5)
	a.Event(7)
	mustViolate(t, "event-time monotonicity", func() { a.Event(3) })
}

// TestQueueCustodyBalance: a queue mutation that bypasses the taps is
// caught at the next event.
func TestQueueCustodyBalance(t *testing.T) {
	a := New()
	depth := 0
	tap := a.RegisterQueue(7, 4, func() int { return depth })
	tap.Enq()
	depth++
	a.Event(1)
	tap.Deq()
	depth--
	a.Event(2)
	depth++ // untracked mutation
	mustViolate(t, "queue custody balance", func() { a.Event(3) })
}

// TestQueueBoundRespect: the limit plus the in-service slack is the hard
// ceiling; one past it is a violation.
func TestQueueBoundRespect(t *testing.T) {
	a := New()
	depth := 0
	tap := a.RegisterQueue(2, 2, func() int { return depth })
	for i := 0; i < 2+QueueBoundSlack; i++ {
		tap.Enq()
		depth++
	}
	a.Event(1) // exactly at limit+slack: allowed
	tap.Enq()
	depth++
	mustViolate(t, "queue bound respect", func() { a.Event(2) })
}

// TestCrashedStationCustody: a down station holding packets violates; a
// drained one does not, and StationUp restores normal accounting.
func TestCrashedStationCustody(t *testing.T) {
	a := New()
	depth := 0
	tap := a.RegisterQueue(3, 4, func() int { return depth })
	tap.Enq()
	depth++
	a.Event(1)
	a.StationDown(3)
	mustViolate(t, "crashed-station custody", func() { a.Event(2) })
	tap.Deq()
	depth--
	a.Event(3) // drained: a down station may hold nothing, and holds nothing
	a.StationUp(3)
	tap.Enq()
	depth++
	a.Event(4) // back up: holding packets is normal again
	a.AtDrain()
}

// TestAtDrainChecksQueues: the end-of-run sweep applies the same custody
// checks as per-event validation.
func TestAtDrainChecksQueues(t *testing.T) {
	a := New()
	depth := 0
	a.RegisterQueue(1, 4, func() int { return depth })
	a.AtDrain()
	depth = 2 // both tap (0) and queue (2) claim different custody
	mustViolate(t, "queue custody balance", func() { a.AtDrain() })
}

// TestCheckPoolConservation pins the always-on identity: allocated =
// delivered + dropped + in-flight.
func TestCheckPoolConservation(t *testing.T) {
	CheckPoolConservation(0, 0, 0, 0)
	CheckPoolConservation(10, 4, 3, 3)
	mustViolate(t, "packet conservation", func() { CheckPoolConservation(10, 4, 3, 2) })
	mustViolate(t, "packet conservation", func() { CheckPoolConservation(10, 4, 3, 4) })
}
