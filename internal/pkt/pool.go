package pkt

// Pool is a per-run free list of Packets. The hot path of a simulation
// creates one Packet per transport emission and drops it at a terminal
// point (delivered to the endpoint, dropped by a full queue, or abandoned
// at the MAC retry limit); a Pool recycles those structs so a steady-state
// run allocates no new packets at all.
//
// Packets are shared by reference across layers — a source's in-service
// batch, in-flight frames (including duplicates relayed opportunistically),
// forwarder custody closures and the destination's resequencing buffer can
// all hold the same *Packet at once — so recycling is reference-counted:
// every holder that retains a packet beyond a single callback calls Ref,
// and Release returns the struct to the pool only when the last reference
// drops. Forgetting a Release merely leaks the packet to the garbage
// collector (correct, just not recycled). An unbalanced extra Release is a
// use-after-free bug the counter cannot fully detect — it looks like a
// legitimate last release and recycles the struct early — so the guard in
// Release only catches releases of an already-drained packet; the real
// nets are the determinism tests and the byte-identical single-seed
// experiment outputs, which any early recycle perturbs.
//
// A Pool belongs to one simulation run on one goroutine (like the Engine it
// accompanies); it is not safe for concurrent use. Packets created without
// a pool (plain &Packet{}) ignore Ref/Release entirely, so tests and cold
// paths need no ceremony.
type Pool struct {
	free []*Packet
	// outstanding counts packets handed out by Get and not yet fully
	// released — the pool-balance invariant the fault-injection tests
	// assert after crashing stations mid-custody.
	outstanding int
	// Always-on conservation counters (see audit.CheckPoolConservation):
	// gets counts allocations, and every final Release classifies its
	// packet as delivered (MarkDelivered was called) or dropped. The
	// identity gets == recDelivered + recDropped + outstanding holds at
	// every instant.
	gets         int
	recDelivered int
	recDropped   int
}

// Get returns a packet with every field zeroed and one reference held by
// the caller. The caller transfers that reference into the MAC send queue
// via Scheme.Send (which releases it when the queue rejects the packet).
func (pl *Pool) Get() *Packet {
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
	} else {
		p = &Packet{}
	}
	p.pool = pl
	p.refs = 1
	pl.outstanding++
	pl.gets++
	return p
}

// Free reports how many packets are currently pooled (tests).
func (pl *Pool) Free() int { return len(pl.free) }

// InUse reports how many packets are currently out of the pool — Get
// calls not yet balanced by a final Release. A quiescent network must
// read 0 here, even after stations crashed while holding custody.
func (pl *Pool) InUse() int { return pl.outstanding }

// Ref notes an additional long-lived holder of the packet: call it when
// retaining a received packet beyond the current callback (queueing it for
// relay, buffering it for resequencing, arming a relay timer over it). A
// no-op for packets not owned by a Pool.
func (p *Packet) Ref() {
	if p.pool != nil {
		p.refs++
	}
}

// Release drops one reference; the last release resets the packet and
// returns it to its pool. A no-op for packets not owned by a Pool.
func (p *Packet) Release() {
	if p.pool == nil {
		return
	}
	if p.refs <= 0 {
		panic("pkt: packet released more often than referenced")
	}
	p.refs--
	if p.refs > 0 {
		return
	}
	// Classify before the reset wipes the flag.
	pl := p.pool
	if p.delivered {
		pl.recDelivered++
	} else {
		pl.recDropped++
	}
	*p = Packet{}
	pl.free = append(pl.free, p)
	pl.outstanding--
}

// Counters returns the pool's conservation counters: total allocations,
// and final releases classified as delivered or dropped. At any instant
// gets == delivered + dropped + InUse().
func (pl *Pool) Counters() (gets, delivered, dropped int) {
	return pl.gets, pl.recDelivered, pl.recDropped
}

// BeginAir marks a data frame as in flight with n pending PHY completions
// (the transmitter's own tx-done plus one reception end per scheduled
// receiver) and takes one reference on every aggregated packet for the
// frame's airtime. The radio medium calls it at transmit time so packets
// stay alive for late duplicate receptions even after the source abandons
// them; each completion calls AirDone and the last one releases the hold.
// Frames without packets (ACK/RTS/CTS) take no hold and AirDone ignores
// them.
func (f *Frame) BeginAir(n int) {
	if len(f.Packets) == 0 || n <= 0 {
		return
	}
	f.air = int32(n)
	for _, p := range f.Packets {
		p.Ref()
	}
}

// AirDone retires one pending PHY completion of the frame; the last one
// releases the airtime hold on the frame's packets.
func (f *Frame) AirDone() {
	if f.air == 0 {
		return
	}
	f.air--
	if f.air > 0 {
		return
	}
	for _, p := range f.Packets {
		p.Release()
	}
}
