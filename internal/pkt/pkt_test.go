package pkt

import (
	"testing"
	"testing/quick"
)

func TestPayloadBytesSinglePacket(t *testing.T) {
	f := &Frame{
		Kind:    Data,
		Packets: []*Packet{{Bytes: 1000}},
	}
	// Plain DCF framing: MAC header + body, no per-packet header.
	if got := f.PayloadBytes(34, 0, 0); got != 1034 {
		t.Fatalf("PayloadBytes = %d, want 1034", got)
	}
}

func TestPayloadBytesAggregated(t *testing.T) {
	f := &Frame{Kind: Data}
	for i := 0; i < 16; i++ {
		f.Packets = append(f.Packets, &Packet{Bytes: 1000})
	}
	// 34 header + 16*(1000+8) per-packet.
	if got := f.PayloadBytes(34, 8, 0); got != 34+16*1008 {
		t.Fatalf("PayloadBytes = %d", got)
	}
}

func TestPayloadBytesForwarderList(t *testing.T) {
	f := &Frame{
		Kind:    Data,
		FwdList: []NodeID{3, 2, 1},
		Packets: []*Packet{{Bytes: 1000}},
	}
	if got := f.PayloadBytes(34, 0, 6); got != 34+18+1000 {
		t.Fatalf("PayloadBytes = %d, want %d", got, 34+18+1000)
	}
}

func TestRankOf(t *testing.T) {
	f := &Frame{FwdList: []NodeID{3, 2, 1}}
	cases := []struct {
		node NodeID
		want int
	}{{3, 0}, {2, 1}, {1, 2}, {0, -1}, {9, -1}}
	for _, c := range cases {
		if got := f.RankOf(c.node); got != c.want {
			t.Errorf("RankOf(%d) = %d, want %d", c.node, got, c.want)
		}
	}
}

func TestAllOK(t *testing.T) {
	f := &Frame{PktOK: []bool{true, true, true}}
	if !f.AllOK() {
		t.Fatal("AllOK should be true")
	}
	f.PktOK[1] = false
	if f.AllOK() {
		t.Fatal("AllOK should be false with a corrupted sub-packet")
	}
}

func TestCloneSharesImmutableResetsPerReception(t *testing.T) {
	f := &Frame{
		Kind:      Data,
		FwdList:   []NodeID{3, 2, 1},
		Packets:   []*Packet{{UID: 1}, {UID: 2}},
		AckedUIDs: []uint64{7},
		PktOK:     []bool{true, false},
	}
	f.BeginAir(2)
	g := f.Clone()
	// Transmitted frames are immutable, so the clone shares the forwarder
	// list, ACK bitmap and packet pointers with the original.
	if &g.FwdList[0] != &f.FwdList[0] || &g.AckedUIDs[0] != &f.AckedUIDs[0] {
		t.Fatal("Clone should share the immutable slices")
	}
	if g.Packets[0] != f.Packets[0] {
		t.Fatal("Clone should share packet pointers")
	}
	if g.PktOK != nil || g.air != 0 {
		t.Fatal("Clone must reset per-reception state")
	}
}

// Property: RankOf is the inverse of list indexing.
func TestRankOfProperty(t *testing.T) {
	prop := func(ids []uint8) bool {
		seen := map[NodeID]bool{}
		var list []NodeID
		for _, id := range ids {
			n := NodeID(id)
			if !seen[n] {
				seen[n] = true
				list = append(list, n)
			}
		}
		f := &Frame{FwdList: list}
		for i, n := range list {
			if f.RankOf(n) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameKindString(t *testing.T) {
	if Data.String() != "DATA" || Ack.String() != "ACK" {
		t.Fatal("FrameKind labels wrong")
	}
	if FrameKind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}
