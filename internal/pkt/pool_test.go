package pkt

import "testing"

func TestPoolRecyclesAndResets(t *testing.T) {
	var pl Pool
	p := pl.Get()
	p.UID = 7
	p.FlowID = 3
	p.Bytes = 1000
	p.Transport = "header"
	p.Release()
	if pl.Free() != 1 {
		t.Fatalf("Free = %d, want 1", pl.Free())
	}
	q := pl.Get()
	if q != p {
		t.Fatal("Get should reuse the released packet")
	}
	if q.UID != 0 || q.FlowID != 0 || q.Bytes != 0 || q.Transport != nil {
		t.Fatalf("recycled packet not reset: %+v", q)
	}
	if pl.Free() != 0 {
		t.Fatalf("Free = %d, want 0", pl.Free())
	}
}

func TestPoolRefCountingDelaysRecycle(t *testing.T) {
	var pl Pool
	p := pl.Get()
	p.Ref() // second holder (e.g. a resequencing buffer)
	p.Release()
	if pl.Free() != 0 {
		t.Fatal("packet recycled while a reference was still held")
	}
	p.Release()
	if pl.Free() != 1 {
		t.Fatal("last Release should recycle")
	}
}

func TestPoolOverReleasePanics(t *testing.T) {
	var pl Pool
	p := pl.Get()
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a recycled packet should panic")
		}
	}()
	// The recycled struct is back in the pool with refs == 0; releasing it
	// again is the use-after-free bug the panic guards against.
	p.pool = &pl // re-attach: Get() normally does this
	p.Release()
}

func TestUnpooledPacketsIgnoreRefs(t *testing.T) {
	p := &Packet{UID: 1}
	p.Ref()
	p.Release()
	p.Release() // no pool: all no-ops, never panics
	if p.UID != 1 {
		t.Fatal("unpooled packet must not be reset")
	}
}

func TestFrameAirHold(t *testing.T) {
	var pl Pool
	a, b := pl.Get(), pl.Get()
	f := &Frame{Kind: Data, Packets: []*Packet{a, b}}
	f.BeginAir(3) // tx-done + two receivers
	a.Release()   // the original owner abandons the packets mid-flight
	b.Release()
	if pl.Free() != 0 {
		t.Fatal("airtime hold must keep in-flight packets alive")
	}
	f.AirDone()
	f.AirDone()
	if pl.Free() != 0 {
		t.Fatal("hold released before the last PHY completion")
	}
	f.AirDone()
	if pl.Free() != 2 {
		t.Fatalf("Free = %d, want 2 after the frame left the air", pl.Free())
	}
	f.AirDone() // extra completions on a drained frame are ignored
}

func TestFrameAirHoldSkipsControlFrames(t *testing.T) {
	f := &Frame{Kind: Ack}
	f.BeginAir(2)
	f.AirDone() // must not underflow or panic without packets
}

func TestPoolConservationCounters(t *testing.T) {
	// The always-on identity: gets == delivered + dropped + InUse at every
	// instant, with classification happening only at the final release.
	var pl Pool
	check := func(wantGets, wantDel, wantDrop, wantUse int) {
		t.Helper()
		gets, del, drop := pl.Counters()
		if gets != wantGets || del != wantDel || drop != wantDrop || pl.InUse() != wantUse {
			t.Fatalf("counters = (gets %d, delivered %d, dropped %d, in-use %d), want (%d, %d, %d, %d)",
				gets, del, drop, pl.InUse(), wantGets, wantDel, wantDrop, wantUse)
		}
		if gets != del+drop+pl.InUse() {
			t.Fatalf("conservation identity broken: %d != %d+%d+%d", gets, del, drop, pl.InUse())
		}
	}

	a, b, c := pl.Get(), pl.Get(), pl.Get()
	check(3, 0, 0, 3)
	a.MarkDelivered()
	a.Release()
	check(3, 1, 0, 2)
	b.Release() // never marked: dropped
	check(3, 1, 1, 1)

	// A referenced packet classifies once, at its final release.
	c.Ref()
	c.MarkDelivered()
	c.Release()
	check(3, 1, 1, 1)
	c.Release()
	check(3, 2, 1, 0)

	// A recycled packet starts unclassified: the delivered flag must not
	// leak across lifetimes.
	d := pl.Get()
	check(4, 2, 1, 1)
	d.Release()
	check(4, 2, 2, 0)
}

func TestMarkDeliveredPoolLessNoop(t *testing.T) {
	p := &Packet{}
	p.MarkDelivered() // must not panic or set state on a pool-less packet
	p.Release()
}
