package pkt

import "testing"

func TestPoolRecyclesAndResets(t *testing.T) {
	var pl Pool
	p := pl.Get()
	p.UID = 7
	p.FlowID = 3
	p.Bytes = 1000
	p.Transport = "header"
	p.Release()
	if pl.Free() != 1 {
		t.Fatalf("Free = %d, want 1", pl.Free())
	}
	q := pl.Get()
	if q != p {
		t.Fatal("Get should reuse the released packet")
	}
	if q.UID != 0 || q.FlowID != 0 || q.Bytes != 0 || q.Transport != nil {
		t.Fatalf("recycled packet not reset: %+v", q)
	}
	if pl.Free() != 0 {
		t.Fatalf("Free = %d, want 0", pl.Free())
	}
}

func TestPoolRefCountingDelaysRecycle(t *testing.T) {
	var pl Pool
	p := pl.Get()
	p.Ref() // second holder (e.g. a resequencing buffer)
	p.Release()
	if pl.Free() != 0 {
		t.Fatal("packet recycled while a reference was still held")
	}
	p.Release()
	if pl.Free() != 1 {
		t.Fatal("last Release should recycle")
	}
}

func TestPoolOverReleasePanics(t *testing.T) {
	var pl Pool
	p := pl.Get()
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a recycled packet should panic")
		}
	}()
	// The recycled struct is back in the pool with refs == 0; releasing it
	// again is the use-after-free bug the panic guards against.
	p.pool = &pl // re-attach: Get() normally does this
	p.Release()
}

func TestUnpooledPacketsIgnoreRefs(t *testing.T) {
	p := &Packet{UID: 1}
	p.Ref()
	p.Release()
	p.Release() // no pool: all no-ops, never panics
	if p.UID != 1 {
		t.Fatal("unpooled packet must not be reset")
	}
}

func TestFrameAirHold(t *testing.T) {
	var pl Pool
	a, b := pl.Get(), pl.Get()
	f := &Frame{Kind: Data, Packets: []*Packet{a, b}}
	f.BeginAir(3) // tx-done + two receivers
	a.Release()   // the original owner abandons the packets mid-flight
	b.Release()
	if pl.Free() != 0 {
		t.Fatal("airtime hold must keep in-flight packets alive")
	}
	f.AirDone()
	f.AirDone()
	if pl.Free() != 0 {
		t.Fatal("hold released before the last PHY completion")
	}
	f.AirDone()
	if pl.Free() != 2 {
		t.Fatalf("Free = %d, want 2 after the frame left the air", pl.Free())
	}
	f.AirDone() // extra completions on a drained frame are ignored
}

func TestFrameAirHoldSkipsControlFrames(t *testing.T) {
	f := &Frame{Kind: Ack}
	f.BeginAir(2)
	f.AirDone() // must not underflow or panic without packets
}
