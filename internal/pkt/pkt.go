// Package pkt defines the units that move through the simulated network:
// upper-layer Packets and MAC-layer Frames (possibly aggregating several
// packets, as in AFR and RIPPLE).
package pkt

import (
	"fmt"

	"ripple/internal/sim"
)

// NodeID identifies a station in the topology. IDs are dense indices.
type NodeID int

// Broadcast is the pseudo-receiver of frames without a single intended
// recipient (opportunistic data frames).
const Broadcast NodeID = -1

// Packet is one upper-layer packet (what the paper calls a "packet", as
// opposed to the MAC "frame" that may carry several of them).
type Packet struct {
	// UID is unique across the whole simulation run; used for duplicate
	// suppression and ACK bookkeeping.
	UID uint64
	// FlowID identifies the end-to-end flow the packet belongs to.
	FlowID int
	// Seq is the flow-local sequence number (0-based, per direction),
	// assigned by the transport layer. Transport retransmissions reuse it.
	Seq int64
	// MacSeq is the MAC-layer stream sequence number assigned when the
	// packet first enters a send queue (Sq). Unlike Seq it is unique per
	// MAC transmission stream — a transport retransmission gets a fresh
	// MacSeq — which is what the RIPPLE resequencing queue (Rq) orders by.
	MacSeq int64
	// Bytes is the upper-layer size (TCP data: 1000, TCP ACK: 40, ...).
	Bytes int
	// Src and Dst are the end-to-end endpoints.
	Src, Dst NodeID
	// Created is when the packet entered the sender's queue (for delay).
	Created sim.Time
	// Transport carries the protocol header as a typed value (e.g.
	// *transport.Segment); the simulator never serialises it.
	Transport any
	// EnqueuedAt records when the packet most recently entered a MAC
	// queue, for queueing-delay statistics.
	EnqueuedAt sim.Time
	// Retries counts MAC-layer (re)transmissions of this packet so far.
	Retries int

	// pool and refs implement per-run recycling (see Pool): refs counts
	// long-lived holders and the last Release returns the struct to pool.
	// Both are zero for packets created outside a pool, which makes
	// Ref/Release no-ops.
	pool *Pool
	refs int32
	// delivered marks a packet that reached its endpoint, so the final
	// Release can classify it for the pool's conservation counters.
	delivered bool
}

// MarkDelivered flags the packet as having reached its endpoint. The
// final Release classifies it as delivered rather than dropped in the
// pool's conservation counters (see Pool.Counters). Idempotent; a no-op
// for packets created outside a pool.
func (p *Packet) MarkDelivered() {
	if p.pool != nil {
		p.delivered = true
	}
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{flow=%d seq=%d %d->%d %dB}", p.FlowID, p.Seq, p.Src, p.Dst, p.Bytes)
}

// FrameKind distinguishes the MAC frame types the schemes exchange.
type FrameKind int

const (
	// Data is a (possibly aggregated) data frame.
	Data FrameKind = iota + 1
	// Ack is a MAC acknowledgement (plain or bitmap).
	Ack
	// Rts is a request-to-send control frame (802.11 RTS/CTS option).
	Rts
	// Cts is a clear-to-send control frame.
	Cts
)

func (k FrameKind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Rts:
		return "RTS"
	case Cts:
		return "CTS"
	default:
		return fmt.Sprintf("FrameKind(%d)", int(k))
	}
}

// Frame is one MAC-to-PHY transmission.
type Frame struct {
	Kind FrameKind
	// Tx is the transmitting station of this emission (for relayed frames,
	// the relay, not the original source).
	Tx NodeID
	// Rx is the intended receiver for unicast exchanges, or Broadcast for
	// opportunistic data frames addressed to a forwarder list.
	Rx NodeID
	// Origin is the station that initiated the transmission opportunity
	// this frame belongs to (the mTXOP source for RIPPLE relays; equals Tx
	// for non-relayed frames).
	Origin NodeID
	// FinalDst is the end-to-end destination of the TXOP (the highest
	// priority "forwarder").
	FinalDst NodeID

	// FwdList is the prioritised forwarder list carried by opportunistic
	// frames, ordered destination-first: FwdList[0] is the final
	// destination, FwdList[1] the forwarder closest to it, and so on up to
	// the source's neighbour. Empty for predetermined schemes.
	FwdList []NodeID

	// TxopID identifies the transmission opportunity (source-assigned);
	// relays preserve it so stations can suppress duplicate relays.
	TxopID uint64

	// Packets are the aggregated upper-layer packets in a Data frame.
	Packets []*Packet
	// PktOK, set by the PHY on reception, records which sub-packets
	// survived the bit-error process. len == len(Packets).
	PktOK []bool

	// AckedUIDs lists the packet UIDs acknowledged by a bitmap Ack frame.
	AckedUIDs []uint64
	// Acker is the station that generated an Ack frame (opportunistic
	// schemes need to distinguish which forwarder acknowledged).
	Acker NodeID
	// AckerRank is the acker's priority rank in the forwarder list of the
	// acknowledged data frame (0 = destination).
	AckerRank int

	// FlowID tags the frame with the flow whose TXOP this is (stats).
	FlowID int

	// Duration is the airtime, filled by the sender from phys.Params.
	Duration sim.Time

	// RateBps is the PHY data rate of the frame body when the multi-rate
	// extension is active; 0 means the configuration's base data rate.
	// Faster rates shrink Duration but raise the decode threshold.
	RateBps float64

	// NavDur, on RTS/CTS frames, announces how long the remaining exchange
	// will occupy the channel; overhearing stations set their network
	// allocation vector (virtual carrier sense) accordingly.
	NavDur sim.Time

	// air counts the frame's pending PHY completions while it is on the
	// medium (see BeginAir/AirDone): the airtime reference that keeps
	// pooled packets alive until every receiver has processed the frame.
	air int32
}

// PayloadBytes returns the MAC payload size of a data frame: MAC header,
// forwarder list, and each sub-packet with its per-packet CRC header when
// aggregated. The caller converts this to airtime via phys.Params.
func (f *Frame) PayloadBytes(macHeader, perPktHdr, fwdEntry int) int {
	n := macHeader + len(f.FwdList)*fwdEntry
	for _, p := range f.Packets {
		n += p.Bytes
		if len(f.Packets) > 1 || perPktHdr > 0 {
			n += perPktHdr
		}
	}
	return n
}

// AllOK reports whether every sub-packet survived reception.
func (f *Frame) AllOK() bool {
	for _, ok := range f.PktOK {
		if !ok {
			return false
		}
	}
	return true
}

// RankOf returns the position of node in the forwarder list (0 = final
// destination, 1 = forwarder closest to it, ...), or -1 if absent.
func (f *Frame) RankOf(node NodeID) int {
	for i, id := range f.FwdList {
		if id == node {
			return i
		}
	}
	return -1
}

// Clone returns a shallow copy suitable for relaying. FwdList, AckedUIDs
// and the packet pointers are shared with the original: all three are
// immutable once a frame has been transmitted, and relays either keep them
// verbatim (ACK relays) or replace the Packets slice wholesale with the
// sub-packets they actually decoded (data relays). Per-reception state
// (PktOK, the airtime hold) is reset.
func (f *Frame) Clone() *Frame {
	g := *f
	g.PktOK = nil
	g.air = 0
	return &g
}
