package topology

import (
	"fmt"

	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
)

// Roofnet returns the Fig. 11 topology: a Roofnet-like rooftop mesh. The
// MIT GPS coordinates file the paper derives Fig. 11 from is not reachable
// offline, so this is a synthetic 30-node layout with the same character:
// an irregular cluster roughly 1.3 km across whose nearest-neighbour links
// are 90-160 m, dense in the core and sparse at the edges, so that 3-5-hop
// source/destination pairs exist (which is all Fig. 12 uses).
func Roofnet() Topology {
	return Topology{
		Name: "roofnet",
		Positions: []radio.Pos{
			{X: 0, Y: 340}, {X: 110, Y: 260}, {X: 90, Y: 440}, {X: 210, Y: 360},
			{X: 230, Y: 180}, {X: 320, Y: 280}, {X: 300, Y: 460}, {X: 420, Y: 380},
			{X: 410, Y: 200}, {X: 390, Y: 540}, {X: 520, Y: 300}, {X: 540, Y: 460},
			{X: 500, Y: 140}, {X: 630, Y: 380}, {X: 610, Y: 220}, {X: 650, Y: 540},
			{X: 730, Y: 300}, {X: 720, Y: 460}, {X: 710, Y: 140}, {X: 840, Y: 380},
			{X: 820, Y: 220}, {X: 850, Y: 540}, {X: 930, Y: 300}, {X: 940, Y: 460},
			{X: 920, Y: 160}, {X: 1040, Y: 380}, {X: 1030, Y: 220}, {X: 1060, Y: 540},
			{X: 1140, Y: 300}, {X: 1240, Y: 360},
		},
	}
}

// RoofnetFlow is one of the Fig. 12 test flows: an ETX-selected path of the
// labelled hop count, e.g. "3(1)" is the first 3-hop example.
type RoofnetFlow struct {
	Label string
	Path  routing.Path
}

// RoofnetFlows picks the Fig. 12 flow set from the topology using the ETX
// table: two examples each of 3, 4 and 5 hops ("transmissions between
// stations that are 4 or 5 hops apart", plus the 3-hop examples the figure
// labels). The hidden-terminal pair for the ±hidden variants is returned by
// RoofnetHiddenPair.
func RoofnetFlows(tab *routing.Table) ([]RoofnetFlow, error) {
	// Candidate endpoint pairs chosen left-to-right across the mesh.
	wanted := []struct {
		label    string
		src, dst pkt.NodeID
		hops     int
	}{
		{"3(1)", 0, 8, 3},
		{"3(2)", 1, 10, 3},
		{"4(1)", 0, 12, 4},
		{"4(2)", 1, 15, 4},
		{"5(1)", 0, 16, 5},
		{"5(2)", 1, 21, 5},
	}
	flows := make([]RoofnetFlow, 0, len(wanted))
	for _, w := range wanted {
		p, err := tab.ShortestPath(w.src, w.dst)
		if err != nil {
			return nil, fmt.Errorf("topology: roofnet flow %s: %w", w.label, err)
		}
		flows = append(flows, RoofnetFlow{Label: w.label, Path: p})
	}
	return flows, nil
}

// RoofnetHiddenPair appends the two hidden-terminal stations used in the
// "with hidden terminals" halves of Fig. 12 and returns their path. They
// sit near the mesh core, outside carrier-sense range of the western flow
// sources (with the HiddenRadio configuration) but within interference
// range of mid-path forwarders.
func RoofnetHiddenPair(t *Topology) routing.Path {
	base := len(t.Positions)
	t.Positions = append(t.Positions,
		radio.Pos{X: 680, Y: 760},
		radio.Pos{X: 580, Y: 700},
	)
	return routing.Path{pkt.NodeID(base), pkt.NodeID(base + 1)}
}
