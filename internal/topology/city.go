package topology

import (
	"fmt"

	"ripple/internal/radio"
	"ripple/internal/sim"
)

// This file provides the city-scale random-geometric topology the sparse
// link plan exists for: thousands to tens of thousands of stations laid
// out as a jittered block grid, the regime of the scaling-law experiments
// in Shin/Chung/Lee, "Parallel Opportunistic Routing in Wireless
// Networks" (throughput/delay vs N on 1k–20k-node topologies).

const (
	// CitySpacing is the default block pitch in metres. At 150 m a
	// station's four grid neighbors sit well inside the ≈258 m default
	// decode range even at maximum jitter, so the mesh is connected by
	// construction and ETX routing always finds a path.
	CitySpacing = 150
	// CityJitter is the default maximum per-axis perturbation in metres.
	// 40 m keeps the worst-case adjacent-station distance at
	// √((150+80)² + 80²) ≈ 244 m < 258 m while breaking the regular
	// grid's degenerate equal-distance ties.
	CityJitter = 40
	// CityPruneSigma is the neighbor-pruning cutoff CityRadio applies, in
	// shadowing deviations. The default 6σ cutoff keeps every station
	// within ≈4.3 km as a neighbor — ~2 500 stations at city density,
	// which defeats the point of a sparse plan. 3σ shrinks the pruning
	// radius to ≈1.4 km (~280 neighbors) at a false-prune probability of
	// Φ(−3) ≈ 1.3·10⁻³ per draw: a frame is very occasionally not sensed
	// by a station ~5 decode-ranges away that would have drawn an extreme
	// shadowing sample. That is invisible in delivery/delay statistics
	// but an order of magnitude in memory and build time at N = 20k.
	CityPruneSigma = 3
)

// CityParams parameterises the random-geometric city mesh.
type CityParams struct {
	// Rows and Cols give the block grid dimensions; stations are laid out
	// row-major, so station r*Cols+c sits near (c*Spacing, r*Spacing).
	Rows, Cols int
	// Spacing is the block pitch in metres (0 selects CitySpacing).
	Spacing float64
	// Jitter is the maximum uniform per-axis perturbation in metres
	// (negative selects CityJitter; 0 is an exact grid).
	Jitter float64
	// Seed drives the deterministic jitter draw: equal params produce
	// bit-identical topologies.
	Seed uint64
}

func (p CityParams) normalize() CityParams {
	if p.Spacing == 0 {
		p.Spacing = CitySpacing
	}
	if p.Jitter < 0 {
		p.Jitter = CityJitter
	}
	return p
}

// City returns the jittered block-grid city mesh for the given parameters.
// The layout is a pure function of the parameters: positions come from a
// dedicated RNG stream seeded by p.Seed, so topologies are reproducible
// across runs and machines.
func City(p CityParams) Topology {
	p = p.normalize()
	rng := sim.NewRNG(p.Seed, 0xC17F)
	t := Topology{
		Name:      fmt.Sprintf("city-%dx%d", p.Rows, p.Cols),
		Positions: make([]radio.Pos, 0, p.Rows*p.Cols),
	}
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			t.Positions = append(t.Positions, radio.Pos{
				X: float64(c)*p.Spacing + (rng.Float64()*2-1)*p.Jitter,
				Y: float64(r)*p.Spacing + (rng.Float64()*2-1)*p.Jitter,
			})
		}
	}
	return t
}

// CityN returns a near-square city of at least n stations with the default
// spacing and jitter, plus the resolved parameters (callers use Rows/Cols
// to pick flow endpoints on the block grid). The station count is rounded
// up to the next full Rows×Cols rectangle so every row is complete.
func CityN(n int, seed uint64) (Topology, CityParams) {
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	p := CityParams{Rows: rows, Cols: cols, Spacing: CitySpacing, Jitter: CityJitter, Seed: seed}
	return City(p), p
}

// CityRadio returns the radio configuration for city-scale worlds: the
// paper's propagation model with the neighbor-pruning cutoff tightened to
// CityPruneSigma (see that constant for the fidelity/footprint tradeoff).
func CityRadio() radio.Config {
	c := radio.DefaultConfig()
	c.PruneSigma = CityPruneSigma
	return c
}
