package topology

import (
	"strconv"
	"strings"

	"ripple/internal/radio"
	"ripple/internal/routing"
)

// Wigle returns the Fig. 9 topology: eight access points whose positions
// are digitized to reproduce the connectivity of the Wigle-database
// topology the paper adapts from Mishra et al. (MobiCom 2006), plus the two
// extra stations S and R the paper adds as a hidden-terminal pair. The
// exact database coordinates are not available offline; the layout below
// preserves what the experiments depend on — the flows of Fig. 10 exist
// with the same hop counts (e.g. 1-4-6-8 is 3 hops, 8-7-5 is 2 hops), and
// the network's diameter keeps most flows at 1-3 hops.
//
// Station indices are zero-based: node i here is station i+1 in the paper;
// S and R are nodes 8 and 9.
func Wigle() (Topology, []routing.Path, routing.Path) {
	t := Topology{
		Name: "wigle",
		Positions: []radio.Pos{
			0: {X: 0, Y: 60},    // station 1
			1: {X: 80, Y: 0},    // station 2
			2: {X: 60, Y: 150},  // station 3
			3: {X: 140, Y: 90},  // station 4
			4: {X: 260, Y: 30},  // station 5
			5: {X: 250, Y: 140}, // station 6
			6: {X: 330, Y: 100}, // station 7
			7: {X: 360, Y: 210}, // station 8
			8: {X: 620, Y: 120}, // S (hidden source)
			9: {X: 520, Y: 120}, // R (hidden destination)
		},
	}
	// The eight randomly picked station pairs of Fig. 10, using the
	// paper's labelling convention (path given as station sequence).
	flows := []routing.Path{
		{0, 3, 5, 7}, // 1-4-6-8
		{7, 6, 4},    // 8-7-5
		{1, 3, 5},    // 2-4-6
		{2, 3, 4},    // 3-4-5
		{0, 3},       // 1-4
		{4, 6, 7},    // 5-7-8
		{5, 3, 1},    // 6-4-2
		{6, 4, 1},    // 7-5-2
	}
	hidden := routing.Path{8, 9}
	return t, flows, hidden
}

// WigleFlowLabel formats a path using the paper's one-based station labels
// (e.g. "1-4-6-8") for the Fig. 10 x-axis.
func WigleFlowLabel(p routing.Path) string {
	parts := make([]string, len(p))
	for i, n := range p {
		parts[i] = strconv.Itoa(int(n) + 1)
	}
	return strings.Join(parts, "-")
}
