package topology

import (
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
)

func dist(t Topology, a, b int) float64 {
	return radio.Dist(t.Positions[a], t.Positions[b])
}

// TestFig1LinkBudget checks the property §IV-A constructs: per-hop links of
// the Table II routes are good, while the direct source→destination links
// are poor — "one-hop routing is inefficient".
func TestFig1LinkBudget(t *testing.T) {
	top := Fig1()
	rc := radio.DefaultConfig()
	if len(top.Positions) != 8 {
		t.Fatalf("Fig.1 has %d stations, want 8", len(top.Positions))
	}
	// Every hop of every Table II route: loss below 35%.
	for _, rs := range routing.RouteSets() {
		for fi, p := range rs.Flows() {
			for i := 0; i+1 < len(p); i++ {
				d := dist(top, int(p[i]), int(p[i+1]))
				if loss := rc.LossProb(d); loss > 0.35 {
					t.Errorf("%s flow %d hop %d→%d: %.0fm loss %.2f too high",
						rs.Name, fi+1, p[i], p[i+1], d, loss)
				}
			}
		}
	}
	// Direct links for flows 1 and 2: loss above 50%.
	for _, pair := range [][2]int{{0, 3}, {0, 4}} {
		d := dist(top, pair[0], pair[1])
		if loss := rc.LossProb(d); loss < 0.5 {
			t.Errorf("direct %d→%d: %.0fm loss %.2f too low for the SPR motivation",
				pair[0], pair[1], d, loss)
		}
	}
}

func TestLineSpacing(t *testing.T) {
	top, path := Line(5)
	if len(top.Positions) != 6 || len(path) != 6 {
		t.Fatalf("Line(5): %d stations, path %v", len(top.Positions), path)
	}
	for i := 0; i+1 < len(path); i++ {
		if d := dist(top, i, i+1); d != Hop {
			t.Fatalf("hop %d distance = %v, want %d", i, d, Hop)
		}
	}
	if err := path.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLineWithCrossIntersects(t *testing.T) {
	top, main, cross := LineWithCross(4)
	if err := main.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cross.Validate(); err != nil {
		t.Fatal(err)
	}
	if cross.Hops() != 3 {
		t.Fatalf("cross flow hops = %d, want 3", cross.Hops())
	}
	// The cross path's second node is on the main line.
	shared := cross[1]
	if !main.Contains(shared) {
		t.Fatalf("cross path %v does not intersect main %v", cross, main)
	}
	for _, n := range cross {
		if int(n) >= len(top.Positions) {
			t.Fatalf("cross node %d outside topology", n)
		}
	}
}

func TestRegularAllWithinCarrierSense(t *testing.T) {
	top, paths := Regular(10)
	rc := radio.DefaultConfig()
	cs := rc.CSRange()
	for i := range top.Positions {
		for j := i + 1; j < len(top.Positions); j++ {
			if d := dist(top, i, j); d > cs {
				t.Fatalf("stations %d,%d at %.0fm exceed CS range %.0fm", i, j, d, cs)
			}
		}
	}
	if len(paths) != 10 {
		t.Fatalf("paths = %d", len(paths))
	}
	for _, p := range paths {
		if p.Hops() != 3 {
			t.Fatalf("regular flow hops = %d, want 3", p.Hops())
		}
	}
}

// TestHiddenGeometry verifies the Fig. 5(b) construction: hidden sources
// are beyond the (narrowed) carrier-sense range of flow 1's source but
// within interference range of its destination.
func TestHiddenGeometry(t *testing.T) {
	top, main, hidden := Hidden(9)
	rc := HiddenRadio()
	cs := rc.CSRange()
	src, dst := int(main.Src()), int(main.Dst())
	if len(hidden) != 9 {
		t.Fatalf("hidden flows = %d", len(hidden))
	}
	for _, h := range hidden {
		hs := int(h.Src())
		if d := dist(top, src, hs); d < cs {
			t.Errorf("hidden source %d at %.0fm inside CS range %.0fm of main source", hs, d, cs)
		}
		// Interference range: close enough to the destination that a few
		// simultaneous hidden transmitters jointly break the capture
		// margin (aggregate interference), but far enough that a single
		// one is capture-protected (≥10 dB below the 100 m signal).
		d := dist(top, dst, hs)
		if d > 3*Hop {
			t.Errorf("hidden source %d at %.0fm too far from destination to interfere", hs, d)
		}
		rc2 := radio.DefaultConfig()
		oneInterfererMargin := rc2.MeanRxPowerDBm(Hop) - rc2.MeanRxPowerDBm(d)
		if oneInterfererMargin < rc2.CaptureDB {
			t.Errorf("hidden source %d at %.0fm: single-interferer margin %.1f dB below capture %v",
				hs, d, oneInterfererMargin, rc2.CaptureDB)
		}
	}
}

func TestHiddenRadioNarrowsCS(t *testing.T) {
	def := radio.DefaultConfig()
	hid := HiddenRadio()
	if hid.CSThreshDBm <= def.CSThreshDBm {
		t.Fatal("HiddenRadio must raise the CS threshold (narrow the range)")
	}
	if hid.CSRange() >= def.CSRange() {
		t.Fatal("HiddenRadio CS range must shrink")
	}
}

func TestWigleFlows(t *testing.T) {
	top, flows, hidden := Wigle()
	if len(top.Positions) != 10 {
		t.Fatalf("wigle stations = %d, want 10 (8 APs + S,R)", len(top.Positions))
	}
	if len(flows) != 8 {
		t.Fatalf("wigle flows = %d, want 8", len(flows))
	}
	rc := HiddenRadio()
	for _, p := range flows {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.Hops() < 1 || p.Hops() > 3 {
			t.Errorf("wigle flow %v has %d hops, want 1-3", p, p.Hops())
		}
		for i := 0; i+1 < len(p); i++ {
			d := dist(top, int(p[i]), int(p[i+1]))
			if loss := rc.LossProb(d); loss > 0.4 {
				t.Errorf("wigle hop %d→%d: %.0fm loss %.2f", p[i], p[i+1], d, loss)
			}
		}
	}
	if err := hidden.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := WigleFlowLabel(routing.Path{0, 3, 5, 7}); got != "1-4-6-8" {
		t.Fatalf("label = %q, want 1-4-6-8", got)
	}
}

func TestRoofnetFlowsHaveLabelledHopCounts(t *testing.T) {
	top := Roofnet()
	rc := HiddenRadio()
	tab := routing.NewTable(len(top.Positions), func(a, b pkt.NodeID) float64 {
		return 1 - rc.LossProb(dist(top, int(a), int(b)))
	}, 0.1)
	flows, err := RoofnetFlows(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 6 {
		t.Fatalf("roofnet flows = %d, want 6", len(flows))
	}
	want := map[string]int{"3(1)": 3, "3(2)": 3, "4(1)": 4, "4(2)": 4, "5(1)": 5, "5(2)": 5}
	for _, f := range flows {
		if err := f.Path.Validate(); err != nil {
			t.Fatal(err)
		}
		if f.Path.Hops() != want[f.Label] {
			t.Errorf("flow %s has %d hops, want %d (path %v)", f.Label, f.Path.Hops(), want[f.Label], f.Path)
		}
	}
}

func TestRoofnetHiddenPairAppends(t *testing.T) {
	top := Roofnet()
	n := len(top.Positions)
	p := RoofnetHiddenPair(&top)
	if len(top.Positions) != n+2 {
		t.Fatal("hidden pair must append two stations")
	}
	if int(p.Src()) != n || int(p.Dst()) != n+1 {
		t.Fatalf("hidden path = %v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
