package topology

import (
	"math"
	"reflect"
	"testing"

	"ripple/internal/radio"
)

func TestCityDeterministicAndSized(t *testing.T) {
	a, pa := CityN(500, 7)
	b, pb := CityN(500, 7)
	if !reflect.DeepEqual(a, b) || pa != pb {
		t.Fatal("CityN is not a pure function of (n, seed)")
	}
	if len(a.Positions) < 500 || len(a.Positions) != pa.Rows*pa.Cols {
		t.Fatalf("CityN(500) laid out %d stations for a %dx%d grid",
			len(a.Positions), pa.Rows, pa.Cols)
	}
	c, _ := CityN(500, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the same layout")
	}
}

// TestCityAdjacentStationsDecodable pins the connectivity-by-construction
// argument: with the default spacing and jitter every horizontally or
// vertically adjacent station pair stays within the default decode range,
// so a grid walk (and therefore ETX routing) always has usable links.
func TestCityAdjacentStationsDecodable(t *testing.T) {
	top, p := CityN(1000, 3)
	rc := CityRadio()
	maxRange := rc.RXRange()
	worst := 0.0
	for r := 0; r < p.Rows; r++ {
		for c := 0; c < p.Cols; c++ {
			i := r*p.Cols + c
			for _, j := range []int{i + 1, i + p.Cols} {
				if (j == i+1 && c == p.Cols-1) || j >= len(top.Positions) {
					continue
				}
				worst = math.Max(worst, radio.Dist(top.Positions[i], top.Positions[j]))
			}
		}
	}
	if worst >= maxRange {
		t.Fatalf("adjacent stations up to %.1fm apart, decode range %.1fm — mesh not connected by construction",
			worst, maxRange)
	}
}

func TestCityRadioPrunes(t *testing.T) {
	rc := CityRadio()
	if rc.PruneSigma != CityPruneSigma {
		t.Fatalf("CityRadio PruneSigma = %v, want %v", rc.PruneSigma, CityPruneSigma)
	}
	d := radio.DefaultConfig()
	d.PruneSigma = rc.PruneSigma
	if rc != d {
		t.Fatal("CityRadio must differ from the default profile only in PruneSigma")
	}
}
