// Package topology provides the station layouts of the paper's evaluation:
// the eight-station multi-flow topology of Fig. 1, the regular- and
// hidden-collision layouts of Fig. 5, line topologies of 2-7 hops (Fig. 7),
// the Wigle access-point topology (Fig. 9), and a Roofnet-like rooftop mesh
// (Fig. 11). Distances are in metres and calibrated against
// radio.DefaultConfig: a 100 m hop loses ≈0.5% of frames, 200 m ≈25%, and
// 300 m ≈65% (see DESIGN.md §6).
package topology

import (
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
)

// Hop is the reference hop distance in metres.
const Hop = 100

// Topology is a named set of station positions.
type Topology struct {
	Name      string
	Positions []radio.Pos
}

// Fig1 returns the eight-station topology of Fig. 1. Stations 0-3 form the
// main line (flows 1 and 2 run left to right); station 4 is the alternate
// destination near 3; stations 5-7 host flow 3, which intersects the other
// flows at station 1. The direct 0→3 distance is 300 m, making single-hop
// SPR poor while the 100-150 m relay hops are good — exactly the regime
// opportunistic routing targets.
func Fig1() Topology {
	return Topology{
		Name: "fig1",
		Positions: []radio.Pos{
			0: {X: 0, Y: 0},
			1: {X: 100, Y: 0},
			2: {X: 200, Y: 0},
			3: {X: 300, Y: 0},
			4: {X: 300, Y: 100},
			5: {X: 0, Y: 200},
			6: {X: 100, Y: 150},
			7: {X: 200, Y: 150},
		},
	}
}

// Line returns a straight multi-hop line of hops+1 stations spaced Hop
// apart, with the flow path covering the full line (Fig. 7(a)).
func Line(hops int) (Topology, routing.Path) {
	t := Topology{Name: "line"}
	path := make(routing.Path, hops+1)
	for i := 0; i <= hops; i++ {
		t.Positions = append(t.Positions, radio.Pos{X: float64(i * Hop)})
		path[i] = pktNode(i)
	}
	return t, path
}

// LineWithCross returns the Fig. 7(b) layout: the main line plus a 3-hop
// cross flow intersecting it at the line's middle station.
func LineWithCross(hops int) (Topology, routing.Path, routing.Path) {
	t, main := Line(hops)
	mid := hops / 2
	midX := float64(mid * Hop)
	base := len(t.Positions)
	t.Positions = append(t.Positions,
		radio.Pos{X: midX, Y: Hop},      // cross source
		radio.Pos{X: midX, Y: -Hop},     // cross forwarder 2
		radio.Pos{X: midX, Y: -2 * Hop}, // cross destination
	)
	cross := routing.Path{pktNode(base), pktNode(mid), pktNode(base + 1), pktNode(base + 2)}
	return t, main, cross
}

// Regular returns the Fig. 5(a) layout for the regular-collision
// experiment: nFlows parallel 3-hop flows packed vertically so that every
// station is within carrier-sense range of every other — collisions come
// from contention (same backoff slot), not hidden terminals.
func Regular(nFlows int) (Topology, []routing.Path) {
	t := Topology{Name: "regular"}
	paths := make([]routing.Path, 0, nFlows)
	const rowGap = 30
	for f := 0; f < nFlows; f++ {
		y := float64(f * rowGap)
		base := len(t.Positions)
		for i := 0; i < 4; i++ {
			t.Positions = append(t.Positions, radio.Pos{X: float64(i * Hop), Y: y})
		}
		paths = append(paths, routing.Path{
			pktNode(base), pktNode(base + 1), pktNode(base + 2), pktNode(base + 3),
		})
	}
	return t, paths
}

// HiddenCS is the carrier-sense threshold offset (dB below the decode
// threshold) used for the hidden-terminal layouts; the paper tunes
// carrier/receiving ranges per scenario (§IV-A). A 6 dB offset puts the
// hidden sources outside the main source's carrier-sense range while they
// still corrupt receptions near the main flow's destination.
const HiddenCS = 6

// Hidden returns the Fig. 5(b) layout: flow 1 is a 3-hop line 0→3; the
// sources of the nHidden interferer flows sit beyond carrier-sense range of
// station 0 but within interference range of flow 1's forwarders and
// destination. Returns the topology, flow 1's path, and the hidden paths.
func Hidden(nHidden int) (Topology, routing.Path, []routing.Path) {
	t := Topology{Name: "hidden"}
	for i := 0; i < 4; i++ {
		t.Positions = append(t.Positions, radio.Pos{X: float64(i * Hop)})
	}
	main := routing.Path{0, 1, 2, 3}
	var hidden []routing.Path
	for k := 0; k < nHidden; k++ {
		y := float64((k - nHidden/2) * 40)
		base := len(t.Positions)
		// Hidden sources sit ≈200 m past the destination: far enough that
		// one interferer is capture-protected at flow 1's receivers
		// (≥15 dB below the 100 m signal), close enough that the
		// *aggregate* interference of several simultaneous hidden
		// transmitters corrupts receptions — reproducing Fig. 6(b)'s
		// gradual collapse. They are >490 m from station 0: beyond even
		// the default carrier-sense range, i.e. truly hidden.
		t.Positions = append(t.Positions,
			radio.Pos{X: 500, Y: y}, // hidden source
			radio.Pos{X: 600, Y: y}, // its destination
		)
		hidden = append(hidden, routing.Path{pktNode(base), pktNode(base + 1)})
	}
	return t, main, hidden
}

// HiddenRadio returns the radio configuration used with hidden-terminal
// layouts: default propagation with the carrier-sense threshold raised to
// RXThresh − HiddenCS dB (carrier-sense range ≈ 1.3× decode range).
func HiddenRadio() radio.Config {
	c := radio.DefaultConfig()
	c.CSThreshDBm = c.RXThreshDBm - HiddenCS
	return c
}

func pktNode(i int) pkt.NodeID { return pkt.NodeID(i) }
