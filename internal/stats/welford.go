package stats

import "math"

// Welford accumulates mean and variance incrementally (Welford's online
// algorithm), so batch layers can stream per-seed metrics into a summary
// without retaining every sample. The zero value is ready to use.
type Welford struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 || x < w.min {
		w.min = x
	}
	if w.n == 1 || x > w.max {
		w.max = x
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator's state into w, exactly as if o's
// samples had been streamed in after w's (Chan et al.'s pairwise
// combination of mean and M2). This is what makes campaign cells shard
// cleanly across processes: each worker accumulates its share and the
// coordinator merges the partial states. Merging any partition of a sample
// stream agrees with single-stream accumulation to within a few ulps on
// mean and M2 (≤8 observed over 10⁵ random partitions; min, max and n are
// exact) — the one-shot combination rounds differently, not less
// accurately. Merging a single-sample state is bit-identical to Add, so
// folding per-run states one at a time reproduces the serial accumulator
// exactly.
func (w *Welford) Merge(o Welford) {
	switch {
	case o.n == 0:
		return
	case w.n == 0:
		*w = o
		return
	case o.n == 1:
		// Add's update path, bit for bit.
		w.Add(o.mean)
		return
	}
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// N returns the number of samples folded in so far.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest sample seen (0 with no samples).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample seen (0 with no samples).
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (0 below two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CI95 returns the half-width of the two-sided 95% confidence interval for
// the mean, using the Student t critical value for the sample's degrees of
// freedom (0 below two samples). A cell's report is Mean() ± CI95().
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return tCrit95(w.n-1) * math.Sqrt(w.Variance()/float64(w.n))
}

// Summary snapshots the accumulator for reporting.
func (w *Welford) Summary() Summary {
	return Summary{N: w.n, Mean: w.Mean(), Variance: w.Variance(),
		CI95: w.CI95(), Min: w.Min(), Max: w.Max()}
}

// State is the serializable snapshot of a Welford accumulator: the five
// numbers the distributed execution layer streams between processes. A
// State rebuilt with FromState continues accumulating (or merging) exactly
// where the original left off.
type State struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State snapshots the accumulator for transport.
func (w *Welford) State() State {
	return State{N: w.n, Mean: w.mean, M2: w.m2, Min: w.min, Max: w.max}
}

// FromState rebuilds the accumulator a State was snapshotted from.
func FromState(s State) Welford {
	return Welford{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max}
}

// Summary is a finished mean ± 95% CI report for one metric of one cell.
type Summary struct {
	N        int64
	Mean     float64
	Variance float64
	CI95     float64
	Min, Max float64
}

// tTable95 holds two-sided 95% Student t critical values for 1-30 degrees
// of freedom; beyond 30 the normal value 1.96 is close enough for seed
// counts a simulation sweep would use.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCrit95(df int64) float64 {
	if df < 1 {
		return 0
	}
	if df <= int64(len(tTable95)) {
		return tTable95[df-1]
	}
	return 1.96
}
