package stats

import (
	"math"
	"testing"
)

func TestWelfordMatchesDirectFormulas(t *testing.T) {
	xs := []float64{4.2, 5.1, 3.9, 4.8, 5.5, 4.1}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)

	if w.N() != int64(len(xs)) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), variance)
	}
	wantCI := tTable95[len(xs)-2] * math.Sqrt(variance/float64(len(xs)))
	if math.Abs(w.CI95()-wantCI) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", w.CI95(), wantCI)
	}
}

func TestWelfordDegenerateCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CI95() != 0 {
		t.Fatal("zero-value accumulator must report zeros")
	}
	w.Add(7)
	if w.Mean() != 7 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	if w.Variance() != 0 || w.CI95() != 0 {
		t.Fatal("single sample has no variance or CI")
	}
	s := w.Summary()
	if s.N != 1 || s.Mean != 7 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestWelfordConstantSeries(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(2.5)
	}
	if w.Mean() != 2.5 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	if w.Variance() > 1e-20 {
		t.Fatalf("Variance = %v, want ~0", w.Variance())
	}
}

func TestTCritTailsOff(t *testing.T) {
	if tCrit95(0) != 0 {
		t.Error("df 0 must yield 0")
	}
	if tCrit95(1) != 12.706 {
		t.Errorf("df 1 = %v", tCrit95(1))
	}
	if tCrit95(2) <= tCrit95(5) {
		t.Error("critical values must shrink with df")
	}
	if tCrit95(1000) != 1.96 {
		t.Errorf("large df = %v, want 1.96", tCrit95(1000))
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	if w.Min() != 0 || w.Max() != 0 {
		t.Fatal("zero-value accumulator must report zero min/max")
	}
	for _, x := range []float64{3.5, -2, 7, 0.5} {
		w.Add(x)
	}
	if w.Min() != -2 || w.Max() != 7 {
		t.Fatalf("min/max = %v/%v, want -2/7", w.Min(), w.Max())
	}
	s := w.Summary()
	if s.Min != -2 || s.Max != 7 {
		t.Fatalf("Summary min/max = %+v", s)
	}
	// All-negative series: the first sample must seed both bounds.
	var neg Welford
	neg.Add(-5)
	neg.Add(-3)
	if neg.Min() != -5 || neg.Max() != -3 {
		t.Fatalf("negative series min/max = %v/%v", neg.Min(), neg.Max())
	}
	// All-positive series must not keep a spurious zero minimum.
	var pos Welford
	pos.Add(4)
	pos.Add(9)
	if pos.Min() != 4 || pos.Max() != 9 {
		t.Fatalf("positive series min/max = %v/%v", pos.Min(), pos.Max())
	}
}
