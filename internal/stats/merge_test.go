package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// ulpsApart returns the number of representable float64 values strictly
// between a and b (0 means bit-identical). Only meaningful for finite
// values of the same sign, which is all these tests compare.
func ulpsApart(a, b float64) uint64 {
	if a == b {
		return 0
	}
	ab, bb := math.Float64bits(a), math.Float64bits(b)
	// Map the sign-magnitude float ordering onto an unsigned lattice.
	if a < 0 {
		ab = ^ab + 1
	} else {
		ab += 1 << 63
	}
	if b < 0 {
		bb = ^bb + 1
	} else {
		bb += 1 << 63
	}
	if ab > bb {
		return ab - bb
	}
	return bb - ab
}

// accumulate folds a slice through a fresh accumulator.
func accumulate(xs []float64) Welford {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w
}

// assertMergedClose checks a merged accumulator against the single-stream
// one: n, min and max must be exact; mean, M2 and CI95 within maxUlps.
func assertMergedClose(t *testing.T, merged, serial Welford, maxUlps uint64, ctx string) {
	t.Helper()
	if merged.N() != serial.N() {
		t.Fatalf("%s: N = %d, want %d", ctx, merged.N(), serial.N())
	}
	if merged.Min() != serial.Min() || merged.Max() != serial.Max() {
		t.Fatalf("%s: min/max = %v/%v, want %v/%v", ctx,
			merged.Min(), merged.Max(), serial.Min(), serial.Max())
	}
	if u := ulpsApart(merged.Mean(), serial.Mean()); u > maxUlps {
		t.Errorf("%s: mean %v vs %v: %d ulps apart", ctx, merged.Mean(), serial.Mean(), u)
	}
	if u := ulpsApart(merged.m2, serial.m2); u > maxUlps {
		t.Errorf("%s: m2 %v vs %v: %d ulps apart", ctx, merged.m2, serial.m2, u)
	}
	if u := ulpsApart(merged.CI95(), serial.CI95()); u > maxUlps {
		t.Errorf("%s: ci95 %v vs %v: %d ulps apart", ctx, merged.CI95(), serial.CI95(), u)
	}
}

// TestMergePartitionProperty is the distribution-correctness property: for
// random streams split at random boundaries into independently accumulated
// partitions, merging the partitions left to right agrees with
// single-stream accumulation to within 1 ulp (mean/M2/CI95) and exactly
// (n/min/max). This is the contract the coordinator relies on when workers
// each accumulate a share of a cell's runs. Samples are positive and
// scale-varied, like the metrics the campaign layer accumulates
// (throughputs, delays, counts), and stream lengths cover the seed counts
// campaigns actually use. The bound is 8 ulps: sequential accumulation
// itself rounds O(n) times, so the one-shot combination lands a few ulps
// away (≤7 observed over 2·10⁴ random partitions at every n ≤ 48) — not
// less accurately, just differently rounded. Exact partitions (every part
// a singleton, or one part the whole stream) are bit-identical and pinned
// by TestMergeSingletonIsAdd below. Zero-mean data, where the ulp metric
// degenerates, is covered separately below.
func TestMergePartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(48)
		const maxUlps = 8
		xs := make([]float64, n)
		scale := math.Ldexp(1, rng.Intn(20)-10) // vary magnitude across trials
		for i := range xs {
			xs[i] = rng.Float64() * scale
		}
		serial := accumulate(xs)

		// Random partition: each boundary splits with probability ~1/4, so
		// trials cover singleton, short and long partitions (including the
		// whole-stream and the all-singletons extremes over 200 trials).
		var merged Welford
		start := 0
		for i := 1; i <= n; i++ {
			if i == n || rng.Intn(4) == 0 {
				part := accumulate(xs[start:i])
				merged.Merge(part)
				start = i
			}
		}
		assertMergedClose(t, merged, serial, maxUlps, "random partition")
	}
}

// TestMergeLongStream extends the partition property to streams far longer
// than any seed list. At this length sequential accumulation carries its
// own O(n·ε) rounding drift, so exact-ulp agreement is no longer a
// meaningful target; the guarantee is relative agreement at ~100×ε, far
// inside any reportable precision.
func TestMergeLongStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 20; trial++ {
		n := 500 + rng.Intn(1500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 1 + rng.Float64()*99
		}
		serial := accumulate(xs)
		var merged Welford
		for start := 0; start < n; {
			end := start + 1 + rng.Intn(200)
			if end > n {
				end = n
			}
			part := accumulate(xs[start:end])
			merged.Merge(part)
			start = end
		}
		if merged.N() != serial.N() || merged.Min() != serial.Min() || merged.Max() != serial.Max() {
			t.Fatalf("n/min/max diverged: %+v vs %+v", merged, serial)
		}
		relClose := func(name string, a, b float64) {
			if d := math.Abs(a - b); d > 1e-14*math.Abs(b) {
				t.Errorf("long stream: %s %v vs %v (rel Δ = %g)", name, a, b, d/math.Abs(b))
			}
		}
		relClose("mean", merged.Mean(), serial.Mean())
		relClose("m2", merged.m2, serial.m2)
		relClose("ci95", merged.CI95(), serial.CI95())
	}
}

// TestMergeZeroMeanStream covers the ill-conditioned case the ulp property
// excludes: samples centred on zero, where the running mean is pure
// cancellation noise and "1 ulp of the mean" is meaningless. Here the
// guarantee is absolute error relative to the sample scale, and M2 (which
// stays well-conditioned) still agrees to a few ulps.
func TestMergeZeroMeanStream(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*2 - 1
		}
		serial := accumulate(xs)
		var merged Welford
		for start := 0; start < n; {
			end := start + 1 + rng.Intn(n-start)
			part := accumulate(xs[start:end])
			merged.Merge(part)
			start = end
		}
		if merged.N() != serial.N() || merged.Min() != serial.Min() || merged.Max() != serial.Max() {
			t.Fatalf("n/min/max diverged: %+v vs %+v", merged, serial)
		}
		if d := math.Abs(merged.Mean() - serial.Mean()); d > 1e-15*float64(n) {
			t.Errorf("zero-mean stream: mean %v vs %v (|Δ| = %g)", merged.Mean(), serial.Mean(), d)
		}
		if u := ulpsApart(merged.m2, serial.m2); u > 8 {
			t.Errorf("zero-mean stream: m2 %v vs %v: %d ulps apart", merged.m2, serial.m2, u)
		}
	}
}

// TestMergeSingletonIsAdd pins the bit-exactness of the n=1 special case:
// folding a stream via single-sample Merges must be indistinguishable from
// folding it via Add, so a coordinator receiving one state per run
// reproduces the serial accumulator exactly.
func TestMergeSingletonIsAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var byAdd, byMerge Welford
		for i := 0; i < 1+rng.Intn(100); i++ {
			x := rng.NormFloat64() * 1e3
			byAdd.Add(x)
			var single Welford
			single.Add(x)
			byMerge.Merge(single)
		}
		if byAdd != byMerge {
			t.Fatalf("singleton merge diverged from Add: %+v vs %+v", byMerge, byAdd)
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	// empty ∪ empty
	var a, b Welford
	a.Merge(b)
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatalf("empty merge changed state: %+v", a)
	}
	// empty ∪ populated: adopt the other state wholesale.
	b.Add(3)
	b.Add(5)
	a.Merge(b)
	if a != b {
		t.Fatalf("merge into empty must copy: %+v vs %+v", a, b)
	}
	// populated ∪ empty: no-op.
	before := a
	a.Merge(Welford{})
	if a != before {
		t.Fatalf("merging empty must not change state: %+v vs %+v", a, before)
	}
	// n=1 ∪ n=1 must equal two Adds exactly.
	var x, y, serial Welford
	x.Add(-2.5)
	y.Add(4.25)
	serial.Add(-2.5)
	serial.Add(4.25)
	x.Merge(y)
	if x != serial {
		t.Fatalf("1+1 merge = %+v, want %+v", x, serial)
	}
	// Min/max must survive a merge where each side holds one extreme.
	lo := accumulate([]float64{-9, 1, 2})
	hi := accumulate([]float64{3, 4, 11})
	lo.Merge(hi)
	if lo.Min() != -9 || lo.Max() != 11 {
		t.Fatalf("merged min/max = %v/%v", lo.Min(), lo.Max())
	}
}

func TestStateRoundTrip(t *testing.T) {
	w := accumulate([]float64{1.5, -2.25, 3.125, 0.875})
	data, err := json.Marshal(w.State())
	if err != nil {
		t.Fatal(err)
	}
	var s State
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	got := FromState(s)
	if got != w {
		t.Fatalf("state round-trip = %+v, want %+v", got, w)
	}
	// A rebuilt accumulator must keep accumulating identically.
	w.Add(9)
	got.Add(9)
	if got != w {
		t.Fatalf("post-round-trip Add diverged: %+v vs %+v", got, w)
	}
}
