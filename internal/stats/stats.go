// Package stats collects per-flow and per-run metrics: goodput, delay,
// reordering, loss, and the VoIP R-factor / Mean Opinion Score model the
// paper uses for Table III.
package stats

import "ripple/internal/sim"

// Flow accumulates receiver-side metrics for one flow.
type Flow struct {
	ID int

	// AppBytes counts bytes delivered in order to the application (TCP
	// goodput) or received bytes (datagram flows).
	AppBytes int64
	// PktsDelivered counts packets handed to the transport endpoint.
	PktsDelivered int64
	// Reordered counts deliveries whose sequence number is lower than a
	// previously delivered one (the paper's "out of order" metric).
	Reordered int64
	// Duplicates counts repeated deliveries suppressed by the transport.
	Duplicates int64

	// Delay accounting over delivered packets (creation to delivery).
	DelaySum   sim.Time
	DelayMax   sim.Time
	DelayCount int64

	// TransfersCompleted counts finished short transfers (web traffic).
	TransfersCompleted int64

	// VoIP accounting: sent, arrived at all, arrived within the wireless
	// delay budget (52 ms in the paper; later arrivals count as losses).
	VoIPSent    int64
	VoIPArrived int64
	VoIPOnTime  int64

	maxSeqSeen int64
	started    bool
}

// NoteArrival records a packet delivery to the endpoint and updates the
// reorder metric based on its stream sequence number.
func (f *Flow) NoteArrival(seq int64, delay sim.Time) {
	f.PktsDelivered++
	f.DelaySum += delay
	f.DelayCount++
	if delay > f.DelayMax {
		f.DelayMax = delay
	}
	if f.started && seq < f.maxSeqSeen {
		f.Reordered++
	}
	if !f.started || seq > f.maxSeqSeen {
		f.maxSeqSeen = seq
		f.started = true
	}
}

// ThroughputMbps returns application goodput over the given duration.
func (f *Flow) ThroughputMbps(d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(f.AppBytes) * 8 / d.Seconds() / 1e6
}

// MeanDelay returns the average delivery delay.
func (f *Flow) MeanDelay() sim.Time {
	if f.DelayCount == 0 {
		return 0
	}
	return f.DelaySum / sim.Time(f.DelayCount)
}

// ReorderRate returns the fraction of delivered packets that arrived out of
// order.
func (f *Flow) ReorderRate() float64 {
	if f.PktsDelivered == 0 {
		return 0
	}
	return float64(f.Reordered) / float64(f.PktsDelivered)
}

// VoIPLossRate returns the paper's VoIP loss metric: packets missing or
// arriving after the wireless delay budget, as a fraction of packets sent.
func (f *Flow) VoIPLossRate() float64 {
	if f.VoIPSent == 0 {
		return 0
	}
	return 1 - float64(f.VoIPOnTime)/float64(f.VoIPSent)
}
