package stats

import (
	"math"
	"testing"
)

func TestRFactorBaseline(t *testing.T) {
	// Zero delay, zero loss: R = 94.2 − 11 = 83.2.
	if got := RFactor(0, 0); math.Abs(got-83.2) > 1e-9 {
		t.Fatalf("RFactor(0,0) = %v, want 83.2", got)
	}
}

func TestRFactorDelayStepPenalty(t *testing.T) {
	// Below 177.3 ms only the linear term applies; above it the step term
	// adds 0.11 per ms.
	below := RFactor(177, 0)
	above := RFactor(200, 0)
	wantBelow := 94.2 - 0.024*177 - 11
	if math.Abs(below-wantBelow) > 1e-9 {
		t.Fatalf("RFactor(177,0) = %v, want %v", below, wantBelow)
	}
	wantAbove := 94.2 - 0.024*200 - 0.11*(200-177.3) - 11
	if math.Abs(above-wantAbove) > 1e-9 {
		t.Fatalf("RFactor(200,0) = %v, want %v", above, wantAbove)
	}
}

func TestRFactorLossPenalty(t *testing.T) {
	// 10% loss costs 40·log10(2) ≈ 12.04 R-points.
	diff := RFactor(0, 0) - RFactor(0, 0.1)
	if math.Abs(diff-40*math.Log10(2)) > 1e-9 {
		t.Fatalf("loss penalty = %v", diff)
	}
}

func TestMoSMapping(t *testing.T) {
	if MoS(-5) != 1 {
		t.Fatal("R<0 must map to MoS 1")
	}
	if MoS(101) != 4.5 {
		t.Fatal("R>100 must map to MoS 4.5")
	}
	// R = 80: 1 + 2.8 + 7e-6·80·20·20 = 4.024.
	if got := MoS(80); math.Abs(got-4.024) > 1e-9 {
		t.Fatalf("MoS(80) = %v, want 4.024", got)
	}
}

// TestMoSPaperAnchor verifies the Table III calibration: a call with ≈10 ms
// wireless delay and no loss scores ≈4.1, matching the paper's unloaded
// rows (4.11-4.14).
func TestMoSPaperAnchor(t *testing.T) {
	got := MoSFrom(10, 0)
	if got < 4.05 || got > 4.2 {
		t.Fatalf("MoSFrom(10ms, 0) = %.3f, want ≈4.1", got)
	}
	// A degraded call (150 ms delay, 30% loss) drops below "fair".
	bad := MoSFrom(150, 0.3)
	if bad > 3.0 {
		t.Fatalf("MoSFrom(150ms, 30%%) = %.3f, want < 3.0", bad)
	}
	// A collapsed call (300 ms, 60% loss) lands in Table III's ~1.2 band.
	awful := MoSFrom(300, 0.6)
	if awful > 1.8 {
		t.Fatalf("MoSFrom(300ms, 60%%) = %.3f, want < 1.8", awful)
	}
}

func TestMoSMonotone(t *testing.T) {
	for loss := 0.0; loss < 0.5; loss += 0.05 {
		if MoSFrom(20, loss) < MoSFrom(20, loss+0.05) {
			t.Fatalf("MoS must not improve with loss (at %.2f)", loss)
		}
	}
	for d := 0.0; d < 300; d += 20 {
		if MoSFrom(d, 0) < MoSFrom(d+20, 0) {
			t.Fatalf("MoS must not improve with delay (at %.0f ms)", d)
		}
	}
}
