package stats

import "math"

// The paper's VoIP quality model (§IV-E), following Balasubramanian et al.
// (SIGCOMM 2008): an R-factor computed from the mouth-to-ear delay d (ms)
// and total loss rate e (including late arrivals), mapped to the 1-5 Mean
// Opinion Score scale.

// RFactor returns R = 94.2 − 0.024d − 0.11(d−177.3)·H(d−177.3) − 11 −
// 40·log10(1+10e), where H is the unit step.
func RFactor(delayMs, loss float64) float64 {
	r := 94.2 - 0.024*delayMs - 11 - 40*math.Log10(1+10*loss)
	if delayMs > 177.3 {
		r -= 0.11 * (delayMs - 177.3)
	}
	return r
}

// MoS maps an R-factor to a Mean Opinion Score: 1 if R < 0, 4.5 if R > 100,
// otherwise 1 + 0.035R + 7·10⁻⁶·R(R−60)(100−R).
func MoS(r float64) float64 {
	switch {
	case r < 0:
		return 1
	case r > 100:
		return 4.5
	default:
		return 1 + 0.035*r + 7e-6*r*(r-60)*(100-r)
	}
}

// MoSFrom combines both steps for a measured wireless delay and loss rate.
func MoSFrom(delayMs, loss float64) float64 { return MoS(RFactor(delayMs, loss)) }
