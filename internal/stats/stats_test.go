package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ripple/internal/sim"
)

func TestNoteArrivalReorderCounting(t *testing.T) {
	var f Flow
	f.NoteArrival(0, sim.Millisecond)
	f.NoteArrival(1, sim.Millisecond)
	f.NoteArrival(3, sim.Millisecond) // gap: not a reorder yet
	f.NoteArrival(2, sim.Millisecond) // arrives after 3 → reordered
	f.NoteArrival(4, sim.Millisecond)
	if f.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", f.Reordered)
	}
	if f.PktsDelivered != 5 {
		t.Fatalf("PktsDelivered = %d", f.PktsDelivered)
	}
	if got := f.ReorderRate(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("ReorderRate = %v, want 0.2", got)
	}
}

func TestNoteArrivalFirstPacketNotReordered(t *testing.T) {
	var f Flow
	f.NoteArrival(5, 0) // first arrival, even with nonzero seq
	if f.Reordered != 0 {
		t.Fatal("first arrival cannot be a reorder")
	}
}

func TestDelayAccounting(t *testing.T) {
	var f Flow
	f.NoteArrival(0, 2*sim.Millisecond)
	f.NoteArrival(1, 4*sim.Millisecond)
	if f.MeanDelay() != 3*sim.Millisecond {
		t.Fatalf("MeanDelay = %v", f.MeanDelay())
	}
	if f.DelayMax != 4*sim.Millisecond {
		t.Fatalf("DelayMax = %v", f.DelayMax)
	}
}

func TestThroughputMbps(t *testing.T) {
	f := Flow{AppBytes: 1250_000} // 10 Mb
	if got := f.ThroughputMbps(sim.Second); math.Abs(got-10) > 1e-9 {
		t.Fatalf("ThroughputMbps = %v, want 10", got)
	}
	if f.ThroughputMbps(0) != 0 {
		t.Fatal("zero duration must not divide by zero")
	}
}

func TestVoIPLossRate(t *testing.T) {
	f := Flow{VoIPSent: 100, VoIPOnTime: 93}
	if got := f.VoIPLossRate(); math.Abs(got-0.07) > 1e-9 {
		t.Fatalf("VoIPLossRate = %v", got)
	}
	var empty Flow
	if empty.VoIPLossRate() != 0 {
		t.Fatal("no packets sent → zero loss")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("equal shares index = %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("winner-takes-all index = %v, want 1/n", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
	// Scale invariance.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("Jain index must be scale-invariant: %v vs %v", a, b)
	}
}

// Property: Jain index stays within [1/n, 1] for positive allocations.
func TestJainIndexBoundsProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // strictly positive
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: reorder count never exceeds deliveries.
func TestReorderBoundProperty(t *testing.T) {
	prop := func(seqs []int16) bool {
		var f Flow
		for _, s := range seqs {
			f.NoteArrival(int64(s), sim.Microsecond)
		}
		return f.Reordered <= f.PktsDelivered
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
