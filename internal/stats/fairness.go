package stats

// JainIndex returns Jain's fairness index over per-flow allocations:
// (Σx)² / (n·Σx²), ranging from 1/n (one flow takes all) to 1 (equal
// shares). Used to judge how the schemes divide capacity in the multi-flow
// experiments (Figs. 3, 6(a)).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
