package network

import (
	"fmt"
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

func TestDebugRippleCounters(t *testing.T) {
	top, path := topology.Line(3)
	var traces []string
	cfg := Config{
		Positions: top.Positions,
		Radio:     noLossRadio(),
		Scheme:    Ripple,
		Flows:     []FlowSpec{{ID: 1, Path: path, Kind: FTP}},
		Duration:  2 * sim.Second,
		Seed:      3,
		Trace: func(at sim.Time, ev string, node pkt.NodeID, f *pkt.Frame) {
			if len(traces) < 400 {
				traces = append(traces, fmt.Sprintf("%v %-3s n%d %s tx=%d txop=%x pkts=%d acked=%d",
					at, ev, node, f.Kind, f.Tx, f.TxopID, len(f.Packets), len(f.AckedUIDs)))
			}
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tput=%.3f Mbps delivered=%d reorder=%.2f%%",
		res.Flows[0].ThroughputMbps, res.Flows[0].PktsDelivered, 100*res.Flows[0].ReorderRate)
	t.Logf("MAC: %+v", res.MAC)
	t.Logf("Medium: %+v", res.Medium)
	t.Logf("events=%d pending=%d", res.Events, res.PendingAtEnd)
	for _, tr := range traces[len(traces)-min(60, len(traces)):] {
		t.Log(tr)
	}
}
