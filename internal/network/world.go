package network

import (
	"fmt"

	"ripple/internal/fault"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// World is the immutable, seed-independent snapshot of a scenario: the
// radio link plan (per-neighbor power/distance/delay attributes and
// neighbor lists, sparse when pruning is on), the ETX link table of the
// routing layer (sparse over the plan's neighbor graph when pruning is
// on), and every flow's resolved initial route. All of it is a pure
// function of the Config's
// non-seed fields, so a campaign cell that fans S seed-runs of one
// scenario across the worker pool can build the World once and share it
// by reference — the per-run cost collapses to the mutable state (engine,
// medium, schemes, transports).
//
// Immutability contract: a World is never written after BuildWorld
// returns, and network.Run only reads it. Per-run mutable derivatives —
// the RouteBook (routes change each epoch under dynamic policies), the
// Medium (counters, station PHY state), dynamic policy instances — are
// created fresh per run *from* the World. Sharing one World across any
// number of concurrent runs is therefore safe; the shared-world test in
// this package hammers one instance from many goroutines under -race to
// enforce the contract.
//
// Seed independence is equally load-bearing: nothing in the World depends
// on Config.Seed, and building it draws no random numbers, so a run on a
// prebuilt World is RNG-bit-identical to a run that builds everything
// itself.
type World struct {
	plan  *radio.LinkPlan
	table *routing.Table // nil when the routing spec is inactive
	// routes holds each flow's resolved initial path, indexed like
	// Config.Flows. For static specs this is the declared (possibly
	// K-sized) path; for policy specs it is the policy's unloaded route.
	routes []routing.Path
	flows  int
	// Time-varying worlds (Config.Mobility or Config.Faults active):
	// epochLen is the epoch length and epochs[e] the world in effect from
	// (e+1)·epochLen on, each derived incrementally from its predecessor
	// (see buildEpochs). Epoch worlds are as immutable and seed-independent
	// as the initial one — trajectories draw from MobilitySpec.Seed, fault
	// schedules from FaultSpec.Seed, never Config.Seed — so the whole
	// sequence is shared across pool workers like any other World.
	// A static world has epochLen 0 and no epochs.
	epochLen sim.Time
	epochs   []*World

	// faults is the materialised fault timeline (root world only; nil
	// without fault injection). Like everything else here it is immutable
	// and seed-independent.
	faults *fault.Schedule
	// Per-flow route health of an epoch world, indexed like Config.Flows
	// (nil on the initial world and on fault-free, policy-free epochs):
	// stale flags flows whose route recompute failed this epoch (the
	// previous route was kept), unreach flags flows whose destination is
	// down or cut off by faults this epoch. masked records that the
	// epoch's link table was built with the fault overlay applied.
	stale   []bool
	unreach []bool
	masked  bool
}

// BuildWorld precomputes the seed-independent part of a scenario. The
// returned World matches any Config whose non-seed fields equal cfg's;
// attach it via Config.World to share it across runs.
func BuildWorld(cfg Config) (*World, error) {
	cfg.Normalize()
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	w := &World{
		plan:  radio.NewLinkPlan(cfg.Radio, cfg.Positions),
		flows: len(cfg.Flows),
	}
	var policy routing.Policy
	if cfg.Routing.active() {
		w.table = newLinkTable(&cfg, w.plan)
		if cfg.Routing.needsPolicy() {
			pol, err := cfg.Routing.build(w.table, w.plan.Positions())
			if err != nil {
				return nil, err
			}
			policy = pol
		}
	}
	w.routes = make([]routing.Path, len(cfg.Flows))
	for i, f := range cfg.Flows {
		switch {
		case policy != nil:
			p, err := policy.Route(f.Path.Src(), f.Path.Dst(), nil)
			if err != nil {
				return nil, fmt.Errorf("network: flow %d: %s route: %w", f.ID, policy.Name(), err)
			}
			w.routes[i] = p
		case w.table != nil:
			w.routes[i] = routing.Resize(w.table, f.Path, cfg.Routing.K, cfg.Routing.Rule)
		default:
			w.routes[i] = f.Path
		}
	}
	if cfg.Faults.Active() {
		w.faults = fault.Build(cfg.Faults, cfg.Duration, cfg.Positions,
			exemptEndpoints(&cfg), planLinks(w.plan))
	}
	if cfg.Mobility.active() || w.faults != nil {
		if err := w.buildEpochs(&cfg); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// exemptEndpoints flags every flow source and destination as immune to
// station churn, so degradation curves measure relay failures rather than
// trivial source or sink death. Partitions and link flaps can still make
// a destination unreachable.
func exemptEndpoints(cfg *Config) []bool {
	ex := make([]bool, len(cfg.Positions))
	for _, f := range cfg.Flows {
		ex[f.Path.Src()] = true
		ex[f.Path.Dst()] = true
	}
	return ex
}

// planLinks enumerates the plan's neighbor pairs (a < b), the candidate
// set for link flaps.
func planLinks(plan *radio.LinkPlan) [][2]pkt.NodeID {
	var out [][2]pkt.NodeID
	for a := 0; a < plan.Stations(); a++ {
		plan.EachAscNeighbor(a, func(j int32, _ float64) {
			if int(j) > a {
				out = append(out, [2]pkt.NodeID{pkt.NodeID(a), pkt.NodeID(j)})
			}
		})
	}
	return out
}

// epochLenFor resolves the epoch length of a time-varying config: an
// active mobility spec wins (fault overlays ride its boundaries), a
// fault-only config uses the fault spec's epoch.
func epochLenFor(cfg *Config) sim.Time {
	if cfg.Mobility.active() {
		return cfg.Mobility.epochLen()
	}
	return cfg.Faults.EpochLen()
}

// check cheaply verifies that the snapshot plausibly matches the run's
// config. It cannot prove full equality (that is the caller's contract);
// it catches the gross mismatches — wrong topology, wrong flow set —
// that would otherwise corrupt a run silently.
func (w *World) check(cfg *Config) error {
	if w.plan.Stations() != len(cfg.Positions) {
		return fmt.Errorf("network: World built for %d stations, config has %d",
			w.plan.Stations(), len(cfg.Positions))
	}
	if w.flows != len(cfg.Flows) {
		return fmt.Errorf("network: World built for %d flows, config has %d",
			w.flows, len(cfg.Flows))
	}
	if w.table == nil && cfg.Routing.active() {
		return fmt.Errorf("network: World built without a link table, config routing is active")
	}
	if (w.faults != nil) != cfg.Faults.Active() {
		return fmt.Errorf("network: World fault schedule (%v) does not match config faults (%v)",
			w.faults != nil, cfg.Faults.Active())
	}
	if (w.epochLen > 0) != (cfg.Mobility.active() || cfg.Faults.Active()) {
		return fmt.Errorf("network: World time-variance (epochLen %v) does not match config (mobility %s, faults %v)",
			w.epochLen, cfg.Mobility.Kind, cfg.Faults.Active())
	}
	if w.epochLen > 0 {
		if want := epochLenFor(cfg); w.epochLen != want {
			return fmt.Errorf("network: World built with epoch %v, config wants %v",
				w.epochLen, want)
		}
		if want := int((cfg.Duration - 1) / w.epochLen); want != len(w.epochs) {
			return fmt.Errorf("network: World holds %d epoch worlds, config duration %v needs %d",
				len(w.epochs), cfg.Duration, want)
		}
	}
	return nil
}

// newLinkTable builds the routing-layer ETX table over the same radio
// model the medium uses, so the metric always matches the channel the
// packets see (the minProb floor matches the public Router).
//
// With neighbor pruning on, the table is built sparse over exactly the
// link plan's neighbor graph instead of probing all N² pairs. This stores
// and routes over the identical usable link set: a pruned pair's mean
// power sits PruneSigma shadowing deviations below the carrier-sense
// threshold, which (with CSThreshDBm ≤ RXThreshDBm, true of every radio
// profile) puts its delivery probability orders of magnitude below the
// 0.1 minProb floor — the dense table would mark it unusable anyway.
func newLinkTable(cfg *Config, plan *radio.LinkPlan) *routing.Table {
	if plan.Pruned() {
		// The loss model is a pure function of distance, so forward and
		// reverse probabilities coincide and the symmetric constructor
		// applies; iterating the plan's CSR rows hands it each stored
		// distance without a per-pair lookup.
		return routing.NewSparseTableSym(plan.Stations(), func(a pkt.NodeID, yield func(int32, float64)) {
			plan.EachAscNeighbor(int(a), func(j int32, d float64) {
				yield(j, 1-cfg.Radio.LossProb(d))
			})
		}, 0.1)
	}
	return routing.NewTable(plan.Stations(), func(a, b pkt.NodeID) float64 {
		return 1 - cfg.Radio.LossProb(plan.Distance(int(a), int(b)))
	}, 0.1)
}
