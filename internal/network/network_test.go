package network

import (
	"testing"

	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// noLossRadio returns a radio config with shadowing disabled and generous
// thresholds so short links are perfect — isolates MAC behaviour.
func noLossRadio() radio.Config {
	c := radio.DefaultConfig()
	c.ShadowSigmaDB = 0
	c.BitErrorRate = 0
	return c
}

func TestSingleHopDCFSaturatedCBR(t *testing.T) {
	top, path := topology.Line(1)
	cfg := Config{
		Positions: top.Positions,
		Radio:     noLossRadio(),
		Scheme:    DCF,
		Flows:     []FlowSpec{{ID: 1, Path: path, Kind: CBRTraffic}},
		Duration:  2 * sim.Second,
		Seed:      1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Flows[0].ThroughputMbps
	// Analytic saturation throughput for one 1000-byte packet per TXOP at
	// 216 Mbps: DIFS(34) + E[backoff](7.5*9=67.5) + PHY(20) +
	// (34+1000)*8/216 (≈38.3) + SIFS(16) + ACK(20+2.1) ≈ 198 µs
	// → ≈ 40 Mbps. Allow a wide band.
	if got < 30 || got > 50 {
		t.Fatalf("single-hop DCF saturated throughput = %.2f Mbps, want ≈40", got)
	}
}

func TestThreeHopDCFLongTCP(t *testing.T) {
	top, path := topology.Line(3)
	cfg := Config{
		Positions: top.Positions,
		Radio:     noLossRadio(),
		Scheme:    DCF,
		Flows:     []FlowSpec{{ID: 1, Path: path, Kind: FTP}},
		Duration:  5 * sim.Second,
		Seed:      1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Flows[0].ThroughputMbps
	// The paper's §IV-A reference point: ≈7 Mbps for a 3-hop TCP flow on a
	// clean channel (data+ACK contention shared by 4 stations).
	if got < 4 || got > 12 {
		t.Fatalf("3-hop DCF TCP throughput = %.2f Mbps, want ≈7", got)
	}
	if res.Flows[0].ReorderRate > 0.001 {
		t.Fatalf("DCF should not reorder, got %.2f%%", 100*res.Flows[0].ReorderRate)
	}
}

func TestThreeHopSchemesOrdering(t *testing.T) {
	top, path := topology.Line(3)
	run := func(k SchemeKind) float64 {
		cfg := Config{
			Positions: top.Positions,
			Radio:     noLossRadio(),
			Scheme:    k,
			Flows:     []FlowSpec{{ID: 1, Path: path, Kind: FTP}},
			Duration:  5 * sim.Second,
			Seed:      7,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		t.Logf("%-12v %6.2f Mbps (reorder %.2f%%)", k,
			res.Flows[0].ThroughputMbps, 100*res.Flows[0].ReorderRate)
		return res.Flows[0].ThroughputMbps
	}
	d := run(DCF)
	a := run(AFR)
	r1 := run(RippleNoAgg)
	r16 := run(Ripple)
	if a < d {
		t.Errorf("AFR (%.2f) should beat DCF (%.2f) via aggregation", a, d)
	}
	if r1 < d*0.9 {
		t.Errorf("RIPPLE-noagg (%.2f) should be at least comparable to DCF (%.2f)", r1, d)
	}
	if r16 < a {
		t.Errorf("RIPPLE (%.2f) should beat AFR (%.2f): mTXOP + aggregation", r16, a)
	}
}

func TestOpportunisticSchemesDeliver(t *testing.T) {
	top := topology.Fig1()
	route := routing.Route0()
	for _, k := range []SchemeKind{PreExOR, MCExOR, Ripple} {
		cfg := Config{
			Positions: top.Positions,
			Radio:     noLossRadio(),
			Scheme:    k,
			Flows:     []FlowSpec{{ID: 1, Path: route.Flow1, Kind: FTP}},
			Duration:  2 * sim.Second,
			Seed:      3,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Flows[0].ThroughputMbps < 1 {
			t.Errorf("%v delivered only %.3f Mbps on a clean 3-hop path",
				k, res.Flows[0].ThroughputMbps)
		}
	}
}
