package network

import (
	"testing"

	"ripple/internal/phys"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// TestMultiRateUpshiftsShortHops: at a 6 Mbps base rate over clean 100 m
// hops, the oracle can upshift toward 54 Mbps, multiplying throughput.
// This is the paper's §V future-work scenario.
func TestMultiRateUpshiftsShortHops(t *testing.T) {
	top, path := topology.Line(3)
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	base := Config{
		Positions: top.Positions,
		Radio:     rc,
		Phy:       phys.LowRate(),
		Scheme:    DCF,
		Flows:     []FlowSpec{{ID: 1, Path: path, Kind: FTP}},
		Duration:  3 * sim.Second,
		Seed:      5,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.MultiRate = MultiRateSpec{Enabled: true}
	boosted, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("6 Mbps fixed: %.2f Mbps; multi-rate: %.2f Mbps",
		plain.TotalMbps, boosted.TotalMbps)
	if boosted.TotalMbps < 2*plain.TotalMbps {
		t.Fatalf("multi-rate should far exceed the fixed 6 Mbps base: %.2f vs %.2f",
			boosted.TotalMbps, plain.TotalMbps)
	}
}

// TestMultiRateHarmlessWhenBaseOptimal: at 216 Mbps base over marginal
// links, the oracle stays at or below base — never worse than fixed-rate by
// more than noise.
func TestMultiRateStaysRobustOnWeakLinks(t *testing.T) {
	// 200 m hops: ≈25% loss at base; the oracle should downshift and keep
	// the link usable.
	positions := []radio.Pos{{X: 0}, {X: 200}}
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	cfg := Config{
		Positions: positions,
		Radio:     rc,
		Scheme:    DCF,
		Flows:     []FlowSpec{{ID: 1, Path: routing.Path{0, 1}, Kind: FTP}},
		Duration:  3 * sim.Second,
		Seed:      5,
		MultiRate: MultiRateSpec{Enabled: true},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbps <= 0 {
		t.Fatal("multi-rate link delivered nothing")
	}
}

// TestMultiRateWithRipple: the extension must compose with the mTXOP
// scheme (relays inherit the frame's rate).
func TestMultiRateWithRipple(t *testing.T) {
	top, path := topology.Line(3)
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	cfg := Config{
		Positions: top.Positions,
		Radio:     rc,
		Phy:       phys.LowRate(),
		Scheme:    Ripple,
		Flows:     []FlowSpec{{ID: 1, Path: path, Kind: FTP}},
		Duration:  3 * sim.Second,
		Seed:      5,
		MultiRate: MultiRateSpec{Enabled: true},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbps < 3 {
		t.Fatalf("RIPPLE multi-rate = %.2f Mbps on a 6 Mbps base; expected upshift", res.TotalMbps)
	}
}
