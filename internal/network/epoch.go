package network

import (
	"fmt"

	"ripple/internal/mobility"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// MobilityKind selects a station mobility model for time-varying worlds.
type MobilityKind int

const (
	// MobilityStatic keeps every station at its declared position for the
	// whole run — the pre-mobility behaviour, and the default.
	MobilityStatic MobilityKind = iota
	// MobilityWaypoint is the classic random waypoint model: straight legs
	// to uniform targets at uniform speeds, with optional pauses.
	MobilityWaypoint
	// MobilityMarkov is place-transition mobility: stations hop between a
	// fixed set of gathering places under a symmetric Markov chain.
	MobilityMarkov
)

// String names the kind for sweep labels and flags.
func (k MobilityKind) String() string {
	switch k {
	case MobilityStatic:
		return "static"
	case MobilityWaypoint:
		return "waypoint"
	case MobilityMarkov:
		return "markov"
	default:
		return fmt.Sprintf("MobilityKind(%d)", int(k))
	}
}

// DefaultMobilityEpoch is the default epoch length of a time-varying
// world. It matches DefaultRouteEpoch so that, under dynamic routing, a
// topology change and the re-route that reacts to it land on the same
// boundary (the swap is scheduled first).
const DefaultMobilityEpoch = 500 * sim.Millisecond

// MobilitySpec configures station motion. The zero value is
// MobilityStatic: no motion, no epoch worlds, bit-identical behaviour to
// a config without the field.
type MobilitySpec struct {
	Kind MobilityKind
	// Epoch is the interval between world snapshots (0 selects
	// DefaultMobilityEpoch). Positions change only at epoch boundaries:
	// within an epoch the world is as immutable as a static one.
	Epoch sim.Time
	// Seed drives the trajectories. It is deliberately separate from
	// Config.Seed — worlds must stay seed-independent so one World serves
	// every seed-run of a campaign cell — and 0 selects 1.
	Seed uint64
	// MinSpeed and MaxSpeed bound waypoint leg speeds in m/s (both 0
	// selects 5–15 m/s, vehicular-pedestrian mix).
	MinSpeed, MaxSpeed float64
	// Pause is the waypoint post-arrival rest time.
	Pause sim.Time
	// Places is the Markov model's number of gathering places (0 derives
	// one from the population size).
	Places int
	// Stay is the Markov per-epoch stay probability (0 selects 0.9).
	Stay float64
}

// active reports whether the spec produces motion at all.
func (s MobilitySpec) active() bool { return s.Kind != MobilityStatic }

// epochLen resolves the epoch length.
func (s MobilitySpec) epochLen() sim.Time {
	if s.Epoch > 0 {
		return s.Epoch
	}
	return DefaultMobilityEpoch
}

// seed resolves the trajectory seed.
func (s MobilitySpec) seed() uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 1
}

// model builds the trajectory stepper over the initial positions.
func (s MobilitySpec) model(initial []radio.Pos) (mobility.Model, error) {
	switch s.Kind {
	case MobilityWaypoint:
		minS, maxS := s.MinSpeed, s.MaxSpeed
		if maxS <= 0 {
			maxS = 15
		}
		if minS <= 0 {
			minS = 5
		}
		if minS > maxS {
			minS = maxS
		}
		return mobility.NewWaypoint(initial, mobility.WaypointConfig{
			MinSpeed: minS,
			MaxSpeed: maxS,
			Pause:    s.Pause,
			Epoch:    s.epochLen(),
		}, s.seed()), nil
	case MobilityMarkov:
		return mobility.NewMarkov(initial, mobility.MarkovConfig{
			Places: s.Places,
			Stay:   s.Stay,
		}, s.seed()), nil
	default:
		return nil, fmt.Errorf("network: unknown mobility kind %d", int(s.Kind))
	}
}

// buildEpochs extends a freshly built initial World with its epoch
// sequence: one derived World per epoch boundary strictly inside
// (0, Duration). Each epoch world is derived incrementally from its
// predecessor — the link plan by radio's row-patching Rebuild, the sparse
// link table by routing.RebuildSparseTableSym — so on a city-scale world
// with most stations parked, the per-epoch cost is proportional to the
// motion, not the population. Like everything else in the World, the
// sequence is a pure function of the Config's non-seed fields (the
// trajectory seed lives in MobilitySpec, never Config.Seed).
func (w *World) buildEpochs(cfg *Config) error {
	model, err := cfg.Mobility.model(cfg.Positions)
	if err != nil {
		return err
	}
	w.epochLen = cfg.Mobility.epochLen()
	n := int((cfg.Duration - 1) / w.epochLen)
	if n <= 0 {
		return nil
	}
	pos := append([]radio.Pos(nil), cfg.Positions...)
	prev := w
	w.epochs = make([]*World, 0, n)
	for e := 0; e < n; e++ {
		model.Step(pos)
		ew := deriveEpoch(cfg, prev, pos)
		w.epochs = append(w.epochs, ew)
		prev = ew
	}
	return nil
}

// deriveEpoch builds the World of one epoch from its predecessor and the
// epoch's station positions. Unlike the initial build, a flow whose route
// cannot be resolved this epoch (motion disconnected its endpoints) is not
// an error: it keeps the previous epoch's route, exactly as a failed
// in-run dynamic recompute keeps the current one — a transient partition
// must not kill the run.
func deriveEpoch(cfg *Config, prev *World, positions []radio.Pos) *World {
	plan := prev.plan.Rebuild(positions)
	if plan == prev.plan {
		// Nobody moved this epoch: the predecessor *is* this epoch's world,
		// and both are immutable, so share it outright.
		return prev
	}
	ew := &World{plan: plan, flows: prev.flows}
	var policy routing.Policy
	if cfg.Routing.active() {
		ew.table = rebuildLinkTable(cfg, prev, plan)
		if cfg.Routing.needsPolicy() {
			if pol, err := cfg.Routing.build(ew.table, plan.Positions()); err == nil {
				policy = pol
			}
		}
	}
	ew.routes = make([]routing.Path, len(cfg.Flows))
	for i, f := range cfg.Flows {
		switch {
		case policy != nil:
			p, err := policy.Route(f.Path.Src(), f.Path.Dst(), nil)
			if err != nil {
				p = prev.routes[i]
			}
			ew.routes[i] = p
		case ew.table != nil:
			ew.routes[i] = routing.Resize(ew.table, f.Path, cfg.Routing.K, cfg.Routing.Rule)
		default:
			ew.routes[i] = f.Path
		}
	}
	return ew
}

// rebuildLinkTable derives an epoch's link table from its predecessor's.
// When both the plan and the previous table are sparse, the table is
// patched row-by-row (unmoved pairs copy their stored values); otherwise
// it falls back to the from-scratch constructor, which itself picks the
// sparse layout whenever the plan is pruned — an epoch rebuild never
// widens a sparse world to a dense N² table.
func rebuildLinkTable(cfg *Config, prev *World, plan *radio.LinkPlan) *routing.Table {
	if prev.table == nil || !plan.Pruned() || !prev.table.Sparse() {
		return newLinkTable(cfg, plan)
	}
	prevPos, newPos := prev.plan.Positions(), plan.Positions()
	moved := make([]bool, plan.Stations())
	unchanged := make([]bool, plan.Stations())
	for i := range moved {
		moved[i] = newPos[i] != prevPos[i]
		unchanged[i] = !moved[i] && plan.RowEqual(prev.plan, i)
	}
	return routing.RebuildSparseTableSym(prev.table, moved, unchanged,
		func(a pkt.NodeID, yield func(int32, float64)) {
			plan.EachAscNeighbor(int(a), yield)
		},
		func(d float64) float64 { return 1 - cfg.Radio.LossProb(d) },
		0.1)
}

// Epochs returns the number of epoch worlds beyond the initial snapshot
// (0 for a static world).
func (w *World) Epochs() int { return len(w.epochs) }

// EpochLen returns the epoch length of a time-varying world (0 for a
// static one).
func (w *World) EpochLen() sim.Time { return w.epochLen }
