package network

import (
	"fmt"
	"slices"

	"ripple/internal/fault"
	"ripple/internal/mobility"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// MobilityKind selects a station mobility model for time-varying worlds.
type MobilityKind int

const (
	// MobilityStatic keeps every station at its declared position for the
	// whole run — the pre-mobility behaviour, and the default.
	MobilityStatic MobilityKind = iota
	// MobilityWaypoint is the classic random waypoint model: straight legs
	// to uniform targets at uniform speeds, with optional pauses.
	MobilityWaypoint
	// MobilityMarkov is place-transition mobility: stations hop between a
	// fixed set of gathering places under a symmetric Markov chain.
	MobilityMarkov
)

// String names the kind for sweep labels and flags.
func (k MobilityKind) String() string {
	switch k {
	case MobilityStatic:
		return "static"
	case MobilityWaypoint:
		return "waypoint"
	case MobilityMarkov:
		return "markov"
	default:
		return fmt.Sprintf("MobilityKind(%d)", int(k))
	}
}

// DefaultMobilityEpoch is the default epoch length of a time-varying
// world. It matches DefaultRouteEpoch so that, under dynamic routing, a
// topology change and the re-route that reacts to it land on the same
// boundary (the swap is scheduled first).
const DefaultMobilityEpoch = 500 * sim.Millisecond

// MobilitySpec configures station motion. The zero value is
// MobilityStatic: no motion, no epoch worlds, bit-identical behaviour to
// a config without the field.
type MobilitySpec struct {
	Kind MobilityKind
	// Epoch is the interval between world snapshots (0 selects
	// DefaultMobilityEpoch). Positions change only at epoch boundaries:
	// within an epoch the world is as immutable as a static one.
	Epoch sim.Time
	// Seed drives the trajectories. It is deliberately separate from
	// Config.Seed — worlds must stay seed-independent so one World serves
	// every seed-run of a campaign cell — and 0 selects 1.
	Seed uint64
	// MinSpeed and MaxSpeed bound waypoint leg speeds in m/s (both 0
	// selects 5–15 m/s, vehicular-pedestrian mix).
	MinSpeed, MaxSpeed float64
	// Pause is the waypoint post-arrival rest time.
	Pause sim.Time
	// Places is the Markov model's number of gathering places (0 derives
	// one from the population size).
	Places int
	// Stay is the Markov per-epoch stay probability (0 selects 0.9).
	Stay float64
}

// active reports whether the spec produces motion at all.
func (s MobilitySpec) active() bool { return s.Kind != MobilityStatic }

// epochLen resolves the epoch length.
func (s MobilitySpec) epochLen() sim.Time {
	if s.Epoch > 0 {
		return s.Epoch
	}
	return DefaultMobilityEpoch
}

// seed resolves the trajectory seed.
func (s MobilitySpec) seed() uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 1
}

// model builds the trajectory stepper over the initial positions.
func (s MobilitySpec) model(initial []radio.Pos) (mobility.Model, error) {
	switch s.Kind {
	case MobilityWaypoint:
		minS, maxS := s.MinSpeed, s.MaxSpeed
		if maxS <= 0 {
			maxS = 15
		}
		if minS <= 0 {
			minS = 5
		}
		if minS > maxS {
			minS = maxS
		}
		return mobility.NewWaypoint(initial, mobility.WaypointConfig{
			MinSpeed: minS,
			MaxSpeed: maxS,
			Pause:    s.Pause,
			Epoch:    s.epochLen(),
		}, s.seed()), nil
	case MobilityMarkov:
		return mobility.NewMarkov(initial, mobility.MarkovConfig{
			Places: s.Places,
			Stay:   s.Stay,
		}, s.seed()), nil
	default:
		return nil, fmt.Errorf("network: unknown mobility kind %d", int(s.Kind))
	}
}

// buildEpochs extends a freshly built initial World with its epoch
// sequence: one derived World per epoch boundary strictly inside
// (0, Duration). Each epoch world is derived incrementally from its
// predecessor — the link plan by radio's row-patching Rebuild, the sparse
// link table by routing.RebuildSparseTableSym — so on a city-scale world
// with most stations parked, the per-epoch cost is proportional to the
// motion, not the population. With fault injection, epochs whose fault
// overlay changed carry a masked link table (dead stations and blocked
// links removed, noise penalties applied); consecutive epochs with
// identical positions and fault toggle counts share one World. Like
// everything else in the World, the sequence is a pure function of the
// Config's non-seed fields (the trajectory seed lives in MobilitySpec,
// the fault seed in FaultSpec, never Config.Seed).
func (w *World) buildEpochs(cfg *Config) error {
	var model mobility.Model
	if cfg.Mobility.active() {
		m, err := cfg.Mobility.model(cfg.Positions)
		if err != nil {
			return err
		}
		model = m
	}
	w.epochLen = epochLenFor(cfg)
	n := int((cfg.Duration - 1) / w.epochLen)
	if n <= 0 {
		return nil
	}
	pos := append([]radio.Pos(nil), cfg.Positions...)
	prev := w
	var prevCounts, counts []int
	if w.faults != nil {
		prevCounts = w.faults.ToggleCounts(0, nil)
	}
	w.epochs = make([]*World, 0, n)
	for e := 0; e < n; e++ {
		if model != nil {
			model.Step(pos)
		}
		at := sim.Time(e+1) * w.epochLen
		faultsUnchanged := true
		if w.faults != nil {
			counts = w.faults.ToggleCounts(at, counts[:0])
			faultsUnchanged = slices.Equal(prevCounts, counts)
			prevCounts = append(prevCounts[:0], counts...)
		}
		ew := deriveEpoch(cfg, w, prev, pos, at, faultsUnchanged)
		w.epochs = append(w.epochs, ew)
		prev = ew
	}
	return nil
}

// deriveEpoch builds the World of one epoch from its predecessor, the
// epoch's station positions and the fault overlay in effect at the
// boundary. Unlike the initial build, a flow whose route cannot be
// resolved this epoch is not an error: it keeps the previous epoch's
// route — flagged stale when motion disconnected the endpoints, or
// unreachable when the fault overlay did — exactly as a failed in-run
// dynamic recompute keeps the current one. A transient partition must not
// kill the run; Run surfaces the flags as Result.RouteStale and the
// unreachable machinery instead.
func deriveEpoch(cfg *Config, root, prev *World, positions []radio.Pos, at sim.Time, faultsUnchanged bool) *World {
	plan := prev.plan.Rebuild(positions)
	if plan == prev.plan && faultsUnchanged {
		// Nobody moved and no fault toggled this epoch: the predecessor *is*
		// this epoch's world, and both are immutable, so share it outright.
		return prev
	}
	ew := &World{plan: plan, flows: prev.flows}
	fs := root.faults
	var down []bool
	var noise []float64
	if fs != nil {
		ew.masked = fs.MaskedAt(at)
		if ew.masked {
			down = make([]bool, plan.Stations())
			noise = make([]float64, plan.Stations())
			for i := range down {
				down[i] = fs.StationDownAt(pkt.NodeID(i), at)
				noise[i] = fs.NoiseDBAt(pkt.NodeID(i), at)
			}
		}
	}
	var policy routing.Policy
	if cfg.Routing.active() {
		ew.table = epochLinkTable(cfg, fs, prev, plan, at, ew.masked, down, noise)
		if cfg.Routing.needsPolicy() {
			if pol, err := cfg.Routing.build(ew.table, plan.Positions()); err == nil {
				policy = pol
			}
		}
	}
	ew.routes = make([]routing.Path, len(cfg.Flows))
	if fs != nil || policy != nil {
		ew.stale = make([]bool, len(cfg.Flows))
		ew.unreach = make([]bool, len(cfg.Flows))
	}
	for i, f := range cfg.Flows {
		switch {
		case policy != nil:
			p, err := policy.Route(f.Path.Src(), f.Path.Dst(), nil)
			if err != nil {
				p = prev.routes[i]
				// Distinguish "this policy could not route" (geo void, a
				// congestion detour dead end — keep the stale route and let
				// blacklisting limp along) from "the fault overlay cut the
				// destination off" (no path at all in the masked table —
				// drop at the source instead of burning airtime).
				if ew.masked && !tableReachable(ew.table, f.Path.Src(), f.Path.Dst()) {
					ew.unreach[i] = true
				} else {
					ew.stale[i] = true
				}
			}
			ew.routes[i] = p
		case ew.table != nil:
			ew.routes[i] = routing.Resize(ew.table, maskPath(f.Path, down), cfg.Routing.K, cfg.Routing.Rule)
		default:
			ew.routes[i] = maskPath(f.Path, down)
		}
		if down != nil && down[f.Path.Dst()] {
			ew.unreach[i] = true
		}
	}
	return ew
}

// tableReachable reports whether any usable-link path connects src to dst
// in the (fault-masked) table — the arbiter between a policy-specific
// routing failure and a genuinely cut-off destination.
func tableReachable(t *routing.Table, src, dst pkt.NodeID) bool {
	if t == nil {
		return true
	}
	_, err := t.ShortestPath(src, dst)
	return err == nil
}

// maskPath filters crashed intermediate relays out of a declared path
// (endpoints stay — a down destination is handled as unreachable, not by
// rewriting the path).
func maskPath(p routing.Path, down []bool) routing.Path {
	if down == nil {
		return p
	}
	masked := false
	for i := 1; i < len(p)-1; i++ {
		if down[p[i]] {
			masked = true
			break
		}
	}
	if !masked {
		return p
	}
	out := make(routing.Path, 0, len(p))
	for i, nd := range p {
		if i > 0 && i < len(p)-1 && down[nd] {
			continue
		}
		out = append(out, nd)
	}
	return out
}

// epochLinkTable builds an epoch's link table. Without a fault overlay it
// is the incremental rebuild (or a from-scratch clean build when the
// predecessor's table was fault-masked: masked rows must never be copied
// forward). With an overlay in effect the table is built from scratch
// with down stations and blocked links removed and noise penalties
// raising the effective decode threshold — the routing-layer mirror of
// what the medium does to live transmissions.
func epochLinkTable(cfg *Config, fs *fault.Schedule, prev *World, plan *radio.LinkPlan,
	at sim.Time, masked bool, down []bool, noise []float64) *routing.Table {
	if !masked {
		if prev.masked {
			return newLinkTable(cfg, plan)
		}
		return rebuildLinkTable(cfg, prev, plan)
	}
	linkProb := func(a, b pkt.NodeID, d float64) float64 {
		if down[a] || down[b] || fs.LinkBlockedAt(a, b, at) {
			return 0
		}
		rc := cfg.Radio
		if pen := max(noise[a], noise[b]); pen > 0 {
			rc.RXThreshDBm += pen
		}
		return 1 - rc.LossProb(d)
	}
	if plan.Pruned() {
		return routing.NewSparseTableSym(plan.Stations(), func(a pkt.NodeID, yield func(int32, float64)) {
			plan.EachAscNeighbor(int(a), func(j int32, d float64) {
				yield(j, linkProb(a, pkt.NodeID(j), d))
			})
		}, 0.1)
	}
	return routing.NewTable(plan.Stations(), func(a, b pkt.NodeID) float64 {
		return linkProb(a, b, plan.Distance(int(a), int(b)))
	}, 0.1)
}

// rebuildLinkTable derives an epoch's link table from its predecessor's.
// When both the plan and the previous table are sparse, the table is
// patched row-by-row (unmoved pairs copy their stored values); otherwise
// it falls back to the from-scratch constructor, which itself picks the
// sparse layout whenever the plan is pruned — an epoch rebuild never
// widens a sparse world to a dense N² table.
func rebuildLinkTable(cfg *Config, prev *World, plan *radio.LinkPlan) *routing.Table {
	if prev.table == nil || !plan.Pruned() || !prev.table.Sparse() {
		return newLinkTable(cfg, plan)
	}
	prevPos, newPos := prev.plan.Positions(), plan.Positions()
	moved := make([]bool, plan.Stations())
	unchanged := make([]bool, plan.Stations())
	for i := range moved {
		moved[i] = newPos[i] != prevPos[i]
		unchanged[i] = !moved[i] && plan.RowEqual(prev.plan, i)
	}
	return routing.RebuildSparseTableSym(prev.table, moved, unchanged,
		func(a pkt.NodeID, yield func(int32, float64)) {
			plan.EachAscNeighbor(int(a), yield)
		},
		func(d float64) float64 { return 1 - cfg.Radio.LossProb(d) },
		0.1)
}

// Epochs returns the number of epoch worlds beyond the initial snapshot
// (0 for a static world).
func (w *World) Epochs() int { return len(w.epochs) }

// EpochLen returns the epoch length of a time-varying world (0 for a
// static one).
func (w *World) EpochLen() sim.Time { return w.epochLen }
