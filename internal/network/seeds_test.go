package network

import (
	"math"
	"testing"

	"ripple/internal/campaign/pool"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

func smokeConfig(seed uint64) Config {
	top, path := topology.Line(3)
	return Config{
		Positions: top.Positions,
		Scheme:    Ripple,
		Flows:     []FlowSpec{{ID: 1, Path: path, Kind: FTP}},
		Duration:  sim.Second,
		Seed:      seed,
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	a, err := Run(smokeConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smokeConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalMbps != b.TotalMbps || a.Events != b.Events {
		t.Fatalf("same seed diverged: %.4f/%d vs %.4f/%d",
			a.TotalMbps, a.Events, b.TotalMbps, b.Events)
	}
}

func TestRunDiffersAcrossSeeds(t *testing.T) {
	a, _ := Run(smokeConfig(1))
	b, _ := Run(smokeConfig(2))
	if a.Events == b.Events && a.TotalMbps == b.TotalMbps {
		t.Fatal("different seeds produced identical runs (RNG not wired?)")
	}
}

func TestRunSeedsAveragesConcurrently(t *testing.T) {
	results, avg, err := RunSeeds(smokeConfig(0), []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	var want float64
	for _, r := range results {
		want += r.TotalMbps / 4
	}
	if math.Abs(avg.TotalMbps-want) > 1e-9 {
		t.Fatalf("average = %v, want %v", avg.TotalMbps, want)
	}
}

// TestAverageMeansEveryField pins the fix for the seed repo's semantics
// bug: Events, PktsDelivered and Transfers were summed across seeds while
// every other field was averaged. All fields now carry mean semantics.
func TestAverageMeansEveryField(t *testing.T) {
	a := &Result{
		TotalMbps: 10, Fairness: 1, Events: 1000, Duration: sim.Second,
		Flows: []FlowResult{{
			ID: 1, Kind: FTP, ThroughputMbps: 10, MeanDelay: 40 * sim.Millisecond,
			ReorderRate: 0.2, PktsDelivered: 100, Transfers: 4, MoS: 4, LossRate: 0.1,
		}},
	}
	b := &Result{
		TotalMbps: 20, Fairness: 0.5, Events: 3000, Duration: sim.Second,
		Flows: []FlowResult{{
			ID: 1, Kind: FTP, ThroughputMbps: 20, MeanDelay: 80 * sim.Millisecond,
			ReorderRate: 0.4, PktsDelivered: 301, Transfers: 7, MoS: 2, LossRate: 0.3,
		}},
	}
	avg := Average([]*Result{a, b})
	if avg.TotalMbps != 15 || avg.Fairness != 0.75 {
		t.Errorf("TotalMbps/Fairness = %v/%v", avg.TotalMbps, avg.Fairness)
	}
	if avg.Events != 2000 {
		t.Errorf("Events = %d, want mean 2000 (not sum 4000)", avg.Events)
	}
	f := avg.Flows[0]
	if f.ID != 1 || f.Kind != FTP {
		t.Errorf("flow identity lost: %+v", f)
	}
	if f.ThroughputMbps != 15 || f.MeanDelay != 60*sim.Millisecond {
		t.Errorf("ThroughputMbps/MeanDelay = %v/%v", f.ThroughputMbps, f.MeanDelay)
	}
	if math.Abs(f.ReorderRate-0.3) > 1e-12 || math.Abs(f.LossRate-0.2) > 1e-12 {
		t.Errorf("ReorderRate/LossRate = %v/%v", f.ReorderRate, f.LossRate)
	}
	if f.PktsDelivered != 201 {
		t.Errorf("PktsDelivered = %d, want rounded mean 201 (not sum 401)", f.PktsDelivered)
	}
	if f.Transfers != 6 {
		t.Errorf("Transfers = %d, want rounded mean 6 (not sum 11)", f.Transfers)
	}
	if f.MoS != 3 {
		t.Errorf("MoS = %v", f.MoS)
	}
	if Average(nil) != nil {
		t.Error("Average(nil) must be nil")
	}
}

// TestRunSeedsMatchesAnyPoolSize asserts seed-indexed determinism: the
// same seeds produce bit-identical averages whether runs execute serially
// or across many workers.
func TestRunSeedsMatchesAnyPoolSize(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	_, serial, err := RunSeedsOn(pool.New(1), smokeConfig(0), seeds)
	if err != nil {
		t.Fatal(err)
	}
	_, wide, err := RunSeedsOn(pool.New(8), smokeConfig(0), seeds)
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalMbps != wide.TotalMbps || serial.Events != wide.Events {
		t.Fatalf("pool size changed results: %v/%d vs %v/%d",
			serial.TotalMbps, serial.Events, wide.TotalMbps, wide.Events)
	}
}

func TestRunSeedsRequiresSeeds(t *testing.T) {
	if _, _, err := RunSeeds(smokeConfig(0), nil); err == nil {
		t.Fatal("empty seed list must error")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	top, path := topology.Line(2)
	base := Config{
		Positions: top.Positions,
		Scheme:    DCF,
		Flows:     []FlowSpec{{ID: 1, Path: path, Kind: FTP}},
		Duration:  sim.Second,
	}

	bad := base
	bad.Positions = nil
	if _, err := Run(bad); err == nil {
		t.Error("no positions must error")
	}

	bad = base
	bad.Flows = nil
	if _, err := Run(bad); err == nil {
		t.Error("no flows must error")
	}

	bad = base
	bad.Flows = []FlowSpec{{ID: 1, Path: path, Kind: FTP}, {ID: 1, Path: path, Kind: FTP}}
	if _, err := Run(bad); err == nil {
		t.Error("duplicate flow ids must error")
	}

	bad = base
	bad.Flows = []FlowSpec{{ID: 1, Path: routing.Path{0, 9}, Kind: FTP}}
	if _, err := Run(bad); err == nil {
		t.Error("out-of-range station must error")
	}

	bad = base
	bad.Flows = []FlowSpec{{ID: 1, Path: path, Kind: 99}}
	if _, err := Run(bad); err == nil {
		t.Error("unknown traffic kind must error")
	}
}

func TestSchemeKindString(t *testing.T) {
	names := map[SchemeKind]string{
		DCF: "DCF", AFR: "AFR", PreExOR: "preExOR",
		MCExOR: "MCExOR", Ripple: "RIPPLE", RippleNoAgg: "RIPPLE-noagg",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
