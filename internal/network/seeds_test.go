package network

import (
	"math"
	"testing"

	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

func smokeConfig(seed uint64) Config {
	top, path := topology.Line(3)
	return Config{
		Positions: top.Positions,
		Scheme:    Ripple,
		Flows:     []FlowSpec{{ID: 1, Path: path, Kind: FTP}},
		Duration:  sim.Second,
		Seed:      seed,
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	a, err := Run(smokeConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smokeConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalMbps != b.TotalMbps || a.Events != b.Events {
		t.Fatalf("same seed diverged: %.4f/%d vs %.4f/%d",
			a.TotalMbps, a.Events, b.TotalMbps, b.Events)
	}
}

func TestRunDiffersAcrossSeeds(t *testing.T) {
	a, _ := Run(smokeConfig(1))
	b, _ := Run(smokeConfig(2))
	if a.Events == b.Events && a.TotalMbps == b.TotalMbps {
		t.Fatal("different seeds produced identical runs (RNG not wired?)")
	}
}

func TestRunSeedsAveragesConcurrently(t *testing.T) {
	results, avg, err := RunSeeds(smokeConfig(0), []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	var want float64
	for _, r := range results {
		want += r.TotalMbps / 4
	}
	if math.Abs(avg.TotalMbps-want) > 1e-9 {
		t.Fatalf("average = %v, want %v", avg.TotalMbps, want)
	}
}

func TestRunSeedsRequiresSeeds(t *testing.T) {
	if _, _, err := RunSeeds(smokeConfig(0), nil); err == nil {
		t.Fatal("empty seed list must error")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	top, path := topology.Line(2)
	base := Config{
		Positions: top.Positions,
		Scheme:    DCF,
		Flows:     []FlowSpec{{ID: 1, Path: path, Kind: FTP}},
		Duration:  sim.Second,
	}

	bad := base
	bad.Positions = nil
	if _, err := Run(bad); err == nil {
		t.Error("no positions must error")
	}

	bad = base
	bad.Flows = nil
	if _, err := Run(bad); err == nil {
		t.Error("no flows must error")
	}

	bad = base
	bad.Flows = []FlowSpec{{ID: 1, Path: path, Kind: FTP}, {ID: 1, Path: path, Kind: FTP}}
	if _, err := Run(bad); err == nil {
		t.Error("duplicate flow ids must error")
	}

	bad = base
	bad.Flows = []FlowSpec{{ID: 1, Path: routing.Path{0, 9}, Kind: FTP}}
	if _, err := Run(bad); err == nil {
		t.Error("out-of-range station must error")
	}

	bad = base
	bad.Flows = []FlowSpec{{ID: 1, Path: path, Kind: 99}}
	if _, err := Run(bad); err == nil {
		t.Error("unknown traffic kind must error")
	}
}

func TestSchemeKindString(t *testing.T) {
	names := map[SchemeKind]string{
		DCF: "DCF", AFR: "AFR", PreExOR: "preExOR",
		MCExOR: "MCExOR", Ripple: "RIPPLE", RippleNoAgg: "RIPPLE-noagg",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
