package network

import (
	"reflect"
	"sync"
	"testing"

	"ripple/internal/campaign/pool"
	"ripple/internal/fault"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// lineChurnConfig is the resilience ablation's line arena in miniature: a
// paced CBR flow over a 5-hop line under a sharpened radio, with station
// churn aggressive enough that relays crash mid-run.
func lineChurnConfig(seed uint64) Config {
	top, path := topology.Line(5)
	r := radio.DefaultConfig()
	r.ShadowSigmaDB = 3
	r.RXThreshDBm = r.MeanRxPowerDBm(150)
	r.CSThreshDBm = r.RXThreshDBm - 13
	return Config{
		Positions: top.Positions,
		Radio:     r,
		Scheme:    Ripple,
		Flows: []FlowSpec{{ID: 1, Path: path, Kind: CBRTraffic,
			CBRInterval: 20 * sim.Millisecond, CBRPacketBytes: 1000}},
		Faults: fault.Spec{
			MTBF:  2 * sim.Second,
			MTTR:  500 * sim.Millisecond,
			Epoch: 100 * sim.Millisecond,
		},
		Duration: 8 * sim.Second,
		Seed:     seed,
	}
}

// A FaultSpec with a seed but no fault modes enabled is inert: the run
// must be bit-identical to one with no Faults field at all — no epoch
// machinery, no extra RNG draws, nothing.
func TestInertFaultSpecLeavesRunIdentical(t *testing.T) {
	base, err := Run(smokeConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smokeConfig(42)
	cfg.Faults = fault.Spec{Seed: 99, FailureThreshold: 7}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("inert fault spec perturbed the run:\nbase %+v\ngot  %+v", base, got)
	}
}

func TestFaultRunDeterministic(t *testing.T) {
	a, err := Run(lineChurnConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(lineChurnConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged under faults:\n%+v\nvs\n%+v", a, b)
	}
	if a.MAC.CrashDrops == 0 && a.Events == b.Events && a.TotalMbps == 0 {
		t.Fatal("fault run looks empty — did the flow ever start?")
	}
}

// The fault timeline is a function of Spec.Seed, not Config.Seed: two runs
// that differ only in the traffic seed crash the same stations at the same
// times. This is what lets a seed-averaged sweep hold the failure pattern
// fixed while varying channel randomness.
func TestFaultScheduleIndependentOfConfigSeed(t *testing.T) {
	type ev struct {
		at      sim.Time
		kind    string
		station pkt.NodeID
	}
	timeline := func(seed uint64) []ev {
		var mu sync.Mutex
		var evs []ev
		cfg := lineChurnConfig(seed)
		cfg.Trace = func(at sim.Time, event string, node pkt.NodeID, _ *pkt.Frame) {
			if event == "station-down" || event == "station-up" {
				mu.Lock()
				evs = append(evs, ev{at, event, node})
				mu.Unlock()
			}
		}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a := timeline(1)
	b := timeline(2)
	if len(a) == 0 {
		t.Fatal("no churn events over 8 s at MTBF 2 s")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault timeline moved with Config.Seed:\n%v\nvs\n%v", a, b)
	}
}

// A crash releases custody of every packet the station held; the pool's
// outstanding count at end of run stays bounded by total queue capacity
// no matter how many relays died holding traffic.
func TestCrashReleasesCustody(t *testing.T) {
	// DCF store-and-forward with a backlogged FTP flow: relay queues hold
	// real custody between hops, so a crash reliably catches a station
	// holding packets. (RIPPLE relays hold custody only for the duration
	// of an mTXOP cascade — microseconds — so churn rarely catches them.)
	cfg := lineChurnConfig(3)
	cfg.Scheme = DCF
	cfg.Flows = []FlowSpec{{ID: 1, Path: cfg.Flows[0].Path, Kind: FTP}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAC.CrashDrops == 0 {
		t.Fatal("no crash drops — churn never caught a station holding packets")
	}
	cap := len(cfg.Positions) * phys.Default().QueueLimit
	if res.PoolInUse > cap {
		t.Fatalf("PoolInUse = %d exceeds total queue capacity %d: custody leaked",
			res.PoolInUse, cap)
	}
}

// Pool-width invariance must survive fault injection: the shared world
// snapshot now carries fault overlays and per-epoch masked routes, and
// concurrent seed-runs read it simultaneously. Run under -race this also
// checks the overlay is truly read-only.
func TestFaultPoolWidthEquality(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	serial, savg, err := RunSeedsOn(pool.New(1), lineChurnConfig(0), seeds)
	if err != nil {
		t.Fatal(err)
	}
	wide, wavg, err := RunSeedsOn(pool.New(8), lineChurnConfig(0), seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("per-seed results differ across pool widths with faults on")
	}
	if !reflect.DeepEqual(savg, wavg) {
		t.Fatal("averages differ across pool widths with faults on")
	}
}

// An area partition that cuts a flow's destination off produces typed
// unreachable drops at the source — counted on the run, mirrored from the
// MAC, attributed to the flow — and NOT stale-route events: the overlay
// cut the table, so the distinction at epoch derivation must label it
// unreachable rather than limping along on a stale route.
func TestPartitionUnreachableTypedDrops(t *testing.T) {
	top, path := topology.Line(3)
	cfg := Config{
		Positions: top.Positions,
		Scheme:    Ripple,
		Routing:   RoutingSpec{Kind: RouteETX},
		Flows: []FlowSpec{{ID: 1, Path: path, Kind: CBRTraffic,
			CBRInterval: 20 * sim.Millisecond, CBRPacketBytes: 1000}},
		Faults: fault.Spec{
			PartitionAt:  1 * sim.Second,
			PartitionDur: 2 * sim.Second,
			Epoch:        100 * sim.Millisecond,
		},
		Duration: 4 * sim.Second,
		Seed:     11,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unreachable == 0 {
		t.Fatal("no unreachable drops during a 2 s partition severing the flow")
	}
	if res.Unreachable != res.MAC.Unreachable {
		t.Fatalf("Result.Unreachable = %d but MAC.Unreachable = %d",
			res.Unreachable, res.MAC.Unreachable)
	}
	if res.Flows[0].Unreachable == 0 {
		t.Fatal("unreachable drops not attributed to the flow")
	}
	if res.RouteStale != 0 {
		t.Fatalf("RouteStale = %d: an overlay cut must be typed unreachable, not stale",
			res.RouteStale)
	}
	// Delivery resumes after the partition lifts: the flow is not dead.
	if res.Flows[0].PktsDelivered == 0 {
		t.Fatal("no packets delivered outside the partition window")
	}
}
