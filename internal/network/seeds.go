package network

import (
	"fmt"
	"math"

	"ripple/internal/campaign/pool"
	"ripple/internal/sim"
)

// RunSeeds executes the same scenario under several seeds and returns the
// per-seed results plus the seed-averaged summary, which is how the paper
// reports every figure ("All results presented are averages over multiple
// runs"). Runs are scheduled on the shared bounded worker pool, so a large
// seed list cannot spawn an unbounded number of goroutines; results are
// indexed by seed position and therefore identical for any pool size.
func RunSeeds(cfg Config, seeds []uint64) ([]*Result, *Result, error) {
	return RunSeedsOn(pool.Shared(), cfg, seeds)
}

// RunSeedsOn is RunSeeds scheduled on a specific pool. The seed-independent
// world snapshot (link plan, routing table, initial routes) is built once
// and shared read-only by every seed-run on the pool.
func RunSeedsOn(p *pool.Pool, cfg Config, seeds []uint64) ([]*Result, *Result, error) {
	if len(seeds) == 0 {
		return nil, nil, fmt.Errorf("network: no seeds")
	}
	if cfg.World == nil {
		w, err := BuildWorld(cfg)
		if err != nil {
			return nil, nil, err
		}
		cfg.World = w
	}
	results := make([]*Result, len(seeds))
	err := p.Do(len(seeds), func(i int) error {
		c := cfg
		c.Seed = seeds[i]
		var err error
		results[i], err = Run(c)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return results, Average(results), nil
}

// Average combines per-seed results into the per-seed mean of every field,
// per flow and in total. All fields — including the Events, PktsDelivered
// and Transfers counters, which the seed implementation inconsistently
// summed — carry mean semantics; integer counters are rounded to the
// nearest integer. Results must come from the same scenario (same flows in
// the same order). Fields are folded in slice order, so the output is
// bit-identical for a fixed result order regardless of how the runs were
// scheduled.
func Average(results []*Result) *Result {
	if len(results) == 0 {
		return nil
	}
	avg := &Result{Duration: results[0].Duration}
	n := float64(len(results))
	avg.Flows = make([]FlowResult, len(results[0].Flows))
	for i := range avg.Flows {
		avg.Flows[i].ID = results[0].Flows[i].ID
		avg.Flows[i].Kind = results[0].Flows[i].Kind
	}
	var events, stale, unreach, inUse float64
	pkts := make([]float64, len(avg.Flows))
	transfers := make([]float64, len(avg.Flows))
	flowUnreach := make([]float64, len(avg.Flows))
	for _, r := range results {
		avg.TotalMbps += r.TotalMbps / n
		avg.Fairness += r.Fairness / n
		events += float64(r.Events) / n
		stale += float64(r.RouteStale) / n
		unreach += float64(r.Unreachable) / n
		inUse += float64(r.PoolInUse) / n
		for i, f := range r.Flows {
			avg.Flows[i].ThroughputMbps += f.ThroughputMbps / n
			avg.Flows[i].MeanDelay += f.MeanDelay / sim.Time(len(results))
			avg.Flows[i].ReorderRate += f.ReorderRate / n
			pkts[i] += float64(f.PktsDelivered) / n
			transfers[i] += float64(f.Transfers) / n
			flowUnreach[i] += float64(f.Unreachable) / n
			avg.Flows[i].MoS += f.MoS / n
			avg.Flows[i].LossRate += f.LossRate / n
		}
	}
	avg.Events = uint64(math.Round(events))
	avg.RouteStale = uint64(math.Round(stale))
	avg.Unreachable = uint64(math.Round(unreach))
	avg.PoolInUse = int(math.Round(inUse))
	for i := range avg.Flows {
		avg.Flows[i].PktsDelivered = int64(math.Round(pkts[i]))
		avg.Flows[i].Transfers = int64(math.Round(transfers[i]))
		avg.Flows[i].Unreachable = int64(math.Round(flowUnreach[i]))
	}
	return avg
}
