package network

import (
	"fmt"
	"sync"

	"ripple/internal/sim"
)

// RunSeeds executes the same scenario under several seeds concurrently (one
// goroutine per seed; engines are independent) and returns the per-seed
// results plus the seed-averaged summary, which is how the paper reports
// every figure ("All results presented are averages over multiple runs").
func RunSeeds(cfg Config, seeds []uint64) ([]*Result, *Result, error) {
	if len(seeds) == 0 {
		return nil, nil, fmt.Errorf("network: no seeds")
	}
	results := make([]*Result, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed uint64) {
			defer wg.Done()
			c := cfg
			c.Seed = seed
			results[i], errs[i] = Run(c)
		}(i, seed)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results, Average(results), nil
}

// Average combines per-seed results into mean per-flow and total metrics.
func Average(results []*Result) *Result {
	if len(results) == 0 {
		return nil
	}
	avg := &Result{Duration: results[0].Duration}
	n := float64(len(results))
	avg.Flows = make([]FlowResult, len(results[0].Flows))
	for i := range avg.Flows {
		avg.Flows[i].ID = results[0].Flows[i].ID
		avg.Flows[i].Kind = results[0].Flows[i].Kind
	}
	for _, r := range results {
		avg.TotalMbps += r.TotalMbps / n
		avg.Fairness += r.Fairness / n
		avg.Events += r.Events
		for i, f := range r.Flows {
			avg.Flows[i].ThroughputMbps += f.ThroughputMbps / n
			avg.Flows[i].MeanDelay += f.MeanDelay / sim.Time(len(results))
			avg.Flows[i].ReorderRate += f.ReorderRate / n
			avg.Flows[i].PktsDelivered += f.PktsDelivered
			avg.Flows[i].Transfers += f.Transfers
			avg.Flows[i].MoS += f.MoS / n
			avg.Flows[i].LossRate += f.LossRate / n
		}
	}
	return avg
}
