package network

import (
	"testing"

	"ripple/internal/campaign/pool"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// hotspotConfig is the congestion-diversity scenario: VoIP 0→3 whose
// minimum-ETX route transits station 1, plus a backlogged FTP transfer
// originating at station 1 — the queue the policy should route around.
func hotspotConfig(kind RoutePolicyKind, seed uint64) Config {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	return Config{
		Positions: top.Positions,
		Radio:     rc,
		Scheme:    Ripple,
		Routing:   RoutingSpec{Kind: kind},
		Duration:  2 * sim.Second,
		Seed:      seed,
		Flows: []FlowSpec{
			{ID: 1, Path: routing.Path{0, 1, 3}, Kind: VoIPTraffic},
			{ID: 2, Path: routing.Path{1, 7}, Kind: FTP, Start: 100 * sim.Millisecond},
		},
	}
}

// TestRoutingZeroSpecPreservesLegacyBehaviour pins the compatibility
// contract: a zero RoutingSpec must produce bit-identical results to the
// pre-policy code path (declared paths, nothing recomputed).
func TestRoutingZeroSpecPreservesLegacyBehaviour(t *testing.T) {
	legacy := smokeConfig(7)
	a, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	withSpec := smokeConfig(7)
	withSpec.Routing = RoutingSpec{Kind: RouteStatic}
	b, err := Run(withSpec)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalMbps != b.TotalMbps || a.Events != b.Events {
		t.Fatalf("zero spec diverged from legacy: %.4f/%d vs %.4f/%d",
			a.TotalMbps, a.Events, b.TotalMbps, b.Events)
	}
}

// TestRouteETXRecomputesFromEndpoints: under RouteETX a deliberately bad
// declared path is replaced by the minimum-ETX route, changing the run.
func TestRouteETXRecomputesFromEndpoints(t *testing.T) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	base := Config{
		Positions: top.Positions,
		Radio:     rc,
		Scheme:    DCF,
		Duration:  sim.Second,
		Seed:      1,
		// The long way round: ETX discovery finds the 2-hop route instead.
		Flows: []FlowSpec{{ID: 1, Path: routing.Path{0, 1, 2, 3}, Kind: FTP}},
	}
	declared, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	etx := base
	etx.Routing = RoutingSpec{Kind: RouteETX}
	rerouted, err := Run(etx)
	if err != nil {
		t.Fatal(err)
	}
	if declared.Events == rerouted.Events && declared.TotalMbps == rerouted.TotalMbps {
		t.Fatal("RouteETX left the declared detour in place")
	}
}

// TestCongestionEpochDeterministicAcrossPools asserts the satellite
// requirement: epoch recomputation happens inside the engine's event loop,
// so a dynamic-policy scenario folds to bit-identical numbers at any pool
// parallelism.
func TestCongestionEpochDeterministicAcrossPools(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	cfg := hotspotConfig(RouteCongestion, 0)
	cfg.Routing.Epoch = 100 * sim.Millisecond
	_, serial, err := RunSeedsOn(pool.New(1), cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	_, wide, err := RunSeedsOn(pool.New(8), cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalMbps != wide.TotalMbps || serial.Events != wide.Events {
		t.Fatalf("pool size changed dynamic-routing results: %v/%d vs %v/%d",
			serial.TotalMbps, serial.Events, wide.TotalMbps, wide.Events)
	}
}

// TestCongestionDivergesFromETX asserts the dynamic policy actually changes
// the run on the hotspot scenario (if it never re-routes, it is ETX).
func TestCongestionDivergesFromETX(t *testing.T) {
	etx, err := Run(hotspotConfig(RouteETX, 1))
	if err != nil {
		t.Fatal(err)
	}
	orcd, err := Run(hotspotConfig(RouteCongestion, 1))
	if err != nil {
		t.Fatal(err)
	}
	if etx.Events == orcd.Events && etx.TotalMbps == orcd.TotalMbps {
		t.Fatal("congestion diversity never diverged from ETX on the hotspot mix")
	}
}

// TestStaticWithKSizesDeclaredPath: RouteStatic plus K must size the
// declared path in place rather than recomputing an ETX route.
func TestStaticWithKSizesDeclaredPath(t *testing.T) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	base := Config{
		Positions: top.Positions,
		Radio:     rc,
		Scheme:    DCF,
		Duration:  sim.Second,
		Seed:      1,
		Flows:     []FlowSpec{{ID: 1, Path: routing.Path{0, 1, 2, 3}, Kind: FTP}},
	}
	declared, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sized := base
	sized.Routing = RoutingSpec{Kind: RouteStatic, K: 1}
	truncated, err := Run(sized)
	if err != nil {
		t.Fatal(err)
	}
	if declared.Events == truncated.Events && declared.TotalMbps == truncated.TotalMbps {
		t.Fatal("static K-sizing left the declared 2-relay path untouched")
	}
}

func TestRoutePolicyUnreachableErrors(t *testing.T) {
	// Two stations far outside radio range: ETX discovery must fail loudly.
	cfg := Config{
		Positions: []radio.Pos{{X: 0, Y: 0}, {X: 1e6, Y: 0}},
		Scheme:    DCF,
		Duration:  sim.Second,
		Routing:   RoutingSpec{Kind: RouteETX},
		Flows:     []FlowSpec{{ID: 1, Path: routing.Path{0, 1}, Kind: FTP}},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unreachable destination must surface a route error")
	}
}

func TestRoutePolicyKindString(t *testing.T) {
	names := map[RoutePolicyKind]string{
		RouteStatic: "static", RouteETX: "etx", RouteCongestion: "congestion",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
