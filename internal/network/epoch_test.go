package network

import (
	"reflect"
	"testing"

	"ripple/internal/campaign/pool"
	"ripple/internal/radio"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// mobileTestConfig is worldTestConfig with motion: short epochs so a
// 400 ms run crosses several boundaries.
func mobileTestConfig(kind MobilityKind) Config {
	cfg := worldTestConfig()
	cfg.Mobility = MobilitySpec{Kind: kind, Epoch: 50 * sim.Millisecond, MaxSpeed: 30}
	return cfg
}

// TestMobilityOffBitIdentical pins the compatibility half of the epoch
// machinery: a zero MobilitySpec builds no epoch worlds, schedules no swap
// events, and every mobility knob is inert while Kind is MobilityStatic —
// results are bit-identical to a config that never heard of the field.
func TestMobilityOffBitIdentical(t *testing.T) {
	cfg := worldTestConfig()
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Epochs() != 0 || w.EpochLen() != 0 {
		t.Fatalf("static world grew epochs: %d epochs, epochLen %v", w.Epochs(), w.EpochLen())
	}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Knobs without a model must change nothing, down to the event count.
	knobs := cfg
	knobs.Mobility = MobilitySpec{Epoch: 123 * sim.Millisecond, Seed: 99, MaxSpeed: 50, Places: 7}
	got, err := Run(knobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("MobilityStatic with set knobs diverged:\n%+v\nvs\n%+v", base, got)
	}

	// Turning a model on must visibly change the run (epoch swaps are
	// engine events), or the off-path assertion above proves nothing.
	mobile, err := Run(mobileTestConfig(MobilityWaypoint))
	if err != nil {
		t.Fatal(err)
	}
	if mobile.Events <= base.Events {
		t.Fatalf("mobile run processed %d events, static %d — swaps not scheduled?",
			mobile.Events, base.Events)
	}
}

// TestEpochWorldsPureAndSeedIndependent: the epoch sequence is a pure
// function of the Config's non-seed fields — rebuilt bit-identically, and
// untouched by Config.Seed (trajectories draw from MobilitySpec.Seed).
func TestEpochWorldsPureAndSeedIndependent(t *testing.T) {
	for _, kind := range []MobilityKind{MobilityWaypoint, MobilityMarkov} {
		cfg := mobileTestConfig(kind)
		a, err := BuildWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = 12345
		c, err := BuildWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two builds of one config differ", kind)
		}
		if !reflect.DeepEqual(a, c) {
			t.Fatalf("%s: epoch worlds depend on Config.Seed", kind)
		}
		if a.Epochs() == 0 {
			t.Fatalf("%s: mobile config built no epoch worlds", kind)
		}
		// Distinct trajectory seeds must actually move differently.
		cfg.Mobility.Seed = 7
		d, err := BuildWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.epochs, d.epochs) {
			t.Fatalf("%s: trajectory seed change left every epoch identical", kind)
		}
	}
}

// TestEpochIncrementalMatchesScratch is the world-level equivalence bar:
// every epoch world the incremental path derives (plan row-patching, sparse
// table patching, route carry-over) must equal a from-scratch build over
// that epoch's positions, bit for bit.
func TestEpochIncrementalMatchesScratch(t *testing.T) {
	for _, kind := range []MobilityKind{MobilityWaypoint, MobilityMarkov} {
		cfg := mobileTestConfig(kind)
		cfg.Normalize()
		w, err := BuildWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		model, err := cfg.Mobility.model(cfg.Positions)
		if err != nil {
			t.Fatal(err)
		}
		pos := append([]radio.Pos(nil), cfg.Positions...)
		prevRoutes := w.routes
		for e, ew := range w.epochs {
			model.Step(pos)
			plan := radio.NewLinkPlan(cfg.Radio, pos)
			if !reflect.DeepEqual(ew.plan, plan) {
				t.Fatalf("%s epoch %d: incremental plan differs from scratch build", kind, e)
			}
			table := newLinkTable(&cfg, plan)
			if !reflect.DeepEqual(ew.table, table) {
				t.Fatalf("%s epoch %d: incremental table differs from scratch build", kind, e)
			}
			pol, err := cfg.Routing.build(table, plan.Positions())
			if err != nil {
				t.Fatal(err)
			}
			for i, f := range cfg.Flows {
				want, err := pol.Route(f.Path.Src(), f.Path.Dst(), nil)
				if err != nil {
					want = prevRoutes[i]
				}
				if !reflect.DeepEqual(ew.routes[i], want) {
					t.Fatalf("%s epoch %d flow %d: route %v, want %v", kind, e, f.ID, ew.routes[i], want)
				}
			}
			prevRoutes = ew.routes
		}
	}
}

// TestEpochWorldDeterministicAcrossPools: a mobile scenario's seed-runs are
// bit-identical whether each run builds its own epoch worlds or all share
// one prebuilt sequence, and at any pool width.
func TestEpochWorldDeterministicAcrossPools(t *testing.T) {
	for _, kind := range []MobilityKind{MobilityWaypoint, MobilityMarkov} {
		cfg := mobileTestConfig(kind)
		seeds := []uint64{1, 2, 3, 4}

		perRun := make([]*Result, len(seeds))
		for i, s := range seeds {
			c := cfg
			c.Seed = s
			r, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			perRun[i] = r
		}

		w, err := BuildWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		shared := cfg
		shared.World = w
		narrow, _, err := RunSeedsOn(pool.New(1), shared, seeds)
		if err != nil {
			t.Fatal(err)
		}
		wide, _, err := RunSeedsOn(pool.New(8), shared, seeds)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seeds {
			if !reflect.DeepEqual(perRun[i], narrow[i]) {
				t.Fatalf("%s seed %d: shared epoch worlds diverge from per-run build", kind, seeds[i])
			}
			if !reflect.DeepEqual(narrow[i], wide[i]) {
				t.Fatalf("%s seed %d: result depends on pool width", kind, seeds[i])
			}
		}
	}
}

// TestSharedEpochWorldRace hammers one epoch-world sequence from many
// concurrent runs; under -race a single write to any shared epoch's plan,
// table or routes fails the test (the mobile analogue of
// TestSharedWorldRace).
func TestSharedEpochWorldRace(t *testing.T) {
	cfg := mobileTestConfig(MobilityMarkov)
	cfg.Duration = 300 * sim.Millisecond
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Epochs() == 0 {
		t.Fatal("race test needs epoch worlds")
	}
	cfg.World = w
	seeds := make([]uint64, 16)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	if _, _, err := RunSeedsOn(pool.New(8), cfg, seeds); err != nil {
		t.Fatal(err)
	}
}

// TestEpochTablesStaySparseCity guards the epoch rebuild against the dense
// fallback: on a pruned city-scale world every epoch's link table must keep
// the sparse layout (a dense slip at N=1000 is an 8 MB-per-epoch
// regression; the alloc gate on BenchmarkEpochRebuildCity enforces the
// byte budget, this pins the layout).
func TestEpochTablesStaySparseCity(t *testing.T) {
	top, _ := topology.CityN(1000, 3)
	cfg := Config{
		Positions: top.Positions,
		Radio:     topology.CityRadio(),
		Scheme:    Ripple,
		Flows: []FlowSpec{
			{ID: 1, Path: endpointPath(0, 999), Kind: FTP},
		},
		Routing:  RoutingSpec{Kind: RouteETX},
		Duration: 1200 * sim.Millisecond,
		Mobility: MobilitySpec{Kind: MobilityMarkov},
	}
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !w.plan.Pruned() || !w.table.Sparse() {
		t.Fatal("city base world is not sparse — case set up wrong")
	}
	if w.Epochs() == 0 {
		t.Fatal("mobile city built no epoch worlds")
	}
	for e, ew := range w.epochs {
		if !ew.plan.Pruned() {
			t.Fatalf("epoch %d: rebuilt plan lost pruning", e)
		}
		if !ew.table.Sparse() {
			t.Fatalf("epoch %d: rebuilt table fell back to the dense layout", e)
		}
	}
}

// TestRouteGeoResolvesThroughWorld wires the geographic policy through
// BuildWorld: on a line the greedy route must exist, be valid, and end at
// the declared destination.
func TestRouteGeoResolvesThroughWorld(t *testing.T) {
	cfg := worldTestConfig()
	cfg.Routing = RoutingSpec{Kind: RouteGeo}
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := w.routes[0]
	if err := p.Validate(); err != nil {
		t.Fatalf("geo route %v invalid: %v", p, err)
	}
	if p.Src() != cfg.Flows[0].Path.Src() || p.Dst() != cfg.Flows[0].Path.Dst() {
		t.Fatalf("geo route %v has wrong endpoints", p)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("geo-routed run failed: %v", err)
	}
	// And under mobility, with fresh geometry per epoch.
	mob := mobileTestConfig(MobilityWaypoint)
	mob.Routing = RoutingSpec{Kind: RouteGeo}
	if _, err := Run(mob); err != nil {
		t.Fatalf("mobile geo-routed run failed: %v", err)
	}
}

// TestWorldCheckRejectsMobilityMismatch: a World must not be reusable
// across configs that disagree on motion.
func TestWorldCheckRejectsMobilityMismatch(t *testing.T) {
	static := worldTestConfig()
	mobile := mobileTestConfig(MobilityMarkov)

	ws, err := BuildWorld(static)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := BuildWorld(mobile)
	if err != nil {
		t.Fatal(err)
	}

	c := mobile
	c.World = ws
	if _, err := Run(c); err == nil {
		t.Fatal("Run accepted a static World for a mobile config")
	}
	c = static
	c.World = wm
	if _, err := Run(c); err == nil {
		t.Fatal("Run accepted a mobile World for a static config")
	}
	c = mobile
	c.World = wm
	c.Duration = 2 * c.Duration
	if _, err := Run(c); err == nil {
		t.Fatal("Run accepted epoch worlds built for a different duration")
	}
	c = mobile
	c.World = wm
	c.Mobility.Epoch = 75 * sim.Millisecond
	if _, err := Run(c); err == nil {
		t.Fatal("Run accepted epoch worlds built with a different epoch length")
	}
}

// TestUnknownMobilityKindErrors: validation catches a bogus kind before
// any model is constructed.
func TestUnknownMobilityKindErrors(t *testing.T) {
	cfg := worldTestConfig()
	cfg.Mobility.Kind = MobilityKind(42)
	if _, err := BuildWorld(cfg); err == nil {
		t.Fatal("BuildWorld accepted an unknown mobility kind")
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an unknown mobility kind")
	}
	if got := MobilityKind(42).String(); got != "MobilityKind(42)" {
		t.Fatalf("String() = %q", got)
	}
	var names []string
	for _, k := range []MobilityKind{MobilityStatic, MobilityWaypoint, MobilityMarkov} {
		names = append(names, k.String())
	}
	if !reflect.DeepEqual(names, []string{"static", "waypoint", "markov"}) {
		t.Fatalf("kind names = %v", names)
	}
}
