package network

import (
	"reflect"
	"testing"

	"ripple/internal/campaign/pool"
	"ripple/internal/radio"
	"ripple/internal/sim"
	"ripple/internal/stats"
)

// pruneArm runs the smoke scenario over the given seeds with the given
// PruneSigma and folds delivery count and mean delay into Welford
// accumulators.
func pruneArm(t *testing.T, pruneSigma float64, seeds []uint64) (delivered, delayMs *stats.Welford) {
	t.Helper()
	delivered, delayMs = &stats.Welford{}, &stats.Welford{}
	for _, seed := range seeds {
		cfg := smokeConfig(seed)
		cfg.Radio = radio.DefaultConfig()
		cfg.Radio.PruneSigma = pruneSigma
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		delivered.Add(float64(res.Flows[0].PktsDelivered))
		delayMs.Add(res.Flows[0].MeanDelay.Milliseconds())
	}
	return delivered, delayMs
}

// ciOverlap reports whether the two samples' CI95 intervals overlap.
func ciOverlap(a, b *stats.Welford) bool {
	d := a.Mean() - b.Mean()
	if d < 0 {
		d = -d
	}
	return d <= a.CI95()+b.CI95()
}

// TestPrunedMediumStatisticallyEquivalent is the pruning acceptance test:
// the default PruneSigma medium must be statistically indistinguishable
// from the exact (PruneSigma=0) medium. The two arms draw different RNG
// sample paths — pruning reorders and skips shadowing draws — so the
// comparison is distributional: seed-averaged delivery and delay with
// overlapping 95% confidence intervals.
func TestPrunedMediumStatisticallyEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed equivalence sweep")
	}
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	exactDel, exactDelay := pruneArm(t, 0, seeds)
	prunedDel, prunedDelay := pruneArm(t, radio.DefaultPruneSigma, seeds)
	if !ciOverlap(exactDel, prunedDel) {
		t.Errorf("delivered packets diverged: exact %.1f ±%.1f vs pruned %.1f ±%.1f",
			exactDel.Mean(), exactDel.CI95(), prunedDel.Mean(), prunedDel.CI95())
	}
	if !ciOverlap(exactDelay, prunedDelay) {
		t.Errorf("mean delay diverged: exact %.2fms ±%.2f vs pruned %.2fms ±%.2f",
			exactDelay.Mean(), exactDelay.CI95(), prunedDelay.Mean(), prunedDelay.CI95())
	}
}

// TestSeedFanoutDeterministicWithPooling pins the pooled event core's
// isolation: every run owns its engine and medium pools, so fanning seeds
// over 1 worker or many must fold to identical results.
func TestSeedFanoutDeterministicWithPooling(t *testing.T) {
	cfg := smokeConfig(0)
	cfg.Radio = radio.DefaultConfig() // default PruneSigma: pruning on
	cfg.Duration = 500 * sim.Millisecond
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	serialRuns, serialAvg, err := RunSeedsOn(pool.New(1), cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	wideRuns, wideAvg, err := RunSeedsOn(pool.New(8), cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialAvg, wideAvg) {
		t.Fatalf("averaged result differs across pool widths:\n1: %+v\n8: %+v", serialAvg, wideAvg)
	}
	for i := range serialRuns {
		if !reflect.DeepEqual(serialRuns[i], wideRuns[i]) {
			t.Fatalf("seed %d result differs across pool widths", seeds[i])
		}
	}
}
