package network

import (
	"reflect"
	"testing"

	"ripple/internal/campaign/pool"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// worldTestConfig exercises both snapshot halves: the radio link plan and
// an active routing spec (ETX table + per-flow Dijkstra).
func worldTestConfig() Config {
	top, path := topology.Line(4)
	return Config{
		Positions: top.Positions,
		Scheme:    Ripple,
		Flows: []FlowSpec{
			{ID: 1, Path: endpointPath(path.Src(), path.Dst()), Kind: FTP},
		},
		Routing:  RoutingSpec{Kind: RouteETX},
		Duration: 400 * sim.Millisecond,
	}
}

// endpointPath builds a two-endpoint path (route-policy configs declare
// endpoints; the concrete relays come from the policy).
func endpointPath(src, dst pkt.NodeID) routing.Path { return routing.Path{src, dst} }

func TestSharedWorldSeedRunsBitIdentical(t *testing.T) {
	cfg := worldTestConfig()
	seeds := []uint64{1, 2, 3, 4}

	// Per-run-built worlds, fully serial.
	perRun := make([]*Result, len(seeds))
	for i, s := range seeds {
		c := cfg
		c.Seed = s
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		perRun[i] = r
	}

	// One shared world across a wide pool.
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shared := cfg
	shared.World = w
	results, _, err := RunSeedsOn(pool.New(8), shared, seeds)
	if err != nil {
		t.Fatal(err)
	}

	for i := range seeds {
		if !reflect.DeepEqual(perRun[i], results[i]) {
			t.Fatalf("seed %d: shared-World result differs from per-run-built world:\n%+v\nvs\n%+v",
				seeds[i], perRun[i], results[i])
		}
	}
}

func TestRunSeedsPoolWidthInvariantWithSharedWorld(t *testing.T) {
	cfg := worldTestConfig()
	seeds := []uint64{5, 6, 7}
	narrow, _, err := RunSeedsOn(pool.New(1), cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	wide, _, err := RunSeedsOn(pool.New(len(seeds)), cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(narrow, wide) {
		t.Fatal("RunSeeds results depend on pool width")
	}
}

// TestSharedWorldRace hammers one World from many concurrent runs. Under
// -race this enforces the immutability contract: a single write to the
// shared plan, table or resolved routes from any run fails the test.
func TestSharedWorldRace(t *testing.T) {
	cfg := worldTestConfig()
	cfg.Duration = 150 * sim.Millisecond
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.World = w
	seeds := make([]uint64, 16)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	if _, _, err := RunSeedsOn(pool.New(8), cfg, seeds); err != nil {
		t.Fatal(err)
	}
}

func TestWorldCheckRejectsMismatch(t *testing.T) {
	cfg := worldTestConfig()
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}

	wrongTop := cfg
	wrongTop.World = w
	top, path := topology.Line(6)
	wrongTop.Positions = top.Positions
	wrongTop.Flows = []FlowSpec{{ID: 1, Path: path, Kind: FTP}}
	if _, err := Run(wrongTop); err == nil {
		t.Fatal("Run accepted a World built for a different topology")
	}

	wrongFlows := cfg
	wrongFlows.World = w
	extra := wrongFlows.Flows[0]
	extra.ID = 2
	wrongFlows.Flows = append([]FlowSpec{wrongFlows.Flows[0]}, extra)
	if _, err := Run(wrongFlows); err == nil {
		t.Fatal("Run accepted a World built for a different flow set")
	}
}

// TestSparseWorldTableMatchesDense pins the tentpole equivalence at the
// world level: the sparse table BuildWorld derives from a pruned link plan
// must agree with a dense all-pairs table built over the same radio model —
// on every link metric, every Dijkstra distance and every sampled route.
// Fig. 1 checks the small-world case (pruning active but nothing in range
// to prune); the 500-station city checks real pruning.
func TestSparseWorldTableMatchesDense(t *testing.T) {
	cityTop, _ := topology.CityN(500, 3)
	cases := []struct {
		name      string
		positions []radio.Pos
		rc        radio.Config
	}{
		{"fig1", topology.Fig1().Positions, radio.DefaultConfig()},
		{"city500", cityTop.Positions, topology.CityRadio()},
	}
	for _, tc := range cases {
		cfg := Config{Positions: tc.positions, Radio: tc.rc}
		plan := radio.NewLinkPlan(tc.rc, tc.positions)
		if !plan.Pruned() {
			t.Fatalf("%s: plan not pruned — case set up wrong", tc.name)
		}
		sparse := newLinkTable(&cfg, plan)
		if !sparse.Sparse() {
			t.Fatalf("%s: newLinkTable built a dense table from a pruned plan", tc.name)
		}
		prob := func(a, b pkt.NodeID) float64 {
			return 1 - tc.rc.LossProb(plan.Distance(int(a), int(b)))
		}
		n := plan.Stations()
		dense := routing.NewTable(n, prob, 0.1)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				de := dense.LinkETX(pkt.NodeID(a), pkt.NodeID(b))
				se := sparse.LinkETX(pkt.NodeID(a), pkt.NodeID(b))
				if de != se && !(de > 1e300 && se > 1e300) {
					t.Fatalf("%s: LinkETX(%d,%d): dense %g, sparse %g", tc.name, a, b, de, se)
				}
			}
		}
		for src := 0; src < n; src += 29 {
			dd := dense.Distances(pkt.NodeID(src), nil)
			sd := sparse.Distances(pkt.NodeID(src), nil)
			if !reflect.DeepEqual(dd, sd) {
				t.Fatalf("%s: Distances(%d) differ", tc.name, src)
			}
		}
		for src := 0; src < n; src += 83 {
			dst := (src + n/2) % n
			if src == dst {
				continue
			}
			dp, derr := dense.ShortestPath(pkt.NodeID(src), pkt.NodeID(dst))
			sp, serr := sparse.ShortestPath(pkt.NodeID(src), pkt.NodeID(dst))
			if (derr == nil) != (serr == nil) || !reflect.DeepEqual(dp, sp) {
				t.Fatalf("%s: route %d->%d: dense (%v, %v), sparse (%v, %v)",
					tc.name, src, dst, dp, derr, sp, serr)
			}
		}
	}
}

func TestBuildWorldReportsRouteErrors(t *testing.T) {
	cfg := worldTestConfig()
	// An isolated station far outside radio range makes the ETX route
	// unreachable.
	cfg.Positions = append([]radio.Pos(nil), cfg.Positions...)
	cfg.Positions[len(cfg.Positions)-1].X = 1e9
	if _, err := BuildWorld(cfg); err == nil {
		t.Fatal("BuildWorld must surface unreachable-route errors")
	}
}
