// Package network assembles a complete simulation run: topology positions,
// the radio medium, one forwarding-scheme agent per station, transports and
// traffic generators per flow, and result collection. It is the layer the
// experiment harness and the public API drive.
package network

import (
	"fmt"
	"os"
	"sync"

	"ripple/internal/audit"
	"ripple/internal/core"
	"ripple/internal/fault"
	"ripple/internal/forward"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/rateadapt"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/stats"
	"ripple/internal/traffic"
	"ripple/internal/transport"
)

// SchemeKind selects the forwarding scheme for a run, using the labels of
// the paper's figures.
type SchemeKind int

const (
	// DCF is predetermined routing over plain IEEE 802.11 ("D"; with a
	// direct route it is SPR, "S").
	DCF SchemeKind = iota + 1
	// AFR is predetermined routing with 16-packet aggregation ("A").
	AFR
	// PreExOR is the early ExOR with sequential per-forwarder ACKs.
	PreExOR
	// MCExOR is the compressed-acknowledgement opportunistic scheme.
	MCExOR
	// Ripple is RIPPLE with two-way aggregation ("R16").
	Ripple
	// RippleNoAgg is RIPPLE with aggregation disabled ("R1").
	RippleNoAgg
)

// String returns the paper's label for the scheme.
func (k SchemeKind) String() string {
	switch k {
	case DCF:
		return "DCF"
	case AFR:
		return "AFR"
	case PreExOR:
		return "preExOR"
	case MCExOR:
		return "MCExOR"
	case Ripple:
		return "RIPPLE"
	case RippleNoAgg:
		return "RIPPLE-noagg"
	default:
		return fmt.Sprintf("SchemeKind(%d)", int(k))
	}
}

// TrafficKind selects a flow's workload.
type TrafficKind int

const (
	// FTP is a long-lived, persistently backlogged TCP transfer.
	FTP TrafficKind = iota + 1
	// Web is the ON/OFF Pareto short-transfer TCP workload.
	Web
	// VoIPTraffic is the 96 kbps on-off voice stream.
	VoIPTraffic
	// CBRTraffic is a saturated constant-bit-rate datagram stream.
	CBRTraffic
)

// FlowSpec describes one flow of a scenario.
type FlowSpec struct {
	ID    int
	Path  routing.Path // source..destination; also the forwarder list
	Kind  TrafficKind
	Start sim.Time
	// CBRInterval overrides the CBR emission interval (0 = saturating).
	CBRInterval sim.Time
	// CBRPacketBytes overrides the CBR payload size (0 = Phy.PacketBytes).
	CBRPacketBytes int
	// TCP, VoIP and Web, when non-nil, override the scenario-wide model
	// configs for this flow only. Overrides are used as-is — callers must
	// supply complete configs (Normalize does not touch them).
	TCP  *transport.TCPConfig
	VoIP *transport.VoIPConfig
	Web  *traffic.WebConfig
}

// Config is a complete scenario description.
type Config struct {
	Positions     []radio.Pos
	Radio         radio.Config
	Phy           phys.Params
	Scheme        SchemeKind
	MaxForwarders int // cap on forwarder-list length (paper default 5)
	Flows         []FlowSpec
	Duration      sim.Time
	Seed          uint64
	TCP           transport.TCPConfig
	VoIP          transport.VoIPConfig
	Web           traffic.WebConfig
	RippleOpts    core.Options // used by Ripple/RippleNoAgg
	UnicastMaxAgg int          // aggregation for AFR (default 16)
	// Routing selects the route policy (see RoutingSpec). The zero value
	// keeps declared flow paths untouched.
	Routing RoutingSpec
	// Mobility makes the world time-varying (see MobilitySpec). The zero
	// value keeps every station parked at its declared position.
	Mobility MobilitySpec
	// Faults injects deterministic failures — station churn, link flaps,
	// noise bursts, an area partition (see fault.Spec). The zero value
	// injects nothing and leaves a run bit-identical to a fault-free one;
	// schedules draw from FaultSpec.Seed, never Config.Seed.
	Faults fault.Spec
	// MultiRate enables the paper's §V future-work extension: per-link PHY
	// rate selection.
	MultiRate MultiRateSpec
	// NodeMaxAgg overrides the aggregation limit for individual stations
	// (used by the two-way-aggregation ablation: setting a flow's
	// destination to 1 disables reverse-direction aggregation).
	NodeMaxAgg map[pkt.NodeID]int
	// RTSThreshold enables 802.11 RTS/CTS for the predetermined schemes
	// (DCF/AFR): data frames with MAC payload of at least this many bytes
	// are protected by an RTS/CTS handshake. 0 disables the option.
	RTSThreshold int
	// Trace, when non-nil, receives low-level medium events with their
	// simulation time (tests, debugging, trace.Recorder). When tracing a
	// multi-seed run, install it on a single-seed Run: seeds execute
	// concurrently and the hook is not synchronised.
	Trace func(at sim.Time, event string, node pkt.NodeID, f *pkt.Frame)
	// World, when non-nil, is the prebuilt seed-independent snapshot this
	// run executes on (see BuildWorld). It must have been built from a
	// Config whose non-seed fields equal this one's; RunSeeds and the
	// campaign engine set it automatically so all seed-runs of a scenario
	// share one snapshot. Nil makes Run build a private snapshot — the
	// results are bit-identical either way.
	World *World
	// Audit enables the deep invariant-audit plane (internal/audit): the
	// full catalogue — queue custody, queue bounds, crashed-station
	// custody, event-time monotonicity — is re-validated after every
	// engine event, panicking with a structured report on the first
	// violation. Expensive; meant for debugging and CI sweeps. The
	// RIPPLE_AUDIT environment variable (any non-empty value) enables it
	// process-wide without touching configs. The cheap conservation checks
	// (packet-pool accounting at drain) run regardless.
	Audit bool
}

// auditEnv reports whether RIPPLE_AUDIT enables deep auditing process-wide.
var auditEnv = sync.OnceValue(func() bool {
	return os.Getenv("RIPPLE_AUDIT") != ""
})

// RoutePolicyKind selects a built-in route policy.
type RoutePolicyKind int

const (
	// RouteStatic uses each flow's declared Path as given, never
	// recomputed — the pre-policy behaviour, and the default.
	RouteStatic RoutePolicyKind = iota
	// RouteETX recomputes minimum-ETX routes from the flow endpoints at
	// run start (De Couto et al.; what ExOR/MORE use).
	RouteETX
	// RouteCongestion is the ORCD-style congestion-diversity policy
	// (Bhorkar et al.): link ETX plus Alpha per queued packet at the relay,
	// recomputed every Epoch from live queue depths.
	RouteCongestion
	// RouteGeo is greedy geographic-progress forwarding (Li et al.) with
	// minimum-ETX void recovery; station positions come from the link plan,
	// so under mobility each epoch world rebuilds it over fresh geometry.
	RouteGeo
)

// String names the kind for sweep labels.
func (k RoutePolicyKind) String() string {
	switch k {
	case RouteStatic:
		return "static"
	case RouteETX:
		return "etx"
	case RouteCongestion:
		return "congestion"
	case RouteGeo:
		return "geo"
	default:
		return fmt.Sprintf("RoutePolicyKind(%d)", int(k))
	}
}

// DefaultRouteEpoch is the default recompute interval of dynamic route
// policies: long enough for queues to reflect sustained load rather than a
// single aggregation burst, short enough to re-route several times within
// the paper's 10 s runs.
const DefaultRouteEpoch = 500 * sim.Millisecond

// routeSamplesPerEpoch is how many queue-depth samples feed each epoch's
// congestion measure; the mean over the epoch stands in for ORCD's
// time-averaged backlog.
const routeSamplesPerEpoch = 16

// RoutingSpec selects the route policy of a run. The zero value is
// RouteStatic: flows keep their declared paths and nothing is recomputed,
// preserving pre-policy behaviour bit for bit.
type RoutingSpec struct {
	Kind RoutePolicyKind
	// Alpha is the congestion-diversity backlog weight in ETX units per
	// queued packet (0 selects routing.DefaultCongestionAlpha).
	Alpha float64
	// Epoch is the recompute interval for dynamic policies
	// (0 selects DefaultRouteEpoch).
	Epoch sim.Time
	// K, when positive, forces every route to carry exactly min(K,
	// available) intermediate relays — truncating by Rule, padding with
	// off-route ETX-progress stations. 0 leaves routes unsized. With
	// RouteStatic the declared paths are sized in place, without
	// recomputation.
	K int
	// Rule orders relays when K truncates (default routing.SizeSpaced).
	Rule routing.SizingRule
	// Policy, when non-nil, overrides Kind with a custom routing.Policy
	// (the K/Rule sizing wrapper still applies).
	Policy routing.Policy
}

// active reports whether the spec changes routing at all.
func (s RoutingSpec) active() bool {
	return s.Kind != RouteStatic || s.Policy != nil || s.K > 0
}

// needsPolicy reports whether the spec resolves to a routing.Policy
// (RouteStatic with K sizes declared paths in place, without one).
func (s RoutingSpec) needsPolicy() bool {
	return s.Kind != RouteStatic || s.Policy != nil
}

// build resolves the spec into a routing.Policy over the run's link table
// and station positions (the positions feed geographic forwarding; other
// kinds ignore them).
func (s RoutingSpec) build(t *routing.Table, pos []radio.Pos) (routing.Policy, error) {
	pol := s.Policy
	if pol == nil {
		switch s.Kind {
		case RouteStatic:
			// Static means "declared paths, never recomputed" — Run sizes
			// those in place without a policy; resolving one here would
			// silently break that contract.
			return nil, fmt.Errorf("network: RouteStatic does not resolve to a policy")
		case RouteETX:
			pol = routing.NewETXPolicy(t)
		case RouteCongestion:
			pol = routing.NewCongestionPolicy(t, s.Alpha)
		case RouteGeo:
			pol = routing.NewGeoPolicy(t, pos)
		default:
			return nil, fmt.Errorf("network: unknown route policy kind %d", int(s.Kind))
		}
	}
	if s.K > 0 {
		pol = routing.Sized(pol, t, s.K, s.Rule)
	}
	return pol, nil
}

// MultiRateSpec configures the multi-rate extension.
type MultiRateSpec struct {
	Enabled bool
	// Rates is the available rate ladder; empty selects Set80211a for
	// low-rate configurations and SetWideband above 100 Mbps.
	Rates rateadapt.RateSet
	// MinProb is the oracle's delivery-probability target (default 0.9).
	MinProb float64
}

// Normalize fills zero-valued fields with paper defaults.
func (c *Config) Normalize() {
	if c.MaxForwarders == 0 {
		c.MaxForwarders = 5
	}
	if c.Duration == 0 {
		c.Duration = 10 * sim.Second
	}
	if c.TCP.MSS == 0 {
		c.TCP = transport.DefaultTCPConfig()
	}
	if c.VoIP.BitsPerSecond == 0 {
		c.VoIP = transport.DefaultVoIPConfig()
	}
	if c.Web.MeanTransferBytes == 0 {
		c.Web = traffic.DefaultWebConfig()
	}
	if c.RippleOpts.MaxAgg == 0 {
		c.RippleOpts = core.DefaultOptions()
	}
	if c.UnicastMaxAgg == 0 {
		c.UnicastMaxAgg = 16
	}
	if c.Phy.SIFS == 0 {
		c.Phy = phys.Default()
	}
	if c.Radio.PathLossExp == 0 {
		c.Radio = radio.DefaultConfig()
	}
}

// FlowResult summarises one flow after a run.
type FlowResult struct {
	ID             int
	Kind           TrafficKind
	ThroughputMbps float64
	MeanDelay      sim.Time
	ReorderRate    float64
	PktsDelivered  int64
	Transfers      int64
	MoS            float64 // VoIP flows only
	LossRate       float64 // VoIP flows only
	// Unreachable counts packets this flow dropped at the source because
	// its destination was cut off by faults (always 0 without fault
	// injection).
	Unreachable int64
}

// Result is a completed run. A Result produced by Average carries the
// per-seed mean of every field (integer counters rounded to the nearest
// integer); one produced by Run carries that single run's exact counts.
type Result struct {
	Flows     []FlowResult
	TotalMbps float64
	Medium    radio.Counters
	MAC       forward.Counters
	// Events is the number of simulation events processed; PendingAtEnd is
	// the number still queued when the clock ran out (0 means the network
	// went fully quiescent, which for backlogged traffic indicates a stall).
	Events       uint64
	PendingAtEnd int
	Duration     sim.Time
	// Fairness is Jain's index over the per-flow throughputs.
	Fairness float64
	// RouteStale counts epoch boundaries at which a flow kept a stale
	// route because its dynamic recompute failed (motion disconnected the
	// endpoints); Unreachable counts packets dropped because the
	// destination was cut off by faults (mirrors MAC.Unreachable). Both
	// are 0 for static fault-free runs.
	RouteStale  uint64
	Unreachable uint64
	// PoolInUse is the packet pool's outstanding count at end of run —
	// packets legitimately parked in interface queues plus anything
	// leaked. Bounded by total queue capacity in a healthy run; station
	// crashes must release custody rather than inflate it.
	PoolInUse int
}

// endpointKey routes delivered packets to the right transport endpoint.
type endpointKey struct {
	flow int
	node pkt.NodeID
}

type receiver interface {
	Receive(at pkt.NodeID, p *pkt.Packet)
}

// Run executes one scenario to completion and returns its results. When
// cfg.World is set, the run executes on that shared snapshot (reading it
// only); otherwise it builds a private one. Either way the results are
// bit-identical for a given Config.
func Run(cfg Config) (*Result, error) {
	cfg.Normalize()
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	world := cfg.World
	if world == nil {
		w, err := BuildWorld(cfg)
		if err != nil {
			return nil, err
		}
		world = w
	} else if err := world.check(&cfg); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	medium := radio.NewMediumOn(eng, world.plan, cfg.Phy, sim.NewRNG(cfg.Seed, 1))
	medium.Trace = cfg.Trace

	// The RouteBook is per-run mutable state (dynamic policies rewrite it
	// each epoch); it starts from the World's resolved initial routes. The
	// policy instance is likewise rebuilt per run over the shared,
	// read-only link table.
	routes := forward.NewRouteBook(cfg.MaxForwarders)
	var policy routing.Policy
	if cfg.Routing.active() && cfg.Routing.needsPolicy() {
		pol, err := cfg.Routing.build(world.table, world.plan.Positions())
		if err != nil {
			return nil, err
		}
		policy = pol
	}
	for i, f := range cfg.Flows {
		routes.Add(f.ID, world.routes[i])
	}
	if world.faults != nil {
		// Graceful degradation: consecutive delivery failures to a forwarder
		// blacklist it until the next epoch's route update.
		routes.EnableFailureDetection(world.faults.Threshold())
	}

	var rateOracle *rateadapt.OracleSelector
	if cfg.MultiRate.Enabled {
		rates := cfg.MultiRate.Rates
		if len(rates) == 0 {
			if cfg.Phy.DataBps > 100e6 {
				rates = rateadapt.SetWideband()
			} else {
				rates = rateadapt.Set80211a()
			}
		}
		rateOracle = rateadapt.NewOracle(rates, cfg.Phy.DataBps)
		if cfg.Radio.ShadowSigmaDB > 0 {
			rateOracle.SigmaDB = cfg.Radio.ShadowSigmaDB
		}
		if cfg.MultiRate.MinProb > 0 {
			rateOracle.MinProb = cfg.MultiRate.MinProb
		}
	}

	// Deep audit: attach an auditor and re-validate the invariant
	// catalogue after every engine event. aud stays nil when off — every
	// hook nil-checks, so the fast path pays only predictable branches.
	var aud *audit.Auditor
	if cfg.Audit || auditEnv() {
		aud = audit.New()
		eng.SetCheck(func() { aud.Event(int64(eng.Now())) })
	}

	endpoints := make(map[endpointKey]receiver)
	counters := make([]forward.Counters, len(cfg.Positions))
	schemes := make([]forward.Scheme, len(cfg.Positions))
	for i := range cfg.Positions {
		id := pkt.NodeID(i)
		env := forward.Env{
			Eng:    eng,
			Med:    medium,
			P:      cfg.Phy,
			ID:     id,
			RNG:    sim.NewRNG(cfg.Seed, 100+uint64(i)),
			Routes: routes,
			C:      &counters[i],
			Audit:  aud,
		}
		if rateOracle != nil {
			env.RateFor = func(to pkt.NodeID) float64 {
				return rateOracle.Rate(1 - cfg.Radio.LossProb(medium.Distance(id, to)))
			}
		}
		env.Deliver = func(p *pkt.Packet) {
			if ep, ok := endpoints[endpointKey{flow: p.FlowID, node: id}]; ok {
				p.MarkDelivered()
				ep.Receive(id, p)
			}
		}
		schemes[i] = newScheme(cfg, env)
		medium.Attach(id, schemes[i])
	}

	var routeStale uint64
	if len(world.epochs) > 0 {
		// Epoch-world swaps: at each boundary the medium adopts the epoch's
		// link plan (in-flight receptions keep their precomputed attributes;
		// later transmissions see the new geometry), the policy is rebuilt
		// over the epoch's table and positions, and flow routes take the
		// epoch's precomputed resolution. Everything runs inside the engine's
		// single-threaded event loop, so results are bit-identical at any
		// pool parallelism. This block precedes the dynamic re-route tick on
		// purpose: events at equal timestamps fire in scheduling order, so at
		// a shared boundary the re-route already sees the new world.
		next := 0
		// With faults active, routes must be refreshed every epoch even under
		// static routing: the epoch worlds carry crash-masked paths, and the
		// Update also resets forwarder blacklists and consecutive-failure
		// streaks ("blacklisted until the next epoch").
		routeUpdates := cfg.Routing.active() || world.faults != nil
		var swap func()
		swap = func() {
			ew := world.epochs[next]
			medium.SetPlan(ew.plan)
			if policy != nil {
				if pol, err := cfg.Routing.build(ew.table, ew.plan.Positions()); err == nil {
					policy = pol
				}
			}
			if routeUpdates {
				for i, f := range cfg.Flows {
					routes.Update(f.ID, ew.routes[i])
				}
			}
			if ew.stale != nil || ew.unreach != nil {
				now := eng.Now()
				for i, f := range cfg.Flows {
					if ew.stale != nil && ew.stale[i] {
						// No silent fallback: a kept stale route is counted
						// and traced every epoch it persists.
						routeStale++
						if cfg.Trace != nil {
							cfg.Trace(now, "route-stale", f.Path.Src(), &pkt.Frame{
								Kind: pkt.Data, FlowID: f.ID,
								Tx: f.Path.Src(), Origin: f.Path.Src(),
								Rx: f.Path.Dst(), FinalDst: f.Path.Dst(),
							})
						}
					}
					if ew.unreach != nil {
						un := ew.unreach[i]
						if un != routes.Unreachable(f.ID) {
							routes.SetUnreachable(f.ID, un)
							if un && cfg.Trace != nil {
								cfg.Trace(now, "unreachable", f.Path.Src(), &pkt.Frame{
									Kind: pkt.Data, FlowID: f.ID,
									Tx: f.Path.Src(), Origin: f.Path.Src(),
									Rx: f.Path.Dst(), FinalDst: f.Path.Dst(),
								})
							}
						}
					}
				}
			}
			next++
			if next < len(world.epochs) {
				eng.After(world.epochLen, swap)
			}
		}
		eng.After(world.epochLen, swap)
	}

	if policy != nil && policy.Dynamic() {
		// Re-route from observed queue depths every epoch. An instantaneous
		// sample at the epoch boundary mostly sees drained queues (the MAC
		// empties in bursts), so the congestion measure is the mean depth
		// over several samples per epoch — the time-averaged backlog ORCD's
		// analysis uses. Everything runs inside the engine's event loop
		// (single-threaded, deterministic order), so results are
		// bit-identical at any pool parallelism. A flow whose recompute
		// fails under the current backlog keeps its previous route —
		// transient congestion must not kill the flow.
		epoch := cfg.Routing.Epoch
		if epoch <= 0 {
			epoch = DefaultRouteEpoch
		}
		interval := epoch / routeSamplesPerEpoch
		if interval <= 0 {
			interval = 1
		}
		depthSum := make([]int, len(schemes))
		sampled := 0
		var sample func()
		sample = func() {
			for i, s := range schemes {
				depthSum[i] += s.QueueLen()
			}
			sampled++
			eng.After(interval, sample)
		}
		eng.After(interval, sample)
		backlog := func(n pkt.NodeID) int {
			if sampled == 0 {
				return schemes[n].QueueLen()
			}
			return depthSum[n] / sampled
		}
		var reroute func()
		reroute = func() {
			for _, f := range cfg.Flows {
				p, err := policy.Route(f.Path.Src(), f.Path.Dst(), backlog)
				if err == nil {
					routes.Update(f.ID, p)
				}
			}
			for i := range depthSum {
				depthSum[i] = 0
			}
			sampled = 0
			eng.After(epoch, reroute)
		}
		eng.After(epoch, reroute)
	}

	if fs := world.faults; fs != nil {
		// In-engine fault events: crashes and recoveries flip the medium's
		// down mask and the scheme's state at their scheduled instants; noise
		// bursts accumulate per-station SNR penalties. Link flaps and the
		// partition have no events — the medium consults the schedule's
		// time-indexed query per transmission. Everything runs inside the
		// engine's single-threaded loop, so results stay bit-identical at any
		// pool parallelism.
		if fs.BlocksLinks() {
			medium.SetLinkBlocked(func(tx, rx pkt.NodeID) bool {
				return fs.LinkBlockedAt(tx, rx, eng.Now())
			})
		}
		noiseNow := make([]float64, len(cfg.Positions))
		bursts := fs.Bursts()
		for _, ev := range fs.Events() {
			if ev.At >= cfg.Duration {
				continue
			}
			switch ev.Kind {
			case fault.StationDown:
				id := ev.Station
				eng.At(ev.At, func() {
					medium.SetDown(id, true)
					schemes[id].Crash()
					aud.StationDown(int(id))
					if cfg.Trace != nil {
						cfg.Trace(eng.Now(), "station-down", id, &pkt.Frame{Tx: id, Origin: id})
					}
				})
			case fault.StationUp:
				id := ev.Station
				eng.At(ev.At, func() {
					medium.SetDown(id, false)
					schemes[id].Recover()
					aud.StationUp(int(id))
					if cfg.Trace != nil {
						cfg.Trace(eng.Now(), "station-up", id, &pkt.Frame{Tx: id, Origin: id})
					}
				})
			case fault.NoiseOn, fault.NoiseOff:
				b := bursts[ev.Burst]
				delta := b.PenaltyDB
				if ev.Kind == fault.NoiseOff {
					delta = -delta
				}
				eng.At(ev.At, func() {
					for _, id := range b.Covered {
						noiseNow[id] += delta
						medium.SetNoiseDB(id, noiseNow[id])
					}
				})
			}
		}
	}

	// One packet pool per run: transports draw from it, and the MAC layer
	// recycles packets at their terminal delivery/drop points, so the
	// steady-state packet path allocates nothing.
	pktPool := &pkt.Pool{}
	flowStats := make([]*stats.Flow, len(cfg.Flows))
	for i, f := range cfg.Flows {
		fs := &stats.Flow{ID: f.ID}
		flowStats[i] = fs
		src, dst := f.Path.Src(), f.Path.Dst()
		sendSrc := schemes[src].Send
		sendDst := schemes[dst].Send
		switch f.Kind {
		case FTP, Web:
			tcpCfg := cfg.TCP
			if f.TCP != nil {
				tcpCfg = *f.TCP
			}
			conn := transport.NewTCP(eng, tcpCfg, f.ID, src, dst, sendSrc, sendDst, fs)
			conn.SetPool(pktPool)
			endpoints[endpointKey{f.ID, src}] = conn
			endpoints[endpointKey{f.ID, dst}] = conn
			if f.Kind == FTP {
				start := f.Start
				eng.At(start, conn.Start)
			} else {
				webCfg := cfg.Web
				if f.Web != nil {
					webCfg = *f.Web
				}
				web := traffic.NewWeb(eng, webCfg, conn, tcpCfg.MSS, sim.NewRNG(cfg.Seed, 10000+uint64(f.ID)))
				eng.At(f.Start, web.Start)
			}
		case VoIPTraffic:
			voipCfg := cfg.VoIP
			if f.VoIP != nil {
				voipCfg = *f.VoIP
			}
			v := transport.NewVoIP(eng, voipCfg, f.ID, src, dst, sendSrc, fs,
				sim.NewRNG(cfg.Seed, 10000+uint64(f.ID)))
			v.SetPool(pktPool)
			endpoints[endpointKey{f.ID, dst}] = v
			eng.At(f.Start, v.Start)
		case CBRTraffic:
			// CBRInterval zero selects backlogged (saturating) mode.
			bytes := cfg.Phy.PacketBytes
			if f.CBRPacketBytes > 0 {
				bytes = f.CBRPacketBytes
			}
			c := transport.NewCBR(eng, f.ID, src, dst, bytes, f.CBRInterval, sendSrc, fs)
			c.SetPool(pktPool)
			endpoints[endpointKey{f.ID, dst}] = c
			eng.At(f.Start, c.Start)
		default:
			return nil, fmt.Errorf("network: flow %d has unknown traffic kind %d", f.ID, f.Kind)
		}
	}

	eng.Run(cfg.Duration)

	// End-of-run audit: the deep catalogue once more at quiescence, and
	// the always-on packet conservation identity — every allocation must
	// be delivered, dropped, or still held by a live reference.
	aud.AtDrain()
	gets, delivered, dropped := pktPool.Counters()
	audit.CheckPoolConservation(gets, delivered, dropped, pktPool.InUse())

	res := &Result{Duration: cfg.Duration, Events: eng.Processed(),
		PendingAtEnd: eng.Pending(), Medium: medium.Counters}
	for i := range counters {
		res.MAC = addCounters(res.MAC, counters[i])
	}
	res.RouteStale = routeStale
	res.Unreachable = res.MAC.Unreachable
	res.PoolInUse = pktPool.InUse()
	tputs := make([]float64, 0, len(cfg.Flows))
	for i, f := range cfg.Flows {
		fs := flowStats[i]
		fr := FlowResult{
			ID:             f.ID,
			Kind:           f.Kind,
			ThroughputMbps: fs.ThroughputMbps(cfg.Duration),
			MeanDelay:      fs.MeanDelay(),
			ReorderRate:    fs.ReorderRate(),
			PktsDelivered:  fs.PktsDelivered,
			Transfers:      fs.TransfersCompleted,
			Unreachable:    routes.UnreachableDrops(f.ID),
		}
		if f.Kind == VoIPTraffic {
			fr.LossRate = fs.VoIPLossRate()
			fr.MoS = stats.MoSFrom(fs.MeanDelay().Milliseconds(), fr.LossRate)
		}
		res.TotalMbps += fr.ThroughputMbps
		res.Flows = append(res.Flows, fr)
		tputs = append(tputs, fr.ThroughputMbps)
	}
	res.Fairness = stats.JainIndex(tputs)
	return res, nil
}

func validate(cfg *Config) error {
	if len(cfg.Positions) == 0 {
		return fmt.Errorf("network: no station positions")
	}
	if len(cfg.Flows) == 0 {
		return fmt.Errorf("network: no flows")
	}
	switch cfg.Mobility.Kind {
	case MobilityStatic, MobilityWaypoint, MobilityMarkov:
	default:
		return fmt.Errorf("network: unknown mobility kind %d", int(cfg.Mobility.Kind))
	}
	seen := make(map[int]bool, len(cfg.Flows))
	for _, f := range cfg.Flows {
		if err := f.Path.Validate(); err != nil {
			return fmt.Errorf("network: flow %d: %w", f.ID, err)
		}
		if seen[f.ID] {
			return fmt.Errorf("network: duplicate flow id %d", f.ID)
		}
		seen[f.ID] = true
		for _, n := range f.Path {
			if int(n) < 0 || int(n) >= len(cfg.Positions) {
				return fmt.Errorf("network: flow %d references station %d outside topology", f.ID, n)
			}
		}
	}
	return nil
}

func newScheme(cfg Config, env forward.Env) forward.Scheme {
	switch cfg.Scheme {
	case DCF:
		return forward.NewUnicastRTS(env, 1, cfg.RTSThreshold)
	case AFR:
		agg := cfg.UnicastMaxAgg
		if v, ok := cfg.NodeMaxAgg[env.ID]; ok {
			agg = v
		}
		return forward.NewUnicastRTS(env, agg, cfg.RTSThreshold)
	case PreExOR:
		return forward.NewPreExOR(env)
	case MCExOR:
		return forward.NewMCExOR(env)
	case Ripple:
		opt := cfg.RippleOpts
		if v, ok := cfg.NodeMaxAgg[env.ID]; ok {
			opt.MaxAgg = v
		}
		return core.New(env, opt)
	case RippleNoAgg:
		opt := cfg.RippleOpts
		opt.MaxAgg = 1
		return core.New(env, opt)
	default:
		// validate() runs first; reaching this is a programming error.
		panic(fmt.Sprintf("network: unknown scheme %d", int(cfg.Scheme)))
	}
}

func addCounters(a, b forward.Counters) forward.Counters {
	a.TxFrames += b.TxFrames
	a.TxData += b.TxData
	a.TxPackets += b.TxPackets
	a.RxData += b.RxData
	a.AckTimeouts += b.AckTimeouts
	a.Retries += b.Retries
	a.MACDrops += b.MACDrops
	a.QueueDrops += b.QueueDrops
	a.Relays += b.Relays
	a.RelayCancels += b.RelayCancels
	a.Duplicates += b.Duplicates
	a.Unreachable += b.Unreachable
	a.CrashDrops += b.CrashDrops
	return a
}
