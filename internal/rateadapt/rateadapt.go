// Package rateadapt implements the multi-rate PHY extension the paper
// names as future work (§V: "extend it to take advantage of multiple PHY
// data rates"). A transmitter may pick any rate from a rate set; faster
// rates need a higher SNR, which the radio model expresses as a decode
// threshold raised by SensitivityDB·log10(rate/base) dB — calibrated
// against 802.11a receiver sensitivities (6 Mbps at −82 dBm to 54 Mbps at
// −65 dBm, ≈17.8 dB over a 9× rate span).
package rateadapt

import (
	"math"
	"sort"
)

// SensitivityDB is the decode-threshold penalty per decade of rate
// increase: Δthresh = SensitivityDB · log10(rate/base). 802.11a's 17.8 dB
// over log10(9) ≈ 0.954 decades gives ≈18.7 dB/decade.
const SensitivityDB = 18.7

// ThresholdDeltaDB returns how many dB the decode threshold rises when
// transmitting at `rate` instead of `base`. Negative for slower rates:
// dropping below the base rate extends range.
func ThresholdDeltaDB(rate, base float64) float64 {
	if rate <= 0 || base <= 0 {
		return 0
	}
	return SensitivityDB * math.Log10(rate/base)
}

// RateSet is the menu of PHY data rates available to a transmitter,
// ascending.
type RateSet []float64

// Set80211a returns the 802.11a/g OFDM rates.
func Set80211a() RateSet {
	return RateSet{6e6, 9e6, 12e6, 18e6, 24e6, 36e6, 48e6, 54e6}
}

// SetWideband returns the paper's 216 Mbps configuration scaled across the
// 802.11a ladder (×4, as 4 spatial streams would provide).
func SetWideband() RateSet {
	base := Set80211a()
	out := make(RateSet, len(base))
	for i, r := range base {
		out[i] = r * 4
	}
	return out
}

// Validate reports whether the set is non-empty and ascending.
func (s RateSet) Validate() bool {
	if len(s) == 0 {
		return false
	}
	return sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] })
}

// Selector picks a transmission rate for a link.
type Selector interface {
	// Rate returns the PHY rate to use toward a receiver whose frame
	// delivery probability at the base rate is baseProb (from the radio
	// model's analytic link quality).
	Rate(baseProb float64) float64
}

// OracleSelector picks the fastest rate whose predicted delivery
// probability stays at or above MinProb, using the threshold-shift model:
// raising the threshold by Δ dB is equivalent to scaling the link margin,
// so the predicted probability at rate r is Φ(z − Δ(r)/σ) where z is the
// base-rate margin in standard deviations.
type OracleSelector struct {
	Rates   RateSet
	BaseBps float64
	SigmaDB float64
	MinProb float64
}

// NewOracle returns a selector over the given set with the paper's 8 dB
// shadowing deviation and a 90% target delivery probability.
func NewOracle(rates RateSet, baseBps float64) *OracleSelector {
	return &OracleSelector{Rates: rates, BaseBps: baseBps, SigmaDB: 8, MinProb: 0.9}
}

// Rate implements Selector.
func (o *OracleSelector) Rate(baseProb float64) float64 {
	if len(o.Rates) == 0 {
		return o.BaseBps
	}
	best := o.Rates[0]
	z := probToMargin(baseProb)
	for _, r := range o.Rates {
		delta := ThresholdDeltaDB(r, o.BaseBps)
		p := marginToProb(z - delta/o.SigmaDB)
		if p >= o.MinProb {
			best = r
		}
	}
	return best
}

// probToMargin inverts Φ: the link margin in standard deviations that
// yields delivery probability p.
func probToMargin(p float64) float64 {
	if p <= 0 {
		return -8
	}
	if p >= 1 {
		return 8
	}
	// Newton iteration on Φ(z) − p, starting from a rational approximation.
	z := 0.0
	for i := 0; i < 40; i++ {
		f := marginToProb(z) - p
		d := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
		if d < 1e-12 {
			break
		}
		z -= f / d
	}
	return z
}

// marginToProb is Φ(z).
func marginToProb(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// ARF implements Auto Rate Fallback per receiver: step the rate up after
// UpAfter consecutive successes, down after DownAfter consecutive
// failures. It is the classic adaptive comparator to the oracle.
type ARF struct {
	Rates     RateSet
	UpAfter   int
	DownAfter int

	idx       int
	successes int
	failures  int
}

// NewARF starts at the lowest rate with the classic 10-up/2-down policy.
func NewARF(rates RateSet) *ARF {
	return &ARF{Rates: rates, UpAfter: 10, DownAfter: 2}
}

// Current returns the rate in use.
func (a *ARF) Current() float64 {
	if len(a.Rates) == 0 {
		return 0
	}
	return a.Rates[a.idx]
}

// OnSuccess records an acknowledged transmission.
func (a *ARF) OnSuccess() {
	a.failures = 0
	a.successes++
	if a.successes >= a.UpAfter && a.idx < len(a.Rates)-1 {
		a.idx++
		a.successes = 0
	}
}

// OnFailure records a failed transmission.
func (a *ARF) OnFailure() {
	a.successes = 0
	a.failures++
	if a.failures >= a.DownAfter && a.idx > 0 {
		a.idx--
		a.failures = 0
	}
}
