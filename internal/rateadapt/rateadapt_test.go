package rateadapt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThresholdDeltaAnchors(t *testing.T) {
	// Same rate: no shift.
	if got := ThresholdDeltaDB(54e6, 54e6); got != 0 {
		t.Fatalf("delta(54,54) = %v", got)
	}
	// 54 vs 6 Mbps: ≈17.8 dB (the 802.11a sensitivity span).
	got := ThresholdDeltaDB(54e6, 6e6)
	if math.Abs(got-17.8) > 0.3 {
		t.Fatalf("delta(54,6) = %.2f dB, want ≈17.8", got)
	}
	// Slower than base extends range (negative delta).
	if ThresholdDeltaDB(6e6, 54e6) >= 0 {
		t.Fatal("downshift must lower the threshold")
	}
}

func TestRateSets(t *testing.T) {
	a := Set80211a()
	if len(a) != 8 || a[0] != 6e6 || a[7] != 54e6 {
		t.Fatalf("Set80211a = %v", a)
	}
	w := SetWideband()
	if w[7] != 216e6 {
		t.Fatalf("SetWideband top = %v, want 216e6 (Table I)", w[7])
	}
	if !a.Validate() || !w.Validate() {
		t.Fatal("standard sets must validate")
	}
	if (RateSet{}).Validate() {
		t.Fatal("empty set must not validate")
	}
	if (RateSet{2, 1}).Validate() {
		t.Fatal("descending set must not validate")
	}
}

func TestOracleStrongLinkPicksTopRate(t *testing.T) {
	o := NewOracle(Set80211a(), 6e6)
	if got := o.Rate(0.9999); got != 54e6 {
		t.Fatalf("near-perfect link rate = %v, want 54e6", got)
	}
}

func TestOracleWeakLinkStaysLow(t *testing.T) {
	o := NewOracle(Set80211a(), 6e6)
	if got := o.Rate(0.5); got != 6e6 {
		t.Fatalf("marginal link rate = %v, want base 6e6", got)
	}
}

func TestOracleMonotoneInQuality(t *testing.T) {
	o := NewOracle(Set80211a(), 6e6)
	prev := 0.0
	for p := 0.3; p <= 0.999; p += 0.01 {
		r := o.Rate(p)
		if r < prev {
			t.Fatalf("rate decreased with link quality at p=%.2f", p)
		}
		prev = r
	}
}

func TestOracleRespectsMinProb(t *testing.T) {
	// With a stricter target the chosen rate can only drop.
	loose := NewOracle(Set80211a(), 6e6)
	strict := NewOracle(Set80211a(), 6e6)
	strict.MinProb = 0.99
	for _, p := range []float64{0.8, 0.9, 0.97, 0.999} {
		if strict.Rate(p) > loose.Rate(p) {
			t.Fatalf("stricter target picked faster rate at p=%v", p)
		}
	}
}

func TestProbMarginRoundTrip(t *testing.T) {
	prop := func(raw uint16) bool {
		p := 0.02 + 0.96*float64(raw)/65535
		z := probToMargin(p)
		return math.Abs(marginToProb(z)-p) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestARFStepsUpAfterSuccesses(t *testing.T) {
	a := NewARF(Set80211a())
	if a.Current() != 6e6 {
		t.Fatalf("ARF must start at the lowest rate, got %v", a.Current())
	}
	for i := 0; i < 10; i++ {
		a.OnSuccess()
	}
	if a.Current() != 9e6 {
		t.Fatalf("after 10 successes rate = %v, want 9e6", a.Current())
	}
}

func TestARFStepsDownAfterFailures(t *testing.T) {
	a := NewARF(Set80211a())
	for i := 0; i < 30; i++ {
		a.OnSuccess()
	}
	was := a.Current()
	a.OnFailure()
	a.OnFailure()
	if a.Current() >= was {
		t.Fatalf("two failures must step down from %v, got %v", was, a.Current())
	}
}

func TestARFBoundedAtExtremes(t *testing.T) {
	a := NewARF(Set80211a())
	for i := 0; i < 500; i++ {
		a.OnSuccess()
	}
	if a.Current() != 54e6 {
		t.Fatalf("ARF must cap at top rate, got %v", a.Current())
	}
	for i := 0; i < 500; i++ {
		a.OnFailure()
	}
	if a.Current() != 6e6 {
		t.Fatalf("ARF must floor at bottom rate, got %v", a.Current())
	}
}

func TestARFFailureResetsSuccessStreak(t *testing.T) {
	a := NewARF(Set80211a())
	for i := 0; i < 9; i++ {
		a.OnSuccess()
	}
	a.OnFailure()
	a.OnSuccess()
	if a.Current() != 6e6 {
		t.Fatal("failure must reset the success streak")
	}
}
