package routing

import (
	"math"
	"slices"
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/sim"
)

// probFromDist is a synthetic symmetric link model: smoothly decaying in
// distance, 0 beyond the candidate radius.
func probFromDist(d float64) float64 {
	return math.Exp(-d / 150)
}

// candGraph enumerates, for the given positions, every pair within radius
// in ascending ID order with its distance — a stand-in for the radio
// plan's EachAscNeighbor.
func candGraph(pos []radio.Pos, radius float64) func(a pkt.NodeID, yield func(b int32, d float64)) {
	return func(a pkt.NodeID, yield func(b int32, d float64)) {
		for b := range pos {
			if pkt.NodeID(b) == a {
				continue
			}
			if d := radio.Dist(pos[a], pos[b]); d <= radius {
				yield(int32(b), d)
			}
		}
	}
}

// symFromScratch is the reference: NewSparseTableSym over the candidate
// graph with the same link model.
func symFromScratch(pos []radio.Pos, radius float64) *Table {
	cands := candGraph(pos, radius)
	return NewSparseTableSym(len(pos), func(a pkt.NodeID, yield func(b int32, p float64)) {
		cands(a, func(b int32, d float64) { yield(b, probFromDist(d)) })
	}, 0.1)
}

func tablesEqual(t *testing.T, want, got *Table) {
	t.Helper()
	if want.n != got.n || want.sparse != got.sparse {
		t.Fatalf("table headers differ")
	}
	if !slices.Equal(want.off, got.off) {
		t.Fatal("row offsets differ")
	}
	if !slices.Equal(want.adjID, got.adjID) {
		t.Fatal("adjacency IDs differ")
	}
	if !slices.Equal(want.adjETX, got.adjETX) {
		t.Fatal("adjacency ETX values differ")
	}
	if !slices.Equal(want.adjProb, got.adjProb) {
		t.Fatal("adjacency probabilities differ")
	}
}

// TestRebuildSparseTableSymMatchesFromScratch is the bit-equivalence
// property of the epoch table rebuild, across several motion fractions
// and epochs of random motion.
func TestRebuildSparseTableSymMatchesFromScratch(t *testing.T) {
	const (
		n      = 250
		side   = 1500.0
		radius = 400.0
	)
	for _, frac := range []float64{0.03, 0.3, 1.0} {
		rng := sim.NewRNG(17, uint64(frac*100))
		pos := make([]radio.Pos, n)
		for i := range pos {
			pos[i] = radio.Pos{X: rng.Float64() * side, Y: rng.Float64() * side}
		}
		prev := symFromScratch(pos, radius)
		for epoch := 0; epoch < 6; epoch++ {
			moved := make([]bool, n)
			next := append([]radio.Pos(nil), pos...)
			for i := range next {
				if rng.Float64() < frac {
					moved[i] = true
					next[i] = radio.Pos{X: rng.Float64() * side, Y: rng.Float64() * side}
				}
			}
			// unchanged mirrors radio.LinkPlan.RowEqual: an unmoved station
			// whose candidate row no mover was in (before or after) has an
			// identical row in both graphs.
			unchanged := make([]bool, n)
			for a := range unchanged {
				if moved[a] {
					continue
				}
				ok := true
				for b := 0; b < n && ok; b++ {
					if b == a || !moved[b] {
						continue
					}
					if radio.Dist(pos[a], pos[b]) <= radius || radio.Dist(next[a], next[b]) <= radius {
						ok = false
					}
				}
				unchanged[a] = ok
			}
			got := RebuildSparseTableSym(prev, moved, unchanged, candGraph(next, radius), probFromDist, 0.1)
			want := symFromScratch(next, radius)
			tablesEqual(t, want, got)
			// And the patched table must route identically, not just store
			// identical links.
			for _, dst := range []pkt.NodeID{pkt.NodeID(n - 1), pkt.NodeID(n / 2)} {
				pw, errW := want.ShortestPath(0, dst)
				pg, errG := got.ShortestPath(0, dst)
				if (errW == nil) != (errG == nil) || !slices.Equal(pw, pg) {
					t.Fatalf("frac %g epoch %d: routes diverge: %v/%v vs %v/%v", frac, epoch, pw, errW, pg, errG)
				}
			}
			prev, pos = got, next
		}
	}
}

// TestRebuildSparseTableKeepsPrevIntact guards immutability of the
// predecessor epoch's table while its successor is derived.
func TestRebuildSparseTableKeepsPrevIntact(t *testing.T) {
	const n = 80
	rng := sim.NewRNG(3, 3)
	pos := make([]radio.Pos, n)
	for i := range pos {
		pos[i] = radio.Pos{X: rng.Float64() * 800, Y: rng.Float64() * 800}
	}
	prev := symFromScratch(pos, 300)
	snapshot := symFromScratch(pos, 300)
	moved := make([]bool, n)
	next := append([]radio.Pos(nil), pos...)
	for i := 0; i < n; i += 3 {
		moved[i] = true
		next[i] = radio.Pos{X: rng.Float64() * 800, Y: rng.Float64() * 800}
	}
	RebuildSparseTableSym(prev, moved, nil, candGraph(next, 300), probFromDist, 0.1)
	tablesEqual(t, snapshot, prev)
}
