package routing

import (
	"fmt"
	"math"
	"sort"

	"ripple/internal/pkt"
)

// BacklogFunc reports the current MAC send-queue depth (packets, including
// any in-service batch) at a station. Dynamic policies fold it into their
// route metric; a nil BacklogFunc means "no load information yet" and
// policies fall back to their unloaded metric.
type BacklogFunc func(pkt.NodeID) int

// Policy computes a flow's route: the source..destination node sequence
// that predetermined schemes walk hop-by-hop and opportunistic schemes use
// as the prioritised forwarder list. The route-discovery metric is the
// paper's one explicitly orthogonal axis ("RIPPLE can easily incorporate
// any forwarder selection schemes", §III-B1); Policy is the seam that makes
// it swappable.
type Policy interface {
	// Name labels the policy in sweep axes and results.
	Name() string
	// Route computes the path from src to dst under the current backlog
	// (nil when no load information is available).
	Route(src, dst pkt.NodeID, backlog BacklogFunc) (Path, error)
	// Dynamic reports whether the metric depends on backlog, i.e. whether
	// routes are worth recomputing while the run is in flight.
	Dynamic() bool
}

// ETXPolicy is the classic static policy: minimum summed ETX over the link
// table (De Couto et al., MobiCom 2003), the metric ExOR and MORE use.
type ETXPolicy struct {
	t *Table
}

// NewETXPolicy wraps a link table as the minimum-ETX route policy.
func NewETXPolicy(t *Table) *ETXPolicy { return &ETXPolicy{t: t} }

// Name implements Policy.
func (p *ETXPolicy) Name() string { return "etx" }

// Dynamic implements Policy: ETX ignores load.
func (p *ETXPolicy) Dynamic() bool { return false }

// Route implements Policy.
func (p *ETXPolicy) Route(src, dst pkt.NodeID, _ BacklogFunc) (Path, error) {
	return p.t.ShortestPath(src, dst)
}

// Table exposes the policy's link table (for wrappers and diagnostics).
func (p *ETXPolicy) Table() *Table { return p.t }

// DefaultCongestionAlpha is the default backlog weight of the
// congestion-diversity policy, in ETX units per queued packet. At 0.25 a
// relay sitting on four queued packets looks one extra transmission worse —
// enough to divert traffic onto an idle detour of similar length without
// letting a transient queue blip overrule a genuinely shorter route.
const DefaultCongestionAlpha = 0.25

// CongestionPolicy routes around queue buildup, after Bhorkar et al.'s
// opportunistic routing with congestion diversity (ORCD): the cost of
// entering a relay is its link ETX plus Alpha times the relay's current
// backlog, so persistent queues repel routes while loss still dominates on
// an unloaded network. Entering the destination never pays a backlog
// penalty — its queue holds traffic it originates, not traffic it must
// still forward.
type CongestionPolicy struct {
	t *Table
	// Alpha is the backlog weight in ETX units per queued packet
	// (DefaultCongestionAlpha when constructed with alpha <= 0).
	Alpha float64
}

// NewCongestionPolicy builds the congestion-diversity policy over a link
// table; alpha <= 0 selects DefaultCongestionAlpha.
func NewCongestionPolicy(t *Table, alpha float64) *CongestionPolicy {
	if alpha <= 0 {
		alpha = DefaultCongestionAlpha
	}
	return &CongestionPolicy{t: t, Alpha: alpha}
}

// Name implements Policy.
func (p *CongestionPolicy) Name() string { return "congestion" }

// Dynamic implements Policy: routes follow the queues.
func (p *CongestionPolicy) Dynamic() bool { return true }

// Route implements Policy.
func (p *CongestionPolicy) Route(src, dst pkt.NodeID, backlog BacklogFunc) (Path, error) {
	return p.t.ShortestPathCost(src, dst, p.cost(dst, backlog))
}

// PathCost returns the policy's metric for a given path under a backlog:
// the summed link ETX plus Alpha per queued packet at every traversed relay
// (endpoints excluded). It is the quantity Route minimises, exposed for
// tests and diagnostics.
func (p *CongestionPolicy) PathCost(path Path, backlog BacklogFunc) float64 {
	if len(path) < 2 {
		return 0
	}
	cost := p.cost(path.Dst(), backlog)
	var sum float64
	for i := 0; i+1 < len(path); i++ {
		etx := p.t.LinkETX(path[i], path[i+1])
		if math.IsInf(etx, 1) {
			return math.Inf(1)
		}
		sum += cost(path[i], path[i+1], etx)
	}
	return sum
}

func (p *CongestionPolicy) cost(dst pkt.NodeID, backlog BacklogFunc) LinkCostFunc {
	return func(_, v pkt.NodeID, etx float64) float64 {
		if backlog == nil || v == dst {
			return etx
		}
		return etx + p.Alpha*float64(backlog(v))
	}
}

// SizingRule selects which relays survive when a forwarder-candidate set is
// resized to K (Blomer & Jindal, "How many relays should there be?": the
// candidate-set size materially changes opportunistic gains).
type SizingRule int

const (
	// SizeSpaced keeps evenly spaced relays along the route (the paper's
	// Remark 4 convention, matching Path.Limit). The default.
	SizeSpaced SizingRule = iota
	// SizeNearDst keeps the K relays closest to the destination by ETX:
	// late diversity, long first hop.
	SizeNearDst
	// SizeNearSrc keeps the K relays closest to the source by ETX: early
	// diversity, long last hop.
	SizeNearSrc
)

// String names the rule for sweep labels.
func (r SizingRule) String() string {
	switch r {
	case SizeSpaced:
		return "spaced"
	case SizeNearDst:
		return "neardst"
	case SizeNearSrc:
		return "nearsrc"
	default:
		return fmt.Sprintf("SizingRule(%d)", int(r))
	}
}

// SizedPolicy wraps another policy and forces its routes to carry exactly
// min(K, available) intermediate relays: longer candidate sets are
// truncated by the sizing rule, shorter ones are padded with off-route
// stations that make ETX progress toward the destination (each inserted
// relay must have usable links to its new neighbours, so padded paths stay
// walkable hop-by-hop for predetermined schemes too). K counts relays
// between the endpoints, excluding both.
type SizedPolicy struct {
	inner Policy
	t     *Table
	// K is the target number of intermediate relays.
	K int
	// Rule orders relays when truncating.
	Rule SizingRule
}

// Sized wraps a policy with the K-relay sizing rule over the given table.
// K <= 0 keeps endpoints only (a direct route attempt).
func Sized(inner Policy, t *Table, k int, rule SizingRule) *SizedPolicy {
	return &SizedPolicy{inner: inner, t: t, K: k, Rule: rule}
}

// Name implements Policy, e.g. "etx+k3" or "congestion+k2/neardst".
func (p *SizedPolicy) Name() string {
	name := fmt.Sprintf("%s+k%d", p.inner.Name(), p.K)
	if p.Rule != SizeSpaced {
		name += "/" + p.Rule.String()
	}
	return name
}

// Dynamic implements Policy, deferring to the wrapped policy.
func (p *SizedPolicy) Dynamic() bool { return p.inner.Dynamic() }

// Route implements Policy: the inner route resized to K relays.
func (p *SizedPolicy) Route(src, dst pkt.NodeID, backlog BacklogFunc) (Path, error) {
	base, err := p.inner.Route(src, dst, backlog)
	if err != nil {
		return nil, err
	}
	return Resize(p.t, base, p.K, p.Rule), nil
}

// Resize forces a path to carry exactly min(k, available) intermediate
// relays over the given link table: truncating by rule, padding with
// off-route ETX-progress stations. It is the sizing step of SizedPolicy,
// exposed so hand-declared routes can be sized without recomputation.
func Resize(t *Table, base Path, k int, rule SizingRule) Path {
	if k < 0 {
		k = 0
	}
	s := sizer{t: t, k: k, rule: rule}
	switch interior := len(base) - 2; {
	case interior == k:
		return base
	case interior > k:
		return s.truncate(base)
	default:
		return s.pad(base)
	}
}

// sizer carries the resize parameters.
type sizer struct {
	t    *Table
	k    int
	rule SizingRule
}

// truncate keeps k interior relays of a longer path, by rule.
func (p sizer) truncate(base Path) Path {
	k := p.k
	if p.rule == SizeSpaced {
		return base.Limit(k)
	}
	// The interior is ordered src-side first; ETX distance to an endpoint
	// is monotone along a shortest path, so "nearest the destination" is a
	// suffix and "nearest the source" a prefix of the interior.
	out := make(Path, 0, k+2)
	out = append(out, base[0])
	switch p.rule {
	case SizeNearDst:
		out = append(out, base[len(base)-1-k:len(base)-1]...)
	case SizeNearSrc:
		out = append(out, base[1:1+k]...)
	}
	return append(out, base[len(base)-1])
}

// pad inserts off-route relays until the path carries k interior relays or
// no usable candidate remains. Candidates must make strict ETX progress
// (closer to the destination than the source is, closer to the source than
// the destination is) and are tried cheapest detour first; each is spliced
// where its distance-to-destination fits, provided both new adjacent links
// are usable.
func (p sizer) pad(base Path) Path {
	k := p.k
	src, dst := base.Src(), base.Dst()
	fromSrc := p.t.Distances(src, nil)
	toDst := p.t.Distances(dst, nil) // ETX is symmetric: dist from dst = dist to dst
	type candidate struct {
		node   pkt.NodeID
		detour float64
	}
	var cands []candidate
	for v := 0; v < p.t.Stations(); v++ {
		id := pkt.NodeID(v)
		if base.Contains(id) {
			continue
		}
		if math.IsInf(fromSrc[v], 1) || math.IsInf(toDst[v], 1) {
			continue
		}
		if toDst[v] >= toDst[src] || fromSrc[v] >= fromSrc[dst] {
			continue
		}
		cands = append(cands, candidate{node: id, detour: fromSrc[v] + toDst[v]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].detour != cands[j].detour {
			return cands[i].detour < cands[j].detour
		}
		return cands[i].node < cands[j].node
	})
	out := append(Path(nil), base...)
	for _, c := range cands {
		if len(out)-2 >= k {
			break
		}
		// Splice before the first node at least as close to dst as the
		// candidate, keeping the list sorted by decreasing remaining ETX.
		at := len(out) - 1
		for i := 1; i < len(out); i++ {
			if toDst[out[i]] <= toDst[c.node] {
				at = i
				break
			}
		}
		if math.IsInf(p.t.LinkETX(out[at-1], c.node), 1) ||
			math.IsInf(p.t.LinkETX(c.node, out[at]), 1) {
			continue
		}
		out = append(out, 0)
		copy(out[at+1:], out[at:])
		out[at] = c.node
	}
	return out
}
