package routing

// Table II of the paper: the three predetermined route sets used with the
// Fig. 1 topology. Flows are indexed 1-3 as in the paper.

// RouteSet is one row of Table II: a route per flow.
type RouteSet struct {
	Name  string
	Flow1 Path // source 0, destination 3
	Flow2 Path // source 0, destination 4
	Flow3 Path // source 5, destination 7
}

// Route0 is ROUTE0: flow 1 via 1,2; flow 2 via 1,2; flow 3 via 6,1.
func Route0() RouteSet {
	return RouteSet{
		Name:  "ROUTE0",
		Flow1: Path{0, 1, 2, 3},
		Flow2: Path{0, 1, 2, 4},
		Flow3: Path{5, 6, 1, 7},
	}
}

// Route1 is ROUTE1: two-hop variants.
func Route1() RouteSet {
	return RouteSet{
		Name:  "ROUTE1",
		Flow1: Path{0, 1, 3},
		Flow2: Path{0, 1, 4},
		Flow3: Path{5, 6, 7},
	}
}

// Route2 is ROUTE2: routes through station 2 (and 5→1→7 for flow 3).
func Route2() RouteSet {
	return RouteSet{
		Name:  "ROUTE2",
		Flow1: Path{0, 2, 3},
		Flow2: Path{0, 2, 4},
		Flow3: Path{5, 1, 7},
	}
}

// RouteSets returns all Table II route sets in paper order.
func RouteSets() []RouteSet {
	return []RouteSet{Route0(), Route1(), Route2()}
}

// Flows returns the set's paths in flow order 1..3.
func (r RouteSet) Flows() []Path { return []Path{r.Flow1, r.Flow2, r.Flow3} }
