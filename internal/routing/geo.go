package routing

import (
	"math"

	"ripple/internal/pkt"
	"ripple/internal/radio"
)

// GeoPolicy selects forwarders by greedy geographic progress (Li et al.,
// Geographical and Topology Control based Opportunistic Routing): from
// each hop, the next relay is the usable neighbor geographically closest
// to the destination, provided it makes strict progress. Under mobility
// this is the position-aware policy family the epoch-world machinery
// exists for — it needs no global recomputation when stations move, only
// fresh positions, and network rebuilds it each epoch over that epoch's
// table and geometry.
//
// Greedy forwarding stalls in a "void" (a local minimum whose neighbors
// all sit further from the destination). Recovery follows the survey's
// hybrid convention: splice the minimum-ETX path from the stall point,
// or — if the splice would revisit a node already on the greedy prefix —
// abandon greed and return the plain ETX shortest path. A destination
// unreachable over usable links therefore errors exactly when ETX
// routing errors (ErrNoRoute).
type GeoPolicy struct {
	t *Table
	// pos is indexed by station ID; read-only (it aliases the link plan's
	// immutable positions).
	pos []radio.Pos
}

// NewGeoPolicy wraps a link table and the matching station positions as
// the greedy geographic-progress policy. len(pos) must cover every
// station of the table.
func NewGeoPolicy(t *Table, pos []radio.Pos) *GeoPolicy {
	return &GeoPolicy{t: t, pos: pos}
}

// Name implements Policy.
func (p *GeoPolicy) Name() string { return "geo" }

// Dynamic implements Policy: positions change per epoch world, not per
// backlog sample, so in-run recomputation buys nothing.
func (p *GeoPolicy) Dynamic() bool { return false }

// Table exposes the policy's link table (for wrappers and diagnostics).
func (p *GeoPolicy) Table() *Table { return p.t }

// Route implements Policy.
func (p *GeoPolicy) Route(src, dst pkt.NodeID, _ BacklogFunc) (Path, error) {
	path := Path{src}
	target := p.pos[dst]
	cur := src
	for cur != dst {
		bestD := radio.Dist(p.pos[cur], target)
		best := pkt.NodeID(-1)
		p.t.EachNeighbor(cur, func(v pkt.NodeID, _ float64) {
			// Strict progress with a strict < keeps termination trivial
			// (distance-to-dst decreases every hop) and breaks exact ties
			// toward the lowest ID, which EachNeighbor visits first.
			if d := radio.Dist(p.pos[v], target); d < bestD {
				bestD, best = d, v
			}
		})
		if best < 0 {
			return p.recover(path, cur, dst)
		}
		cur = best
		path = append(path, cur)
	}
	return path, nil
}

// recover handles a greedy stall at cur: splice the ETX shortest path to
// dst onto the greedy prefix, falling back to the plain ETX route from
// src when the splice would revisit a prefix node.
func (p *GeoPolicy) recover(prefix Path, cur, dst pkt.NodeID) (Path, error) {
	rest, err := p.t.ShortestPath(cur, dst)
	if err != nil {
		// Greedy only walks usable links, so cur shares src's component
		// and an unreachable dst is unreachable from src too.
		return nil, err
	}
	out := append(append(Path(nil), prefix...), rest[1:]...)
	if out.Validate() == nil {
		return out, nil
	}
	return p.t.ShortestPath(prefix.Src(), dst)
}

// EachNeighbor calls yield for every usable neighbor of a in ascending ID
// order with the link's ETX. The dense layout scans its row skipping
// unusable pairs; the sparse layout walks its adjacency row. Policies use
// it for local forwarder selection without caring which layout backs the
// table.
func (t *Table) EachNeighbor(a pkt.NodeID, yield func(b pkt.NodeID, etx float64)) {
	if t.sparse {
		for s := int(t.off[a]); s < int(t.off[a+1]); s++ {
			yield(pkt.NodeID(t.adjID[s]), t.adjETX[s])
		}
		return
	}
	row := t.etx[int(a)*t.n : (int(a)+1)*t.n]
	for b, etx := range row {
		if pkt.NodeID(b) == a || math.IsInf(etx, 1) {
			continue
		}
		yield(pkt.NodeID(b), etx)
	}
}
