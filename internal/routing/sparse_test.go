package routing

import (
	"errors"
	"math"
	"sort"
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// sparseWorld builds a 500-station jittered grid plus one unreachable
// outlier, with a distance-driven link probability and the matching
// candidate neighbor graph — the same shape a pruned radio link plan
// feeds NewSparseTable, without importing the radio package.
//
// The probability ramp hits the 0.1 minProb floor at 220 m and the
// candidate radius is 230 m, so the candidate graph strictly contains the
// usable link set (like geometric pruning, which cuts at the carrier-sense
// power, far below the usable-link threshold). Jitter stays at ±20 m so
// adjacent grid stations (≤194 m apart) always remain usable: the grid
// component is connected by construction.
func sparseWorld() (n int, prob LinkProbFunc, neighbors NeighborsFunc, outlier pkt.NodeID) {
	const rows, cols, spacing, jitter = 20, 25, 150.0, 20.0
	n = rows*cols + 1
	outlier = pkt.NodeID(n - 1)
	type xy struct{ x, y float64 }
	pos := make([]xy, 0, n)
	rng := sim.NewRNG(23, 5)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos = append(pos, xy{
				x: float64(c)*spacing + (rng.Float64()*2-1)*jitter,
				y: float64(r)*spacing + (rng.Float64()*2-1)*jitter,
			})
		}
	}
	pos = append(pos, xy{x: 1e6, y: 1e6}) // the outlier: no usable links
	dist := func(a, b pkt.NodeID) float64 {
		dx, dy := pos[a].x-pos[b].x, pos[a].y-pos[b].y
		return math.Sqrt(dx*dx + dy*dy)
	}
	prob = func(a, b pkt.NodeID) float64 {
		p := 1.2 - dist(a, b)/200 // ≥0.1 ⇔ within 220 m
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	adj := make([][]int32, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && dist(pkt.NodeID(a), pkt.NodeID(b)) <= 230 {
				adj[a] = append(adj[a], int32(b))
			}
		}
		sort.Slice(adj[a], func(i, j int) bool { return adj[a][i] < adj[a][j] })
	}
	neighbors = func(a pkt.NodeID) []int32 { return adj[a] }
	return n, prob, neighbors, outlier
}

// TestSparseTableMatchesDense proves the two layouts are the same table:
// identical link metrics on every pair, identical Dijkstra distances from
// every source (covering every source/destination pair), and identical
// paths — bit for bit, since both relax usable neighbors in ascending ID
// order.
func TestSparseTableMatchesDense(t *testing.T) {
	n, prob, neighbors, _ := sparseWorld()
	dense := NewTable(n, prob, 0.1)
	sparse := NewSparseTable(n, neighbors, prob, 0.1)
	if !sparse.Sparse() || dense.Sparse() {
		t.Fatal("layout flags wrong")
	}
	if sparse.Links() == 0 {
		t.Fatal("sparse table kept no links")
	}

	usable := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			de := dense.LinkETX(pkt.NodeID(a), pkt.NodeID(b))
			se := sparse.LinkETX(pkt.NodeID(a), pkt.NodeID(b))
			if de != se && !(math.IsInf(de, 1) && math.IsInf(se, 1)) {
				t.Fatalf("LinkETX(%d,%d): dense %g, sparse %g", a, b, de, se)
			}
			if !math.IsInf(de, 1) && a != b {
				usable++
				if dense.LinkProb(pkt.NodeID(a), pkt.NodeID(b)) != sparse.LinkProb(pkt.NodeID(a), pkt.NodeID(b)) {
					t.Fatalf("LinkProb(%d,%d) differs on a usable link", a, b)
				}
			}
		}
	}
	if usable != sparse.Links() {
		t.Fatalf("dense has %d usable links, sparse stores %d", usable, sparse.Links())
	}

	for src := 0; src < n; src++ {
		dd := dense.Distances(pkt.NodeID(src), nil)
		sd := sparse.Distances(pkt.NodeID(src), nil)
		for dst := range dd {
			if dd[dst] != sd[dst] && !(math.IsInf(dd[dst], 1) && math.IsInf(sd[dst], 1)) {
				t.Fatalf("Distances(%d)[%d]: dense %g, sparse %g", src, dst, dd[dst], sd[dst])
			}
		}
	}

	// Paths, including under a custom link cost (the congestion-policy
	// shape: a per-relay surcharge).
	cost := func(u, v pkt.NodeID, etx float64) float64 { return etx + 0.01*float64(v%7) }
	for src := 0; src < n-1; src += 37 {
		for dst := 1; dst < n-1; dst += 41 {
			if src == dst {
				continue
			}
			dp, derr := dense.ShortestPath(pkt.NodeID(src), pkt.NodeID(dst))
			sp, serr := sparse.ShortestPath(pkt.NodeID(src), pkt.NodeID(dst))
			if (derr == nil) != (serr == nil) {
				t.Fatalf("path %d->%d: dense err %v, sparse err %v", src, dst, derr, serr)
			}
			if !samePath(dp, sp) {
				t.Fatalf("path %d->%d: dense %v, sparse %v", src, dst, dp, sp)
			}
			dp, _ = dense.ShortestPathCost(pkt.NodeID(src), pkt.NodeID(dst), cost)
			sp, _ = sparse.ShortestPathCost(pkt.NodeID(src), pkt.NodeID(dst), cost)
			if !samePath(dp, sp) {
				t.Fatalf("cost path %d->%d: dense %v, sparse %v", src, dst, dp, sp)
			}
		}
	}
}

func samePath(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSparseTableNoRoute pins the unreachable-station contract: both
// layouts report the ErrNoRoute sentinel and +Inf distance for the
// outlier, in both directions.
func TestSparseTableNoRoute(t *testing.T) {
	n, prob, neighbors, outlier := sparseWorld()
	for _, tab := range []*Table{
		NewTable(n, prob, 0.1),
		NewSparseTable(n, neighbors, prob, 0.1),
	} {
		if _, err := tab.ShortestPath(0, outlier); !errors.Is(err, ErrNoRoute) {
			t.Fatalf("sparse=%v: ShortestPath(0, outlier) err = %v, want ErrNoRoute", tab.Sparse(), err)
		}
		if _, err := tab.ShortestPath(outlier, 0); !errors.Is(err, ErrNoRoute) {
			t.Fatalf("sparse=%v: reverse err not ErrNoRoute", tab.Sparse())
		}
		if d := tab.Distances(0, nil); !math.IsInf(d[outlier], 1) {
			t.Fatalf("sparse=%v: outlier distance %g, want +Inf", tab.Sparse(), d[outlier])
		}
	}
}
