package routing

import (
	"ripple/internal/pkt"
)

// NeighborsFunc returns the candidate neighbor station IDs of a, in
// ascending order. The returned slice is only read during the call, so
// implementations may alias internal storage (radio.LinkPlan.AscNeighbors
// does). Station IDs use int32 to match the link plan's CSR storage and
// avoid a per-row conversion copy on city-scale graphs.
type NeighborsFunc func(a pkt.NodeID) []int32

// NewSparseTable builds the link table over a candidate neighbor graph
// instead of probing all N² ordered pairs: only pairs the neighbor
// function offers are evaluated, and only usable links (both directions at
// or above minProb) are stored, so construction time and memory are
// O(N·k) in the average candidate degree k.
//
// A pair absent from the candidate graph is treated as unusable (ETX
// +Inf), exactly as the dense NewTable treats sub-minProb pairs. When the
// candidate graph comes from a pruned radio link plan this is not an
// approximation but an identity: a pruned pair's mean power is at least
// PruneSigma shadowing deviations below the carrier-sense threshold, so
// its delivery probability is far below any sensible minProb and the
// dense table would exclude it too — the two layouts then hold exactly
// the same usable link set and route identically (see Table.dijkstra).
//
// The candidate graph must be symmetric (b listed for a ⇔ a listed for
// b), which geometric neighbor pruning guarantees; the reverse
// probability of an offered pair is always evaluated directly.
func NewSparseTable(n int, neighbors NeighborsFunc, prob LinkProbFunc, minProb float64) *Table {
	t := &Table{n: n, sparse: true, off: make([]int64, n+1)}
	// Usable degree is typically far below candidate degree (decode range
	// vs pruning range), so rows grow by append instead of reserving the
	// full candidate count.
	for a := 0; a < n; a++ {
		na := pkt.NodeID(a)
		for _, j := range neighbors(na) {
			if int(j) == a {
				continue
			}
			nb := pkt.NodeID(j)
			df := prob(na, nb)
			dr := prob(nb, na)
			if df < minProb || dr < minProb {
				continue
			}
			t.adjID = append(t.adjID, j)
			t.adjETX = append(t.adjETX, ETX(df, dr))
			t.adjProb = append(t.adjProb, df)
		}
		t.off[a+1] = int64(len(t.adjID))
	}
	return t
}

// NewSparseTableSym is NewSparseTable for symmetric link models, where the
// forward and reverse delivery probabilities of every pair are equal (true
// of any model that is a pure function of distance, like the radio
// package's analytic shadowing model). links must call yield for each
// candidate neighbor of a in ascending ID order with the link probability;
// each link probability is evaluated once instead of the generic
// constructor's four (df and dr from both row ends) — on city-scale worlds
// that is most of the table build. The stored values are identical to
// NewSparseTable's with prob(a,b) == prob(b,a): ETX(p, p) == 1/(p·p) bit
// for bit.
func NewSparseTableSym(n int, links func(a pkt.NodeID, yield func(b int32, p float64)), minProb float64) *Table {
	t := &Table{n: n, sparse: true, off: make([]int64, n+1)}
	for a := 0; a < n; a++ {
		links(pkt.NodeID(a), func(b int32, p float64) {
			if int(b) == a || p < minProb {
				return
			}
			t.adjID = append(t.adjID, b)
			t.adjETX = append(t.adjETX, ETX(p, p))
			t.adjProb = append(t.adjProb, p)
		})
		t.off[a+1] = int64(len(t.adjID))
	}
	return t
}

// RebuildSparseTableSym derives the sparse symmetric table of a changed
// world from its predecessor — the epoch step of a time-varying world.
// moved flags the stations whose position changed since prev was built;
// links must enumerate the NEW candidate graph (ascending ID order, link
// distance attached, e.g. the rebuilt radio plan's EachAscNeighbor), and
// prob maps a distance to the symmetric delivery probability.
//
// unchanged (optional, nil for none) flags stations whose candidate row —
// neighbor set and distances — is identical in the old and new graphs
// (radio.LinkPlan.RowEqual); their table rows are copied outright without
// enumerating the graph at all, which on a high-stay world is nearly all
// of them. Rows of the remaining unmoved stations are patched: an unmoved
// pair's distance — hence probability, ETX and minProb verdict — is
// unchanged, so its stored values are copied from prev and only pairs
// with a moved endpoint pay a probability evaluation. The result is
// exactly NewSparseTableSym over the new graph, bit for bit (the rebuild
// equivalence test enforces it); prev is read-only throughout, so runs
// still executing on the previous epoch are undisturbed.
func RebuildSparseTableSym(prev *Table, moved, unchanged []bool, links func(a pkt.NodeID, yield func(b int32, d float64)), prob func(d float64) float64, minProb float64) *Table {
	if !prev.sparse {
		panic("routing: RebuildSparseTableSym needs a sparse predecessor")
	}
	n := prev.n
	t := &Table{n: n, sparse: true, off: make([]int64, n+1)}
	t.adjID = make([]int32, 0, len(prev.adjID)+64)
	t.adjETX = make([]float64, 0, len(prev.adjID)+64)
	t.adjProb = make([]float64, 0, len(prev.adjID)+64)
	for a := 0; a < n; a++ {
		if unchanged != nil && unchanged[a] && !moved[a] {
			lo, hi := prev.off[a], prev.off[a+1]
			t.adjID = append(t.adjID, prev.adjID[lo:hi]...)
			t.adjETX = append(t.adjETX, prev.adjETX[lo:hi]...)
			t.adjProb = append(t.adjProb, prev.adjProb[lo:hi]...)
			t.off[a+1] = int64(len(t.adjID))
			continue
		}
		if moved[a] {
			// Every pair of a moved row changed distance: full recompute.
			links(pkt.NodeID(a), func(b int32, d float64) {
				if int(b) == a {
					return
				}
				p := prob(d)
				if p < minProb {
					return
				}
				t.adjID = append(t.adjID, b)
				t.adjETX = append(t.adjETX, ETX(p, p))
				t.adjProb = append(t.adjProb, p)
			})
			t.off[a+1] = int64(len(t.adjID))
			continue
		}
		// Unmoved row: lockstep walk. prev's row and the new candidate
		// stream are both ascending, and an unmoved pair offered now was
		// offered before (same geometry), so "stored in prev" already
		// encodes the minProb verdict — no probability evaluation needed.
		k, hi := int(prev.off[a]), int(prev.off[a+1])
		links(pkt.NodeID(a), func(b int32, d float64) {
			if int(b) == a {
				return
			}
			if moved[b] {
				p := prob(d)
				if p < minProb {
					return
				}
				t.adjID = append(t.adjID, b)
				t.adjETX = append(t.adjETX, ETX(p, p))
				t.adjProb = append(t.adjProb, p)
				return
			}
			for k < hi && prev.adjID[k] < b {
				k++
			}
			if k < hi && prev.adjID[k] == b {
				t.adjID = append(t.adjID, b)
				t.adjETX = append(t.adjETX, prev.adjETX[k])
				t.adjProb = append(t.adjProb, prev.adjProb[k])
				k++
			}
		})
		t.off[a+1] = int64(len(t.adjID))
	}
	return t
}

// Links returns the number of usable directed links the table stores
// (sparse layout only; 0 for dense tables, which store all pairs).
func (t *Table) Links() int { return len(t.adjID) }

// Sparse reports whether the table uses the adjacency-list layout.
func (t *Table) Sparse() bool { return t.sparse }
