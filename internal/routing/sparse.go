package routing

import (
	"ripple/internal/pkt"
)

// NeighborsFunc returns the candidate neighbor station IDs of a, in
// ascending order. The returned slice is only read during the call, so
// implementations may alias internal storage (radio.LinkPlan.AscNeighbors
// does). Station IDs use int32 to match the link plan's CSR storage and
// avoid a per-row conversion copy on city-scale graphs.
type NeighborsFunc func(a pkt.NodeID) []int32

// NewSparseTable builds the link table over a candidate neighbor graph
// instead of probing all N² ordered pairs: only pairs the neighbor
// function offers are evaluated, and only usable links (both directions at
// or above minProb) are stored, so construction time and memory are
// O(N·k) in the average candidate degree k.
//
// A pair absent from the candidate graph is treated as unusable (ETX
// +Inf), exactly as the dense NewTable treats sub-minProb pairs. When the
// candidate graph comes from a pruned radio link plan this is not an
// approximation but an identity: a pruned pair's mean power is at least
// PruneSigma shadowing deviations below the carrier-sense threshold, so
// its delivery probability is far below any sensible minProb and the
// dense table would exclude it too — the two layouts then hold exactly
// the same usable link set and route identically (see Table.dijkstra).
//
// The candidate graph must be symmetric (b listed for a ⇔ a listed for
// b), which geometric neighbor pruning guarantees; the reverse
// probability of an offered pair is always evaluated directly.
func NewSparseTable(n int, neighbors NeighborsFunc, prob LinkProbFunc, minProb float64) *Table {
	t := &Table{n: n, sparse: true, off: make([]int64, n+1)}
	// Usable degree is typically far below candidate degree (decode range
	// vs pruning range), so rows grow by append instead of reserving the
	// full candidate count.
	for a := 0; a < n; a++ {
		na := pkt.NodeID(a)
		for _, j := range neighbors(na) {
			if int(j) == a {
				continue
			}
			nb := pkt.NodeID(j)
			df := prob(na, nb)
			dr := prob(nb, na)
			if df < minProb || dr < minProb {
				continue
			}
			t.adjID = append(t.adjID, j)
			t.adjETX = append(t.adjETX, ETX(df, dr))
			t.adjProb = append(t.adjProb, df)
		}
		t.off[a+1] = int64(len(t.adjID))
	}
	return t
}

// NewSparseTableSym is NewSparseTable for symmetric link models, where the
// forward and reverse delivery probabilities of every pair are equal (true
// of any model that is a pure function of distance, like the radio
// package's analytic shadowing model). links must call yield for each
// candidate neighbor of a in ascending ID order with the link probability;
// each link probability is evaluated once instead of the generic
// constructor's four (df and dr from both row ends) — on city-scale worlds
// that is most of the table build. The stored values are identical to
// NewSparseTable's with prob(a,b) == prob(b,a): ETX(p, p) == 1/(p·p) bit
// for bit.
func NewSparseTableSym(n int, links func(a pkt.NodeID, yield func(b int32, p float64)), minProb float64) *Table {
	t := &Table{n: n, sparse: true, off: make([]int64, n+1)}
	for a := 0; a < n; a++ {
		links(pkt.NodeID(a), func(b int32, p float64) {
			if int(b) == a || p < minProb {
				return
			}
			t.adjID = append(t.adjID, b)
			t.adjETX = append(t.adjETX, ETX(p, p))
			t.adjProb = append(t.adjProb, p)
		})
		t.off[a+1] = int64(len(t.adjID))
	}
	return t
}

// Links returns the number of usable directed links the table stores
// (sparse layout only; 0 for dense tables, which store all pairs).
func (t *Table) Links() int { return len(t.adjID) }

// Sparse reports whether the table uses the adjacency-list layout.
func (t *Table) Sparse() bool { return t.sparse }
