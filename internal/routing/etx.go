package routing

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"ripple/internal/pkt"
)

// ErrNoRoute is the sentinel wrapped by every path computation that fails
// because the destination is unreachable over usable links. Callers that
// must distinguish "no route exists" from configuration errors test with
// errors.Is(err, ErrNoRoute).
var ErrNoRoute = errors.New("no route")

// LinkProbFunc returns the one-way frame delivery probability of the
// directed link a→b. The radio package's analytic shadowing model provides
// this (radio.Config.LossProb over station distance).
type LinkProbFunc func(a, b pkt.NodeID) float64

// ETX computes the expected transmission count metric of a link from its
// forward and reverse delivery probabilities: 1/(df*dr) (De Couto et al.,
// MobiCom 2003). Links with either probability below minProb are unusable.
func ETX(df, dr float64) float64 {
	if df <= 0 || dr <= 0 {
		return math.Inf(1)
	}
	return 1 / (df * dr)
}

// Table holds the ETX link table for n stations, in one of two layouts.
// NewTable builds the dense all-pairs form: flat n×n metric/probability
// matrices, O(N²) memory, with Dijkstra scanning every destination per
// pop. NewSparseTable builds the adjacency-list form over a candidate
// neighbor graph: only usable links are stored (CSR rows in ascending
// neighbor order), memory is O(N·k), and Dijkstra iterates adjacency
// rows. Both layouts answer the same queries; absent pairs in the sparse
// form have ETX +Inf, exactly like sub-minProb pairs in the dense form.
type Table struct {
	n int

	// Dense layout (NewTable); nil in sparse mode.
	etx  []float64 // n*n, Inf = unusable
	prob []float64 // n*n forward delivery probability

	// Sparse layout (NewSparseTable): usable links of station a occupy
	// slots off[a]..off[a+1], sorted by ascending neighbor ID.
	sparse  bool
	off     []int64
	adjID   []int32
	adjETX  []float64
	adjProb []float64
}

// NewTable builds the link table. Links with delivery probability below
// minProb (typically 0.1: a ≥90%-loss link is not a link) are excluded, so
// Dijkstra cannot "use" hopeless links with astronomic ETX.
func NewTable(n int, prob LinkProbFunc, minProb float64) *Table {
	t := &Table{n: n, etx: make([]float64, n*n), prob: make([]float64, n*n)}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			df := prob(pkt.NodeID(a), pkt.NodeID(b))
			dr := prob(pkt.NodeID(b), pkt.NodeID(a))
			t.prob[a*n+b] = df
			if df < minProb || dr < minProb {
				t.etx[a*n+b] = math.Inf(1)
				continue
			}
			t.etx[a*n+b] = ETX(df, dr)
		}
	}
	return t
}

// LinkETX returns the ETX of the a→b link (Inf if unusable). In sparse
// mode a pair absent from the adjacency is unusable; the diagonal is 0 in
// both layouts.
func (t *Table) LinkETX(a, b pkt.NodeID) float64 {
	if !t.sparse {
		return t.etx[int(a)*t.n+int(b)]
	}
	if a == b {
		return 0
	}
	if s := t.adjSlot(a, b); s >= 0 {
		return t.adjETX[s]
	}
	return math.Inf(1)
}

// LinkProb returns the forward delivery probability of a→b. The sparse
// layout stores probabilities for usable links only and reports 0 for
// absent pairs (their true probability is below minProb by construction).
func (t *Table) LinkProb(a, b pkt.NodeID) float64 {
	if !t.sparse {
		return t.prob[int(a)*t.n+int(b)]
	}
	if s := t.adjSlot(a, b); s >= 0 {
		return t.adjProb[s]
	}
	return 0
}

// adjSlot binary-searches row a of the sparse adjacency for neighbor b,
// returning its slot or -1.
func (t *Table) adjSlot(a, b pkt.NodeID) int {
	lo, hi := int(t.off[a]), int(t.off[a+1])
	row := t.adjID[lo:hi]
	target := int32(b)
	x, y := 0, len(row)
	for x < y {
		mid := int(uint(x+y) >> 1)
		if row[mid] < target {
			x = mid + 1
		} else {
			y = mid
		}
	}
	if x < len(row) && row[x] == target {
		return lo + x
	}
	return -1
}

// PathETX sums the link ETX values along a path.
func (t *Table) PathETX(p Path) float64 {
	var sum float64
	for i := 0; i+1 < len(p); i++ {
		sum += t.LinkETX(p[i], p[i+1])
	}
	return sum
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node pkt.NodeID
	dist float64
	idx  int
}

type pq []*pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *pq) Push(x any)        { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// LinkCostFunc maps a usable directed link u→v with ETX metric etx to the
// cost Dijkstra minimises. Policies use it to bend route selection around
// state the plain ETX table cannot see (queue backlog, energy, trust).
// Returning +Inf removes the link for this computation.
type LinkCostFunc func(u, v pkt.NodeID, etx float64) float64

// ShortestPath runs Dijkstra over the ETX table and returns the minimum-ETX
// path from src to dst, or an error when dst is unreachable.
func (t *Table) ShortestPath(src, dst pkt.NodeID) (Path, error) {
	return t.ShortestPathCost(src, dst, nil)
}

// ShortestPathCost runs Dijkstra with a custom link cost (nil selects the
// raw ETX metric) and returns the minimum-cost path from src to dst, or an
// error when dst is unreachable. Only links the table considers usable
// (finite ETX) are offered to the cost function.
func (t *Table) ShortestPathCost(src, dst pkt.NodeID, cost LinkCostFunc) (Path, error) {
	dist, prev := t.dijkstra(src, cost)
	if math.IsInf(dist[dst], 1) {
		return nil, fmt.Errorf("routing: %w %d -> %d", ErrNoRoute, src, dst)
	}
	var rev Path
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	p := make(Path, len(rev))
	for i, id := range rev {
		p[len(rev)-1-i] = id
	}
	return p, nil
}

// Distances returns the minimum-cost distance from src to every station
// (nil cost selects raw ETX; +Inf marks unreachable stations). The ETX
// metric is symmetric (1/(df·dr) does not depend on direction), so
// Distances(dst, nil) also gives every station's distance *to* dst — the
// "ETX progress" ordering opportunistic relay selection relies on.
func (t *Table) Distances(src pkt.NodeID, cost LinkCostFunc) []float64 {
	dist, _ := t.dijkstra(src, cost)
	return dist
}

// dijkstra computes single-source minimum-cost distances and predecessors
// over the usable links of the table. Both layouts relax a popped node's
// usable neighbors in ascending ID order — the dense scan skips +Inf
// entries, the sparse walk iterates the adjacency row — so the two
// layouts built over the same usable link set produce identical distances,
// predecessors and therefore paths.
func (t *Table) dijkstra(src pkt.NodeID, cost LinkCostFunc) ([]float64, []pkt.NodeID) {
	dist := make([]float64, t.n)
	prev := make([]pkt.NodeID, t.n)
	done := make([]bool, t.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if t.sparse {
			for s := int(t.off[u]); s < int(t.off[u+1]); s++ {
				v := pkt.NodeID(t.adjID[s])
				if done[v] {
					continue
				}
				w := t.adjETX[s]
				if cost != nil {
					w = cost(u, v, w)
					if math.IsInf(w, 1) {
						continue
					}
				}
				if nd := dist[u] + w; nd < dist[v] {
					dist[v] = nd
					prev[v] = u
					heap.Push(q, &pqItem{node: v, dist: nd})
				}
			}
			continue
		}
		for v := 0; v < t.n; v++ {
			w := t.etx[int(u)*t.n+v]
			if math.IsInf(w, 1) || done[v] {
				continue
			}
			if cost != nil {
				w = cost(u, pkt.NodeID(v), w)
				if math.IsInf(w, 1) {
					continue
				}
			}
			if nd := dist[u] + w; nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				heap.Push(q, &pqItem{node: pkt.NodeID(v), dist: nd})
			}
		}
	}
	return dist, prev
}

// Stations returns the number of stations the table was built over.
func (t *Table) Stations() int { return t.n }
