// Package routing provides route representations (node paths and forwarder
// lists), the static Table II routes for the Fig. 1 topology, an ETX link
// table (De Couto et al.) with pluggable-cost Dijkstra over the radio link
// model, and the Policy interface with its implementations: static
// minimum-ETX discovery, ORCD-style congestion-diversity routing that folds
// live queue backlog into the metric, and a forwarder-list sizing wrapper
// that forces routes to K relays.
package routing

import (
	"fmt"

	"ripple/internal/pkt"
)

// Path is an ordered node sequence from a flow's source to its destination.
// It serves both predetermined schemes (hop-by-hop) and opportunistic ones
// (as the prioritised forwarder list).
type Path []pkt.NodeID

// Src returns the first node of the path.
func (p Path) Src() pkt.NodeID { return p[0] }

// Dst returns the last node of the path.
func (p Path) Dst() pkt.NodeID { return p[len(p)-1] }

// Hops returns the number of links on the path.
func (p Path) Hops() int { return len(p) - 1 }

// Contains reports whether node n appears on the path.
func (p Path) Contains(n pkt.NodeID) bool { return p.indexOf(n) >= 0 }

func (p Path) indexOf(n pkt.NodeID) int {
	for i, id := range p {
		if id == n {
			return i
		}
	}
	return -1
}

// Reverse returns the path in the opposite direction (for two-way traffic
// such as TCP ACKs).
func (p Path) Reverse() Path {
	r := make(Path, len(p))
	for i, id := range p {
		r[len(p)-1-i] = id
	}
	return r
}

// NextHop returns the neighbour of `from` in the direction of `toward`
// (which must be one of the path's endpoints). ok is false if `from` is not
// on the path or already equals `toward`.
func (p Path) NextHop(from, toward pkt.NodeID) (pkt.NodeID, bool) {
	i := p.indexOf(from)
	if i < 0 || from == toward {
		return 0, false
	}
	switch toward {
	case p.Dst():
		if i+1 < len(p) {
			return p[i+1], true
		}
	case p.Src():
		if i > 0 {
			return p[i-1], true
		}
	}
	return 0, false
}

// FwdList builds the prioritised forwarder list for a transmission from
// `from` toward endpoint `toward`: the destination first, then forwarders in
// decreasing priority (closest to the destination first), excluding `from`
// itself. Returns nil if `from` is not on the path.
func (p Path) FwdList(from, toward pkt.NodeID) []pkt.NodeID {
	i := p.indexOf(from)
	if i < 0 || from == toward {
		return nil
	}
	var list []pkt.NodeID
	switch toward {
	case p.Dst():
		for j := len(p) - 1; j > i; j-- {
			list = append(list, p[j])
		}
	case p.Src():
		for j := 0; j < i; j++ {
			list = append(list, p[j])
		}
	default:
		return nil
	}
	return list
}

// Limit caps the number of intermediate forwarders at max, keeping evenly
// spaced interior nodes. Endpoints are preserved; max ≤ 0 keeps only the
// endpoints. (The paper's "maximum number of forwarders" counts the
// destination too — RouteBook applies that convention.)
func (p Path) Limit(max int) Path {
	interior := len(p) - 2
	if interior <= max || len(p) < 3 {
		return p
	}
	out := make(Path, 0, max+2)
	out = append(out, p[0])
	switch {
	case max == 1:
		out = append(out, p[(len(p)-1)/2])
	case max > 1:
		for k := 1; k <= max; k++ {
			idx := 1 + (k-1)*(interior-1)/(max-1)
			out = append(out, p[idx])
		}
	}
	out = append(out, p[len(p)-1])
	return out
}

// Validate checks structural invariants: at least two nodes, no repeats.
func (p Path) Validate() error {
	if len(p) < 2 {
		return fmt.Errorf("routing: path %v too short", p)
	}
	seen := make(map[pkt.NodeID]bool, len(p))
	for _, id := range p {
		if seen[id] {
			return fmt.Errorf("routing: path %v repeats node %d", p, id)
		}
		seen[id] = true
	}
	return nil
}
