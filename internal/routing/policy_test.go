package routing

import (
	"math"
	"testing"

	"ripple/internal/pkt"
)

// diamondTable builds a 4-station diamond: 0 and 3 are the endpoints, 1 and
// 2 are alternate relays. Link 0↔1↔3 is slightly better than 0↔2↔3, and no
// direct 0↔3 link exists.
//
//	    1
//	  /   \
//	0       3
//	  \   /
//	    2
func diamondTable() *Table {
	prob := map[[2]pkt.NodeID]float64{
		{0, 1}: 0.95, {1, 3}: 0.95,
		{0, 2}: 0.90, {2, 3}: 0.90,
		{1, 2}: 0.50,
	}
	return NewTable(4, func(a, b pkt.NodeID) float64 {
		if p, ok := prob[[2]pkt.NodeID{a, b}]; ok {
			return p
		}
		if p, ok := prob[[2]pkt.NodeID{b, a}]; ok {
			return p
		}
		return 0
	}, 0.1)
}

// lineTable builds an n-station chain with uniform 0.9 links between
// neighbours only.
func lineTable(n int) *Table {
	return NewTable(n, func(a, b pkt.NodeID) float64 {
		d := int(a) - int(b)
		if d == 1 || d == -1 {
			return 0.9
		}
		return 0
	}, 0.1)
}

func TestETXPolicyMatchesShortestPath(t *testing.T) {
	tab := diamondTable()
	pol := NewETXPolicy(tab)
	if pol.Dynamic() {
		t.Error("ETX must be static")
	}
	got, err := pol.Route(0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tab.ShortestPath(0, 3)
	if len(got) != len(want) {
		t.Fatalf("policy route %v != ShortestPath %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("policy route %v != ShortestPath %v", got, want)
		}
	}
	if got[1] != 1 {
		t.Fatalf("min-ETX route must transit the better relay 1, got %v", got)
	}
}

// TestCongestionCostMonotone asserts the metric's core property: the cost
// of a path through a relay never decreases as the relay's backlog grows,
// and grows strictly while other paths are unaffected.
func TestCongestionCostMonotone(t *testing.T) {
	tab := diamondTable()
	pol := NewCongestionPolicy(tab, 0.25)
	via1 := Path{0, 1, 3}
	via2 := Path{0, 2, 3}
	at1 := func(depth int) BacklogFunc {
		return func(n pkt.NodeID) int {
			if n == 1 {
				return depth
			}
			return 0
		}
	}
	prev := math.Inf(-1)
	base2 := pol.PathCost(via2, at1(0))
	for _, depth := range []int{0, 1, 2, 5, 10, 50} {
		c1 := pol.PathCost(via1, at1(depth))
		if c1 <= prev {
			t.Fatalf("cost via relay 1 not strictly increasing: %v at depth %d after %v", c1, depth, prev)
		}
		prev = c1
		if c2 := pol.PathCost(via2, at1(depth)); c2 != base2 {
			t.Fatalf("backlog at 1 changed the cost of %v: %v != %v", via2, c2, base2)
		}
	}
	// The increment per packet is exactly Alpha.
	d0, d1 := pol.PathCost(via1, at1(0)), pol.PathCost(via1, at1(1))
	if diff := d1 - d0; math.Abs(diff-0.25) > 1e-12 {
		t.Fatalf("per-packet increment = %v, want Alpha 0.25", diff)
	}
}

func TestCongestionRouteDivertsAroundBacklog(t *testing.T) {
	tab := diamondTable()
	pol := NewCongestionPolicy(tab, 0.25)
	if !pol.Dynamic() {
		t.Error("congestion policy must be dynamic")
	}
	// Unloaded (and with nil backlog) it is plain ETX: via relay 1.
	p, err := pol.Route(0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 1 {
		t.Fatalf("unloaded route %v, want via 1", p)
	}
	// Ten queued packets at relay 1 (2.5 ETX penalty) outweigh the ETX gap
	// between the relays; the route must divert via 2.
	p, err = pol.Route(0, 3, func(n pkt.NodeID) int {
		if n == 1 {
			return 10
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 2 {
		t.Fatalf("loaded route %v, want diversion via 2", p)
	}
}

// TestCongestionDestinationExempt asserts backlog at the destination never
// repels a route — its queue holds traffic it originates, not traffic it
// must forward.
func TestCongestionDestinationExempt(t *testing.T) {
	tab := diamondTable()
	pol := NewCongestionPolicy(tab, 0.25)
	heavyDst := func(n pkt.NodeID) int {
		if n == 3 {
			return 50
		}
		return 0
	}
	p, err := pol.Route(0, 3, heavyDst)
	if err != nil {
		t.Fatal(err)
	}
	etx, _ := tab.ShortestPath(0, 3)
	if len(p) != len(etx) {
		t.Fatalf("destination backlog changed the route: %v vs %v", p, etx)
	}
	if c := pol.PathCost(Path{0, 1, 3}, heavyDst); c != pol.PathCost(Path{0, 1, 3}, nil) {
		t.Fatalf("destination backlog leaked into PathCost: %v", c)
	}
}

func TestCongestionAlphaDefault(t *testing.T) {
	if pol := NewCongestionPolicy(diamondTable(), 0); pol.Alpha != DefaultCongestionAlpha {
		t.Fatalf("Alpha = %v, want default %v", pol.Alpha, DefaultCongestionAlpha)
	}
}

func TestSizedTruncationEdgeCases(t *testing.T) {
	tab := lineTable(7) // route 0..6 has 5 interior relays
	inner := NewETXPolicy(tab)
	for _, tc := range []struct {
		k    int
		rule SizingRule
		want Path
	}{
		{k: 1, rule: SizeSpaced, want: Path{0, 3, 6}},
		{k: 1, rule: SizeNearDst, want: Path{0, 5, 6}},
		{k: 1, rule: SizeNearSrc, want: Path{0, 1, 6}},
		{k: 2, rule: SizeNearDst, want: Path{0, 4, 5, 6}},
		{k: 2, rule: SizeNearSrc, want: Path{0, 1, 2, 6}},
		{k: 0, rule: SizeSpaced, want: Path{0, 6}},
		// K equal to the candidate count: unchanged.
		{k: 5, rule: SizeSpaced, want: Path{0, 1, 2, 3, 4, 5, 6}},
		{k: 5, rule: SizeNearDst, want: Path{0, 1, 2, 3, 4, 5, 6}},
	} {
		pol := Sized(inner, tab, tc.k, tc.rule)
		got, err := pol.Route(0, 6, nil)
		if err != nil {
			t.Fatalf("k=%d/%v: %v", tc.k, tc.rule, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("k=%d/%v: invalid path: %v", tc.k, tc.rule, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("k=%d/%v: route %v, want %v", tc.k, tc.rule, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("k=%d/%v: route %v, want %v", tc.k, tc.rule, got, tc.want)
			}
		}
	}
}

func TestSizedPaddingAddsProgressRelays(t *testing.T) {
	tab := diamondTable()
	inner := NewETXPolicy(tab)
	// The min-ETX route 0-1-3 has one relay; K=2 must pull in the only
	// other progress-making station, relay 2.
	pol := Sized(inner, tab, 2, SizeSpaced)
	got, err := pol.Route(0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("padded path invalid: %v (%v)", err, got)
	}
	if len(got) != 4 || !got.Contains(1) || !got.Contains(2) {
		t.Fatalf("padded route %v, want both relays present", got)
	}
	if got.Src() != 0 || got.Dst() != 3 {
		t.Fatalf("padding moved the endpoints: %v", got)
	}
	// Every consecutive pair must remain a usable link (paths stay
	// walkable hop-by-hop).
	for i := 0; i+1 < len(got); i++ {
		if math.IsInf(tab.LinkETX(got[i], got[i+1]), 1) {
			t.Fatalf("padded path %v uses unusable link %d->%d", got, got[i], got[i+1])
		}
	}
}

// TestSizedPaddingExhaustsCandidates asserts K beyond the available relay
// pool keeps the path valid at its maximum reachable size instead of
// inventing stations.
func TestSizedPaddingExhaustsCandidates(t *testing.T) {
	tab := diamondTable()
	pol := Sized(NewETXPolicy(tab), tab, 10, SizeSpaced)
	got, err := pol.Route(0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("invalid path: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("route %v, want all 4 stations and no more", got)
	}
}

func TestSizedNameAndDynamic(t *testing.T) {
	tab := diamondTable()
	if name := Sized(NewETXPolicy(tab), tab, 3, SizeSpaced).Name(); name != "etx+k3" {
		t.Errorf("Name = %q", name)
	}
	if name := Sized(NewCongestionPolicy(tab, 0), tab, 2, SizeNearDst).Name(); name != "congestion+k2/neardst" {
		t.Errorf("Name = %q", name)
	}
	if !Sized(NewCongestionPolicy(tab, 0), tab, 2, SizeSpaced).Dynamic() {
		t.Error("sized congestion must stay dynamic")
	}
	if Sized(NewETXPolicy(tab), tab, 2, SizeSpaced).Dynamic() {
		t.Error("sized ETX must stay static")
	}
}

func TestResizeDeclaredPath(t *testing.T) {
	tab := lineTable(5)
	// Resize works on hand-declared paths without recomputation.
	got := Resize(tab, Path{0, 1, 2, 3, 4}, 1, SizeSpaced)
	if len(got) != 3 || got[0] != 0 || got[2] != 4 {
		t.Fatalf("Resize = %v", got)
	}
	// Negative K clamps to endpoints only.
	if got := Resize(tab, Path{0, 1, 2, 3, 4}, -1, SizeSpaced); len(got) != 2 {
		t.Fatalf("Resize(k=-1) = %v", got)
	}
}
