package routing

import (
	"math"
	"testing"
	"testing/quick"

	"ripple/internal/pkt"
)

func TestPathEndpoints(t *testing.T) {
	p := Path{0, 1, 2, 3}
	if p.Src() != 0 || p.Dst() != 3 || p.Hops() != 3 {
		t.Fatalf("endpoints/hops wrong: %v", p)
	}
}

func TestNextHopForward(t *testing.T) {
	p := Path{0, 1, 2, 3}
	cases := []struct {
		from, toward, want pkt.NodeID
		ok                 bool
	}{
		{0, 3, 1, true},
		{1, 3, 2, true},
		{2, 3, 3, true},
		{3, 3, 0, false}, // already there
		{3, 0, 2, true},  // reverse direction
		{1, 0, 0, true},
		{9, 3, 0, false}, // off-path
	}
	for _, c := range cases {
		got, ok := p.NextHop(c.from, c.toward)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NextHop(%d→%d) = (%d,%v), want (%d,%v)", c.from, c.toward, got, ok, c.want, c.ok)
		}
	}
}

func TestFwdListDestinationFirst(t *testing.T) {
	p := Path{0, 1, 2, 3}
	got := p.FwdList(0, 3)
	want := []pkt.NodeID{3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("FwdList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FwdList = %v, want %v", got, want)
		}
	}
}

func TestFwdListReverseDirection(t *testing.T) {
	p := Path{0, 1, 2, 3}
	got := p.FwdList(3, 0)
	want := []pkt.NodeID{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reverse FwdList = %v, want %v", got, want)
		}
	}
}

func TestFwdListFromIntermediate(t *testing.T) {
	p := Path{0, 1, 2, 3}
	got := p.FwdList(1, 3)
	want := []pkt.NodeID{3, 2}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("FwdList(1→3) = %v, want %v", got, want)
	}
}

func TestFwdListOffPathNil(t *testing.T) {
	p := Path{0, 1, 2}
	if p.FwdList(9, 2) != nil {
		t.Fatal("off-path station must get nil forwarder list")
	}
	if p.FwdList(0, 9) != nil {
		t.Fatal("unknown endpoint must get nil forwarder list")
	}
}

func TestReverse(t *testing.T) {
	p := Path{0, 1, 2}
	r := p.Reverse()
	if r[0] != 2 || r[1] != 1 || r[2] != 0 {
		t.Fatalf("Reverse = %v", r)
	}
}

func TestLimitCapsForwarders(t *testing.T) {
	p := Path{0, 1, 2, 3, 4, 5, 6, 7, 8, 9} // 8 interior nodes
	lim := p.Limit(5)
	if len(lim) != 7 {
		t.Fatalf("Limit(5) kept %d nodes, want 7", len(lim))
	}
	if lim.Src() != 0 || lim.Dst() != 9 {
		t.Fatal("Limit must preserve endpoints")
	}
	if err := lim.Validate(); err != nil {
		t.Fatalf("limited path invalid: %v", err)
	}
	// Short paths are untouched.
	short := Path{0, 1, 2}
	if len(short.Limit(5)) != 3 {
		t.Fatal("Limit must not shrink short paths")
	}
}

func TestLimitDegenerateCaps(t *testing.T) {
	p := Path{0, 1, 2, 3, 4, 5}
	one := p.Limit(1)
	if len(one) != 3 || one.Src() != 0 || one.Dst() != 5 {
		t.Fatalf("Limit(1) = %v, want endpoints + middle", one)
	}
	if err := one.Validate(); err != nil {
		t.Fatal(err)
	}
	zero := p.Limit(0)
	if len(zero) != 2 || zero.Src() != 0 || zero.Dst() != 5 {
		t.Fatalf("Limit(0) = %v, want endpoints only", zero)
	}
	neg := p.Limit(-1)
	if len(neg) != 2 {
		t.Fatalf("Limit(-1) = %v", neg)
	}
}

func TestValidate(t *testing.T) {
	if err := (Path{0, 1, 2}).Validate(); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	if err := (Path{0}).Validate(); err == nil {
		t.Fatal("single-node path must be invalid")
	}
	if err := (Path{0, 1, 0}).Validate(); err == nil {
		t.Fatal("repeating path must be invalid")
	}
}

func TestTableIIRoutes(t *testing.T) {
	sets := RouteSets()
	if len(sets) != 3 {
		t.Fatalf("route sets = %d, want 3", len(sets))
	}
	wantEnds := []struct{ src, dst pkt.NodeID }{{0, 3}, {0, 4}, {5, 7}}
	for _, rs := range sets {
		for i, p := range rs.Flows() {
			if err := p.Validate(); err != nil {
				t.Errorf("%s flow %d: %v", rs.Name, i+1, err)
			}
			if p.Src() != wantEnds[i].src || p.Dst() != wantEnds[i].dst {
				t.Errorf("%s flow %d endpoints = %d→%d, want %d→%d",
					rs.Name, i+1, p.Src(), p.Dst(), wantEnds[i].src, wantEnds[i].dst)
			}
		}
	}
	// Spot-check the exact Table II entries.
	if r0 := Route0(); len(r0.Flow3) != 4 || r0.Flow3[1] != 6 || r0.Flow3[2] != 1 {
		t.Errorf("ROUTE0 flow 3 = %v, want [5 6 1 7]", r0.Flow3)
	}
	if r2 := Route2(); len(r2.Flow1) != 3 || r2.Flow1[1] != 2 {
		t.Errorf("ROUTE2 flow 1 = %v, want [0 2 3]", r2.Flow1)
	}
}

func TestETXFormula(t *testing.T) {
	if got := ETX(0.5, 0.5); got != 4 {
		t.Fatalf("ETX(0.5,0.5) = %v, want 4", got)
	}
	if got := ETX(1, 1); got != 1 {
		t.Fatalf("ETX(1,1) = %v, want 1", got)
	}
	if !math.IsInf(ETX(0, 1), 1) {
		t.Fatal("ETX with zero probability must be +Inf")
	}
}

// lineProb returns delivery probabilities for a 4-node line where only
// adjacent nodes have usable links.
func lineProb(a, b pkt.NodeID) float64 {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	switch d {
	case 1:
		return 0.9
	case 2:
		return 0.2
	default:
		return 0.01
	}
}

func TestShortestPathOnLine(t *testing.T) {
	tab := NewTable(4, lineProb, 0.1)
	p, err := tab.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ETX per adjacent hop = 1/0.81 ≈ 1.23; 2-hop shortcut = 1/0.04 = 25.
	want := Path{0, 1, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestShortestPathPrefersGoodShortcut(t *testing.T) {
	// Make the 2-hop link excellent: direct 0→2 should win over 0→1→2.
	prob := func(a, b pkt.NodeID) float64 {
		if (a == 0 && b == 2) || (a == 2 && b == 0) {
			return 0.95
		}
		return lineProb(a, b)
	}
	tab := NewTable(4, prob, 0.1)
	p, err := tab.ShortestPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("path = %v, want direct [0 2]", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	prob := func(a, b pkt.NodeID) float64 { return 0 }
	tab := NewTable(3, prob, 0.1)
	if _, err := tab.ShortestPath(0, 2); err == nil {
		t.Fatal("unreachable destination must error")
	}
}

func TestPathETXSumsLinks(t *testing.T) {
	tab := NewTable(4, lineProb, 0.1)
	got := tab.PathETX(Path{0, 1, 2})
	want := 2 * ETX(0.9, 0.9)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("PathETX = %v, want %v", got, want)
	}
}

// Property: Dijkstra's result is never worse than the straight-line path.
func TestShortestPathOptimalProperty(t *testing.T) {
	prop := func(seed uint8) bool {
		// Random symmetric link qualities over 6 nodes.
		n := 6
		probs := make([]float64, n*n)
		s := uint32(seed) + 1
		next := func() float64 {
			s = s*1664525 + 1013904223
			return float64(s%1000) / 1000
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := next()
				probs[i*n+j] = v
				probs[j*n+i] = v
			}
		}
		tab := NewTable(n, func(a, b pkt.NodeID) float64 { return probs[int(a)*n+int(b)] }, 0.1)
		p, err := tab.ShortestPath(0, pkt.NodeID(n-1))
		if err != nil {
			return true // disconnected graph is fine
		}
		straight := make(Path, n)
		for i := range straight {
			straight[i] = pkt.NodeID(i)
		}
		return tab.PathETX(p) <= tab.PathETX(straight)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
