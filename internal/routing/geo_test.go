package routing

import (
	"errors"
	"math"
	"slices"
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/radio"
)

// lineTable builds a dense table over n stations on a line with usable
// links between stations at most reach apart (prob 0.9 within reach).
func geoLineTable(n int, spacing, reach float64) (*Table, []radio.Pos) {
	pos := make([]radio.Pos, n)
	for i := range pos {
		pos[i] = radio.Pos{X: float64(i) * spacing}
	}
	t := NewTable(n, func(a, b pkt.NodeID) float64 {
		if radio.Dist(pos[a], pos[b]) <= reach {
			return 0.9
		}
		return 0
	}, 0.1)
	return t, pos
}

// TestGeoGreedyProgress: on a line where each hop reaches two stations
// ahead, greedy geographic progress takes the longest stride every time.
func TestGeoGreedyProgress(t *testing.T) {
	tab, pos := geoLineTable(7, 100, 210) // reach two neighbors ahead
	p := NewGeoPolicy(tab, pos)
	got, err := p.Route(0, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Path{0, 2, 4, 6}
	if !slices.Equal(got, want) {
		t.Fatalf("greedy route = %v, want %v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGeoUnreachable: a partitioned pair errors with ErrNoRoute, exactly
// like ETX routing.
func TestGeoUnreachable(t *testing.T) {
	tab, pos := geoLineTable(6, 100, 110)
	// Break the line: push station 3 far away so 2–3 is unusable.
	pos = append([]radio.Pos(nil), pos...)
	pos[3].Y = 1e6
	tab = NewTable(len(pos), func(a, b pkt.NodeID) float64 {
		if radio.Dist(pos[a], pos[b]) <= 110 {
			return 0.9
		}
		return 0
	}, 0.1)
	p := NewGeoPolicy(tab, pos)
	if _, err := p.Route(0, 5, nil); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("expected ErrNoRoute, got %v", err)
	}
}

// TestGeoVoidRecovery builds a void: the greedy next hop toward the
// destination dead-ends, so the policy must fall back to the ETX path
// and still return a valid loop-free route.
func TestGeoVoidRecovery(t *testing.T) {
	// Geometry: src at origin; a "bait" station close to dst but with no
	// onward links; a detour chain that works. Distances are engineered so
	// greedy prefers the bait.
	pos := []radio.Pos{
		{X: 0, Y: 0},    // 0 src
		{X: 90, Y: 0},   // 1 bait: nearest to dst from src's reach, dead end
		{X: 40, Y: 60},  // 2 detour hop 1
		{X: 110, Y: 60}, // 3 detour hop 2
		{X: 170, Y: 0},  // 4 dst
	}
	// Usable links: 0–1 (bait), 0–2, 2–3, 3–4. The bait has no link
	// onward: from 1 the only neighbor is 0, which makes no progress.
	usable := map[[2]pkt.NodeID]bool{
		{0, 1}: true, {1, 0}: true,
		{0, 2}: true, {2, 0}: true,
		{2, 3}: true, {3, 2}: true,
		{3, 4}: true, {4, 3}: true,
	}
	tab := NewTable(len(pos), func(a, b pkt.NodeID) float64 {
		if usable[[2]pkt.NodeID{a, b}] {
			return 0.9
		}
		return 0
	}, 0.1)
	p := NewGeoPolicy(tab, pos)
	got, err := p.Route(0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("recovered route %v invalid: %v", got, err)
	}
	if got.Src() != 0 || got.Dst() != 4 {
		t.Fatalf("recovered route %v has wrong endpoints", got)
	}
	// The bait is a dead end, so the usable route must run the detour.
	for _, hop := range []pkt.NodeID{2, 3} {
		if !got.Contains(hop) {
			t.Fatalf("recovered route %v skips detour hop %d", got, hop)
		}
	}
}

// TestEachNeighborLayoutsAgree: dense and sparse tables over the same
// usable link set enumerate identical (neighbor, ETX) sequences.
func TestEachNeighborLayoutsAgree(t *testing.T) {
	tab, pos := geoLineTable(9, 100, 250)
	sparse := NewSparseTable(9, func(a pkt.NodeID) []int32 {
		ids := make([]int32, 0, 8)
		for b := 0; b < 9; b++ {
			if pkt.NodeID(b) != a {
				ids = append(ids, int32(b))
			}
		}
		return ids
	}, func(a, b pkt.NodeID) float64 {
		if radio.Dist(pos[a], pos[b]) <= 250 {
			return 0.9
		}
		return 0
	}, 0.1)
	for a := 0; a < 9; a++ {
		type link struct {
			b   pkt.NodeID
			etx float64
		}
		var dl, sl []link
		tab.EachNeighbor(pkt.NodeID(a), func(b pkt.NodeID, e float64) { dl = append(dl, link{b, e}) })
		sparse.EachNeighbor(pkt.NodeID(a), func(b pkt.NodeID, e float64) { sl = append(sl, link{b, e}) })
		if !slices.Equal(dl, sl) {
			t.Fatalf("station %d: dense neighbors %v != sparse neighbors %v", a, dl, sl)
		}
	}
}

// TestGeoMatchesETXWhenGreedyWorks: geo routes are usable end to end —
// every consecutive pair is a usable link.
func TestGeoRouteWalkable(t *testing.T) {
	tab, pos := geoLineTable(12, 80, 170)
	p := NewGeoPolicy(tab, pos)
	got, err := p.Route(0, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(got); i++ {
		if math.IsInf(tab.LinkETX(got[i], got[i+1]), 1) {
			t.Fatalf("route %v uses unusable link %d->%d", got, got[i], got[i+1])
		}
	}
}
