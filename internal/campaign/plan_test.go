package campaign

import (
	"reflect"
	"strings"
	"testing"

	"ripple/internal/campaign/pool"
	"ripple/internal/network"
	"ripple/internal/sim"
)

// TestPlanRunCellAssembleEqualsRun is the sharding correctness bar: cells
// executed one at a time through the Plan API — out of order, as
// distributed workers would — and reassembled must produce exactly the
// Result an uninterrupted Run produces: same per-seed results, same
// means, same order. This is the in-process model of a distributed
// campaign.
func TestPlanRunCellAssembleEqualsRun(t *testing.T) {
	g := lineGrid(pool.New(2), []uint64{1, 2})
	want, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}

	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCells() != len(want.Cells) {
		t.Fatalf("NumCells = %d, want %d", plan.NumCells(), len(want.Cells))
	}
	perCell := make([][]*network.Result, plan.NumCells())
	for _, c := range []int{3, 0, 2, 1} {
		seeds, err := plan.RunCell(c, pool.New(2))
		if err != nil {
			t.Fatal(err)
		}
		perCell[c] = seeds
	}
	got, err := plan.Assemble(perCell)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("assembled result differs from Run:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestPlanAssembleValidates(t *testing.T) {
	g := lineGrid(pool.New(1), []uint64{1})
	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Assemble(make([][]*network.Result, 1)); err == nil ||
		!strings.Contains(err.Error(), "assembling 1 cells") {
		t.Fatalf("short cell slice: err = %v", err)
	}
	bad := make([][]*network.Result, plan.NumCells())
	if _, err := plan.Assemble(bad); err == nil ||
		!strings.Contains(err.Error(), "seed results") {
		t.Fatalf("missing seeds: err = %v", err)
	}
	if _, err := plan.RunCell(plan.NumCells(), nil); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range cell: err = %v", err)
	}
}

// TestPlanFingerprint pins the fingerprint's role: stable across
// re-expansions of the same declaration, different for grids that differ
// in any sharding-relevant way (name, axes, seeds, duration).
func TestPlanFingerprint(t *testing.T) {
	mk := func(mutate func(*Grid)) string {
		g := lineGrid(nil, []uint64{1, 2})
		if mutate != nil {
			mutate(&g)
		}
		p, err := g.Plan()
		if err != nil {
			t.Fatal(err)
		}
		return p.Fingerprint()
	}
	base := mk(nil)
	if again := mk(nil); again != base {
		t.Fatalf("fingerprint unstable: %s vs %s", base, again)
	}
	for name, mutate := range map[string]func(*Grid){
		"name":     func(g *Grid) { g.Name = "other" },
		"seeds":    func(g *Grid) { g.Seeds = []uint64{1, 2, 3} },
		"duration": func(g *Grid) { g.Duration = 400 * sim.Millisecond },
		"axes":     func(g *Grid) { g.Axes[1] = A("hops", "2") },
	} {
		if mk(mutate) == base {
			t.Errorf("fingerprint ignores %s", name)
		}
	}
}
