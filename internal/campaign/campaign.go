// Package campaign is the simulator's batch execution engine. A Grid
// declares the axes of a scenario sweep (scheme, topology, flow count,
// BER, radio profile — any labelled dimension) and a Build function that
// maps one grid point to a network.Config; Run expands the cartesian
// product into (point × seed) units, schedules every unit on the shared
// bounded worker pool, and folds each cell's per-seed results into a mean
// plus Welford-accumulated variance so every cell can report mean ± 95%
// CI. The paper's evaluation is exactly this shape — every figure averages
// "multiple runs" over a (scheme × topology × load × channel) grid — and
// the figure drivers in internal/experiments are declared as Grids.
//
// Execution is deterministic: units are indexed by (point, seed) and
// results are folded in that fixed order, so a grid produces bit-identical
// numbers whether it runs on one worker or many.
package campaign

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ripple/internal/campaign/pool"
	"ripple/internal/network"
	"ripple/internal/sim"
	"ripple/internal/stats"
)

// Axis is one labelled dimension of a grid.
type Axis struct {
	Name   string
	Labels []string
}

// A creates an axis.
func A(name string, labels ...string) Axis { return Axis{Name: name, Labels: labels} }

// Point identifies one cell of a grid: an index along every axis.
type Point struct {
	axes []Axis
	idx  []int
}

// Index returns the point's position along the named axis. Asking for an
// axis the grid does not declare is a programming error and panics.
func (p Point) Index(axis string) int {
	for i, a := range p.axes {
		if a.Name == axis {
			return p.idx[i]
		}
	}
	panic(fmt.Sprintf("campaign: grid has no axis %q", axis))
}

// Label returns the point's label along the named axis.
func (p Point) Label(axis string) string {
	for i, a := range p.axes {
		if a.Name == axis {
			return a.Labels[p.idx[i]]
		}
	}
	panic(fmt.Sprintf("campaign: grid has no axis %q", axis))
}

// String renders the point as "axis=label/axis=label".
func (p Point) String() string {
	parts := make([]string, len(p.axes))
	for i, a := range p.axes {
		parts[i] = a.Name + "=" + a.Labels[p.idx[i]]
	}
	return strings.Join(parts, "/")
}

// Grid declares a scenario sweep.
type Grid struct {
	// Name identifies the grid in errors and progress output.
	Name string
	// Axes are the sweep dimensions; their cartesian product is the cell
	// set. A grid with no axes has exactly one cell.
	Axes []Axis
	// Seeds runs every cell once per seed; empty means seed 1 only.
	Seeds []uint64
	// Duration, when non-zero, overrides each cell's run duration.
	Duration sim.Time
	// Build maps a grid point to its scenario. It is called once per cell,
	// in cell order, before any unit runs; an error aborts the whole grid.
	Build func(Point) (network.Config, error)
	// Pool schedules the units (nil = the shared GOMAXPROCS-sized pool).
	Pool *pool.Pool
	// Progress, when non-nil, is called after each completed unit with the
	// number of finished units and the total. Calls are serialized.
	Progress func(done, total int)
}

// Cell is one completed grid point.
type Cell struct {
	Point Point
	// Seeds holds the per-seed results in seed order.
	Seeds []*network.Result
	// Mean is the seed-averaged result (network.Average semantics).
	Mean *network.Result
}

// Stat streams the metric over the cell's per-seed results (in seed order,
// so the numbers are deterministic) through a Welford accumulator and
// returns its mean ± 95% CI summary.
func (c *Cell) Stat(metric func(*network.Result) float64) stats.Summary {
	var w stats.Welford
	for _, r := range c.Seeds {
		w.Add(metric(r))
	}
	return w.Summary()
}

// Result is a completed grid: one cell per point, in row-major order with
// the last axis varying fastest.
type Result struct {
	Axes  []Axis
	Cells []Cell
}

// Cell returns the cell at the given per-axis indices.
func (r *Result) Cell(idx ...int) *Cell {
	if len(idx) != len(r.Axes) {
		panic(fmt.Sprintf("campaign: Cell wants %d indices, got %d", len(r.Axes), len(idx)))
	}
	flat := 0
	for i, a := range r.Axes {
		if idx[i] < 0 || idx[i] >= len(a.Labels) {
			panic(fmt.Sprintf("campaign: index %d out of range for axis %q", idx[i], a.Name))
		}
		flat = flat*len(a.Labels) + idx[i]
	}
	return &r.Cells[flat]
}

// Plan is a validated, fully expanded grid: every cell's point and
// scenario config built up front, in cell order, with no worlds
// constructed yet. A Plan is the unit the distributed execution layer
// (internal/dist) shards: a coordinator and its workers each expand the
// same Grid declaration into the same Plan, identified by Fingerprint,
// and cells are then executable independently with RunCell and
// reassembled with Assemble.
type Plan struct {
	grid   *Grid
	points []Point
	cfgs   []network.Config
	seeds  []uint64
}

// Plan validates the grid and expands it into its cell set. Build is
// called once per cell, in cell order, so errors surface deterministically
// before any simulation runs.
func (g *Grid) Plan() (*Plan, error) {
	for _, a := range g.Axes {
		if len(a.Labels) == 0 {
			return nil, fmt.Errorf("campaign %s: axis %q has no values", g.Name, a.Name)
		}
	}
	if g.Build == nil {
		return nil, fmt.Errorf("campaign %s: no Build function", g.Name)
	}
	cells := 1
	for _, a := range g.Axes {
		cells *= len(a.Labels)
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	p := &Plan{grid: g, seeds: seeds, points: make([]Point, cells), cfgs: make([]network.Config, cells)}
	for c := 0; c < cells; c++ {
		p.points[c] = g.point(c)
		cfg, err := g.Build(p.points[c])
		if err != nil {
			return nil, fmt.Errorf("campaign %s [%s]: %w", g.Name, p.points[c], err)
		}
		if g.Duration != 0 {
			cfg.Duration = g.Duration
		}
		p.cfgs[c] = cfg
	}
	return p, nil
}

// NumCells returns the number of cells in the plan.
func (p *Plan) NumCells() int { return len(p.cfgs) }

// Seeds returns the seed list every cell runs under.
func (p *Plan) Seeds() []uint64 { return p.seeds }

// Point returns the grid point of one cell.
func (p *Plan) Point(c int) Point { return p.points[c] }

// Fingerprint identifies the plan across processes: a coordinator only
// accepts cell results from workers whose plan hashes identically. The
// hash covers the grid's name, axes, seeds, duration and every cell's
// scenario shape (station count, scheme, flow count) — Build functions
// cannot be hashed, so two processes running different code behind the
// same declaration shape are not detected; same-binary spawning makes
// that configuration unreachable in practice.
func (p *Plan) Fingerprint() string {
	h := sha256.New()
	g := p.grid
	fmt.Fprintf(h, "grid %q dur %d seeds %v\n", g.Name, int64(g.Duration), p.seeds)
	for _, a := range g.Axes {
		fmt.Fprintf(h, "axis %q %q\n", a.Name, a.Labels)
	}
	for c := range p.cfgs {
		cfg := &p.cfgs[c]
		fmt.Fprintf(h, "cell %d pos %d scheme %d flows %d dur %d\n",
			c, len(cfg.Positions), int(cfg.Scheme), len(cfg.Flows), int64(cfg.Duration))
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// RunCell executes one cell: its world snapshot is built once, every seed
// runs on the pool (nil = the shared pool) sharing it read-only, and the
// snapshot is released before returning. Results are indexed by seed
// position and bit-identical to the same cell of a full Run.
func (p *Plan) RunCell(c int, pl *pool.Pool) ([]*network.Result, error) {
	if c < 0 || c >= len(p.cfgs) {
		return nil, fmt.Errorf("campaign %s: cell %d out of range [0,%d)", p.grid.Name, c, len(p.cfgs))
	}
	if pl == nil {
		pl = pool.Shared()
	}
	cfg := p.cfgs[c] // copy: the world must not outlive this cell
	if cfg.World == nil {
		w, err := network.BuildWorld(cfg)
		if err != nil {
			return nil, fmt.Errorf("campaign %s [%s]: %w", p.grid.Name, p.points[c], err)
		}
		cfg.World = w
	}
	results := make([]*network.Result, len(p.seeds))
	err := pl.Do(len(p.seeds), func(s int) error {
		run := cfg
		run.Seed = p.seeds[s]
		res, err := network.Run(run)
		if err != nil {
			return fmt.Errorf("campaign %s [%s] seed %d: %w", p.grid.Name, p.points[c], p.seeds[s], err)
		}
		results[s] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Assemble folds per-cell seed results (cell-indexed, seed order within
// each cell) into the grid Result. The fold is the one Run performs, so a
// Result assembled from cells executed elsewhere — other processes, other
// machines, a resumed checkpoint — is identical to an uninterrupted
// in-process Run.
func (p *Plan) Assemble(perCell [][]*network.Result) (*Result, error) {
	if len(perCell) != len(p.cfgs) {
		return nil, fmt.Errorf("campaign %s: assembling %d cells, plan has %d", p.grid.Name, len(perCell), len(p.cfgs))
	}
	flat := make([]*network.Result, 0, len(p.cfgs)*len(p.seeds))
	for c, seeds := range perCell {
		if len(seeds) != len(p.seeds) {
			return nil, fmt.Errorf("campaign %s: cell %d has %d seed results, plan wants %d", p.grid.Name, c, len(seeds), len(p.seeds))
		}
		flat = append(flat, seeds...)
	}
	return p.assembleFlat(flat), nil
}

// assembleFlat folds the flat (cell-major, seed-minor) result slice.
func (p *Plan) assembleFlat(results []*network.Result) *Result {
	out := &Result{Axes: p.grid.Axes, Cells: make([]Cell, len(p.cfgs))}
	for c := range p.cfgs {
		perSeed := results[c*len(p.seeds) : (c+1)*len(p.seeds)]
		out.Cells[c] = Cell{
			Point: p.points[c],
			Seeds: perSeed,
			Mean:  network.Average(perSeed),
		}
	}
	return out
}

// Run expands the grid and executes every (cell × seed) unit on the pool.
func (g *Grid) Run() (*Result, error) {
	plan, err := g.Plan()
	if err != nil {
		return nil, err
	}
	cells := len(plan.cfgs)
	seeds := plan.seeds
	points, cfgs := plan.points, plan.cfgs

	p := g.Pool
	if p == nil {
		p = pool.Shared()
	}

	// Each cell gets its seed-independent world snapshot (radio link plan,
	// routing table, resolved routes) built exactly once: the cell's S
	// seed-runs share it read-only, so the O(N²) setup cost is paid per
	// cell, not per run. The builds themselves fan out across the pool —
	// for single-seed grids over large topologies they are the dominant
	// setup cost — and pool.Do reports the lowest-indexed failure, so a
	// broken cell still surfaces deterministically before any run.
	if err := p.Do(cells, func(c int) error {
		if cfgs[c].World != nil {
			return nil
		}
		w, err := network.BuildWorld(cfgs[c])
		if err != nil {
			return fmt.Errorf("campaign %s [%s]: %w", g.Name, points[c], err)
		}
		cfgs[c].World = w
		return nil
	}); err != nil {
		return nil, err
	}
	total := cells * len(seeds)
	results := make([]*network.Result, total)
	// remaining counts each cell's unfinished seed-runs so the last
	// finisher can drop the cell's World reference: without this a wide
	// grid would pin O(cells × N²) of link-plan matrices until Run
	// returns, where each snapshot is only needed while its cell's seeds
	// execute. Every unit copies cfgs[cell] before running and decrements
	// after, so the atomic counter orders the nil store strictly after
	// every sibling's read.
	remaining := make([]atomic.Int32, cells)
	for c := range remaining {
		remaining[c].Store(int32(len(seeds)))
	}
	var done int
	var progressMu sync.Mutex
	err = p.Do(total, func(u int) error {
		cell, s := u/len(seeds), u%len(seeds)
		cfg := cfgs[cell]
		cfg.Seed = seeds[s]
		res, err := network.Run(cfg)
		if err != nil {
			return fmt.Errorf("campaign %s [%s] seed %d: %w", g.Name, points[cell], seeds[s], err)
		}
		results[u] = res
		if remaining[cell].Add(-1) == 0 {
			cfgs[cell].World = nil
		}
		if g.Progress != nil {
			progressMu.Lock()
			done++
			g.Progress(done, total)
			progressMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return plan.assembleFlat(results), nil
}

// point converts a flat cell index into per-axis indices (last axis
// fastest).
func (g *Grid) point(flat int) Point {
	idx := make([]int, len(g.Axes))
	for i := len(g.Axes) - 1; i >= 0; i-- {
		n := len(g.Axes[i].Labels)
		idx[i] = flat % n
		flat /= n
	}
	return Point{axes: g.Axes, idx: idx}
}
