// Package pool provides the bounded worker pool every batch layer of the
// simulator schedules on. Campaign grids, network.RunSeeds and the public
// batch API all share one GOMAXPROCS-sized pool by default, so peak
// concurrency stays bounded no matter how many scenario cells a sweep
// expands to — unlike the seed implementation, which spawned one goroutine
// per seed with no cap.
//
// The pool uses work donation: a caller's own goroutine always executes
// jobs, and up to Workers()-1 helper goroutines are borrowed from a shared
// token bucket. Because callers never block waiting for a free worker,
// nested Do calls (a batch whose units themselves fan out) cannot deadlock.
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError reports a job that panicked. The pool recovers panics on
// both caller and helper goroutines — a panic on a borrowed helper would
// otherwise kill the whole process, skipping every deferred cleanup in
// the caller's stack — and surfaces them as ordinary job errors carrying
// the panic value and stack.
type PanicError struct {
	Index int
	Value string
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job %d panicked: %s\n%s", e.Index, e.Value, e.Stack)
}

// runJob executes one job under a recover guard.
func runJob(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return fn(i)
}

// Pool runs batches of indexed jobs with bounded concurrency.
type Pool struct {
	workers int
	// slots are helper-goroutine tokens. Capacity is workers-1: the
	// caller's goroutine is the remaining worker.
	slots chan struct{}
}

// New returns a pool allowing up to workers concurrently executing jobs
// per caller. Values below 1 are treated as 1 (fully serial execution).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers, slots: make(chan struct{}, workers-1)}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

var shared atomic.Pointer[Pool]

// Shared returns the process-wide default pool, sized to GOMAXPROCS.
func Shared() *Pool {
	if p := shared.Load(); p != nil {
		return p
	}
	// Benign race: two callers may both construct; one wins, both are valid.
	p := New(runtime.GOMAXPROCS(0))
	shared.CompareAndSwap(nil, p)
	return shared.Load()
}

// SetSharedWorkers resizes the process-wide default pool (e.g. from a
// -parallel flag). Batches already in flight keep their old bound.
func SetSharedWorkers(workers int) {
	shared.Store(New(workers))
}

// Do runs fn(0)..fn(n-1) with at most Workers() of them executing at once
// and returns after all have completed. The calling goroutine participates
// in the work, so Do never deadlocks even when fn itself calls Do on the
// same pool; helper goroutines across all concurrent callers are bounded
// by Workers()-1. On failure Do returns the error of the lowest-indexed
// failing job, which is deterministic regardless of scheduling order. A
// job that panics fails with a *PanicError (value + stack) instead of
// killing the process.
func (p *Pool) Do(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = runJob(fn, i)
		}
	}
	var wg sync.WaitGroup
spawn:
	for i := 0; i < n-1; i++ {
		select {
		case p.slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.slots }()
				work()
			}()
		default:
			break spawn
		}
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
