package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoRunsEveryJobOnce(t *testing.T) {
	p := New(4)
	const n = 100
	var counts [n]atomic.Int64
	if err := p.Do(n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := New(workers)
		var running, peak atomic.Int64
		err := p.Do(50, func(int) error {
			r := running.Add(1)
			for {
				old := peak.Load()
				if r <= old || peak.CompareAndSwap(old, r) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := peak.Load(); got > int64(workers) {
			t.Errorf("workers=%d: peak concurrency %d", workers, got)
		}
	}
}

func TestNestedDoDoesNotDeadlock(t *testing.T) {
	p := New(2)
	done := make(chan error, 1)
	go func() {
		done <- p.Do(4, func(int) error {
			return p.Do(4, func(int) error {
				time.Sleep(time.Millisecond)
				return nil
			})
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nested Do deadlocked")
	}
}

func TestDoReturnsLowestIndexedError(t *testing.T) {
	p := New(8)
	for trial := 0; trial < 10; trial++ {
		err := p.Do(64, func(i int) error {
			if i%3 == 1 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 1 failed" {
			t.Fatalf("trial %d: err = %v, want job 1's error", trial, err)
		}
	}
}

func TestDoZeroJobsAndMinWorkers(t *testing.T) {
	if err := New(0).Do(0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if w := New(-3).Workers(); w != 1 {
		t.Fatalf("Workers() = %d, want clamp to 1", w)
	}
}

func TestSharedPoolResize(t *testing.T) {
	defer SetSharedWorkers(runtime.GOMAXPROCS(0))
	if Shared() == nil || Shared().Workers() < 1 {
		t.Fatal("shared pool missing")
	}
	SetSharedWorkers(3)
	if got := Shared().Workers(); got != 3 {
		t.Fatalf("resized shared pool workers = %d, want 3", got)
	}
}

// TestDoRecoversPanic: a panicking job must not kill the process (a panic
// on a borrowed helper goroutine otherwise would); it fails as an ordinary
// job error carrying the panic value and stack, and every other job still
// runs to completion.
func TestDoRecoversPanic(t *testing.T) {
	p := New(4)
	var ran atomic.Int64
	err := p.Do(8, func(i int) error {
		if i == 3 {
			panic("job exploded")
		}
		ran.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Do error = %v, want *PanicError", err)
	}
	if pe.Index != 3 || pe.Value != "job exploded" || pe.Stack == "" {
		t.Errorf("PanicError = {Index:%d Value:%q Stack:%d bytes}, want job 3 with stack",
			pe.Index, pe.Value, len(pe.Stack))
	}
	if n := ran.Load(); n != 7 {
		t.Errorf("surviving jobs ran %d times, want 7", n)
	}
}

// TestDoPanicReportsLowestIndex: like plain errors, concurrent panics
// resolve deterministically to the lowest failing index.
func TestDoPanicReportsLowestIndex(t *testing.T) {
	p := New(4)
	err := p.Do(16, func(i int) error {
		if i%2 == 1 {
			panic(i)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("Do error = %v, want *PanicError for job 1", err)
	}
}
