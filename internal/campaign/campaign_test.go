package campaign

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ripple/internal/campaign/pool"
	"ripple/internal/network"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// lineGrid sweeps scheme × hops on line topologies: a small but real
// two-axis grid.
func lineGrid(p *pool.Pool, seeds []uint64) Grid {
	schemes := []network.SchemeKind{network.DCF, network.Ripple}
	hops := []int{2, 3}
	return Grid{
		Name: "test-line",
		Axes: []Axis{
			A("scheme", "DCF", "RIPPLE"),
			A("hops", "2", "3"),
		},
		Seeds:    seeds,
		Duration: 300 * sim.Millisecond,
		Pool:     p,
		Build: func(pt Point) (network.Config, error) {
			top, path := topology.Line(hops[pt.Index("hops")])
			return network.Config{
				Positions: top.Positions,
				Scheme:    schemes[pt.Index("scheme")],
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
			}, nil
		},
	}
}

func TestGridExpandsAndRuns(t *testing.T) {
	g := lineGrid(pool.New(4), []uint64{1, 2, 3})
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Seeds) != 3 {
			t.Fatalf("%s: %d seed results", c.Point, len(c.Seeds))
		}
		if c.Mean == nil || c.Mean.TotalMbps <= 0 {
			t.Fatalf("%s: empty mean result", c.Point)
		}
		s := c.Stat(func(r *network.Result) float64 { return r.TotalMbps })
		// Welford's running mean and Average's sum/n agree to rounding.
		if s.N != 3 || math.Abs(s.Mean-c.Mean.TotalMbps) > 1e-9 {
			t.Fatalf("%s: Stat = %+v vs mean %v", c.Point, s, c.Mean.TotalMbps)
		}
		if s.CI95 < 0 {
			t.Fatalf("%s: negative CI", c.Point)
		}
	}
	// Cell addressing matches point labels.
	c := res.Cell(1, 0)
	if c.Point.Label("scheme") != "RIPPLE" || c.Point.Label("hops") != "2" {
		t.Fatalf("Cell(1,0) = %s", c.Point)
	}
	if c.Point.Index("scheme") != 1 {
		t.Fatalf("Index(scheme) = %d", c.Point.Index("scheme"))
	}
	if got := c.Point.String(); got != "scheme=RIPPLE/hops=2" {
		t.Fatalf("Point.String() = %q", got)
	}
}

// TestGridDeterministicAcrossWorkerCounts is the campaign determinism
// guarantee: identical grid + seeds produce bit-identical results whether
// the pool has one worker or many.
func TestGridDeterministicAcrossWorkerCounts(t *testing.T) {
	serialGrid := lineGrid(pool.New(1), []uint64{1, 2, 3})
	serial, err := serialGrid.Run()
	if err != nil {
		t.Fatal(err)
	}
	wideGrid := lineGrid(pool.New(8), []uint64{1, 2, 3})
	wide, err := wideGrid.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Cells {
		a, b := serial.Cells[i], wide.Cells[i]
		if !reflect.DeepEqual(a.Mean, b.Mean) {
			t.Errorf("%s: means diverge across worker counts:\n%+v\nvs\n%+v",
				a.Point, a.Mean, b.Mean)
		}
		for s := range a.Seeds {
			if a.Seeds[s].TotalMbps != b.Seeds[s].TotalMbps ||
				a.Seeds[s].Events != b.Seeds[s].Events {
				t.Errorf("%s seed %d: per-seed results diverge", a.Point, s)
			}
		}
		sa := a.Stat(func(r *network.Result) float64 { return r.TotalMbps })
		sb := b.Stat(func(r *network.Result) float64 { return r.TotalMbps })
		if sa != sb {
			t.Errorf("%s: summaries diverge: %+v vs %+v", a.Point, sa, sb)
		}
	}
}

func TestGridProgressCountsEveryUnit(t *testing.T) {
	g := lineGrid(pool.New(4), []uint64{1, 2})
	var calls []int
	g.Progress = func(done, total int) {
		if total != 8 {
			t.Errorf("total = %d, want 8", total)
		}
		calls = append(calls, done)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 8 {
		t.Fatalf("progress calls = %d, want 8", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress sequence %v not monotonic", calls)
		}
	}
}

func TestGridNoAxesIsOneCell(t *testing.T) {
	top, path := topology.Line(2)
	g := Grid{
		Name:     "single",
		Duration: 200 * sim.Millisecond,
		Pool:     pool.New(2),
		Build: func(Point) (network.Config, error) {
			return network.Config{
				Positions: top.Positions,
				Scheme:    network.Ripple,
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
			}, nil
		},
	}
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || len(res.Cells[0].Seeds) != 1 {
		t.Fatalf("cells/seeds = %d/%d", len(res.Cells), len(res.Cells[0].Seeds))
	}
}

func TestGridBuildErrorAbortsBeforeRunning(t *testing.T) {
	ran := false
	g := Grid{
		Name: "broken",
		Axes: []Axis{A("x", "a", "b")},
		Pool: pool.New(2),
		Build: func(pt Point) (network.Config, error) {
			if pt.Index("x") == 1 {
				return network.Config{}, errors.New("boom")
			}
			ran = true // Build for cell 0 still runs, but no simulation may
			top, path := topology.Line(2)
			return network.Config{
				Positions: top.Positions,
				Scheme:    network.DCF,
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
			}, nil
		},
	}
	_, err := g.Run()
	if err == nil {
		t.Fatal("broken Build must fail the grid")
	}
	if want := `campaign broken [x=b]: boom`; err.Error() != want {
		t.Fatalf("err = %q, want %q", err.Error(), want)
	}
	_ = ran
}

func TestGridValidation(t *testing.T) {
	g := Grid{Name: "g", Axes: []Axis{A("empty")}}
	g.Build = func(Point) (network.Config, error) { return network.Config{}, nil }
	if _, err := g.Run(); err == nil {
		t.Error("empty axis must error")
	}
	g2 := Grid{Name: "g2"}
	if _, err := g2.Run(); err == nil {
		t.Error("missing Build must error")
	}
}

func TestGridRunErrorNamesPointAndSeed(t *testing.T) {
	g := Grid{
		Name:  "badrun",
		Axes:  []Axis{A("n", "0", "1")},
		Seeds: []uint64{7},
		Pool:  pool.New(2),
		Build: func(pt Point) (network.Config, error) {
			// An unknown traffic kind passes world construction but makes
			// network.Run fail once the unit executes.
			top, path := topology.Line(2)
			return network.Config{
				Positions: top.Positions,
				Scheme:    network.DCF,
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.TrafficKind(99)}},
			}, nil
		},
	}
	_, err := g.Run()
	if err == nil {
		t.Fatal("invalid scenario must fail the run")
	}
	for _, want := range []string{"campaign badrun", "seed 7"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err %q missing %q", err, want)
		}
	}
}

func TestGridInvalidConfigFailsAtWorldBuild(t *testing.T) {
	runs := 0
	g := Grid{
		Name:  "badcfg",
		Axes:  []Axis{A("n", "0", "1")},
		Seeds: []uint64{7},
		Pool:  pool.New(2),
		Build: func(pt Point) (network.Config, error) {
			runs++
			// No flows: rejected when the cell's world snapshot is built,
			// before any seed-run is scheduled.
			return network.Config{}, nil
		},
	}
	_, err := g.Run()
	if err == nil {
		t.Fatal("invalid scenario must fail the grid")
	}
	for _, want := range []string{"campaign badcfg", "[n=0]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("err %q missing %q", err, want)
		}
	}
	// Build runs for every cell (in cell order) before the pooled world
	// builds; the lowest-indexed broken cell then fails the whole grid.
	if runs != 2 {
		t.Errorf("Build called %d times, want once per cell", runs)
	}
}

func TestPointPanicsOnUnknownAxis(t *testing.T) {
	g := lineGrid(pool.New(1), []uint64{1})
	pt := g.point(0)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown axis must panic")
		}
	}()
	pt.Index("nope")
}

// TestGridCellOrderRowMajor pins the documented cell layout.
func TestGridCellOrderRowMajor(t *testing.T) {
	g := Grid{
		Name: "order",
		Axes: []Axis{A("a", "0", "1"), A("b", "0", "1", "2")},
	}
	var got []string
	for flat := 0; flat < 6; flat++ {
		pt := g.point(flat)
		got = append(got, strconv.Itoa(pt.Index("a"))+strconv.Itoa(pt.Index("b")))
	}
	want := []string{"00", "01", "02", "10", "11", "12"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cell order = %v, want %v", got, want)
	}
}
