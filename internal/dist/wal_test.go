package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"ripple/internal/campaign/pool"
	"ripple/internal/stats"
)

// TestWALAppendOpenRestore covers the journal's happy path: appended
// records come back byte-identical through Open, appending continues an
// opened journal, and Reset empties it.
func TestWALAppendOpenRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var wf stats.Welford
	wf.Add(3.5)
	recs := []walRecord{
		{Grid: "fp-a", Cell: 0, Payload: json.RawMessage(`[0]`)},
		{Grid: "fp-a", Cell: 2, Payload: json.RawMessage(`{"x":[1,2]}`),
			Stats: map[string]stats.State{"v": wf.State()}},
		{Grid: "fp-b", Cell: 1, Payload: json.RawMessage(`"s"`)},
	}
	for _, r := range recs {
		if err := w.Append(r.Grid, r.Cell, r.Payload, r.Stats); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Restored(); !reflect.DeepEqual(got, recs) {
		t.Fatalf("restored records differ:\ngot  %+v\nwant %+v", got, recs)
	}
	// Appending to an opened journal continues it.
	if err := r.Append("fp-b", 9, json.RawMessage(`[9]`), nil); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Restored(); len(got) != 4 || got[3].Cell != 9 {
		t.Fatalf("after append-to-opened: %d records, want 4 ending in cell 9", len(got))
	}
	// Reset empties the journal and its restored view.
	if err := r2.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := r2.Restored(); len(got) != 0 {
		t.Fatalf("Restored after Reset = %d records, want 0", len(got))
	}
	r2.Close()
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after Reset: size %d, err %v, want empty file", fi.Size(), err)
	}
}

// TestWALCompactKeepsOtherGrids guards the multi-grid campaign case: a
// checkpoint save of one grid compacts only that grid's records out of
// the shared journal — a previous incarnation's progress on a later grid
// must survive, or every supervised restart of a multi-grid campaign
// would rediscover the later grids from zero.
func TestWALCompactKeepsOtherGrids(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append("fp-a", 0, json.RawMessage(`[0]`), nil)
	w.Append("fp-b", 1, json.RawMessage(`[1]`), nil)
	w.Append("fp-a", 2, json.RawMessage(`[2]`), nil)
	w.Close()

	r, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Compact("fp-a"); err != nil {
		t.Fatal(err)
	}
	if got := r.Restored(); len(got) != 1 || got[0].Grid != "fp-b" || got[0].Cell != 1 {
		t.Fatalf("after Compact(fp-a): restored = %+v, want only fp-b cell 1", got)
	}
	// Appends continue cleanly on the compacted journal.
	if err := r.Append("fp-b", 3, json.RawMessage(`[3]`), nil); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got := r2.Restored()
	if len(got) != 2 || got[0].Cell != 1 || got[1].Cell != 3 {
		t.Fatalf("reopened journal = %+v, want fp-b cells 1 and 3", got)
	}
}

// TestWALOpenMissingFile: a campaign interrupted before its first delivery
// has no journal; Open must treat that as empty, not an error.
func TestWALOpenMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Restored(); len(got) != 0 {
		t.Fatalf("Restored = %d records, want 0", len(got))
	}
	if err := w.Append("fp", 0, json.RawMessage(`[0]`), nil); err != nil {
		t.Fatal(err)
	}
}

// TestWALTruncatedTailTrimmed: a coordinator killed mid-append leaves a
// partial tail frame. Open must restore everything before it and trim the
// file back to the intact prefix so future appends extend cleanly.
func TestWALTruncatedTailTrimmed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Append("fp", 0, json.RawMessage(`[0]`), nil)
	w.Append("fp", 1, json.RawMessage(`[1]`), nil)
	w.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append: complete header promising more bytes than follow.
	fmt.Fprintf(f, "64\n{\"grid\":\"fp\",\"ce")
	f.Close()

	r, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Restored(); len(got) != 2 || got[1].Cell != 1 {
		t.Fatalf("restored %d records, want the 2 intact ones", len(got))
	}
	// The partial frame is gone; a new append lands on the intact prefix.
	if err := r.Append("fp", 2, json.RawMessage(`[2]`), nil); err != nil {
		t.Fatal(err)
	}
	r.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), string(intact)) {
		t.Fatal("trimmed journal lost its intact prefix")
	}
	r2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Restored(); len(got) != 3 || got[2].Cell != 2 {
		t.Fatalf("after trim+append: %d records, want 3 ending in cell 2", len(got))
	}
}

// TestDecodeWALTruncationAtEveryOffset is the crash-semantics sweep: a
// journal cut at ANY byte offset must decode without error to a prefix of
// the full record sequence, and the reported valid length must be a fixed
// point (re-decoding data[:validLen] reproduces exactly the same records
// and length). That is what makes SIGKILL at an arbitrary moment safe.
func TestDecodeWALTruncationAtEveryOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := CreateWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var wf stats.Welford
	wf.Add(1)
	wf.Add(2)
	for i := 0; i < 4; i++ {
		payload, _ := json.Marshal([]int{i, i * 10})
		if err := w.Append(fmt.Sprintf("fp-%d", i%2), i, payload,
			map[string]stats.State{"v": wf.State()}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full, n, err := decodeWAL(data)
	if err != nil || n != len(data) || len(full) != 4 {
		t.Fatalf("full image: %d records, validLen %d/%d, err %v", len(full), n, len(data), err)
	}

	for i := 0; i <= len(data); i++ {
		recs, valid, err := decodeWAL(data[:i])
		if err != nil {
			t.Fatalf("prefix %d: unexpected error %v", i, err)
		}
		if valid > i {
			t.Fatalf("prefix %d: validLen %d exceeds input", i, valid)
		}
		if len(recs) > len(full) {
			t.Fatalf("prefix %d: %d records from a %d-record image", i, len(recs), len(full))
		}
		for j := range recs {
			if !reflect.DeepEqual(recs[j], full[j]) {
				t.Fatalf("prefix %d: record %d differs from full decode", i, j)
			}
		}
		recs2, valid2, err2 := decodeWAL(data[:valid])
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("prefix %d: valid prefix not a fixed point: len %d→%d, err %v",
				i, valid, valid2, err2)
		}
	}
}

// TestDecodeWALRejectsGarbage: anything malformed other than a truncated
// tail is corruption and must fail loudly, including garbage after valid
// records.
func TestDecodeWALRejectsGarbage(t *testing.T) {
	rec := `{"grid":"fp","cell":0,"payload":1}`
	valid := fmt.Sprintf("%d\n%s\n", len(rec), rec)
	if recs, n, err := decodeWAL([]byte(valid)); err != nil || len(recs) != 1 || n != len(valid) {
		t.Fatalf("sanity: valid image did not decode: %d records, %v", len(recs), err)
	}
	for name, image := range map[string]string{
		"junk length":        "zap\n{}\n",
		"negative length":    "-4\n{}\n",
		"oversized length":   "9999999999999\n{}\n",
		"wrong terminator":   "2\n{}X",
		"invalid json":       "3\nnop\n",
		"garbage after tail": valid + "zap\n{}\n",
	} {
		if _, _, err := decodeWAL([]byte(image)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// OpenWAL propagates corruption rather than silently starting over.
	path := filepath.Join(t.TempDir(), "bad.wal")
	if err := os.WriteFile(path, []byte("zap\n{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path); err == nil {
		t.Error("corrupt journal opened")
	}
}

// TestResumeFromWALOnly is the tentpole's crash bar at the dist layer: a
// coordinator that NEVER saved a checkpoint (save interval effectively
// infinite) dies after two cells were journalled; a fresh coordinator
// resuming from the WAL alone must not re-execute them and must assemble
// a result deeply equal to an uninterrupted run.
func TestResumeFromWALOnly(t *testing.T) {
	g := testGrid([]uint64{1, 2})
	want, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "ckpt.json")
	walPath := ckptPath + ".wal"

	// Phase 1: journal two cells, then crash with no checkpoint ever saved.
	wal1, err := CreateWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCoordinator(Options{
		LeaseCells: 1, Checkpoint: NewCheckpoint(ckptPath),
		CheckpointEvery: 1 << 30, WAL: wal1,
	})
	errc := make(chan error, 1)
	go func() {
		_, err := ExecuteGrid(c1, &g)
		errc <- err
	}()
	dead := flakyWorker(t, c1, &g, 2)
	<-dead
	// Appends happen on the serve goroutine; wait for both to be durable.
	waitFor(t, func() bool {
		data, err := os.ReadFile(walPath)
		if err != nil {
			return false
		}
		recs, _, err := decodeWAL(data)
		return err == nil && len(recs) == 2
	})
	c1.Close()
	if err := <-errc; err == nil {
		t.Fatal("aborted campaign did not fail")
	}
	wal1.Close()
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file exists (%v); the test needs a WAL-only resume", err)
	}

	// Phase 2: resume from the journal alone.
	wal2, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := wal2.Restored(); len(got) != 2 {
		t.Fatalf("journal restored %d records, want 2", len(got))
	}
	c2 := NewCoordinator(Options{
		LeaseCells: 1, Checkpoint: NewCheckpoint(ckptPath), WAL: wal2, Logf: t.Logf,
	})
	var ran int32
	wdone := make(chan error, 1)
	cli, srv := net.Pipe()
	go c2.Serve(NewConn(srv))
	go func() {
		defer cli.Close()
		w, err := NewWorker(cli, "resumer")
		if err != nil {
			wdone <- err
			return
		}
		wdone <- w.ServeGrid(countingCells{GridCells{Plan: plan, Pool: pool.New(1)}, &ran})
	}()
	got, err := ExecuteGrid(c2, &g)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-wdone; err != nil {
		t.Fatalf("resuming worker: %v", err)
	}
	c2.Close()
	wal2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WAL-resumed result differs:\ngot  %+v\nwant %+v", got, want)
	}
	if n := atomic.LoadInt32(&ran); int(n) != plan.NumCells()-2 {
		t.Errorf("resume re-executed journalled cells: worker ran %d, want %d",
			n, plan.NumCells()-2)
	}
}
