package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"ripple/internal/stats"
)

// WAL is the coordinator's result write-ahead journal. The checkpoint is
// an atomic snapshot written every CheckpointEvery cells; the WAL closes
// the window between snapshots by journalling every delivered cell the
// moment it arrives, fsync'd before the coordinator proceeds. A resumed
// run replays the journal on top of the restored checkpoint, so a
// coordinator crash at any delivered-cell boundary loses nothing.
//
// Records use the same length-delimited JSON framing as the wire protocol
// (decimal byte count, '\n', JSON, '\n'), appended to one flat file. The
// append-only discipline gives the crash semantics: a coordinator killed
// mid-append leaves a truncated tail frame, which Open treats as the
// clean crash point — everything before it is intact — and trims. Frame
// garbage anywhere else means corruption and is a loud error.
type WAL struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	restored []walRecord
}

// walRecord is one journalled cell: grid fingerprint, flat cell index,
// the raw payload bytes exactly as the worker sent them, and the cell's
// per-metric Welford states.
type walRecord struct {
	Grid    string                 `json:"grid"`
	Cell    int                    `json:"cell"`
	Payload json.RawMessage        `json:"payload"`
	Stats   map[string]stats.State `json:"stats,omitempty"`
}

// CreateWAL starts a fresh journal at path, discarding any existing file.
func CreateWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: wal: %w", err)
	}
	return &WAL{path: path, f: f}, nil
}

// OpenWAL opens the journal at path for resumption, decoding the records
// already present. A missing file is an empty journal, not an error (a
// campaign interrupted before its first delivery has written nothing). A
// truncated tail frame — the coordinator died mid-append — marks the
// crash point: it is trimmed and everything before it restored. Garbage
// anywhere before the tail is corruption and fails loudly.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: wal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: wal: %w", err)
	}
	recs, valid, err := decodeWAL(data)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: wal %s: %w", path, err)
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("dist: wal: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: wal: %w", err)
	}
	return &WAL{path: path, f: f, restored: recs}, nil
}

// Restored returns the records decoded at Open time, in append order.
func (w *WAL) Restored() []walRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.restored
}

// encodeFrame appends one record's wire frame to buf.
func encodeFrame(buf *bytes.Buffer, r walRecord) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("dist: wal: %w", err)
	}
	fmt.Fprintf(buf, "%d\n", len(b))
	buf.Write(b)
	buf.WriteByte('\n')
	return nil
}

// Append journals one delivered cell and fsyncs before returning: once
// Append returns, the cell survives a crash.
func (w *WAL) Append(grid string, cell int, payload json.RawMessage, st map[string]stats.State) error {
	// One buffered write per record: a crash can truncate the tail frame
	// but never interleave two partial frames.
	var buf bytes.Buffer
	if err := encodeFrame(&buf, walRecord{Grid: grid, Cell: cell, Payload: payload, Stats: st}); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("dist: wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dist: wal: %w", err)
	}
	return nil
}

// Compact drops one grid's records from the journal. The coordinator
// calls it after every successful checkpoint save of that grid: the
// snapshot now covers them. Records of OTHER grids survive — a campaign's
// grids share one journal, and a previous incarnation's progress on a
// later grid must not be discarded when an earlier (fully restored) grid
// re-saves its snapshot. The rewrite is atomic (temp file + rename), so a
// crash mid-compaction leaves either the old journal or the new one,
// never a torn file.
func (w *WAL) Compact(grid string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var keep []walRecord
	for _, r := range w.restored {
		if r.Grid != grid {
			keep = append(keep, r)
		}
	}
	var buf bytes.Buffer
	for _, r := range keep {
		if err := encodeFrame(&buf, r); err != nil {
			return err
		}
	}
	return w.rewriteLocked(keep, buf.Bytes())
}

// Reset empties the journal entirely, discarding every grid's records.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rewriteLocked(nil, nil)
}

// rewriteLocked atomically replaces the journal's contents and restored
// view. Appends continue on the new file.
func (w *WAL) rewriteLocked(recs []walRecord, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(w.path), ".wal-*")
	if err != nil {
		return fmt.Errorf("dist: wal: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: wal: %w", err)
	}
	w.f.Close()
	w.f = tmp
	w.restored = recs
	return nil
}

// Close closes the journal file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// decodeWAL parses a journal image. It returns the complete records and
// the byte length they span. A truncated tail — a header without its
// newline at EOF, or a frame body shorter than its header promised — is
// the expected shape of a crash mid-append: not an error, the records
// before it are returned and validLen marks where the intact prefix ends.
// Anything else malformed (junk where the length belongs, a complete
// frame with a wrong terminator or invalid JSON) is corruption and
// returns an error.
func decodeWAL(data []byte) (recs []walRecord, validLen int, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return recs, off, nil // header cut short at EOF: crash point
		}
		header := strings.TrimSpace(string(data[off : off+nl]))
		n, aerr := strconv.Atoi(header)
		if aerr != nil || n < 0 || n > maxFrame {
			return nil, 0, fmt.Errorf("bad frame length %q at offset %d", header, off)
		}
		body := off + nl + 1
		if body+n+1 > len(data) {
			return recs, off, nil // body cut short at EOF: crash point
		}
		if data[body+n] != '\n' {
			return nil, 0, fmt.Errorf("frame at offset %d missing terminator", off)
		}
		var r walRecord
		if uerr := json.Unmarshal(data[body:body+n], &r); uerr != nil {
			return nil, 0, fmt.Errorf("bad frame at offset %d: %w", off, uerr)
		}
		recs = append(recs, r)
		off = body + n + 1
	}
	return recs, off, nil
}
