package dist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/stats"
)

// TestErrorTaxonomy pins the sentinel matrix: every typed error matches
// exactly the sentinels its class promises, wrapped causes stay reachable
// through Unwrap, and errors.As recovers the concrete type through
// fmt.Errorf wrapping.
func TestErrorTaxonomy(t *testing.T) {
	inner := errors.New("boom")
	cases := []struct {
		name string
		err  error
		is   []error
		not  []error
	}{
		{"cell", &CellError{Cell: 3, Err: inner},
			[]error{ErrCell}, []error{ErrCellPanic, ErrTransport, ErrProtocol}},
		{"panic", &CellPanicError{Cell: 3, Value: "v", Stack: "s"},
			[]error{ErrCell, ErrCellPanic}, []error{ErrTransport, ErrProtocol}},
		{"transport", &TransportError{Op: "recv", Err: inner},
			[]error{ErrTransport}, []error{ErrCell, ErrCellPanic, ErrProtocol}},
		{"protocol", &ProtocolError{Detail: "d"},
			[]error{ErrProtocol}, []error{ErrCell, ErrCellPanic, ErrTransport}},
	}
	for _, tc := range cases {
		for _, want := range tc.is {
			if !errors.Is(tc.err, want) {
				t.Errorf("%s: %v does not match %v", tc.name, tc.err, want)
			}
			// One wrapping layer must not break the match.
			if !errors.Is(fmt.Errorf("outer: %w", tc.err), want) {
				t.Errorf("%s: wrapped %v does not match %v", tc.name, tc.err, want)
			}
		}
		for _, not := range tc.not {
			if errors.Is(tc.err, not) {
				t.Errorf("%s: %v wrongly matches %v", tc.name, tc.err, not)
			}
		}
	}

	// Wrapped causes stay reachable.
	if !errors.Is(&CellError{Cell: 1, Err: inner}, inner) {
		t.Error("CellError does not unwrap to its cause")
	}
	if !errors.Is(&TransportError{Op: "recv", Err: io.ErrUnexpectedEOF}, io.ErrUnexpectedEOF) {
		t.Error("TransportError does not unwrap to its cause")
	}

	// errors.As through a wrapping layer.
	var te *TransportError
	if !errors.As(fmt.Errorf("outer: %w", &TransportError{Op: "send", Err: inner}), &te) ||
		te.Op != "send" {
		t.Errorf("errors.As(TransportError) = %+v", te)
	}
	var pe *CellPanicError
	if !errors.As(fmt.Errorf("outer: %w", &CellPanicError{Cell: 7, Value: "v"}), &pe) ||
		pe.Cell != 7 {
		t.Errorf("errors.As(CellPanicError) = %+v", pe)
	}
}

// TestRecvTruncationIsTransport pins the EOF split Recv promises: a clean
// EOF at a frame boundary stays bare io.EOF (a worker finishing its grid
// sequence), while death mid-frame is a transport failure wrapping
// io.ErrUnexpectedEOF — the bug class where a worker SIGKILLed mid-write
// used to read as a clean disconnect.
func TestRecvTruncationIsTransport(t *testing.T) {
	c := NewConn(bytes.NewBufferString(""))
	if _, err := c.Recv(); err != io.EOF {
		t.Errorf("empty stream: err = %v, want bare io.EOF", err)
	}

	for name, wire := range map[string]string{
		"mid-body":   "100\n{\"type\":\"cell\"}",
		"mid-header": "12",
	} {
		c := NewConn(bytes.NewBufferString(wire))
		_, err := c.Recv()
		if !errors.Is(err, ErrTransport) {
			t.Errorf("%s: err = %v, want ErrTransport", name, err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%s: err = %v, want io.ErrUnexpectedEOF in chain", name, err)
		}
		if errors.Is(err, io.EOF) {
			t.Errorf("%s: err = %v wrongly reads as clean EOF", name, err)
		}
	}
}

// panicCells panics at one cell instead of returning an error.
type panicCells struct {
	fakeCells
	boom int
}

func (p panicCells) RunCell(c int) (any, map[string]stats.State, error) {
	if c == p.boom {
		panic(fmt.Sprintf("cell %d blew up", c))
	}
	return p.fakeCells.RunCell(c)
}

// TestWorkerPanicIsolated: a cell that panics must fail only that cell —
// the worker goroutine recovers, reports a typed error with the stack to
// the coordinator, and returns normally instead of taking the process
// down. Both sides surface *CellPanicError matching ErrCellPanic and
// ErrCell.
func TestWorkerPanicIsolated(t *testing.T) {
	src := panicCells{fakeCells{fp: "kaboom", n: 4, fail: -1}, 2}
	c := NewCoordinator(Options{LeaseCells: 1})
	cli, srv := net.Pipe()
	go c.Serve(NewConn(srv))
	wdone := make(chan error, 1)
	go func() {
		defer cli.Close()
		w, err := NewWorker(cli, "w")
		if err != nil {
			wdone <- err
			return
		}
		wdone <- w.ServeGrid(src)
	}()

	_, err := c.RunGrid(GridSpec{Fingerprint: src.fp, NumCells: src.n, RunsPerCell: 1})
	var pe *CellPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("coordinator error = %v, want *CellPanicError", err)
	}
	if pe.Cell != 2 || !strings.Contains(pe.Value, "blew up") || pe.Stack == "" {
		t.Errorf("coordinator panic report = %+v, want cell 2 with value and stack", pe)
	}
	if !errors.Is(err, ErrCellPanic) || !errors.Is(err, ErrCell) {
		t.Errorf("coordinator error %v missing ErrCellPanic/ErrCell identity", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Errorf("coordinator error %v wrongly reads as transport failure", err)
	}

	// The worker survived the panic: ServeGrid returned (rather than the
	// process dying) with the same typed error.
	werr := <-wdone
	var wpe *CellPanicError
	if !errors.As(werr, &wpe) || wpe.Cell != 2 || wpe.Stack == "" {
		t.Fatalf("worker error = %v, want *CellPanicError for cell 2 with stack", werr)
	}
	if !errors.Is(werr, ErrCellPanic) {
		t.Errorf("worker error %v missing ErrCellPanic identity", werr)
	}
}

// stallCells wedges on one cell until released, signalling entry.
type stallCells struct {
	fakeCells
	stall   int
	entered func()
	release chan struct{}
}

func (s stallCells) RunCell(c int) (any, map[string]stats.State, error) {
	if c == s.stall {
		s.entered()
		<-s.release
	}
	return s.fakeCells.RunCell(c)
}

// TestCellStallPreempted: a worker wedged inside one cell, far short of
// the lease timeout, must not stall the campaign. The per-cell watchdog
// boosts the stalled lease — its cells are raced to another worker — and
// the grid completes with correct payloads; the wedged worker's eventual
// late delivery is deduped, and it still exits cleanly.
func TestCellStallPreempted(t *testing.T) {
	base := fakeCells{fp: "stall", n: 4, fail: -1}
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	stuck := stallCells{
		fakeCells: base,
		stall:     0,
		entered:   func() { once.Do(func() { close(entered) }) },
		release:   release,
	}

	c := NewCoordinator(Options{
		LeaseCells:  1,
		CellTimeout: 30 * time.Millisecond,
		Logf:        t.Logf,
	})
	wstuck := make(chan error, 1)
	cli1, srv1 := net.Pipe()
	go c.Serve(NewConn(srv1))
	go func() {
		defer cli1.Close()
		w, err := NewWorker(cli1, "stuck")
		if err != nil {
			wstuck <- err
			return
		}
		wstuck <- w.ServeGrid(stuck)
	}()

	type gridResult struct {
		out *GridOutput
		err error
	}
	resc := make(chan gridResult, 1)
	go func() {
		out, err := c.RunGrid(GridSpec{Fingerprint: base.fp, NumCells: base.n, RunsPerCell: 1})
		resc <- gridResult{out, err}
	}()
	<-entered // the stuck worker holds cell 0 and is wedged inside it

	var ran int32
	healthy := make(chan error, 1)
	cli2, srv2 := net.Pipe()
	go c.Serve(NewConn(srv2))
	go func() {
		defer cli2.Close()
		w, err := NewWorker(cli2, "healthy")
		if err != nil {
			healthy <- err
			return
		}
		healthy <- w.ServeGrid(countingCells{base, &ran})
	}()

	r := <-resc
	if r.err != nil {
		t.Fatal(r.err)
	}
	close(release) // un-wedge; the late delivery of cell 0 must be ignored
	if err := <-healthy; err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	if err := <-wstuck; err != nil {
		t.Fatalf("stuck worker: %v", err)
	}
	c.Close()

	for i, p := range r.out.Payloads {
		if string(p) != fmt.Sprintf("[%d]", i) {
			t.Errorf("payload %d = %s", i, p)
		}
	}
	// The healthy worker must have raced and won the stalled cell too.
	if n := atomic.LoadInt32(&ran); n != int32(base.n) {
		t.Errorf("healthy worker ran %d cells, want %d (including the raced cell 0)", n, base.n)
	}
}
