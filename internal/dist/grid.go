package dist

import (
	"encoding/json"
	"fmt"

	"ripple/internal/campaign"
	"ripple/internal/campaign/pool"
	"ripple/internal/network"
	"ripple/internal/stats"
)

// GridCells adapts a campaign.Plan to the worker-side CellSet interface.
// A cell's payload is its per-seed []*network.Result slice: every field
// is a float64 or integer, both of which round-trip Go JSON exactly, so
// the coordinator reassembles results bit-identical to an in-process
// run. The Welford states cover the standard summary metrics.
type GridCells struct {
	Plan *campaign.Plan
	Pool *pool.Pool // seed-level parallelism within a cell; nil = shared
}

// Fingerprint implements CellSet.
func (g GridCells) Fingerprint() string { return g.Plan.Fingerprint() }

// NumCells implements CellSet.
func (g GridCells) NumCells() int { return g.Plan.NumCells() }

// RunsPerCell implements CellSet.
func (g GridCells) RunsPerCell() int { return len(g.Plan.Seeds()) }

// RunCell implements CellSet: all seeds of one cell, plus the metric
// summary states the coordinator merges across cells.
func (g GridCells) RunCell(c int) (any, map[string]stats.State, error) {
	seeds, err := g.Plan.RunCell(c, g.Pool)
	if err != nil {
		return nil, nil, err
	}
	return seeds, ResultStats(seeds), nil
}

// ResultStats accumulates the standard metric vector over one cell's
// per-seed results. These states ride along with every cell for
// checkpoint summaries and coordinator-side merging; the authoritative
// table values still come from the payloads.
func ResultStats(seeds []*network.Result) map[string]stats.State {
	var total, fairness, events stats.Welford
	for _, r := range seeds {
		total.Add(r.TotalMbps)
		fairness.Add(r.Fairness)
		events.Add(float64(r.Events))
	}
	return map[string]stats.State{
		"total_mbps": total.State(),
		"fairness":   fairness.State(),
		"events":     events.State(),
	}
}

// CoordinatorRunGrid adapts a coordinator to the experiment layer's
// RunGrid hook: every grid an experiment driver declares is farmed out
// to the workers instead of running in-process.
func CoordinatorRunGrid(c *Coordinator) func(*campaign.Grid) (*campaign.Result, error) {
	return func(g *campaign.Grid) (*campaign.Result, error) {
		return ExecuteGrid(c, g)
	}
}

// WorkerRunGrid is the worker-side RunGrid hook: the process runs the
// same driver sequence as the coordinator, but each grid's cells execute
// as leased and stream over the connection; the nil result tells the
// driver there is no local table to fold. w is typically a Worker, or a
// Redialer when the connection should survive coordinator outages.
func WorkerRunGrid(w GridServer, pl *pool.Pool) func(*campaign.Grid) (*campaign.Result, error) {
	return func(g *campaign.Grid) (*campaign.Result, error) {
		plan, err := g.Plan()
		if err != nil {
			return nil, err
		}
		if err := w.ServeGrid(GridCells{Plan: plan, Pool: pl}); err != nil {
			return nil, err
		}
		return nil, nil
	}
}

// ExecuteGrid runs one campaign grid on the coordinator's workers and
// assembles the result a single-process g.Run() would have produced.
// This is the coordinator-side counterpart of ServeGrid(GridCells{...}).
func ExecuteGrid(c *Coordinator, g *campaign.Grid) (*campaign.Result, error) {
	plan, err := g.Plan()
	if err != nil {
		return nil, err
	}
	out, err := c.RunGrid(GridSpec{
		Fingerprint: plan.Fingerprint(),
		NumCells:    plan.NumCells(),
		RunsPerCell: len(plan.Seeds()),
		Progress:    g.Progress,
	})
	if err != nil {
		return nil, err
	}
	perCell := make([][]*network.Result, plan.NumCells())
	for i, raw := range out.Payloads {
		if err := json.Unmarshal(raw, &perCell[i]); err != nil {
			return nil, fmt.Errorf("dist: grid %s cell %d payload: %w", plan.Fingerprint(), i, err)
		}
	}
	return plan.Assemble(perCell)
}
