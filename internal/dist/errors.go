package dist

import (
	"errors"
	"fmt"
)

// The error taxonomy of the distributed layer. Every error crossing a
// package boundary matches exactly one sentinel via errors.Is, and the
// coordinator's requeue-vs-poison decision reads directly off it:
//
//   - ErrTransport: the byte stream failed (connection loss, truncation,
//     stream corruption). The work itself is untainted — the coordinator
//     requeues the connection's leases and a Redialer retries.
//   - ErrProtocol: the peer spoke the protocol wrong (version mismatch,
//     unexpected message type). Deterministic; never retried.
//   - ErrCell: a cell failed by construction (config error, marshal
//     failure). Deterministic, poisons the campaign; never retried.
//   - ErrCellPanic: a cell panicked. A sub-case of ErrCell (same
//     poison/no-retry handling) that additionally carries the stack.
//
// ErrShutdown stays outside the taxonomy: it is the normal end-of-campaign
// signal, not a failure.

// ErrShutdown reports that the coordinator ended the campaign while this
// worker was asking for more cells — normal when the coordinator's grid
// sequence is over, an error if the worker still had grids to serve.
var ErrShutdown = errors.New("dist: coordinator shut down")

// ErrCell matches deterministic cell-execution failures so transport-level
// recovery (Redialer) can tell them apart from connection loss: a cell
// that fails by construction fails identically on every retry, and the
// coordinator has already been poisoned by the error report.
var ErrCell = errors.New("dist: cell failed")

// ErrCellPanic matches cells that panicked rather than returned an error.
// Every ErrCellPanic also matches ErrCell (panics are deterministic cell
// failures too); the concrete *CellPanicError carries the stack.
var ErrCellPanic = errors.New("dist: cell panicked")

// ErrTransport matches byte-stream failures: io errors, truncation, frame
// corruption. Transport errors are the retryable class — the work is
// untainted, only the connection is.
var ErrTransport = errors.New("dist: transport failed")

// ErrProtocol matches semantic protocol violations: a handshake version
// mismatch or an unexpected message type. Deterministic; retrying would
// fail identically.
var ErrProtocol = errors.New("dist: protocol violation")

// CellError is a deterministic cell-execution failure, carrying the flat
// cell index for the coordinator's report.
type CellError struct {
	Cell int
	Err  error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("dist: cell %d failed: %v", e.Cell, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Is matches ErrCell.
func (e *CellError) Is(target error) bool { return target == ErrCell }

// CellPanicError is a cell that panicked; Value is the panic value's
// string form and Stack the goroutine stack at the point of the panic.
// The panic is confined to the cell: the worker process survives and its
// lease is resolved through the normal error report, not orphaned.
type CellPanicError struct {
	Cell  int
	Value string
	Stack string
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("dist: cell %d panicked: %s", e.Cell, e.Value)
}

// Is matches both ErrCellPanic and ErrCell: a panic is handled as a
// deterministic cell failure everywhere retry decisions are made.
func (e *CellPanicError) Is(target error) bool {
	return target == ErrCellPanic || target == ErrCell
}

// TransportError is a byte-stream failure during Op ("send", "recv",
// "hello", ...). It wraps the underlying io error, so callers can still
// reach io.ErrUnexpectedEOF and friends through errors.Is.
type TransportError struct {
	Op  string
	Err error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("dist: %s: %v", e.Op, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Is matches ErrTransport.
func (e *TransportError) Is(target error) bool { return target == ErrTransport }

// ProtocolError is a semantic protocol violation.
type ProtocolError struct {
	Detail string
}

func (e *ProtocolError) Error() string { return "dist: protocol: " + e.Detail }

// Is matches ErrProtocol.
func (e *ProtocolError) Is(target error) bool { return target == ErrProtocol }
