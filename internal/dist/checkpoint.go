package dist

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"ripple/internal/stats"
)

// checkpointVersion is the on-disk format version; a mismatch is a hard
// error rather than a guess at migration.
const checkpointVersion = 1

// cellRecord is one completed cell as stored in a checkpoint: the raw
// payload bytes exactly as the worker sent them (so a resumed campaign
// reassembles bit-identical results) plus the per-metric Welford states.
type cellRecord struct {
	Payload json.RawMessage        `json:"payload"`
	Stats   map[string]stats.State `json:"stats,omitempty"`
}

// gridCheckpoint is the persisted state of one grid, keyed by its
// fingerprint in the enclosing document. Done is the completed-cell
// bitmap (LSB-first within each byte, base64-encoded); Cells holds one
// record per set bit, keyed by decimal cell index. Merged is the
// campaign-order merge of every completed cell's metric states — a
// summary for inspection, recomputed on every write so it never drifts
// from the cell records.
type gridCheckpoint struct {
	NumCells int                    `json:"num_cells"`
	Done     string                 `json:"done"`
	Cells    map[string]cellRecord  `json:"cells"`
	Merged   map[string]stats.State `json:"merged,omitempty"`
}

// checkpointDoc is the whole checkpoint file: one entry per grid the
// campaign has started, keyed by grid fingerprint. A campaign is a
// sequence of grids, so a resumed run skips the complete ones and
// back-fills the partial one.
type checkpointDoc struct {
	Version int                        `json:"version"`
	Grids   map[string]*gridCheckpoint `json:"grids"`
}

// Checkpoint persists campaign progress. Every save rewrites the whole
// document to a temp file and renames it into place, so the file on disk
// is always a complete, parseable snapshot — a coordinator killed
// mid-save leaves the previous snapshot intact.
type Checkpoint struct {
	path string
	mu   sync.Mutex
	doc  checkpointDoc
}

// NewCheckpoint starts a fresh checkpoint at path. Nothing is written
// until the first save.
func NewCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path, doc: checkpointDoc{
		Version: checkpointVersion,
		Grids:   map[string]*gridCheckpoint{},
	}}
}

// LoadCheckpoint reads an existing checkpoint for resumption. A missing,
// unparseable or wrong-version file is a loud error: resuming from a
// corrupt checkpoint silently would discard or duplicate work.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dist: resume: %w", err)
	}
	ck := &Checkpoint{path: path}
	if err := json.Unmarshal(data, &ck.doc); err != nil {
		return nil, fmt.Errorf("dist: resume %s: corrupt checkpoint: %w", path, err)
	}
	if ck.doc.Version != checkpointVersion {
		return nil, fmt.Errorf("dist: resume %s: checkpoint version %d, want %d",
			path, ck.doc.Version, checkpointVersion)
	}
	if ck.doc.Grids == nil {
		ck.doc.Grids = map[string]*gridCheckpoint{}
	}
	for fp, g := range ck.doc.Grids {
		// A null grid entry or negative cell count parses as valid JSON but
		// would panic in restore; reject it at load time with the rest of
		// the corruption classes.
		if g == nil || g.NumCells < 0 {
			return nil, fmt.Errorf("dist: resume %s: grid %s: corrupt grid record", path, fp)
		}
	}
	return ck, nil
}

// Path returns the checkpoint's file path.
func (ck *Checkpoint) Path() string { return ck.path }

// restore returns the completed cells recorded for grid fp, validating
// internal consistency: the bitmap, cell-record keys and declared cell
// count must agree, and every index must be in range. numCells is the
// resuming campaign's cell count for the same fingerprint; a mismatch
// means the checkpoint came from a different campaign definition.
func (ck *Checkpoint) restore(fp string, numCells int) (done []bool, cells []cellRecord, err error) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	g, ok := ck.doc.Grids[fp]
	if !ok {
		return nil, nil, nil
	}
	if g.NumCells != numCells {
		return nil, nil, fmt.Errorf("dist: resume %s: grid %s has %d cells, checkpoint recorded %d",
			ck.path, fp, numCells, g.NumCells)
	}
	bitmap, err := base64.StdEncoding.DecodeString(g.Done)
	if err != nil || len(bitmap) != (numCells+7)/8 {
		return nil, nil, fmt.Errorf("dist: resume %s: grid %s: corrupt done bitmap", ck.path, fp)
	}
	done = make([]bool, numCells)
	cells = make([]cellRecord, numCells)
	marked := 0
	for i := range done {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			done[i] = true
			marked++
		}
	}
	if marked != len(g.Cells) {
		return nil, nil, fmt.Errorf("dist: resume %s: grid %s: bitmap marks %d cells but %d records present",
			ck.path, fp, marked, len(g.Cells))
	}
	for key, rec := range g.Cells {
		i, err := parseCellIndex(key, numCells)
		if err != nil {
			return nil, nil, fmt.Errorf("dist: resume %s: grid %s: %w", ck.path, fp, err)
		}
		if !done[i] {
			return nil, nil, fmt.Errorf("dist: resume %s: grid %s: cell %d recorded but not marked done",
				ck.path, fp, i)
		}
		if len(rec.Payload) == 0 {
			return nil, nil, fmt.Errorf("dist: resume %s: grid %s: cell %d has empty payload",
				ck.path, fp, i)
		}
		cells[i] = rec
	}
	return done, cells, nil
}

// parseCellIndex accepts only the canonical decimal form: "01" or "1x"
// would alias another key's index, letting a hostile document mark a cell
// done while smuggling its record under a duplicate.
func parseCellIndex(key string, numCells int) (int, error) {
	i, err := strconv.Atoi(key)
	if err != nil || i < 0 || i >= numCells || strconv.Itoa(i) != key {
		return 0, fmt.Errorf("bad cell index %q", key)
	}
	return i, nil
}

// save records grid fp's current progress and atomically rewrites the
// file. The merged summary is recomputed from scratch in cell-index
// order, so its value is deterministic regardless of the order cells
// actually arrived in.
func (ck *Checkpoint) save(fp string, numCells int, done []bool, cells []cellRecord) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	bitmap := make([]byte, (numCells+7)/8)
	records := make(map[string]cellRecord)
	merged := map[string]*stats.Welford{}
	for i, ok := range done {
		if !ok {
			continue
		}
		bitmap[i/8] |= 1 << (i % 8)
		records[fmt.Sprintf("%d", i)] = cells[i]
		for name, st := range cells[i].Stats {
			w, ok := merged[name]
			if !ok {
				w = &stats.Welford{}
				merged[name] = w
			}
			w.Merge(stats.FromState(st))
		}
	}
	g := &gridCheckpoint{
		NumCells: numCells,
		Done:     base64.StdEncoding.EncodeToString(bitmap),
		Cells:    records,
	}
	if len(merged) > 0 {
		g.Merged = map[string]stats.State{}
		for name, w := range merged {
			g.Merged[name] = w.State()
		}
	}
	ck.doc.Grids[fp] = g
	return ck.writeLocked()
}

// writeLocked serializes the document to a sibling temp file and renames
// it over the checkpoint path. Caller holds ck.mu.
func (ck *Checkpoint) writeLocked() error {
	data, err := json.Marshal(&ck.doc)
	if err != nil {
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	dir := filepath.Dir(ck.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(ck.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), ck.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	return nil
}
