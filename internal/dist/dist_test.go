package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/campaign"
	"ripple/internal/campaign/pool"
	"ripple/internal/network"
	"ripple/internal/sim"
	"ripple/internal/stats"
	"ripple/internal/topology"
)

// testGrid is a small but real scheme × hops campaign, the same shape the
// campaign package tests with.
func testGrid(seeds []uint64) campaign.Grid {
	schemes := []network.SchemeKind{network.DCF, network.Ripple}
	hops := []int{2, 3}
	return campaign.Grid{
		Name: "dist-line",
		Axes: []campaign.Axis{
			campaign.A("scheme", "DCF", "RIPPLE"),
			campaign.A("hops", "2", "3"),
		},
		Seeds:    seeds,
		Duration: 200 * sim.Millisecond,
		Pool:     pool.New(1),
		Build: func(pt campaign.Point) (network.Config, error) {
			top, path := topology.Line(hops[pt.Index("hops")])
			return network.Config{
				Positions: top.Positions,
				Scheme:    schemes[pt.Index("scheme")],
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
			}, nil
		},
	}
}

// startWorker runs a well-behaved worker over an in-process pipe, serving
// the given grids in order, and reports its final error on the channel.
func startWorker(c *Coordinator, name string, grids []*campaign.Grid) chan error {
	errc := make(chan error, 1)
	cli, srv := net.Pipe()
	go c.Serve(NewConn(srv))
	go func() {
		defer cli.Close()
		w, err := NewWorker(cli, name)
		if err != nil {
			errc <- err
			return
		}
		for _, g := range grids {
			plan, err := g.Plan()
			if err != nil {
				errc <- err
				return
			}
			if err := w.ServeGrid(GridCells{Plan: plan, Pool: pool.New(1)}); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	return errc
}

// TestDistributedEqualsRun is the subsystem's correctness bar: a
// two-grid campaign executed by two workers over the wire protocol must
// assemble results deeply equal to uninterrupted in-process runs —
// same per-seed results, same means, same order.
func TestDistributedEqualsRun(t *testing.T) {
	g1 := testGrid([]uint64{1, 2})
	g2 := testGrid([]uint64{3})
	g2.Name = "dist-line-b" // distinct fingerprint
	want1, err := g1.Run()
	if err != nil {
		t.Fatal(err)
	}
	want2, err := g2.Run()
	if err != nil {
		t.Fatal(err)
	}

	c := NewCoordinator(Options{LeaseCells: 1})
	w1 := startWorker(c, "w1", []*campaign.Grid{&g1, &g2})
	w2 := startWorker(c, "w2", []*campaign.Grid{&g1, &g2})

	got1, err := ExecuteGrid(c, &g1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ExecuteGrid(c, &g2)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-w1; err != nil {
		t.Fatalf("worker 1: %v", err)
	}
	if err := <-w2; err != nil {
		t.Fatalf("worker 2: %v", err)
	}
	c.Close()

	if !reflect.DeepEqual(got1, want1) {
		t.Errorf("grid 1 differs from in-process run:\ngot  %+v\nwant %+v", got1, want1)
	}
	if !reflect.DeepEqual(got2, want2) {
		t.Errorf("grid 2 differs from in-process run:\ngot  %+v\nwant %+v", got2, want2)
	}
}

// flakyWorker speaks the protocol by hand: it delivers quota cells, then
// dies mid-record — it declares a frame longer than what it writes and
// slams the connection, exactly what a SIGKILLed worker leaves on the
// wire.
func flakyWorker(t *testing.T, c *Coordinator, g *campaign.Grid, quota int) chan struct{} {
	t.Helper()
	done := make(chan struct{})
	cli, srv := net.Pipe()
	go c.Serve(NewConn(srv))
	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	fp := plan.Fingerprint()
	go func() {
		defer close(done)
		defer cli.Close()
		conn := NewConn(cli)
		if err := conn.Send(&Message{Type: MsgHello, Proto: ProtoVersion, Worker: "flaky"}); err != nil {
			return
		}
		delivered := 0
		for {
			if err := conn.Send(&Message{Type: MsgReady, Grid: fp}); err != nil {
				return
			}
			m, err := conn.Recv()
			if err != nil || m.Type != MsgLease {
				return
			}
			for _, cell := range m.Cells {
				seeds, err := plan.RunCell(cell, pool.New(1))
				if err != nil {
					return
				}
				raw, _ := json.Marshal(seeds)
				if delivered == quota {
					// Truncated frame: promise more bytes than we send.
					fmt.Fprintf(cli, "%d\n", len(raw)+64)
					cli.Write(raw[:len(raw)/2])
					return
				}
				if err := conn.Send(&Message{Type: MsgCell, Grid: fp, Lease: m.Lease,
					Cell: cell, Payload: raw, Stats: ResultStats(seeds)}); err != nil {
					return
				}
				delivered++
			}
		}
	}()
	return done
}

// TestWorkerLossReassigned kills a worker mid-lease and mid-record and
// checks the coordinator hands the forfeited cells to the surviving
// worker, with the final table identical to a single-process run.
func TestWorkerLossReassigned(t *testing.T) {
	g := testGrid([]uint64{1, 2})
	want, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(Options{LeaseCells: 1, Logf: t.Logf})
	type gridResult struct {
		res *campaign.Result
		err error
	}
	resc := make(chan gridResult, 1)
	go func() {
		res, err := ExecuteGrid(c, &g)
		resc <- gridResult{res, err}
	}()
	dead := flakyWorker(t, c, &g, 1) // one good cell, then dies mid-record
	<-dead                           // coordinator must recover with no live copy of the lease
	healthy := startWorker(c, "healthy", []*campaign.Grid{&g})

	r := <-resc
	got, err := r.res, r.err
	if err != nil {
		t.Fatal(err)
	}
	if err := <-healthy; err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	c.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-fault result differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestLeaseTimeoutReassigned covers the stall (not crash) failure: a
// worker takes a lease, never delivers, but keeps its connection open.
// Only the lease timeout can recover the cells.
func TestLeaseTimeoutReassigned(t *testing.T) {
	g := testGrid([]uint64{1})
	want, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(Options{LeaseCells: 1, LeaseTimeout: 50 * time.Millisecond, Logf: t.Logf})
	type gridResult struct {
		res *campaign.Result
		err error
	}
	resc := make(chan gridResult, 1)
	go func() {
		res, err := ExecuteGrid(c, &g)
		resc <- gridResult{res, err}
	}()

	// Stalled worker: handshake, take one lease, then hold the connection
	// open without ever delivering.
	leased := make(chan struct{})
	release := make(chan struct{})
	cli, srv := net.Pipe()
	go c.Serve(NewConn(srv))
	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer cli.Close()
		conn := NewConn(cli)
		conn.Send(&Message{Type: MsgHello, Proto: ProtoVersion, Worker: "stalled"})
		conn.Send(&Message{Type: MsgReady, Grid: plan.Fingerprint()})
		if m, err := conn.Recv(); err != nil || m.Type != MsgLease {
			t.Errorf("stalled worker: got %v, %v", m, err)
		}
		close(leased)
		<-release
	}()
	<-leased
	healthy := startWorker(c, "healthy", []*campaign.Grid{&g})

	r := <-resc
	got, err := r.res, r.err
	if err != nil {
		t.Fatal(err)
	}
	if err := <-healthy; err != nil {
		t.Fatalf("healthy worker: %v", err)
	}
	close(release)
	c.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-timeout result differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// countingCells wraps a CellSet and counts executed cells.
type countingCells struct {
	CellSet
	n *int32
}

func (c countingCells) RunCell(i int) (any, map[string]stats.State, error) {
	atomic.AddInt32(c.n, 1)
	return c.CellSet.RunCell(i)
}

// TestCheckpointResume interrupts a checkpointing campaign after two
// cells, then resumes it from the file with a fresh coordinator: the
// restored cells must not re-execute and the assembled result must be
// deeply equal to an uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	g := testGrid([]uint64{1, 2})
	want, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.json")

	// Phase 1: record exactly two cells, then lose the worker and abort
	// the coordinator (as preemption would).
	c1 := NewCoordinator(Options{
		LeaseCells: 1, CheckpointEvery: 1, Checkpoint: NewCheckpoint(path),
	})
	errc := make(chan error, 1)
	go func() {
		_, err := ExecuteGrid(c1, &g)
		errc <- err
	}()
	dead := flakyWorker(t, c1, &g, 2)
	<-dead
	// The second cell's record (and its every-cell checkpoint save)
	// happens on the serve goroutine; wait for it to land in the file.
	waitFor(t, func() bool {
		ck, err := LoadCheckpoint(path)
		if err != nil {
			return false
		}
		done, _, err := ck.restore(plan.Fingerprint(), plan.NumCells())
		if err != nil {
			return false
		}
		n := 0
		for _, ok := range done {
			if ok {
				n++
			}
		}
		return n == 2
	})
	c1.Close()
	if err := <-errc; err == nil {
		t.Fatal("aborted campaign did not fail")
	}

	// Phase 2: resume. The worker must only execute the remaining cells.
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCoordinator(Options{LeaseCells: 1, Checkpoint: ck, Logf: t.Logf})
	var ran int32
	wdone := make(chan error, 1)
	cli, srv := net.Pipe()
	go c2.Serve(NewConn(srv))
	go func() {
		defer cli.Close()
		w, err := NewWorker(cli, "resumer")
		if err != nil {
			wdone <- err
			return
		}
		wdone <- w.ServeGrid(countingCells{GridCells{Plan: plan, Pool: pool.New(1)}, &ran})
	}()
	got, err := ExecuteGrid(c2, &g)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-wdone; err != nil {
		t.Fatalf("resuming worker: %v", err)
	}
	c2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed result differs:\ngot  %+v\nwant %+v", got, want)
	}
	if n := atomic.LoadInt32(&ran); int(n) != plan.NumCells()-2 {
		t.Errorf("resume re-executed cells: worker ran %d, want %d", n, plan.NumCells()-2)
	}

	// Phase 3: the checkpoint now records a complete grid; running it
	// again needs no workers at all.
	ck3, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	c3 := NewCoordinator(Options{Checkpoint: ck3})
	again, err := ExecuteGrid(c3, &g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Errorf("fully restored result differs from run")
	}
}

func waitFor(t *testing.T, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCheckpointRejectsCorruption pins the loud-failure contract for
// damaged or mismatched checkpoints.
func TestCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")

	// Build a valid checkpoint from a fake 3-cell grid.
	ck := NewCheckpoint(path)
	done := []bool{true, true, true}
	cells := make([]cellRecord, 3)
	for i := range cells {
		cells[i] = cellRecord{Payload: json.RawMessage(fmt.Sprintf("[%d]", i))}
	}
	if err := ck.save("fp-a", 3, done, cells); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing checkpoint loaded")
	}

	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loaded.restore("fp-a", 4); err == nil ||
		!strings.Contains(err.Error(), "cells") {
		t.Errorf("cell-count mismatch accepted: %v", err)
	}
	if d, _, err := loaded.restore("fp-unknown", 3); err != nil || d != nil {
		t.Errorf("unknown grid should restore empty, got %v, %v", d, err)
	}

	// Truncated file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Errorf("truncated checkpoint loaded: %v", err)
	}

	// Wrong version.
	if err := os.WriteFile(path, []byte(`{"version":99,"grids":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("wrong-version checkpoint loaded: %v", err)
	}

	// Bitmap and records disagreeing.
	if err := ck.save("fp-a", 3, done, cells); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	grid := doc["grids"].(map[string]any)["fp-a"].(map[string]any)
	delete(grid["cells"].(map[string]any), "1")
	mangled, _ := json.Marshal(doc)
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loaded.restore("fp-a", 3); err == nil {
		t.Error("bitmap/record mismatch accepted")
	}
}

// fakeCells is a trivial CellSet for protocol-level tests.
type fakeCells struct {
	fp   string
	n    int
	fail int // cell index that errors; -1 for none
}

func (f fakeCells) Fingerprint() string { return f.fp }
func (f fakeCells) NumCells() int       { return f.n }
func (f fakeCells) RunsPerCell() int    { return 1 }
func (f fakeCells) RunCell(c int) (any, map[string]stats.State, error) {
	if c == f.fail {
		return nil, nil, fmt.Errorf("cell %d exploded", c)
	}
	var w stats.Welford
	w.Add(float64(c))
	return []int{c}, map[string]stats.State{"v": w.State()}, nil
}

// TestWorkerErrorPoisonsCampaign: a deterministic cell failure must fail
// both sides loudly, not hang or get silently retried forever.
func TestWorkerErrorPoisonsCampaign(t *testing.T) {
	src := fakeCells{fp: "boom", n: 4, fail: 2}
	c := NewCoordinator(Options{LeaseCells: 1})
	cli, srv := net.Pipe()
	go c.Serve(NewConn(srv))
	wdone := make(chan error, 1)
	go func() {
		defer cli.Close()
		w, err := NewWorker(cli, "w")
		if err != nil {
			wdone <- err
			return
		}
		wdone <- w.ServeGrid(src)
	}()
	_, err := c.RunGrid(GridSpec{Fingerprint: src.fp, NumCells: src.n, RunsPerCell: 1})
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("coordinator error = %v", err)
	}
	if err := <-wdone; err == nil {
		t.Fatal("worker did not surface the cell error")
	}
}

// TestGridOutputStatsMerged checks the coordinator's merged metric plane:
// cell states merged in index order must equal a serial accumulation.
func TestGridOutputStatsMerged(t *testing.T) {
	src := fakeCells{fp: "stats", n: 10, fail: -1}
	c := NewCoordinator(Options{LeaseCells: 3})
	cli, srv := net.Pipe()
	go c.Serve(NewConn(srv))
	wdone := make(chan error, 1)
	go func() {
		defer cli.Close()
		w, err := NewWorker(cli, "w")
		if err != nil {
			wdone <- err
			return
		}
		wdone <- w.ServeGrid(src)
	}()
	out, err := c.RunGrid(GridSpec{Fingerprint: src.fp, NumCells: src.n, RunsPerCell: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-wdone; err != nil {
		t.Fatal(err)
	}
	c.Close()
	var want stats.Welford
	for i := 0; i < src.n; i++ {
		want.Add(float64(i))
	}
	if got := stats.FromState(out.Stats["v"]); got != want {
		t.Errorf("merged stats = %+v, want %+v", got, want)
	}
	for i, p := range out.Payloads {
		if string(p) != fmt.Sprintf("[%d]", i) {
			t.Errorf("payload %d = %s", i, p)
		}
	}
}

// TestConnFraming pins the wire format: length-delimited JSON with a
// trailing newline, truncation and garbage detected as errors.
func TestConnFraming(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	msg := &Message{Type: MsgCell, Grid: "g", Lease: 3, Cell: 7,
		Payload: json.RawMessage(`{"x":1}`)}
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	// Frame = "<len>\n<json>\n".
	wire := buf.String()
	nl := strings.IndexByte(wire, '\n')
	if nl < 0 {
		t.Fatalf("no length line in %q", wire)
	}
	body := wire[nl+1:]
	if fmt.Sprintf("%d", len(body)-1) != wire[:nl] || !strings.HasSuffix(body, "\n") {
		t.Fatalf("bad framing: %q", wire)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != msg.Type || got.Cell != 7 || string(got.Payload) != `{"x":1}` {
		t.Fatalf("round trip = %+v", got)
	}

	for name, wire := range map[string]string{
		"truncated":  "100\n{\"type\":\"cell\"}\n",
		"bad length": "zap\n{}\n",
		"negative":   "-4\n{}\n",
		"no newline": "2\n{}",
	} {
		c := NewConn(bytes.NewBufferString(wire))
		if _, err := c.Recv(); err == nil {
			t.Errorf("%s frame accepted", name)
		}
	}
}

// TestSpawnWorkersValidates covers the argument guards; real process
// spawning is exercised by the cmd/experiments end-to-end test.
func TestSpawnWorkersValidates(t *testing.T) {
	c := NewCoordinator(Options{})
	if _, err := SpawnWorkers(c, 0, []string{"true"}, nil); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := SpawnWorkers(c, 1, nil, nil); err == nil {
		t.Error("empty argv accepted")
	}
}

// TestListenDial exercises the TCP transport end to end with fakeCells.
func TestListenDial(t *testing.T) {
	src := fakeCells{fp: "tcp", n: 6, fail: -1}
	c := NewCoordinator(Options{LeaseCells: 2})
	addr, stop, err := Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, closer, err := Dial(addr.String(), fmt.Sprintf("tcp-%d", i))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer closer.Close()
			if err := w.ServeGrid(src); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	out, err := c.RunGrid(GridSpec{Fingerprint: src.fp, NumCells: src.n, RunsPerCell: 1})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	c.Close()
	for i, p := range out.Payloads {
		if string(p) != fmt.Sprintf("[%d]", i) {
			t.Errorf("payload %d = %s", i, p)
		}
	}
}
