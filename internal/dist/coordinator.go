package dist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"ripple/internal/stats"
)

// Options tunes a Coordinator. The zero value works: leases are sized
// automatically, stalled workers time out after two minutes, and no
// checkpoint is written.
type Options struct {
	// LeaseCells is the number of cells handed out per lease; 0 sizes
	// leases automatically from the grid (small enough that a lost worker
	// forfeits little work, large enough to amortize the round-trip).
	LeaseCells int
	// LeaseTimeout reclaims a lease when its worker has neither finished
	// it nor delivered a cell for this long. 0 means two minutes.
	LeaseTimeout time.Duration
	// Checkpoint, when set, persists completed cells so an interrupted
	// campaign can resume. CheckpointEvery is the number of newly
	// completed cells between saves (0 means 64); a final save always
	// happens when a grid completes.
	Checkpoint      *Checkpoint
	CheckpointEvery int
	// WAL, when set, journals every delivered cell the moment it arrives
	// (fsync'd), closing the window between checkpoint saves: a coordinator
	// crash loses nothing that a worker already delivered. RunGrid replays
	// the journal on top of the restored checkpoint, and each successful
	// checkpoint save resets it.
	WAL *WAL
	// CellTimeout is a per-cell wall-clock deadline: a lease whose worker
	// has not delivered a cell for this long is preemptively boosted — its
	// remaining cells are copied back onto the queue so another worker can
	// race it, first completion winning through the normal dedup. 0 derives
	// the deadline from observed cell durations (8× a running average),
	// falling back to no boost until the first cell completes.
	CellTimeout time.Duration
	// Logf reports worker churn (connects, losses, lease reclaims);
	// nil discards.
	Logf func(format string, args ...any)
}

// exitAfterEnv is a test hook: when set to a positive integer, the
// coordinator force-saves its checkpoint and hard-exits the process
// (exit code 42, no deferred cleanup) after recording that many cells.
// The checkpoint/resume end-to-end tests use it to simulate preemption
// at a deterministic point.
const exitAfterEnv = "RIPPLE_DIST_EXIT_AFTER"

// killExitCode is the exit code of the self-kill test hook above.
const killExitCode = 42

// crashAfterEnv is the harsher sibling of exitAfterEnv: the coordinator
// hard-exits after recording that many cells WITHOUT saving a checkpoint
// first, so the freshly recorded cells survive only in the WAL. The count
// is per process, and the variable is inherited by supervised restarts —
// each incarnation crashes again after that many more cells, exercising
// repeated crash/replay cycles until the grid completes.
const crashAfterEnv = "RIPPLE_DIST_CRASH_AFTER"

// ErrClosed reports a coordinator shut down before the grid finished.
var ErrClosed = errors.New("dist: coordinator closed")

// Coordinator shards grids across worker connections. A campaign is a
// sequence of grids: RunGrid is called once per grid, in order, while
// Serve runs per worker connection; workers announce which grid they
// have reached (by fingerprint) and the coordinator leases cells of the
// current grid, holding early arrivals until it catches up.
type Coordinator struct {
	opt Options

	mu        sync.Mutex
	cond      *sync.Cond
	completed map[string]*GridOutput // finished grids, by fingerprint
	cur       *gridRun               // grid currently executing, if any
	closed    bool
	failure   error // first fatal worker error, poisons the campaign

	killAfter  int // exitAfterEnv hook; 0 = disabled
	crashAfter int // crashAfterEnv hook; 0 = disabled
	recorded   int // cells recorded this process (not restored ones)
}

// gridRun is the in-flight state of one grid.
type gridRun struct {
	fp          string
	numCells    int
	runsPerCell int
	queue       []int // cells awaiting a lease
	leases      map[int]*lease
	nextLease   int
	done        []bool
	doneCount   int
	cells       []cellRecord // payload+stats per completed cell
	sinceSave   int
	progress    func(done, total int)
	// cellEWMA is a running average of observed cell wall-clock durations
	// (measured delivery-to-delivery per lease), feeding the stall
	// detector's derived deadline when Options.CellTimeout is zero.
	cellEWMA time.Duration
}

// lease is an outstanding assignment of cells to one connection.
type lease struct {
	id      int
	cells   []int // not yet delivered
	owner   *Conn
	expires time.Time
	lastAt  time.Time // grant or most recent delivery, for stall detection
	boosted bool      // remaining cells already copied back to the queue
}

// GridOutput is a completed grid: one raw payload per cell, exactly as
// the workers sent them, plus the per-metric Welford states merged in
// cell-index order (deterministic regardless of delivery order).
type GridOutput struct {
	Payloads [][]byte
	Stats    map[string]stats.State
}

// NewCoordinator creates a coordinator ready to Serve connections and
// RunGrid campaigns.
func NewCoordinator(opt Options) *Coordinator {
	if opt.LeaseTimeout <= 0 {
		opt.LeaseTimeout = 2 * time.Minute
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 64
	}
	c := &Coordinator{opt: opt, completed: map[string]*GridOutput{}}
	c.cond = sync.NewCond(&c.mu)
	if v := os.Getenv(exitAfterEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			c.killAfter = n
		}
	}
	if v := os.Getenv(crashAfterEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			c.crashAfter = n
		}
	}
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// GridSpec identifies one grid of the campaign sequence.
type GridSpec struct {
	Fingerprint string
	NumCells    int
	RunsPerCell int
	// Progress, if set, is called after every completed cell with counts
	// in runs (cells × runs per cell), matching campaign.Grid.Progress.
	Progress func(done, total int)
}

// RunGrid executes one grid across the connected workers and returns its
// output. Grids must be run sequentially, in the same order the workers
// traverse them. Cells already recorded in the checkpoint are restored,
// not re-executed; if every cell is restored no worker is needed at all.
func (c *Coordinator) RunGrid(spec GridSpec) (*GridOutput, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, c.closeErrLocked()
	}
	if out, ok := c.completed[spec.Fingerprint]; ok {
		// The same grid can appear twice in a campaign (e.g. an
		// experiment run twice); its result is deterministic, so reuse it.
		c.mu.Unlock()
		return out, nil
	}
	if c.cur != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: RunGrid(%s) while %s still running", spec.Fingerprint, c.cur.fp)
	}
	gr := &gridRun{
		fp:          spec.Fingerprint,
		numCells:    spec.NumCells,
		runsPerCell: spec.RunsPerCell,
		leases:      map[int]*lease{},
		done:        make([]bool, spec.NumCells),
		cells:       make([]cellRecord, spec.NumCells),
		progress:    spec.Progress,
	}
	if c.opt.Checkpoint != nil {
		done, cells, err := c.opt.Checkpoint.restore(spec.Fingerprint, spec.NumCells)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		for i, ok := range done {
			if ok {
				gr.done[i] = true
				gr.cells[i] = cells[i]
				gr.doneCount++
			}
		}
		if gr.doneCount > 0 {
			c.logf("dist: grid %s: restored %d/%d cells from checkpoint",
				spec.Fingerprint, gr.doneCount, spec.NumCells)
		}
	}
	if c.opt.WAL != nil {
		// Replay journal entries on top of the checkpoint: cells delivered
		// after the last save but before a crash. The WAL may hold records
		// already covered by the checkpoint (a save that raced the crash);
		// the done bitmap dedupes them.
		replayed := 0
		for _, r := range c.opt.WAL.Restored() {
			if r.Grid != spec.Fingerprint || r.Cell < 0 || r.Cell >= spec.NumCells {
				continue
			}
			if gr.done[r.Cell] || len(r.Payload) == 0 {
				continue
			}
			gr.done[r.Cell] = true
			gr.cells[r.Cell] = cellRecord{Payload: r.Payload, Stats: r.Stats}
			gr.doneCount++
			replayed++
		}
		if replayed > 0 {
			c.logf("dist: grid %s: replayed %d cells from WAL", spec.Fingerprint, replayed)
		}
	}
	for i := 0; i < spec.NumCells; i++ {
		if !gr.done[i] {
			gr.queue = append(gr.queue, i)
		}
	}
	c.cur = gr
	c.cond.Broadcast() // wake ready handlers waiting for this grid

	stop := make(chan struct{})
	go c.reclaimLoop(gr, stop)
	for gr.doneCount < gr.numCells && !c.closed {
		c.cond.Wait()
	}
	close(stop)
	if c.closed {
		err := c.closeErrLocked()
		c.cur = nil
		c.mu.Unlock()
		return nil, err
	}
	out := c.finalizeLocked(gr)
	c.cur = nil
	c.cond.Broadcast() // wake workers ready for the next grid
	c.mu.Unlock()
	return out, nil
}

func (c *Coordinator) closeErrLocked() error {
	if c.failure != nil {
		return c.failure
	}
	return ErrClosed
}

// finalizeLocked assembles a completed grid's output, records it for
// replays, and writes the final checkpoint snapshot.
func (c *Coordinator) finalizeLocked(gr *gridRun) *GridOutput {
	out := &GridOutput{Payloads: make([][]byte, gr.numCells)}
	merged := map[string]*stats.Welford{}
	for i := range gr.cells {
		out.Payloads[i] = gr.cells[i].Payload
		for name, st := range gr.cells[i].Stats {
			w, ok := merged[name]
			if !ok {
				w = &stats.Welford{}
				merged[name] = w
			}
			w.Merge(stats.FromState(st))
		}
	}
	if len(merged) > 0 {
		out.Stats = map[string]stats.State{}
		for name, w := range merged {
			out.Stats[name] = w.State()
		}
	}
	c.completed[gr.fp] = out
	c.saveLocked(gr)
	return out
}

// saveLocked writes the checkpoint if one is configured. Save failures
// are logged, not fatal: the campaign's in-memory state is intact, only
// resumability is degraded. After a successful save the WAL drops this
// grid's records — the snapshot now covers them — but keeps other grids'
// (a shared journal may hold a later grid's progress from a previous
// incarnation).
func (c *Coordinator) saveLocked(gr *gridRun) {
	if c.opt.Checkpoint == nil {
		return
	}
	if err := c.opt.Checkpoint.save(gr.fp, gr.numCells, gr.done, gr.cells); err != nil {
		c.logf("dist: %v", err)
	} else if c.opt.WAL != nil {
		if err := c.opt.WAL.Compact(gr.fp); err != nil {
			c.logf("dist: %v", err)
		}
	}
	gr.sinceSave = 0
}

// reclaimLoop expires stalled leases for one grid until stop closes. Two
// watchdogs run on the same ticker: the lease timeout (worker presumed
// dead — cells requeued, lease dropped) and the faster per-cell stall
// detector (worker presumed wedged on one cell — remaining cells are
// copied back to the queue so another worker can race it, but the lease
// survives in case the original worker eventually delivers).
func (c *Coordinator) reclaimLoop(gr *gridRun, stop chan struct{}) {
	tick := c.opt.LeaseTimeout / 4
	if ct := c.opt.CellTimeout; ct > 0 && ct/4 < tick {
		tick = ct / 4
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 5*time.Second {
		tick = 5 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			if c.cur == gr {
				for id, l := range gr.leases {
					if now.After(l.expires) {
						c.logf("dist: grid %s: lease %d timed out, requeueing %d cells",
							gr.fp, id, len(l.cells))
						c.requeueLocked(gr, id)
						continue
					}
					if !l.boosted && len(l.cells) > 0 {
						if stall := c.stallDeadline(gr); stall > 0 && now.Sub(l.lastAt) > stall {
							c.logf("dist: grid %s: lease %d stalled for %v, racing %d cells",
								gr.fp, id, now.Sub(l.lastAt).Round(time.Millisecond), len(l.cells))
							l.boosted = true
							gr.queue = append(gr.queue, l.cells...)
							c.cond.Broadcast()
						}
					}
				}
			}
			c.mu.Unlock()
		}
	}
}

// stallDeadline is how long a lease may go without delivering a cell
// before its remaining cells are raced: the configured CellTimeout, or
// 8× the observed average cell duration (floored so fast grids don't
// thrash), or 0 — no stall detection — before any cell has completed.
func (c *Coordinator) stallDeadline(gr *gridRun) time.Duration {
	if c.opt.CellTimeout > 0 {
		return c.opt.CellTimeout
	}
	if gr.cellEWMA <= 0 {
		return 0
	}
	d := 8 * gr.cellEWMA
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// requeueLocked returns a lease's undelivered cells to the queue.
func (c *Coordinator) requeueLocked(gr *gridRun, id int) {
	l, ok := gr.leases[id]
	if !ok {
		return
	}
	delete(gr.leases, id)
	gr.queue = append(gr.queue, l.cells...)
	c.cond.Broadcast()
}

// Close shuts the coordinator down: pending RunGrid calls fail, waiting
// workers are told to exit. Safe to call more than once.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// failLocked poisons the campaign with a fatal worker error.
func (c *Coordinator) failLocked(err error) {
	if c.failure == nil {
		c.failure = err
	}
	c.closed = true
	c.cond.Broadcast()
}

// Serve speaks the worker protocol over one connection until the peer
// disconnects or the campaign ends. Run it in its own goroutine per
// connection. Undelivered leases held by the connection are requeued
// when it returns.
func (c *Coordinator) Serve(conn *Conn) error {
	hello, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("dist: worker handshake: %w", err)
	}
	if hello.Type != MsgHello || hello.Proto != ProtoVersion {
		return &ProtocolError{Detail: fmt.Sprintf("worker handshake: got %s proto %d, want %s proto %d",
			hello.Type, hello.Proto, MsgHello, ProtoVersion)}
	}
	name := hello.Worker
	if name == "" {
		name = "worker"
	}
	c.logf("dist: %s connected", name)
	defer c.dropConn(conn, name)

	for {
		m, err := conn.Recv()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed || errors.Is(err, io.EOF) {
				// Clean disconnect: the worker finished its grid sequence
				// (or the campaign is over). Any leases it held are
				// requeued by the deferred dropConn.
				return nil
			}
			return fmt.Errorf("dist: %s: %w", name, err)
		}
		switch m.Type {
		case MsgReady:
			reply := c.nextLease(conn, m.Grid)
			if err := conn.Send(reply); err != nil {
				return fmt.Errorf("dist: %s: %w", name, err)
			}
			if reply.Type == MsgShutdown {
				return nil
			}
		case MsgCell:
			c.record(conn, m)
		case MsgError:
			// A reported cell failure is deterministic: poison the campaign
			// with a typed error so callers can errors.Is/As on it. Panics
			// carry the worker-side stack for the report.
			var ferr error
			if m.Panic {
				ferr = &CellPanicError{Cell: m.Cell, Value: m.Err, Stack: m.Stack}
				c.logf("dist: %s: cell %d panicked: %s\n%s", name, m.Cell, m.Err, m.Stack)
			} else {
				ferr = &CellError{Cell: m.Cell, Err: fmt.Errorf("%s: %s", name, m.Err)}
			}
			c.mu.Lock()
			c.failLocked(ferr)
			c.mu.Unlock()
			return ferr
		default:
			return &ProtocolError{Detail: fmt.Sprintf("%s: unexpected %q message", name, m.Type)}
		}
	}
}

// dropConn requeues every lease owned by a vanished connection.
func (c *Coordinator) dropConn(conn *Conn, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gr := c.cur; gr != nil {
		for id, l := range gr.leases {
			if l.owner == conn {
				c.logf("dist: %s lost, requeueing lease %d (%d cells)", name, id, len(l.cells))
				c.requeueLocked(gr, id)
			}
		}
	}
}

// nextLease blocks until the coordinator reaches grid fp and has cells
// to lease, the grid turns out to be complete, or the campaign ends.
func (c *Coordinator) nextLease(conn *Conn, fp string) *Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		// Completed-grid check first: a worker lagging one ready behind
		// the coordinator's Close still deserves grid_done for a grid that
		// finished, so it can complete its sequence and exit cleanly.
		if _, ok := c.completed[fp]; ok {
			return &Message{Type: MsgGridDone, Grid: fp}
		}
		if c.closed {
			return &Message{Type: MsgShutdown}
		}
		if gr := c.cur; gr != nil && gr.fp == fp && len(gr.queue) > 0 {
			n := c.opt.LeaseCells
			if n <= 0 {
				// Small enough to forfeit cheaply on worker loss, large
				// enough to amortize a round-trip on big grids.
				n = gr.numCells / 32
				if n < 1 {
					n = 1
				}
				if n > 16 {
					n = 16
				}
			}
			// Pop cells off the queue, skipping any that completed while
			// queued (a boosted cell whose original owner delivered first).
			var cells []int
			for len(gr.queue) > 0 && len(cells) < n {
				cell := gr.queue[0]
				gr.queue = gr.queue[1:]
				if !gr.done[cell] {
					cells = append(cells, cell)
				}
			}
			if len(cells) > 0 {
				now := time.Now()
				l := &lease{
					id:      gr.nextLease,
					cells:   cells,
					owner:   conn,
					expires: now.Add(c.opt.LeaseTimeout),
					lastAt:  now,
				}
				gr.nextLease++
				gr.leases[l.id] = l
				return &Message{Type: MsgLease, Grid: fp, Lease: l.id,
					Cells: append([]int(nil), l.cells...)}
			}
			// Every queued cell was already done; fall through and wait.
		}
		// Either the coordinator hasn't reached this grid yet, or all
		// remaining cells are leased out (we may still inherit them if a
		// lease expires). Wait for the state to change.
		c.cond.Wait()
	}
}

// record stores one completed cell and advances checkpoint/progress
// bookkeeping. Duplicate deliveries (a reassigned lease racing its
// original owner) are ignored; results are deterministic, so either copy
// is the right one.
func (c *Coordinator) record(conn *Conn, m *Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gr := c.cur
	if gr == nil || gr.fp != m.Grid || m.Cell < 0 || m.Cell >= gr.numCells {
		return // stale delivery from a previous grid or reassigned lease
	}
	if l, ok := gr.leases[m.Lease]; ok && l.owner == conn {
		now := time.Now()
		l.expires = now.Add(c.opt.LeaseTimeout) // the worker is alive
		if dur := now.Sub(l.lastAt); dur > 0 {
			// Delivery-to-delivery duration feeds the stall detector's
			// derived deadline; the EWMA smooths over cell-size variance.
			if gr.cellEWMA <= 0 {
				gr.cellEWMA = dur
			} else {
				gr.cellEWMA = (3*gr.cellEWMA + dur) / 4
			}
		}
		l.lastAt = now
		for i, cell := range l.cells {
			if cell == m.Cell {
				l.cells = append(l.cells[:i], l.cells[i+1:]...)
				break
			}
		}
		if len(l.cells) == 0 {
			delete(gr.leases, m.Lease)
		}
	}
	if gr.done[m.Cell] {
		return
	}
	if c.opt.WAL != nil {
		// Journal before acknowledging: once this returns, the cell
		// survives a coordinator crash even if no checkpoint ever runs.
		if err := c.opt.WAL.Append(m.Grid, m.Cell, m.Payload, m.Stats); err != nil {
			c.logf("dist: %v", err)
		}
	}
	gr.done[m.Cell] = true
	gr.cells[m.Cell] = cellRecord{Payload: m.Payload, Stats: m.Stats}
	gr.doneCount++
	gr.sinceSave++
	if gr.progress != nil {
		gr.progress(gr.doneCount*gr.runsPerCell, gr.numCells*gr.runsPerCell)
	}
	if gr.sinceSave >= c.opt.CheckpointEvery && gr.doneCount < gr.numCells {
		c.saveLocked(gr)
	}
	c.recorded++
	if c.killAfter > 0 && c.recorded >= c.killAfter {
		c.saveLocked(gr)
		fmt.Fprintf(os.Stderr, "dist: %s=%d reached, exiting\n", exitAfterEnv, c.killAfter)
		os.Exit(killExitCode)
	}
	if c.crashAfter > 0 && c.recorded >= c.crashAfter {
		// Simulated hard crash: no checkpoint save, no cleanup. The cells
		// recorded since the last save survive only in the WAL.
		fmt.Fprintf(os.Stderr, "dist: %s=%d reached, crashing\n", crashAfterEnv, c.crashAfter)
		os.Exit(killExitCode)
	}
	if gr.doneCount == gr.numCells {
		c.cond.Broadcast()
	}
}
