package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyProxy forwards TCP connections to target. The first connection is
// killed after cutAfter client→server protocol frames have passed —
// mid-grid, from the worker's point of view — and every later connection
// is piped untouched. conns counts accepted connections.
func flakyProxy(t *testing.T, target string, cutAfter int, conns *int32) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			cli, err := ln.Accept()
			if err != nil {
				return
			}
			n := atomic.AddInt32(conns, 1)
			go func(cli net.Conn, first bool) {
				defer cli.Close()
				srv, err := net.Dial("tcp", target)
				if err != nil {
					return
				}
				defer srv.Close()
				go io.Copy(cli, srv) // server→client, raw
				if !first {
					io.Copy(srv, cli)
					return
				}
				// Client→server frame by frame so the cut lands at a frame
				// boundary: the worker has delivered work, then loses the
				// link while awaiting its next lease.
				in, out := NewConn(cli), NewConn(srv)
				for i := 0; i < cutAfter; i++ {
					m, err := in.Recv()
					if err != nil {
						return
					}
					if err := out.Send(m); err != nil {
						return
					}
				}
			}(cli, n == 1)
		}
	}()
	return ln.Addr().String()
}

// TestReconnectResumesGrid is the reconnect bar: a worker whose
// connection dies mid-grid redials and finishes the grid, with output
// identical to an undisturbed run. The first connection carries hello,
// ready, one delivered cell and one more ready before the proxy cuts it;
// the forfeited lease is requeued and re-earned over the second
// connection.
func TestReconnectResumesGrid(t *testing.T) {
	src := fakeCells{fp: "re", n: 6, fail: -1}
	c := NewCoordinator(Options{LeaseCells: 1, Logf: t.Logf})
	addr, stop, err := Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var conns int32
	proxy := flakyProxy(t, addr.String(), 4, &conns)

	wdone := make(chan error, 1)
	go func() {
		w, err := DialReconnect(proxy, "flappy", RedialOptions{
			Attempts: 5, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond,
			Logf: t.Logf,
		})
		if err != nil {
			wdone <- err
			return
		}
		defer w.Close()
		wdone <- w.ServeGrid(src)
	}()
	out, err := c.RunGrid(GridSpec{Fingerprint: src.fp, NumCells: src.n, RunsPerCell: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-wdone; err != nil {
		t.Fatalf("reconnecting worker: %v", err)
	}
	c.Close()
	for i, p := range out.Payloads {
		if string(p) != fmt.Sprintf("[%d]", i) {
			t.Errorf("payload %d = %s", i, p)
		}
	}
	if n := atomic.LoadInt32(&conns); n < 2 {
		t.Errorf("connections = %d, want ≥ 2 (no reconnect happened)", n)
	}
}

// TestReconnectGivesUp pins the bounded-retry contract: with nothing
// listening, DialReconnect fails after exactly Attempts dials rather
// than hanging.
func TestReconnectGivesUp(t *testing.T) {
	// A port that was just listening and no longer is.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	attempts := 0
	_, err = DialReconnect(dead, "hopeless", RedialOptions{
		Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "attempt") {
				attempts++
			}
		},
	})
	if err == nil {
		t.Fatal("DialReconnect succeeded against a dead address")
	}
	if attempts != 2 {
		t.Errorf("dial attempts = %d, want 2", attempts)
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("error does not name the attempt count: %v", err)
	}
}

// TestReconnectNoRetryOnCellError: a deterministic cell failure must
// surface immediately — redialing would re-run the same failing cell
// against an already-poisoned campaign.
func TestReconnectNoRetryOnCellError(t *testing.T) {
	src := fakeCells{fp: "reboom", n: 4, fail: 1}
	c := NewCoordinator(Options{LeaseCells: 1})
	addr, stop, err := Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var conns int32
	proxy := flakyProxy(t, addr.String(), 1<<30, &conns) // never cuts

	wdone := make(chan error, 1)
	go func() {
		w, err := DialReconnect(proxy, "boomw", RedialOptions{
			Attempts: 5, BaseDelay: time.Millisecond,
		})
		if err != nil {
			wdone <- err
			return
		}
		defer w.Close()
		wdone <- w.ServeGrid(src)
	}()
	if _, err := c.RunGrid(GridSpec{Fingerprint: src.fp, NumCells: src.n, RunsPerCell: 1}); err == nil {
		t.Fatal("poisoned campaign succeeded")
	}
	werr := <-wdone
	if !errors.Is(werr, ErrCell) {
		t.Fatalf("worker error = %v, want ErrCell", werr)
	}
	if n := atomic.LoadInt32(&conns); n != 1 {
		t.Errorf("connections = %d, want 1 (cell failure must not redial)", n)
	}
}
