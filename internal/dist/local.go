package dist

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
)

// pipeConn joins a child process's stdout (our read side) and stdin (our
// write side) into the ordered byte stream Conn wants.
type pipeConn struct {
	io.Reader
	io.WriteCloser
}

// WorkerSet is a group of locally spawned worker processes, each served
// by its own goroutine on the parent's coordinator.
type WorkerSet struct {
	procs []*exec.Cmd
	wg    sync.WaitGroup

	mu    sync.Mutex
	first error // first serve/exit failure
}

// SpawnWorkers launches n copies of argv as local workers, wiring each
// child's stdin/stdout to a coordinator Serve loop (which is why worker
// mode must keep stdout strictly for the protocol) and passing stderr
// through. extraEnv entries are appended to the inherited environment.
func SpawnWorkers(c *Coordinator, n int, argv []string, extraEnv []string) (*WorkerSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: SpawnWorkers(%d)", n)
	}
	if len(argv) == 0 {
		return nil, fmt.Errorf("dist: SpawnWorkers: empty argv")
	}
	s := &WorkerSet{}
	for i := 0; i < n; i++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), extraEnv...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			s.Kill()
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			s.Kill()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			s.Kill()
			return nil, fmt.Errorf("dist: spawn worker %d: %w", i, err)
		}
		s.procs = append(s.procs, cmd)
		s.wg.Add(1)
		go func(i int, cmd *exec.Cmd, stdin io.WriteCloser, stdout io.Reader) {
			defer s.wg.Done()
			err := c.Serve(NewConn(pipeConn{stdout, stdin}))
			stdin.Close()
			if werr := cmd.Wait(); err == nil && werr != nil {
				err = fmt.Errorf("dist: worker %d: %w", i, werr)
			}
			if err != nil {
				s.mu.Lock()
				if s.first == nil {
					s.first = err
				}
				s.mu.Unlock()
			}
		}(i, cmd, stdin, stdout)
	}
	return s, nil
}

// Wait blocks until every worker process has exited and returns the
// first serve or exit failure, if any. Call after the campaign's last
// grid (typically after Coordinator.Close, which releases workers
// blocked on a ready request).
func (s *WorkerSet) Wait() error {
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.first
}

// Kill force-terminates any still-running workers. Used on abnormal
// coordinator exit; the normal path is Close + Wait.
func (s *WorkerSet) Kill() {
	for _, cmd := range s.procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}

// Listen accepts TCP workers on addr (e.g. ":9111") until the listener
// is closed, serving each connection on its own goroutine. It returns
// the bound address (useful with ":0") and a stop function that closes
// the listener; in-flight connections finish via coordinator shutdown.
func Listen(c *Coordinator, addr string) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go func() {
				defer conn.Close()
				if err := c.Serve(NewConn(conn)); err != nil {
					c.logf("dist: %v", err)
				}
			}()
		}
	}()
	return ln.Addr(), func() { ln.Close() }, nil
}

// Dial connects to a coordinator at addr and performs the worker
// handshake. The caller then calls ServeGrid per grid, in campaign
// order, and Close when done.
func Dial(addr, name string) (*Worker, io.Closer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: connect %s: %w", addr, err)
	}
	w, err := NewWorker(conn, name)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return w, conn, nil
}
