package dist

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"time"
)

// RedialOptions tunes a Redialer. The zero value retries three times per
// outage, backing off exponentially from 250 ms to a 5 s cap.
type RedialOptions struct {
	// Attempts is the number of dials tried per connection outage before
	// giving up (0 means 3). The first attempt is immediate; later ones
	// back off exponentially.
	Attempts int
	// BaseDelay is the wait before the second attempt (0 means 250 ms);
	// it doubles per attempt up to MaxDelay (0 means 5 s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Logf reports outages, retries and reconnects; nil discards.
	Logf func(format string, args ...any)
}

// Redialer is a Worker that survives connection loss: when the
// coordinator link drops mid-grid it re-dials with capped jittered
// exponential backoff and resumes the lease loop. Safe because leases are
// the unit of recovery — the coordinator requeues whatever the dropped
// connection held, duplicate cell deliveries are ignored, and results are
// deterministic, so a re-run cell is bit-identical to the lost one.
type Redialer struct {
	addr, name string
	opt        RedialOptions
	rng        *rand.Rand
	w          *Worker
	conn       io.Closer
}

// DialReconnect connects to a coordinator at addr like Dial, but returns
// a Redialer; the initial dial itself is retried under the same backoff
// policy, so workers may be started before the coordinator listens.
func DialReconnect(addr, name string, opt RedialOptions) (*Redialer, error) {
	if opt.Attempts <= 0 {
		opt.Attempts = 3
	}
	if opt.BaseDelay <= 0 {
		opt.BaseDelay = 250 * time.Millisecond
	}
	if opt.MaxDelay <= 0 {
		opt.MaxDelay = 5 * time.Second
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	// Jitter draws from a name-seeded stream: deterministic per worker for
	// reproducible tests, decorrelated across a fleet so a coordinator
	// restart is not greeted by synchronized redials.
	r := &Redialer{addr: addr, name: name, opt: opt,
		rng: rand.New(rand.NewSource(int64(h.Sum64())))}
	if err := r.redial(nil); err != nil {
		return nil, err
	}
	return r, nil
}

// ServeGrid is Worker.ServeGrid with transport-level recovery: only
// errors matching ErrTransport — the connection failed, the work itself
// is untainted — trigger a redial and re-enter the lease loop for the
// same grid (a grid completed meanwhile answers grid_done on the first
// ready). Everything else passes through: campaign shutdown, cell
// failures and panics (ErrCell/ErrCellPanic), and protocol violations
// are deterministic, so retrying would loop forever.
func (r *Redialer) ServeGrid(src CellSet) error {
	for {
		err := r.w.ServeGrid(src)
		if err == nil || !errors.Is(err, ErrTransport) {
			return err
		}
		if rerr := r.redial(err); rerr != nil {
			return rerr
		}
	}
}

// Close closes the current connection, if any.
func (r *Redialer) Close() error {
	if r.conn == nil {
		return nil
	}
	return r.conn.Close()
}

func (r *Redialer) logf(format string, args ...any) {
	if r.opt.Logf != nil {
		r.opt.Logf(format, args...)
	}
}

// redial replaces the connection, trying up to opt.Attempts dials.
// cause is the connection error that forced the redial (nil on the
// initial dial).
func (r *Redialer) redial(cause error) error {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	if cause != nil {
		r.logf("dist: %s: connection lost (%v), redialing %s", r.name, cause, r.addr)
	}
	var delay time.Duration
	for attempt := 1; ; attempt++ {
		if delay > 0 {
			// Full backoff would synchronize retries across workers that
			// lost the same coordinator; spread each wait over [d/2, d].
			time.Sleep(delay/2 + time.Duration(r.rng.Int63n(int64(delay/2)+1)))
		}
		w, closer, err := Dial(r.addr, r.name)
		if err == nil {
			r.w, r.conn = w, closer
			if attempt > 1 || cause != nil {
				r.logf("dist: %s: connected to %s (attempt %d)", r.name, r.addr, attempt)
			}
			return nil
		}
		r.logf("dist: %s: dial %s attempt %d/%d: %v", r.name, r.addr, attempt, r.opt.Attempts, err)
		if attempt >= r.opt.Attempts {
			if cause != nil {
				return fmt.Errorf("dist: %s: reconnect to %s failed after %d attempts (connection lost: %v): %w",
					r.name, r.addr, attempt, cause, err)
			}
			return fmt.Errorf("dist: %s: connect %s failed after %d attempts: %w",
				r.name, r.addr, attempt, err)
		}
		if delay == 0 {
			delay = r.opt.BaseDelay
		} else if delay *= 2; delay > r.opt.MaxDelay {
			delay = r.opt.MaxDelay
		}
	}
}
