package dist

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// fuzzStream adapts a byte slice to the io.ReadWriter NewConn wants;
// writes go nowhere (the fuzz target only decodes).
type fuzzStream struct {
	io.Reader
	io.Writer
}

// FuzzFrameDecode throws arbitrary byte streams at Conn.Recv. The codec's
// contract under corruption: never panic, never allocate a frame the
// stream didn't deliver, and either return a Message that survives a
// Send→Recv round trip byte-identically or a descriptive error. The seeds
// cover the interesting corruption classes: a length line cut short, a
// frame body ending at EOF, a length far past maxFrame, and junk where
// the ASCII length belongs.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte("26\n{\"type\":\"hello\",\"proto\":1}\n")) // one valid frame
	f.Add([]byte("12"))                                     // truncated length line
	f.Add([]byte("100\n{\"type\":\"hello\""))               // mid-frame EOF
	f.Add([]byte("9999999999999\n{}\n"))                    // oversized length
	f.Add([]byte("junk\n{\"type\":\"ready\"}\n"))           // junk prefix
	f.Add([]byte("-3\n{}\n"))                               // negative length
	f.Add([]byte("2\n{}X"))                                 // wrong terminator
	f.Add([]byte("26\n{\"type\":\"hello\",\"proto\":1}\n26\n{\"type\":\"hello\",\"proto\":1}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(fuzzStream{bytes.NewReader(data), io.Discard})
		for {
			m, err := c.Recv()
			if err != nil {
				return // EOF or a diagnosed corruption: both fine
			}
			// A frame that decoded must re-encode and decode to the same
			// record (compare marshalled forms: json.Marshal compacts
			// RawMessage payloads and sorts map keys, so it is the
			// canonical representation of both sides).
			var pipe bytes.Buffer
			rt := NewConn(&pipe)
			if err := rt.Send(m); err != nil {
				t.Fatalf("re-encoding decoded frame: %v", err)
			}
			m2, err := rt.Recv()
			if err != nil {
				t.Fatalf("re-decoding sent frame: %v", err)
			}
			b1, err1 := json.Marshal(m)
			b2, err2 := json.Marshal(m2)
			if err1 != nil || err2 != nil {
				t.Fatalf("marshal: %v, %v", err1, err2)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("round trip changed frame:\nbefore %s\nafter  %s", b1, b2)
			}
		}
	})
}
