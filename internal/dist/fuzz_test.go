package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzStream adapts a byte slice to the io.ReadWriter NewConn wants;
// writes go nowhere (the fuzz target only decodes).
type fuzzStream struct {
	io.Reader
	io.Writer
}

// FuzzFrameDecode throws arbitrary byte streams at Conn.Recv. The codec's
// contract under corruption: never panic, never allocate a frame the
// stream didn't deliver, and either return a Message that survives a
// Send→Recv round trip byte-identically or a descriptive error. The seeds
// cover the interesting corruption classes: a length line cut short, a
// frame body ending at EOF, a length far past maxFrame, and junk where
// the ASCII length belongs.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte("26\n{\"type\":\"hello\",\"proto\":1}\n")) // one valid frame
	f.Add([]byte("12"))                                     // truncated length line
	f.Add([]byte("100\n{\"type\":\"hello\""))               // mid-frame EOF
	f.Add([]byte("9999999999999\n{}\n"))                    // oversized length
	f.Add([]byte("junk\n{\"type\":\"ready\"}\n"))           // junk prefix
	f.Add([]byte("-3\n{}\n"))                               // negative length
	f.Add([]byte("2\n{}X"))                                 // wrong terminator
	f.Add([]byte("26\n{\"type\":\"hello\",\"proto\":1}\n26\n{\"type\":\"hello\",\"proto\":1}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(fuzzStream{bytes.NewReader(data), io.Discard})
		for {
			m, err := c.Recv()
			if err != nil {
				return // EOF or a diagnosed corruption: both fine
			}
			// A frame that decoded must re-encode and decode to the same
			// record (compare marshalled forms: json.Marshal compacts
			// RawMessage payloads and sorts map keys, so it is the
			// canonical representation of both sides).
			var pipe bytes.Buffer
			rt := NewConn(&pipe)
			if err := rt.Send(m); err != nil {
				t.Fatalf("re-encoding decoded frame: %v", err)
			}
			m2, err := rt.Recv()
			if err != nil {
				t.Fatalf("re-decoding sent frame: %v", err)
			}
			b1, err1 := json.Marshal(m)
			b2, err2 := json.Marshal(m2)
			if err1 != nil || err2 != nil {
				t.Fatalf("marshal: %v, %v", err1, err2)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("round trip changed frame:\nbefore %s\nafter  %s", b1, b2)
			}
		}
	})
}

// FuzzWALDecode throws arbitrary journal images at decodeWAL. The crash
// contract: a truncated tail is never an error (it is the expected shape
// of a coordinator killed mid-append), the reported valid length never
// exceeds the input, and the valid prefix is a fixed point — re-decoding
// it reproduces exactly the same records and length. Everything else
// malformed must be a diagnosed error, never a panic.
func FuzzWALDecode(f *testing.F) {
	rec := `{"grid":"g","cell":1,"payload":[1]}`
	frame := []byte(fmt.Sprintf("%d\n%s\n", len(rec), rec))
	f.Add([]byte(nil))
	f.Add(frame)
	f.Add(append(append([]byte{}, frame...), frame...))
	f.Add(append(append([]byte{}, frame...), frame[:len(frame)/2]...)) // truncated tail
	f.Add([]byte("12"))                                                // header cut short
	f.Add([]byte("zap\n{}\n"))                                         // junk length
	f.Add([]byte("-4\n{}\n"))                                          // negative length
	f.Add([]byte("9999999999999\n{}\n"))                               // oversized length
	f.Add([]byte("2\n{}X"))                                            // wrong terminator
	f.Add([]byte("3\nnop\n"))                                          // invalid JSON

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := decodeWAL(data)
		if err != nil {
			return // diagnosed corruption
		}
		if valid < 0 || valid > len(data) {
			t.Fatalf("validLen %d outside input of %d bytes", valid, len(data))
		}
		recs2, valid2, err2 := decodeWAL(data[:valid])
		if err2 != nil {
			t.Fatalf("valid prefix does not re-decode: %v", err2)
		}
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("valid prefix not a fixed point: len %d→%d, records %d→%d",
				valid, valid2, len(recs), len(recs2))
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], recs2[i]) {
				t.Fatalf("record %d changed across re-decode", i)
			}
		}
	})
}

// FuzzCheckpointDecode throws arbitrary documents at LoadCheckpoint and
// restore. The contract under corruption: never panic, never OOM on a
// small input, and either reject the file with a descriptive error or
// hand back internally consistent state — every done cell has exactly one
// non-empty payload record, and a save→load round trip of that state
// reproduces it exactly. The seeds cover the corruption classes resume
// must survive: truncation, wrong version, null grid entries, negative
// cell counts, bitmap/record mismatches, aliased and out-of-range cell
// keys, empty payloads, and hostile Welford states.
func FuzzCheckpointDecode(f *testing.F) {
	valid := `{"version":1,"grids":{"fp":{"num_cells":3,"done":"Bw==",` +
		`"cells":{"0":{"payload":[0]},"1":{"payload":[1]},"2":{"payload":[2]}}}}}`
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)/2]))               // truncated JSON
	f.Add([]byte(`{"version":99,"grids":{}}`))        // wrong version
	f.Add([]byte(`{"version":1,"grids":{"x":null}}`)) // null grid entry
	f.Add([]byte(`{"version":1,"grids":{"x":{"num_cells":-5,"done":"","cells":{}}}}`))
	f.Add([]byte(`{"version":1,"grids":{"x":{"num_cells":3,"done":"!!!","cells":{}}}}`))
	f.Add([]byte(`{"version":1,"grids":{"x":{"num_cells":3,"done":"Bw==","cells":{"0":{"payload":[0]}}}}}`))
	f.Add([]byte(`{"version":1,"grids":{"x":{"num_cells":2,"done":"Aw==","cells":{"1":{"payload":[1]},"01":{"payload":[9]}}}}}`))
	f.Add([]byte(`{"version":1,"grids":{"x":{"num_cells":2,"done":"AQ==","cells":{"7":{"payload":[0]}}}}}`))
	f.Add([]byte(`{"version":1,"grids":{"x":{"num_cells":1,"done":"AQ==","cells":{"0":{}}}}}`))
	f.Add([]byte(`{"version":1,"grids":{"x":{"num_cells":1,"done":"AQ==",` +
		`"cells":{"0":{"payload":[0],"stats":{"v":{"n":-4,"mean":1e308,"m2":-1}}}}}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ckpt.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := LoadCheckpoint(path)
		if err != nil {
			return // diagnosed corruption
		}
		for fp, g := range ck.doc.Grids {
			done, cells, err := ck.restore(fp, g.NumCells)
			if err != nil {
				continue // diagnosed inconsistency
			}
			n := 0
			for i, ok := range done {
				if ok {
					n++
					if len(cells[i].Payload) == 0 {
						t.Fatalf("grid %s: done cell %d restored with empty payload", fp, i)
					}
				} else if cells[i].Payload != nil || cells[i].Stats != nil {
					t.Fatalf("grid %s: undone cell %d restored with data", fp, i)
				}
			}
			// Round trip: saving the restored state and restoring it again
			// must reproduce it exactly. Save may fail on hostile stats
			// (NaN does not marshal) — an error, never a panic.
			rt := NewCheckpoint(filepath.Join(dir, "rt.json"))
			if err := rt.save(fp, g.NumCells, done, cells); err != nil {
				continue
			}
			rt2, err := LoadCheckpoint(rt.Path())
			if err != nil {
				t.Fatalf("grid %s: saved checkpoint does not reload: %v", fp, err)
			}
			done2, cells2, err := rt2.restore(fp, g.NumCells)
			if err != nil {
				t.Fatalf("grid %s: saved checkpoint does not restore: %v", fp, err)
			}
			if !reflect.DeepEqual(done, done2) {
				t.Fatalf("grid %s: done bitmap changed across round trip", fp)
			}
			for i := range cells {
				if !bytes.Equal(cells[i].Payload, cells2[i].Payload) {
					t.Fatalf("grid %s: cell %d payload changed across round trip", fp, i)
				}
			}
		}
	})
}
