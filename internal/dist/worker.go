package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"

	"ripple/internal/campaign/pool"
	"ripple/internal/stats"
)

// CellSet is the worker-side view of one grid: a deterministic, shardable
// batch of cells. campaign.Plan satisfies it through GridCells; the
// public API wraps batch scenarios the same way.
type CellSet interface {
	// Fingerprint identifies the grid across processes; coordinator and
	// worker must compute identical fingerprints from identical
	// definitions.
	Fingerprint() string
	// NumCells is the flat cell count.
	NumCells() int
	// RunsPerCell is how many runs one cell represents (for progress).
	RunsPerCell() int
	// RunCell executes one cell, returning its payload (marshalled and
	// shipped verbatim to the coordinator) and per-metric Welford states.
	RunCell(c int) (payload any, st map[string]stats.State, err error)
}

// GridServer is anything that can work one grid's lease queue: a Worker
// bound to a single connection, or a Redialer that survives connection
// loss.
type GridServer interface {
	ServeGrid(src CellSet) error
}

// Worker executes leased cells over one coordinator connection. A worker
// process creates one Worker and calls ServeGrid once per grid, in the
// same order the coordinator runs them.
type Worker struct {
	conn *Conn
	name string
}

// NewWorker performs the hello handshake over rw and returns the worker.
func NewWorker(rw io.ReadWriter, name string) (*Worker, error) {
	w := &Worker{conn: NewConn(rw), name: name}
	err := w.conn.Send(&Message{Type: MsgHello, Proto: ProtoVersion, Worker: name})
	if err != nil {
		if errors.Is(err, ErrTransport) {
			return nil, err
		}
		return nil, &TransportError{Op: "hello", Err: err}
	}
	return w, nil
}

// ServeGrid works the coordinator's queue for one grid: request a lease,
// run its cells, stream the results, repeat until the coordinator says
// the grid is done. Returns ErrShutdown if the campaign ended instead.
func (w *Worker) ServeGrid(src CellSet) error {
	fp := src.Fingerprint()
	for {
		if err := w.conn.Send(&Message{Type: MsgReady, Grid: fp}); err != nil {
			return err
		}
		m, err := w.conn.Recv()
		if err != nil {
			// A clean EOF here is still a transport failure for the worker:
			// it was promised a lease or a grid_done and got neither.
			return &TransportError{Op: "waiting for lease", Err: err}
		}
		switch m.Type {
		case MsgGridDone:
			return nil
		case MsgShutdown:
			return ErrShutdown
		case MsgLease:
			for _, cell := range m.Cells {
				if err := w.runCell(src, fp, m.Lease, cell); err != nil {
					return err
				}
			}
		default:
			return &ProtocolError{Detail: fmt.Sprintf("unexpected %q message awaiting lease", m.Type)}
		}
	}
}

// runCell executes one cell and streams the result. Execution errors and
// panics are reported to the coordinator (poisoning the campaign — cell
// failures are deterministic, not transient faults) before being returned
// as typed errors. A panic is confined to the cell: the worker process
// survives, the connection stays usable, and the lease is resolved
// through the error report rather than orphaned until timeout.
func (w *Worker) runCell(src CellSet, fp string, leaseID, cell int) error {
	payload, st, err := runCellGuarded(src, cell)
	if err != nil {
		var pe *CellPanicError
		if errors.As(err, &pe) {
			w.conn.Send(&Message{Type: MsgError, Grid: fp, Cell: cell,
				Err: pe.Value, Panic: true, Stack: pe.Stack})
			return pe
		}
		w.conn.Send(&Message{Type: MsgError, Grid: fp, Cell: cell, Err: err.Error()})
		return &CellError{Cell: cell, Err: err}
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		w.conn.Send(&Message{Type: MsgError, Grid: fp, Cell: cell, Err: err.Error()})
		return &CellError{Cell: cell, Err: fmt.Errorf("marshal: %w", err)}
	}
	return w.conn.Send(&Message{
		Type: MsgCell, Grid: fp, Lease: leaseID, Cell: cell,
		Payload: raw, Stats: st,
	})
}

// runCellGuarded executes one cell under a recover guard. A panic inside
// RunCell — directly, or recovered by the campaign pool on a helper
// goroutine and surfaced as a *pool.PanicError — is normalized to a
// *CellPanicError carrying the cell index and stack.
func runCellGuarded(src CellSet, cell int) (payload any, st map[string]stats.State, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellPanicError{Cell: cell, Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	payload, st, err = src.RunCell(cell)
	var pp *pool.PanicError
	if errors.As(err, &pp) {
		err = &CellPanicError{Cell: cell, Value: pp.Value, Stack: pp.Stack}
	}
	return payload, st, err
}
