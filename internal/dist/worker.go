package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"ripple/internal/stats"
)

// ErrShutdown reports that the coordinator ended the campaign while this
// worker was asking for more cells — normal when the coordinator's grid
// sequence is over, an error if the worker still had grids to serve.
var ErrShutdown = errors.New("dist: coordinator shut down")

// ErrCell wraps deterministic cell-execution failures so transport-level
// recovery (Redialer) can tell them apart from connection loss: a cell
// that fails by construction fails identically on every retry, and the
// coordinator has already been poisoned by the error report.
var ErrCell = errors.New("dist: cell failed")

// CellSet is the worker-side view of one grid: a deterministic, shardable
// batch of cells. campaign.Plan satisfies it through GridCells; the
// public API wraps batch scenarios the same way.
type CellSet interface {
	// Fingerprint identifies the grid across processes; coordinator and
	// worker must compute identical fingerprints from identical
	// definitions.
	Fingerprint() string
	// NumCells is the flat cell count.
	NumCells() int
	// RunsPerCell is how many runs one cell represents (for progress).
	RunsPerCell() int
	// RunCell executes one cell, returning its payload (marshalled and
	// shipped verbatim to the coordinator) and per-metric Welford states.
	RunCell(c int) (payload any, st map[string]stats.State, err error)
}

// GridServer is anything that can work one grid's lease queue: a Worker
// bound to a single connection, or a Redialer that survives connection
// loss.
type GridServer interface {
	ServeGrid(src CellSet) error
}

// Worker executes leased cells over one coordinator connection. A worker
// process creates one Worker and calls ServeGrid once per grid, in the
// same order the coordinator runs them.
type Worker struct {
	conn *Conn
	name string
}

// NewWorker performs the hello handshake over rw and returns the worker.
func NewWorker(rw io.ReadWriter, name string) (*Worker, error) {
	w := &Worker{conn: NewConn(rw), name: name}
	err := w.conn.Send(&Message{Type: MsgHello, Proto: ProtoVersion, Worker: name})
	if err != nil {
		return nil, fmt.Errorf("dist: hello: %w", err)
	}
	return w, nil
}

// ServeGrid works the coordinator's queue for one grid: request a lease,
// run its cells, stream the results, repeat until the coordinator says
// the grid is done. Returns ErrShutdown if the campaign ended instead.
func (w *Worker) ServeGrid(src CellSet) error {
	fp := src.Fingerprint()
	for {
		if err := w.conn.Send(&Message{Type: MsgReady, Grid: fp}); err != nil {
			return err
		}
		m, err := w.conn.Recv()
		if err != nil {
			return fmt.Errorf("dist: waiting for lease: %w", err)
		}
		switch m.Type {
		case MsgGridDone:
			return nil
		case MsgShutdown:
			return ErrShutdown
		case MsgLease:
			for _, cell := range m.Cells {
				if err := w.runCell(src, fp, m.Lease, cell); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("dist: unexpected %q message awaiting lease", m.Type)
		}
	}
}

// runCell executes one cell and streams the result. Execution errors are
// reported to the coordinator (poisoning the campaign — cell failures
// are deterministic config errors, not transient faults) before being
// returned.
func (w *Worker) runCell(src CellSet, fp string, leaseID, cell int) error {
	payload, st, err := src.RunCell(cell)
	if err != nil {
		w.conn.Send(&Message{Type: MsgError, Grid: fp, Err: err.Error()})
		return fmt.Errorf("%w: cell %d: %v", ErrCell, cell, err)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		w.conn.Send(&Message{Type: MsgError, Grid: fp, Err: err.Error()})
		return fmt.Errorf("%w: marshal cell %d: %v", ErrCell, cell, err)
	}
	return w.conn.Send(&Message{
		Type: MsgCell, Grid: fp, Lease: leaseID, Cell: cell,
		Payload: raw, Stats: st,
	})
}
