// Package dist distributes campaign execution across processes. A
// coordinator shards a campaign grid's flat cell index into leases and
// hands them to workers — the same binary, run with a worker flag — which
// execute their cells and stream back the per-seed results plus merged
// Welford metric states. The coordinator reassembles the exact result a
// single-process campaign.Grid.Run would have produced, reassigns leases
// when a worker dies or stalls, and periodically checkpoints completed
// cells so a long campaign survives preemption and resumes where it
// stopped.
//
// Transport is any ordered byte stream: a TCP socket for remote workers,
// or the child's stdin/stdout pipes for locally spawned ones. Messages
// are length-delimited JSON records (see Conn), so a connection severed
// mid-record is detected as truncation rather than silently parsed.
package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"ripple/internal/stats"
)

// ProtoVersion is bumped whenever the message schema changes
// incompatibly; coordinator and worker refuse to pair across versions.
// Version 2 added the panic/stack fields on error messages.
const ProtoVersion = 2

// Message types. The worker opens with hello, then loops: ready → (lease
// | grid_done | shutdown), and streams one cell message per completed
// cell while holding a lease.
const (
	MsgHello    = "hello"     // worker → coordinator, once per connection
	MsgReady    = "ready"     // worker → coordinator: give me cells for Grid
	MsgLease    = "lease"     // coordinator → worker: run Cells
	MsgCell     = "cell"      // worker → coordinator: one completed cell
	MsgGridDone = "grid_done" // coordinator → worker: grid complete, advance
	MsgShutdown = "shutdown"  // coordinator → worker: campaign over, exit
	MsgError    = "error"     // worker → coordinator: cell execution failed
)

// Message is the single wire record; Type selects which fields are
// meaningful.
type Message struct {
	Type   string `json:"type"`
	Proto  int    `json:"proto,omitempty"`  // hello
	Worker string `json:"worker,omitempty"` // hello: worker name for logs
	Grid   string `json:"grid,omitempty"`   // ready/lease/cell: grid fingerprint
	Lease  int    `json:"lease,omitempty"`  // lease/cell: lease id
	Cells  []int  `json:"cells,omitempty"`  // lease: flat cell indices to run
	Cell   int    `json:"cell,omitempty"`   // cell: flat cell index
	// Payload carries the cell's per-seed results, exactly as the worker
	// marshalled them; the coordinator stores and forwards the raw bytes.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Stats carries the cell's per-metric Welford states for checkpoint
	// summaries and cross-worker merging.
	Stats map[string]stats.State `json:"stats,omitempty"`
	Err   string                 `json:"err,omitempty"` // error
	// Panic marks an error message as a recovered cell panic; Stack is the
	// worker-side goroutine stack at the point of the panic.
	Panic bool   `json:"panic,omitempty"` // error
	Stack string `json:"stack,omitempty"` // error
}

// maxFrame bounds a single record; a frame length beyond this is treated
// as a corrupt stream, not an allocation request.
const maxFrame = 1 << 30

// Conn frames Messages over an ordered byte stream as length-delimited
// JSONL: an ASCII decimal byte count, '\n', the JSON record, '\n'. The
// explicit length makes truncation — a worker killed mid-write —
// detectable as an io error instead of a parse of half a record. Send is
// safe for concurrent use; Recv is not (each side has one reader).
type Conn struct {
	wmu sync.Mutex
	r   *bufio.Reader
	w   *bufio.Writer
}

// NewConn wraps an ordered byte stream in the framing codec.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

// Send marshals and writes one record, flushing the stream. An io failure
// is returned as a *TransportError (retryable); a marshal failure is not —
// it is deterministic and would fail identically on a fresh connection.
func (c *Conn) Send(m *Message) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: marshal %s: %w", m.Type, err)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := fmt.Fprintf(c.w, "%d\n", len(b)); err != nil {
		return &TransportError{Op: "send", Err: err}
	}
	if _, err := c.w.Write(b); err != nil {
		return &TransportError{Op: "send", Err: err}
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return &TransportError{Op: "send", Err: err}
	}
	if err := c.w.Flush(); err != nil {
		return &TransportError{Op: "send", Err: err}
	}
	return nil
}

// Recv reads one record. A stream ending cleanly on a frame boundary
// returns bare io.EOF (a worker that finished and exited); any failure
// mid-frame returns a *TransportError. Truncation wraps
// io.ErrUnexpectedEOF, never io.EOF — a peer that died writing must not
// be classifiable as a clean disconnect.
func (c *Conn) Recv() (*Message, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		if err == io.EOF {
			if line == "" {
				return nil, io.EOF
			}
			err = io.ErrUnexpectedEOF
		}
		return nil, &TransportError{Op: "recv", Err: fmt.Errorf("truncated frame header: %w", err)}
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || n < 0 || n > maxFrame {
		return nil, &TransportError{Op: "recv", Err: fmt.Errorf("bad frame length %q", strings.TrimSpace(line))}
	}
	// Grow the buffer as bytes actually arrive rather than trusting the
	// header: a corrupt length must fail as truncation, not allocate a
	// frame-sized slab up front.
	var buf bytes.Buffer
	buf.Grow(min(n+1, 64<<10))
	if _, err := io.CopyN(&buf, c.r, int64(n)+1); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, &TransportError{Op: "recv", Err: fmt.Errorf("truncated frame (%d bytes expected): %w", n, err)}
	}
	b := buf.Bytes()
	if b[n] != '\n' {
		return nil, &TransportError{Op: "recv", Err: fmt.Errorf("frame missing terminator")}
	}
	m := new(Message)
	if err := json.Unmarshal(b[:n], m); err != nil {
		return nil, &TransportError{Op: "recv", Err: fmt.Errorf("bad frame: %w", err)}
	}
	return m, nil
}
