package mobility

import (
	"math"

	"ripple/internal/radio"
	"ripple/internal/sim"
)

// MarkovConfig parameterises the Markov place-transition model.
type MarkovConfig struct {
	// Places is the number of gathering places scattered uniformly over
	// the bounds (0 selects max(4, round(sqrt(N))) for N stations).
	Places int
	// Stay is the per-epoch probability that a station remains at its
	// current place (0 selects 0.9). The complement is split uniformly
	// across the other places.
	Stay float64
	// JitterRadius is the per-station fixed offset radius around a place
	// in metres, so co-located stations do not stack on one point
	// (0 selects 10 m).
	JitterRadius float64
	// Bounds confines places; the zero rect derives the tight bounding
	// box of the initial positions.
	Bounds Rect
}

// Markov is place-transition mobility after BeanChatP2P's mobile peer
// model: the world has a fixed set of places, and each epoch every station
// either stays where it is (probability Stay) or hops to another place
// chosen uniformly — a symmetric Markov chain over places. Each station
// carries a fixed positional jitter so a place holds a small cluster
// rather than a point. A station that stays keeps bit-identical
// coordinates, so with a high Stay probability most link-plan rows survive
// an epoch untouched — the regime the incremental world rebuild exploits.
type Markov struct {
	cfg    MarkovConfig
	rng    *sim.RNG
	places []radio.Pos
	offset []radio.Pos // per-station jitter, drawn once
	at     []int32     // current place per station; -1 = still at its initial position
	pos    []radio.Pos
}

// NewMarkov builds a place-transition model over the initial positions.
// The trajectory is a pure function of (initial, cfg, seed).
func NewMarkov(initial []radio.Pos, cfg MarkovConfig, seed uint64) *Markov {
	if cfg.Bounds.zero() {
		cfg.Bounds = BoundsOf(initial)
	}
	if cfg.Places <= 0 {
		cfg.Places = int(math.Round(math.Sqrt(float64(len(initial)))))
		if cfg.Places < 4 {
			cfg.Places = 4
		}
	}
	if cfg.Stay <= 0 || cfg.Stay >= 1 {
		cfg.Stay = 0.9
	}
	if cfg.JitterRadius <= 0 {
		cfg.JitterRadius = 10
	}
	m := &Markov{
		cfg:    cfg,
		rng:    sim.NewRNG(seed, 0),
		places: make([]radio.Pos, cfg.Places),
		offset: make([]radio.Pos, len(initial)),
		at:     make([]int32, len(initial)),
		pos:    append([]radio.Pos(nil), initial...),
	}
	b := cfg.Bounds
	for i := range m.places {
		m.places[i] = radio.Pos{
			X: b.MinX + (b.MaxX-b.MinX)*m.rng.Float64(),
			Y: b.MinY + (b.MaxY-b.MinY)*m.rng.Float64(),
		}
	}
	for i := range m.offset {
		m.offset[i] = radio.Pos{
			X: (2*m.rng.Float64() - 1) * cfg.JitterRadius,
			Y: (2*m.rng.Float64() - 1) * cfg.JitterRadius,
		}
		// A station starts at its scenario position, which is generally not
		// a place; -1 marks "not yet hopped", so stay-draws keep the exact
		// initial coordinates until the first transition.
		m.at[i] = -1
	}
	return m
}

// Name implements Model.
func (m *Markov) Name() string { return "markov" }

// Step implements Model: one transition draw per station, in station
// order; movers additionally draw their destination place.
func (m *Markov) Step(pos []radio.Pos) {
	for i := range m.pos {
		if m.rng.Float64() >= m.cfg.Stay {
			m.hop(i)
		}
		pos[i] = m.pos[i]
	}
}

// hop moves station i to a uniformly chosen place other than its current
// one and plants it at place + jitter.
func (m *Markov) hop(i int) {
	var next int32
	if m.at[i] < 0 {
		next = int32(m.rng.IntN(len(m.places)))
	} else {
		next = int32(m.rng.IntN(len(m.places) - 1))
		if next >= m.at[i] {
			next++
		}
	}
	m.at[i] = next
	m.pos[i] = radio.Pos{
		X: m.places[next].X + m.offset[i].X,
		Y: m.places[next].Y + m.offset[i].Y,
	}
}
