package mobility

import (
	"ripple/internal/radio"
	"ripple/internal/sim"
)

// WaypointConfig parameterises the random waypoint model.
type WaypointConfig struct {
	// MinSpeed and MaxSpeed bound the per-leg speed draw in m/s. A
	// MaxSpeed of 0 or less freezes every station (useful as a degenerate
	// baseline). MinSpeed defaults to MaxSpeed when unset.
	MinSpeed, MaxSpeed float64
	// Pause is how long a station rests after reaching a waypoint before
	// drawing the next leg.
	Pause sim.Time
	// Epoch is the simulated time one Step call advances.
	Epoch sim.Time
	// Bounds confines waypoints; the zero rect derives the tight bounding
	// box of the initial positions.
	Bounds Rect
}

// wpState is one station's leg: where it is, where it is headed, how fast,
// and how much post-arrival pause remains.
type wpState struct {
	cur, target radio.Pos
	speed       float64 // m/s; 0 = frozen
	pauseLeft   sim.Time
}

// Waypoint is the classic random waypoint model: each station repeatedly
// draws a uniform target in the bounding rectangle and a uniform speed in
// [MinSpeed, MaxSpeed], travels there in a straight line, pauses, and
// repeats. Stations that spend a whole epoch paused (or have zero speed)
// keep bit-identical coordinates across the step.
type Waypoint struct {
	cfg WaypointConfig
	rng *sim.RNG
	sts []wpState
}

// NewWaypoint builds a waypoint model over the initial positions. The
// trajectory is a pure function of (initial, cfg, seed).
func NewWaypoint(initial []radio.Pos, cfg WaypointConfig, seed uint64) *Waypoint {
	if cfg.Bounds.zero() {
		cfg.Bounds = BoundsOf(initial)
	}
	if cfg.MinSpeed <= 0 || cfg.MinSpeed > cfg.MaxSpeed {
		cfg.MinSpeed = cfg.MaxSpeed
	}
	w := &Waypoint{cfg: cfg, rng: sim.NewRNG(seed, 0), sts: make([]wpState, len(initial))}
	for i, p := range initial {
		s := &w.sts[i]
		s.cur = p
		if cfg.MaxSpeed > 0 {
			s.target, s.speed = w.drawLeg()
		}
	}
	return w
}

// Name implements Model.
func (w *Waypoint) Name() string { return "waypoint" }

// drawLeg draws the next waypoint and leg speed. Draw order (X, Y, speed)
// is part of the determinism contract: it fixes the RNG stream layout.
func (w *Waypoint) drawLeg() (radio.Pos, float64) {
	b := w.cfg.Bounds
	p := radio.Pos{
		X: b.MinX + (b.MaxX-b.MinX)*w.rng.Float64(),
		Y: b.MinY + (b.MaxY-b.MinY)*w.rng.Float64(),
	}
	v := w.cfg.MinSpeed + (w.cfg.MaxSpeed-w.cfg.MinSpeed)*w.rng.Float64()
	return p, v
}

// Step implements Model: every station advances by Epoch, in station
// order, consuming RNG draws sequentially.
func (w *Waypoint) Step(pos []radio.Pos) {
	for i := range w.sts {
		w.advance(&w.sts[i])
		pos[i] = w.sts[i].cur
	}
}

// advance moves one station through one epoch of simulated time,
// alternating travel legs and pauses until the epoch is spent.
func (w *Waypoint) advance(s *wpState) {
	if s.speed <= 0 {
		return // frozen station: exact coordinates forever
	}
	left := w.cfg.Epoch
	for left > 0 {
		if s.pauseLeft > 0 {
			if s.pauseLeft >= left {
				s.pauseLeft -= left
				return // rested through the rest of the epoch: position untouched
			}
			left -= s.pauseLeft
			s.pauseLeft = 0
		}
		dx, dy := s.target.X-s.cur.X, s.target.Y-s.cur.Y
		d := radio.Dist(s.cur, s.target)
		travel := s.speed * left.Seconds()
		if travel < d {
			// The leg outlasts the epoch: move partway and stop here.
			f := travel / d
			s.cur.X += dx * f
			s.cur.Y += dy * f
			return
		}
		// Reach the waypoint inside the epoch: land exactly on it, consume
		// the travel time (at least 1 ns, so degenerate zero-length legs
		// cannot spin), pause, then draw the next leg.
		s.cur = s.target
		dt := sim.Time(d / s.speed * float64(sim.Second))
		if dt <= 0 {
			dt = 1
		}
		if dt > left {
			dt = left
		}
		left -= dt
		s.pauseLeft = w.cfg.Pause
		s.target, s.speed = w.drawLeg()
	}
}
