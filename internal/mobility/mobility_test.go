package mobility

import (
	"sync"
	"testing"

	"ripple/internal/radio"
	"ripple/internal/sim"
)

// scatter returns a deterministic pseudo-random initial layout.
func scatter(n int, side float64) []radio.Pos {
	rng := sim.NewRNG(42, 7)
	pos := make([]radio.Pos, n)
	for i := range pos {
		pos[i] = radio.Pos{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pos
}

// models builds one instance of every model family over the same initial
// layout, so table-driven tests cover both.
func models(initial []radio.Pos, seed uint64) map[string]func() Model {
	return map[string]func() Model{
		"waypoint": func() Model {
			return NewWaypoint(initial, WaypointConfig{
				MinSpeed: 5, MaxSpeed: 15, Pause: 200 * sim.Millisecond,
				Epoch: 500 * sim.Millisecond,
			}, seed)
		},
		"markov": func() Model {
			return NewMarkov(initial, MarkovConfig{Stay: 0.7}, seed)
		},
	}
}

// TestTrajectoryPureFunctionOfSeedAndEpoch is the determinism property
// test: a trajectory is a pure function of (seed, epoch index). Several
// goroutines each build their own model from identical inputs and step it
// independently; every goroutine must observe bit-identical positions at
// every epoch, regardless of the scheduler's interleaving. Run under
// -race this also proves stepping needs no synchronisation as long as
// each goroutine owns its model instance.
func TestTrajectoryPureFunctionOfSeedAndEpoch(t *testing.T) {
	const (
		stations   = 60
		epochs     = 40
		goroutines = 8
	)
	initial := scatter(stations, 1000)
	for name, build := range models(initial, 99) {
		t.Run(name, func(t *testing.T) {
			// Reference trajectory, computed sequentially.
			ref := make([][]radio.Pos, epochs)
			m := build()
			for e := range ref {
				ref[e] = make([]radio.Pos, stations)
				m.Step(ref[e])
			}
			var wg sync.WaitGroup
			errs := make(chan string, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					m := build()
					pos := make([]radio.Pos, stations)
					for e := 0; e < epochs; e++ {
						m.Step(pos)
						for i := range pos {
							if pos[i] != ref[e][i] {
								errs <- m.Name()
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for name := range errs {
				t.Fatalf("%s: goroutine observed a trajectory different from the sequential reference", name)
			}
		})
	}
}

// TestSeedChangesTrajectory guards against the models ignoring their seed.
func TestSeedChangesTrajectory(t *testing.T) {
	initial := scatter(50, 1000)
	for name, build := range models(initial, 1) {
		t.Run(name, func(t *testing.T) {
			other := models(initial, 2)[name]
			a, b := build(), other()
			pa := make([]radio.Pos, len(initial))
			pb := make([]radio.Pos, len(initial))
			differs := false
			for e := 0; e < 20 && !differs; e++ {
				a.Step(pa)
				b.Step(pb)
				for i := range pa {
					if pa[i] != pb[i] {
						differs = true
						break
					}
				}
			}
			if !differs {
				t.Fatalf("%s: seeds 1 and 2 produced identical 20-epoch trajectories", name)
			}
		})
	}
}

// TestWaypointStaysInBounds checks waypoint motion never leaves the
// bounding rectangle of the initial layout (targets are drawn inside it
// and travel is a convex combination of in-bounds points).
func TestWaypointStaysInBounds(t *testing.T) {
	initial := scatter(80, 500)
	bounds := BoundsOf(initial)
	w := NewWaypoint(initial, WaypointConfig{MaxSpeed: 30, Epoch: 250 * sim.Millisecond}, 5)
	pos := make([]radio.Pos, len(initial))
	const eps = 1e-9
	grown := Rect{MinX: bounds.MinX - eps, MinY: bounds.MinY - eps, MaxX: bounds.MaxX + eps, MaxY: bounds.MaxY + eps}
	for e := 0; e < 100; e++ {
		w.Step(pos)
		for i, p := range pos {
			if !grown.contains(p) {
				t.Fatalf("epoch %d: station %d at (%g, %g) outside bounds %+v", e, i, p.X, p.Y, bounds)
			}
		}
	}
}

// TestMarkovStayKeepsExactCoordinates checks the patch-friendliness
// contract: a station that draws "stay" keeps bit-identical coordinates,
// and over a high-Stay epoch most of the population does not move.
func TestMarkovStayKeepsExactCoordinates(t *testing.T) {
	initial := scatter(200, 2000)
	m := NewMarkov(initial, MarkovConfig{Stay: 0.9}, 3)
	prev := append([]radio.Pos(nil), initial...)
	pos := make([]radio.Pos, len(initial))
	totalStay := 0
	for e := 0; e < 30; e++ {
		m.Step(pos)
		for i := range pos {
			if pos[i] == prev[i] {
				totalStay++
			}
		}
		copy(prev, pos)
	}
	// 200 stations × 30 epochs × Stay 0.9 ⇒ ~5400 expected stays; far
	// fewer means staying perturbs coordinates (e.g. re-adding jitter).
	if totalStay < 4800 {
		t.Fatalf("only %d of 6000 station-epochs kept exact coordinates; Stay=0.9 should keep ~5400", totalStay)
	}
}

// TestMarkovHopsLandOnPlaces checks movers land on place+jitter points and
// that hops actually occur with Stay < 1.
func TestMarkovHopsLandOnPlaces(t *testing.T) {
	initial := scatter(100, 1000)
	cfg := MarkovConfig{Stay: 0.5, JitterRadius: 10}
	m := NewMarkov(initial, cfg, 11)
	bounds := BoundsOf(initial)
	grown := Rect{
		MinX: bounds.MinX - cfg.JitterRadius, MinY: bounds.MinY - cfg.JitterRadius,
		MaxX: bounds.MaxX + cfg.JitterRadius, MaxY: bounds.MaxY + cfg.JitterRadius,
	}
	pos := make([]radio.Pos, len(initial))
	moved := 0
	prev := append([]radio.Pos(nil), initial...)
	for e := 0; e < 20; e++ {
		m.Step(pos)
		for i := range pos {
			if pos[i] != prev[i] {
				moved++
				if !grown.contains(pos[i]) {
					t.Fatalf("station %d hopped to (%g, %g), outside places-bounds+jitter %+v", i, pos[i].X, pos[i].Y, grown)
				}
			}
		}
		copy(prev, pos)
	}
	if moved == 0 {
		t.Fatal("no station ever hopped with Stay=0.5 over 20 epochs")
	}
}

// TestWaypointZeroSpeedFreezes checks the degenerate baseline: MaxSpeed 0
// keeps every station at its exact initial coordinates forever.
func TestWaypointZeroSpeedFreezes(t *testing.T) {
	initial := scatter(30, 100)
	w := NewWaypoint(initial, WaypointConfig{Epoch: sim.Second}, 1)
	pos := make([]radio.Pos, len(initial))
	for e := 0; e < 10; e++ {
		w.Step(pos)
		for i := range pos {
			if pos[i] != initial[i] {
				t.Fatalf("epoch %d: station %d moved with MaxSpeed=0", e, i)
			}
		}
	}
}

// TestWaypointMovesPlausibly sanity-checks speeds: over one epoch no
// station travels further than MaxSpeed allows, and someone moves.
func TestWaypointMovesPlausibly(t *testing.T) {
	initial := scatter(100, 2000)
	const maxSpeed = 20.0
	epoch := 500 * sim.Millisecond
	w := NewWaypoint(initial, WaypointConfig{MinSpeed: 5, MaxSpeed: maxSpeed, Epoch: epoch}, 9)
	prev := append([]radio.Pos(nil), initial...)
	pos := make([]radio.Pos, len(initial))
	anyMoved := false
	for e := 0; e < 20; e++ {
		w.Step(pos)
		for i := range pos {
			d := radio.Dist(prev[i], pos[i])
			if limit := maxSpeed*epoch.Seconds() + 1e-6; d > limit {
				t.Fatalf("epoch %d: station %d moved %.2f m, above the %.2f m speed limit", e, i, d, limit)
			}
			if d > 0 {
				anyMoved = true
			}
		}
		copy(prev, pos)
	}
	if !anyMoved {
		t.Fatal("no station moved over 20 epochs")
	}
}
