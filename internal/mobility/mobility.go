// Package mobility generates deterministic station trajectories for
// time-varying worlds. A Model is a sequential stepper: constructed from
// the initial station positions, a configuration and a trajectory seed, it
// advances the whole population one epoch per Step call. Trajectories are
// pure functions of (config, seed, epoch index) — a model draws from its
// own sim.RNG in fixed station order, never from wall clock, goroutine
// identity or scheduling, so two models built from equal inputs produce
// bit-identical positions at every epoch on any goroutine schedule. That
// purity is what lets network.BuildWorld bake a whole campaign's epoch
// worlds ahead of time and share them read-only across pool workers (see
// docs/mobility.md for the determinism contract).
//
// Two classic model families are provided: random waypoint (Waypoint) and
// Markov place-transition mobility (Markov), the latter after the mobile
// peer model of BeanChatP2P. Stations that do not move during an epoch
// keep their exact previous coordinates — bit-equal floats, not merely
// close ones — which is what makes incremental epoch-world rebuilds cheap
// (radio.LinkPlan.Rebuild patches only rows whose endpoints moved).
package mobility

import (
	"ripple/internal/radio"
)

// Model is a deterministic trajectory generator over a fixed station
// population. Step advances every station by one epoch and writes the new
// positions into pos (len(pos) must equal the population size). Models are
// stateful sequential steppers and not safe for concurrent use; share the
// produced position snapshots, not the model.
type Model interface {
	// Name labels the model in tables and flags ("waypoint", "markov").
	Name() string
	// Step advances one epoch and writes every station's position.
	Step(pos []radio.Pos)
}

// Rect is an axis-aligned bounding rectangle in metres. The zero value
// means "derive from the initial positions" (BoundsOf).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// zero reports whether the rect is the derive-from-positions sentinel.
func (r Rect) zero() bool {
	return r.MinX == 0 && r.MinY == 0 && r.MaxX == 0 && r.MaxY == 0
}

// BoundsOf returns the tight bounding rectangle of the given positions.
// Degenerate rectangles (a line, a point) are legal: models then draw
// targets on that line or point, confining motion to the topology's span.
func BoundsOf(positions []radio.Pos) Rect {
	if len(positions) == 0 {
		return Rect{}
	}
	r := Rect{MinX: positions[0].X, MinY: positions[0].Y, MaxX: positions[0].X, MaxY: positions[0].Y}
	for _, p := range positions[1:] {
		if p.X < r.MinX {
			r.MinX = p.X
		}
		if p.X > r.MaxX {
			r.MaxX = p.X
		}
		if p.Y < r.MinY {
			r.MinY = p.Y
		}
		if p.Y > r.MaxY {
			r.MaxY = p.Y
		}
	}
	return r
}

// contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) contains(p radio.Pos) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}
