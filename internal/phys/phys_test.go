package phys

import (
	"testing"

	"ripple/internal/sim"
)

func TestDefaultMatchesTableI(t *testing.T) {
	p := Default()
	if p.SIFS != 16*sim.Microsecond {
		t.Errorf("SIFS = %v, want 16µs", p.SIFS)
	}
	if p.Slot != 9*sim.Microsecond {
		t.Errorf("Slot = %v, want 9µs", p.Slot)
	}
	if p.PHYHdr != 20*sim.Microsecond {
		t.Errorf("PHYHdr = %v, want 20µs", p.PHYHdr)
	}
	if p.DataBps != 216e6 {
		t.Errorf("DataBps = %v, want 216e6", p.DataBps)
	}
	if p.BasicBps != 54e6 {
		t.Errorf("BasicBps = %v, want 54e6", p.BasicBps)
	}
	if p.QueueLimit != 50 {
		t.Errorf("QueueLimit = %d, want 50", p.QueueLimit)
	}
	if p.PacketBytes != 1000 {
		t.Errorf("PacketBytes = %d, want 1000", p.PacketBytes)
	}
	if p.CWMin != 15 || p.CWMax != 1023 {
		t.Errorf("CW = %d/%d, want 15/1023", p.CWMin, p.CWMax)
	}
}

func TestLowRateIs6Mbps(t *testing.T) {
	p := LowRate()
	if p.DataBps != 6e6 || p.BasicBps != 6e6 {
		t.Fatalf("LowRate rates = %v/%v, want 6e6/6e6", p.DataBps, p.BasicBps)
	}
}

func TestDIFSIsSIFSPlusTwoSlots(t *testing.T) {
	p := Default()
	if p.DIFS() != 34*sim.Microsecond {
		t.Fatalf("DIFS = %v, want 34µs", p.DIFS())
	}
}

func TestEIFSExceedsDIFS(t *testing.T) {
	p := Default()
	if p.EIFS() <= p.DIFS() {
		t.Fatalf("EIFS %v must exceed DIFS %v", p.EIFS(), p.DIFS())
	}
	want := p.SIFS + p.ACKTime() + p.DIFS()
	if p.EIFS() != want {
		t.Fatalf("EIFS = %v, want %v", p.EIFS(), want)
	}
}

func TestDataTimeArithmetic(t *testing.T) {
	p := Default()
	// 1034 bytes at 216 Mbps = 8272 bits / 216e6 ≈ 38.296 µs, + 20 µs PLCP.
	got := p.DataTime(1034)
	bits := 1034 * 8
	want := p.PHYHdr + sim.Time(float64(bits)/216e6*1e9) + 1 // rounded up
	if diff := got - want; diff < -1 || diff > 1 {
		t.Fatalf("DataTime(1034) = %v, want ≈%v", got, want)
	}
	if got < 58*sim.Microsecond || got > 59*sim.Microsecond {
		t.Fatalf("DataTime(1034) = %v, want ≈58.3µs", got)
	}
}

func TestACKTimeAtBasicRate(t *testing.T) {
	p := Default()
	// 14 bytes at 54 Mbps ≈ 2.07 µs + 20 µs PLCP.
	got := p.ACKTime()
	if got < 22*sim.Microsecond || got > 23*sim.Microsecond {
		t.Fatalf("ACKTime = %v, want ≈22.1µs", got)
	}
	if p.BitmapACKTime() <= p.ACKTime() {
		t.Fatal("bitmap ACK must be longer than plain ACK")
	}
}

func TestACKTimeoutCoversACK(t *testing.T) {
	p := Default()
	if p.ACKTimeout() <= p.SIFS+p.ACKTime() {
		t.Fatalf("ACKTimeout %v must cover SIFS+ACK %v", p.ACKTimeout(), p.SIFS+p.ACKTime())
	}
}

func TestAirtimeMonotoneInSize(t *testing.T) {
	p := Default()
	prev := sim.Time(0)
	for bytes := 40; bytes <= 17000; bytes += 500 {
		d := p.DataTime(bytes)
		if d <= prev {
			t.Fatalf("DataTime(%d) = %v not increasing", bytes, d)
		}
		prev = d
	}
}

func TestLowRateAirtimeScales(t *testing.T) {
	hi, lo := Default(), LowRate()
	// Same payload takes 36× longer at 6 Mbps than at 216 Mbps.
	dHi := hi.DataTime(1000) - hi.PHYHdr
	dLo := lo.DataTime(1000) - lo.PHYHdr
	ratio := float64(dLo) / float64(dHi)
	if ratio < 35.9 || ratio > 36.1 {
		t.Fatalf("airtime ratio = %.2f, want 36", ratio)
	}
}
