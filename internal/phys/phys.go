// Package phys holds the IEEE 802.11 physical-layer constants and airtime
// arithmetic used throughout the simulator. Defaults reproduce Table I of
// the RIPPLE paper (ICDCS 2010).
package phys

import "ripple/internal/sim"

// Sizes in bytes used by the MAC framing model.
const (
	// MACHeaderBytes is the 802.11 data-frame MAC header (addresses,
	// frame control, sequence control, FCS).
	MACHeaderBytes = 34
	// ACKFrameBytes is the 802.11 ACK control frame.
	ACKFrameBytes = 14
	// RTSFrameBytes is the 802.11 RTS control frame.
	RTSFrameBytes = 20
	// CTSFrameBytes is the 802.11 CTS control frame.
	CTSFrameBytes = 14
	// PerPacketCRCBytes is the extra per-sub-packet header+CRC added when
	// several upper-layer packets are aggregated into one frame (AFR-style
	// fragment header: sequence, length, CRC32).
	PerPacketCRCBytes = 8
	// ForwarderEntryBytes is the cost per entry of the forwarder list
	// carried between the MAC header and the frame body by opportunistic
	// schemes (station address shortened to 6 bytes).
	ForwarderEntryBytes = 6
	// BitmapACKBytes is the extra payload in a MAC ACK carrying the
	// per-packet reception bitmap used by AFR and RIPPLE.
	BitmapACKBytes = 8
)

// Params collects the tunable PHY/MAC timing constants. The zero value is
// NOT usable; call Default (216 Mbps data / 54 Mbps basic, Table I) or
// LowRate (6 Mbps both, used for Table III and Figs. 10/12) instead.
type Params struct {
	SIFS     sim.Time // short inter-frame space
	Slot     sim.Time // idle slot duration
	PHYHdr   sim.Time // PLCP preamble+header airtime, rate-independent
	CWMin    int      // minimum contention window (slots-1), 802.11 OFDM: 15
	CWMax    int      // maximum contention window, 802.11: 1023
	DataBps  float64  // PHY data rate for frame bodies, bits per second
	BasicBps float64  // PHY basic rate for control frames (ACKs)

	// RetryLimit is the MAC retry limit per frame (802.11 short retry).
	RetryLimit int
	// QueueLimit is the interface queue capacity in packets (Table I: 50).
	QueueLimit int
	// PacketBytes is the upper-layer packet size used by the paper (1000).
	PacketBytes int
}

// Default returns Table I parameters: 216 Mbps data rate, 54 Mbps basic
// rate, SIFS 16 µs, slot 9 µs, PHY header 20 µs, interface queue 50.
func Default() Params {
	return Params{
		SIFS:        16 * sim.Microsecond,
		Slot:        9 * sim.Microsecond,
		PHYHdr:      20 * sim.Microsecond,
		CWMin:       15,
		CWMax:       1023,
		DataBps:     216e6,
		BasicBps:    54e6,
		RetryLimit:  7,
		QueueLimit:  50,
		PacketBytes: 1000,
	}
}

// LowRate returns the 6 Mbps configuration used for the VoIP experiments
// (Table III) and the low-rate halves of Figs. 10 and 12: "The physical
// layer data and basic rates used are both 6Mbps".
func LowRate() Params {
	p := Default()
	p.DataBps = 6e6
	p.BasicBps = 6e6
	return p
}

// DIFS is SIFS + 2 slots (802.11 DCF inter-frame space).
func (p Params) DIFS() sim.Time { return p.SIFS + 2*p.Slot }

// EIFS is the extended inter-frame space applied after receiving a corrupted
// frame: SIFS + ACK airtime at basic rate + DIFS.
func (p Params) EIFS() sim.Time { return p.SIFS + p.ACKTime() + p.DIFS() }

// airtime returns the duration of `bytes` payload at `bps`, rounded up to
// whole nanoseconds.
func airtime(bytes int, bps float64) sim.Time {
	ns := float64(bytes*8) / bps * 1e9
	t := sim.Time(ns)
	if float64(t) < ns {
		t++
	}
	return t
}

// DataTime returns the airtime of a data frame carrying the given MAC
// payload (header + body) bytes, including the PLCP header.
func (p Params) DataTime(payloadBytes int) sim.Time {
	return p.PHYHdr + airtime(payloadBytes, p.DataBps)
}

// DataTimeAt is DataTime at an explicit PHY rate (multi-rate extension);
// rate 0 falls back to the configured data rate.
func (p Params) DataTimeAt(payloadBytes int, rateBps float64) sim.Time {
	if rateBps <= 0 {
		rateBps = p.DataBps
	}
	return p.PHYHdr + airtime(payloadBytes, rateBps)
}

// ACKTime returns the airtime of a plain 802.11 ACK at the basic rate,
// including the PLCP header.
func (p Params) ACKTime() sim.Time {
	return p.PHYHdr + airtime(ACKFrameBytes, p.BasicBps)
}

// BitmapACKTime returns the airtime of an ACK carrying a reception bitmap
// (AFR / RIPPLE), still sent at the basic rate.
func (p Params) BitmapACKTime() sim.Time {
	return p.PHYHdr + airtime(ACKFrameBytes+BitmapACKBytes, p.BasicBps)
}

// RTSTime returns the airtime of an RTS control frame at the basic rate.
func (p Params) RTSTime() sim.Time {
	return p.PHYHdr + airtime(RTSFrameBytes, p.BasicBps)
}

// CTSTime returns the airtime of a CTS control frame at the basic rate.
func (p Params) CTSTime() sim.Time {
	return p.PHYHdr + airtime(CTSFrameBytes, p.BasicBps)
}

// ACKTimeout returns how long a transmitter waits for the first bit of an
// ACK after its data frame ends before declaring failure: SIFS + one slot
// of scheduling slack + PLCP header detection time.
func (p Params) ACKTimeout() sim.Time {
	return p.SIFS + p.Slot + p.PHYHdr + p.ACKTime()
}
