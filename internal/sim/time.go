// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other package in this repository runs on:
// the radio medium, the 802.11 MAC, the forwarding schemes and the transport
// protocols all advance by scheduling events on a single Engine. Events fire
// in strict (time, insertion-sequence) order, so a run is fully reproducible
// given the same seed.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since the start of the
// run. Durations are also expressed as Time; the zero value is both "the
// beginning of the simulation" and "zero duration".
type Time int64

// Duration units. These mirror time.Duration but are separate on purpose:
// simulated time never mixes with wall-clock time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit, e.g. "34µs" or "1.25s".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gµs", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
