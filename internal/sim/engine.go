package sim

// Action is a pre-bound callback that can be scheduled without allocating:
// the receiver carries its own arguments, so converting a pointer to an
// Action builds no closure. Hot paths (the radio medium) embed Action
// implementations in pooled structs and schedule them with Engine.Do.
type Action interface{ Run() }

// Event is a scheduled callback. Events are ordered by time, with insertion
// sequence breaking ties so that two events scheduled for the same instant
// fire in the order they were scheduled. An Event doubles as a cancellable
// timer handle.
//
// Events scheduled with At/After are heap-allocated and never recycled:
// their handle escapes to the caller, who may Cancel or Reschedule them at
// any point — including long after they fired. Events scheduled with Do
// carry an Action instead of a closure and are recycled through the
// engine's free list the moment they fire; that is safe precisely because
// Do returns no handle, so no caller can touch a recycled Event.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	act      Action // non-nil for pooled (Do-scheduled) events
	index    int    // heap index; -1 once popped or cancelled
	canceled bool
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e == nil || e.canceled }

// When returns the simulated time the event is scheduled for.
func (e *Event) When() Time { return e.at }

// eventHeap is a hand-rolled 4-ary min-heap of pending events ordered by
// (at, seq). The wider fan-out roughly halves the tree depth of the binary
// container/heap it replaces, and inlining the comparisons avoids its
// per-operation interface dispatch — the heap is the single hottest data
// structure in a run. Keys are unique (seq is a strict tiebreaker), so the
// pop order is exactly the (at, seq) total order no matter how the heap is
// arranged internally: swapping the implementation cannot change results.
type eventHeap []*Event

// lessEv orders events by time, then insertion sequence.
func lessEv(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts an event and records its index.
func (h *eventHeap) push(e *Event) {
	*h = append(*h, e)
	e.index = len(*h) - 1
	h.siftUp(e.index)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	old := *h
	min := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[0].index = 0
	old[n] = nil
	*h = old[:n]
	if n > 1 {
		h.siftDown(0)
	}
	min.index = -1
	return min
}

// remove deletes the event at index i (Cancel support).
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	e := old[i]
	if i != n {
		old[i] = old[n]
		old[i].index = i
	}
	old[n] = nil
	*h = old[:n]
	if i < n {
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
	e.index = -1
}

// fix restores heap order after the event at index i changed its key
// (Reschedule support).
func (h *eventHeap) fix(i int) {
	if !h.siftDown(i) {
		h.siftUp(i)
	}
}

// siftUp moves the event at index i toward the root until ordered.
func (h eventHeap) siftUp(i int) {
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !lessEv(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = e
	e.index = i
}

// siftDown moves the event at index i toward the leaves until ordered,
// reporting whether it moved.
func (h eventHeap) siftDown(i0 int) bool {
	n := len(h)
	i := i0
	e := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if lessEv(h[j], h[m]) {
				m = j
			}
		}
		if !lessEv(h[m], e) {
			break
		}
		h[i] = h[m]
		h[i].index = i
		i = m
	}
	h[i] = e
	e.index = i
	return i > i0
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use. Engines are not safe for concurrent use; run independent
// simulations on independent Engines (one per goroutine) instead.
type Engine struct {
	heap    eventHeap
	now     Time
	seq     uint64
	stopped bool
	// processed counts events that have fired, for tests and sanity limits.
	processed uint64
	// free holds recycled Do-scheduled events. Only events whose handle
	// never escaped (Do returns nothing) are pushed here; see Event.
	free []*Event
	// check, when set, runs after every fired event (deep-audit hook).
	check func()
}

// SetCheck installs a hook invoked after every event fires, with the
// clock at that event's time. The deep-audit plane uses it to re-validate
// invariants per event; nil (the default) costs one branch per event.
func (e *Engine) SetCheck(fn func()) { e.check = fn }

// NewEngine returns an empty engine positioned at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and fires immediately at the current time instead
// (never travels backwards). The returned Event can be cancelled.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.heap.push(ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Do schedules act to run at absolute time t on a pooled event. It is the
// allocation-free fast path for fire-and-forget events: no handle is
// returned, so the event cannot be cancelled or rescheduled, and its Event
// struct is recycled into the engine's free list as soon as it fires.
// Ordering semantics (time, then insertion sequence) are identical to At.
func (e *Engine) Do(t Time, act Action) {
	if t < e.now {
		t = e.now
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = nil
	ev.act = act
	ev.canceled = false
	e.seq++
	e.heap.push(ev)
}

// Cancel removes a pending event. Cancelling a nil, already-fired or
// already-cancelled event is a no-op, so callers can cancel unconditionally.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		e.heap.remove(ev.index)
	}
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback. If the event already fired or was cancelled, it is re-armed.
func (e *Engine) Reschedule(ev *Event, t Time) {
	if ev == nil {
		return
	}
	if t < e.now {
		t = e.now
	}
	ev.canceled = false
	ev.at = t
	ev.seq = e.seq
	e.seq++
	if ev.index >= 0 {
		e.heap.fix(ev.index)
	} else {
		e.heap.push(ev)
	}
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty or the next event is
// scheduled after `until`. The clock is left at min(until, last event time).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		next := e.heap[0]
		if next.at > until {
			break
		}
		e.heap.popMin()
		e.now = next.at
		e.processed++
		if next.act != nil {
			// Recycle before running: the action may schedule more Do
			// events, which can then reuse this very struct.
			act := next.act
			next.act = nil
			e.free = append(e.free, next)
			act.Run()
		} else {
			next.fn()
		}
		if e.check != nil {
			e.check()
		}
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.heap) }
