package sim

import (
	"math"
	"math/rand/v2"
)

// RNG wraps a seeded PCG pseudo-random source with the handful of draws the
// simulator needs. Every stochastic component (radio shadowing, MAC backoff,
// traffic generators) owns its own RNG substream so that adding draws to one
// component does not perturb another — runs stay comparable across code
// changes and across schemes under test.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed and stream
// identifier. Distinct streams with the same seed are independent.
func NewRNG(seed uint64, stream uint64) *RNG {
	// Mix the stream into both PCG words so streams are decorrelated.
	return &RNG{r: rand.New(rand.NewPCG(seed^0x9e3779b97f4a7c15*stream, stream*0xda942042e4dd58b5+seed))}
}

// IntN returns a uniform integer in [0, n). n must be > 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Float64 returns a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Norm returns a normally distributed value with the given mean and standard
// deviation.
func (g *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Pareto returns a Pareto-distributed value with the given shape and scale
// (minimum). The mean, for shape > 1, is scale*shape/(shape-1).
func (g *RNG) Pareto(shape, scale float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return scale / math.Pow(u, 1/shape)
}

// ParetoWithMean returns a Pareto draw parameterised by its mean rather than
// its scale, matching how the paper specifies web transfer sizes
// ("mean 80KB and shape parameter 1.5").
func (g *RNG) ParetoWithMean(shape, mean float64) float64 {
	scale := mean * (shape - 1) / shape
	return g.Pareto(shape, scale)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
