package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministicPerSeedAndStream(t *testing.T) {
	a := NewRNG(42, 7)
	b := NewRNG(42, 7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+stream must produce identical sequences")
		}
	}
}

func TestRNGStreamsAreIndependent(t *testing.T) {
	a := NewRNG(42, 1)
	b := NewRNG(42, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 coincide on %d/100 draws", same)
	}
}

func TestRNGIntNRange(t *testing.T) {
	g := NewRNG(1, 1)
	prop := func(n uint8) bool {
		m := int(n%64) + 1
		v := g.IntN(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(3, 9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exp(1.5)
	}
	mean := sum / n
	if math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("Exp(1.5) sample mean = %.4f, want ≈1.5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	g := NewRNG(5, 11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := g.Norm(-3, 8)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean+3) > 0.1 {
		t.Fatalf("Norm mean = %.3f, want ≈-3", mean)
	}
	if math.Abs(std-8) > 0.1 {
		t.Fatalf("Norm stddev = %.3f, want ≈8", std)
	}
}

// The paper's web model: Pareto with mean 80 KB and shape 1.5. The sample
// mean of a shape-1.5 Pareto converges slowly (infinite variance), so the
// tolerance is loose; the scale (minimum) is checked exactly.
func TestRNGParetoWithMean(t *testing.T) {
	g := NewRNG(7, 13)
	const n = 500000
	scale := 80e3 * 0.5 / 1.5
	var sum float64
	low := math.Inf(1)
	for i := 0; i < n; i++ {
		v := g.ParetoWithMean(1.5, 80e3)
		sum += v
		if v < low {
			low = v
		}
	}
	if low < scale*0.999 {
		t.Fatalf("Pareto minimum %.1f below scale %.1f", low, scale)
	}
	mean := sum / n
	if mean < 60e3 || mean > 110e3 {
		t.Fatalf("Pareto sample mean = %.0f, want ≈80000", mean)
	}
}

func TestRNGParetoTailProperty(t *testing.T) {
	g := NewRNG(11, 17)
	// P(X > 2*scale) = (1/2)^shape for a Pareto(shape, scale).
	const n = 100000
	shape, scale := 1.5, 100.0
	over := 0
	for i := 0; i < n; i++ {
		if g.Pareto(shape, scale) > 2*scale {
			over++
		}
	}
	want := math.Pow(0.5, shape)
	got := float64(over) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("P(X>2s) = %.4f, want %.4f", got, want)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	g := NewRNG(13, 19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %.4f", p)
	}
}
