package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Microsecond, func() { got = append(got, 3) })
	e.At(10*Microsecond, func() { got = append(got, 1) })
	e.At(20*Microsecond, func() { got = append(got, 2) })
	e.Run(Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineTieBreaksByInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Microsecond, func() { got = append(got, i) })
	}
	e.Run(Second)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want ascending", got)
		}
	}
}

func TestEngineNowAdvancesDuringRun(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(42*Microsecond, func() { at = e.Now() })
	e.Run(Second)
	if at != 42*Microsecond {
		t.Fatalf("Now inside event = %v, want 42µs", at)
	}
	if e.Now() != Second {
		t.Fatalf("Now after Run = %v, want 1s", e.Now())
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10*Microsecond, func() {
		e.After(5*Microsecond, func() { at = e.Now() })
	})
	e.Run(Second)
	if at != 15*Microsecond {
		t.Fatalf("After fired at %v, want 15µs", at)
	}
}

func TestEngineCancelPreventsExecution(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10*Microsecond, func() { fired = true })
	e.Cancel(ev)
	e.Run(Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() should report true")
	}
}

func TestEngineCancelIsIdempotentAndNilSafe(t *testing.T) {
	e := NewEngine()
	e.Cancel(nil)
	ev := e.At(10, func() {})
	e.Cancel(ev)
	e.Cancel(ev)
	e.Run(Second)
}

func TestEngineCancelFiredEventIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.At(1, func() {})
	e.Run(Second)
	e.Cancel(ev) // must not panic or corrupt the heap
	e.At(2*Second, func() {})
	e.Run(3 * Second)
}

func TestEngineRescheduleMovesEvent(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.At(10*Microsecond, func() { at = e.Now() })
	e.Reschedule(ev, 50*Microsecond)
	e.Run(Second)
	if at != 50*Microsecond {
		t.Fatalf("rescheduled event fired at %v, want 50µs", at)
	}
}

func TestEngineRescheduleRearmsFiredEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	ev := e.At(10, func() { count++ })
	e.Run(Microsecond)
	e.Reschedule(ev, 2*Microsecond)
	e.Run(Second)
	if count != 2 {
		t.Fatalf("event fired %d times, want 2", count)
	}
}

func TestEngineRunStopsAtUntil(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(2*Second, func() { fired = true })
	e.Run(Second)
	if fired {
		t.Fatal("event beyond until fired")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run(3 * Second)
	if !fired {
		t.Fatal("event not fired on extended run")
	}
}

func TestEnginePastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10*Microsecond, func() {
		e.At(5*Microsecond, func() { at = e.Now() }) // in the past
	})
	e.Run(Second)
	if at != 10*Microsecond {
		t.Fatalf("past event fired at %v, want clamped to 10µs", at)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run(Second)
	if count != 1 {
		t.Fatalf("processed %d events after Stop, want 1", count)
	}
}

func TestEngineProcessedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func() {})
	}
	e.Run(Second)
	if e.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", e.Processed())
	}
}

// Property: for any batch of event times, execution order is sorted.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			at := Time(off) * Microsecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run(Second)
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// countAction is a reusable Action for pooled-event tests.
type countAction struct {
	order *[]int
	id    int
}

func (a *countAction) Run() { *a.order = append(*a.order, a.id) }

func TestEngineDoOrdersLikeAt(t *testing.T) {
	// Do-scheduled (pooled) and At-scheduled events share one clock and one
	// insertion sequence: same-instant events fire in scheduling order
	// regardless of which path scheduled them.
	e := NewEngine()
	var order []int
	e.At(5*Microsecond, func() { order = append(order, 0) })
	e.Do(5*Microsecond, &countAction{&order, 1})
	e.At(5*Microsecond, func() { order = append(order, 2) })
	e.Do(3*Microsecond, &countAction{&order, 3})
	e.Run(Second)
	want := []int{3, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// chainAction re-schedules itself until limit firings, so at most one
// pooled event is ever pending — the recycling fast path.
type chainAction struct {
	e     *Engine
	n     int
	limit int
}

func (a *chainAction) Run() {
	a.n++
	if a.n < a.limit {
		a.e.Do(a.e.Now()+1, a)
	}
}

func TestEngineDoRecyclesEvents(t *testing.T) {
	e := NewEngine()
	chain := &chainAction{e: e, limit: 1000}
	e.Do(0, chain)
	e.Run(Second)
	if chain.n != 1000 {
		t.Fatalf("fired %d pooled events, want 1000", chain.n)
	}
	// Sequential events recycle through the free list: the pool must be a
	// couple of structs, not one per event.
	if len(e.free) == 0 || len(e.free) > 4 {
		t.Fatalf("free list holds %d events after 1000 sequential Do, want 1..4", len(e.free))
	}
}

func TestEngineDoZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	var order []int
	act := &countAction{&order, 1}
	// Warm up the free list and the heap's backing array.
	e.Do(0, act)
	e.Run(Microsecond)
	allocs := testing.AllocsPerRun(1000, func() {
		order = order[:0]
		e.Do(e.Now(), act)
		e.Run(e.Now() + 1)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Do+Run allocates %.1f objects/op, want 0", allocs)
	}
}

func TestEngineCancelAfterRecycleIsSafe(t *testing.T) {
	// A fired At-event's handle must stay inert even while the engine is
	// recycling pooled events underneath: At-events are never pushed to
	// the free list, so a stale Cancel can only ever hit the caller's own
	// (fired) event, never a pooled event reusing its memory.
	e := NewEngine()
	var order []int
	handle := e.At(1, func() { order = append(order, 0) })
	e.Run(Microsecond)

	// Churn the pool, then leave one pooled event pending.
	act := &countAction{&order, 1}
	for i := 0; i < 10; i++ {
		e.Do(e.Now()+Time(i), act)
	}
	e.Run(100 * Microsecond)
	e.Do(Millisecond, &countAction{&order, 2})

	e.Cancel(handle) // stale cancel: must not disturb the pending pooled event
	e.Run(Second)
	if got := order[len(order)-1]; got != 2 {
		t.Fatalf("pending pooled event lost after stale Cancel (last fired id = %d, want 2)", got)
	}
}

func TestEngineRescheduleAfterRecycleRearmsOwnEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	handle := e.At(1, func() { count++ })
	e.Run(Microsecond)

	var order []int
	act := &countAction{&order, 1}
	for i := 0; i < 10; i++ {
		e.Do(e.Now()+Time(i), act)
	}
	e.Run(100 * Microsecond)

	// Re-arming the fired handle after pool churn must fire the caller's
	// own callback exactly once more, not any pooled action.
	e.Reschedule(handle, 2*Millisecond)
	e.Run(Second)
	if count != 2 {
		t.Fatalf("rescheduled event fired %d times total, want 2", count)
	}
}

func TestEngineDoPastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10*Microsecond, func() {
		e.Do(5*Microsecond, &countAction{&order, 1}) // in the past
	})
	e.Run(Second)
	if len(order) != 1 {
		t.Fatal("past-scheduled pooled event must still fire (clamped to now)")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{16 * Microsecond, "16µs"},
		{2500 * Microsecond, "2.5ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineSetCheckRunsAfterEveryEvent(t *testing.T) {
	// The audit hook must fire once per processed event — closure and
	// pooled (Do) paths alike — after the event's effects, with Now at the
	// event's time.
	e := NewEngine()
	var checks int
	var times []Time
	var fired int
	e.SetCheck(func() {
		checks++
		times = append(times, e.Now())
		if checks != fired {
			t.Fatalf("check %d ran with %d events fired", checks, fired)
		}
	})
	for i := 1; i <= 3; i++ {
		tm := Time(i) * Microsecond
		e.At(tm, func() { fired++ })
	}
	e.Do(4*Microsecond, &checkedAction{&fired})
	e.Run(Second)
	if checks != 4 {
		t.Fatalf("check ran %d times, want 4", checks)
	}
	for i, at := range times {
		if at != Time(i+1)*Microsecond {
			t.Fatalf("check %d ran at %v, want %v", i, at, Time(i+1)*Microsecond)
		}
	}
}

type checkedAction struct{ fired *int }

func (a *checkedAction) Run() { *a.fired++ }

func TestEngineSetCheckNilIsOff(t *testing.T) {
	e := NewEngine()
	n := 0
	e.SetCheck(func() { n++ })
	e.SetCheck(nil)
	e.At(Microsecond, func() {})
	e.Run(Second)
	if n != 0 {
		t.Fatalf("cleared check still ran %d times", n)
	}
}
