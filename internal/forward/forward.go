// Package forward implements the packet-forwarding schemes the paper
// compares RIPPLE against: predetermined unicast routing over plain DCF
// ("D"), direct single-hop SPR ("S"), the AFR single-hop aggregation scheme
// ("A"), and the opportunistic preExOR and MCExOR schemes from §II. The
// RIPPLE scheme itself lives in internal/core and shares this package's
// plumbing.
package forward

import (
	"ripple/internal/audit"
	"ripple/internal/mac"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// Scheme is one station's forwarding agent: it owns the station's MAC
// behaviour (it is the radio.MAC upcall target) and accepts locally
// originated packets from the transport layer.
type Scheme interface {
	radio.MAC
	// Send hands a locally originated packet to the MAC send queue;
	// it reports false when the queue is full and the packet was dropped.
	Send(p *pkt.Packet) bool
	// QueueLen returns the current MAC send-queue depth, including any
	// in-service (transmitted but unacknowledged) batch.
	QueueLen() int
	// Crash removes the station from the network: every queued, in-service
	// and relay-custody packet is released back to its pool, pending
	// timers are cancelled, and all MAC upcalls are ignored until Recover.
	// Receptions already in flight at the medium finish their scheduled
	// bookkeeping (so the pool stays balanced) but are not processed.
	Crash()
	// Recover brings a crashed station back with empty MAC state and
	// resynchronises its carrier-sense view with the medium.
	Recover()
}

// Counters tallies per-station MAC-level events for a run.
type Counters struct {
	TxFrames     uint64 // frames transmitted (including relays and ACKs)
	TxData       uint64 // data frames transmitted
	TxPackets    uint64 // upper-layer packets transmitted (incl. retx)
	RxData       uint64 // data frames decoded and addressed to us
	AckTimeouts  uint64 // exchanges that ended in timeout
	Retries      uint64 // frame retransmissions
	MACDrops     uint64 // packets dropped after exceeding the retry limit
	QueueDrops   uint64 // packets rejected by a full interface queue
	Relays       uint64 // opportunistic relays transmitted
	RelayCancels uint64 // relay timers cancelled by sensed carrier
	Duplicates   uint64 // duplicate receptions suppressed
	Unreachable  uint64 // packets dropped because the flow's destination is unreachable
	CrashDrops   uint64 // packets released from custody by a station crash
}

// RouteBook holds the per-flow routes for a run and answers the two
// questions schemes ask: "who is my next hop" (predetermined) and "what is
// the prioritised forwarder list from here" (opportunistic). Forwarder
// lists are capped at MaxForwarders intermediate stations (paper Remark 4).
type RouteBook struct {
	paths         map[int]routing.Path
	maxForwarders int
	// fwdCache memoizes FwdList per (flow, from, toward): schemes ask for
	// the same list on every transmission of a flow, and building it is a
	// per-frame allocation otherwise. Cached slices are immutable — a
	// route update replaces the entries, it never rewrites them — so
	// frames may carry them by reference.
	fwdCache map[fwdKey][]pkt.NodeID

	// Failure-aware degradation, active only under fault injection.
	// failThreshold gates everything: 0 (the default) makes every Note*
	// call a no-op, so fault-free runs pay nothing. Streaks and blacklists
	// are scoped per (flow, sender): a station that keeps abandoning
	// packets suspects its *own* path next hop, and only its own forwarder
	// list loses that hop — a flow-global blacklist would knock a live
	// relay out of every other station's list. Entries last until the next
	// route Update (the next epoch re-decides from the fault-masked
	// table).
	failThreshold int
	consecFails   map[blKey]int
	blacklist     map[blKey]map[pkt.NodeID]bool
	// unreachable flags flows whose destination the current epoch world
	// cannot reach; schemes drop such traffic at the source (counted as
	// Counters.Unreachable) instead of burning retries. unreachDrops
	// attributes those drops per flow for FlowResult.
	unreachable  map[int]bool
	unreachDrops map[int]int64
}

type fwdKey struct {
	flow         int
	from, toward pkt.NodeID
}

// blKey scopes failure streaks and blacklists to one sender of one flow.
type blKey struct {
	flow int
	from pkt.NodeID
}

// NewRouteBook creates a route book; maxForwarders caps forwarder lists
// (the paper's default is 5).
func NewRouteBook(maxForwarders int) *RouteBook {
	return &RouteBook{
		paths:         make(map[int]routing.Path),
		maxForwarders: maxForwarders,
		fwdCache:      make(map[fwdKey][]pkt.NodeID),
	}
}

// Add registers the path for a flow (source to destination order). The
// forwarder cap follows the paper's convention: the destination counts as
// the highest-priority forwarder, so a cap of 5 allows the destination plus
// four intermediate stations.
func (b *RouteBook) Add(flow int, p routing.Path) {
	b.paths[flow] = p.Limit(b.maxForwarders - 1)
	b.invalidate(flow)
	// A fresh route absolves the flow's blacklists and failure streaks: the
	// route decision already accounts for the current fault overlay.
	for k := range b.blacklist {
		if k.flow == flow {
			delete(b.blacklist, k)
		}
	}
	for k := range b.consecFails {
		if k.flow == flow {
			delete(b.consecFails, k)
		}
	}
}

// invalidate drops a flow's cached forwarder lists (in-flight frames keep
// the old slices; they are never mutated).
func (b *RouteBook) invalidate(flow int) {
	for k := range b.fwdCache {
		if k.flow == flow {
			delete(b.fwdCache, k)
		}
	}
}

// Update replaces a flow's path mid-run (route policies recompute routes
// each epoch). The forwarder cap applies exactly as in Add. Schemes read
// the book per transmission, so traffic still at the source or at stations
// shared by both routes follows the new path from its next transmission;
// packets already queued at a station the new route drops have no next hop
// any more and are dropped there (counted as MACDrops) — re-routing under
// load is not free, and loss/MoS results reflect that.
func (b *RouteBook) Update(flow int, p routing.Path) { b.Add(flow, p) }

// Path returns the registered path for a flow (nil if unknown).
func (b *RouteBook) Path(flow int) routing.Path { return b.paths[flow] }

// NextHop returns the next hop for a packet of the given flow currently at
// `from` and ultimately bound for endpoint `dst`. Blacklisted forwarders
// are skipped over — the packet is handed to the next station down the
// path (never past dst, which is exempt from blacklisting).
func (b *RouteBook) NextHop(flow int, from, dst pkt.NodeID) (pkt.NodeID, bool) {
	p, ok := b.paths[flow]
	if !ok {
		return 0, false
	}
	hop, ok := p.NextHop(from, dst)
	if !ok {
		return hop, ok
	}
	if bl := b.blacklist[blKey{flow: flow, from: from}]; bl != nil {
		for hop != dst && bl[hop] {
			next, ok := p.NextHop(hop, dst)
			if !ok {
				return hop, false
			}
			hop = next
		}
	}
	return hop, true
}

// FwdList returns the destination-first prioritised forwarder list for a
// transmission by `from` toward endpoint `dst` on the given flow. The
// returned slice is owned by the RouteBook and must be treated as
// immutable (frames embed it directly).
func (b *RouteBook) FwdList(flow int, from, dst pkt.NodeID) []pkt.NodeID {
	key := fwdKey{flow: flow, from: from, toward: dst}
	if list, ok := b.fwdCache[key]; ok {
		return list
	}
	p, ok := b.paths[flow]
	if !ok {
		return nil
	}
	list := p.FwdList(from, dst)
	if bl := b.blacklist[blKey{flow: flow, from: from}]; len(bl) > 0 {
		filtered := make([]pkt.NodeID, 0, len(list))
		for _, n := range list {
			if n != dst && bl[n] {
				continue
			}
			filtered = append(filtered, n)
		}
		list = filtered
	}
	b.fwdCache[key] = list
	return list
}

// OnPath reports whether node n participates in the flow's path.
func (b *RouteBook) OnPath(flow int, n pkt.NodeID) bool {
	p, ok := b.paths[flow]
	return ok && p.Contains(n)
}

// EnableFailureDetection turns on forwarder blacklisting: after
// `threshold` consecutive abandoned packets on a flow (retry budget
// exhausted, with no successful acknowledgement in between) the flow's
// preferred forwarder is blacklisted until the next route update.
// threshold <= 0 selects 3.
// Left unenabled — the default — every failure-detection hook is a no-op.
func (b *RouteBook) EnableFailureDetection(threshold int) {
	if threshold <= 0 {
		threshold = 3
	}
	b.failThreshold = threshold
}

// NoteTxFailure records one abandoned packet by `from` for the flow —
// MACs call it at the terminal drop, not per ACK timeout, because on a
// lossy channel single timeouts are routine while a dead next hop
// exhausts every packet's retry budget. When the sender's
// consecutive-failure streak reaches the enabled threshold, the sender
// blacklists its own path next hop — the station whose silence it has
// been observing — from its own forwarder list, and the streak resets.
// The sender must keep at least one other non-destination forwarder:
// blacklisting the only relay would leave it transmitting straight at a
// (likely out-of-range) destination, a guaranteed outage worse than
// hammering a possibly dead forwarder — single-relay routes rely on the
// next epoch's fault-masked route instead. No-op unless
// EnableFailureDetection was called.
func (b *RouteBook) NoteTxFailure(flow int, from, dst pkt.NodeID) {
	if b.failThreshold == 0 {
		return
	}
	key := blKey{flow: flow, from: from}
	if b.consecFails == nil {
		b.consecFails = make(map[blKey]int)
	}
	b.consecFails[key]++
	if b.consecFails[key] < b.failThreshold {
		return
	}
	b.consecFails[key] = 0
	p, ok := b.paths[flow]
	if !ok {
		return
	}
	target, ok := p.NextHop(from, dst)
	if !ok || target == dst {
		return
	}
	relays := 0
	for _, n := range b.FwdList(flow, from, dst) {
		if n != dst && n != target {
			relays++
		}
	}
	if relays < 1 {
		return
	}
	if b.blacklist == nil {
		b.blacklist = make(map[blKey]map[pkt.NodeID]bool)
	}
	m := b.blacklist[key]
	if m == nil {
		m = make(map[pkt.NodeID]bool)
		b.blacklist[key] = m
	}
	if !m[target] {
		m[target] = true
		b.invalidate(flow)
	}
}

// NoteTxSuccess resets the sender's consecutive-failure streak for the
// flow (an acknowledged exchange proves its forwarder set alive). No-op
// unless failure detection is enabled.
func (b *RouteBook) NoteTxSuccess(flow int, from pkt.NodeID) {
	if b.failThreshold == 0 || b.consecFails == nil {
		return
	}
	delete(b.consecFails, blKey{flow: flow, from: from})
}

// Blacklisted reports whether sender `from` currently blacklists station
// n for the flow (tests and diagnostics).
func (b *RouteBook) Blacklisted(flow int, from, n pkt.NodeID) bool {
	return b.blacklist[blKey{flow: flow, from: from}][n]
}

// SetUnreachable flags or clears a flow whose destination the current
// epoch world cannot reach. Schemes consult Unreachable at their send and
// grant points and drop the flow's traffic immediately (counted as
// Counters.Unreachable) instead of looping retries at the MAC.
func (b *RouteBook) SetUnreachable(flow int, v bool) {
	if !v {
		if b.unreachable != nil {
			delete(b.unreachable, flow)
		}
		return
	}
	if b.unreachable == nil {
		b.unreachable = make(map[int]bool)
	}
	b.unreachable[flow] = true
}

// Unreachable reports whether the flow is currently flagged unreachable.
func (b *RouteBook) Unreachable(flow int) bool { return b.unreachable[flow] }

// NoteUnreachableDrop attributes one unreachable-destination drop to the
// flow (surfaced as FlowResult.Unreachable).
func (b *RouteBook) NoteUnreachableDrop(flow int) {
	if b.unreachDrops == nil {
		b.unreachDrops = make(map[int]int64)
	}
	b.unreachDrops[flow]++
}

// UnreachableDrops returns the flow's unreachable-destination drop count.
func (b *RouteBook) UnreachableDrops(flow int) int64 { return b.unreachDrops[flow] }

// Env bundles the per-station dependencies a scheme instance needs.
type Env struct {
	Eng     *sim.Engine
	Med     *radio.Medium
	P       phys.Params
	ID      pkt.NodeID
	RNG     *sim.RNG
	Routes  *RouteBook
	Deliver func(*pkt.Packet) // hand packet to the local transport layer
	C       *Counters
	// RateFor, when non-nil, enables the multi-rate extension: it returns
	// the PHY data rate to use toward a receiver (paper §V future work).
	RateFor func(to pkt.NodeID) float64
	// Audit is the deep-audit plane's auditor, nil unless the run enabled
	// deep auditing. Schemes create their MAC queues through NewQueue so
	// the queue is tapped when an auditor is present.
	Audit *audit.Auditor
}

// NewQueue builds this station's MAC send queue, registering it with the
// deep-audit plane when one is active (Audit nil-checks internally).
func (e *Env) NewQueue(limit int) *mac.Queue {
	q := mac.NewQueue(limit)
	q.SetAudit(e.Audit.RegisterQueue(int(e.ID), limit, q.Len))
	return q
}

// Rate returns the PHY rate toward `to`, or 0 (base rate) when the
// multi-rate extension is off.
func (e *Env) Rate(to pkt.NodeID) float64 {
	if e.RateFor == nil {
		return 0
	}
	return e.RateFor(to)
}

// NewContender builds the DCF contender for this station, routing grants to
// the given callback.
func (e *Env) NewContender(grant func()) *mac.Contender {
	return mac.NewContender(e.Eng, e.P, e.RNG, grant)
}

// Acked reports whether uid appears in a frame's acknowledged-UID list.
// A linear scan: the list is bounded by the aggregation limit (16), so it
// beats building a lookup map per ACK on the hot path.
func Acked(ackedUIDs []uint64, uid uint64) bool {
	for _, id := range ackedUIDs {
		if id == uid {
			return true
		}
	}
	return false
}

// dedupe is a bounded set of recently seen identifiers, used to suppress
// duplicate receptions and duplicate relays.
type dedupe struct {
	seen  map[uint64]struct{}
	order []uint64
	cap   int
}

func newDedupe(capacity int) *dedupe {
	// The map grows on demand: preallocating `capacity` buckets up front
	// costs ~100 KB per station per run, which dominated a whole
	// campaign's allocations before the map ever held a dozen entries.
	return &dedupe{seen: make(map[uint64]struct{}), cap: capacity}
}

// Seen reports whether id was seen before, inserting it either way.
func (d *dedupe) Seen(id uint64) bool {
	if _, ok := d.seen[id]; ok {
		return true
	}
	d.seen[id] = struct{}{}
	d.order = append(d.order, id)
	if len(d.order) > d.cap {
		old := d.order[0]
		d.order = d.order[1:]
		delete(d.seen, old)
	}
	return false
}
