package forward

import (
	"testing"

	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

func TestRTSCTSExchangeDelivers(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicastRTS(e, 1, 1) // protect every frame
	})
	h.inject(0, 1, 5, 1)
	h.eng.Run(100 * sim.Millisecond)
	if got := len(h.delivered[1]); got != 5 {
		t.Fatalf("delivered %d packets, want 5", got)
	}
	// Per packet: RTS + DATA from the sender, CTS + ACK from the receiver.
	if h.counters[0].TxFrames != 10 {
		t.Fatalf("sender transmitted %d frames, want 10 (RTS+DATA each)", h.counters[0].TxFrames)
	}
	if h.counters[1].TxFrames != 10 {
		t.Fatalf("receiver transmitted %d frames, want 10 (CTS+ACK each)", h.counters[1].TxFrames)
	}
	if h.counters[0].AckTimeouts != 0 {
		t.Fatalf("timeouts = %d on a clean link", h.counters[0].AckTimeouts)
	}
}

func TestRTSThresholdSkipsSmallFrames(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicastRTS(e, 1, 100000) // threshold far above any frame
	})
	h.inject(0, 1, 5, 1)
	h.eng.Run(100 * sim.Millisecond)
	if got := len(h.delivered[1]); got != 5 {
		t.Fatalf("delivered %d packets, want 5", got)
	}
	if h.counters[0].TxFrames != 5 {
		t.Fatalf("sender transmitted %d frames, want 5 (no RTS below threshold)", h.counters[0].TxFrames)
	}
}

// TestRTSCTSMitigatesHiddenTerminals is the textbook scenario: A and C are
// mutually hidden, both saturating the middle station B with long (16-
// aggregate) frames. Under plain contention the long data frames collide at
// B constantly; with RTS/CTS only the short RTS frames collide and B's CTS
// silences the loser, so far more data survives.
func TestRTSCTSMitigatesHiddenTerminals(t *testing.T) {
	// A(0) — 200m — B(1) — 200m — C(2): A↔C at 400 m.
	// Narrow carrier sensing (CS = RX range) so A cannot sense C at all.
	rc := idealRadio()
	rc.CSThreshDBm = rc.RXThreshDBm
	positions := []radio.Pos{{X: 0}, {X: 200}, {X: 400}}
	paths := map[int]routing.Path{1: {0, 1}, 2: {2, 1}}

	run := func(rtsThresh int) (delivered int) {
		h := newHarness(t, positions, rc, paths, func(e Env) Scheme {
			return NewUnicastRTS(e, 16, rtsThresh)
		})
		// Saturate both senders with far more than fits in the run, and
		// keep refilling so the queues never drain.
		refill := func() {}
		refill = func() {
			for h.schemes[0].QueueLen() < 40 {
				h.inject(0, 1, 1, 1)
			}
			for h.schemes[2].QueueLen() < 40 {
				h.inject(2, 2, 1, 1)
			}
			h.eng.After(sim.Millisecond, refill)
		}
		refill()
		h.eng.Run(200 * sim.Millisecond)
		return len(h.delivered[1])
	}

	gotDCF := run(0)
	gotRTS := run(1)
	t.Logf("hidden saturation, 16-aggregate frames: plain=%d delivered, RTS/CTS=%d", gotDCF, gotRTS)
	if gotRTS < gotDCF*3/2 {
		t.Fatalf("RTS/CTS should substantially outdeliver plain contention under hidden terminals: %d vs %d",
			gotRTS, gotDCF)
	}
}

// TestNAVSilencesOverhearingStation: a third station with pending traffic
// must hold off for the NAV duration announced by an overheard RTS.
func TestNAVSilencesOverhearingStation(t *testing.T) {
	// All three stations in range of each other.
	positions := []radio.Pos{{X: 0}, {X: 100}, {X: 100, Y: 100}}
	paths := map[int]routing.Path{1: {0, 1}, 2: {2, 1}}
	h := newHarness(t, positions, idealRadio(), paths, func(e Env) Scheme {
		return NewUnicastRTS(e, 1, 1)
	})
	h.inject(0, 1, 20, 1)
	h.inject(2, 2, 20, 1)
	h.eng.Run(100 * sim.Millisecond)
	if got := len(h.delivered[1]); got != 40 {
		t.Fatalf("delivered %d packets, want 40", got)
	}
	// NAV cannot prevent same-slot (regular) collisions, but those hit
	// only the cheap RTS frames: every data frame must go through
	// unscathed, which the complete delivery above already proves. Check
	// that collisions stayed a small fraction of the 40 exchanges.
	if h.med.Counters.FramesCollided > 15 {
		t.Fatalf("collisions = %d with full NAV coverage", h.med.Counters.FramesCollided)
	}
}
