package forward

import (
	"testing"

	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// TestNAVExtendsNotShrinks: a shorter overheard NAV must not cut an
// existing longer one short.
func TestNAVExtendsNotShrinks(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicastRTS(e, 1, 1)
	})
	u, ok := h.schemes[0].(*Unicast)
	if !ok {
		t.Fatal("scheme is not *Unicast")
	}
	u.setNAV(100 * sim.Microsecond)
	u.setNAV(50 * sim.Microsecond) // shorter: ignored
	if u.navUntil != 100*sim.Microsecond {
		t.Fatalf("navUntil = %v, want 100µs", u.navUntil)
	}
	u.setNAV(200 * sim.Microsecond) // longer: extends
	if u.navUntil != 200*sim.Microsecond {
		t.Fatalf("navUntil = %v, want 200µs", u.navUntil)
	}
}

// TestNAVExpiryReleasesContender: after the NAV elapses on an idle channel
// the station's pending transmission proceeds.
func TestNAVExpiryReleasesContender(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicastRTS(e, 1, 0) // no RTS for own frames; NAV still honoured
	})
	u := h.schemes[0].(*Unicast)
	// NAV set externally (as if an RTS was overheard), then traffic queued.
	u.setNAV(5 * sim.Millisecond)
	h.inject(0, 1, 1, 1)
	h.eng.Run(2 * sim.Millisecond)
	if len(h.delivered[1]) != 0 {
		t.Fatal("transmitted during NAV")
	}
	h.eng.Run(20 * sim.Millisecond)
	if len(h.delivered[1]) != 1 {
		t.Fatal("did not transmit after NAV expiry")
	}
}

// TestCTSNavDurCoversRest: the CTS inherits the RTS NAV minus its own slot.
func TestCTSNavDurCoversRest(t *testing.T) {
	p := phys.Default()
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicastRTS(e, 1, 1)
	})
	var rts, cts *pkt.Frame
	h.med.Trace = func(_ sim.Time, ev string, _ pkt.NodeID, f *pkt.Frame) {
		if ev != "tx" {
			return
		}
		switch f.Kind {
		case pkt.Rts:
			if rts == nil {
				rts = f
			}
		case pkt.Cts:
			if cts == nil {
				cts = f
			}
		}
	}
	h.inject(0, 1, 1, 1)
	h.eng.Run(10 * sim.Millisecond)
	if rts == nil || cts == nil {
		t.Fatal("RTS/CTS not observed")
	}
	want := rts.NavDur - p.SIFS - p.CTSTime()
	if cts.NavDur != want {
		t.Fatalf("CTS NavDur = %v, want %v", cts.NavDur, want)
	}
	if rts.NavDur <= 0 || cts.NavDur <= 0 {
		t.Fatal("NAV durations must be positive")
	}
}

// TestRTSMultiHopRelay: RTS/CTS composes with multi-hop forwarding.
func TestRTSMultiHopRelay(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicastRTS(e, 16, 1)
	})
	h.inject(0, 1, 20, 3)
	h.eng.Run(200 * sim.Millisecond)
	if got := len(h.delivered[3]); got != 20 {
		t.Fatalf("delivered %d/20 over the protected multi-hop path", got)
	}
}

// TestNAVDoesNotBlockSIFSResponses: a station under NAV still answers an
// incoming data frame with its ACK (only contention is deferred).
func TestNAVDoesNotBlockSIFSResponses(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicastRTS(e, 1, 0)
	})
	// Receiver's NAV set; the sender's data must still be ACKed.
	h.schemes[1].(*Unicast).setNAV(50 * sim.Millisecond)
	h.inject(0, 1, 3, 1)
	h.eng.Run(20 * sim.Millisecond)
	if len(h.delivered[1]) != 3 {
		t.Fatalf("delivered %d/3 with receiver under NAV", len(h.delivered[1]))
	}
	if h.counters[0].AckTimeouts != 0 {
		t.Fatal("ACKs must not be suppressed by NAV")
	}
}
