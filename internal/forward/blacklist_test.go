package forward

import (
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/routing"
)

// Failure notes are no-ops until EnableFailureDetection: fault-free runs
// must not pay for (or be perturbed by) blacklist state.
func TestBlacklistDisabledByDefault(t *testing.T) {
	b := NewRouteBook(5)
	b.Add(1, routing.Path{0, 1, 2, 3})
	for i := 0; i < 10; i++ {
		b.NoteTxFailure(1, 0, 3)
	}
	if b.Blacklisted(1, 0, 1) {
		t.Fatal("blacklisted without EnableFailureDetection")
	}
	if hop, ok := b.NextHop(1, 0, 3); !ok || hop != 1 {
		t.Fatalf("NextHop = %d, %v", hop, ok)
	}
}

// After `threshold` consecutive terminal drops the sender blacklists its
// own path next hop, and only its own forwarder view changes.
func TestBlacklistScopedToSender(t *testing.T) {
	b := NewRouteBook(5)
	b.EnableFailureDetection(3)
	b.Add(1, routing.Path{0, 1, 2, 3, 4})
	for i := 0; i < 3; i++ {
		b.NoteTxFailure(1, 0, 4)
	}
	if !b.Blacklisted(1, 0, 1) {
		t.Fatal("sender 0 did not blacklist its next hop after 3 failures")
	}
	// The sender's own route view skips the dead hop…
	if hop, ok := b.NextHop(1, 0, 4); !ok || hop != 2 {
		t.Fatalf("NextHop(0) = %d, %v, want 2", hop, ok)
	}
	for _, n := range b.FwdList(1, 0, 4) {
		if n == 1 {
			t.Fatal("blacklisted hop still in sender 0's forwarder list")
		}
	}
	// …but other stations' views are untouched: a flow-global blacklist
	// would knock a live relay out of every list.
	if b.Blacklisted(1, 2, 1) {
		t.Fatal("station 2 inherited station 0's blacklist")
	}
	if hop, ok := b.NextHop(1, 1, 4); !ok || hop != 2 {
		t.Fatalf("NextHop(1) = %d, %v, want 2", hop, ok)
	}
	found := false
	for _, n := range b.FwdList(1, 2, 4) {
		if n == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("station 2's forwarder list lost an unrelated hop")
	}
}

// A success between failures resets the streak: three failures must be
// consecutive to blacklist.
func TestBlacklistStreakResetOnSuccess(t *testing.T) {
	b := NewRouteBook(5)
	b.EnableFailureDetection(3)
	b.Add(1, routing.Path{0, 1, 2, 3})
	b.NoteTxFailure(1, 0, 3)
	b.NoteTxFailure(1, 0, 3)
	b.NoteTxSuccess(1, 0)
	b.NoteTxFailure(1, 0, 3)
	b.NoteTxFailure(1, 0, 3)
	if b.Blacklisted(1, 0, 1) {
		t.Fatal("blacklisted despite an intervening success")
	}
	b.NoteTxFailure(1, 0, 3)
	if !b.Blacklisted(1, 0, 1) {
		t.Fatal("not blacklisted after 3 consecutive failures")
	}
}

// Blacklisting the only relay of a single-relay route would leave the
// sender transmitting straight at an out-of-range destination — the
// guard keeps the relay and defers to the next epoch's route instead.
func TestBlacklistKeepsLastRelay(t *testing.T) {
	b := NewRouteBook(5)
	b.EnableFailureDetection(3)
	b.Add(1, routing.Path{0, 1, 2})
	for i := 0; i < 9; i++ {
		b.NoteTxFailure(1, 0, 2)
	}
	if b.Blacklisted(1, 0, 1) {
		t.Fatal("single-relay route lost its only relay to the blacklist")
	}
	if hop, ok := b.NextHop(1, 0, 2); !ok || hop != 1 {
		t.Fatalf("NextHop = %d, %v, want 1", hop, ok)
	}
}

// A route update (the next epoch's decision) absolves blacklists and
// streaks: the new route already reflects the fault overlay.
func TestBlacklistClearedByRouteUpdate(t *testing.T) {
	b := NewRouteBook(5)
	b.EnableFailureDetection(3)
	b.Add(1, routing.Path{0, 1, 2, 3, 4})
	for i := 0; i < 3; i++ {
		b.NoteTxFailure(1, 0, 4)
	}
	if !b.Blacklisted(1, 0, 1) {
		t.Fatal("setup: not blacklisted")
	}
	b.Update(1, routing.Path{0, 1, 2, 3, 4})
	if b.Blacklisted(1, 0, 1) {
		t.Fatal("blacklist survived a route update")
	}
	// Two residual failures from before the update must not combine with
	// one new failure — the streak was cleared too.
	b.NoteTxFailure(1, 0, 4)
	if b.Blacklisted(1, 0, 1) {
		t.Fatal("failure streak survived a route update")
	}
}

// The destination is exempt: a sender whose next hop IS the destination
// never blacklists it, no matter how many failures accumulate.
func TestBlacklistNeverTargetsDestination(t *testing.T) {
	b := NewRouteBook(5)
	b.EnableFailureDetection(3)
	b.Add(1, routing.Path{0, 1, 2})
	for i := 0; i < 9; i++ {
		b.NoteTxFailure(1, 1, 2) // sender 1's next hop is dst 2
	}
	if b.Blacklisted(1, 1, 2) {
		t.Fatal("destination was blacklisted")
	}
	if hop, ok := b.NextHop(1, 1, 2); !ok || hop != pkt.NodeID(2) {
		t.Fatalf("NextHop = %d, %v, want 2", hop, ok)
	}
}
