package forward

import (
	"testing"

	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// harness wires a real engine + ideal medium + one scheme per station, with
// per-station delivery capture — a miniature network without transports.
type harness struct {
	eng       *sim.Engine
	med       *radio.Medium
	schemes   []Scheme
	counters  []Counters
	delivered [][]*pkt.Packet
	nextUID   uint64
	nextSeq   map[int]int64
}

func idealRadio() radio.Config {
	c := radio.DefaultConfig()
	c.ShadowSigmaDB = 0
	c.BitErrorRate = 0
	return c
}

func newHarness(t *testing.T, positions []radio.Pos, rc radio.Config,
	paths map[int]routing.Path, mk func(Env) Scheme) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine()}
	h.med = radio.NewMedium(h.eng, rc, phys.Default(), positions, sim.NewRNG(1, 1))
	routes := NewRouteBook(5)
	for id, p := range paths {
		routes.Add(id, p)
	}
	h.schemes = make([]Scheme, len(positions))
	h.counters = make([]Counters, len(positions))
	h.delivered = make([][]*pkt.Packet, len(positions))
	for i := range positions {
		i := i
		env := Env{
			Eng:    h.eng,
			Med:    h.med,
			P:      phys.Default(),
			ID:     pkt.NodeID(i),
			RNG:    sim.NewRNG(7, 100+uint64(i)),
			Routes: routes,
			C:      &h.counters[i],
			Deliver: func(p *pkt.Packet) {
				h.delivered[i] = append(h.delivered[i], p)
			},
		}
		h.schemes[i] = mk(env)
		h.med.Attach(pkt.NodeID(i), h.schemes[i])
	}
	return h
}

func (h *harness) inject(from pkt.NodeID, flow int, n int, dst pkt.NodeID) {
	if h.nextSeq == nil {
		h.nextSeq = make(map[int]int64)
	}
	for k := 0; k < n; k++ {
		h.nextUID++
		seq := h.nextSeq[flow]
		h.nextSeq[flow]++
		p := &pkt.Packet{
			UID: uint64(flow)<<32 | h.nextUID, FlowID: flow,
			Seq: seq, Bytes: 1000, Src: from, Dst: dst,
			Created: h.eng.Now(),
		}
		h.schemes[from].Send(p)
	}
}

func linePositions(n int) []radio.Pos {
	out := make([]radio.Pos, n)
	for i := range out {
		out[i] = radio.Pos{X: float64(i * 100)}
	}
	return out
}

func TestUnicastSingleHopExchange(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicast(e, 1)
	})
	h.inject(0, 1, 5, 1)
	h.eng.Run(50 * sim.Millisecond)
	if got := len(h.delivered[1]); got != 5 {
		t.Fatalf("delivered %d packets, want 5", got)
	}
	if h.counters[0].AckTimeouts != 0 {
		t.Fatalf("unexpected timeouts on a clean link: %d", h.counters[0].AckTimeouts)
	}
	// Order preserved.
	for i, p := range h.delivered[1] {
		if p.Seq != int64(i) {
			t.Fatalf("delivery order broken: %v", h.delivered[1])
		}
	}
}

func TestUnicastMultiHopRelay(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicast(e, 1)
	})
	h.inject(0, 1, 10, 3)
	h.eng.Run(100 * sim.Millisecond)
	if got := len(h.delivered[3]); got != 10 {
		t.Fatalf("destination got %d packets, want 10", got)
	}
	if len(h.delivered[1]) != 0 || len(h.delivered[2]) != 0 {
		t.Fatal("forwarders must not deliver to their own transport")
	}
}

func TestAFRAggregatesIntoOneFrame(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicast(e, 16)
	})
	h.inject(0, 1, 16, 1)
	h.eng.Run(50 * sim.Millisecond)
	if got := len(h.delivered[1]); got != 16 {
		t.Fatalf("delivered %d, want 16", got)
	}
	if h.counters[0].TxData != 1 {
		t.Fatalf("AFR sent %d data frames for 16 packets, want 1 aggregate", h.counters[0].TxData)
	}
}

func TestDCFSendsOneFramePerPacket(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicast(e, 1)
	})
	h.inject(0, 1, 8, 1)
	h.eng.Run(50 * sim.Millisecond)
	if h.counters[0].TxData != 8 {
		t.Fatalf("DCF sent %d data frames for 8 packets, want 8", h.counters[0].TxData)
	}
}

func TestUnicastRetryAndDropWhenPeerSilent(t *testing.T) {
	// Destination beyond decode range: every frame times out, and the
	// packet is dropped after the retry limit.
	paths := map[int]routing.Path{1: {0, 1}}
	positions := []radio.Pos{{X: 0}, {X: 600}} // beyond CS and RX
	h := newHarness(t, positions, idealRadio(), paths, func(e Env) Scheme {
		return NewUnicast(e, 1)
	})
	h.inject(0, 1, 1, 1)
	h.eng.Run(sim.Second)
	p := phys.Default()
	if got := h.counters[0].AckTimeouts; got != uint64(p.RetryLimit)+1 {
		t.Fatalf("timeouts = %d, want %d", got, p.RetryLimit+1)
	}
	if h.counters[0].MACDrops != 1 {
		t.Fatalf("MACDrops = %d, want 1", h.counters[0].MACDrops)
	}
	if h.schemes[0].QueueLen() != 0 {
		t.Fatal("dropped packet must leave the queue")
	}
}

func TestUnicastQueueOverflowDrops(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1}}
	h := newHarness(t, linePositions(2), idealRadio(), paths, func(e Env) Scheme {
		return NewUnicast(e, 1)
	})
	h.inject(0, 1, 60, 1) // queue limit is 50
	if h.counters[0].QueueDrops != 10 {
		t.Fatalf("QueueDrops = %d, want 10", h.counters[0].QueueDrops)
	}
}

func TestPreExOROpportunisticDelivery(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, func(e Env) Scheme {
		return NewPreExOR(e)
	})
	h.inject(0, 1, 10, 3)
	h.eng.Run(200 * sim.Millisecond)
	if got := len(h.delivered[3]); got != 10 {
		t.Fatalf("delivered %d packets, want 10", got)
	}
	// With zero shadowing the frame reaches station 2 (200 m) directly:
	// station 2 should take custody (skipping 1), so station 1 relays
	// nothing and the total data transmissions per packet are 2.
	if h.counters[1].TxData != 0 {
		t.Fatalf("station 1 transmitted %d data frames; custody should skip it", h.counters[1].TxData)
	}
	if h.counters[2].TxData != 10 {
		t.Fatalf("station 2 transmitted %d data frames, want 10", h.counters[2].TxData)
	}
}

func TestMCExORSingleCompressedAck(t *testing.T) {
	paths := map[int]routing.Path{1: {0, 1, 2, 3}}
	h := newHarness(t, linePositions(4), idealRadio(), paths, func(e Env) Scheme {
		return NewMCExOR(e)
	})
	h.inject(0, 1, 10, 3)
	h.eng.Run(200 * sim.Millisecond)
	if got := len(h.delivered[3]); got != 10 {
		t.Fatalf("delivered %d packets, want 10", got)
	}
	// Compressed acking: for each data transmission exactly one ACK from
	// the best receiver. Total frames = data frames + 1 ACK each.
	var data, all uint64
	for i := range h.counters {
		data += h.counters[i].TxData
		all += h.counters[i].TxFrames
	}
	if all != 2*data {
		t.Fatalf("frames = %d for %d data transmissions: compressed acking should yield exactly one ACK each", all, data)
	}
}

func TestRouteBookLimitsForwarders(t *testing.T) {
	b := NewRouteBook(2)
	long := routing.Path{0, 1, 2, 3, 4, 5}
	b.Add(1, long)
	got := b.FwdList(1, 0, 5)
	if len(got) > 3 { // destination + at most 2 forwarders
		t.Fatalf("FwdList = %v, want ≤3 entries", got)
	}
}

func TestDedupe(t *testing.T) {
	d := newDedupe(3)
	if d.Seen(1) {
		t.Fatal("fresh id reported seen")
	}
	if !d.Seen(1) {
		t.Fatal("repeat id not detected")
	}
	d.Seen(2)
	d.Seen(3)
	d.Seen(4) // evicts 1
	if d.Seen(1) {
		t.Fatal("evicted id should read as fresh again")
	}
}
