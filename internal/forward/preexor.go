package forward

import (
	"ripple/internal/mac"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// PreExOR reproduces the early version of ExOR (Biswas & Morris, HotNets
// 2003) as described in §II of the paper: the source broadcasts a data
// packet with a prioritised forwarder list; every forwarder that received
// it transmits a MAC ACK in its own reserved, sequential slot (slots of
// silent "shadowed" ACKs are still waited out); the highest-priority
// receiver takes custody of the packet, caches it, and contends to forward
// it. Caching at forwarders plus independent contention is what produces
// the ~26% packet reordering the paper measures.
type PreExOR struct {
	env   Env
	queue *mac.Queue
	cont  *mac.Contender

	exchanging bool
	cur        *pkt.Packet
	curTxop    uint64
	txopSeq    uint64
	attempts   int
	heardRank  int // lowest acker rank heard for curTxop; -1 = none
	collectEv  *sim.Event

	rxSeen *dedupe            // packet UIDs delivered or taken into custody
	pend   map[uint64]*exorRx // pending receptions by TxopID

	// down marks the station crashed (fault injection): every MAC upcall
	// and local send is ignored until Recover.
	down bool
}

type exorRx struct {
	frame       *pkt.Frame
	packet      *pkt.Packet
	myRank      int
	heardHigher bool
}

var _ Scheme = (*PreExOR)(nil)

// NewPreExOR creates the per-station preExOR agent.
func NewPreExOR(env Env) *PreExOR {
	x := &PreExOR{
		env:    env,
		queue:  env.NewQueue(env.P.QueueLimit),
		rxSeen: newDedupe(4096),
		pend:   make(map[uint64]*exorRx),
	}
	x.cont = env.NewContender(x.onGrant)
	return x
}

// Send implements Scheme.
func (x *PreExOR) Send(p *pkt.Packet) bool {
	if x.down {
		x.env.C.CrashDrops++
		p.Release() // station is crashed: terminal drop point
		return false
	}
	if x.env.Routes.Unreachable(p.FlowID) {
		// The destination is known unreachable this epoch: drop at the
		// source instead of burning airtime on doomed retries.
		x.env.C.Unreachable++
		x.env.Routes.NoteUnreachableDrop(p.FlowID)
		p.Release()
		return false
	}
	p.EnqueuedAt = x.env.Eng.Now()
	if !x.queue.Push(p) {
		x.env.C.QueueDrops++
		p.Release() // queue full: terminal drop point for the sender's ref
		return false
	}
	x.maybeRequest()
	return true
}

// QueueLen implements Scheme.
func (x *PreExOR) QueueLen() int {
	n := x.queue.Len()
	if x.cur != nil {
		n++
	}
	return n
}

func (x *PreExOR) maybeRequest() {
	if x.exchanging {
		return
	}
	if x.cur == nil && x.queue.Len() == 0 {
		return
	}
	x.cont.Request()
}

func (x *PreExOR) onGrant() {
	if x.cur == nil {
		x.cur = x.queue.Pop()
		x.attempts = 0
	}
	if x.cur == nil {
		return
	}
	fwd := x.env.Routes.FwdList(x.cur.FlowID, x.env.ID, x.cur.Dst)
	if len(fwd) == 0 {
		if x.env.Routes.Unreachable(x.cur.FlowID) {
			x.env.C.Unreachable++
			x.env.Routes.NoteUnreachableDrop(x.cur.FlowID)
		} else {
			x.env.C.MACDrops++
		}
		x.cur.Release() // no route: terminal drop point
		x.cur = nil
		x.maybeRequest()
		return
	}
	x.txopSeq++
	x.curTxop = uint64(x.env.ID)<<32 | x.txopSeq
	x.heardRank = -1
	f := &pkt.Frame{
		Kind:     pkt.Data,
		Tx:       x.env.ID,
		Rx:       pkt.Broadcast,
		Origin:   x.env.ID,
		FinalDst: x.cur.Dst,
		FwdList:  fwd, // RouteBook-owned, immutable until the next route update
		TxopID:   x.curTxop,
		Packets:  []*pkt.Packet{x.cur},
		FlowID:   x.cur.FlowID,
	}
	f.Duration = x.env.P.DataTime(f.PayloadBytes(phys.MACHeaderBytes, 0, phys.ForwarderEntryBytes))
	x.cur.Retries++
	x.exchanging = true
	x.env.C.TxFrames++
	x.env.C.TxData++
	x.env.C.TxPackets++
	if x.attempts > 0 {
		x.env.C.Retries++
	}
	x.env.Med.Transmit(f)
}

// ackSlot returns the start offset of rank r's ACK slot after the data
// frame ends: SIFS, then r preceding slots of (ACK airtime + SIFS).
func (x *PreExOR) ackSlot(r int) sim.Time {
	return x.env.P.SIFS + sim.Time(r)*(x.env.P.ACKTime()+x.env.P.SIFS)
}

// scheduleEnd returns when the whole n-slot ACK schedule is over.
func (x *PreExOR) scheduleEnd(n int) sim.Time {
	return x.ackSlot(n) + 2*sim.Microsecond
}

// TxDone implements radio.MAC.
func (x *PreExOR) TxDone(f *pkt.Frame) {
	if x.down || f.Kind != pkt.Data || f.TxopID != x.curTxop || !x.exchanging {
		return
	}
	// Wait out the full sequential ACK schedule, shadowed slots included.
	x.collectEv = x.env.Eng.After(x.scheduleEnd(len(f.FwdList)), x.collectDone)
}

func (x *PreExOR) collectDone() {
	if !x.exchanging {
		return
	}
	x.exchanging = false
	if x.heardRank >= 0 {
		// Custody transferred to a closer station (or delivered): the
		// receiver holds its own reference, ours ends here.
		x.env.Routes.NoteTxSuccess(x.cur.FlowID, x.env.ID)
		x.cur.Release()
		x.cur = nil
		x.attempts = 0
		x.cont.Success()
	} else {
		x.attempts++
		x.env.C.AckTimeouts++
		if x.attempts > x.env.P.RetryLimit {
			// Terminal drops, not single ACK timeouts, feed blacklisting —
			// see the MCExOR collectDone comment.
			x.env.Routes.NoteTxFailure(x.cur.FlowID, x.env.ID, x.cur.Dst)
			x.env.C.MACDrops++
			x.cur.Release() // abandoned: terminal drop point
			x.cur = nil
			x.attempts = 0
			x.cont.Success()
		} else {
			x.cont.Failure()
		}
	}
	x.maybeRequest()
}

// FrameReceived implements radio.MAC.
func (x *PreExOR) FrameReceived(f *pkt.Frame, pktOK []bool) {
	if x.down {
		return // reception completed after the crash: the station is gone
	}
	switch f.Kind {
	case pkt.Ack:
		x.handleAck(f)
	case pkt.Data:
		x.handleData(f, pktOK)
	}
}

func (x *PreExOR) handleAck(f *pkt.Frame) {
	// Source collecting ACKs for its in-flight packet.
	if x.exchanging && f.TxopID == x.curTxop {
		if x.heardRank < 0 || f.AckerRank < x.heardRank {
			x.heardRank = f.AckerRank
		}
	}
	// Forwarder overhearing a higher-priority ACK for a pending reception.
	if rx, ok := x.pend[f.TxopID]; ok && f.AckerRank < rx.myRank {
		rx.heardHigher = true
	}
}

func (x *PreExOR) handleData(f *pkt.Frame, pktOK []bool) {
	rank := f.RankOf(x.env.ID)
	if rank < 0 {
		return // not for us
	}
	if len(pktOK) == 0 || !pktOK[0] {
		x.cont.NoteCorrupted()
		return
	}
	x.env.C.RxData++
	p := f.Packets[0]

	// Every receiving forwarder ACKs in its reserved slot.
	ack := &pkt.Frame{
		Kind:      pkt.Ack,
		Tx:        x.env.ID,
		Rx:        f.Tx,
		Origin:    x.env.ID,
		FinalDst:  f.Tx,
		TxopID:    f.TxopID,
		AckedUIDs: []uint64{p.UID},
		Acker:     x.env.ID,
		AckerRank: rank,
		FlowID:    f.FlowID,
		Duration:  x.env.P.ACKTime(),
	}
	x.env.Eng.After(x.ackSlot(rank), func() {
		if x.down || x.env.Med.Transmitting(x.env.ID) {
			return
		}
		x.env.C.TxFrames++
		x.env.Med.Transmit(ack)
	})

	if rank == 0 {
		// Destination: deliver immediately (dedupe retransmissions).
		if x.rxSeen.Seen(p.UID) {
			x.env.C.Duplicates++
			return
		}
		x.env.Deliver(p)
		return
	}

	// Forwarder: decide custody at the end of the ACK schedule. The
	// pending closure holds its own reference on the packet until the
	// custody decision (the source may abandon it meanwhile).
	rx := &exorRx{frame: f, packet: p, myRank: rank}
	x.pend[f.TxopID] = rx
	p.Ref()
	x.env.Eng.After(x.scheduleEnd(len(f.FwdList)), func() {
		if x.pend[f.TxopID] != rx {
			return // crash released this custody already (see Crash)
		}
		delete(x.pend, f.TxopID)
		if rx.heardHigher {
			p.Release()
			return // a closer station has it
		}
		if x.rxSeen.Seen(p.UID) {
			x.env.C.Duplicates++
			p.Release()
			return // already took custody of this packet earlier
		}
		p.EnqueuedAt = x.env.Eng.Now()
		if !x.queue.Push(p) {
			x.env.C.QueueDrops++
			p.Release()
			return
		}
		x.maybeRequest() // custody taken: the closure's ref becomes the queue's
	})
}

// FrameCorrupted implements radio.MAC.
func (x *PreExOR) FrameCorrupted() {
	if x.down {
		return
	}
	x.cont.NoteCorrupted()
}

// ChannelBusy implements radio.MAC.
func (x *PreExOR) ChannelBusy() {
	if x.down {
		return
	}
	x.cont.OnBusy()
}

// ChannelIdle implements radio.MAC.
func (x *PreExOR) ChannelIdle() {
	if x.down {
		return
	}
	x.cont.OnIdle()
}

// Crash implements Scheme: release every held packet — the in-flight
// custody packet, the send queue and pending custody-decision closures —
// and withdraw timers. The un-cancellable custody closures fire later,
// see the identity check in handleData.
func (x *PreExOR) Crash() {
	if x.down {
		return
	}
	x.down = true
	var dropped uint64
	x.env.Eng.Cancel(x.collectEv)
	x.exchanging = false
	if x.cur != nil {
		dropped++
		x.cur.Release()
		x.cur = nil
	}
	x.attempts = 0
	for {
		p := x.queue.Pop()
		if p == nil {
			break
		}
		dropped++
		p.Release()
	}
	for txop, rx := range x.pend {
		dropped++
		rx.packet.Release()
		delete(x.pend, txop)
	}
	x.cont.Cancel()
	x.env.C.CrashDrops += dropped
}

// Recover implements Scheme: reboot with empty MAC state and realign the
// contender with the medium's current carrier view.
func (x *PreExOR) Recover() {
	if !x.down {
		return
	}
	x.down = false
	if x.env.Med.CarrierBusy(x.env.ID) {
		x.cont.OnBusy()
	} else {
		x.cont.OnIdle()
	}
	x.maybeRequest()
}
