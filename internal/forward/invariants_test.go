package forward

import (
	"fmt"
	"testing"

	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// TestSchemeInvariantsUnderLoss drives every forwarding scheme over a lossy
// multi-hop path with two-way traffic and checks the invariants any MAC
// must uphold toward its transport:
//
//  1. exactly-once delivery (duplicates are suppressed below transport),
//  2. no spurious packets (everything delivered was injected),
//  3. packets only surface at their destination,
//  4. under end-to-end acknowledgement pressure, most packets arrive.
func TestSchemeInvariantsUnderLoss(t *testing.T) {
	schemes := []struct {
		name string
		mk   func(Env) Scheme
	}{
		{"DCF", func(e Env) Scheme { return NewUnicast(e, 1) }},
		{"AFR", func(e Env) Scheme { return NewUnicast(e, 16) }},
		{"AFR+RTS", func(e Env) Scheme { return NewUnicastRTS(e, 16, 1) }},
		{"preExOR", func(e Env) Scheme { return NewPreExOR(e) }},
		{"MCExOR", func(e Env) Scheme { return NewMCExOR(e) }},
	}
	for _, s := range schemes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			rc := radio.DefaultConfig() // shadowing σ=8: every link lossy
			rc.BitErrorRate = 1e-5
			paths := map[int]routing.Path{
				1: {0, 1, 2, 3},
				2: {3, 2, 1, 0},
			}
			h := newHarness(t, linePositions(4), rc, paths, s.mk)
			const n = 120
			// Inject in bursts below the 50-packet queue limit so nothing
			// is tail-dropped at the source.
			for burst := 0; burst < 4; burst++ {
				at := sim.Time(burst) * 500 * sim.Millisecond
				h.eng.At(at, func() {
					h.inject(0, 1, n/4, 3)
					h.inject(3, 2, n/4, 0)
				})
			}
			h.eng.Run(4 * sim.Second)

			injected := make(map[uint64]bool, 2*n)
			for _, flow := range []int{1, 2} {
				for k := 0; k < n; k++ {
					_ = flow
				}
			}
			// Reconstruct the injected UID space from deliveries instead:
			// UIDs are flow<<32|counter with counter ≤ 2n.
			for node, pkts := range h.delivered {
				for _, p := range pkts {
					if node != int(p.Dst) {
						t.Fatalf("%s: packet for %d surfaced at node %d", s.name, p.Dst, node)
					}
					if p.UID>>32 != uint64(p.FlowID) || p.UID&0xffffffff > 2*n {
						t.Fatalf("%s: delivered packet with foreign UID %x", s.name, p.UID)
					}
					if injected[p.UID] {
						t.Fatalf("%s: duplicate delivery of UID %x", s.name, p.UID)
					}
					injected[p.UID] = true
				}
			}
			got3, got0 := len(h.delivered[3]), len(h.delivered[0])
			t.Logf("%s: %d/%d forward, %d/%d reverse", s.name, got3, n, got0, n)
			if got3 < n*8/10 || got0 < n*8/10 {
				t.Errorf("%s: delivery too low: %d/%d and %d/%d", s.name, got3, n, got0, n)
			}
			if len(h.delivered[1]) != 0 || len(h.delivered[2]) != 0 {
				t.Errorf("%s: forwarders delivered to their own transport", s.name)
			}
		})
	}
}

// TestSchemeDeterminismPerSeed: identical harness runs produce identical
// delivery sequences for every scheme (no map-iteration or other hidden
// nondeterminism).
func TestSchemeDeterminismPerSeed(t *testing.T) {
	schemes := []struct {
		name string
		mk   func(Env) Scheme
	}{
		{"DCF", func(e Env) Scheme { return NewUnicast(e, 1) }},
		{"AFR", func(e Env) Scheme { return NewUnicast(e, 16) }},
		{"preExOR", func(e Env) Scheme { return NewPreExOR(e) }},
		{"MCExOR", func(e Env) Scheme { return NewMCExOR(e) }},
	}
	for _, s := range schemes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			sig := func() string {
				rc := radio.DefaultConfig()
				rc.BitErrorRate = 1e-5
				paths := map[int]routing.Path{1: {0, 1, 2, 3}}
				h := newHarness(t, linePositions(4), rc, paths, s.mk)
				h.inject(0, 1, 60, 3)
				h.eng.Run(sim.Second)
				out := ""
				for _, p := range h.delivered[3] {
					out += fmt.Sprintf("%x,", p.UID)
				}
				return fmt.Sprintf("%s|%d", out, h.eng.Processed())
			}
			if sig() != sig() {
				t.Fatal("same-seed runs diverged")
			}
		})
	}
}
