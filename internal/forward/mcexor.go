package forward

import (
	"ripple/internal/mac"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// MCExOR reproduces the compressed-acknowledgement scheme of Zubow et al.
// (European Wireless 2007) as described in §II: a forwarder of rank i waits
// i+1 SIFS intervals after the data frame and transmits a MAC ACK only if
// it detected no ACK (no carrier) during its wait — so exactly one ACK is
// sent by the best actual receiver, which then takes custody of the packet
// and contends to forward it. Like preExOR, custody caching causes packet
// reordering; unlike preExOR, the ACK schedule collapses to a single ACK.
type MCExOR struct {
	env   Env
	queue *mac.Queue
	cont  *mac.Contender

	exchanging bool
	cur        *pkt.Packet
	curTxop    uint64
	txopSeq    uint64
	attempts   int
	heardAck   bool
	collectEv  *sim.Event

	rxSeen *dedupe
	pend   map[uint64]*mcRx

	// down marks the station crashed (fault injection): every MAC upcall
	// and local send is ignored until Recover.
	down bool
}

type mcRx struct {
	packet     *pkt.Packet
	myRank     int
	suppressed bool // carrier or ACK observed during the compressed wait
}

var _ Scheme = (*MCExOR)(nil)

// NewMCExOR creates the per-station MCExOR agent.
func NewMCExOR(env Env) *MCExOR {
	x := &MCExOR{
		env:    env,
		queue:  env.NewQueue(env.P.QueueLimit),
		rxSeen: newDedupe(4096),
		pend:   make(map[uint64]*mcRx),
	}
	x.cont = env.NewContender(x.onGrant)
	return x
}

// Send implements Scheme.
func (x *MCExOR) Send(p *pkt.Packet) bool {
	if x.down {
		x.env.C.CrashDrops++
		p.Release() // station is crashed: terminal drop point
		return false
	}
	if x.env.Routes.Unreachable(p.FlowID) {
		// The destination is known unreachable this epoch: drop at the
		// source instead of burning airtime on doomed retries.
		x.env.C.Unreachable++
		x.env.Routes.NoteUnreachableDrop(p.FlowID)
		p.Release()
		return false
	}
	p.EnqueuedAt = x.env.Eng.Now()
	if !x.queue.Push(p) {
		x.env.C.QueueDrops++
		p.Release() // queue full: terminal drop point for the sender's ref
		return false
	}
	x.maybeRequest()
	return true
}

// QueueLen implements Scheme.
func (x *MCExOR) QueueLen() int {
	n := x.queue.Len()
	if x.cur != nil {
		n++
	}
	return n
}

func (x *MCExOR) maybeRequest() {
	if x.exchanging {
		return
	}
	if x.cur == nil && x.queue.Len() == 0 {
		return
	}
	x.cont.Request()
}

func (x *MCExOR) onGrant() {
	if x.cur == nil {
		x.cur = x.queue.Pop()
		x.attempts = 0
	}
	if x.cur == nil {
		return
	}
	fwd := x.env.Routes.FwdList(x.cur.FlowID, x.env.ID, x.cur.Dst)
	if len(fwd) == 0 {
		if x.env.Routes.Unreachable(x.cur.FlowID) {
			x.env.C.Unreachable++
			x.env.Routes.NoteUnreachableDrop(x.cur.FlowID)
		} else {
			x.env.C.MACDrops++
		}
		x.cur.Release() // no route: terminal drop point
		x.cur = nil
		x.maybeRequest()
		return
	}
	x.txopSeq++
	x.curTxop = uint64(x.env.ID)<<32 | x.txopSeq
	x.heardAck = false
	f := &pkt.Frame{
		Kind:     pkt.Data,
		Tx:       x.env.ID,
		Rx:       pkt.Broadcast,
		Origin:   x.env.ID,
		FinalDst: x.cur.Dst,
		FwdList:  fwd, // RouteBook-owned, immutable until the next route update
		TxopID:   x.curTxop,
		Packets:  []*pkt.Packet{x.cur},
		FlowID:   x.cur.FlowID,
	}
	f.Duration = x.env.P.DataTime(f.PayloadBytes(phys.MACHeaderBytes, 0, phys.ForwarderEntryBytes))
	x.cur.Retries++
	x.exchanging = true
	x.env.C.TxFrames++
	x.env.C.TxData++
	x.env.C.TxPackets++
	if x.attempts > 0 {
		x.env.C.Retries++
	}
	x.env.Med.Transmit(f)
}

// TxDone implements radio.MAC.
func (x *MCExOR) TxDone(f *pkt.Frame) {
	if x.down || f.Kind != pkt.Data || f.TxopID != x.curTxop || !x.exchanging {
		return
	}
	// The compressed schedule: the last possible ACK starts after
	// (n+1)·SIFS; wait for it plus the ACK airtime.
	n := len(f.FwdList)
	timeout := sim.Time(n+1)*x.env.P.SIFS + x.env.P.ACKTime() + 2*sim.Microsecond
	x.collectEv = x.env.Eng.After(timeout, x.collectDone)
}

func (x *MCExOR) collectDone() {
	if !x.exchanging {
		return
	}
	x.exchanging = false
	if x.heardAck {
		// Custody transferred (or delivered): the acker holds its own
		// reference, ours ends here.
		x.env.Routes.NoteTxSuccess(x.cur.FlowID, x.env.ID)
		x.cur.Release()
		x.cur = nil
		x.attempts = 0
		x.cont.Success()
	} else {
		x.attempts++
		x.env.C.AckTimeouts++
		if x.attempts > x.env.P.RetryLimit {
			// Only the terminal drop counts toward forwarder blacklisting: on
			// a lossy channel single ACK timeouts are routine (relays often
			// carry the packet even when the sender hears no ACK), but a dead
			// preferred forwarder exhausts the retry budget on every packet.
			x.env.Routes.NoteTxFailure(x.cur.FlowID, x.env.ID, x.cur.Dst)
			x.env.C.MACDrops++
			x.cur.Release() // abandoned: terminal drop point
			x.cur = nil
			x.attempts = 0
			x.cont.Success()
		} else {
			x.cont.Failure()
		}
	}
	x.maybeRequest()
}

// FrameReceived implements radio.MAC.
func (x *MCExOR) FrameReceived(f *pkt.Frame, pktOK []bool) {
	if x.down {
		return // reception completed after the crash: the station is gone
	}
	switch f.Kind {
	case pkt.Ack:
		if x.exchanging && f.TxopID == x.curTxop {
			x.heardAck = true
		}
		if rx, ok := x.pend[f.TxopID]; ok && f.AckerRank < rx.myRank {
			rx.suppressed = true
		}
	case pkt.Data:
		x.handleData(f, pktOK)
	}
}

func (x *MCExOR) handleData(f *pkt.Frame, pktOK []bool) {
	rank := f.RankOf(x.env.ID)
	if rank < 0 {
		return
	}
	if len(pktOK) == 0 || !pktOK[0] {
		x.cont.NoteCorrupted()
		return
	}
	x.env.C.RxData++
	p := f.Packets[0]
	rx := &mcRx{packet: p, myRank: rank}
	x.pend[f.TxopID] = rx
	// The pending closure holds its own reference on the packet until the
	// compressed-ACK decision (the source may abandon it meanwhile).
	p.Ref()
	// Rank r transmits its ACK after (r+1)·SIFS unless it detected an ACK
	// (any carrier) during the wait.
	wait := sim.Time(rank+1) * x.env.P.SIFS
	x.env.Eng.After(wait, func() {
		if x.pend[f.TxopID] != rx {
			return // crash released this custody already (see Crash)
		}
		delete(x.pend, f.TxopID)
		if rx.suppressed || x.env.Med.CarrierBusy(x.env.ID) {
			p.Release()
			return // a higher-priority station acknowledged first
		}
		ack := &pkt.Frame{
			Kind:      pkt.Ack,
			Tx:        x.env.ID,
			Rx:        f.Tx,
			Origin:    x.env.ID,
			FinalDst:  f.Tx,
			TxopID:    f.TxopID,
			AckedUIDs: []uint64{p.UID},
			Acker:     x.env.ID,
			AckerRank: rank,
			FlowID:    f.FlowID,
			Duration:  x.env.P.ACKTime(),
		}
		x.env.C.TxFrames++
		x.env.Med.Transmit(ack)
		// The acknowledging station takes custody.
		if rank == 0 {
			if x.rxSeen.Seen(p.UID) {
				x.env.C.Duplicates++
				p.Release()
				return
			}
			x.env.Deliver(p)
			p.Release() // delivered: terminal point
			return
		}
		if x.rxSeen.Seen(p.UID) {
			x.env.C.Duplicates++
			p.Release()
			return
		}
		p.EnqueuedAt = x.env.Eng.Now()
		if !x.queue.Push(p) {
			x.env.C.QueueDrops++
			p.Release()
			return
		}
		x.maybeRequest() // custody taken: the closure's ref becomes the queue's
	})
}

// FrameCorrupted implements radio.MAC.
func (x *MCExOR) FrameCorrupted() {
	if x.down {
		return
	}
	x.cont.NoteCorrupted()
}

// ChannelBusy implements radio.MAC. Any carrier detected during a
// compressed-ACK wait suppresses the pending ACK ("if it detects an ACK
// transmission during its waiting period, it will not transmit").
func (x *MCExOR) ChannelBusy() {
	if x.down {
		return
	}
	for _, rx := range x.pend {
		rx.suppressed = true
	}
	x.cont.OnBusy()
}

// ChannelIdle implements radio.MAC.
func (x *MCExOR) ChannelIdle() {
	if x.down {
		return
	}
	x.cont.OnIdle()
}

// Crash implements Scheme: release every held packet — the in-flight
// custody packet, the send queue and pending compressed-ACK closures —
// and withdraw timers. The un-cancellable ACK closures fire later, see
// the identity check in handleData.
func (x *MCExOR) Crash() {
	if x.down {
		return
	}
	x.down = true
	var dropped uint64
	x.env.Eng.Cancel(x.collectEv)
	x.exchanging = false
	if x.cur != nil {
		dropped++
		x.cur.Release()
		x.cur = nil
	}
	x.attempts = 0
	for {
		p := x.queue.Pop()
		if p == nil {
			break
		}
		dropped++
		p.Release()
	}
	for txop, rx := range x.pend {
		dropped++
		rx.packet.Release()
		delete(x.pend, txop)
	}
	x.cont.Cancel()
	x.env.C.CrashDrops += dropped
}

// Recover implements Scheme: reboot with empty MAC state and realign the
// contender with the medium's current carrier view.
func (x *MCExOR) Recover() {
	if !x.down {
		return
	}
	x.down = false
	if x.env.Med.CarrierBusy(x.env.ID) {
		x.cont.OnBusy()
	} else {
		x.cont.OnIdle()
	}
	x.maybeRequest()
}
