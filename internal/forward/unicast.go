package forward

import (
	"ripple/internal/mac"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// Unicast is the predetermined-route family of schemes: each transmission
// has exactly one intended receiver (the next hop), acknowledged per hop.
//
//   - MaxAgg == 1 reproduces plain IEEE 802.11 DCF ("D" in the paper's
//     figures); with a direct source→destination route it is SPR ("S").
//   - MaxAgg > 1 reproduces AFR ("A"): up to MaxAgg packets aggregated into
//     one frame, each protected by its own CRC, with a bitmap ACK and
//     partial (per-packet) retransmission.
type Unicast struct {
	env       Env
	maxAgg    int
	rtsThresh int // payload bytes above which RTS/CTS protects the exchange; 0 = off

	queue *mac.Queue
	cont  *mac.Contender

	// exchange in progress
	inService  []*pkt.Packet
	svcNext    pkt.NodeID // next hop of the in-service batch
	svcFlow    int
	svcDst     pkt.NodeID // end-to-end direction endpoint of the batch
	exchanging bool
	awaitCTS   bool
	dataFrame  *pkt.Frame // built at grant; sent after CTS when RTS/CTS is on
	attempts   int
	curTxop    uint64
	txopSeq    uint64
	ackTimer   *sim.Event
	ctsTimer   *sim.Event

	// NAV: virtual carrier sense set by overheard RTS/CTS.
	navUntil sim.Time
	navBusy  bool

	rxSeen *dedupe
	// freeTx recycles the SIFS-delayed transmit actions.
	freeTx *uniDelayedTx

	// down marks the station crashed (fault injection): every MAC upcall
	// and local send is ignored until Recover.
	down bool
}

// uniDelayedTx transmits a frame after SIFS unless the station is
// mid-transmission (and, for the post-CTS data frame, unless the exchange
// was abandoned meanwhile). Pooled per scheme so the per-reception ACK and
// RTS/CTS schedules allocate nothing.
type uniDelayedTx struct {
	u            *Unicast
	f            *pkt.Frame
	needExchange bool // post-CTS data: require the exchange still open
	next         *uniDelayedTx
}

func (a *uniDelayedTx) Run() {
	u, f, need := a.u, a.f, a.needExchange
	a.f = nil
	a.next = u.freeTx
	u.freeTx = a
	if u.down || (need && !u.exchanging) {
		return
	}
	if u.env.Med.Transmitting(u.env.ID) {
		return // pathological overlap: skip, the peer times out
	}
	if f.Kind == pkt.Data {
		u.transmitData(f)
		return
	}
	u.env.C.TxFrames++
	u.env.Med.Transmit(f)
}

// delayTx schedules f for transmission after d under uniDelayedTx's rules.
func (u *Unicast) delayTx(d sim.Time, f *pkt.Frame, needExchange bool) {
	a := u.freeTx
	if a != nil {
		u.freeTx = a.next
		a.next = nil
	} else {
		a = &uniDelayedTx{u: u}
	}
	a.f = f
	a.needExchange = needExchange
	u.env.Eng.Do(u.env.Eng.Now()+d, a)
}

var _ Scheme = (*Unicast)(nil)

// NewUnicast creates the scheme instance for one station. maxAgg is the
// aggregation limit (1 = plain DCF, 16 = AFR as in the paper).
func NewUnicast(env Env, maxAgg int) *Unicast {
	return NewUnicastRTS(env, maxAgg, 0)
}

// NewUnicastRTS creates a unicast scheme with the 802.11 RTS/CTS option:
// data frames whose MAC payload is at least rtsThreshold bytes are preceded
// by an RTS/CTS handshake, and overhearing stations honour the carried NAV.
func NewUnicastRTS(env Env, maxAgg, rtsThreshold int) *Unicast {
	if maxAgg < 1 {
		maxAgg = 1
	}
	u := &Unicast{
		env:       env,
		maxAgg:    maxAgg,
		rtsThresh: rtsThreshold,
		queue:     env.NewQueue(env.P.QueueLimit),
		rxSeen:    newDedupe(4096),
	}
	u.cont = env.NewContender(u.onGrant)
	return u
}

// Send implements Scheme.
func (u *Unicast) Send(p *pkt.Packet) bool {
	if u.down {
		u.env.C.CrashDrops++
		p.Release() // station is crashed: terminal drop point
		return false
	}
	if u.env.Routes.Unreachable(p.FlowID) {
		// The destination is known unreachable this epoch: drop at the
		// source instead of burning airtime on doomed retries.
		u.env.C.Unreachable++
		u.env.Routes.NoteUnreachableDrop(p.FlowID)
		p.Release()
		return false
	}
	p.EnqueuedAt = u.env.Eng.Now()
	if !u.queue.Push(p) {
		u.env.C.QueueDrops++
		p.Release() // queue full: terminal drop point for the sender's ref
		return false
	}
	u.maybeRequest()
	return true
}

// QueueLen implements Scheme.
func (u *Unicast) QueueLen() int { return u.queue.Len() + len(u.inService) }

func (u *Unicast) maybeRequest() {
	if u.exchanging {
		return
	}
	if len(u.inService) == 0 && u.queue.Len() == 0 {
		return
	}
	u.cont.Request()
}

// onGrant fires when the contender wins a transmission opportunity.
func (u *Unicast) onGrant() {
	if len(u.inService) == 0 {
		u.buildBatch()
	}
	if len(u.inService) == 0 {
		return // everything expired while contending
	}
	u.transmitBatch()
}

// buildBatch pops up to maxAgg packets sharing the head packet's next hop.
func (u *Unicast) buildBatch() {
	for {
		head := u.queue.Peek()
		if head == nil {
			return
		}
		next, ok := u.env.Routes.NextHop(head.FlowID, u.env.ID, head.Dst)
		if !ok {
			// No route from here: drop and try the next packet.
			u.queue.Pop()
			if u.env.Routes.Unreachable(head.FlowID) {
				u.env.C.Unreachable++
				u.env.Routes.NoteUnreachableDrop(head.FlowID)
			} else {
				u.env.C.MACDrops++
			}
			head.Release()
			continue
		}
		u.svcNext = next
		u.svcFlow = head.FlowID
		u.svcDst = head.Dst
		u.inService = u.queue.PopNWhereInto(u.inService[:0], u.maxAgg, func(p *pkt.Packet) bool {
			nh, ok := u.env.Routes.NextHop(p.FlowID, u.env.ID, p.Dst)
			return ok && nh == next
		})
		return
	}
}

func (u *Unicast) transmitBatch() {
	u.txopSeq++
	u.curTxop = uint64(u.env.ID)<<32 | u.txopSeq
	perPkt := 0
	if u.maxAgg > 1 {
		perPkt = phys.PerPacketCRCBytes
	}
	f := &pkt.Frame{
		Kind:     pkt.Data,
		Tx:       u.env.ID,
		Rx:       u.svcNext,
		Origin:   u.env.ID,
		FinalDst: u.svcNext,
		TxopID:   u.curTxop,
		Packets:  append([]*pkt.Packet(nil), u.inService...),
		FlowID:   u.svcFlow,
		RateBps:  u.env.Rate(u.svcNext),
	}
	payload := f.PayloadBytes(phys.MACHeaderBytes, perPkt, 0)
	f.Duration = u.env.P.DataTimeAt(payload, f.RateBps)
	for _, p := range f.Packets {
		p.Retries++
	}
	u.exchanging = true
	if u.attempts > 0 {
		u.env.C.Retries++
	}
	if u.rtsThresh > 0 && payload >= u.rtsThresh {
		u.dataFrame = f
		u.sendRTS(f)
		return
	}
	u.transmitData(f)
}

// sendRTS opens the protected exchange: RTS, then CTS from the peer, then
// the data frame. The RTS announces the remaining exchange duration so
// overhearing stations set their NAV.
func (u *Unicast) sendRTS(data *pkt.Frame) {
	p := u.env.P
	rts := &pkt.Frame{
		Kind:     pkt.Rts,
		Tx:       u.env.ID,
		Rx:       u.svcNext,
		Origin:   u.env.ID,
		FinalDst: u.svcNext,
		TxopID:   u.curTxop,
		FlowID:   u.svcFlow,
		Duration: p.RTSTime(),
		NavDur:   p.SIFS + p.CTSTime() + p.SIFS + data.Duration + p.SIFS + u.ackDuration(),
	}
	u.awaitCTS = true
	u.env.C.TxFrames++
	u.env.Med.Transmit(rts)
}

func (u *Unicast) transmitData(f *pkt.Frame) {
	u.env.C.TxFrames++
	u.env.C.TxData++
	u.env.C.TxPackets += uint64(len(f.Packets))
	u.env.Med.Transmit(f)
}

// TxDone implements radio.MAC: arm the CTS timeout after our RTS, or the
// ACK timeout after our data frame; other transmissions need no follow-up.
func (u *Unicast) TxDone(f *pkt.Frame) {
	if u.down || f.TxopID != u.curTxop || !u.exchanging {
		return
	}
	switch f.Kind {
	case pkt.Rts:
		if u.awaitCTS {
			timeout := u.env.P.SIFS + u.env.P.Slot + u.env.P.CTSTime() + 2*sim.Microsecond
			u.ctsTimer = u.env.Eng.After(timeout, u.onCtsTimeout)
		}
	case pkt.Data:
		timeout := u.env.P.SIFS + u.env.P.Slot + u.ackDuration() + 2*sim.Microsecond
		u.ackTimer = u.env.Eng.After(timeout, u.onAckTimeout)
	}
}

func (u *Unicast) onCtsTimeout() {
	if !u.awaitCTS || !u.exchanging {
		return
	}
	u.awaitCTS = false
	u.dataFrame = nil
	u.failExchange()
}

func (u *Unicast) ackDuration() sim.Time {
	if u.maxAgg > 1 {
		return u.env.P.BitmapACKTime()
	}
	return u.env.P.ACKTime()
}

func (u *Unicast) onAckTimeout() {
	if !u.exchanging {
		return
	}
	u.failExchange()
}

// failExchange ends the current exchange in failure: back off and retry, or
// drop the batch past the retry limit.
func (u *Unicast) failExchange() {
	u.exchanging = false
	u.attempts++
	u.env.C.AckTimeouts++
	if u.attempts > u.env.P.RetryLimit {
		// Failure detection (fault injection): a streak of abandoned
		// batches blacklists the suspected-dead next hop. Terminal drops,
		// not single ACK timeouts, feed the streak — see the MCExOR
		// collectDone comment. No-op unless
		// RouteBook.EnableFailureDetection was called.
		u.env.Routes.NoteTxFailure(u.svcFlow, u.env.ID, u.svcDst)
		// Retry limit exceeded: drop the whole batch, reset the window.
		u.env.C.MACDrops += uint64(len(u.inService))
		for _, p := range u.inService {
			p.Release()
		}
		u.inService = u.inService[:0]
		u.attempts = 0
		u.cont.Success() // CW resets after a drop per 802.11
	} else {
		u.cont.Failure()
	}
	u.maybeRequest()
}

// FrameReceived implements radio.MAC.
func (u *Unicast) FrameReceived(f *pkt.Frame, pktOK []bool) {
	if u.down {
		return // reception completed after the crash: the station is gone
	}
	switch f.Kind {
	case pkt.Ack:
		u.handleAck(f)
	case pkt.Data:
		u.handleData(f, pktOK)
	case pkt.Rts:
		u.handleRts(f)
	case pkt.Cts:
		u.handleCts(f)
	}
}

func (u *Unicast) handleRts(f *pkt.Frame) {
	if f.Rx != u.env.ID {
		// Overheard: honour the announced exchange duration.
		u.setNAV(u.env.Eng.Now() + f.NavDur)
		return
	}
	if u.navBusy {
		return // our own NAV forbids responding (802.11 §9.2.5.7)
	}
	p := u.env.P
	cts := &pkt.Frame{
		Kind:     pkt.Cts,
		Tx:       u.env.ID,
		Rx:       f.Tx,
		Origin:   u.env.ID,
		FinalDst: f.Tx,
		TxopID:   f.TxopID,
		FlowID:   f.FlowID,
		Duration: p.CTSTime(),
		NavDur:   f.NavDur - p.SIFS - p.CTSTime(),
	}
	u.delayTx(p.SIFS, cts, false)
}

func (u *Unicast) handleCts(f *pkt.Frame) {
	if f.Rx != u.env.ID {
		u.setNAV(u.env.Eng.Now() + f.NavDur)
		return
	}
	if !u.awaitCTS || !u.exchanging || f.TxopID != u.curTxop {
		return
	}
	u.env.Eng.Cancel(u.ctsTimer)
	u.awaitCTS = false
	data := u.dataFrame
	u.dataFrame = nil
	u.delayTx(u.env.P.SIFS, data, true)
}

// setNAV extends the virtual carrier sense; the contender treats the NAV
// period as busy even when the physical channel is idle.
func (u *Unicast) setNAV(until sim.Time) {
	if until <= u.navUntil {
		return
	}
	u.navUntil = until
	if !u.navBusy {
		u.navBusy = true
		u.cont.OnBusy()
	}
	u.env.Eng.At(until, u.navExpire)
}

func (u *Unicast) navExpire() {
	if !u.navBusy || u.env.Eng.Now() < u.navUntil {
		return
	}
	u.navBusy = false
	if !u.env.Med.CarrierBusy(u.env.ID) {
		u.cont.OnIdle()
	}
}

func (u *Unicast) handleAck(f *pkt.Frame) {
	if f.Rx != u.env.ID || !u.exchanging || f.TxopID != u.curTxop {
		return
	}
	u.env.Eng.Cancel(u.ackTimer)
	u.exchanging = false
	remaining := u.inService[:0]
	for _, p := range u.inService {
		if Acked(f.AckedUIDs, p.UID) {
			p.Release() // the next hop (or endpoint) holds it now
			continue
		}
		if p.Retries > u.env.P.RetryLimit {
			u.env.C.MACDrops++
			p.Release()
			continue
		}
		remaining = append(remaining, p)
	}
	u.inService = remaining
	u.attempts = 0
	u.env.Routes.NoteTxSuccess(u.svcFlow, u.env.ID)
	u.cont.Success()
	u.maybeRequest()
}

func (u *Unicast) handleData(f *pkt.Frame, pktOK []bool) {
	if f.Rx != u.env.ID {
		return
	}
	u.env.C.RxData++
	if u.maxAgg == 1 && (len(pktOK) == 0 || !pktOK[0]) {
		// Plain DCF: the FCS covers the whole frame; a corrupted body is a
		// corrupted frame — no ACK, and EIFS applies.
		u.cont.NoteCorrupted()
		return
	}
	// Acknowledge after SIFS. The bitmap lists packets that passed CRC;
	// counting first sizes the retained slice exactly (one allocation, no
	// append growth).
	nOK := 0
	for i := range f.Packets {
		if i < len(pktOK) && pktOK[i] {
			nOK++
		}
	}
	ackUIDs := make([]uint64, 0, nOK)
	for i, p := range f.Packets {
		if i < len(pktOK) && pktOK[i] {
			ackUIDs = append(ackUIDs, p.UID)
		}
	}
	ack := &pkt.Frame{
		Kind:      pkt.Ack,
		Tx:        u.env.ID,
		Rx:        f.Tx,
		Origin:    u.env.ID,
		FinalDst:  f.Tx,
		TxopID:    f.TxopID,
		AckedUIDs: ackUIDs,
		FlowID:    f.FlowID,
		Duration:  u.ackDuration(),
	}
	u.delayTx(u.env.P.SIFS, ack, false)
	// Process the successfully received packets.
	for i, p := range f.Packets {
		if i >= len(pktOK) || !pktOK[i] {
			continue
		}
		if u.rxSeen.Seen(p.UID) {
			u.env.C.Duplicates++
			continue
		}
		if p.Dst == u.env.ID {
			u.env.Deliver(p)
			continue
		}
		// Relay toward the destination via our own queue, taking our own
		// reference: the previous hop releases its hold when it processes
		// our ACK.
		p.EnqueuedAt = u.env.Eng.Now()
		if u.queue.Push(p) {
			p.Ref()
		} else {
			u.env.C.QueueDrops++
		}
	}
	u.maybeRequest()
}

// FrameCorrupted implements radio.MAC.
func (u *Unicast) FrameCorrupted() {
	if u.down {
		return
	}
	u.cont.NoteCorrupted()
}

// ChannelBusy implements radio.MAC.
func (u *Unicast) ChannelBusy() {
	if u.down {
		return
	}
	u.cont.OnBusy()
}

// ChannelIdle implements radio.MAC: a set NAV keeps the contender frozen
// even when the physical channel goes quiet.
func (u *Unicast) ChannelIdle() {
	if u.down || u.navBusy {
		return
	}
	u.cont.OnIdle()
}

// Crash implements Scheme: the station dies. The in-service batch, the
// send queue and the pending post-CTS data frame release their packet
// references, timers are withdrawn and the NAV is forgotten. rxSeen
// deliberately survives: forgetting delivered UIDs would let a hop-by-hop
// retransmission duplicate packets into the upper layer after recovery.
func (u *Unicast) Crash() {
	if u.down {
		return
	}
	u.down = true
	var dropped uint64
	u.env.Eng.Cancel(u.ackTimer)
	u.env.Eng.Cancel(u.ctsTimer)
	u.exchanging = false
	u.awaitCTS = false
	u.dataFrame = nil // shares the in-service packets, no refs of its own
	u.attempts = 0
	for _, p := range u.inService {
		dropped++
		p.Release()
	}
	u.inService = u.inService[:0]
	for {
		p := u.queue.Pop()
		if p == nil {
			break
		}
		dropped++
		p.Release()
	}
	u.navBusy = false
	u.navUntil = 0
	u.cont.Cancel()
	u.env.C.CrashDrops += dropped
}

// Recover implements Scheme: reboot with empty MAC state and realign the
// contender with the medium's current carrier view (busy transitions
// during the outage were dropped by the down guards).
func (u *Unicast) Recover() {
	if !u.down {
		return
	}
	u.down = false
	if u.env.Med.CarrierBusy(u.env.ID) {
		u.cont.OnBusy()
	} else {
		u.cont.OnIdle()
	}
	u.maybeRequest()
}
