package transport

import (
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/sim"
	"ripple/internal/stats"
)

func TestVoIPPacketSize(t *testing.T) {
	cfg := DefaultVoIPConfig()
	// 96 kbps × 20 ms / 8 = 240 bytes.
	if got := cfg.PacketBytes(); got != 240 {
		t.Fatalf("PacketBytes = %d, want 240", got)
	}
}

func TestVoIPOnOffRate(t *testing.T) {
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	var delivered int
	send := func(p *pkt.Packet) bool {
		delivered++
		eng.After(sim.Millisecond, func() {}) // keep engine alive
		return true
	}
	v := NewVoIP(eng, DefaultVoIPConfig(), 1, 0, 1, send, fs, sim.NewRNG(1, 1))
	v.Start()
	eng.Run(20 * sim.Second)
	// On-off with equal means → ~50% duty cycle → ≈500 packets in 20 s.
	if delivered < 250 || delivered > 750 {
		t.Fatalf("voip emitted %d packets over 20s, want ≈500", delivered)
	}
	if fs.VoIPSent != int64(delivered) {
		t.Fatalf("VoIPSent = %d, emitted %d", fs.VoIPSent, delivered)
	}
}

func TestVoIPLateArrivalCountsAsLoss(t *testing.T) {
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	cfg := DefaultVoIPConfig()
	v := NewVoIP(eng, cfg, 1, 0, 1, func(*pkt.Packet) bool { return true }, fs, sim.NewRNG(1, 1))
	// Simulate three receptions: on time, exactly at budget, late.
	mk := func(seq int64, created sim.Time) *pkt.Packet {
		return &pkt.Packet{Seq: seq, Bytes: 240, Src: 0, Dst: 1, Created: created}
	}
	fs.VoIPSent = 3
	eng.At(10*sim.Millisecond, func() { v.Receive(1, mk(1, 0)) })
	eng.At(52*sim.Millisecond+10*sim.Millisecond, func() { v.Receive(1, mk(2, 10*sim.Millisecond)) })
	eng.At(200*sim.Millisecond, func() { v.Receive(1, mk(3, 0)) })
	eng.Run(sim.Second)
	if fs.VoIPArrived != 3 {
		t.Fatalf("VoIPArrived = %d", fs.VoIPArrived)
	}
	if fs.VoIPOnTime != 2 {
		t.Fatalf("VoIPOnTime = %d, want 2 (52 ms budget inclusive)", fs.VoIPOnTime)
	}
	if got := fs.VoIPLossRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("VoIPLossRate = %.3f, want 1/3", got)
	}
}

func TestCBREmitsAtInterval(t *testing.T) {
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	count := 0
	c := NewCBR(eng, 1, 0, 1, 1000, 10*sim.Millisecond, func(*pkt.Packet) bool {
		count++
		return true
	}, fs)
	c.Start()
	eng.Run(sim.Second)
	if count < 99 || count > 101 {
		t.Fatalf("CBR emitted %d packets in 1s at 10ms interval, want ≈100", count)
	}
	c.Stop()
	eng.Run(2 * sim.Second)
	if count > 101 {
		t.Fatal("CBR kept emitting after Stop")
	}
}

func TestCBRReceiveAccounting(t *testing.T) {
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	c := NewCBR(eng, 1, 0, 1, 1000, 10*sim.Millisecond, func(*pkt.Packet) bool { return true }, fs)
	c.Receive(1, &pkt.Packet{Seq: 1, Bytes: 1000, Dst: 1})
	c.Receive(1, &pkt.Packet{Seq: 2, Bytes: 1000, Dst: 1})
	c.Receive(0, &pkt.Packet{Seq: 3, Bytes: 1000, Dst: 1}) // wrong node: ignored
	if fs.AppBytes != 2000 || fs.PktsDelivered != 2 {
		t.Fatalf("stats = %d bytes / %d pkts", fs.AppBytes, fs.PktsDelivered)
	}
}
