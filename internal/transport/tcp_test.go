package transport

import (
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/sim"
	"ripple/internal/stats"
)

// pipe is a loopback network: packets injected at either endpoint are
// delivered to the opposite endpoint after a fixed delay, with an optional
// per-packet drop hook — enough to unit-test TCP behaviour in isolation.
type pipe struct {
	eng   *sim.Engine
	conn  *TCP
	delay sim.Time
	// drop returns true to discard the packet (loss injection).
	drop func(p *pkt.Packet) bool
	// reorderHold holds back one packet to force reordering when set.
	sent int
}

func (pp *pipe) sendFrom(at pkt.NodeID) SendFunc {
	return func(p *pkt.Packet) bool {
		pp.sent++
		if pp.drop != nil && pp.drop(p) {
			return true // dropped in flight, but accepted by the queue
		}
		pp.eng.After(pp.delay, func() { pp.conn.Receive(p.Dst, p) })
		return true
	}
}

func newPipeTCP(t *testing.T, cfg TCPConfig, drop func(*pkt.Packet) bool) (*sim.Engine, *TCP, *stats.Flow, *pipe) {
	t.Helper()
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	pp := &pipe{eng: eng, delay: sim.Millisecond, drop: drop}
	conn := NewTCP(eng, cfg, 1, 0, 1, pp.sendFrom(0), pp.sendFrom(1), fs)
	pp.conn = conn
	return eng, conn, fs, pp
}

func TestTCPTransfersAllDataOnCleanPipe(t *testing.T) {
	eng, conn, fs, _ := newPipeTCP(t, DefaultTCPConfig(), nil)
	done := false
	conn.StartTransfer(100, func() { done = true })
	eng.Run(10 * sim.Second)
	if !done {
		t.Fatal("bounded transfer did not complete")
	}
	if fs.AppBytes != 100*1000 {
		t.Fatalf("AppBytes = %d, want 100000", fs.AppBytes)
	}
	if fs.Reordered != 0 {
		t.Fatalf("clean pipe must not reorder, got %d", fs.Reordered)
	}
}

func TestTCPSlowStartDoublesWindow(t *testing.T) {
	eng, conn, _, _ := newPipeTCP(t, DefaultTCPConfig(), nil)
	conn.Start()
	// After a few RTTs of slow start the window must have grown well
	// beyond the initial 2 (doubling per RTT until MaxCwnd).
	eng.Run(20 * sim.Millisecond) // ≈10 RTTs at 2 ms RTT
	if conn.Cwnd() < DefaultTCPConfig().MaxCwnd {
		t.Fatalf("cwnd = %.1f after 10 RTTs, want MaxCwnd %.0f",
			conn.Cwnd(), DefaultTCPConfig().MaxCwnd)
	}
}

func TestTCPFastRetransmitOnTripleDupack(t *testing.T) {
	dropped := false
	drop := func(p *pkt.Packet) bool {
		seg, ok := p.Transport.(Segment)
		if ok && !seg.IsAck && seg.Seq == 10 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	eng, conn, fs, _ := newPipeTCP(t, DefaultTCPConfig(), drop)
	done := false
	conn.StartTransfer(50, func() { done = true })
	eng.Run(sim.Second)
	if !done {
		t.Fatal("transfer did not recover from a single loss")
	}
	if fs.AppBytes != 50*1000 {
		t.Fatalf("AppBytes = %d", fs.AppBytes)
	}
	// Fast retransmit must beat the 200 ms minimum RTO by a wide margin:
	// with a 2 ms RTT the whole 50-packet transfer plus recovery fits in
	// well under 100 ms.
	if eng.Now() > sim.Second {
		t.Fatalf("recovery took %v", eng.Now())
	}
}

func TestTCPRTORecoversFromAckSilence(t *testing.T) {
	// Drop everything for the first 300 ms: only the RTO can recover.
	eng, conn, _, pp := newPipeTCP(t, DefaultTCPConfig(), nil)
	blackout := true
	pp.drop = func(p *pkt.Packet) bool { return blackout }
	eng.At(300*sim.Millisecond, func() { blackout = false })
	done := false
	conn.StartTransfer(10, func() { done = true })
	eng.Run(10 * sim.Second)
	if !done {
		t.Fatal("transfer did not recover after blackout (RTO broken)")
	}
}

func TestTCPCwndCollapsesOnRTO(t *testing.T) {
	eng, conn, _, pp := newPipeTCP(t, DefaultTCPConfig(), nil)
	conn.Start()
	eng.Run(50 * sim.Millisecond) // let the window open fully
	grown := conn.Cwnd()
	blackout := true
	pp.drop = func(p *pkt.Packet) bool { return blackout }
	eng.Run(2 * sim.Second) // RTO fires during blackout
	if conn.Cwnd() >= grown {
		t.Fatalf("cwnd %.1f did not collapse after RTO (was %.1f)", conn.Cwnd(), grown)
	}
	if conn.Cwnd() > 2 {
		t.Fatalf("cwnd after RTO = %.1f, want ≈1", conn.Cwnd())
	}
}

func TestTCPReorderingTriggersDupacksNotLoss(t *testing.T) {
	// Swap packets 5 and 6 in flight: the receiver sees 6 before 5.
	var held *pkt.Packet
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	pp := &pipe{eng: eng, delay: sim.Millisecond}
	pp.drop = func(p *pkt.Packet) bool {
		seg, ok := p.Transport.(Segment)
		if ok && !seg.IsAck && seg.Seq == 5 && held == nil {
			held = p
			pp.eng.After(5*sim.Millisecond, func() { pp.conn.Receive(p.Dst, p) })
			return true
		}
		return false
	}
	conn := NewTCP(eng, DefaultTCPConfig(), 1, 0, 1, pp.sendFrom(0), pp.sendFrom(1), fs)
	pp.conn = conn
	done := false
	conn.StartTransfer(30, func() { done = true })
	eng.Run(sim.Second)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if fs.Reordered == 0 {
		t.Fatal("reordering must be visible in flow stats")
	}
	if fs.AppBytes != 30*1000 {
		t.Fatalf("AppBytes = %d", fs.AppBytes)
	}
}

func TestTCPSequentialTransfersKeepMonotonicSeq(t *testing.T) {
	eng, conn, fs, _ := newPipeTCP(t, DefaultTCPConfig(), nil)
	runs := 0
	var launch func()
	launch = func() {
		conn.StartTransfer(10, func() {
			runs++
			if runs < 3 {
				launch()
			}
		})
	}
	launch()
	eng.Run(10 * sim.Second)
	if runs != 3 {
		t.Fatalf("completed %d transfers, want 3", runs)
	}
	if fs.TransfersCompleted != 3 {
		t.Fatalf("TransfersCompleted = %d", fs.TransfersCompleted)
	}
	if fs.AppBytes != 3*10*1000 {
		t.Fatalf("AppBytes = %d", fs.AppBytes)
	}
	if conn.SeqUna() != 30 {
		t.Fatalf("SeqUna = %d, want 30 (sequence numbers stay monotonic)", conn.SeqUna())
	}
}

func TestTCPRespectsMaxCwnd(t *testing.T) {
	cfg := DefaultTCPConfig()
	cfg.MaxCwnd = 8
	eng, conn, _, _ := newPipeTCP(t, cfg, nil)
	conn.Start()
	eng.Run(100 * sim.Millisecond)
	if conn.Cwnd() > 8 {
		t.Fatalf("cwnd %.1f exceeds MaxCwnd 8", conn.Cwnd())
	}
}

func TestTCPDuplicateDataCounted(t *testing.T) {
	// Deliver packet 3 twice.
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	pp := &pipe{eng: eng, delay: sim.Millisecond}
	pp.drop = func(p *pkt.Packet) bool {
		seg, ok := p.Transport.(Segment)
		if ok && !seg.IsAck && seg.Seq == 3 {
			dup := *p
			pp.eng.After(2*sim.Millisecond, func() { pp.conn.Receive(dup.Dst, &dup) })
		}
		return false
	}
	conn := NewTCP(eng, DefaultTCPConfig(), 1, 0, 1, pp.sendFrom(0), pp.sendFrom(1), fs)
	pp.conn = conn
	conn.StartTransfer(10, nil)
	eng.Run(sim.Second)
	if fs.Duplicates == 0 {
		t.Fatal("duplicate delivery must be counted")
	}
	if fs.AppBytes != 10*1000 {
		t.Fatalf("AppBytes = %d (duplicates must not double-count)", fs.AppBytes)
	}
}
