package transport

import (
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/sim"
	"ripple/internal/stats"
)

func TestCBRBackloggedKeepsQueueFull(t *testing.T) {
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	queued := 0
	const limit = 50
	send := func(p *pkt.Packet) bool {
		if queued >= limit {
			return false
		}
		queued++
		return true
	}
	c := NewCBR(eng, 1, 0, 1, 1000, 0, send, fs)
	c.Start()
	eng.Run(10 * sim.Millisecond)
	if queued != limit {
		t.Fatalf("backlogged CBR queued %d, want full queue %d", queued, limit)
	}
	// Drain half; the next refill must top it back up.
	queued = limit / 2
	eng.Run(20 * sim.Millisecond)
	if queued != limit {
		t.Fatalf("backlogged CBR did not refill: %d", queued)
	}
}

func TestCBRBackloggedEventRateIsBounded(t *testing.T) {
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	c := NewCBR(eng, 1, 0, 1, 1000, 0, func(*pkt.Packet) bool { return false }, fs)
	c.Start()
	eng.Run(sim.Second)
	// One refill event per millisecond, not per would-be packet.
	if eng.Processed() > 1100 {
		t.Fatalf("backlogged CBR processed %d events in 1s, want ≈1000", eng.Processed())
	}
}
