package transport

import (
	"ripple/internal/pkt"
	"ripple/internal/sim"
	"ripple/internal/stats"
)

// VoIPConfig models the paper's VoIP stream (§IV-E): a 96 kbps on-off
// source with exponentially distributed on and off periods of mean 1.5 s,
// packetised at 20 ms intervals (240-byte payloads), with a 52 ms wireless
// delay budget after which arrivals count as losses.
type VoIPConfig struct {
	BitsPerSecond  float64
	PacketInterval sim.Time
	OnMean         sim.Time
	OffMean        sim.Time
	DelayBudget    sim.Time
}

// DefaultVoIPConfig returns the paper's parameters.
func DefaultVoIPConfig() VoIPConfig {
	return VoIPConfig{
		BitsPerSecond:  96e3,
		PacketInterval: 20 * sim.Millisecond,
		OnMean:         1500 * sim.Millisecond,
		OffMean:        1500 * sim.Millisecond,
		DelayBudget:    52 * sim.Millisecond,
	}
}

// PacketBytes returns the payload size implied by rate and interval.
func (c VoIPConfig) PacketBytes() int {
	return int(c.BitsPerSecond * c.PacketInterval.Seconds() / 8)
}

// VoIP is a one-way voice stream from Src to Dst.
type VoIP struct {
	eng  *sim.Engine
	cfg  VoIPConfig
	flow int
	src  pkt.NodeID
	dst  pkt.NodeID
	send SendFunc
	fs   *stats.Flow
	rng  *sim.RNG

	seq  int64
	uid  uint64
	on   bool
	stop bool
	pool *pkt.Pool
}

// NewVoIP creates a voice stream; call Start to begin the first on period.
func NewVoIP(eng *sim.Engine, cfg VoIPConfig, flow int, src, dst pkt.NodeID,
	send SendFunc, fs *stats.Flow, rng *sim.RNG) *VoIP {
	return &VoIP{eng: eng, cfg: cfg, flow: flow, src: src, dst: dst, send: send, fs: fs, rng: rng}
}

// SetPool makes the stream draw its packets from a per-run pool (see
// TCP.SetPool); nil keeps plain allocation.
func (v *VoIP) SetPool(pl *pkt.Pool) { v.pool = pl }

// Start begins the on-off cycle.
func (v *VoIP) Start() { v.beginOn() }

// Stop halts packet generation.
func (v *VoIP) Stop() { v.stop = true }

func (v *VoIP) beginOn() {
	if v.stop {
		return
	}
	v.on = true
	dur := sim.Time(v.rng.Exp(float64(v.cfg.OnMean)))
	end := v.eng.Now() + dur
	v.eng.After(0, func() { v.tick(end) })
}

func (v *VoIP) tick(onEnd sim.Time) {
	if v.stop {
		return
	}
	if v.eng.Now() >= onEnd {
		v.on = false
		off := sim.Time(v.rng.Exp(float64(v.cfg.OffMean)))
		v.eng.After(off, v.beginOn)
		return
	}
	v.emit()
	v.eng.After(v.cfg.PacketInterval, func() { v.tick(onEnd) })
}

func (v *VoIP) emit() {
	v.seq++
	v.uid++
	v.fs.VoIPSent++
	var p *pkt.Packet
	if v.pool != nil {
		p = v.pool.Get()
	} else {
		p = &pkt.Packet{}
	}
	p.UID = uint64(v.flow)<<33 | 1<<31 | v.uid
	p.FlowID = v.flow
	p.Seq = v.seq
	p.Bytes = v.cfg.PacketBytes()
	p.Src = v.src
	p.Dst = v.dst
	p.Created = v.eng.Now()
	v.send(p)
}

// Receive records a voice packet arriving at the destination.
func (v *VoIP) Receive(at pkt.NodeID, p *pkt.Packet) {
	if at != v.dst {
		return
	}
	delay := v.eng.Now() - p.Created
	v.fs.NoteArrival(p.Seq, delay)
	v.fs.VoIPArrived++
	v.fs.AppBytes += int64(p.Bytes)
	if delay <= v.cfg.DelayBudget {
		v.fs.VoIPOnTime++
	}
}

// CBR is a constant-bit-rate datagram source, used for the hidden-terminal
// interferer flows. An interval of zero selects backlogged mode: the source
// keeps the sender's MAC queue full (refilled every millisecond), modelling
// the paper's "sending 5×10⁶ packets during the simulations" interferers
// without simulating millions of rejected enqueues.
type CBR struct {
	eng      *sim.Engine
	flow     int
	src, dst pkt.NodeID
	bytes    int
	interval sim.Time
	send     SendFunc
	fs       *stats.Flow

	seq  int64
	uid  uint64
	stop bool
	pool *pkt.Pool
}

// backlogRefill is the refill period of backlogged mode.
const backlogRefill = sim.Millisecond

// backlogBurst caps packets pushed per refill.
const backlogBurst = 64

// NewCBR creates a CBR source emitting `bytes`-sized packets every
// interval, or a backlogged (saturating) source when interval is zero.
func NewCBR(eng *sim.Engine, flow int, src, dst pkt.NodeID, bytes int,
	interval sim.Time, send SendFunc, fs *stats.Flow) *CBR {
	return &CBR{eng: eng, flow: flow, src: src, dst: dst, bytes: bytes,
		interval: interval, send: send, fs: fs}
}

// SetPool makes the source draw its packets from a per-run pool (see
// TCP.SetPool); nil keeps plain allocation. Backlogged CBR is the pool's
// best customer: packets rejected by the saturated MAC queue recycle
// immediately, so the refill loop stops allocating at all.
func (c *CBR) SetPool(pl *pkt.Pool) { c.pool = pl }

// Start begins emission.
func (c *CBR) Start() {
	if c.interval == 0 {
		c.refill()
		return
	}
	c.tick()
}

// Stop halts emission.
func (c *CBR) Stop() { c.stop = true }

func (c *CBR) tick() {
	if c.stop {
		return
	}
	c.send(c.packet())
	c.eng.After(c.interval, c.tick)
}

func (c *CBR) refill() {
	if c.stop {
		return
	}
	for i := 0; i < backlogBurst; i++ {
		if !c.send(c.packet()) {
			break // queue full: the MAC is saturated
		}
	}
	c.eng.After(backlogRefill, c.refill)
}

func (c *CBR) packet() *pkt.Packet {
	c.seq++
	c.uid++
	var p *pkt.Packet
	if c.pool != nil {
		p = c.pool.Get()
	} else {
		p = &pkt.Packet{}
	}
	p.UID = uint64(c.flow)<<33 | 1<<30 | c.uid
	p.FlowID = c.flow
	p.Seq = c.seq
	p.Bytes = c.bytes
	p.Src = c.src
	p.Dst = c.dst
	p.Created = c.eng.Now()
	return p
}

// Receive records a datagram arriving at the destination.
func (c *CBR) Receive(at pkt.NodeID, p *pkt.Packet) {
	if at != c.dst {
		return
	}
	c.fs.NoteArrival(p.Seq, c.eng.Now()-p.Created)
	c.fs.AppBytes += int64(p.Bytes)
}
