package transport

import (
	"testing"
	"testing/quick"

	"ripple/internal/pkt"
	"ripple/internal/sim"
	"ripple/internal/stats"
)

// TestTCPReliabilityProperty: under arbitrary (bounded) loss patterns, a
// bounded transfer either completes with exactly the right number of
// in-order bytes, or is still retrying — it never completes short, never
// over-counts, and never delivers out of thin air.
func TestTCPReliabilityProperty(t *testing.T) {
	prop := func(lossMask []byte, sizeRaw uint8) bool {
		size := int64(sizeRaw%40) + 5
		eng := sim.NewEngine()
		fs := &stats.Flow{ID: 1}
		pp := &pipe{eng: eng, delay: sim.Millisecond}
		seen, dropped := 0, 0
		pp.drop = func(p *pkt.Packet) bool {
			// Bound total losses so the transfer must eventually finish
			// (an adversarial cyclic mask could otherwise drop every
			// exponentially-backed-off retransmission forever).
			if len(lossMask) == 0 || dropped >= 15 {
				return false
			}
			i := seen % len(lossMask)
			seen++
			if lossMask[i] >= 128 {
				dropped++
				return true
			}
			return false
		}
		cfg := DefaultTCPConfig()
		// Cap exponential backoff: with the default 60 s ceiling and
		// Karn's rule, adversarial patterns stall for tens of minutes of
		// simulated time before converging — correct but pointless here.
		cfg.RTOMax = 5 * sim.Second
		conn := NewTCP(eng, cfg, 1, 0, 1, pp.sendFrom(0), pp.sendFrom(1), fs)
		pp.conn = conn
		done := false
		conn.StartTransfer(size, func() { done = true })
		// Generous simulated budget: Karn's rule plus exponential backoff
		// can stretch adversarial loss patterns to several minutes of
		// simulated time (a handful of real events).
		eng.Run(600 * sim.Second)
		if fs.AppBytes > size*1000 {
			return false // over-delivery is impossible
		}
		if done && fs.AppBytes != size*1000 {
			return false // completion implies full in-order delivery
		}
		// With bounded losses and minutes of RTOs, transfers finish.
		return done
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTCPNeverExceedsWindowProperty: the number of unacknowledged packets
// in flight never exceeds the configured maximum window.
func TestTCPNeverExceedsWindowProperty(t *testing.T) {
	prop := func(maxWinRaw uint8) bool {
		maxWin := float64(maxWinRaw%16) + 2
		cfg := DefaultTCPConfig()
		cfg.MaxCwnd = maxWin
		cfg.SSThresh = maxWin
		eng := sim.NewEngine()
		fs := &stats.Flow{ID: 1}
		pp := &pipe{eng: eng, delay: sim.Millisecond}
		inFlight := 0
		maxSeen := 0
		pp.drop = func(p *pkt.Packet) bool {
			if seg, ok := p.Transport.(Segment); ok && !seg.IsAck {
				inFlight++
				if inFlight > maxSeen {
					maxSeen = inFlight
				}
				eng.After(pp.delay, func() { inFlight-- })
			}
			return false
		}
		conn := NewTCP(eng, cfg, 1, 0, 1, pp.sendFrom(0), pp.sendFrom(1), fs)
		pp.conn = conn
		conn.StartTransfer(200, nil)
		eng.Run(10 * sim.Second)
		// In-flight at the pipe can briefly exceed cwnd by retransmits in
		// the same RTT; allow +1 slack.
		return maxSeen <= int(maxWin)+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
