// Package transport implements the end-to-end protocols the paper drives
// its schemes with: a packet-based TCP Reno/NewReno (matching the NS-2 TCP
// agent's behaviour, including the dupack sensitivity to reordering that
// penalises preExOR/MCExOR), a VoIP stream source, and a saturated CBR
// datagram source.
package transport

import (
	"ripple/internal/pkt"
	"ripple/internal/sim"
	"ripple/internal/stats"
)

// Segment is the TCP header carried in Packet.Transport.
type Segment struct {
	IsAck bool
	Seq   int64 // data: packet-granularity sequence number
	Ack   int64 // cumulative: next expected sequence number
}

// SendFunc injects a packet into a node's MAC send queue; it reports false
// when the interface queue was full and the packet was dropped.
type SendFunc func(*pkt.Packet) bool

// TCPConfig tunes the TCP model. DefaultTCPConfig matches the NS-2 style
// agent used by the paper (1000-byte packets, 40-byte ACKs).
type TCPConfig struct {
	MSS         int     // data packet payload bytes
	AckBytes    int     // ACK packet bytes
	InitialCwnd float64 // packets
	MaxCwnd     float64 // receiver window, packets
	SSThresh    float64 // initial slow-start threshold, packets
	DupThresh   int     // dupacks triggering fast retransmit
	RTOMin      sim.Time
	RTOInit     sim.Time
	RTOMax      sim.Time
}

// DefaultTCPConfig returns the configuration used by all experiments.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		MSS:         1000,
		AckBytes:    40,
		InitialCwnd: 2,
		// The receiver window stays below the 50-packet interface queue
		// (Table I) so a single flow does not tail-drop its own queue; it
		// is still deep enough to fill 16-packet aggregate frames.
		MaxCwnd:   42,
		SSThresh:  42,
		DupThresh: 3,
		RTOMin:    200 * sim.Millisecond,
		RTOInit:   1 * sim.Second,
		RTOMax:    60 * sim.Second,
	}
}

// TCP is one bidirectional TCP connection: the sender half lives at Src,
// the receiver half at Dst; ACKs flow back through the same network.
type TCP struct {
	eng     *sim.Engine
	cfg     TCPConfig
	flow    int
	src     pkt.NodeID
	dst     pkt.NodeID
	sendSrc SendFunc
	sendDst SendFunc
	fs      *stats.Flow

	// Sender state.
	cwnd       float64
	ssthresh   float64
	seqNext    int64
	seqUna     int64
	recover    int64
	dupacks    int
	inRecovery bool
	srtt       sim.Time
	rttvar     sim.Time
	rto        sim.Time
	rttValid   bool
	rtoEv      *sim.Event
	txTime     map[int64]sim.Time
	limit      int64 // packets in the current transfer; -1 = unbounded
	done       bool
	onDone     func()

	// Receiver state.
	rcvExpected int64
	rcvBuf      map[int64]bool
	ackEmit     int64 // ack-stream sequence counter (for Rq ordering)

	uidData uint64
	uidAck  uint64

	// pool, when set, recycles packet structs (see SetPool); rtoFn is the
	// RTO callback bound once so re-arming the timer allocates nothing.
	pool  *pkt.Pool
	rtoFn func()
}

// NewTCP creates a connection for the given flow between src and dst.
// sendSrc/sendDst inject packets at the two endpoint nodes; fs receives
// receiver-side statistics.
func NewTCP(eng *sim.Engine, cfg TCPConfig, flow int, src, dst pkt.NodeID,
	sendSrc, sendDst SendFunc, fs *stats.Flow) *TCP {
	t := &TCP{
		eng: eng, cfg: cfg, flow: flow, src: src, dst: dst,
		sendSrc: sendSrc, sendDst: sendDst, fs: fs,
		txTime: make(map[int64]sim.Time),
		rcvBuf: make(map[int64]bool),
		limit:  -1,
	}
	t.rtoFn = t.onRTO
	t.resetConnection()
	return t
}

// SetPool makes the connection draw its packets from a per-run pool
// instead of allocating each one. The packets recycle at their terminal
// delivery/drop points in the MAC layer; nil (the default) keeps plain
// allocation.
func (t *TCP) SetPool(pl *pkt.Pool) { t.pool = pl }

// newPacket draws from the pool when one is attached.
func (t *TCP) newPacket() *pkt.Packet {
	if t.pool != nil {
		return t.pool.Get()
	}
	return &pkt.Packet{}
}

// resetConnection restores fresh congestion state (new slow start, RTO)
// while keeping sequence numbers monotonic — web traffic models each
// transfer as a new connection, but monotonic sequence numbers keep the
// MAC-layer resequencing queues consistent across transfers.
func (t *TCP) resetConnection() {
	t.cwnd = t.cfg.InitialCwnd
	t.ssthresh = t.cfg.SSThresh
	t.dupacks = 0
	t.inRecovery = false
	t.srtt, t.rttvar = 0, 0
	t.rttValid = false
	t.rto = t.cfg.RTOInit
	t.done = false
	clear(t.txTime)
}

// Start begins an unbounded (FTP-style) transfer.
func (t *TCP) Start() { t.limit = -1; t.trySend() }

// StartTransfer begins a bounded transfer of n packets; onDone fires when
// the last packet is cumulatively acknowledged.
func (t *TCP) StartTransfer(n int64, onDone func()) {
	t.resetConnection()
	t.limit = t.seqNext + n
	t.onDone = onDone
	t.trySend()
}

// Receive dispatches a packet arriving at one of the connection endpoints.
func (t *TCP) Receive(at pkt.NodeID, p *pkt.Packet) {
	seg, ok := p.Transport.(Segment)
	if !ok {
		return
	}
	if seg.IsAck && at == t.src {
		t.onAck(seg.Ack)
		return
	}
	if !seg.IsAck && at == t.dst {
		t.onData(p, seg)
	}
}

// --- sender ---

func (t *TCP) window() int64 {
	w := int64(t.cwnd)
	if w < 1 {
		w = 1
	}
	if max := int64(t.cfg.MaxCwnd); w > max {
		w = max
	}
	return w
}

func (t *TCP) trySend() {
	if t.done {
		return
	}
	for t.seqNext < t.seqUna+t.window() && (t.limit < 0 || t.seqNext < t.limit) {
		seq := t.seqNext
		t.seqNext++
		t.emitData(seq, true)
	}
	t.armRTO()
}

func (t *TCP) emitData(seq int64, fresh bool) {
	t.uidData++
	p := t.newPacket()
	p.UID = uint64(t.flow)<<33 | t.uidData
	p.FlowID = t.flow
	p.Seq = seq
	p.Bytes = t.cfg.MSS
	p.Src = t.src
	p.Dst = t.dst
	p.Created = t.eng.Now()
	p.Transport = Segment{Seq: seq}
	if fresh {
		t.txTime[seq] = t.eng.Now()
	} else {
		delete(t.txTime, seq) // Karn: never sample a retransmitted segment
	}
	t.sendSrc(p)
}

func (t *TCP) onAck(ack int64) {
	if t.done {
		return
	}
	switch {
	case ack > t.seqUna:
		newly := ack - t.seqUna
		t.sampleRTT(ack - 1)
		t.seqUna = ack
		t.dupacks = 0
		if t.inRecovery {
			if ack >= t.recover {
				// Full ack: leave fast recovery (NewReno).
				t.inRecovery = false
				t.cwnd = t.ssthresh
			} else {
				// Partial ack: retransmit the next hole, deflate.
				t.emitData(t.seqUna, false)
				t.cwnd -= float64(newly)
				if t.cwnd < 1 {
					t.cwnd = 1
				}
				t.cwnd++
			}
		} else {
			for i := int64(0); i < newly; i++ {
				if t.cwnd < t.ssthresh {
					t.cwnd++ // slow start
				} else {
					t.cwnd += 1 / t.cwnd // congestion avoidance
				}
			}
			if t.cwnd > t.cfg.MaxCwnd {
				t.cwnd = t.cfg.MaxCwnd
			}
		}
		for seq := range t.txTime {
			if seq < ack {
				delete(t.txTime, seq)
			}
		}
		if t.limit >= 0 && t.seqUna >= t.limit {
			t.finish()
			return
		}
		t.armRTO()
		t.trySend()

	case ack == t.seqUna:
		t.dupacks++
		if !t.inRecovery && t.dupacks == t.cfg.DupThresh {
			// Fast retransmit + fast recovery.
			t.ssthresh = maxf(t.cwnd/2, 2)
			t.cwnd = t.ssthresh + float64(t.cfg.DupThresh)
			t.inRecovery = true
			t.recover = t.seqNext
			t.emitData(t.seqUna, false)
		} else if t.inRecovery {
			t.cwnd++ // window inflation per extra dupack
			t.trySend()
		}
	}
}

func (t *TCP) sampleRTT(seq int64) {
	sent, ok := t.txTime[seq]
	if !ok {
		return
	}
	m := t.eng.Now() - sent
	if !t.rttValid {
		t.srtt = m
		t.rttvar = m / 2
		t.rttValid = true
	} else {
		d := t.srtt - m
		if d < 0 {
			d = -d
		}
		t.rttvar = (3*t.rttvar + d) / 4
		t.srtt = (7*t.srtt + m) / 8
	}
	t.rto = t.srtt + 4*t.rttvar
	if t.rto < t.cfg.RTOMin {
		t.rto = t.cfg.RTOMin
	}
	// Clamp above as well: a cumulative ACK can cover a segment whose
	// (never-retransmitted, so Karn-valid) timestamp predates a long
	// recovery stall, yielding a grossly inflated sample.
	if t.rto > t.cfg.RTOMax {
		t.rto = t.cfg.RTOMax
	}
}

func (t *TCP) armRTO() {
	t.eng.Cancel(t.rtoEv)
	if t.seqUna == t.seqNext {
		return // nothing outstanding
	}
	// Re-arm the one timer event in place: Reschedule revives a fired or
	// cancelled event with a fresh sequence number, so the hot per-ACK
	// re-arm allocates nothing after the first call.
	if t.rtoEv == nil {
		t.rtoEv = t.eng.After(t.rto, t.rtoFn)
		return
	}
	t.eng.Reschedule(t.rtoEv, t.eng.Now()+t.rto)
}

func (t *TCP) onRTO() {
	if t.done || t.seqUna == t.seqNext {
		return
	}
	t.ssthresh = maxf(t.cwnd/2, 2)
	t.cwnd = 1
	t.dupacks = 0
	t.inRecovery = false
	t.rto *= 2
	if t.rto > t.cfg.RTOMax {
		t.rto = t.cfg.RTOMax
	}
	t.emitData(t.seqUna, false)
	t.armRTO()
}

func (t *TCP) finish() {
	t.done = true
	t.eng.Cancel(t.rtoEv)
	t.fs.TransfersCompleted++
	if t.onDone != nil {
		done := t.onDone
		t.onDone = nil
		done()
	}
}

// --- receiver ---

func (t *TCP) onData(p *pkt.Packet, seg Segment) {
	t.fs.NoteArrival(seg.Seq, t.eng.Now()-p.Created)
	switch {
	case seg.Seq == t.rcvExpected:
		t.rcvExpected++
		t.fs.AppBytes += int64(t.cfg.MSS)
		for t.rcvBuf[t.rcvExpected] {
			delete(t.rcvBuf, t.rcvExpected)
			t.rcvExpected++
			t.fs.AppBytes += int64(t.cfg.MSS)
		}
	case seg.Seq > t.rcvExpected:
		t.rcvBuf[seg.Seq] = true
	default:
		t.fs.Duplicates++
	}
	t.emitAck()
}

func (t *TCP) emitAck() {
	t.uidAck++
	t.ackEmit++
	p := t.newPacket()
	p.UID = uint64(t.flow)<<33 | 1<<32 | t.uidAck
	p.FlowID = t.flow
	p.Seq = t.ackEmit
	p.Bytes = t.cfg.AckBytes
	p.Src = t.dst
	p.Dst = t.src
	p.Created = t.eng.Now()
	p.Transport = Segment{IsAck: true, Ack: t.rcvExpected}
	t.sendDst(p)
}

// Cwnd exposes the current congestion window (packets) for tests.
func (t *TCP) Cwnd() float64 { return t.cwnd }

// SeqUna exposes the first unacknowledged sequence number for tests.
func (t *TCP) SeqUna() int64 { return t.seqUna }

// Done reports whether a bounded transfer has completed.
func (t *TCP) Done() bool { return t.done }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
