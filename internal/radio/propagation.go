// Package radio simulates the shared wireless medium: log-distance path loss
// with per-frame lognormal shadowing (the NS-2 "Shadowing" model the paper
// configures with exponent 5 and deviation 8 dB), an i.i.d. bit-error
// process applied to decodable frames, carrier sensing, capture, and
// collision detection at each receiver.
package radio

import (
	"math"

	"ripple/internal/sim"
)

// Pos is a station position in metres.
type Pos struct{ X, Y float64 }

// Dist returns the Euclidean distance between two positions.
func Dist(a, b Pos) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Hypot(dx, dy)
}

// speedOfLight in metres per second, for propagation delay.
const speedOfLight = 299_792_458.0

// Config describes the radio environment. Use DefaultConfig for the paper's
// setting (shadowing exponent 5, deviation 8 dB, 281 mW transmit power).
type Config struct {
	// TxPowerDBm is the transmit power; 281 mW = 24.49 dBm (paper §IV).
	TxPowerDBm float64
	// PathLossExp is the log-distance path loss exponent (paper: 5).
	PathLossExp float64
	// RefLossDB is the path loss at the 1 m reference distance
	// (free-space at 2.4 GHz: ≈40.05 dB).
	RefLossDB float64
	// ShadowSigmaDB is the lognormal shadowing deviation (paper: 8 dB),
	// drawn independently per frame per link, which makes losses between
	// the source and different forwarders independent — the property
	// opportunistic routing exploits.
	ShadowSigmaDB float64
	// RXThreshDBm is the decode threshold: frames arriving below it are
	// sensed (if above CSThreshDBm) but cannot be decoded.
	RXThreshDBm float64
	// CSThreshDBm is the carrier-sense threshold; typically 10-20 dB below
	// RXThreshDBm so stations defer to transmissions they cannot decode.
	CSThreshDBm float64
	// CaptureDB: during overlapping receptions the stronger frame survives
	// if it exceeds the other by at least this margin, otherwise both are
	// corrupted (NS-2 capture model, 10 dB).
	CaptureDB float64
	// BitErrorRate is the i.i.d. BER applied to decodable frames
	// (paper: 1e-5 "noisy", 1e-6 "clear").
	BitErrorRate float64
	// PruneSigma controls receiver pruning in the medium's link cache: a
	// station whose mean received power is more than PruneSigma shadowing
	// deviations below the carrier-sense threshold is excluded from a
	// transmitter's neighbor list and never draws a shadowing sample.
	// 0 disables pruning and reproduces the unpruned medium's RNG stream
	// bit for bit; DefaultPruneSigma (the DefaultConfig setting) bounds
	// the per-receiver false-prune probability by Φ(−6) ≈ 1e−9, which is
	// statistically indistinguishable from the unpruned medium. With
	// ShadowSigmaDB == 0 pruning at any PruneSigma is exact.
	PruneSigma float64
}

// DefaultRange is the distance (metres) at which a frame is decoded with
// probability 1/2 under DefaultConfig. One topology "hop" of 100 m then has
// ≈0.5% frame loss, 200 m ≈25%, and 300 m (the SPR direct link in Fig. 1)
// ≈65% — reproducing "the link quality between source and destination is
// typically poor" while per-hop links are good.
const DefaultRange = 258.0

// DefaultPruneSigma is DefaultConfig's neighbor-pruning cutoff in shadowing
// deviations. Six sigma keeps the probability that a pruned receiver would
// actually have sensed a given frame below Φ(−6) ≈ 1e−9 — far below the
// resolution of any delivery or delay statistic — while excluding the vast
// majority of station pairs on large (Roofnet/WiGLE-scale) topologies.
const DefaultPruneSigma = 6

// DefaultConfig returns the paper's radio environment.
func DefaultConfig() Config {
	c := Config{
		TxPowerDBm:    10 * math.Log10(281), // 281 mW in dBm ≈ 24.49
		PathLossExp:   5,
		RefLossDB:     40.05,
		ShadowSigmaDB: 8,
		CaptureDB:     10,
		BitErrorRate:  1e-6,
		PruneSigma:    DefaultPruneSigma,
	}
	c.RXThreshDBm = c.MeanRxPowerDBm(DefaultRange)
	c.CSThreshDBm = c.RXThreshDBm - 13 // carrier-sense range ≈ 1.82× decode range
	return c
}

// MeanRxPowerDBm returns the mean received power at distance d metres
// (before the shadowing draw).
func (c Config) MeanRxPowerDBm(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return c.TxPowerDBm - c.RefLossDB - 10*c.PathLossExp*math.Log10(d)
}

// LossProb returns the analytic probability that a frame transmitted over
// distance d arrives below the decode threshold: Φ((RXThresh − mean)/σ).
// Used by the ETX route metric and by calibration tests.
func (c Config) LossProb(d float64) float64 {
	if c.ShadowSigmaDB == 0 {
		if c.MeanRxPowerDBm(d) >= c.RXThreshDBm {
			return 0
		}
		return 1
	}
	z := (c.RXThreshDBm - c.MeanRxPowerDBm(d)) / c.ShadowSigmaDB
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// DeliveryProb is 1 − LossProb, additionally discounted by the probability
// that all `bits` survive the i.i.d. bit-error process.
func (c Config) DeliveryProb(d float64, bits int) float64 {
	return (1 - c.LossProb(d)) * math.Pow(1-c.BitErrorRate, float64(bits))
}

// CSRange returns the carrier-sense range in metres implied by the config.
func (c Config) CSRange() float64 {
	return c.rangeFor(c.CSThreshDBm)
}

// RXRange returns the 50%-decode range in metres implied by the config.
func (c Config) RXRange() float64 {
	return c.rangeFor(c.RXThreshDBm)
}

func (c Config) rangeFor(thresh float64) float64 {
	// thresh = TxPower - RefLoss - 10*n*log10(d)  =>  solve for d.
	return math.Pow(10, (c.TxPowerDBm-c.RefLossDB-thresh)/(10*c.PathLossExp))
}

// propDelay returns the propagation delay over d metres.
func propDelay(d float64) sim.Time {
	return sim.Time(d / speedOfLight * 1e9)
}
