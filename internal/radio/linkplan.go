package radio

import (
	"sort"

	"ripple/internal/sim"
)

// LinkPlan is the seed-independent precomputation of a Medium: the pairwise
// mean-RX-power / distance / propagation-delay matrices and the per-station
// pruned neighbor lists, all derived purely from the radio Config and the
// station positions. Building one costs O(N²) in both time and memory —
// for a campaign cell that fans the same scenario across many seeds it is
// the dominant per-run setup cost, so NewMediumOn accepts a prebuilt plan
// and shares it by reference across runs.
//
// Immutability contract: a LinkPlan is never written after NewLinkPlan
// returns. Every Medium built on it — concurrently, from any number of
// pool workers — only reads it, which is what makes sharing safe; the
// shared-world race test in internal/network hammers one plan from many
// goroutines under -race to keep it that way.
type LinkPlan struct {
	cfg       Config
	positions []Pos
	n         int

	// Flat n×n matrices indexed [src*n + dst].
	meanDBm  []float64  // mean received power before the shadowing draw
	linkDist []float64  // Euclidean distance in metres
	linkPD   []sim.Time // propagation delay

	// neighbors lists, per source, the stations that can possibly sense a
	// transmission. With Config.PruneSigma == 0 it is every other station
	// in ID order — preserving the unpruned RNG stream bit for bit. With
	// PruneSigma > 0 stations whose mean power is more than
	// PruneSigma×ShadowSigmaDB below the carrier-sense threshold are
	// pruned, and the survivors are sorted by mean power (strongest first,
	// ties by ID).
	neighbors [][]int32
	// pruned reports whether neighbor pruning is active; pruneCutoff is
	// the mean-power floor (dBm) below which a pair is pruned, so
	// meanDBm[src*n+dst] >= pruneCutoff ⇔ dst ∈ neighbors[src].
	pruned      bool
	pruneCutoff float64
}

// NewLinkPlan precomputes the link matrices and neighbor lists for the
// given radio configuration and station positions.
func NewLinkPlan(cfg Config, positions []Pos) *LinkPlan {
	n := len(positions)
	pl := &LinkPlan{
		cfg:       cfg,
		positions: append([]Pos(nil), positions...),
		n:         n,
		meanDBm:   make([]float64, n*n),
		linkDist:  make([]float64, n*n),
		linkPD:    make([]sim.Time, n*n),
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := Dist(positions[i], positions[j])
			p := cfg.MeanRxPowerDBm(d)
			pd := propDelay(d)
			pl.linkDist[i*n+j], pl.linkDist[j*n+i] = d, d
			pl.meanDBm[i*n+j], pl.meanDBm[j*n+i] = p, p
			pl.linkPD[i*n+j], pl.linkPD[j*n+i] = pd, pd
		}
	}

	pl.pruned = cfg.PruneSigma > 0
	pl.pruneCutoff = cfg.CSThreshDBm - cfg.PruneSigma*cfg.ShadowSigmaDB
	pl.neighbors = make([][]int32, n)
	for i := 0; i < n; i++ {
		list := make([]int32, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if pl.pruned && pl.meanDBm[i*n+j] < pl.pruneCutoff {
				continue
			}
			list = append(list, int32(j))
		}
		if pl.pruned {
			row := pl.meanDBm[i*n : i*n+n]
			sort.Slice(list, func(a, b int) bool {
				pa, pb := row[list[a]], row[list[b]]
				if pa != pb {
					return pa > pb
				}
				return list[a] < list[b]
			})
		}
		pl.neighbors[i] = list
	}
	return pl
}

// Config returns the radio configuration the plan was built with.
func (pl *LinkPlan) Config() Config { return pl.cfg }

// Stations returns the number of stations the plan covers.
func (pl *LinkPlan) Stations() int { return pl.n }

// Distance returns the distance in metres between two stations.
func (pl *LinkPlan) Distance(a, b int) float64 { return pl.linkDist[a*pl.n+b] }

// MeanDBm returns the mean received power of the a→b link in dBm.
func (pl *LinkPlan) MeanDBm(a, b int) float64 { return pl.meanDBm[a*pl.n+b] }
