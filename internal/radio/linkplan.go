package radio

import (
	"slices"

	"ripple/internal/sim"
)

// LinkPlan is the seed-independent precomputation of a Medium: per-station
// neighbor lists with the mean RX power, distance and propagation delay of
// every kept link, all derived purely from the radio Config and the station
// positions. For a campaign cell that fans the same scenario across many
// seeds it is the dominant per-run setup cost, so NewMediumOn accepts a
// prebuilt plan and shares it by reference across runs.
//
// Storage is CSR-style sparse: one flat array per link attribute, with
// station i's links occupying slots off[i]..off[i+1]. With
// Config.PruneSigma == 0 every ordered pair is kept (the "dense" plan:
// O(N²) memory, neighbor lists in ID order, preserving the unpruned RNG
// stream bit for bit). With PruneSigma > 0 a uniform spatial grid (posGrid)
// enumerates only candidate pairs within the pruning radius implied by the
// cutoff, so build time and memory are O(N·k) in the average neighbor count
// k — the representation that makes 10k+-station worlds affordable — and
// each station's links are sorted by mean power (strongest first, ties by
// ID), exactly as the pruned dense build sorted them.
//
// Immutability contract: a LinkPlan is never written after NewLinkPlan
// returns. Every Medium built on it — concurrently, from any number of
// pool workers — only reads it, which is what makes sharing safe; the
// shared-world race test in internal/network hammers one plan from many
// goroutines under -race to keep it that way.
type LinkPlan struct {
	cfg       Config
	positions []Pos
	n         int

	// CSR link storage: station i's neighbors are nbrID[off[i]:off[i+1]]
	// with parallel per-link attributes. Unpruned rows are in ascending ID
	// order; pruned rows are sorted by mean power (desc, ties by ID).
	off     []int64
	nbrID   []int32
	nbrDBm  []float64  // mean received power before the shadowing draw
	nbrDist []float64  // Euclidean distance in metres
	nbrPD   []sim.Time // propagation delay

	// Pruned rows store a secondary per-row index for O(log k) pair
	// lookup: lookID is the row's neighbor IDs in ascending order and
	// lookSlot the row-relative slot each occupies in the power-sorted
	// primary arrays. Unpruned rows need no index — ID order makes the
	// slot directly computable.
	lookID   []int32
	lookSlot []int32

	// pruned reports whether neighbor pruning is active; pruneCutoff is
	// the mean-power floor (dBm) below which a pair is pruned, so
	// MeanDBm(a, b) >= pruneCutoff ⇔ b ∈ neighbors(a).
	pruned      bool
	pruneCutoff float64
}

// NewLinkPlan precomputes the link attributes and neighbor lists for the
// given radio configuration and station positions.
func NewLinkPlan(cfg Config, positions []Pos) *LinkPlan {
	pl := &LinkPlan{
		cfg:       cfg,
		positions: append([]Pos(nil), positions...),
		n:         len(positions),
	}
	pl.pruned = cfg.PruneSigma > 0
	pl.pruneCutoff = cfg.CSThreshDBm - cfg.PruneSigma*cfg.ShadowSigmaDB
	if pl.pruned {
		pl.buildPruned()
	} else {
		pl.buildFull()
	}
	return pl
}

// buildFull keeps every ordered pair, rows in ascending ID order. Slots
// are computable (fullSlot), so no lookup index is needed.
func (pl *LinkPlan) buildFull() {
	n := pl.n
	edges := n * (n - 1)
	pl.off = make([]int64, n+1)
	for i := 1; i <= n; i++ {
		pl.off[i] = int64(i * (n - 1))
	}
	pl.nbrID = make([]int32, edges)
	pl.nbrDBm = make([]float64, edges)
	pl.nbrDist = make([]float64, edges)
	pl.nbrPD = make([]sim.Time, edges)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := Dist(pl.positions[i], pl.positions[j])
			p := pl.cfg.MeanRxPowerDBm(d)
			pd := propDelay(d)
			si := pl.fullSlot(i, j)
			sj := pl.fullSlot(j, i)
			pl.nbrID[si], pl.nbrID[sj] = int32(j), int32(i)
			pl.nbrDBm[si], pl.nbrDBm[sj] = p, p
			pl.nbrDist[si], pl.nbrDist[sj] = d, d
			pl.nbrPD[si], pl.nbrPD[sj] = pd, pd
		}
	}
}

// fullSlot is the CSR slot of neighbor b in row a of an unpruned plan,
// where row a is every other station in ascending ID order.
func (pl *LinkPlan) fullSlot(a, b int) int {
	if b < a {
		return a*(pl.n-1) + b
	}
	return a*(pl.n-1) + b - 1
}

// buildPruned enumerates candidate pairs through the spatial grid and keeps
// those whose mean power clears the pruning cutoff. Mean power is monotone
// non-increasing in distance, so every kept pair lies within
// rangeFor(pruneCutoff) metres; the 0.1% radius margin absorbs the
// floating-point slack of that inversion, and the exact power predicate is
// still applied per candidate — the kept set is identical to what a full
// N² sweep with the same predicate would keep.
func (pl *LinkPlan) buildPruned() {
	n := pl.n
	pl.off = make([]int64, n+1)
	if n == 0 {
		return
	}
	radius := pl.cfg.rangeFor(pl.pruneCutoff) * 1.001
	if radius < 1 {
		// MeanRxPowerDBm clamps d < 1 to 1 m, so sub-metre pairs still
		// need a cell to meet in even when the cutoff exceeds the 1 m
		// power (in which case the predicate keeps nothing).
		radius = 1
	}
	rsq := radius * radius
	grid := newPosGrid(pl.positions, radius)

	// Pass 1: count in-radius candidates — a tight upper bound on the kept
	// links (the exact predicate can only reject boundary candidates), so
	// the flat arrays are sized once, with no dense O(N²) reservation.
	candidates := 0
	for i := 0; i < n; i++ {
		grid.eachCandidate(i, pl.positions, rsq, func(int32) { candidates++ })
	}
	pl.nbrID = make([]int32, 0, candidates)
	pl.nbrDBm = make([]float64, 0, candidates)
	pl.nbrDist = make([]float64, 0, candidates)
	pl.nbrPD = make([]sim.Time, 0, candidates)
	pl.lookID = make([]int32, 0, candidates)
	pl.lookSlot = make([]int32, 0, candidates)

	// Pass 2: compute the exact link attributes per candidate, keep those
	// clearing the cutoff, and append each row sorted by (power desc, ID).
	var s rowScratch
	for i := 0; i < n; i++ {
		pl.appendScratchRow(i, grid, rsq, &s)
	}
}

// rowScratch holds the per-row working slices of a pruned build, hoisted
// out of the row loops so candidate collection and sorting reuse one set
// of allocations across all rows.
type rowScratch struct {
	ids  []int32
	dbm  []float64
	dist []float64
	perm []int32
	// oldSlot and newSlot are the epoch patch's slot remaps (see
	// appendPatchedRow): the new row-relative slot of each surviving old
	// entry and of each dirty addition.
	oldSlot []int32
	newSlot []int32
}

// collect resets the scratch and gathers station i's kept links from the
// grid's candidates, applying the exact power predicate.
func (s *rowScratch) collect(pl *LinkPlan, i int, grid *posGrid, rsq float64) {
	s.ids, s.dbm, s.dist = s.ids[:0], s.dbm[:0], s.dist[:0]
	grid.eachCandidate(i, pl.positions, rsq, func(j int32) {
		d := Dist(pl.positions[i], pl.positions[j])
		p := pl.cfg.MeanRxPowerDBm(d)
		if p < pl.pruneCutoff {
			return
		}
		s.ids = append(s.ids, j)
		s.dbm = append(s.dbm, p)
		s.dist = append(s.dist, d)
	})
}

// sort orders the scratch entries by (power desc, ID asc) — the pruned
// row order — leaving the permutation in s.perm.
func (s *rowScratch) sort() {
	s.perm = s.perm[:0]
	for k := range s.ids {
		s.perm = append(s.perm, int32(k))
	}
	// slices.SortFunc, not sort.Slice: the reflection-based swapper is
	// the build's hottest path at city scale. Both orders are strict
	// (the ID tiebreak is unique within a row), so the instability of
	// either algorithm never shows.
	slices.SortFunc(s.perm, func(ka, kb int32) int {
		if s.dbm[ka] != s.dbm[kb] {
			if s.dbm[ka] > s.dbm[kb] {
				return -1
			}
			return 1
		}
		return int(s.ids[ka] - s.ids[kb])
	})
}

// appendScratchRow computes station i's row from scratch via the grid and
// appends it power-sorted, with its lookup index and off entry.
func (pl *LinkPlan) appendScratchRow(i int, grid *posGrid, rsq float64, s *rowScratch) {
	s.collect(pl, i, grid, rsq)
	s.sort()
	for _, k := range s.perm {
		pl.nbrID = append(pl.nbrID, s.ids[k])
		pl.nbrDBm = append(pl.nbrDBm, s.dbm[k])
		pl.nbrDist = append(pl.nbrDist, s.dist[k])
		pl.nbrPD = append(pl.nbrPD, propDelay(s.dist[k]))
	}
	pl.appendRowLookup(int(pl.off[i]))
	pl.off[i+1] = int64(len(pl.nbrID))
}

// appendRowLookup builds the per-row lookup index — neighbor IDs ascending
// with their slot in the power-sorted row — for the row starting at
// rowStart, which must be the last row appended to the primary arrays.
func (pl *LinkPlan) appendRowLookup(rowStart int) {
	rowLen := len(pl.nbrID) - rowStart
	for k := 0; k < rowLen; k++ {
		pl.lookSlot = append(pl.lookSlot, int32(k))
	}
	look := pl.lookSlot[rowStart:]
	rowIDs := pl.nbrID[rowStart:]
	slices.SortFunc(look, func(a, b int32) int { return int(rowIDs[a] - rowIDs[b]) })
	for _, s := range look {
		pl.lookID = append(pl.lookID, rowIDs[s])
	}
}

// row returns station i's neighbor IDs and the parallel mean-power and
// propagation-delay arrays (the Medium's transmit fast path).
func (pl *LinkPlan) row(i int) (ids []int32, dbm []float64, pd []sim.Time) {
	lo, hi := pl.off[i], pl.off[i+1]
	return pl.nbrID[lo:hi], pl.nbrDBm[lo:hi], pl.nbrPD[lo:hi]
}

// slot returns the CSR slot of the a→b link, or -1 when b is not a
// neighbor of a (pruned pair, or a == b).
func (pl *LinkPlan) slot(a, b int) int {
	if a == b {
		return -1
	}
	if !pl.pruned {
		return pl.fullSlot(a, b)
	}
	lo, hi := int(pl.off[a]), int(pl.off[a+1])
	row := pl.lookID[lo:hi]
	target := int32(b)
	x, y := 0, len(row)
	for x < y {
		mid := int(uint(x+y) >> 1)
		if row[mid] < target {
			x = mid + 1
		} else {
			y = mid
		}
	}
	if x < len(row) && row[x] == target {
		return lo + int(pl.lookSlot[lo+x])
	}
	return -1
}

// Config returns the radio configuration the plan was built with.
func (pl *LinkPlan) Config() Config { return pl.cfg }

// Stations returns the number of stations the plan covers.
func (pl *LinkPlan) Stations() int { return pl.n }

// Pruned reports whether neighbor pruning is active (PruneSigma > 0), i.e.
// whether the plan stores only in-range links.
func (pl *LinkPlan) Pruned() bool { return pl.pruned }

// Links returns the number of directed links the plan stores — n·(n−1)
// unpruned, the in-range link count with pruning on.
func (pl *LinkPlan) Links() int { return len(pl.nbrID) }

// Degree returns the number of stored neighbors of station i.
func (pl *LinkPlan) Degree(i int) int { return int(pl.off[i+1] - pl.off[i]) }

// AscNeighbors returns station i's neighbor IDs in ascending order. The
// returned slice aliases the plan and must not be modified. The routing
// layer iterates it to build its sparse link table over exactly the pairs
// the plan kept.
func (pl *LinkPlan) AscNeighbors(i int) []int32 {
	lo, hi := pl.off[i], pl.off[i+1]
	if !pl.pruned {
		return pl.nbrID[lo:hi] // already in ID order
	}
	return pl.lookID[lo:hi]
}

// EachAscNeighbor calls yield for every stored neighbor of station i in
// ascending ID order, with the precomputed link distance. It is the bulk
// companion of AscNeighbors for callers that need per-link attributes:
// iterating the CSR row directly avoids the per-pair slot lookup that
// Distance(a, b) pays.
func (pl *LinkPlan) EachAscNeighbor(i int, yield func(id int32, dist float64)) {
	lo, hi := pl.off[i], pl.off[i+1]
	if !pl.pruned {
		for k := lo; k < hi; k++ {
			yield(pl.nbrID[k], pl.nbrDist[k]) // rows already in ID order
		}
		return
	}
	for k := lo; k < hi; k++ {
		yield(pl.lookID[k], pl.nbrDist[lo+int64(pl.lookSlot[k])])
	}
}

// Distance returns the distance in metres between two stations. Pairs the
// plan pruned are computed on demand from the positions, so the accessor
// is exact for every pair, sparse or not.
func (pl *LinkPlan) Distance(a, b int) float64 {
	if s := pl.slot(a, b); s >= 0 {
		return pl.nbrDist[s]
	}
	if a == b {
		return 0
	}
	return Dist(pl.positions[a], pl.positions[b])
}

// MeanDBm returns the mean received power of the a→b link in dBm (0 when
// a == b, matching the dense matrix diagonal). Pruned pairs are computed
// on demand, so the accessor is exact for every pair.
func (pl *LinkPlan) MeanDBm(a, b int) float64 {
	if s := pl.slot(a, b); s >= 0 {
		return pl.nbrDBm[s]
	}
	if a == b {
		return 0
	}
	return pl.cfg.MeanRxPowerDBm(Dist(pl.positions[a], pl.positions[b]))
}
