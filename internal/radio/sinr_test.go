package radio

import (
	"testing"

	"ripple/internal/sim"
)

// TestAggregateInterferenceCorrupts: two interferers that are each
// individually capture-protected (≈12.8 dB below the signal) jointly push
// the SINR below the 10 dB capture margin — the cumulative model behind the
// Fig. 6(b) hidden-collision collapse.
func TestAggregateInterferenceCorrupts(t *testing.T) {
	// Receiver at origin; signal from 100 m; interferers at 180 m
	// (50·log10(1.8) ≈ 12.8 dB weaker each; two of them ≈ 9.75 dB).
	positions := []Pos{
		{X: 0, Y: 0},    // receiver
		{X: 100, Y: 0},  // signal source
		{X: -180, Y: 0}, // interferer 1
		{X: 0, Y: 180},  // interferer 2
	}

	run := func(nInterferers int) bool {
		eng, m, macs := testMedium(t, idealConfig(), positions)
		m.Transmit(dataFrame(1, 0, 100*sim.Microsecond))
		if nInterferers >= 1 {
			m.Transmit(dataFrame(2, 3, 100*sim.Microsecond))
		}
		if nInterferers >= 2 {
			m.Transmit(dataFrame(3, 2, 100*sim.Microsecond))
		}
		eng.Run(sim.Second)
		for _, f := range macs[0].rx {
			if f.Tx == 1 {
				return true
			}
		}
		return false
	}

	if !run(0) {
		t.Fatal("clean signal must decode")
	}
	if !run(1) {
		t.Fatal("single 12.8 dB-down interferer must be captured over")
	}
	if run(2) {
		t.Fatal("two 12.8 dB-down interferers must jointly corrupt (aggregate ≈9.7 dB < 10 dB capture)")
	}
}

// TestInterferenceAccumulatesAcrossArrivals: interference is counted even
// when the interferer starts mid-reception.
func TestInterferenceStaggeredArrival(t *testing.T) {
	positions := []Pos{{X: 0}, {X: 100}, {X: 120}}
	eng, m, macs := testMedium(t, idealConfig(), positions)
	m.Transmit(dataFrame(1, 0, 200*sim.Microsecond))
	// A near-equal-power interferer begins 150 µs in: still corrupts.
	eng.At(150*sim.Microsecond, func() {
		m.Transmit(dataFrame(2, 1, 50*sim.Microsecond))
	})
	eng.Run(sim.Second)
	for _, f := range macs[0].rx {
		if f.Tx == 1 {
			t.Fatal("late-arriving equal-power interferer must corrupt the reception")
		}
	}
}

// TestWeakInterfererBelowCSIgnored: frames below the carrier-sense
// threshold contribute nothing (the model's interference floor).
func TestWeakInterfererBelowCSIgnored(t *testing.T) {
	positions := []Pos{{X: 0}, {X: 100}, {X: 900}} // 900 m ≫ CS range
	eng, m, macs := testMedium(t, idealConfig(), positions)
	m.Transmit(dataFrame(1, 0, 100*sim.Microsecond))
	m.Transmit(dataFrame(2, 1, 100*sim.Microsecond))
	eng.Run(sim.Second)
	found := false
	for _, f := range macs[0].rx {
		if f.Tx == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("sub-CS interferer must not corrupt the reception")
	}
}

// TestMultiRateThresholdShift: a frame sent at a faster rate needs more
// power — the same 200 m link decodes at the base rate but not at 4× with
// zero shadowing.
func TestMultiRateThresholdShift(t *testing.T) {
	positions := []Pos{{X: 0}, {X: 200}}
	run := func(rate float64) bool {
		eng, m, macs := testMedium(t, idealConfig(), positions)
		f := dataFrame(1, 0, 50*sim.Microsecond)
		f.RateBps = rate
		m.Transmit(f)
		eng.Run(sim.Second)
		return len(macs[0].rx) == 1
	}
	if !run(0) {
		t.Fatal("200 m link must decode at the base rate")
	}
	if run(864e6) { // 4× the 216 Mbps base: threshold +11.3 dB
		t.Fatal("200 m link must fail at 4× the base rate")
	}
}
