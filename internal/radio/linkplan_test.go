package radio

import (
	"reflect"
	"testing"

	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// planPositions is a small asymmetric layout (no two equal distances).
func planPositions() []Pos {
	return []Pos{{0, 0}, {110, 0}, {200, 30}, {90, 160}}
}

func TestLinkPlanMatchesPrivateBuild(t *testing.T) {
	for _, sigma := range []float64{0, 6} {
		cfg := DefaultConfig()
		cfg.PruneSigma = sigma
		plan := NewLinkPlan(cfg, planPositions())

		eng := sim.NewEngine()
		rng := sim.NewRNG(7, 1)
		private := NewMedium(eng, cfg, phys.Default(), planPositions(), rng)
		shared := NewMediumOn(sim.NewEngine(), plan, phys.Default(), sim.NewRNG(7, 1))

		for a := 0; a < len(planPositions()); a++ {
			for b := 0; b < len(planPositions()); b++ {
				if private.Distance(pkt.NodeID(a), pkt.NodeID(b)) != shared.Distance(pkt.NodeID(a), pkt.NodeID(b)) {
					t.Fatalf("sigma %v: distance(%d,%d) differs", sigma, a, b)
				}
			}
			pa := pkt.NodeID(a)
			if !reflect.DeepEqual(private.Neighbors(pa), shared.Neighbors(pa)) {
				t.Fatalf("sigma %v: neighbor list of %d differs", sigma, a)
			}
		}
		if private.Config() != shared.Config() {
			t.Fatalf("sigma %v: configs differ", sigma)
		}
	}
}

func TestSharedPlanRunIsRNGBitIdentical(t *testing.T) {
	// Two mediums — one private build, one on a shared plan — fed the same
	// frame sequence must produce identical counters and shadowing draws.
	cfg := DefaultConfig()
	cfg.ShadowSigmaDB = 6
	plan := NewLinkPlan(cfg, planPositions())

	run := func(m *Medium, eng *sim.Engine) Counters {
		macs := make([]*nullMAC, plan.Stations())
		for i := range macs {
			macs[i] = &nullMAC{}
			m.Attach(pkt.NodeID(i), macs[i])
		}
		for i := 0; i < 50; i++ {
			tx := pkt.NodeID(i % plan.Stations())
			f := &pkt.Frame{
				Kind: pkt.Data, Tx: tx, Rx: pkt.NodeID((i + 1) % plan.Stations()),
				Packets:  []*pkt.Packet{{UID: uint64(i), Bytes: 500}},
				Duration: 100 * sim.Microsecond,
			}
			m.Transmit(f)
			eng.Run(sim.Time(i+1) * 300 * sim.Microsecond)
		}
		eng.Run(sim.Second)
		return m.Counters
	}

	engA := sim.NewEngine()
	a := run(NewMedium(engA, cfg, phys.Default(), planPositions(), sim.NewRNG(3, 1)), engA)
	engB := sim.NewEngine()
	b := run(NewMediumOn(engB, plan, phys.Default(), sim.NewRNG(3, 1)), engB)
	if a != b {
		t.Fatalf("counters differ:\nprivate %+v\nshared  %+v", a, b)
	}
}

// nullMAC absorbs upcalls.
type nullMAC struct{}

func (*nullMAC) ChannelBusy()                     {}
func (*nullMAC) ChannelIdle()                     {}
func (*nullMAC) FrameReceived(*pkt.Frame, []bool) {}
func (*nullMAC) FrameCorrupted()                  {}
func (*nullMAC) TxDone(*pkt.Frame)                {}
