package radio

import (
	"reflect"
	"sort"
	"testing"

	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// planPositions is a small asymmetric layout (no two equal distances).
func planPositions() []Pos {
	return []Pos{{0, 0}, {110, 0}, {200, 30}, {90, 160}}
}

func TestLinkPlanMatchesPrivateBuild(t *testing.T) {
	for _, sigma := range []float64{0, 6} {
		cfg := DefaultConfig()
		cfg.PruneSigma = sigma
		plan := NewLinkPlan(cfg, planPositions())

		eng := sim.NewEngine()
		rng := sim.NewRNG(7, 1)
		private := NewMedium(eng, cfg, phys.Default(), planPositions(), rng)
		shared := NewMediumOn(sim.NewEngine(), plan, phys.Default(), sim.NewRNG(7, 1))

		for a := 0; a < len(planPositions()); a++ {
			for b := 0; b < len(planPositions()); b++ {
				if private.Distance(pkt.NodeID(a), pkt.NodeID(b)) != shared.Distance(pkt.NodeID(a), pkt.NodeID(b)) {
					t.Fatalf("sigma %v: distance(%d,%d) differs", sigma, a, b)
				}
			}
			pa := pkt.NodeID(a)
			if !reflect.DeepEqual(private.Neighbors(pa), shared.Neighbors(pa)) {
				t.Fatalf("sigma %v: neighbor list of %d differs", sigma, a)
			}
		}
		if private.Config() != shared.Config() {
			t.Fatalf("sigma %v: configs differ", sigma)
		}
	}
}

func TestSharedPlanRunIsRNGBitIdentical(t *testing.T) {
	// Two mediums — one private build, one on a shared plan — fed the same
	// frame sequence must produce identical counters and shadowing draws.
	cfg := DefaultConfig()
	cfg.ShadowSigmaDB = 6
	plan := NewLinkPlan(cfg, planPositions())

	run := func(m *Medium, eng *sim.Engine) Counters {
		macs := make([]*nullMAC, plan.Stations())
		for i := range macs {
			macs[i] = &nullMAC{}
			m.Attach(pkt.NodeID(i), macs[i])
		}
		for i := 0; i < 50; i++ {
			tx := pkt.NodeID(i % plan.Stations())
			f := &pkt.Frame{
				Kind: pkt.Data, Tx: tx, Rx: pkt.NodeID((i + 1) % plan.Stations()),
				Packets:  []*pkt.Packet{{UID: uint64(i), Bytes: 500}},
				Duration: 100 * sim.Microsecond,
			}
			m.Transmit(f)
			eng.Run(sim.Time(i+1) * 300 * sim.Microsecond)
		}
		eng.Run(sim.Second)
		return m.Counters
	}

	engA := sim.NewEngine()
	a := run(NewMedium(engA, cfg, phys.Default(), planPositions(), sim.NewRNG(3, 1)), engA)
	engB := sim.NewEngine()
	b := run(NewMediumOn(engB, plan, phys.Default(), sim.NewRNG(3, 1)), engB)
	if a != b {
		t.Fatalf("counters differ:\nprivate %+v\nshared  %+v", a, b)
	}
}

// randomCity spreads n stations uniformly over a side×side square with a
// deterministic RNG (layout is a pure function of the arguments).
func randomCity(n int, side float64, seed uint64) []Pos {
	rng := sim.NewRNG(seed, 2)
	positions := make([]Pos, n)
	for i := range positions {
		positions[i] = Pos{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return positions
}

// TestPrunedPlanMatchesBruteForce pits the grid-built sparse plan against a
// brute-force all-pairs reference on a 500-station random world: the kept
// neighbor sets, their power ordering and every stored value must be
// identical — the spatial grid is a candidate filter, never an
// approximation. The accessors must also agree with the dense (unpruned)
// plan on every pair, including pruned ones (computed on demand).
func TestPrunedPlanMatchesBruteForce(t *testing.T) {
	const n, side = 500, 10000.0
	positions := randomCity(n, side, 11)
	for _, sigma := range []float64{3, DefaultPruneSigma} {
		cfg := DefaultConfig()
		cfg.PruneSigma = sigma
		plan := NewLinkPlan(cfg, positions)
		denseCfg := cfg
		denseCfg.PruneSigma = 0
		dense := NewLinkPlan(denseCfg, positions)

		cutoff := cfg.CSThreshDBm - cfg.PruneSigma*cfg.ShadowSigmaDB
		prunedPairs := 0
		for a := 0; a < n; a++ {
			type cand struct {
				id  int32
				dbm float64
			}
			var want []cand
			for b := 0; b < n; b++ {
				if b == a {
					continue
				}
				p := cfg.MeanRxPowerDBm(Dist(positions[a], positions[b]))
				if p < cutoff {
					prunedPairs++
					continue
				}
				want = append(want, cand{int32(b), p})
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].dbm != want[j].dbm {
					return want[i].dbm > want[j].dbm
				}
				return want[i].id < want[j].id
			})
			ids, dbm, _ := plan.row(a)
			if len(ids) != len(want) {
				t.Fatalf("sigma %v: station %d keeps %d neighbors, brute force says %d",
					sigma, a, len(ids), len(want))
			}
			for k := range want {
				if ids[k] != want[k].id || dbm[k] != want[k].dbm {
					t.Fatalf("sigma %v: station %d slot %d = (%d, %g), want (%d, %g)",
						sigma, a, k, ids[k], dbm[k], want[k].id, want[k].dbm)
				}
			}
			asc := plan.AscNeighbors(a)
			if len(asc) != len(want) || !sort.SliceIsSorted(asc, func(i, j int) bool { return asc[i] < asc[j] }) {
				t.Fatalf("sigma %v: AscNeighbors(%d) not the sorted kept set: %v", sigma, a, asc)
			}
			for b := 0; b < n; b++ {
				if plan.MeanDBm(a, b) != dense.MeanDBm(a, b) {
					t.Fatalf("sigma %v: MeanDBm(%d,%d) differs from dense", sigma, a, b)
				}
				if plan.Distance(a, b) != dense.Distance(a, b) {
					t.Fatalf("sigma %v: Distance(%d,%d) differs from dense", sigma, a, b)
				}
			}
		}
		if prunedPairs == 0 {
			t.Fatalf("sigma %v: layout never triggers pruning — the test proves nothing", sigma)
		}
		if plan.Links() != n*(n-1)-prunedPairs {
			t.Fatalf("sigma %v: plan stores %d links, brute force kept %d",
				sigma, plan.Links(), n*(n-1)-prunedPairs)
		}
	}
}

// nullMAC absorbs upcalls.
type nullMAC struct{}

func (*nullMAC) ChannelBusy()                     {}
func (*nullMAC) ChannelIdle()                     {}
func (*nullMAC) FrameReceived(*pkt.Frame, []bool) {}
func (*nullMAC) FrameCorrupted()                  {}
func (*nullMAC) TxDone(*pkt.Frame)                {}
