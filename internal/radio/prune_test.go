package radio

import (
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// pruneDistance returns a distance safely beyond the pruning cutoff of cfg:
// mean power more than PruneSigma×ShadowSigmaDB below the CS threshold.
func pruneDistance(cfg Config) float64 {
	return 1.05 * cfg.rangeFor(cfg.CSThreshDBm-cfg.PruneSigma*cfg.ShadowSigmaDB)
}

func TestMediumLinkCacheDistance(t *testing.T) {
	positions := []Pos{{0, 0}, {120, 0}, {0, 50}}
	_, m, _ := testMedium(t, DefaultConfig(), positions)
	for a := range positions {
		for b := range positions {
			want := Dist(positions[a], positions[b])
			if got := m.Distance(pkt.NodeID(a), pkt.NodeID(b)); got != want {
				t.Fatalf("Distance(%d,%d) = %g, want %g", a, b, got, want)
			}
		}
	}
}

func TestMediumUnprunedNeighborsKeepIDOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PruneSigma = 0
	// Station 2 is closer to 0 than station 1: power order differs from ID
	// order, but with pruning off the list must stay in ID order (that is
	// what preserves the pre-cache RNG stream bit for bit).
	_, m, _ := testMedium(t, cfg, []Pos{{0, 0}, {200, 0}, {50, 0}})
	got := m.Neighbors(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("unpruned neighbors = %v, want [1 2] (ID order)", got)
	}
}

func TestMediumPrunedNeighborsSortedByPower(t *testing.T) {
	cfg := DefaultConfig()
	_, m, _ := testMedium(t, cfg, []Pos{{0, 0}, {200, 0}, {50, 0}})
	got := m.Neighbors(0)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("pruned neighbors = %v, want [2 1] (strongest first)", got)
	}
}

func TestMediumPrunesFarStations(t *testing.T) {
	cfg := DefaultConfig()
	far := pruneDistance(cfg)
	_, m, _ := testMedium(t, cfg, []Pos{{0, 0}, {100, 0}, {far, 0}})
	got := m.Neighbors(0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("neighbors = %v, want [1] (station 2 at %.0fm pruned)", got, far)
	}
	// Pruning is per-pair: stations 1 and 2 are even farther apart, so 2
	// still sees nobody and 1 sees only 0.
	if got := m.Neighbors(2); len(got) != 0 {
		t.Fatalf("far station's neighbors = %v, want none", got)
	}
}

func TestMediumPrunedForwarderCountsAsShadowed(t *testing.T) {
	cfg := DefaultConfig()
	far := pruneDistance(cfg)
	eng, m, macs := testMedium(t, cfg, []Pos{{0, 0}, {100, 0}, {far, 0}})
	f := dataFrame(0, pkt.Broadcast, 50*sim.Microsecond)
	f.FwdList = []pkt.NodeID{2, 1} // the pruned station is a listed forwarder
	m.Transmit(f)
	eng.Run(sim.Second)
	if m.Counters.FramesShadowed == 0 {
		t.Fatal("pruned forwarder-list member must count as a shadowing loss")
	}
	if len(macs[2].rx) != 0 || macs[2].busy != 0 {
		t.Fatal("pruned station must neither sense nor decode")
	}
}

func TestMediumPruningExactWithoutShadowing(t *testing.T) {
	// With ShadowSigmaDB == 0 the pruning predicate equals the runtime CS
	// check, so a pruned medium and an unpruned one deliver identically.
	run := func(prune float64) (Counters, int) {
		cfg := idealConfig()
		cfg.PruneSigma = prune
		eng, m, macs := testMedium(t, cfg, []Pos{{0, 0}, {100, 0}, {600, 0}})
		for i := 0; i < 50; i++ {
			at := sim.Time(i) * 200 * sim.Microsecond
			eng.At(at, func() { m.Transmit(dataFrame(0, 1, 50*sim.Microsecond)) })
		}
		eng.Run(sim.Second)
		return m.Counters, len(macs[1].rx)
	}
	cUnpruned, rxUnpruned := run(0)
	cPruned, rxPruned := run(DefaultPruneSigma)
	if cUnpruned != cPruned || rxUnpruned != rxPruned {
		t.Fatalf("sigma=0 pruning diverged: %+v/%d vs %+v/%d",
			cUnpruned, rxUnpruned, cPruned, rxPruned)
	}
}

func TestMediumPoolingIsDeterministic(t *testing.T) {
	// Two identical runs on one medium config must produce identical
	// counters — the inflight/event pools must not leak state between
	// frames.
	run := func() Counters {
		cfg := DefaultConfig()
		eng, m, _ := testMedium(t, cfg, []Pos{{0, 0}, {150, 0}, {250, 0}})
		for i := 0; i < 200; i++ {
			at := sim.Time(i) * 150 * sim.Microsecond
			eng.At(at, func() {
				f := dataFrame(0, pkt.Broadcast, 100*sim.Microsecond)
				f.FwdList = []pkt.NodeID{2, 1}
				m.Transmit(f)
			})
			// Overlapping counter-traffic exercises the interference path
			// and half-duplex blocking with pooled inflights.
			eng.At(at+30*sim.Microsecond, func() {
				if !m.Transmitting(2) {
					m.Transmit(dataFrame(2, 1, 100*sim.Microsecond))
				}
			})
		}
		eng.Run(sim.Second)
		return m.Counters
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("pooled medium runs diverged: %+v vs %+v", a, b)
	}
}
