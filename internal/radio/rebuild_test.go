package radio

import (
	"slices"
	"testing"

	"ripple/internal/phys"
	"ripple/internal/sim"
)

// plansEqual diffs every CSR array of two plans; any mismatch fails the
// test with the first differing row.
func plansEqual(t *testing.T, want, got *LinkPlan) {
	t.Helper()
	if want.n != got.n || want.pruned != got.pruned || want.pruneCutoff != got.pruneCutoff {
		t.Fatalf("plan headers differ: n %d/%d pruned %v/%v cutoff %g/%g",
			want.n, got.n, want.pruned, got.pruned, want.pruneCutoff, got.pruneCutoff)
	}
	if !slices.Equal(want.positions, got.positions) {
		t.Fatal("positions differ")
	}
	if !slices.Equal(want.off, got.off) {
		t.Fatal("row offsets differ")
	}
	if !slices.Equal(want.nbrID, got.nbrID) {
		t.Fatal("neighbor IDs differ")
	}
	if !slices.Equal(want.nbrDBm, got.nbrDBm) {
		t.Fatal("neighbor powers differ")
	}
	if !slices.Equal(want.nbrDist, got.nbrDist) {
		t.Fatal("neighbor distances differ")
	}
	if !slices.Equal(want.nbrPD, got.nbrPD) {
		t.Fatal("propagation delays differ")
	}
	if !slices.Equal(want.lookID, got.lookID) {
		t.Fatal("lookup IDs differ")
	}
	if !slices.Equal(want.lookSlot, got.lookSlot) {
		t.Fatal("lookup slots differ")
	}
}

// mobileCity builds a pruned scattered layout and a deterministic sequence
// of perturbed position sets, moving a given fraction of stations per
// epoch by up to maxStep metres (plus occasional long hops so rows gain
// and lose whole neighborhoods).
func mobileCity(n int, side float64, seed uint64) (Config, []Pos, func(epoch int, frac float64) []Pos) {
	cfg := DefaultConfig()
	cfg.PruneSigma = 3
	rng := sim.NewRNG(seed, 0)
	initial := make([]Pos, n)
	for i := range initial {
		initial[i] = Pos{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	cur := append([]Pos(nil), initial...)
	step := func(epoch int, frac float64) []Pos {
		next := append([]Pos(nil), cur...)
		for i := range next {
			if rng.Float64() >= frac {
				continue
			}
			if rng.Float64() < 0.2 {
				// Long hop: teleport anywhere, churning whole rows.
				next[i] = Pos{X: rng.Float64() * side, Y: rng.Float64() * side}
			} else {
				next[i].X += (2*rng.Float64() - 1) * 120
				next[i].Y += (2*rng.Float64() - 1) * 120
			}
		}
		cur = next
		return next
	}
	return cfg, initial, step
}

// TestRebuildMatchesFromScratch is the bit-equivalence property of the
// incremental epoch rebuild: across many epochs of random motion, at
// several motion fractions (including ones above the full-rebuild
// fallback threshold), Rebuild must produce exactly the plan a fresh
// NewLinkPlan builds over the same positions.
func TestRebuildMatchesFromScratch(t *testing.T) {
	for _, frac := range []float64{0.02, 0.15, 0.6} {
		cfg, initial, step := mobileCity(400, 2500, 77)
		pl := NewLinkPlan(cfg, initial)
		for epoch := 0; epoch < 8; epoch++ {
			positions := step(epoch, frac)
			pl = pl.Rebuild(positions)
			plansEqual(t, NewLinkPlan(cfg, positions), pl)
		}
	}
}

// TestRebuildNoMotionReturnsSamePlan checks the degenerate epoch: when no
// station moved, Rebuild hands back the identical (immutable) plan.
func TestRebuildNoMotionReturnsSamePlan(t *testing.T) {
	cfg, initial, _ := mobileCity(100, 1000, 5)
	pl := NewLinkPlan(cfg, initial)
	if pl.Rebuild(append([]Pos(nil), initial...)) != pl {
		t.Fatal("Rebuild over identical positions should return the receiver")
	}
}

// TestRebuildUnprunedFallsBack checks dense plans rebuild fully and still
// match from scratch.
func TestRebuildUnprunedFallsBack(t *testing.T) {
	cfg, initial, step := mobileCity(60, 400, 9)
	cfg.PruneSigma = 0
	pl := NewLinkPlan(cfg, initial)
	positions := step(0, 0.1)
	got := pl.Rebuild(positions)
	if got == pl {
		t.Fatal("Rebuild returned the old plan despite motion")
	}
	plansEqual(t, NewLinkPlan(cfg, positions), got)
}

// TestRebuildLeavesOldPlanIntact guards the immutability contract: the
// epoch e plan must stay byte-stable while epoch e+1 is derived from it
// (runs on epoch e are still reading it).
func TestRebuildLeavesOldPlanIntact(t *testing.T) {
	cfg, initial, step := mobileCity(200, 1500, 13)
	pl := NewLinkPlan(cfg, initial)
	snapshot := NewLinkPlan(cfg, initial)
	pl.Rebuild(step(0, 0.1))
	plansEqual(t, snapshot, pl)
}

// TestSetPlanSwapsPositions checks the medium adopts the new plan's
// geometry for subsequent queries.
func TestSetPlanSwapsPositions(t *testing.T) {
	cfg, initial, step := mobileCity(50, 600, 21)
	eng := sim.NewEngine()
	pl := NewLinkPlan(cfg, initial)
	m := NewMediumOn(eng, pl, phys.Default(), sim.NewRNG(1, 1))
	next := pl.Rebuild(step(0, 0.5))
	m.SetPlan(next)
	if m.Plan() != next {
		t.Fatal("Plan() did not swap")
	}
	for i := range initial {
		if m.stations[i].pos != next.positions[i] {
			t.Fatalf("station %d position not updated by SetPlan", i)
		}
	}
	if got, want := m.Distance(0, 1), Dist(next.positions[0], next.positions[1]); got != want {
		t.Fatalf("Distance after swap = %g, want %g", got, want)
	}
}
