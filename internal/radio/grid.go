package radio

// posGrid is a uniform spatial index over station positions: stations are
// bucketed into square cells whose side is the query radius, so every pair
// within that radius of each other lies in the same or an adjacent cell.
// NewLinkPlan uses it to enumerate candidate neighbor pairs in O(N·k)
// instead of probing all N² ordered pairs — the enabling structure for
// city-scale (10k+ station) worlds.
//
// The grid is a pure candidate filter: it may offer pairs slightly beyond
// the radius (anything in the 3×3 cell neighborhood passes the cheap
// squared-distance gate), and the caller applies its exact predicate to
// each candidate. It can therefore never change which pairs a plan keeps,
// only how many pairs are examined.
type posGrid struct {
	minX, minY float64
	inv        float64 // 1 / cell side
	cols, rows int
	// CSR buckets: stations of cell c occupy items[start[c]:start[c+1]],
	// in ascending station-ID order (counting sort preserves input order).
	start []int32
	items []int32
}

// newPosGrid buckets the positions into cells of the given side (metres).
func newPosGrid(positions []Pos, cell float64) *posGrid {
	g := &posGrid{inv: 1 / cell}
	if len(positions) == 0 {
		g.cols, g.rows = 1, 1
		g.start = make([]int32, 2)
		return g
	}
	g.minX, g.minY = positions[0].X, positions[0].Y
	maxX, maxY := g.minX, g.minY
	for _, p := range positions[1:] {
		if p.X < g.minX {
			g.minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < g.minY {
			g.minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	g.cols = int((maxX-g.minX)*g.inv) + 1
	g.rows = int((maxY-g.minY)*g.inv) + 1

	// Counting sort into CSR buckets.
	cells := make([]int32, len(positions))
	g.start = make([]int32, g.cols*g.rows+1)
	for i, p := range positions {
		cells[i] = int32(g.cellOf(p))
		g.start[cells[i]+1]++
	}
	for c := 1; c < len(g.start); c++ {
		g.start[c] += g.start[c-1]
	}
	g.items = make([]int32, len(positions))
	cursor := append([]int32(nil), g.start[:len(g.start)-1]...)
	for i := range positions {
		g.items[cursor[cells[i]]] = int32(i)
		cursor[cells[i]]++
	}
	return g
}

// cellOf maps a position to its cell index (clamped to the grid, so
// boundary rounding can never index out of range).
func (g *posGrid) cellOf(p Pos) int {
	cx := int((p.X - g.minX) * g.inv)
	cy := int((p.Y - g.minY) * g.inv)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// eachCandidate visits every station j ≠ i in the 3×3 cell neighborhood of
// station i whose squared distance to i is at most rsq, passing j's index.
// Visit order is by cell (row-major) and by ascending station ID within a
// cell; callers that need a specific neighbor order sort afterwards.
func (g *posGrid) eachCandidate(i int, positions []Pos, rsq float64, visit func(j int32)) {
	pi := positions[i]
	cx := int((pi.X - g.minX) * g.inv)
	cy := int((pi.Y - g.minY) * g.inv)
	for gy := cy - 1; gy <= cy+1; gy++ {
		if gy < 0 || gy >= g.rows {
			continue
		}
		for gx := cx - 1; gx <= cx+1; gx++ {
			if gx < 0 || gx >= g.cols {
				continue
			}
			c := gy*g.cols + gx
			for _, j := range g.items[g.start[c]:g.start[c+1]] {
				if int(j) == i {
					continue
				}
				dx := pi.X - positions[j].X
				dy := pi.Y - positions[j].Y
				if dx*dx+dy*dy <= rsq {
					visit(j)
				}
			}
		}
	}
}
