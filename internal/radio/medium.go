package radio

import (
	"fmt"
	"math"

	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/rateadapt"
	"ripple/internal/sim"
)

// MAC is the upcall interface the medium drives. Each station registers one.
// Callbacks fire in deterministic event order on the simulation engine.
type MAC interface {
	// ChannelBusy fires when the station's view of the medium transitions
	// idle→busy (external carrier sensed or own transmission started).
	ChannelBusy()
	// ChannelIdle fires on the busy→idle transition.
	ChannelIdle()
	// FrameReceived delivers a successfully decoded frame. pktOK flags
	// which aggregated sub-packets survived the bit-error process (nil for
	// ACK frames). The *Frame is shared between receivers: treat as
	// read-only.
	FrameReceived(f *pkt.Frame, pktOK []bool)
	// FrameCorrupted fires when a decodable frame ended but could not be
	// understood (collision, capture loss, half-duplex overlap or header
	// bit errors). 802.11 stations apply EIFS after this.
	FrameCorrupted()
	// TxDone fires at the station's own transmission end.
	TxDone(f *pkt.Frame)
}

// Counters aggregates medium-level statistics for a run.
type Counters struct {
	FramesSent      uint64 // transmissions started
	FramesDelivered uint64 // successful decodes (per receiver)
	FramesCollided  uint64 // decodable frames lost to overlap/capture
	FramesShadowed  uint64 // frames below decode threshold at a listed receiver
	HeaderErrors    uint64 // decodable frames lost to header bit errors
	HalfDuplexLost  uint64 // decodable frames lost because receiver was transmitting
}

// inflight tracks one frame as seen by one receiver.
type inflight struct {
	frame     *pkt.Frame
	powerDBm  float64
	decodable bool
	blocked   bool // receiver transmitted during the frame
	// interfMW accumulates the linear power (mW) of every frame that
	// overlapped this reception. The frame survives if its own power
	// exceeds the accumulated interference by the capture margin —
	// cumulative SINR, so several individually-capturable interferers
	// can still jointly corrupt a reception (the aggregate hidden-terminal
	// effect of Fig. 6(b)).
	interfMW float64
}

func (i *inflight) corrupted(captureDB float64) bool {
	if i.interfMW <= 0 {
		return false
	}
	return i.powerDBm-10*math.Log10(i.interfMW) < captureDB
}

// station is the per-node PHY state.
type station struct {
	id      pkt.NodeID
	pos     Pos
	mac     MAC
	sensed  int  // external frames currently above CS threshold
	txing   bool // transmitting right now
	current []*inflight
}

func (s *station) busyRefs() int {
	n := s.sensed
	if s.txing {
		n++
	}
	return n
}

// Medium is the shared wireless channel. Create one per simulation run with
// NewMedium; it is not safe for concurrent use (drive it from the Engine).
type Medium struct {
	eng      *sim.Engine
	cfg      Config
	phy      phys.Params
	rng      *sim.RNG
	stations []*station
	Counters Counters
	// Trace, when non-nil, receives low-level medium events ("tx", "rx",
	// "corrupt") with their simulation time, for debugging, tests and the
	// trace.Recorder. node is the receiving station for rx/corrupt events
	// and the transmitter for tx events.
	Trace func(at sim.Time, event string, node pkt.NodeID, f *pkt.Frame)
}

// NewMedium creates a medium over the given station positions. MACs must be
// attached with Attach before the first transmission.
func NewMedium(eng *sim.Engine, cfg Config, p phys.Params, positions []Pos, rng *sim.RNG) *Medium {
	m := &Medium{eng: eng, cfg: cfg, phy: p, rng: rng}
	m.stations = make([]*station, len(positions))
	for i, pos := range positions {
		m.stations[i] = &station{id: pkt.NodeID(i), pos: pos}
	}
	return m
}

// Attach registers the MAC upcall handler for a station.
func (m *Medium) Attach(id pkt.NodeID, mac MAC) { m.stations[id].mac = mac }

// NumStations returns the number of stations on the medium.
func (m *Medium) NumStations() int { return len(m.stations) }

// CarrierBusy reports whether station id currently senses the medium busy
// (including its own transmission).
func (m *Medium) CarrierBusy(id pkt.NodeID) bool {
	return m.stations[id].busyRefs() > 0
}

// Transmitting reports whether station id is currently transmitting.
func (m *Medium) Transmitting(id pkt.NodeID) bool { return m.stations[id].txing }

// Distance returns the distance in metres between two stations.
func (m *Medium) Distance(a, b pkt.NodeID) float64 {
	return Dist(m.stations[a].pos, m.stations[b].pos)
}

// Config returns the radio configuration the medium was built with.
func (m *Medium) Config() Config { return m.cfg }

// Transmit emits a frame from f.Tx. f.Duration must be set. The call
// returns the transmission end time. Transmitting while already
// transmitting is a MAC bug and panics: it would silently corrupt the
// simulation's accounting.
func (m *Medium) Transmit(f *pkt.Frame) sim.Time {
	src := m.stations[f.Tx]
	if src.mac == nil {
		panic(fmt.Sprintf("radio: station %d has no MAC attached", f.Tx))
	}
	if src.txing {
		panic(fmt.Sprintf("radio: station %d transmit while transmitting", f.Tx))
	}
	if f.Duration <= 0 {
		panic("radio: frame duration not set")
	}
	m.Counters.FramesSent++
	if m.Trace != nil {
		m.Trace(m.eng.Now(), "tx", f.Tx, f)
	}
	now := m.eng.Now()
	end := now + f.Duration

	src.txing = true
	if src.busyRefs() == 1 {
		src.mac.ChannelBusy()
	}
	// A station cannot decode anything while transmitting: mark every
	// in-progress reception at the transmitter as blocked.
	for _, inf := range src.current {
		if inf.decodable && !inf.blocked {
			inf.blocked = true
		}
	}
	m.eng.At(end, func() {
		src.txing = false
		if src.busyRefs() == 0 {
			src.mac.ChannelIdle()
		}
		src.mac.TxDone(f)
	})

	for _, dst := range m.stations {
		if dst.id == f.Tx || dst.mac == nil {
			continue
		}
		d := Dist(src.pos, dst.pos)
		power := m.cfg.MeanRxPowerDBm(d)
		if m.cfg.ShadowSigmaDB > 0 {
			power = m.rng.Norm(power, m.cfg.ShadowSigmaDB)
		}
		if power < m.cfg.CSThreshDBm {
			// Too weak even to sense: invisible at this receiver. If the
			// receiver was in the forwarder list, record the shadowing loss.
			if f.RankOf(dst.id) >= 0 || f.Rx == dst.id {
				m.Counters.FramesShadowed++
			}
			continue
		}
		rxThresh := m.cfg.RXThreshDBm
		if f.RateBps > 0 {
			// Multi-rate extension: faster rates need more SNR.
			rxThresh += rateadapt.ThresholdDeltaDB(f.RateBps, m.phy.DataBps)
		}
		inf := &inflight{frame: f, powerDBm: power, decodable: power >= rxThresh}
		if !inf.decodable && (f.RankOf(dst.id) >= 0 || f.Rx == dst.id) {
			m.Counters.FramesShadowed++
		}
		delay := propDelay(d)
		dstCopy := dst
		m.eng.At(now+delay, func() { m.beginReception(dstCopy, inf) })
		m.eng.At(end+delay, func() { m.endReception(dstCopy, inf) })
	}
	return end
}

func (m *Medium) beginReception(dst *station, inf *inflight) {
	// Interference accumulates both ways: every overlapping frame adds its
	// linear power to the other's interference budget.
	for _, other := range dst.current {
		other.interfMW += dbmToMW(inf.powerDBm)
		inf.interfMW += dbmToMW(other.powerDBm)
	}
	if dst.txing {
		inf.blocked = true
	}
	dst.current = append(dst.current, inf)
	dst.sensed++
	if dst.busyRefs() == 1 {
		dst.mac.ChannelBusy()
	}
}

// dbmToMW converts dBm to linear milliwatts.
func dbmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

func (m *Medium) endReception(dst *station, inf *inflight) {
	// Remove from the active set.
	for i, other := range dst.current {
		if other == inf {
			dst.current = append(dst.current[:i], dst.current[i+1:]...)
			break
		}
	}
	dst.sensed--
	defer func() {
		if dst.busyRefs() == 0 {
			dst.mac.ChannelIdle()
		}
	}()

	if !inf.decodable {
		return // pure carrier: sensed energy only, no decode attempt
	}
	f := inf.frame
	switch {
	case inf.blocked:
		m.Counters.HalfDuplexLost++
		if m.Trace != nil {
			m.Trace(m.eng.Now(), "corrupt", dst.id, f)
		}
		dst.mac.FrameCorrupted()
		return
	case inf.corrupted(m.cfg.CaptureDB):
		m.Counters.FramesCollided++
		if m.Trace != nil {
			m.Trace(m.eng.Now(), "corrupt", dst.id, f)
		}
		dst.mac.FrameCorrupted()
		return
	}

	// Bit-error process: the frame header (MAC header + forwarder list, or
	// the whole control frame for ACKs) must survive, then each aggregated
	// sub-packet survives independently.
	ber := m.cfg.BitErrorRate
	var headerBytes int
	switch f.Kind {
	case pkt.Ack:
		headerBytes = phys.ACKFrameBytes + phys.BitmapACKBytes
	case pkt.Rts:
		headerBytes = phys.RTSFrameBytes
	case pkt.Cts:
		headerBytes = phys.CTSFrameBytes
	default:
		headerBytes = phys.MACHeaderBytes + len(f.FwdList)*phys.ForwarderEntryBytes
	}
	if !m.bitsSurvive(headerBytes*8, ber) {
		m.Counters.HeaderErrors++
		dst.mac.FrameCorrupted()
		return
	}
	var pktOK []bool
	if f.Kind == pkt.Data {
		pktOK = make([]bool, len(f.Packets))
		anyOK := false
		for i, p := range f.Packets {
			bits := (p.Bytes + phys.PerPacketCRCBytes) * 8
			pktOK[i] = m.bitsSurvive(bits, ber)
			anyOK = anyOK || pktOK[i]
		}
		if !anyOK && len(f.Packets) > 0 {
			// Every sub-packet corrupted: indistinguishable from a bad
			// frame at the receiver, but the header was readable so the
			// MAC still learns about it (can send an all-zero bitmap).
			_ = anyOK
		}
	}
	m.Counters.FramesDelivered++
	if m.Trace != nil {
		m.Trace(m.eng.Now(), "rx", dst.id, f)
	}
	dst.mac.FrameReceived(f, pktOK)
}

// bitsSurvive draws whether `bits` consecutive bits all survive BER `ber`.
func (m *Medium) bitsSurvive(bits int, ber float64) bool {
	if ber <= 0 {
		return true
	}
	pOK := math.Pow(1-ber, float64(bits))
	return m.rng.Float64() < pOK
}
