package radio

import (
	"fmt"
	"math"

	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/rateadapt"
	"ripple/internal/sim"
)

// MAC is the upcall interface the medium drives. Each station registers one.
// Callbacks fire in deterministic event order on the simulation engine.
type MAC interface {
	// ChannelBusy fires when the station's view of the medium transitions
	// idle→busy (external carrier sensed or own transmission started).
	ChannelBusy()
	// ChannelIdle fires on the busy→idle transition.
	ChannelIdle()
	// FrameReceived delivers a successfully decoded frame. pktOK flags
	// which aggregated sub-packets survived the bit-error process (nil for
	// ACK frames). The *Frame is shared between receivers: treat as
	// read-only. pktOK is a scratch buffer valid only for the duration of
	// the call — copy what outlives it.
	FrameReceived(f *pkt.Frame, pktOK []bool)
	// FrameCorrupted fires when a decodable frame ended but could not be
	// understood (collision, capture loss, half-duplex overlap or header
	// bit errors). 802.11 stations apply EIFS after this.
	FrameCorrupted()
	// TxDone fires at the station's own transmission end.
	TxDone(f *pkt.Frame)
}

// Counters aggregates medium-level statistics for a run.
type Counters struct {
	FramesSent      uint64 // transmissions started
	FramesDelivered uint64 // successful decodes (per receiver)
	FramesCollided  uint64 // decodable frames lost to overlap/capture
	FramesShadowed  uint64 // frames below decode threshold at a listed receiver
	HeaderErrors    uint64 // decodable frames lost to header bit errors
	HalfDuplexLost  uint64 // decodable frames lost because receiver was transmitting
}

// inflight tracks one frame as seen by one receiver. Inflights are pooled
// per medium (see Medium.newInflight): the embedded begin/end actions are
// wired to the struct once at allocation, so scheduling a reception costs
// no heap allocations after warm-up.
type inflight struct {
	m        *Medium
	dst      *station
	frame    *pkt.Frame
	powerDBm float64
	// powerMW is the same received power in linear milliwatts, converted
	// once at transmit time so the O(overlap²) interference loop in
	// beginReception never calls math.Pow.
	powerMW   float64
	decodable bool
	blocked   bool // receiver transmitted during the frame
	// interfMW accumulates the linear power (mW) of every frame that
	// overlapped this reception. The frame survives if its own power
	// exceeds the accumulated interference by the capture margin —
	// cumulative SINR, so several individually-capturable interferers
	// can still jointly corrupt a reception (the aggregate hidden-terminal
	// effect of Fig. 6(b)).
	interfMW float64

	begin beginReception
	end   endReception
}

// beginReception and endReception are the inflight's two scheduled phases,
// embedded so &inf.begin / &inf.end convert to sim.Action without
// allocating.
type beginReception struct{ inf *inflight }

func (a *beginReception) Run() { a.inf.m.beginReception(a.inf.dst, a.inf) }

type endReception struct{ inf *inflight }

func (a *endReception) Run() { a.inf.m.endReception(a.inf.dst, a.inf) }

func (i *inflight) corrupted(captureDB float64) bool {
	if i.interfMW <= 0 {
		return false
	}
	return i.powerDBm-10*math.Log10(i.interfMW) < captureDB
}

// txDone is the pooled end-of-own-transmission event.
type txDone struct {
	m     *Medium
	src   *station
	frame *pkt.Frame
}

func (a *txDone) Run() {
	src, f, m := a.src, a.frame, a.m
	m.recycleTxDone(a)
	src.txing = false
	if src.busyRefs() == 0 {
		src.mac.ChannelIdle()
	}
	src.mac.TxDone(f)
	f.AirDone()
}

// station is the per-node PHY state.
type station struct {
	id      pkt.NodeID
	pos     Pos
	mac     MAC
	sensed  int  // external frames currently above CS threshold
	txing   bool // transmitting right now
	current []*inflight
}

func (s *station) busyRefs() int {
	n := s.sensed
	if s.txing {
		n++
	}
	return n
}

// Medium is the shared wireless channel. Create one per simulation run with
// NewMedium; it is not safe for concurrent use (drive it from the Engine).
type Medium struct {
	eng      *sim.Engine
	cfg      Config
	phy      phys.Params
	rng      *sim.RNG
	stations []*station
	Counters Counters

	// plan is the immutable link precomputation (per-neighbor link
	// attributes in CSR layout): Transmit performs no math.Hypot/math.Log10
	// per frame. The plan may be shared read-only with other Mediums running
	// concurrently (see LinkPlan); everything this Medium mutates lives on
	// the Medium itself.
	plan *LinkPlan
	n    int

	// freeInf recycles inflight structs; pOKByBits memoizes the
	// bitsSurvive survival probability per distinct bit length (the BER is
	// fixed for the run); pktOKBuf is the per-reception sub-packet CRC
	// scratch handed to MAC.FrameReceived (valid only during the upcall).
	freeInf   []*inflight
	freeTx    []*txDone
	pOKByBits map[int]float64
	pktOKBuf  []bool

	// Trace, when non-nil, receives low-level medium events ("tx", "rx",
	// "corrupt") with their simulation time, for debugging, tests and the
	// trace.Recorder. node is the receiving station for rx/corrupt events
	// and the transmitter for tx events.
	Trace func(at sim.Time, event string, node pkt.NodeID, f *pkt.Frame)

	// Fault-injection state, all inert by default: down stations receive
	// no frames (and transmitting while down is a scheme bug), noiseDB is
	// a per-receiver SNR penalty, and linkBlocked (when non-nil) vetoes
	// individual transmitter→receiver deliveries. Without faults the hot
	// path pays one nil check per hook, and the RNG draw sequence is
	// untouched — bit-identical to a medium predating the hooks.
	down        []bool
	noiseDB     []float64
	linkBlocked func(tx, rx pkt.NodeID) bool
}

// NewMedium creates a medium over the given station positions, building a
// private LinkPlan. MACs must be attached with Attach before the first
// transmission.
func NewMedium(eng *sim.Engine, cfg Config, p phys.Params, positions []Pos, rng *sim.RNG) *Medium {
	return NewMediumOn(eng, NewLinkPlan(cfg, positions), p, rng)
}

// NewMediumOn creates a medium over a prebuilt — possibly shared — link
// plan, skipping the O(N²) precomputation. The plan is read-only to the
// medium; per-run mutable state (station PHY state, counters, RNG, pools)
// is private, so any number of mediums can run concurrently on one plan.
// A medium on a shared plan is RNG-bit-identical to one built by NewMedium
// from the same Config and positions.
func NewMediumOn(eng *sim.Engine, plan *LinkPlan, p phys.Params, rng *sim.RNG) *Medium {
	m := &Medium{eng: eng, cfg: plan.cfg, phy: p, rng: rng, plan: plan, n: plan.n}
	m.stations = make([]*station, plan.n)
	for i, pos := range plan.positions {
		m.stations[i] = &station{id: pkt.NodeID(i), pos: pos}
	}
	m.pOKByBits = make(map[int]float64)
	return m
}

// newInflight pops a recycled inflight or allocates one with its begin/end
// actions wired. The caller must set every reception field.
func (m *Medium) newInflight() *inflight {
	if n := len(m.freeInf); n > 0 {
		inf := m.freeInf[n-1]
		m.freeInf[n-1] = nil
		m.freeInf = m.freeInf[:n-1]
		return inf
	}
	inf := &inflight{m: m}
	inf.begin.inf = inf
	inf.end.inf = inf
	return inf
}

func (m *Medium) recycleInflight(inf *inflight) {
	inf.frame = nil
	inf.dst = nil
	m.freeInf = append(m.freeInf, inf)
}

func (m *Medium) newTxDone(src *station, f *pkt.Frame) *txDone {
	if n := len(m.freeTx); n > 0 {
		t := m.freeTx[n-1]
		m.freeTx[n-1] = nil
		m.freeTx = m.freeTx[:n-1]
		t.src, t.frame = src, f
		return t
	}
	return &txDone{m: m, src: src, frame: f}
}

func (m *Medium) recycleTxDone(t *txDone) {
	t.src = nil
	t.frame = nil
	m.freeTx = append(m.freeTx, t)
}

// Attach registers the MAC upcall handler for a station.
func (m *Medium) Attach(id pkt.NodeID, mac MAC) { m.stations[id].mac = mac }

// NumStations returns the number of stations on the medium.
func (m *Medium) NumStations() int { return len(m.stations) }

// CarrierBusy reports whether station id currently senses the medium busy
// (including its own transmission).
func (m *Medium) CarrierBusy(id pkt.NodeID) bool {
	return m.stations[id].busyRefs() > 0
}

// Transmitting reports whether station id is currently transmitting.
func (m *Medium) Transmitting(id pkt.NodeID) bool { return m.stations[id].txing }

// Distance returns the distance in metres between two stations.
func (m *Medium) Distance(a, b pkt.NodeID) float64 {
	return m.plan.Distance(int(a), int(b))
}

// Neighbors returns the station's audible-candidate list (tests and
// diagnostics). With pruning off it is every other station in ID order.
func (m *Medium) Neighbors(id pkt.NodeID) []pkt.NodeID {
	ids, _, _ := m.plan.row(int(id))
	out := make([]pkt.NodeID, len(ids))
	for i, j := range ids {
		out[i] = pkt.NodeID(j)
	}
	return out
}

// Plan returns the link plan the medium runs on.
func (m *Medium) Plan() *LinkPlan { return m.plan }

// SetPlan swaps the link plan the medium runs on — the epoch boundary of
// a time-varying world. The new plan must cover the same station count
// and radio configuration (LinkPlan.Rebuild guarantees both). Receptions
// already in flight finish with the powers and delays computed when they
// were transmitted — a swap mid-frame models positions changing after
// the wavefront left the antenna — while every later transmission reads
// the new plan. Call it only from inside the engine's event loop; like
// every other Medium method it is not synchronised.
func (m *Medium) SetPlan(plan *LinkPlan) {
	if plan.n != m.n {
		panic("radio: SetPlan with a different station count")
	}
	m.plan = plan
	for i, s := range m.stations {
		s.pos = plan.positions[i]
	}
}

// Config returns the radio configuration the medium was built with.
func (m *Medium) Config() Config { return m.cfg }

// SetDown marks a station crashed or recovered. A down station is
// skipped as a receiver of every later transmission (no carrier, no
// decode — it is off the air, not shadowed) and must not transmit; its
// in-flight receptions at the moment of the crash still run to their
// scheduled end so pool accounting stays balanced, they are simply
// ignored by the crashed scheme.
func (m *Medium) SetDown(id pkt.NodeID, down bool) {
	if m.down == nil {
		m.down = make([]bool, m.n)
	}
	m.down[id] = down
}

// Down reports whether a station is currently marked crashed.
func (m *Medium) Down(id pkt.NodeID) bool { return m.down != nil && m.down[id] }

// SetNoiseDB sets the cumulative SNR penalty in dB applied to every
// subsequent reception at the station (0 restores the clean channel).
// The penalty shifts the mean received power before the shadowing draw,
// so the RNG consumption per transmission is unchanged.
func (m *Medium) SetNoiseDB(id pkt.NodeID, db float64) {
	if m.noiseDB == nil {
		m.noiseDB = make([]float64, m.n)
	}
	m.noiseDB[id] = db
}

// SetLinkBlocked installs a per-delivery veto: a transmission from tx is
// not scheduled at rx while the hook returns true (link flaps and
// partitions). The hook runs inside Transmit for every candidate
// receiver, so it must be cheap and must depend only on engine time.
func (m *Medium) SetLinkBlocked(fn func(tx, rx pkt.NodeID) bool) { m.linkBlocked = fn }

// intended reports whether dst is an addressed receiver of f — a
// forwarder-list member or the unicast receiver — for shadowing-loss
// accounting.
func intended(f *pkt.Frame, dst pkt.NodeID) bool {
	return f.RankOf(dst) >= 0 || f.Rx == dst
}

// Transmit emits a frame from f.Tx. f.Duration must be set. The call
// returns the transmission end time. Transmitting while already
// transmitting is a MAC bug and panics: it would silently corrupt the
// simulation's accounting.
func (m *Medium) Transmit(f *pkt.Frame) sim.Time {
	src := m.stations[f.Tx]
	if src.mac == nil {
		panic(fmt.Sprintf("radio: station %d has no MAC attached", f.Tx))
	}
	if src.txing {
		panic(fmt.Sprintf("radio: station %d transmit while transmitting", f.Tx))
	}
	if m.down != nil && m.down[f.Tx] {
		panic(fmt.Sprintf("radio: crashed station %d transmitting", f.Tx))
	}
	if f.Duration <= 0 {
		panic("radio: frame duration not set")
	}
	m.Counters.FramesSent++
	if m.Trace != nil {
		m.Trace(m.eng.Now(), "tx", f.Tx, f)
	}
	now := m.eng.Now()
	end := now + f.Duration

	src.txing = true
	if src.busyRefs() == 1 {
		src.mac.ChannelBusy()
	}
	// A station cannot decode anything while transmitting: mark every
	// in-progress reception at the transmitter as blocked.
	for _, inf := range src.current {
		if inf.decodable && !inf.blocked {
			inf.blocked = true
		}
	}
	m.eng.Do(end, m.newTxDone(src, f))

	plan := m.plan
	sigma := m.cfg.ShadowSigmaDB
	rxThresh := m.cfg.RXThreshDBm
	if f.RateBps > 0 {
		// Multi-rate extension: faster rates need more SNR.
		rxThresh += rateadapt.ThresholdDeltaDB(f.RateBps, m.phy.DataBps)
	}
	receivers := 0
	nbrIDs, nbrDBm, nbrPD := plan.row(int(f.Tx))
	for k, j := range nbrIDs {
		dst := m.stations[j]
		if dst.mac == nil {
			continue
		}
		if m.down != nil && m.down[j] {
			continue // crashed receiver: off the air entirely
		}
		if m.linkBlocked != nil && m.linkBlocked(f.Tx, dst.id) {
			continue // flapped or partitioned link
		}
		power := nbrDBm[k]
		if m.noiseDB != nil {
			power -= m.noiseDB[j]
		}
		if sigma > 0 {
			power = m.rng.Norm(power, sigma)
		}
		if power < m.cfg.CSThreshDBm {
			// Too weak even to sense: invisible at this receiver. If the
			// receiver was in the forwarder list, record the shadowing loss.
			if intended(f, dst.id) {
				m.Counters.FramesShadowed++
			}
			continue
		}
		inf := m.newInflight()
		inf.frame = f
		inf.dst = dst
		inf.powerDBm = power
		inf.powerMW = dbmToMW(power)
		inf.decodable = power >= rxThresh
		inf.blocked = false
		inf.interfMW = 0
		if !inf.decodable && intended(f, dst.id) {
			m.Counters.FramesShadowed++
		}
		delay := nbrPD[k]
		m.eng.Do(now+delay, &inf.begin)
		m.eng.Do(end+delay, &inf.end)
		receivers++
	}
	// Hold the frame's packets for its airtime: the tx-done event plus one
	// reception end per scheduled receiver each retire one completion, and
	// the last retires the hold. This keeps pooled packets alive for late
	// duplicate deliveries even after the source has abandoned them.
	f.BeginAir(receivers + 1)
	if plan.pruned {
		// Pruned stations never drew a shadowing sample, but an addressed
		// receiver that was pruned is still a shadowing loss — keep the
		// counter semantics of the unpruned medium. A pair is pruned
		// exactly when it is absent from the plan (slot < 0).
		for _, id := range f.FwdList {
			if id != f.Tx && plan.slot(int(f.Tx), int(id)) < 0 && m.stations[id].mac != nil {
				m.Counters.FramesShadowed++
			}
		}
		if rx := f.Rx; rx >= 0 && rx != f.Tx && f.RankOf(rx) < 0 &&
			plan.slot(int(f.Tx), int(rx)) < 0 && m.stations[rx].mac != nil {
			m.Counters.FramesShadowed++
		}
	}
	return end
}

func (m *Medium) beginReception(dst *station, inf *inflight) {
	// Interference accumulates both ways: every overlapping frame adds its
	// linear power to the other's interference budget.
	for _, other := range dst.current {
		other.interfMW += inf.powerMW
		inf.interfMW += other.powerMW
	}
	if dst.txing {
		inf.blocked = true
	}
	dst.current = append(dst.current, inf)
	dst.sensed++
	if dst.busyRefs() == 1 {
		dst.mac.ChannelBusy()
	}
}

// dbmToMW converts dBm to linear milliwatts. (Exp(x·ln10/10) would be
// ~2× cheaper but differs from Pow in the last ulp, and the capture
// comparisons must stay bit-identical across refactors.)
func dbmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

func (m *Medium) endReception(dst *station, inf *inflight) {
	// Remove from the active set.
	for i, other := range dst.current {
		if other == inf {
			dst.current = append(dst.current[:i], dst.current[i+1:]...)
			break
		}
	}
	dst.sensed--
	defer func() {
		if dst.busyRefs() == 0 {
			dst.mac.ChannelIdle()
		}
	}()
	defer inf.frame.AirDone()
	defer m.recycleInflight(inf)

	if !inf.decodable {
		return // pure carrier: sensed energy only, no decode attempt
	}
	f := inf.frame
	switch {
	case inf.blocked:
		m.Counters.HalfDuplexLost++
		if m.Trace != nil {
			m.Trace(m.eng.Now(), "corrupt", dst.id, f)
		}
		dst.mac.FrameCorrupted()
		return
	case inf.corrupted(m.cfg.CaptureDB):
		m.Counters.FramesCollided++
		if m.Trace != nil {
			m.Trace(m.eng.Now(), "corrupt", dst.id, f)
		}
		dst.mac.FrameCorrupted()
		return
	}

	// Bit-error process: the frame header (MAC header + forwarder list, or
	// the whole control frame for ACKs) must survive, then each aggregated
	// sub-packet survives independently. A data frame whose sub-packets
	// all died still reaches the MAC with an all-false bitmap: the header
	// was readable, so the receiver can acknowledge with an all-zero
	// bitmap.
	ber := m.cfg.BitErrorRate
	var headerBytes int
	switch f.Kind {
	case pkt.Ack:
		headerBytes = phys.ACKFrameBytes + phys.BitmapACKBytes
	case pkt.Rts:
		headerBytes = phys.RTSFrameBytes
	case pkt.Cts:
		headerBytes = phys.CTSFrameBytes
	default:
		headerBytes = phys.MACHeaderBytes + len(f.FwdList)*phys.ForwarderEntryBytes
	}
	if !m.bitsSurvive(headerBytes*8, ber) {
		m.Counters.HeaderErrors++
		dst.mac.FrameCorrupted()
		return
	}
	var pktOK []bool
	if f.Kind == pkt.Data {
		// The scratch buffer is reused across receptions: FrameReceived
		// implementations must not retain it (see the MAC contract).
		if cap(m.pktOKBuf) < len(f.Packets) {
			m.pktOKBuf = make([]bool, len(f.Packets))
		}
		pktOK = m.pktOKBuf[:len(f.Packets)]
		for i, p := range f.Packets {
			bits := (p.Bytes + phys.PerPacketCRCBytes) * 8
			pktOK[i] = m.bitsSurvive(bits, ber)
		}
	}
	m.Counters.FramesDelivered++
	if m.Trace != nil {
		m.Trace(m.eng.Now(), "rx", dst.id, f)
	}
	dst.mac.FrameReceived(f, pktOK)
}

// bitsSurvive draws whether `bits` consecutive bits all survive BER `ber`.
// The survival probability is memoized per bit length: the BER is fixed
// for the medium's lifetime and packet sizes repeat, so each distinct
// length costs math.Pow exactly once.
func (m *Medium) bitsSurvive(bits int, ber float64) bool {
	if ber <= 0 {
		return true
	}
	pOK, ok := m.pOKByBits[bits]
	if !ok {
		pOK = math.Pow(1-ber, float64(bits))
		m.pOKByBits[bits] = pOK
	}
	return m.rng.Float64() < pOK
}
