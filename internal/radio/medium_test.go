package radio

import (
	"testing"

	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// recorderMAC captures upcalls for assertions.
type recorderMAC struct {
	busy, idle, corrupt int
	rx                  []*pkt.Frame
	rxOK                [][]bool
	txDone              int
}

func (m *recorderMAC) ChannelBusy()      { m.busy++ }
func (m *recorderMAC) ChannelIdle()      { m.idle++ }
func (m *recorderMAC) FrameCorrupted()   { m.corrupt++ }
func (m *recorderMAC) TxDone(*pkt.Frame) { m.txDone++ }
func (m *recorderMAC) FrameReceived(f *pkt.Frame, ok []bool) {
	m.rx = append(m.rx, f)
	m.rxOK = append(m.rxOK, ok)
}

// idealConfig has no shadowing and no bit errors so geometry alone decides.
func idealConfig() Config {
	c := DefaultConfig()
	c.ShadowSigmaDB = 0
	c.BitErrorRate = 0
	return c
}

func testMedium(t *testing.T, cfg Config, positions []Pos) (*sim.Engine, *Medium, []*recorderMAC) {
	t.Helper()
	eng := sim.NewEngine()
	m := NewMedium(eng, cfg, phys.Default(), positions, sim.NewRNG(1, 1))
	macs := make([]*recorderMAC, len(positions))
	for i := range positions {
		macs[i] = &recorderMAC{}
		m.Attach(pkt.NodeID(i), macs[i])
	}
	return eng, m, macs
}

func dataFrame(tx, rx pkt.NodeID, dur sim.Time) *pkt.Frame {
	return &pkt.Frame{
		Kind: pkt.Data, Tx: tx, Rx: rx, Origin: tx, FinalDst: rx,
		Packets:  []*pkt.Packet{{UID: 1, Bytes: 1000, Src: tx, Dst: rx}},
		Duration: dur,
	}
}

func TestMediumDeliversWithinRange(t *testing.T) {
	eng, m, macs := testMedium(t, idealConfig(), []Pos{{0, 0}, {100, 0}})
	m.Transmit(dataFrame(0, 1, 100*sim.Microsecond))
	eng.Run(sim.Second)
	if len(macs[1].rx) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(macs[1].rx))
	}
	if !macs[1].rxOK[0][0] {
		t.Fatal("sub-packet should be intact with zero BER")
	}
	if macs[0].txDone != 1 {
		t.Fatal("transmitter must get TxDone")
	}
}

func TestMediumDropsBeyondDecodeRange(t *testing.T) {
	eng, m, macs := testMedium(t, idealConfig(), []Pos{{0, 0}, {300, 0}})
	m.Transmit(dataFrame(0, 1, 100*sim.Microsecond))
	eng.Run(sim.Second)
	if len(macs[1].rx) != 0 {
		t.Fatal("300m exceeds the 258m decode range with zero shadowing")
	}
	// 300 m is inside carrier-sense range (≈470 m): sensed but not decoded.
	if macs[1].busy != 1 || macs[1].idle != 1 {
		t.Fatalf("busy/idle = %d/%d, want 1/1 (carrier only)", macs[1].busy, macs[1].idle)
	}
}

func TestMediumInvisibleBeyondCSRange(t *testing.T) {
	eng, m, macs := testMedium(t, idealConfig(), []Pos{{0, 0}, {600, 0}})
	m.Transmit(dataFrame(0, 1, 100*sim.Microsecond))
	eng.Run(sim.Second)
	if macs[1].busy != 0 {
		t.Fatal("600m exceeds carrier-sense range: no busy signal expected")
	}
}

func TestMediumCarrierCallbacksAtTransmitter(t *testing.T) {
	eng, m, macs := testMedium(t, idealConfig(), []Pos{{0, 0}, {100, 0}})
	m.Transmit(dataFrame(0, 1, 50*sim.Microsecond))
	if macs[0].busy != 1 {
		t.Fatal("transmitter must see ChannelBusy at tx start")
	}
	eng.Run(sim.Second)
	if macs[0].idle != 1 {
		t.Fatal("transmitter must see ChannelIdle at tx end")
	}
}

func TestMediumCollisionCorruptsBoth(t *testing.T) {
	// Two transmitters equidistant from the receiver: equal power,
	// within the 10 dB capture margin → both frames corrupted.
	eng, m, macs := testMedium(t, idealConfig(), []Pos{{0, 0}, {100, 0}, {200, 0}})
	m.Transmit(dataFrame(0, 1, 100*sim.Microsecond))
	m.Transmit(dataFrame(2, 1, 100*sim.Microsecond))
	eng.Run(sim.Second)
	if len(macs[1].rx) != 0 {
		t.Fatalf("receiver decoded %d frames during collision, want 0", len(macs[1].rx))
	}
	if macs[1].corrupt == 0 {
		t.Fatal("receiver should report corrupted frames (EIFS trigger)")
	}
	if m.Counters.FramesCollided == 0 {
		t.Fatal("collision counter not incremented")
	}
}

func TestMediumCaptureStrongerFrameSurvives(t *testing.T) {
	// Interferer 4× farther → 50·log10(4) ≈ 30 dB weaker: capture.
	eng, m, macs := testMedium(t, idealConfig(), []Pos{{0, 0}, {50, 0}, {250, 0}})
	m.Transmit(dataFrame(0, 1, 100*sim.Microsecond))
	m.Transmit(dataFrame(2, 1, 100*sim.Microsecond))
	eng.Run(sim.Second)
	if len(macs[1].rx) != 1 {
		t.Fatalf("receiver decoded %d frames, want 1 (capture)", len(macs[1].rx))
	}
	if macs[1].rx[0].Tx != 0 {
		t.Fatal("the stronger (closer) frame should survive")
	}
}

func TestMediumHalfDuplex(t *testing.T) {
	// Node 1 transmits while node 0's frame is arriving: node 1 cannot
	// decode it.
	eng, m, macs := testMedium(t, idealConfig(), []Pos{{0, 0}, {100, 0}, {200, 100}})
	m.Transmit(dataFrame(0, 1, 100*sim.Microsecond))
	eng.At(10*sim.Microsecond, func() {
		m.Transmit(dataFrame(1, 2, 20*sim.Microsecond))
	})
	eng.Run(sim.Second)
	for _, f := range macs[1].rx {
		if f.Tx == 0 {
			t.Fatal("half-duplex: node 1 decoded a frame while transmitting")
		}
	}
	if m.Counters.HalfDuplexLost == 0 {
		t.Fatal("half-duplex loss not counted")
	}
}

func TestMediumBERCorruptsSubPackets(t *testing.T) {
	cfg := idealConfig()
	cfg.BitErrorRate = 1e-3 // 1000B packet: P(ok) ≈ e^-8 ≈ 0.03%
	eng, m, macs := testMedium(t, cfg, []Pos{{0, 0}, {100, 0}})
	f := dataFrame(0, 1, 100*sim.Microsecond)
	m.Transmit(f)
	eng.Run(sim.Second)
	// Either the header died (corrupt) or the sub-packet flag is false.
	if len(macs[1].rx) == 1 && macs[1].rxOK[0][0] {
		t.Fatal("1e-3 BER should corrupt a 1000-byte packet essentially always")
	}
}

func TestMediumShadowingIndependencePerReceiver(t *testing.T) {
	// With shadowing on and two receivers at the half-loss range, loss
	// outcomes must differ between receivers across repeated frames.
	cfg := DefaultConfig()
	cfg.BitErrorRate = 0
	positions := []Pos{{0, 0}, {DefaultRange, 0}, {DefaultRange, 10}}
	eng, m, macs := testMedium(t, cfg, positions)
	const frames = 400
	for i := 0; i < frames; i++ {
		at := sim.Time(i) * 200 * sim.Microsecond
		eng.At(at, func() {
			f := dataFrame(0, 1, 50*sim.Microsecond)
			f.FwdList = []pkt.NodeID{1, 2}
			f.Rx = pkt.Broadcast
			m.Transmit(f)
		})
	}
	eng.Run(sim.Second)
	got1, got2 := len(macs[1].rx), len(macs[2].rx)
	if got1 < frames/5 || got1 > frames*4/5 {
		t.Fatalf("receiver 1 decoded %d/%d at half-loss range, want ≈half", got1, frames)
	}
	if got1 == got2 {
		t.Log("receivers decoded identical counts; acceptable but unusual")
	}
	// Independence: both receivers got a nontrivial share.
	if got2 < frames/5 || got2 > frames*4/5 {
		t.Fatalf("receiver 2 decoded %d/%d, want ≈half", got2, frames)
	}
}

func TestMediumPropagationDelay(t *testing.T) {
	eng, m, macs := testMedium(t, idealConfig(), []Pos{{0, 0}, {150, 0}})
	var rxAt sim.Time
	mac := macs[1]
	_ = mac
	m.Transmit(dataFrame(0, 1, 100*sim.Microsecond))
	eng.At(99*sim.Microsecond, func() {}) // keep engine busy until frame end
	eng.Run(sim.Second)
	_ = rxAt
	// The frame ends at 100µs + 150m/c ≈ 100.5µs; busy started ≈0.5µs in.
	if macs[1].busy != 1 {
		t.Fatal("receiver should sense the frame")
	}
}

func TestMediumTransmitWhileTransmittingPanics(t *testing.T) {
	eng, m, _ := testMedium(t, idealConfig(), []Pos{{0, 0}, {100, 0}})
	m.Transmit(dataFrame(0, 1, 100*sim.Microsecond))
	defer func() {
		if recover() == nil {
			t.Fatal("double transmit must panic (simulator invariant)")
		}
	}()
	m.Transmit(dataFrame(0, 1, 100*sim.Microsecond))
	eng.Run(sim.Second)
}
