package radio

import (
	"slices"

	"ripple/internal/sim"
)

// Rebuild returns the LinkPlan for the same radio Config over new station
// positions, reusing this plan's rows wherever it can. It is the epoch
// step of a time-varying world: mobility models leave most stations with
// bit-identical coordinates each epoch, so most CSR rows survive
// unchanged and only rows touching a moved station are recomputed.
//
// The result is exactly NewLinkPlan(cfg, positions) — same kept pairs,
// same attributes, same row order, bit for bit (the rebuild equivalence
// test diffs every array to keep it that way). The receiving plan is not
// modified; when no station moved at all it is returned as-is (both
// plans are immutable, so sharing is safe).
//
// For an unmoved station the patch is a single merge: its old row minus
// entries whose neighbor moved, interleaved (in the row's power order)
// with freshly computed entries for moved stations now in range. Moved
// stations' own rows rebuild from scratch through the spatial grid. When
// more than a quarter of the population moved the patch has no advantage
// and Rebuild falls back to a full build, as it does for unpruned plans
// (dense worlds are small enough that a full O(N²) build is cheap).
func (pl *LinkPlan) Rebuild(positions []Pos) *LinkPlan {
	if len(positions) != pl.n {
		panic("radio: Rebuild with a different station count")
	}
	moved := make([]bool, pl.n)
	movedIdx := make([]int32, 0, 64)
	for i := range positions {
		if positions[i] != pl.positions[i] {
			moved[i] = true
			movedIdx = append(movedIdx, int32(i))
		}
	}
	if len(movedIdx) == 0 {
		return pl
	}
	if !pl.pruned || len(movedIdx)*4 > pl.n {
		return NewLinkPlan(pl.cfg, positions)
	}

	np := &LinkPlan{
		cfg:         pl.cfg,
		positions:   append([]Pos(nil), positions...),
		n:           pl.n,
		pruned:      true,
		pruneCutoff: pl.pruneCutoff,
	}
	radius := np.cfg.rangeFor(np.pruneCutoff) * 1.001
	if radius < 1 {
		radius = 1 // matches buildPruned's sub-metre clamp
	}
	rsq := radius * radius
	grid := newPosGrid(np.positions, radius)

	// Dirty pass: for every moved station j, every station within the
	// candidate radius of j's NEW position may now need a row entry for j.
	// (Entries for j's old neighborhood need no lookup: the merge below
	// drops every entry pointing at a moved station and re-adds only those
	// the predicate still keeps.) Candidates are symmetric-by-distance, so
	// querying around j finds exactly the rows whose candidate set gained
	// j. Stored as a CSR over rows; each row's dirty list is in ascending
	// moved-station order because movedIdx is ascending.
	dirtyOff := make([]int32, pl.n+1)
	for _, j := range movedIdx {
		grid.eachCandidate(int(j), np.positions, rsq, func(c int32) {
			if !moved[c] {
				dirtyOff[c+1]++
			}
		})
	}
	for i := 0; i < pl.n; i++ {
		dirtyOff[i+1] += dirtyOff[i]
	}
	dirtyJ := make([]int32, dirtyOff[pl.n])
	cursor := append([]int32(nil), dirtyOff[:pl.n]...)
	for _, j := range movedIdx {
		grid.eachCandidate(int(j), np.positions, rsq, func(c int32) {
			if !moved[c] {
				dirtyJ[cursor[c]] = j
				cursor[c]++
			}
		})
	}

	// Row pass. Sizing by the old link count plus slack for the moved
	// rows' churn: appends grow it if motion densified the graph.
	np.off = make([]int64, pl.n+1)
	capHint := len(pl.nbrID) + 16*len(movedIdx) + 64
	np.nbrID = make([]int32, 0, capHint)
	np.nbrDBm = make([]float64, 0, capHint)
	np.nbrDist = make([]float64, 0, capHint)
	np.nbrPD = make([]sim.Time, 0, capHint)
	np.lookID = make([]int32, 0, capHint)
	np.lookSlot = make([]int32, 0, capHint)

	var s rowScratch
	for i := 0; i < pl.n; i++ {
		if moved[i] {
			np.appendScratchRow(i, grid, rsq, &s)
			continue
		}
		dirty := dirtyJ[dirtyOff[i]:dirtyOff[i+1]]
		if len(dirty) == 0 && !pl.rowHasMoved(i, moved) {
			// Untouched row: no mover entered the candidate radius and no
			// existing neighbor moved, so the row — entries, order, lookup —
			// is the old one verbatim. On a high-stay world this is nearly
			// every row, and the bulk copy is what keeps the per-epoch cost
			// proportional to the motion instead of the population.
			np.appendCopiedRow(i, pl)
			continue
		}
		np.appendPatchedRow(i, pl, moved, dirty, &s)
	}
	return np
}

// rowHasMoved reports whether any of station i's stored neighbors moved.
func (pl *LinkPlan) rowHasMoved(i int, moved []bool) bool {
	for _, id := range pl.nbrID[pl.off[i]:pl.off[i+1]] {
		if moved[id] {
			return true
		}
	}
	return false
}

// appendCopiedRow appends station i's row — primary arrays and lookup —
// copied verbatim from old (the lookup's slots are row-relative, so the
// copy needs no adjustment).
func (np *LinkPlan) appendCopiedRow(i int, old *LinkPlan) {
	lo, hi := old.off[i], old.off[i+1]
	np.nbrID = append(np.nbrID, old.nbrID[lo:hi]...)
	np.nbrDBm = append(np.nbrDBm, old.nbrDBm[lo:hi]...)
	np.nbrDist = append(np.nbrDist, old.nbrDist[lo:hi]...)
	np.nbrPD = append(np.nbrPD, old.nbrPD[lo:hi]...)
	np.lookID = append(np.lookID, old.lookID[lo:hi]...)
	np.lookSlot = append(np.lookSlot, old.lookSlot[lo:hi]...)
	np.off[i+1] = int64(len(np.nbrID))
}

// RowEqual reports whether station i's row stores the same neighbors at
// the same distances in pl and other (two plans over the same station
// count). Distances determine delivery probabilities, so equal rows yield
// identical routing-table rows — the epoch table rebuild uses this to
// copy rows of stations whose neighborhood geometry did not change.
func (pl *LinkPlan) RowEqual(other *LinkPlan, i int) bool {
	lo, hi := pl.off[i], pl.off[i+1]
	olo, ohi := other.off[i], other.off[i+1]
	return hi-lo == ohi-olo &&
		slices.Equal(pl.nbrID[lo:hi], other.nbrID[olo:ohi]) &&
		slices.Equal(pl.nbrDist[lo:hi], other.nbrDist[olo:ohi])
}

// appendPatchedRow rebuilds unmoved station i's row by merging the old
// row (minus entries whose neighbor moved) with freshly computed entries
// for the dirty moved stations that still clear the power predicate. Both
// inputs are sorted by the row order (power desc, ID asc) — surviving old
// entries keep their relative order, fresh ones are sorted here — so one
// merge reproduces the full build's sort exactly. The lookup index is
// built by a second merge rather than appendRowLookup's sort: the
// surviving old lookup and the dirty additions are each already in
// ascending ID order (and can never collide — dirty IDs are moved
// stations, survivors are not), so with the new slots recorded during the
// row merge the O(k log k) per-row sort becomes an O(k) zip.
func (np *LinkPlan) appendPatchedRow(i int, old *LinkPlan, moved []bool, dirty []int32, s *rowScratch) {
	s.ids, s.dbm, s.dist = s.ids[:0], s.dbm[:0], s.dist[:0]
	for _, j := range dirty {
		d := Dist(np.positions[i], np.positions[j])
		p := np.cfg.MeanRxPowerDBm(d)
		if p < np.pruneCutoff {
			continue
		}
		s.ids = append(s.ids, j)
		s.dbm = append(s.dbm, p)
		s.dist = append(s.dist, d)
	}
	s.sort()

	lo, hi := old.off[i], old.off[i+1]
	s.oldSlot = growSlots(s.oldSlot, int(hi-lo))
	s.newSlot = growSlots(s.newSlot, len(s.ids))
	rowStart := int64(len(np.nbrID))

	k, m := lo, 0
	for {
		for k < hi && moved[old.nbrID[k]] {
			k++
		}
		oldOK, newOK := k < hi, m < len(s.perm)
		if !oldOK && !newOK {
			break
		}
		useOld := oldOK
		if oldOK && newOK {
			kn := s.perm[m]
			if old.nbrDBm[k] != s.dbm[kn] {
				useOld = old.nbrDBm[k] > s.dbm[kn]
			} else {
				useOld = old.nbrID[k] < s.ids[kn]
			}
		}
		slot := int32(int64(len(np.nbrID)) - rowStart)
		if useOld {
			np.nbrID = append(np.nbrID, old.nbrID[k])
			np.nbrDBm = append(np.nbrDBm, old.nbrDBm[k])
			np.nbrDist = append(np.nbrDist, old.nbrDist[k])
			np.nbrPD = append(np.nbrPD, old.nbrPD[k])
			s.oldSlot[k-lo] = slot
			k++
		} else {
			kn := s.perm[m]
			np.nbrID = append(np.nbrID, s.ids[kn])
			np.nbrDBm = append(np.nbrDBm, s.dbm[kn])
			np.nbrDist = append(np.nbrDist, s.dist[kn])
			np.nbrPD = append(np.nbrPD, propDelay(s.dist[kn]))
			s.newSlot[kn] = slot
			m++
		}
	}

	ti, mi := lo, 0
	for {
		for ti < hi && moved[old.lookID[ti]] {
			ti++
		}
		oldOK, newOK := ti < hi, mi < len(s.ids)
		if !oldOK && !newOK {
			break
		}
		if oldOK && (!newOK || old.lookID[ti] < s.ids[mi]) {
			np.lookID = append(np.lookID, old.lookID[ti])
			np.lookSlot = append(np.lookSlot, s.oldSlot[old.lookSlot[ti]])
			ti++
		} else {
			np.lookID = append(np.lookID, s.ids[mi])
			np.lookSlot = append(np.lookSlot, s.newSlot[mi])
			mi++
		}
	}
	np.off[i+1] = int64(len(np.nbrID))
}

// growSlots resizes a scratch slot-map to n entries, reusing its backing
// array when it is large enough (values are fully rewritten each row).
func growSlots(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// Positions returns the station positions the plan was built over. The
// returned slice aliases the plan's immutable storage: callers must treat
// it as read-only.
func (pl *LinkPlan) Positions() []Pos { return pl.positions }

// Pos returns station i's position.
func (pl *LinkPlan) Pos(i int) Pos { return pl.positions[i] }
