package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigCalibration(t *testing.T) {
	c := DefaultConfig()
	// DESIGN.md §6 calibration: ≈0.5% loss at 100 m, ≈25% at 200 m,
	// ≈65% at 300 m (the Fig. 1 direct link).
	cases := []struct {
		d        float64
		min, max float64
	}{
		{100, 0.001, 0.02},
		{200, 0.15, 0.35},
		{300, 0.55, 0.75},
		{50, 0, 0.001},
		{600, 0.97, 1},
	}
	for _, cse := range cases {
		got := c.LossProb(cse.d)
		if got < cse.min || got > cse.max {
			t.Errorf("LossProb(%gm) = %.4f, want in [%g, %g]", cse.d, got, cse.min, cse.max)
		}
	}
}

func TestLossProbAtHalfRange(t *testing.T) {
	c := DefaultConfig()
	if got := c.LossProb(DefaultRange); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("LossProb at DefaultRange = %.6f, want 0.5", got)
	}
}

func TestLossProbMonotoneProperty(t *testing.T) {
	c := DefaultConfig()
	prop := func(a, b uint16) bool {
		d1, d2 := float64(a%2000)+1, float64(b%2000)+1
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return c.LossProb(d1) <= c.LossProb(d2)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryProbDiscountsBER(t *testing.T) {
	c := DefaultConfig()
	c.BitErrorRate = 1e-5
	noBits := c.DeliveryProb(100, 0)
	withBits := c.DeliveryProb(100, 8000)
	want := noBits * math.Pow(1-1e-5, 8000)
	if math.Abs(withBits-want) > 1e-9 {
		t.Fatalf("DeliveryProb = %v, want %v", withBits, want)
	}
	if withBits >= noBits {
		t.Fatal("BER must reduce delivery probability")
	}
}

func TestMeanRxPowerFollowsPathLossExponent(t *testing.T) {
	c := DefaultConfig()
	// Doubling distance costs 10·n·log10(2) ≈ 15.05 dB at exponent 5.
	drop := c.MeanRxPowerDBm(100) - c.MeanRxPowerDBm(200)
	if math.Abs(drop-15.0514) > 0.01 {
		t.Fatalf("power drop per doubling = %.4f dB, want ≈15.05", drop)
	}
}

func TestMeanRxPowerClampsBelowReference(t *testing.T) {
	c := DefaultConfig()
	if c.MeanRxPowerDBm(0.1) != c.MeanRxPowerDBm(1) {
		t.Fatal("distances below 1 m must clamp to the reference distance")
	}
}

func TestRangesConsistent(t *testing.T) {
	c := DefaultConfig()
	if math.Abs(c.RXRange()-DefaultRange) > 0.5 {
		t.Fatalf("RXRange = %.1f, want %.0f", c.RXRange(), DefaultRange)
	}
	// CS threshold 13 dB below RX → range ratio 10^(13/50) ≈ 1.82.
	ratio := c.CSRange() / c.RXRange()
	if math.Abs(ratio-math.Pow(10, 13.0/50)) > 0.01 {
		t.Fatalf("CS/RX range ratio = %.3f", ratio)
	}
}

func TestTxPowerMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	// 281 mW = 24.487 dBm (§IV: "transmission power 281 mW").
	if math.Abs(c.TxPowerDBm-24.487) > 0.01 {
		t.Fatalf("TxPowerDBm = %.3f, want 24.487", c.TxPowerDBm)
	}
	if c.PathLossExp != 5 || c.ShadowSigmaDB != 8 {
		t.Fatalf("shadowing params = (%g, %g), want (5, 8)", c.PathLossExp, c.ShadowSigmaDB)
	}
}

func TestZeroSigmaLossIsStep(t *testing.T) {
	c := DefaultConfig()
	c.ShadowSigmaDB = 0
	if c.LossProb(DefaultRange-1) != 0 {
		t.Fatal("inside range must be lossless with zero shadowing")
	}
	if c.LossProb(DefaultRange+1) != 1 {
		t.Fatal("outside range must be total loss with zero shadowing")
	}
}

func TestDist(t *testing.T) {
	if got := Dist(Pos{0, 0}, Pos{3, 4}); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
}
