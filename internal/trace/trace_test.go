package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/sim"
)

func frame(kind pkt.FrameKind, tx pkt.NodeID, dur sim.Time, npkts int) *pkt.Frame {
	f := &pkt.Frame{Kind: kind, Tx: tx, Duration: dur, FlowID: 1}
	for i := 0; i < npkts; i++ {
		f.Packets = append(f.Packets, &pkt.Packet{Bytes: 1000})
	}
	return f
}

func TestRecorderAirtime(t *testing.T) {
	var r Recorder
	now := sim.Time(0)
	hook := func(k string, n pkt.NodeID, f *pkt.Frame) { r.record(now, k, n, f) }
	hook("tx", 0, frame(pkt.Data, 0, 100*sim.Microsecond, 2))
	hook("tx", 0, frame(pkt.Data, 0, 50*sim.Microsecond, 1))
	hook("tx", 1, frame(pkt.Ack, 1, 20*sim.Microsecond, 0))
	hook("rx", 1, frame(pkt.Data, 0, 100*sim.Microsecond, 2)) // rx: no airtime

	air := r.Airtime()
	if air[0] != 150*sim.Microsecond {
		t.Fatalf("node 0 airtime = %v", air[0])
	}
	if air[1] != 20*sim.Microsecond {
		t.Fatalf("node 1 airtime = %v", air[1])
	}
	counts := r.FrameCounts()
	if counts["DATA"] != 2 || counts["ACK"] != 1 {
		t.Fatalf("frame counts = %v", counts)
	}
}

func TestRecorderBusyFraction(t *testing.T) {
	var r Recorder
	hook := func(k string, n pkt.NodeID, f *pkt.Frame) { r.record(0, k, n, f) }
	hook("tx", 0, frame(pkt.Data, 0, 250*sim.Millisecond, 1))
	got := r.BusyFraction(sim.Second)
	if got < 0.249 || got > 0.251 {
		t.Fatalf("BusyFraction = %v, want 0.25", got)
	}
	if r.BusyFraction(0) != 0 {
		t.Fatal("zero duration must not divide by zero")
	}
}

func TestRecorderJSONL(t *testing.T) {
	var buf bytes.Buffer
	r := Recorder{W: &buf}
	now := sim.Time(42 * sim.Microsecond)
	hook := func(k string, n pkt.NodeID, f *pkt.Frame) { r.record(now, k, n, f) }
	hook("tx", 3, frame(pkt.Data, 3, 100*sim.Microsecond, 2))
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no JSONL line written")
	}
	var ev Event
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.TimeNs != int64(42*sim.Microsecond) || ev.Node != 3 || ev.Frame.Kind != "DATA" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Frame.Packets != 2 || ev.Frame.Bytes != 2000 {
		t.Fatalf("frame info = %+v", ev.Frame)
	}
}

func TestRecorderKeepBound(t *testing.T) {
	r := Recorder{Keep: 2}
	hook := func(k string, n pkt.NodeID, f *pkt.Frame) { r.record(0, k, n, f) }
	for i := 0; i < 5; i++ {
		hook("tx", 0, frame(pkt.Data, 0, sim.Microsecond, 1))
	}
	if len(r.Events()) != 2 {
		t.Fatalf("kept %d events, want 2", len(r.Events()))
	}
}

func TestRecorderSummary(t *testing.T) {
	var r Recorder
	hook := func(k string, n pkt.NodeID, f *pkt.Frame) { r.record(0, k, n, f) }
	hook("tx", 1, frame(pkt.Data, 1, 100*sim.Millisecond, 1))
	s := r.Summary(sim.Second)
	if !strings.Contains(s, "node  1") || !strings.Contains(s, "10.0%") {
		t.Fatalf("summary:\n%s", s)
	}
	if !strings.Contains(s, "DATA  frames: 1") {
		t.Fatalf("summary missing frame counts:\n%s", s)
	}
}
