// Package trace records per-frame medium events for offline analysis:
// structured JSONL logs, per-station airtime accounting, and per-frame-kind
// breakdowns. A Recorder plugs into network.Config.Trace.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ripple/internal/pkt"
	"ripple/internal/sim"
)

// Event is one recorded medium event.
type Event struct {
	// TimeNs is the simulation time in nanoseconds.
	TimeNs int64 `json:"t_ns"`
	// Kind is "tx" (transmission started), "rx" (decoded) or "corrupt".
	Kind string `json:"kind"`
	// Node is the transmitter for tx events, the receiver otherwise.
	Node int `json:"node"`
	// Frame describes the frame involved.
	Frame FrameInfo `json:"frame"`
}

// FrameInfo is the serialisable subset of a frame.
type FrameInfo struct {
	Kind       string `json:"kind"`
	Tx         int    `json:"tx"`
	Rx         int    `json:"rx,omitempty"`
	Origin     int    `json:"origin"`
	Flow       int    `json:"flow"`
	Txop       uint64 `json:"txop"`
	Packets    int    `json:"packets"`
	Bytes      int    `json:"bytes"`
	DurationNs int64  `json:"duration_ns"`
}

func frameInfo(f *pkt.Frame) FrameInfo {
	bytes := 0
	for _, p := range f.Packets {
		bytes += p.Bytes
	}
	return FrameInfo{
		Kind:       f.Kind.String(),
		Tx:         int(f.Tx),
		Rx:         int(f.Rx),
		Origin:     int(f.Origin),
		Flow:       f.FlowID,
		Txop:       f.TxopID,
		Packets:    len(f.Packets),
		Bytes:      bytes,
		DurationNs: int64(f.Duration),
	}
}

// Recorder accumulates medium events. The zero value records airtime only;
// set Keep or W for full event capture. Not safe for concurrent use — use
// one Recorder per run (per engine), like every other per-run component.
type Recorder struct {
	// Keep bounds in-memory event retention (0 = keep none).
	Keep int
	// W, when non-nil, receives one JSON object per line per event.
	W io.Writer

	events  []Event
	airtime map[pkt.NodeID]sim.Time
	byKind  map[string]int
	txTotal int
	errW    error
}

// Hook returns the callback to install as network.Config.Trace.
func (r *Recorder) Hook() func(sim.Time, string, pkt.NodeID, *pkt.Frame) {
	return r.record
}

func (r *Recorder) record(at sim.Time, kind string, node pkt.NodeID, f *pkt.Frame) {
	if r.airtime == nil {
		r.airtime = make(map[pkt.NodeID]sim.Time)
		r.byKind = make(map[string]int)
	}
	if kind == "tx" {
		r.airtime[node] += f.Duration
		r.byKind[f.Kind.String()]++
		r.txTotal++
	}
	if r.Keep == 0 && r.W == nil {
		return
	}
	ev := Event{TimeNs: int64(at), Kind: kind, Node: int(node), Frame: frameInfo(f)}
	if r.Keep > 0 {
		if len(r.events) < r.Keep {
			r.events = append(r.events, ev)
		}
	}
	if r.W != nil && r.errW == nil {
		enc, err := json.Marshal(ev)
		if err == nil {
			_, err = r.W.Write(append(enc, '\n'))
		}
		r.errW = err
	}
}

// Events returns the retained events (up to Keep).
func (r *Recorder) Events() []Event { return r.events }

// Err reports any write error encountered while streaming JSONL.
func (r *Recorder) Err() error { return r.errW }

// Airtime returns the transmitted airtime per station.
func (r *Recorder) Airtime() map[pkt.NodeID]sim.Time {
	out := make(map[pkt.NodeID]sim.Time, len(r.airtime))
	for k, v := range r.airtime {
		out[k] = v
	}
	return out
}

// BusyFraction returns total transmitted airtime across all stations as a
// fraction of the run duration (can exceed 1 with spatial reuse).
func (r *Recorder) BusyFraction(duration sim.Time) float64 {
	if duration <= 0 {
		return 0
	}
	var sum sim.Time
	for _, v := range r.airtime {
		sum += v
	}
	return float64(sum) / float64(duration)
}

// FrameCounts returns transmissions per frame kind ("DATA", "ACK", ...).
func (r *Recorder) FrameCounts() map[string]int {
	out := make(map[string]int, len(r.byKind))
	for k, v := range r.byKind {
		out[k] = v
	}
	return out
}

// Summary renders a human-readable airtime report.
func (r *Recorder) Summary(duration sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "airtime over %v (%d transmissions):\n", duration, r.txTotal)
	ids := make([]pkt.NodeID, 0, len(r.airtime))
	for id := range r.airtime {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		share := 0.0
		if duration > 0 {
			share = float64(r.airtime[id]) / float64(duration)
		}
		fmt.Fprintf(&b, "  node %2d: %10v (%5.1f%%)\n", id, r.airtime[id], 100*share)
	}
	kinds := make([]string, 0, len(r.byKind))
	for k := range r.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-5s frames: %d\n", k, r.byKind[k])
	}
	return b.String()
}
