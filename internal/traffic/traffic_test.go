package traffic

import (
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/sim"
	"ripple/internal/stats"
	"ripple/internal/transport"
)

// loopback delivers packets directly between TCP endpoints.
type loopback struct {
	eng  *sim.Engine
	conn *transport.TCP
}

func (l *loopback) send(p *pkt.Packet) bool {
	l.eng.After(sim.Millisecond, func() { l.conn.Receive(p.Dst, p) })
	return true
}

func TestWebGeneratesSuccessiveTransfers(t *testing.T) {
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	lb := &loopback{eng: eng}
	conn := transport.NewTCP(eng, transport.DefaultTCPConfig(), 1, 0, 1, lb.send, lb.send, fs)
	lb.conn = conn
	cfg := DefaultWebConfig()
	cfg.OffMean = 50 * sim.Millisecond // fast think times for the test
	w := NewWeb(eng, cfg, conn, 1000, sim.NewRNG(1, 1))
	w.Start()
	eng.Run(30 * sim.Second)
	if fs.TransfersCompleted < 5 {
		t.Fatalf("completed %d transfers in 30s, want several", fs.TransfersCompleted)
	}
	if fs.AppBytes == 0 {
		t.Fatal("no bytes transferred")
	}
	// Mean transfer size should be in the Pareto(1.5, mean 80KB) ballpark;
	// small samples skew low because the mass sits near the 26.7KB scale.
	mean := float64(fs.AppBytes) / float64(fs.TransfersCompleted)
	if mean < 25e3 {
		t.Fatalf("mean transfer = %.0f bytes, below the Pareto scale", mean)
	}
}

func TestWebStopEndsCycle(t *testing.T) {
	eng := sim.NewEngine()
	fs := &stats.Flow{ID: 1}
	lb := &loopback{eng: eng}
	conn := transport.NewTCP(eng, transport.DefaultTCPConfig(), 1, 0, 1, lb.send, lb.send, fs)
	lb.conn = conn
	cfg := DefaultWebConfig()
	cfg.OffMean = 10 * sim.Millisecond
	w := NewWeb(eng, cfg, conn, 1000, sim.NewRNG(2, 1))
	w.Start()
	eng.Run(2 * sim.Second)
	w.Stop()
	done := fs.TransfersCompleted
	eng.Run(10 * sim.Second)
	// At most the in-flight transfer completes after Stop.
	if fs.TransfersCompleted > done+1 {
		t.Fatalf("transfers continued after Stop: %d → %d", done, fs.TransfersCompleted)
	}
}

func TestDefaultWebConfigMatchesPaper(t *testing.T) {
	cfg := DefaultWebConfig()
	if cfg.MeanTransferBytes != 80e3 {
		t.Fatalf("mean transfer = %v, want 80KB", cfg.MeanTransferBytes)
	}
	if cfg.ParetoShape != 1.5 {
		t.Fatalf("shape = %v, want 1.5", cfg.ParetoShape)
	}
	if cfg.OffMean != sim.Second {
		t.Fatalf("off mean = %v, want 1s", cfg.OffMean)
	}
}
