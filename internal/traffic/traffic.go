// Package traffic provides the workload generators of the paper's
// evaluation: long-lived FTP transfers (§IV-A), ON/OFF web traffic with
// Pareto transfer sizes (§IV-D), and helpers shared by the experiment
// harness. The VoIP and CBR sources live in package transport since they
// are transports of their own.
package traffic

import (
	"math"

	"ripple/internal/sim"
	"ripple/internal/transport"
)

// WebConfig models the paper's short-transfer workload: transfer sizes
// follow a Pareto distribution with mean 80 KB and shape 1.5; OFF (reading)
// periods are exponential with mean one second.
type WebConfig struct {
	MeanTransferBytes float64
	ParetoShape       float64
	OffMean           sim.Time
}

// DefaultWebConfig returns §IV-D's parameters.
func DefaultWebConfig() WebConfig {
	return WebConfig{MeanTransferBytes: 80e3, ParetoShape: 1.5, OffMean: sim.Second}
}

// Web drives one TCP connection through an endless ON/OFF transfer cycle.
type Web struct {
	eng  *sim.Engine
	cfg  WebConfig
	tcp  *transport.TCP
	rng  *sim.RNG
	mss  int
	stop bool
}

// NewWeb creates the generator over an existing TCP connection.
func NewWeb(eng *sim.Engine, cfg WebConfig, tcp *transport.TCP, mss int, rng *sim.RNG) *Web {
	return &Web{eng: eng, cfg: cfg, tcp: tcp, rng: rng, mss: mss}
}

// Start launches the first transfer.
func (w *Web) Start() { w.launch() }

// Stop ends the cycle after the current transfer.
func (w *Web) Stop() { w.stop = true }

func (w *Web) launch() {
	if w.stop {
		return
	}
	size := w.rng.ParetoWithMean(w.cfg.ParetoShape, w.cfg.MeanTransferBytes)
	pkts := int64(math.Ceil(size / float64(w.mss)))
	if pkts < 1 {
		pkts = 1
	}
	w.tcp.StartTransfer(pkts, func() {
		off := sim.Time(w.rng.Exp(float64(w.cfg.OffMean)))
		w.eng.After(off, w.launch)
	})
}
