// Package fault generates deterministic, seeded fault-injection
// schedules for a simulation run: station crash/recover churn with
// exponential up/down times, link flaps, transient regional noise bursts
// and an area partition. A Schedule is a pure function of
// (Spec, duration, positions, exemptions, candidate links) — exactly like
// a mobility trajectory it draws nothing from Config.Seed, so one
// Schedule serves every seed-run of a campaign cell and a distributed
// worker rebuilds it bit-identically from the scenario definition alone.
package fault

import (
	"sort"

	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/sim"
)

// Defaults for zero-valued Spec knobs, resolved by Build.
const (
	// DefaultMTTR is the mean repair time of a crashed station.
	DefaultMTTR = 1 * sim.Second
	// DefaultFlapUp / DefaultFlapDown are the mean up/down durations of a
	// flapping link.
	DefaultFlapUp   = 1 * sim.Second
	DefaultFlapDown = 250 * sim.Millisecond
	// DefaultNoiseEvery / DefaultNoiseLen shape a noise burst's duty
	// cycle: mean quiet gap and fixed active length.
	DefaultNoiseEvery = 1 * sim.Second
	DefaultNoiseLen   = 200 * sim.Millisecond
	// DefaultNoisePenaltyDB is the SNR penalty a burst applies to every
	// reception at a covered station.
	DefaultNoisePenaltyDB = 20.0
	// DefaultNoiseRadius is the burst coverage radius in metres.
	DefaultNoiseRadius = 250.0
	// DefaultFailureThreshold is the number of consecutive failed
	// exchanges before routing blacklists the preferred forwarder.
	DefaultFailureThreshold = 3
	// DefaultEpoch is the fault-overlay epoch length of an otherwise
	// static world; it matches the mobility default so the two kinds of
	// time-varying world share boundary semantics.
	DefaultEpoch = 500 * sim.Millisecond
)

// Spec describes the fault processes of a run. The zero value is
// completely inert: Active reports false, no Schedule is built, and a
// configuration carrying it behaves bit-identically to one without the
// field. Every schedule derives from Seed alone — deliberately separate
// from the scenario seed, mirroring MobilitySpec.Seed.
type Spec struct {
	// Seed drives all fault schedules (0 selects 1).
	Seed uint64
	// Epoch is the fault-overlay epoch length when the world is otherwise
	// static (0 selects the mobility default, 500 ms). When mobility is
	// active its epoch length wins — fault overlays ride the same
	// boundaries.
	Epoch sim.Time
	// MTBF enables station churn: each non-exempt station alternates
	// Exp(MTBF) up-time and Exp(MTTR) down-time. 0 disables churn.
	MTBF sim.Time
	// MTTR is the mean repair time (0 selects DefaultMTTR).
	MTTR sim.Time
	// FlapLinks picks that many links of the initial neighbor graph to
	// flap: Exp(FlapUp) usable, Exp(FlapDown) blocked, repeating.
	FlapLinks int
	// FlapUp and FlapDown are the mean link up/down durations
	// (0 selects the defaults).
	FlapUp, FlapDown sim.Time
	// NoiseBursts enables that many independent regional noise sources:
	// each picks a fixed uniform-random center, waits Exp(NoiseEvery),
	// then degrades every reception within NoiseRadius of the center by
	// NoisePenaltyDB for NoiseLen, repeating.
	NoiseBursts int
	// NoiseEvery and NoiseLen shape the burst duty cycle (0 selects the
	// defaults).
	NoiseEvery, NoiseLen sim.Time
	// NoisePenaltyDB is the per-burst SNR penalty (0 selects 20 dB).
	NoisePenaltyDB float64
	// NoiseRadius is the burst coverage radius in metres (0 selects 250).
	NoiseRadius float64
	// PartitionAt / PartitionDur, when PartitionDur > 0, block every link
	// crossing the median-x split of the topology during
	// [PartitionAt, PartitionAt+PartitionDur).
	PartitionAt, PartitionDur sim.Time
	// FailureThreshold is the number of consecutive failed exchanges
	// before the routing layer blacklists a flow's preferred forwarder
	// until the next epoch (0 selects 3).
	FailureThreshold int
}

// Active reports whether the spec injects any fault at all.
func (s Spec) Active() bool {
	return s.MTBF > 0 || s.FlapLinks > 0 || s.NoiseBursts > 0 || s.PartitionDur > 0
}

// EpochLen resolves the fault-overlay epoch length for a world without
// mobility (mobility's epoch length wins when both are active).
func (s Spec) EpochLen() sim.Time {
	if s.Epoch > 0 {
		return s.Epoch
	}
	return DefaultEpoch
}

// Threshold resolves the forwarder-blacklist failure threshold.
func (s Spec) Threshold() int {
	if s.FailureThreshold > 0 {
		return s.FailureThreshold
	}
	return DefaultFailureThreshold
}

func (s Spec) seed() uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 1
}

func orDefault(v, def sim.Time) sim.Time {
	if v > 0 {
		return v
	}
	return def
}

// EventKind labels one in-engine fault transition.
type EventKind int

const (
	// StationDown crashes a station: its scheme releases all packet
	// custody and the medium stops delivering frames to or from it.
	StationDown EventKind = iota + 1
	// StationUp recovers a crashed station with empty MAC state.
	StationUp
	// NoiseOn / NoiseOff toggle one burst's SNR penalty over its covered
	// stations.
	NoiseOn
	NoiseOff
)

// Event is one scheduled fault transition. Station events identify the
// station; noise events identify the burst (its coverage and penalty live
// on the Schedule). Link flaps and the partition have no events: the
// medium consults the Schedule's time-indexed LinkBlocked query directly.
type Event struct {
	At      sim.Time
	Kind    EventKind
	Station pkt.NodeID
	Burst   int
}

// Burst is one regional noise source.
type Burst struct {
	Center    radio.Pos
	Radius    float64
	PenaltyDB float64
	// Covered lists the stations within Radius of Center, by the initial
	// positions (burst regions are fixed in space; a mobile station is
	// affected per its initial-epoch location).
	Covered []pkt.NodeID
	toggles []sim.Time // even index: burst turns on; odd: off
}

// Schedule is the materialised fault timeline of one run: per-process
// toggle times plus the sorted event list. It is immutable after Build
// and safe to share across concurrent runs.
type Schedule struct {
	n               int
	threshold       int
	stationToggles  [][]sim.Time // per station: even index down, odd up
	flapToggles     [][]sim.Time // per flapped link: even index down, odd up
	flapIndex       map[[2]pkt.NodeID]int
	bursts          []Burst
	partAt, partEnd sim.Time
	side            []bool // partition side per station (x above median)
	events          []Event
}

// Build materialises the schedule for a run of the given duration.
// exempt (optional, nil for none) flags stations immune to churn — the
// network layer exempts flow endpoints so degradation curves measure
// relay failures, not source/sink death. links is the candidate set for
// flaps, typically the initial plan's neighbor pairs (a < b). The result
// depends only on the arguments — never on wall clock or scenario seed.
func Build(spec Spec, duration sim.Time, positions []radio.Pos, exempt []bool, links [][2]pkt.NodeID) *Schedule {
	s := &Schedule{n: len(positions), threshold: spec.Threshold()}
	seed := spec.seed()

	if spec.MTBF > 0 {
		mttr := orDefault(spec.MTTR, DefaultMTTR)
		s.stationToggles = make([][]sim.Time, len(positions))
		for i := range positions {
			if exempt != nil && exempt[i] {
				continue
			}
			rng := sim.NewRNG(seed, 1_000+uint64(i))
			s.stationToggles[i] = toggleTimes(rng, spec.MTBF, mttr, duration)
		}
	}

	if spec.FlapLinks > 0 && len(links) > 0 {
		up := orDefault(spec.FlapUp, DefaultFlapUp)
		down := orDefault(spec.FlapDown, DefaultFlapDown)
		rng := sim.NewRNG(seed, 2)
		picked := pickLinks(rng, links, spec.FlapLinks)
		s.flapIndex = make(map[[2]pkt.NodeID]int, len(picked))
		s.flapToggles = make([][]sim.Time, len(picked))
		for k, l := range picked {
			s.flapIndex[l] = k
			lr := sim.NewRNG(seed, 2_000_000+uint64(k))
			s.flapToggles[k] = toggleTimes(lr, up, down, duration)
		}
	}

	if spec.NoiseBursts > 0 {
		every := orDefault(spec.NoiseEvery, DefaultNoiseEvery)
		length := orDefault(spec.NoiseLen, DefaultNoiseLen)
		pen := spec.NoisePenaltyDB
		if pen == 0 {
			pen = DefaultNoisePenaltyDB
		}
		radius := spec.NoiseRadius
		if radius == 0 {
			radius = DefaultNoiseRadius
		}
		minX, minY, maxX, maxY := bounds(positions)
		for k := 0; k < spec.NoiseBursts; k++ {
			rng := sim.NewRNG(seed, 3_000_000+uint64(k))
			b := Burst{
				Center: radio.Pos{
					X: minX + rng.Float64()*(maxX-minX),
					Y: minY + rng.Float64()*(maxY-minY),
				},
				Radius:    radius,
				PenaltyDB: pen,
			}
			for i, p := range positions {
				if radio.Dist(p, b.Center) <= radius {
					b.Covered = append(b.Covered, pkt.NodeID(i))
				}
			}
			// Alternating quiet gap / fixed active window.
			t := sim.Time(0)
			for {
				t += sim.Time(rng.Exp(float64(every)))
				if t >= duration {
					break
				}
				b.toggles = append(b.toggles, t) // on
				t += length
				if t >= duration {
					break
				}
				b.toggles = append(b.toggles, t) // off
			}
			s.bursts = append(s.bursts, b)
		}
	}

	if spec.PartitionDur > 0 {
		s.partAt = spec.PartitionAt
		s.partEnd = spec.PartitionAt + spec.PartitionDur
		s.side = splitSides(positions)
	}

	s.buildEvents(duration)
	return s
}

// toggleTimes draws an alternating Exp(up)/Exp(down) toggle sequence on
// [0, duration): even entries are up→down transitions, odd down→up. The
// process starts up.
func toggleTimes(rng *sim.RNG, up, down sim.Time, duration sim.Time) []sim.Time {
	var out []sim.Time
	t := sim.Time(0)
	for {
		t += sim.Time(rng.Exp(float64(up)))
		if t >= duration {
			return out
		}
		out = append(out, t)
		t += sim.Time(rng.Exp(float64(down)))
		if t >= duration {
			return out
		}
		out = append(out, t)
	}
}

// pickLinks chooses k distinct links by partial Fisher-Yates over a copy
// of the candidate list.
func pickLinks(rng *sim.RNG, links [][2]pkt.NodeID, k int) [][2]pkt.NodeID {
	c := append([][2]pkt.NodeID(nil), links...)
	if k > len(c) {
		k = len(c)
	}
	for i := 0; i < k; i++ {
		j := i + rng.IntN(len(c)-i)
		c[i], c[j] = c[j], c[i]
	}
	return c[:k]
}

func bounds(positions []radio.Pos) (minX, minY, maxX, maxY float64) {
	minX, minY = positions[0].X, positions[0].Y
	maxX, maxY = minX, minY
	for _, p := range positions[1:] {
		minX, maxX = min(minX, p.X), max(maxX, p.X)
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	return
}

// splitSides assigns each station a partition side by median x
// coordinate, so the cut divides the population roughly in half
// regardless of the topology's shape.
func splitSides(positions []radio.Pos) []bool {
	xs := make([]float64, len(positions))
	for i, p := range positions {
		xs[i] = p.X
	}
	sort.Float64s(xs)
	median := xs[len(xs)/2]
	side := make([]bool, len(positions))
	for i, p := range positions {
		side[i] = p.X >= median
	}
	return side
}

// buildEvents flattens station and noise toggles into one (time, kind,
// subject)-sorted list. Link flaps and the partition deliberately emit no
// events — the medium queries LinkBlocked per transmission instead.
func (s *Schedule) buildEvents(duration sim.Time) {
	for i, ts := range s.stationToggles {
		for k, t := range ts {
			kind := StationDown
			if k%2 == 1 {
				kind = StationUp
			}
			s.events = append(s.events, Event{At: t, Kind: kind, Station: pkt.NodeID(i)})
		}
	}
	for bi := range s.bursts {
		for k, t := range s.bursts[bi].toggles {
			kind := NoiseOn
			if k%2 == 1 {
				kind = NoiseOff
			}
			s.events = append(s.events, Event{At: t, Kind: kind, Burst: bi})
		}
	}
	sort.SliceStable(s.events, func(a, b int) bool {
		ea, eb := s.events[a], s.events[b]
		if ea.At != eb.At {
			return ea.At < eb.At
		}
		if ea.Kind != eb.Kind {
			return ea.Kind < eb.Kind
		}
		if ea.Station != eb.Station {
			return ea.Station < eb.Station
		}
		return ea.Burst < eb.Burst
	})
}

// Events returns the in-engine transition list, sorted by time with a
// deterministic tiebreak. The slice is owned by the Schedule; read only.
func (s *Schedule) Events() []Event { return s.events }

// Bursts returns the noise sources (coverage and penalties for event
// application). Read only.
func (s *Schedule) Bursts() []Burst { return s.bursts }

// Threshold returns the resolved forwarder-blacklist failure threshold.
func (s *Schedule) Threshold() int { return s.threshold }

// stateAt reports whether an alternating toggle process that starts "up"
// is in its odd ("down") phase at time t. Toggles strictly after t have
// not happened yet; a toggle exactly at t has.
func stateAt(toggles []sim.Time, t sim.Time) bool {
	n := sort.Search(len(toggles), func(i int) bool { return toggles[i] > t })
	return n%2 == 1
}

// StationDownAt reports whether station i is crashed at time t.
func (s *Schedule) StationDownAt(i pkt.NodeID, t sim.Time) bool {
	if s.stationToggles == nil {
		return false
	}
	return stateAt(s.stationToggles[i], t)
}

// LinkBlockedAt reports whether the a→b link is unusable at time t — a
// flapped link in its down phase, or a partition-crossing link during the
// partition window. Symmetric in a and b.
func (s *Schedule) LinkBlockedAt(a, b pkt.NodeID, t sim.Time) bool {
	if s.flapIndex != nil {
		key := [2]pkt.NodeID{a, b}
		if a > b {
			key = [2]pkt.NodeID{b, a}
		}
		if k, ok := s.flapIndex[key]; ok && stateAt(s.flapToggles[k], t) {
			return true
		}
	}
	if s.side != nil && t >= s.partAt && t < s.partEnd && s.side[a] != s.side[b] {
		return true
	}
	return false
}

// BlocksLinks reports whether any link-level fault process exists (flaps
// or partition); when false the medium skips installing the per-receiver
// blocked-link hook entirely.
func (s *Schedule) BlocksLinks() bool { return s.flapIndex != nil || s.side != nil }

// NoiseDBAt returns the cumulative SNR penalty in dB applied to
// receptions at station i at time t.
func (s *Schedule) NoiseDBAt(i pkt.NodeID, t sim.Time) float64 {
	var sum float64
	for bi := range s.bursts {
		b := &s.bursts[bi]
		if !stateAt(b.toggles, t) {
			continue
		}
		for _, id := range b.Covered {
			if id == i {
				sum += b.PenaltyDB
				break
			}
		}
	}
	return sum
}

// MaskedAt reports whether any fault is in effect at time t — a station
// down, a link flapped or partitioned, or a noise burst active. Epoch
// building consults it to decide between the clean link table (possibly
// incrementally rebuilt) and a from-scratch fault-masked one.
func (s *Schedule) MaskedAt(t sim.Time) bool {
	for _, ts := range s.stationToggles {
		if stateAt(ts, t) {
			return true
		}
	}
	for _, ts := range s.flapToggles {
		if stateAt(ts, t) {
			return true
		}
	}
	for bi := range s.bursts {
		if stateAt(s.bursts[bi].toggles, t) {
			return true
		}
	}
	return s.side != nil && t >= s.partAt && t < s.partEnd
}

// ToggleCounts appends, for every fault process in a fixed order, the
// number of toggles that happened up to and including time t. Two times
// with equal counts have identical fault overlays, so epoch building uses
// count equality to share consecutive epoch worlds.
func (s *Schedule) ToggleCounts(t sim.Time, buf []int) []int {
	count := func(ts []sim.Time) int {
		return sort.Search(len(ts), func(i int) bool { return ts[i] > t })
	}
	for _, ts := range s.stationToggles {
		buf = append(buf, count(ts))
	}
	for _, ts := range s.flapToggles {
		buf = append(buf, count(ts))
	}
	for bi := range s.bursts {
		buf = append(buf, count(s.bursts[bi].toggles))
	}
	part := 0
	if s.side != nil {
		if t >= s.partAt {
			part++
		}
		if t >= s.partEnd {
			part++
		}
	}
	buf = append(buf, part)
	return buf
}
