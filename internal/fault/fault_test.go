package fault

import (
	"reflect"
	"testing"

	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/sim"
)

func linePositions(n int) []radio.Pos {
	ps := make([]radio.Pos, n)
	for i := range ps {
		ps[i] = radio.Pos{X: float64(i) * 100}
	}
	return ps
}

func lineLinks(n int) [][2]pkt.NodeID {
	var ls [][2]pkt.NodeID
	for i := 0; i < n-1; i++ {
		ls = append(ls, [2]pkt.NodeID{pkt.NodeID(i), pkt.NodeID(i + 1)})
	}
	return ls
}

func TestZeroSpecInert(t *testing.T) {
	var s Spec
	if s.Active() {
		t.Fatal("zero spec reports Active")
	}
	if s.Threshold() != DefaultFailureThreshold {
		t.Fatalf("zero spec threshold = %d", s.Threshold())
	}
	if s.EpochLen() != DefaultEpoch {
		t.Fatalf("zero spec epoch = %v", s.EpochLen())
	}
}

// Build must be a pure function of its arguments: two builds of the same
// spec are deep-equal, and the schedule never consults anything else.
func TestBuildDeterministic(t *testing.T) {
	spec := Spec{
		Seed: 7, MTBF: 5 * sim.Second, MTTR: 500 * sim.Millisecond,
		FlapLinks: 2, NoiseBursts: 2,
		PartitionAt: 2 * sim.Second, PartitionDur: 1 * sim.Second,
	}
	pos := linePositions(8)
	links := lineLinks(8)
	a := Build(spec, 20*sim.Second, pos, nil, links)
	b := Build(spec, 20*sim.Second, pos, nil, links)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("two builds of the same spec differ")
	}
	if len(a.Events()) == 0 {
		t.Fatal("expected churn events over 20 s at MTBF 5 s")
	}
	// A different fault seed must yield a different timeline.
	spec.Seed = 8
	c := Build(spec, 20*sim.Second, pos, nil, links)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestExemptStationsNeverCrash(t *testing.T) {
	spec := Spec{MTBF: 200 * sim.Millisecond, MTTR: 100 * sim.Millisecond}
	pos := linePositions(4)
	exempt := []bool{true, false, false, true}
	s := Build(spec, 30*sim.Second, pos, exempt, nil)
	for _, ev := range s.Events() {
		if ev.Station == 0 || ev.Station == 3 {
			t.Fatalf("exempt station %d got event %+v", ev.Station, ev)
		}
	}
	for t10 := sim.Time(0); t10 < 30*sim.Second; t10 += 100 * sim.Millisecond {
		if s.StationDownAt(0, t10) || s.StationDownAt(3, t10) {
			t.Fatalf("exempt station down at %v", t10)
		}
	}
	// With such aggressive churn the non-exempt relays must go down.
	down := false
	for t10 := sim.Time(0); t10 < 30*sim.Second; t10 += 10 * sim.Millisecond {
		if s.StationDownAt(1, t10) || s.StationDownAt(2, t10) {
			down = true
			break
		}
	}
	if !down {
		t.Fatal("no relay ever crashed under MTBF 200 ms over 30 s")
	}
}

func TestPartitionWindow(t *testing.T) {
	spec := Spec{PartitionAt: 1 * sim.Second, PartitionDur: 2 * sim.Second}
	if !spec.Active() {
		t.Fatal("partition spec not Active")
	}
	pos := linePositions(6) // median x = 300 → sides {0,1,2} | {3,4,5}
	s := Build(spec, 10*sim.Second, pos, nil, nil)
	cross := [2]pkt.NodeID{2, 3}
	same := [2]pkt.NodeID{0, 1}
	cases := []struct {
		at      sim.Time
		blocked bool
	}{
		{999 * sim.Millisecond, false},
		{1 * sim.Second, true},
		{2999 * sim.Millisecond, true},
		{3 * sim.Second, false},
	}
	for _, c := range cases {
		if got := s.LinkBlockedAt(cross[0], cross[1], c.at); got != c.blocked {
			t.Fatalf("cross link at %v: blocked=%v, want %v", c.at, got, c.blocked)
		}
		if got := s.LinkBlockedAt(cross[1], cross[0], c.at); got != c.blocked {
			t.Fatalf("cross link (reversed) at %v: blocked=%v, want %v", c.at, got, c.blocked)
		}
		if s.LinkBlockedAt(same[0], same[1], c.at) {
			t.Fatalf("same-side link blocked at %v", c.at)
		}
	}
	if !s.MaskedAt(2*sim.Second) || s.MaskedAt(5*sim.Second) {
		t.Fatal("MaskedAt disagrees with the partition window")
	}
}

func TestFlapsSymmetricAndBounded(t *testing.T) {
	spec := Spec{FlapLinks: 3}
	pos := linePositions(8)
	links := lineLinks(8)
	dur := 30 * sim.Second
	s := Build(spec, dur, pos, nil, links)
	if !s.BlocksLinks() {
		t.Fatal("flap schedule reports BlocksLinks false")
	}
	flapped := 0
	for _, l := range links {
		blockedEver := false
		for at := sim.Time(0); at < dur; at += 20 * sim.Millisecond {
			fwd := s.LinkBlockedAt(l[0], l[1], at)
			rev := s.LinkBlockedAt(l[1], l[0], at)
			if fwd != rev {
				t.Fatalf("asymmetric flap on %v at %v", l, at)
			}
			blockedEver = blockedEver || fwd
		}
		if blockedEver {
			flapped++
		}
	}
	if flapped == 0 || flapped > 3 {
		t.Fatalf("flapped links observed = %d, want 1..3", flapped)
	}
}

func TestNoisePenaltyCoverage(t *testing.T) {
	spec := Spec{NoiseBursts: 1, NoiseRadius: 150, NoisePenaltyDB: 12}
	pos := linePositions(12)
	dur := 30 * sim.Second
	s := Build(spec, dur, pos, nil, nil)
	if len(s.Bursts()) != 1 {
		t.Fatalf("bursts = %d", len(s.Bursts()))
	}
	b := s.Bursts()[0]
	covered := make(map[pkt.NodeID]bool)
	for _, id := range b.Covered {
		covered[id] = true
		if d := radio.Dist(pos[id], b.Center); d > 150 {
			t.Fatalf("station %d covered at distance %.0f > radius", id, d)
		}
	}
	sawPenalty := false
	for at := sim.Time(0); at < dur; at += 10 * sim.Millisecond {
		for i := range pos {
			got := s.NoiseDBAt(pkt.NodeID(i), at)
			if !covered[pkt.NodeID(i)] && got != 0 {
				t.Fatalf("uncovered station %d penalised %v dB at %v", i, got, at)
			}
			if covered[pkt.NodeID(i)] && got == 12 {
				sawPenalty = true
			}
		}
	}
	if len(b.Covered) > 0 && !sawPenalty {
		t.Fatal("no covered station ever saw the burst penalty")
	}
}

// ToggleCounts equality must coincide with overlay equality: equal counts
// at two times ⇒ identical StationDownAt/LinkBlockedAt answers, and a
// toggle in between must change the counts.
func TestToggleCountsTrackOverlay(t *testing.T) {
	spec := Spec{MTBF: 2 * sim.Second, MTTR: 300 * sim.Millisecond, FlapLinks: 2}
	pos := linePositions(6)
	s := Build(spec, 20*sim.Second, pos, nil, lineLinks(6))
	evs := s.Events()
	if len(evs) < 2 {
		t.Skip("not enough events to compare")
	}
	// Two probes inside the same inter-event gap share counts; probes
	// across an event differ.
	a, b := evs[0].At, evs[1].At
	mid1 := a + (b-a)/3
	mid2 := a + 2*(b-a)/3
	if mid1 == mid2 {
		t.Skip("events too close to probe")
	}
	c1 := s.ToggleCounts(mid1, nil)
	c2 := s.ToggleCounts(mid2, nil)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("counts differ within one gap: %v vs %v", c1, c2)
	}
	before := s.ToggleCounts(a-1, nil)
	if reflect.DeepEqual(before, c1) {
		t.Fatalf("counts unchanged across event at %v", a)
	}
}

// Common-random-numbers coupling: halving the MTBF re-uses the same
// uniform draws, so every station's total downtime can only grow as the
// failure rate rises. This is what makes per-seed degradation curves
// monotone instead of merely monotone in expectation.
func TestDowntimeMonotoneInChurnRate(t *testing.T) {
	pos := linePositions(6)
	dur := 60 * sim.Second
	downtime := func(mtbf sim.Time) sim.Time {
		s := Build(Spec{MTBF: mtbf, MTTR: 1 * sim.Second}, dur, pos, nil, nil)
		var total sim.Time
		for i := range pos {
			for at := sim.Time(0); at < dur; at += 5 * sim.Millisecond {
				if s.StationDownAt(pkt.NodeID(i), at) {
					total += 5 * sim.Millisecond
				}
			}
		}
		return total
	}
	d60 := downtime(60 * sim.Second)
	d20 := downtime(20 * sim.Second)
	d5 := downtime(5 * sim.Second)
	if !(d60 <= d20 && d20 <= d5) {
		t.Fatalf("downtime not monotone: mtbf60=%v mtbf20=%v mtbf5=%v", d60, d20, d5)
	}
	if d5 == 0 {
		t.Fatal("no downtime at MTBF 5 s over 60 s")
	}
}
