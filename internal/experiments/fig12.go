package experiments

import (
	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// Fig12 regenerates Fig. 12 as four (station pair × scheme) grids:
// per-flow TCP throughput for ETX-selected 3-5 hop station pairs of the
// Roofnet topology, at 6 and 216 Mbps, with and without a hidden-terminal
// pair near the mesh. Flows run one at a time as in Fig. 10.
func Fig12(opt Options) ([]*Table, error) {
	rc := topology.HiddenRadio()
	rc.BitErrorRate = 1e-6

	// Build the ETX table over the base mesh to select the paper's flows.
	base := topology.Roofnet()
	etx := routing.NewTable(len(base.Positions), func(a, b pkt.NodeID) float64 {
		return 1 - rc.LossProb(radioDist(base, a, b))
	}, 0.1)
	flows, err := topology.RoofnetFlows(etx)
	if err != nil {
		return nil, err
	}
	rows := make([]string, len(flows))
	for i, f := range flows {
		rows[i] = f.Label
	}
	cols := loadColumns()

	// The hidden pair is appended to a copy of the topology.
	withHidden := topology.Roofnet()
	hiddenPath := topology.RoofnetHiddenPair(&withHidden)

	variant := func(id string, lowRate, hidden bool) (*Table, error) {
		title := "Roofnet topology per-flow TCP throughput, "
		if lowRate {
			title += "6 Mbps"
		} else {
			title += "216 Mbps"
		}
		if hidden {
			title += ", with hidden terminals"
		}
		top := base
		if hidden {
			top = withHidden
		}
		return tableGrid{
			ID: id, Title: title, Unit: "Mbps",
			Rows: rows,
			Cols: columnLabels(cols),
			Config: func(r, c int) (network.Config, error) {
				specs := []network.FlowSpec{{ID: 1, Path: flows[r].Path, Kind: network.FTP}}
				if hidden {
					specs = append(specs, network.FlowSpec{
						ID: 2, Path: hiddenPath, Kind: network.FTP,
						Start: 30 * sim.Millisecond,
					})
				}
				cfg := network.Config{
					Positions: top.Positions,
					Radio:     rc,
					Scheme:    cols[c].kind,
					Flows:     specs,
					// Fig. 12 paths reach 5 hops; allow the §IV-C cap.
					MaxForwarders: 7,
				}
				if lowRate {
					cfg.Phy = phys.LowRate()
				}
				return cfg, nil
			},
			Metric: func(_, _ int, res *network.Result) float64 {
				return res.Flows[0].ThroughputMbps
			},
		}.run(opt)
	}

	var out []*Table
	for _, v := range []struct {
		id      string
		lowRate bool
		hidden  bool
	}{
		{"fig12a", true, false},
		{"fig12b", true, true},
		{"fig12c", false, false},
		{"fig12d", false, true},
	} {
		t, err := variant(v.id, v.lowRate, v.hidden)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// radioDist returns the distance between two stations of a topology.
func radioDist(t topology.Topology, a, b pkt.NodeID) float64 {
	return radio.Dist(t.Positions[a], t.Positions[b])
}
