package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// Fig12 regenerates Fig. 12: per-flow TCP throughput for ETX-selected 3-5
// hop station pairs of the Roofnet topology, at 6 and 216 Mbps, with and
// without a hidden-terminal pair near the mesh. Flows run one at a time as
// in Fig. 10.
func Fig12(opt Options) ([]*Table, error) {
	opt = opt.normalize()
	rc := topology.HiddenRadio()
	rc.BitErrorRate = 1e-6

	// Build the ETX table over the base mesh to select the paper's flows.
	base := topology.Roofnet()
	etx := routing.NewTable(len(base.Positions), func(a, b pkt.NodeID) float64 {
		return 1 - rc.LossProb(radioDist(base, a, b))
	}, 0.1)
	flows, err := topology.RoofnetFlows(etx)
	if err != nil {
		return nil, err
	}

	// The hidden pair is appended to a copy of the topology.
	withHidden := topology.Roofnet()
	hiddenPath := topology.RoofnetHiddenPair(&withHidden)

	variant := func(id string, lowRate, hidden bool) (*Table, error) {
		title := "Roofnet topology per-flow TCP throughput, "
		if lowRate {
			title += "6 Mbps"
		} else {
			title += "216 Mbps"
		}
		if hidden {
			title += ", with hidden terminals"
		}
		tab := &Table{ID: id, Title: title, Unit: "Mbps"}
		for _, c := range loadColumns() {
			tab.Columns = append(tab.Columns, c.label)
		}
		top := base
		if hidden {
			top = withHidden
		}
		for _, f := range flows {
			row := Row{Label: f.Label}
			for _, c := range loadColumns() {
				specs := []network.FlowSpec{{ID: 1, Path: f.Path, Kind: network.FTP}}
				if hidden {
					specs = append(specs, network.FlowSpec{
						ID: 2, Path: hiddenPath, Kind: network.FTP,
						Start: 30 * sim.Millisecond,
					})
				}
				cfg := network.Config{
					Positions: top.Positions,
					Radio:     rc,
					Scheme:    c.kind,
					Flows:     specs,
					// Fig. 12 paths reach 5 hops; allow the §IV-C cap.
					MaxForwarders: 7,
				}
				if lowRate {
					cfg.Phy = phys.LowRate()
				}
				res, err := runAvg(cfg, opt)
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", id, c.label, f.Label, err)
				}
				row.Cells = append(row.Cells, res.Flows[0].ThroughputMbps)
			}
			tab.Rows = append(tab.Rows, row)
		}
		return tab, nil
	}

	var out []*Table
	for _, v := range []struct {
		id      string
		lowRate bool
		hidden  bool
	}{
		{"fig12a", true, false},
		{"fig12b", true, true},
		{"fig12c", false, false},
		{"fig12d", false, true},
	} {
		t, err := variant(v.id, v.lowRate, v.hidden)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// radioDist returns the distance between two stations of a topology.
func radioDist(t topology.Topology, a, b pkt.NodeID) float64 {
	return radio.Dist(t.Positions[a], t.Positions[b])
}
