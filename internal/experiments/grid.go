package experiments

import (
	"ripple/internal/campaign"
	"ripple/internal/network"
	"ripple/internal/radio"
)

// tableGrid declares one figure or table of the paper as a campaign grid:
// a row axis, a column axis, a scenario builder and a metric. Every driver
// in this package is such a declaration; scheduling, seed averaging and
// CI accumulation all happen in the campaign engine on the shared bounded
// pool.
type tableGrid struct {
	ID, Title, Unit string
	Rows            []string
	Cols            []string
	// Config builds the scenario for cell (row, col). When PerRow is set
	// the columns are metrics, not scenario variants: Config is called
	// once per row with col == -1 and every column reads a different
	// metric from that single run.
	PerRow bool
	Config func(row, col int) (network.Config, error)
	// Metric extracts the cell value from a result (the seed-averaged
	// result for the table cells, per-seed results for the CIs).
	Metric func(row, col int, res *network.Result) float64
}

// run expands the declaration into a campaign.Grid, executes it and folds
// the cells into a Table. With more than one seed every cell also carries
// its 95% confidence half-width.
func (tg tableGrid) run(opt Options) (*Table, error) {
	opt = opt.normalize()
	axes := []campaign.Axis{campaign.A("row", tg.Rows...)}
	if !tg.PerRow {
		axes = append(axes, campaign.A("col", tg.Cols...))
	}
	g := campaign.Grid{
		Name:     tg.ID,
		Axes:     axes,
		Seeds:    opt.Seeds,
		Duration: opt.Duration,
		Pool:     opt.Pool,
		Progress: opt.Progress,
		Build: func(pt campaign.Point) (network.Config, error) {
			col := -1
			if !tg.PerRow {
				col = pt.Index("col")
			}
			cfg, err := tg.Config(pt.Index("row"), col)
			if opt.PruneSigma != nil {
				// Resolve the radio default first: network.Run's Normalize
				// replaces a zero-valued Radio wholesale, which would
				// silently clobber the override.
				if cfg.Radio.PathLossExp == 0 {
					cfg.Radio = radio.DefaultConfig()
				}
				cfg.Radio.PruneSigma = *opt.PruneSigma
			}
			return cfg, err
		},
	}
	var res *campaign.Result
	var err error
	if opt.RunGrid != nil {
		res, err = opt.RunGrid(&g)
	} else {
		res, err = g.Run()
	}
	if err != nil {
		return nil, err
	}
	multiSeed := len(opt.Seeds) > 1
	tab := &Table{ID: tg.ID, Title: tg.Title, Unit: tg.Unit, Columns: tg.Cols}
	if res == nil {
		// Worker side of a distributed run: the cells were executed and
		// streamed elsewhere; emit a placeholder of the right shape without
		// evaluating any metric (there are no local results to read).
		for r := range tg.Rows {
			tab.Rows = append(tab.Rows, Row{Label: tg.Rows[r], Cells: make([]float64, len(tg.Cols))})
		}
		return tab, nil
	}
	for r := range tg.Rows {
		row := Row{Label: tg.Rows[r]}
		for c := range tg.Cols {
			var cell *campaign.Cell
			if tg.PerRow {
				cell = res.Cell(r)
			} else {
				cell = res.Cell(r, c)
			}
			row.Cells = append(row.Cells, tg.Metric(r, c, cell.Mean))
			if multiSeed {
				s := cell.Stat(func(sr *network.Result) float64 { return tg.Metric(r, c, sr) })
				row.CIs = append(row.CIs, s.CI95)
			}
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}
