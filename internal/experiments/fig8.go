package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// webFlows builds the §IV-D workload: ten short-transfer web connections
// per source/destination pair of the Fig. 1 topology (flows 1-10 between 0
// and 3, 11-20 between 0 and 4, 21-30 between 5 and 7), using the ROUTE0
// paths. nGroups selects how many of the three pair groups are active.
func webFlows(nGroups int) []network.FlowSpec {
	rs := routing.Route0()
	var flows []network.FlowSpec
	for g, p := range rs.Flows()[:nGroups] {
		for k := 0; k < 10; k++ {
			id := g*10 + k + 1
			flows = append(flows, network.FlowSpec{
				ID:    id,
				Path:  p,
				Kind:  network.Web,
				Start: sim.Time(k) * 20 * sim.Millisecond,
			})
		}
	}
	return flows
}

// Fig8 regenerates Fig. 8 as a (flow group × scheme) grid: total
// throughput of all active web flows on the Fig. 1 topology under DCF, AFR
// and RIPPLE.
func Fig8(opt Options) (*Table, error) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	cols := loadColumns()
	groups := []int{1, 2, 3}
	rows := make([]string, len(groups))
	for i, g := range groups {
		rows[i] = fmt.Sprintf("flows 1..%d", g*10)
	}
	return tableGrid{
		ID:    "fig8",
		Title: "Web traffic (Pareto 80KB transfers): total throughput of active flows",
		Unit:  "Mbps total",
		Rows:  rows,
		Cols:  columnLabels(cols),
		Config: func(r, c int) (network.Config, error) {
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    cols[c].kind,
				Flows:     webFlows(groups[r]),
			}, nil
		},
		Metric: func(_, _ int, res *network.Result) float64 { return totalTCP(res) },
	}.run(opt)
}
