package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// webFlows builds the §IV-D workload: ten short-transfer web connections
// per source/destination pair of the Fig. 1 topology (flows 1-10 between 0
// and 3, 11-20 between 0 and 4, 21-30 between 5 and 7), using the ROUTE0
// paths. nGroups selects how many of the three pair groups are active.
func webFlows(nGroups int) []network.FlowSpec {
	rs := routing.Route0()
	var flows []network.FlowSpec
	for g, p := range rs.Flows()[:nGroups] {
		for k := 0; k < 10; k++ {
			id := g*10 + k + 1
			flows = append(flows, network.FlowSpec{
				ID:    id,
				Path:  p,
				Kind:  network.Web,
				Start: sim.Time(k) * 20 * sim.Millisecond,
			})
		}
	}
	return flows
}

// Fig8 regenerates Fig. 8: total throughput of all active web flows on the
// Fig. 1 topology under DCF, AFR and RIPPLE.
func Fig8(opt Options) (*Table, error) {
	opt = opt.normalize()
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	tab := &Table{
		ID:    "fig8",
		Title: "Web traffic (Pareto 80KB transfers): total throughput of active flows",
		Unit:  "Mbps total",
	}
	for _, c := range loadColumns() {
		tab.Columns = append(tab.Columns, c.label)
	}
	for _, groups := range []int{1, 2, 3} {
		row := Row{Label: fmt.Sprintf("flows 1..%d", groups*10)}
		for _, c := range loadColumns() {
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    c.kind,
				Flows:     webFlows(groups),
			}
			res, err := runAvg(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s groups=%d: %w", c.label, groups, err)
			}
			row.Cells = append(row.Cells, totalTCP(res))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}
