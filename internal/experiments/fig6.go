package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// loadColumns are the three schemes compared in Figs. 6-8 and Table III.
func loadColumns() []schemeColumn {
	return []schemeColumn{
		{"DCF", network.DCF, false},
		{"AFR", network.AFR, false},
		{"RIPPLE", network.Ripple, false},
	}
}

// Fig6a regenerates Fig. 6(a): total throughput versus the number of
// parallel 3-hop TCP flows when every station is within carrier-sense range
// (regular collisions only). BER 1e-6.
func Fig6a(opt Options) (*Table, error) {
	opt = opt.normalize()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	tab := &Table{
		ID:    "fig6a",
		Title: "Regular collisions: total TCP throughput vs number of flows",
		Unit:  "Mbps total",
	}
	for _, c := range loadColumns() {
		tab.Columns = append(tab.Columns, c.label)
	}
	for _, n := range []int{1, 2, 4, 6, 8, 10} {
		top, paths := topology.Regular(n)
		row := Row{Label: fmt.Sprintf("%d flows", n)}
		for _, c := range loadColumns() {
			flows := make([]network.FlowSpec, 0, n)
			for i, p := range paths {
				flows = append(flows, network.FlowSpec{
					ID: i + 1, Path: p, Kind: network.FTP,
					Start: sim.Time(i) * 50 * sim.Millisecond,
				})
			}
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    c.kind,
				Flows:     flows,
			}
			res, err := runAvg(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("fig6a %s n=%d: %w", c.label, n, err)
			}
			row.Cells = append(row.Cells, totalTCP(res))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Fig6b regenerates Fig. 6(b): flow 1's throughput as 0-9 hidden saturated
// flows are added whose sources cannot be carrier-sensed by flow 1's source
// but do interfere at its forwarders and destination. BER 1e-6.
func Fig6b(opt Options) (*Table, error) {
	opt = opt.normalize()
	rc := topology.HiddenRadio()
	rc.BitErrorRate = 1e-6
	tab := &Table{
		ID:    "fig6b",
		Title: "Hidden collisions: flow-1 TCP throughput vs number of hidden flows",
		Unit:  "Mbps",
	}
	for _, c := range loadColumns() {
		tab.Columns = append(tab.Columns, c.label)
	}
	for n := 0; n <= 9; n++ {
		top, main, hidden := topology.Hidden(n)
		row := Row{Label: fmt.Sprintf("%d hidden", n)}
		for _, c := range loadColumns() {
			flows := []network.FlowSpec{{ID: 1, Path: main, Kind: network.FTP}}
			for i, p := range hidden {
				flows = append(flows, network.FlowSpec{
					ID: i + 2, Path: p, Kind: network.CBRTraffic,
					Start: 50 * sim.Millisecond,
				})
			}
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    c.kind,
				Flows:     flows,
			}
			res, err := runAvg(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("fig6b %s n=%d: %w", c.label, n, err)
			}
			row.Cells = append(row.Cells, res.Flows[0].ThroughputMbps)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}
