package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// loadColumns are the three schemes compared in Figs. 6-8 and Table III.
func loadColumns() []schemeColumn {
	return []schemeColumn{
		{"DCF", network.DCF, false},
		{"AFR", network.AFR, false},
		{"RIPPLE", network.Ripple, false},
	}
}

// Fig6a regenerates Fig. 6(a) as a (flow count × scheme) grid: total
// throughput versus the number of parallel 3-hop TCP flows when every
// station is within carrier-sense range (regular collisions only). BER 1e-6.
func Fig6a(opt Options) (*Table, error) {
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	cols := loadColumns()
	counts := []int{1, 2, 4, 6, 8, 10}
	rows := make([]string, len(counts))
	for i, n := range counts {
		rows[i] = fmt.Sprintf("%d flows", n)
	}
	return tableGrid{
		ID:    "fig6a",
		Title: "Regular collisions: total TCP throughput vs number of flows",
		Unit:  "Mbps total",
		Rows:  rows,
		Cols:  columnLabels(cols),
		Config: func(r, c int) (network.Config, error) {
			n := counts[r]
			top, paths := topology.Regular(n)
			flows := make([]network.FlowSpec, 0, n)
			for i, p := range paths {
				flows = append(flows, network.FlowSpec{
					ID: i + 1, Path: p, Kind: network.FTP,
					Start: sim.Time(i) * 50 * sim.Millisecond,
				})
			}
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    cols[c].kind,
				Flows:     flows,
			}, nil
		},
		Metric: func(_, _ int, res *network.Result) float64 { return totalTCP(res) },
	}.run(opt)
}

// Fig6b regenerates Fig. 6(b) as a (hidden count × scheme) grid: flow 1's
// throughput as 0-9 hidden saturated flows are added whose sources cannot
// be carrier-sensed by flow 1's source but do interfere at its forwarders
// and destination. BER 1e-6.
func Fig6b(opt Options) (*Table, error) {
	rc := topology.HiddenRadio()
	rc.BitErrorRate = 1e-6
	cols := loadColumns()
	rows := make([]string, 10)
	for n := range rows {
		rows[n] = fmt.Sprintf("%d hidden", n)
	}
	return tableGrid{
		ID:    "fig6b",
		Title: "Hidden collisions: flow-1 TCP throughput vs number of hidden flows",
		Unit:  "Mbps",
		Rows:  rows,
		Cols:  columnLabels(cols),
		Config: func(r, c int) (network.Config, error) {
			top, main, hidden := topology.Hidden(r)
			flows := []network.FlowSpec{{ID: 1, Path: main, Kind: network.FTP}}
			for i, p := range hidden {
				flows = append(flows, network.FlowSpec{
					ID: i + 2, Path: p, Kind: network.CBRTraffic,
					Start: 50 * sim.Millisecond,
				})
			}
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    cols[c].kind,
				Flows:     flows,
			}, nil
		},
		Metric: func(_, _ int, res *network.Result) float64 {
			return res.Flows[0].ThroughputMbps
		},
	}.run(opt)
}
