package experiments

import (
	"strings"
	"testing"

	"ripple/internal/routing"
	"ripple/internal/sim"
)

// quick2 is the test budget: one seed, short runs. Shape assertions below
// use wide margins accordingly.
func quick2() Options {
	return Options{Seeds: []uint64{1}, Duration: 1500 * sim.Millisecond}
}

func TestTableFormatAndCell(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T", Unit: "Mbps",
		Columns: []string{"A", "B"},
		Rows:    []Row{{Label: "r1", Cells: []float64{1.5, 2.5}}},
	}
	out := tab.Format()
	if !strings.Contains(out, "x — T (Mbps)") || !strings.Contains(out, "1.50") {
		t.Fatalf("Format output:\n%s", out)
	}
	if v, ok := tab.Cell("r1", "B"); !ok || v != 2.5 {
		t.Fatalf("Cell = %v,%v", v, ok)
	}
	if _, ok := tab.Cell("r1", "Z"); ok {
		t.Fatal("missing column must report !ok")
	}
	if _, ok := tab.Cell("zz", "A"); ok {
		t.Fatal("missing row must report !ok")
	}
}

// TestMotivationShape asserts §II's qualitative claims: preExOR and MCExOR
// reorder heavily (paper: 26.6% / 27.9%) while predetermined SPR does not,
// and MCExOR does not beat SPR.
func TestMotivationShape(t *testing.T) {
	tab, err := Motivation(quick2())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Format())
	sprTput, _ := tab.Cell("SPR", "Mbps")
	sprRe, _ := tab.Cell("SPR", "reorder %")
	preRe, _ := tab.Cell("preExOR", "reorder %")
	mcRe, _ := tab.Cell("MCExOR", "reorder %")
	mcTput, _ := tab.Cell("MCExOR", "Mbps")
	if sprRe > 3 {
		t.Errorf("SPR reorder = %.1f%%, want ≈0", sprRe)
	}
	if preRe < 10 || mcRe < 10 {
		t.Errorf("opportunistic reorder = %.1f%% / %.1f%%, want >10%% (paper ≈27%%)", preRe, mcRe)
	}
	if mcTput > sprTput*1.15 {
		t.Errorf("MCExOR (%.1f) should not beat SPR (%.1f) meaningfully", mcTput, sprTput)
	}
}

// TestFig3aShape asserts the Fig. 3(a) ordering for one flow on ROUTE0:
// S ≪ D ≤ R1 and A < R16, with R16 the overall winner (the paper's
// 100-300% gains).
func TestFig3aShape(t *testing.T) {
	tab, err := fig34("fig3a", routing.Route0(), 1e-6, quick2())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Format())
	row := "1 flow(s)"
	s, _ := tab.Cell(row, "S")
	d, _ := tab.Cell(row, "D")
	r1, _ := tab.Cell(row, "R1")
	a, _ := tab.Cell(row, "A")
	r16, _ := tab.Cell(row, "R16")
	if s > d/2 {
		t.Errorf("S (%.2f) should be far below D (%.2f): direct link is poor", s, d)
	}
	if r1 < d*0.9 {
		t.Errorf("R1 (%.2f) should be at least comparable to D (%.2f)", r1, d)
	}
	if r16 <= a {
		t.Errorf("R16 (%.2f) must beat A (%.2f)", r16, a)
	}
	if r16 < 2*d {
		t.Errorf("R16 (%.2f) should show ≥100%% gain over D (%.2f)", r16, d)
	}
}

// TestFig6aShape: total throughput must not grow as flows are added, and
// RIPPLE must stay on top.
func TestFig6aShape(t *testing.T) {
	opt := quick2()
	tab, err := Fig6a(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Format())
	r1, _ := tab.Cell("1 flows", "RIPPLE")
	r10, _ := tab.Cell("10 flows", "RIPPLE")
	d10, _ := tab.Cell("10 flows", "DCF")
	if r10 > r1*1.5 {
		t.Errorf("total throughput grew with contention: %.1f → %.1f", r1, r10)
	}
	if r10 < d10 {
		t.Errorf("RIPPLE (%.1f) below DCF (%.1f) at 10 flows", r10, d10)
	}
}

// TestTable3Shape: with 10 VoIP calls on a clear channel every scheme
// scores ≈4.1; RIPPLE must not be worse than DCF under load.
func TestTable3Shape(t *testing.T) {
	opt := Options{Seeds: []uint64{1}, Duration: 3 * sim.Second}
	tab, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Format())
	for _, scheme := range []string{"DCF", "AFR", "RIPPLE"} {
		v, ok := tab.Cell(scheme, "1e-06/1..10")
		if !ok {
			t.Fatalf("missing cell for %s", scheme)
		}
		if v < 3.5 || v > 4.5 {
			t.Errorf("%s unloaded MoS = %.2f, want ≈4.1", scheme, v)
		}
	}
	rip, _ := tab.Cell("RIPPLE", "1e-06/1..30")
	dcf, _ := tab.Cell("DCF", "1e-06/1..30")
	if rip < dcf-0.3 {
		t.Errorf("RIPPLE loaded MoS (%.2f) should not trail DCF (%.2f)", rip, dcf)
	}
}

// TestAllRunnersExist ensures every experiment is registered and named.
func TestAllRunnersExist(t *testing.T) {
	want := []string{"motivation", "fig3", "fig4", "fig6a", "fig6b", "fig7", "fig8", "table3", "fig10", "fig12"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("runners = %d, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Name != want[i] {
			t.Errorf("runner %d = %s, want %s", i, r.Name, want[i])
		}
		if r.Run == nil {
			t.Errorf("runner %s has nil func", r.Name)
		}
	}
}
