// Package experiments regenerates every table and figure of the paper's
// evaluation (§II motivation numbers, Figs. 3-8 and 10/12, Tables I-III).
// Each experiment is a declarative campaign grid (rows × columns × seeds)
// whose runs execute on the shared bounded worker pool; cells report the
// seed mean and, with multiple seeds, a 95% confidence half-width.
package experiments

import (
	"fmt"
	"strings"

	"ripple/internal/campaign"
	"ripple/internal/campaign/pool"
	"ripple/internal/network"
	"ripple/internal/sim"
)

// Options controls experiment execution.
type Options struct {
	// Seeds to average over (paper: "averages over multiple runs").
	Seeds []uint64
	// Duration of each run (Table I: 10 s).
	Duration sim.Time
	// Pool schedules the grid's runs (nil = the shared GOMAXPROCS pool).
	Pool *pool.Pool
	// Progress, when non-nil, is called after each completed run of an
	// experiment's grid with (done, total). Calls are serialized.
	Progress func(done, total int)
	// PruneSigma, when non-nil, overrides radio.Config.PruneSigma in every
	// scenario of every experiment (0 forces the exact, unpruned medium —
	// the byte-identical regression baseline; nil keeps each scenario's
	// profile default).
	PruneSigma *float64
	// RunGrid, when non-nil, replaces in-process grid execution: every
	// driver routes its campaign grid through this hook instead of calling
	// Grid.Run. The distributed layer supplies both sides: a coordinator
	// hook farms the grid out to workers and returns the assembled result;
	// a worker hook executes leased cells, streams them back and returns
	// (nil, nil) — the driver then emits a zero-valued table of the right
	// shape without touching any metric (worker output is discarded; the
	// protocol stream is the real product).
	RunGrid func(g *campaign.Grid) (*campaign.Result, error)
}

// Defaults returns the paper's settings: 10-second runs over three seeds.
func Defaults() Options {
	return Options{Seeds: []uint64{1, 2, 3}, Duration: 10 * sim.Second}
}

// Quick returns reduced settings for tests and iteration: one seed, 2 s.
func Quick() Options {
	return Options{Seeds: []uint64{1}, Duration: 2 * sim.Second}
}

func (o Options) normalize() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if o.Duration == 0 {
		o.Duration = 10 * sim.Second
	}
	return o
}

// Table is one regenerated figure or table.
type Table struct {
	ID      string // e.g. "fig3a"
	Title   string
	Unit    string
	Columns []string
	Rows    []Row
}

// Row is one line of a Table.
type Row struct {
	Label string
	Cells []float64
	// CIs holds the per-cell 95% confidence half-widths (same indexing as
	// Cells); nil when the table was produced from a single seed.
	CIs []float64
}

// Format renders the table as aligned text. Cells of multi-seed tables
// print as "mean ±ci95".
func (t *Table) Format() string {
	hasCI := false
	for _, r := range t.Rows {
		if len(r.CIs) > 0 {
			hasCI = true
			break
		}
	}
	width := 12
	if hasCI {
		width = 18
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " (%s)", t.Unit)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s", r.Label)
		for i, v := range r.Cells {
			if i < len(r.CIs) {
				fmt.Fprintf(&b, "%*s", width, fmt.Sprintf("%.2f ±%.2f", v, r.CIs[i]))
			} else {
				fmt.Fprintf(&b, "%*.2f", width, v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MetricUnit returns the table's unit as a benchmark-metric-safe token
// (lowercase, no spaces), e.g. "Mbps total" → "mbps_total".
func (t *Table) MetricUnit() string {
	u := strings.ToLower(t.Unit)
	u = strings.ReplaceAll(u, " ", "_")
	u = strings.ReplaceAll(u, "(", "")
	u = strings.ReplaceAll(u, ")", "")
	if u == "" {
		u = "value"
	}
	return u
}

// Cell returns the value at (rowLabel, column), with ok=false when absent.
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && ci < len(r.Cells) {
			return r.Cells[ci], true
		}
	}
	return 0, false
}

// totalTCP sums throughput over all TCP flows in a result.
func totalTCP(res *network.Result) float64 {
	var sum float64
	for _, f := range res.Flows {
		if f.Kind == network.FTP || f.Kind == network.Web {
			sum += f.ThroughputMbps
		}
	}
	return sum
}

// Runner is a named experiment.
type Runner struct {
	Name string
	Run  func(Options) ([]*Table, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"motivation", func(o Options) ([]*Table, error) { t, err := Motivation(o); return wrap(t, err) }},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig6a", func(o Options) ([]*Table, error) { t, err := Fig6a(o); return wrap(t, err) }},
		{"fig6b", func(o Options) ([]*Table, error) { t, err := Fig6b(o); return wrap(t, err) }},
		{"fig7", Fig7},
		{"fig8", func(o Options) ([]*Table, error) { t, err := Fig8(o); return wrap(t, err) }},
		{"table3", func(o Options) ([]*Table, error) { t, err := Table3(o); return wrap(t, err) }},
		{"fig10", Fig10},
		{"fig12", Fig12},
	}
}

func wrap(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}
