// Package experiments regenerates every table and figure of the paper's
// evaluation (§II motivation numbers, Figs. 3-8 and 10/12, Tables I-III).
// Each experiment builds network.Config scenarios, runs them over several
// seeds (concurrently), and returns a formatted Table whose rows mirror
// what the paper plots.
package experiments

import (
	"fmt"
	"strings"

	"ripple/internal/network"
	"ripple/internal/sim"
)

// Options controls experiment execution.
type Options struct {
	// Seeds to average over (paper: "averages over multiple runs").
	Seeds []uint64
	// Duration of each run (Table I: 10 s).
	Duration sim.Time
}

// Defaults returns the paper's settings: 10-second runs over three seeds.
func Defaults() Options {
	return Options{Seeds: []uint64{1, 2, 3}, Duration: 10 * sim.Second}
}

// Quick returns reduced settings for tests and iteration: one seed, 2 s.
func Quick() Options {
	return Options{Seeds: []uint64{1}, Duration: 2 * sim.Second}
}

func (o Options) normalize() Options {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if o.Duration == 0 {
		o.Duration = 10 * sim.Second
	}
	return o
}

// Table is one regenerated figure or table.
type Table struct {
	ID      string // e.g. "fig3a"
	Title   string
	Unit    string
	Columns []string
	Rows    []Row
}

// Row is one line of a Table.
type Row struct {
	Label string
	Cells []float64
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(&b, " (%s)", t.Unit)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s", r.Label)
		for _, v := range r.Cells {
			fmt.Fprintf(&b, "%12.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MetricUnit returns the table's unit as a benchmark-metric-safe token
// (lowercase, no spaces), e.g. "Mbps total" → "mbps_total".
func (t *Table) MetricUnit() string {
	u := strings.ToLower(t.Unit)
	u = strings.ReplaceAll(u, " ", "_")
	u = strings.ReplaceAll(u, "(", "")
	u = strings.ReplaceAll(u, ")", "")
	if u == "" {
		u = "value"
	}
	return u
}

// Cell returns the value at (rowLabel, column), with ok=false when absent.
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && ci < len(r.Cells) {
			return r.Cells[ci], true
		}
	}
	return 0, false
}

// runAvg executes a scenario over the option seeds and returns the
// seed-averaged result.
func runAvg(cfg network.Config, opt Options) (*network.Result, error) {
	cfg.Duration = opt.Duration
	_, avg, err := network.RunSeeds(cfg, opt.Seeds)
	return avg, err
}

// totalTCP sums throughput over all TCP flows in a result.
func totalTCP(res *network.Result) float64 {
	var sum float64
	for _, f := range res.Flows {
		if f.Kind == network.FTP || f.Kind == network.Web {
			sum += f.ThroughputMbps
		}
	}
	return sum
}

// Runner is a named experiment.
type Runner struct {
	Name string
	Run  func(Options) ([]*Table, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"motivation", func(o Options) ([]*Table, error) { t, err := Motivation(o); return wrap(t, err) }},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig6a", func(o Options) ([]*Table, error) { t, err := Fig6a(o); return wrap(t, err) }},
		{"fig6b", func(o Options) ([]*Table, error) { t, err := Fig6b(o); return wrap(t, err) }},
		{"fig7", Fig7},
		{"fig8", func(o Options) ([]*Table, error) { t, err := Fig8(o); return wrap(t, err) }},
		{"table3", func(o Options) ([]*Table, error) { t, err := Table3(o); return wrap(t, err) }},
		{"fig10", Fig10},
		{"fig12", Fig12},
	}
}

func wrap(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}
