package experiments

import (
	"testing"

	"ripple/internal/sim"
)

// The ablation shape tests assert the directional claims EXPERIMENTS.md
// records, under the quick budget.

func TestAblationAggLimitMonotone(t *testing.T) {
	tab, err := AblationAggLimit(quick2())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Format())
	prev := 0.0
	for i, r := range tab.Rows {
		v := r.Cells[0]
		if i > 0 && v < prev*0.85 {
			t.Errorf("throughput dropped sharply at %s: %.1f after %.1f", r.Label, v, prev)
		}
		prev = v
	}
	first, last := tab.Rows[0].Cells[0], tab.Rows[len(tab.Rows)-1].Cells[0]
	if last < 3*first {
		t.Errorf("aggregation should multiply throughput: %.1f → %.1f", first, last)
	}
}

func TestAblationRqPreventsReordering(t *testing.T) {
	tab, err := AblationRq(quick2())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Format())
	onRe, _ := tab.Cell("Rq on", "reorder %")
	offRe, _ := tab.Cell("Rq off", "reorder %")
	if onRe > 1 {
		t.Errorf("Rq on: reorder = %.2f%%, want ≈0", onRe)
	}
	if offRe < 5 {
		t.Errorf("Rq off: reorder = %.2f%%, want substantial (Remark 6)", offRe)
	}
	onT, _ := tab.Cell("Rq on", "Mbps")
	offT, _ := tab.Cell("Rq off", "Mbps")
	if onT <= offT {
		t.Errorf("Rq must help TCP: on %.1f vs off %.1f", onT, offT)
	}
}

func TestAblationTwoWayMatters(t *testing.T) {
	tab, err := AblationTwoWay(quick2())
	if err != nil {
		t.Fatal(err)
	}
	two, _ := tab.Cell("two-way", "R")
	one, _ := tab.Cell("one-way", "R")
	if two < 2*one {
		t.Errorf("two-way aggregation should dominate: %.1f vs %.1f", two, one)
	}
}

func TestAblationDeferBeatsStrict(t *testing.T) {
	opt := Options{Seeds: []uint64{1}, Duration: 2 * sim.Second}
	tab, err := AblationRelayDefer(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Format())
	d, _ := tab.Cell("4 hidden", "defer")
	s, _ := tab.Cell("4 hidden", "strict")
	if d < 2*s {
		t.Errorf("deferral should far outperform strict under interference: %.2f vs %.2f", d, s)
	}
	// Without interference the two variants must be close.
	d0, _ := tab.Cell("0 hidden", "defer")
	s0, _ := tab.Cell("0 hidden", "strict")
	if d0 < s0*0.8 || d0 > s0*1.2 {
		t.Errorf("defer/strict should tie on a quiet channel: %.1f vs %.1f", d0, s0)
	}
}

func TestAblationMultiRateHelps(t *testing.T) {
	tab, err := AblationMultiRate(quick2())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"DCF", "RIPPLE"} {
		fixed, _ := tab.Cell("fixed 6 Mbps", col)
		multi, _ := tab.Cell("multi-rate", col)
		if multi < fixed*1.5 {
			t.Errorf("%s: multi-rate %.2f vs fixed %.2f, want ≥1.5×", col, multi, fixed)
		}
	}
}

func TestAblationETXRoutesRun(t *testing.T) {
	tab, err := AblationETXRoutes(quick2())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Format())
	if len(tab.Rows) != 2 || len(tab.Rows[0].Cells) != 2 {
		t.Fatalf("unexpected table shape: %+v", tab)
	}
	for _, r := range tab.Rows {
		for i, v := range r.Cells {
			if v <= 0 {
				t.Errorf("%s/%s delivered nothing", r.Label, tab.Columns[i])
			}
		}
	}
}

func TestAblationsRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, r := range Ablations() {
		if names[r.Name] {
			t.Errorf("duplicate ablation %s", r.Name)
		}
		names[r.Name] = true
		if r.Run == nil {
			t.Errorf("ablation %s has nil runner", r.Name)
		}
	}
	for _, want := range []string{"ablation-agg", "ablation-fwd", "ablation-rq",
		"ablation-twoway", "ablation-defer", "ablation-multirate", "ablation-rts", "ablation-etx"} {
		if !names[want] {
			t.Errorf("missing ablation %s", want)
		}
	}
}
