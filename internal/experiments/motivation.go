package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/topology"
)

// Motivation regenerates the §II numbers: a single long-lived TCP flow from
// station 0 to station 3 on the Fig. 1 topology (BER 1e-6) under shortest
// path routing, preExOR and MCExOR. The paper reports 6.7, 5.9 and
// 5.85 Mbps with 26.58% / 27.9% reordered packets for the opportunistic
// schemes — the motivation for RIPPLE's no-reordering design.
func Motivation(opt Options) (*Table, error) {
	opt = opt.normalize()
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	path := routing.Route0().Flow1

	schemes := []struct {
		label string
		kind  network.SchemeKind
	}{
		{"SPR", network.DCF},
		{"preExOR", network.PreExOR},
		{"MCExOR", network.MCExOR},
	}
	tab := &Table{
		ID:      "motivation",
		Title:   "§II: single TCP flow 0→3, throughput and reordering",
		Columns: []string{"Mbps", "reorder %"},
	}
	for _, s := range schemes {
		cfg := network.Config{
			Positions: top.Positions,
			Radio:     rc,
			Scheme:    s.kind,
			Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
		}
		res, err := runAvg(cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("motivation %s: %w", s.label, err)
		}
		tab.Rows = append(tab.Rows, Row{
			Label: s.label,
			Cells: []float64{res.Flows[0].ThroughputMbps, 100 * res.Flows[0].ReorderRate},
		})
	}
	return tab, nil
}
