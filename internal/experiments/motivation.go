package experiments

import (
	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/topology"
)

// Motivation regenerates the §II numbers as a per-row grid (the columns
// are metrics of the same run): a single long-lived TCP flow from station
// 0 to station 3 on the Fig. 1 topology (BER 1e-6) under shortest path
// routing, preExOR and MCExOR. The paper reports 6.7, 5.9 and 5.85 Mbps
// with 26.58% / 27.9% reordered packets for the opportunistic schemes —
// the motivation for RIPPLE's no-reordering design.
func Motivation(opt Options) (*Table, error) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	path := routing.Route0().Flow1
	schemes := []schemeColumn{
		{"SPR", network.DCF, false},
		{"preExOR", network.PreExOR, false},
		{"MCExOR", network.MCExOR, false},
	}
	return tableGrid{
		ID:     "motivation",
		Title:  "§II: single TCP flow 0→3, throughput and reordering",
		Rows:   columnLabels(schemes),
		Cols:   []string{"Mbps", "reorder %"},
		PerRow: true,
		Config: func(r, _ int) (network.Config, error) {
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    schemes[r].kind,
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
			}, nil
		},
		Metric: func(_, c int, res *network.Result) float64 {
			if c == 0 {
				return res.Flows[0].ThroughputMbps
			}
			return 100 * res.Flows[0].ReorderRate
		},
	}.run(opt)
}
