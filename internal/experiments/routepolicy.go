package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// AblationRoutePolicy sweeps the route policy × forwarder-count grid the
// related work asks about: ETX (De Couto et al.) against ORCD-style
// congestion diversity (Bhorkar et al.) across forwarder-list sizes
// (Blomer & Jindal), on the Fig. 1 topology with RIPPLE forwarding. The
// mix makes the policies disagree: VoIP 0→3 transits station 1 on its
// minimum-ETX route while a hotspot FTP transfer *originates at* station
// 1, so congestion diversity diverts the call through station 2. K=0
// leaves routes unsized (the policy's own length).
func AblationRoutePolicy(opt Options) (*Table, error) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6

	kinds := []network.RoutePolicyKind{network.RouteETX, network.RouteCongestion}
	ks := []int{0, 1, 2, 3}
	rows := make([]string, len(kinds))
	for i, k := range kinds {
		rows[i] = k.String()
	}
	cols := make([]string, len(ks))
	for i, k := range ks {
		if k == 0 {
			cols[i] = "K=free"
		} else {
			cols[i] = fmt.Sprintf("K=%d", k)
		}
	}
	return tableGrid{
		ID:    "ablation-routepolicy",
		Title: "Route policy × forwarder count, VoIP+2 FTP on Fig.1, RIPPLE",
		Unit:  "Mbps total",
		Rows:  rows,
		Cols:  cols,
		Config: func(r, c int) (network.Config, error) {
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    network.Ripple,
				Routing:   network.RoutingSpec{Kind: kinds[r], K: ks[c]},
				Flows: []network.FlowSpec{
					{ID: 1, Path: routing.Path{0, 1, 3}, Kind: network.VoIPTraffic},
					{ID: 2, Path: routing.Path{0, 2, 4}, Kind: network.FTP,
						Start: 100 * sim.Millisecond},
					{ID: 3, Path: routing.Path{1, 7}, Kind: network.FTP,
						Start: 200 * sim.Millisecond},
				},
			}, nil
		},
		Metric: func(_, _ int, res *network.Result) float64 { return res.TotalMbps },
	}.run(opt)
}
