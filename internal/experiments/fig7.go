package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// Fig7 regenerates Fig. 7: a single long-lived TCP flow over a line
// topology of 2-7 hops, (a) alone and (b) with a 3-hop cross flow
// intersecting the line at its middle station. Up to 7 hops means up to 6
// forwarders, so the forwarder cap is raised to 7 as in §IV-C. BER 1e-6.
func Fig7(opt Options) ([]*Table, error) {
	opt = opt.normalize()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6

	mk := func(id, title string, withCross bool) (*Table, error) {
		tab := &Table{ID: id, Title: title, Unit: "Mbps (main flow)"}
		for _, c := range loadColumns() {
			tab.Columns = append(tab.Columns, c.label)
		}
		for hops := 2; hops <= 7; hops++ {
			row := Row{Label: fmt.Sprintf("%d hops", hops)}
			for _, c := range loadColumns() {
				var cfg network.Config
				if withCross {
					top, main, cross := topology.LineWithCross(hops)
					cfg = network.Config{
						Positions: top.Positions,
						Flows: []network.FlowSpec{
							{ID: 1, Path: main, Kind: network.FTP},
							{ID: 2, Path: cross, Kind: network.FTP, Start: 50 * sim.Millisecond},
						},
					}
				} else {
					top, main := topology.Line(hops)
					cfg = network.Config{
						Positions: top.Positions,
						Flows:     []network.FlowSpec{{ID: 1, Path: main, Kind: network.FTP}},
					}
				}
				cfg.Radio = rc
				cfg.Scheme = c.kind
				cfg.MaxForwarders = 7
				res, err := runAvg(cfg, opt)
				if err != nil {
					return nil, fmt.Errorf("%s %s hops=%d: %w", id, c.label, hops, err)
				}
				row.Cells = append(row.Cells, res.Flows[0].ThroughputMbps)
			}
			tab.Rows = append(tab.Rows, row)
		}
		return tab, nil
	}

	a, err := mk("fig7a", "Line topology 2-7 hops, no cross traffic", false)
	if err != nil {
		return nil, err
	}
	b, err := mk("fig7b", "Line topology 2-7 hops, with 3-hop cross flow", true)
	if err != nil {
		return nil, err
	}
	return []*Table{a, b}, nil
}
