package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// Fig7 regenerates Fig. 7 as two (hop count × scheme) grids: a single
// long-lived TCP flow over a line topology of 2-7 hops, (a) alone and (b)
// with a 3-hop cross flow intersecting the line at its middle station. Up
// to 7 hops means up to 6 forwarders, so the forwarder cap is raised to 7
// as in §IV-C. BER 1e-6.
func Fig7(opt Options) ([]*Table, error) {
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	cols := loadColumns()
	rows := make([]string, 0, 6)
	for hops := 2; hops <= 7; hops++ {
		rows = append(rows, fmt.Sprintf("%d hops", hops))
	}

	mk := func(id, title string, withCross bool) (*Table, error) {
		return tableGrid{
			ID: id, Title: title, Unit: "Mbps (main flow)",
			Rows: rows,
			Cols: columnLabels(cols),
			Config: func(r, c int) (network.Config, error) {
				hops := r + 2
				var cfg network.Config
				if withCross {
					top, main, cross := topology.LineWithCross(hops)
					cfg = network.Config{
						Positions: top.Positions,
						Flows: []network.FlowSpec{
							{ID: 1, Path: main, Kind: network.FTP},
							{ID: 2, Path: cross, Kind: network.FTP, Start: 50 * sim.Millisecond},
						},
					}
				} else {
					top, main := topology.Line(hops)
					cfg = network.Config{
						Positions: top.Positions,
						Flows:     []network.FlowSpec{{ID: 1, Path: main, Kind: network.FTP}},
					}
				}
				cfg.Radio = rc
				cfg.Scheme = cols[c].kind
				cfg.MaxForwarders = 7
				return cfg, nil
			},
			Metric: func(_, _ int, res *network.Result) float64 {
				return res.Flows[0].ThroughputMbps
			},
		}.run(opt)
	}

	a, err := mk("fig7a", "Line topology 2-7 hops, no cross traffic", false)
	if err != nil {
		return nil, err
	}
	b, err := mk("fig7b", "Line topology 2-7 hops, with 3-hop cross flow", true)
	if err != nil {
		return nil, err
	}
	return []*Table{a, b}, nil
}
