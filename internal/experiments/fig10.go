package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// Fig10 regenerates Fig. 10: per-flow TCP throughput for eight station
// pairs of the Wigle topology, at 6 and 216 Mbps PHY rates, with and
// without the hidden S→R TCP flow. Each station pair runs on its own, as in
// the paper's per-flow bars.
func Fig10(opt Options) ([]*Table, error) {
	opt = opt.normalize()
	top, flows, hiddenPath := topology.Wigle()

	variant := func(id string, lowRate, hidden bool) (*Table, error) {
		title := "Wigle topology per-flow TCP throughput, "
		if lowRate {
			title += "6 Mbps"
		} else {
			title += "216 Mbps"
		}
		if hidden {
			title += ", with hidden terminals"
		}
		tab := &Table{ID: id, Title: title, Unit: "Mbps"}
		for _, c := range loadColumns() {
			tab.Columns = append(tab.Columns, c.label)
		}
		rc := topology.HiddenRadio()
		rc.BitErrorRate = 1e-6
		for _, p := range flows {
			row := Row{Label: topology.WigleFlowLabel(p)}
			for _, c := range loadColumns() {
				specs := []network.FlowSpec{{ID: 1, Path: p, Kind: network.FTP}}
				if hidden {
					specs = append(specs, network.FlowSpec{
						ID: 2, Path: hiddenPath, Kind: network.FTP,
						Start: 30 * sim.Millisecond,
					})
				}
				cfg := network.Config{
					Positions: top.Positions,
					Radio:     rc,
					Scheme:    c.kind,
					Flows:     specs,
				}
				if lowRate {
					cfg.Phy = phys.LowRate()
				}
				res, err := runAvg(cfg, opt)
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", id, c.label, row.Label, err)
				}
				row.Cells = append(row.Cells, res.Flows[0].ThroughputMbps)
			}
			tab.Rows = append(tab.Rows, row)
		}
		return tab, nil
	}

	var out []*Table
	for _, v := range []struct {
		id      string
		lowRate bool
		hidden  bool
	}{
		{"fig10a", true, false},
		{"fig10b", true, true},
		{"fig10c", false, false},
		{"fig10d", false, true},
	} {
		t, err := variant(v.id, v.lowRate, v.hidden)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
