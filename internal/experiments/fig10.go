package experiments

import (
	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// Fig10 regenerates Fig. 10 as four (station pair × scheme) grids:
// per-flow TCP throughput for eight station pairs of the Wigle topology,
// at 6 and 216 Mbps PHY rates, with and without the hidden S→R TCP flow.
// Each station pair runs on its own, as in the paper's per-flow bars.
func Fig10(opt Options) ([]*Table, error) {
	top, flows, hiddenPath := topology.Wigle()
	cols := loadColumns()
	rows := make([]string, len(flows))
	for i, p := range flows {
		rows[i] = topology.WigleFlowLabel(p)
	}

	variant := func(id string, lowRate, hidden bool) (*Table, error) {
		title := "Wigle topology per-flow TCP throughput, "
		if lowRate {
			title += "6 Mbps"
		} else {
			title += "216 Mbps"
		}
		if hidden {
			title += ", with hidden terminals"
		}
		rc := topology.HiddenRadio()
		rc.BitErrorRate = 1e-6
		return tableGrid{
			ID: id, Title: title, Unit: "Mbps",
			Rows: rows,
			Cols: columnLabels(cols),
			Config: func(r, c int) (network.Config, error) {
				specs := []network.FlowSpec{{ID: 1, Path: flows[r], Kind: network.FTP}}
				if hidden {
					specs = append(specs, network.FlowSpec{
						ID: 2, Path: hiddenPath, Kind: network.FTP,
						Start: 30 * sim.Millisecond,
					})
				}
				cfg := network.Config{
					Positions: top.Positions,
					Radio:     rc,
					Scheme:    cols[c].kind,
					Flows:     specs,
				}
				if lowRate {
					cfg.Phy = phys.LowRate()
				}
				return cfg, nil
			},
			Metric: func(_, _ int, res *network.Result) float64 {
				return res.Flows[0].ThroughputMbps
			},
		}.run(opt)
	}

	var out []*Table
	for _, v := range []struct {
		id      string
		lowRate bool
		hidden  bool
	}{
		{"fig10a", true, false},
		{"fig10b", true, true},
		{"fig10c", false, false},
		{"fig10d", false, true},
	} {
		t, err := variant(v.id, v.lowRate, v.hidden)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
