package experiments

import (
	"ripple/internal/fault"
	"ripple/internal/network"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// AblationResilience sweeps the station failure rate against the route
// policies that can react to it: relays crash and recover under
// exponential churn (flow endpoints are exempt) while minimum-ETX,
// congestion-diversity and geographic routing re-route around the holes
// each epoch, with failure-driven forwarder blacklisting and
// unreachable-destination drops active throughout. Paced (non-saturating)
// CBR flows make delivery ratio the honest headline metric: every offered
// packet either arrives or was lost to the outage. Three tables come
// back: delivery ratio on a 5-hop line whose every relay is a cut vertex
// (delivery tracks the connected fraction of the run), delivery ratio on
// the pruned 60-station city (the sparse incremental epoch rebuild under
// fault masking, where rerouting can actually save packets), and mean
// delivery delay on the line. Delivery falls monotonically as MTBF
// shrinks for every policy; how fast it falls is the policy comparison.
func AblationResilience(opt Options) ([]*Table, error) {
	pols := []network.RoutePolicyKind{
		network.RouteETX, network.RouteCongestion, network.RouteGeo,
	}
	cols := make([]string, len(pols))
	for i, p := range pols {
		cols[i] = p.String()
	}
	// Station churn severity: mean up-time per relay, ∞ (no faults) first
	// so the control row is byte-identical to a fault-free run. MTBF is per
	// station, so the city rows use proportionally longer up-times — 56
	// stations churn there versus 4 on Fig. 1 — keeping the expected number
	// of concurrent holes comparable instead of saturating the sparse grid.
	// A 100 ms fault epoch keeps the post-crash reroute lag small, so the
	// curves measure outage fraction rather than reroute blindness.
	churn := func(mtbf sim.Time) fault.Spec {
		if mtbf == 0 {
			return fault.Spec{}
		}
		return fault.Spec{MTBF: mtbf, MTTR: 2 * sim.Second, Epoch: 100 * sim.Millisecond}
	}
	mtbfs := []sim.Time{0, 30 * sim.Second, 10 * sim.Second, 5 * sim.Second}
	rows := []string{"none", "mtbf 30s", "mtbf 10s", "mtbf 5s"}
	cityMtbfs := []sim.Time{0, 4 * sim.Second, 2 * sim.Second, 1 * sim.Second}
	cityRows := []string{"none", "mtbf 4s", "mtbf 2s", "mtbf 1s"}

	// Line arena: a single paced flow over a 5-hop line, where every relay
	// is a cut vertex — a crashed relay genuinely severs the flow, so the
	// delivered fraction tracks the connected fraction of the run. Denser
	// arenas (Fig. 1 included) never disconnect under any churn rate:
	// opportunistic forwarding finds whoever is still alive and delivery
	// barely moves. A sharpened radio (3 dB shadowing, decode threshold at
	// 150 m) makes adjacent 100 m links near-perfect while a 2-hop skip
	// (200 m) falls far below the route table's 0.1 usable-link floor, so
	// every policy (greedy-geographic included) routes strictly hop by hop
	// and a dead relay means a real outage, not a lucky long shot. Five
	// hops, not more: four interior relays is exactly the paper's forwarder
	// cap (Remark 4), so the mTXOP forwarder list still covers the whole
	// path — a longer line would be silently down-sampled to skip hops the
	// sharpened radio cannot carry.
	line, linePath := topology.Line(5)
	lineRadio := radio.DefaultConfig()
	lineRadio.ShadowSigmaDB = 3
	lineRadio.RXThreshDBm = lineRadio.MeanRxPowerDBm(150)
	lineRadio.CSThreshDBm = lineRadio.RXThreshDBm - 13
	lineFlows := []network.FlowSpec{
		{ID: 1, Path: linePath, Kind: network.CBRTraffic,
			CBRInterval: 20 * sim.Millisecond, CBRPacketBytes: 1000},
	}

	// City arena: the mobility ablation's layout — two multi-hop paced CBR
	// flows on distinct rows of a pruned 60-station grid.
	city, p := topology.CityN(60, 3)
	cityRadio := topology.CityRadio()
	span := 3
	if span > p.Cols-1 {
		span = p.Cols - 1
	}
	cityFlows := make([]network.FlowSpec, 2)
	for i := range cityFlows {
		gr := (i * p.Rows) / 2
		sc := (i * 3) % (p.Cols - span)
		src := pkt.NodeID(gr*p.Cols + sc)
		dst := pkt.NodeID(gr*p.Cols + sc + span)
		cityFlows[i] = network.FlowSpec{
			ID:             i + 1,
			Path:           routing.Path{src, dst},
			Kind:           network.CBRTraffic,
			CBRInterval:    20 * sim.Millisecond,
			CBRPacketBytes: 1000,
			Start:          sim.Time(i) * 50 * sim.Millisecond,
		}
	}

	// deliveryRatio divides delivered packets by the offered count each
	// paced flow generates over the run.
	deliveryRatio := func(flows []network.FlowSpec) func(int, int, *network.Result) float64 {
		return func(_, _ int, res *network.Result) float64 {
			var delivered, offered float64
			for i, fr := range res.Flows {
				delivered += float64(fr.PktsDelivered)
				// Emissions at Start, Start+I, … strictly before Duration.
				span, iv := res.Duration-flows[i].Start, flows[i].CBRInterval
				offered += float64((span + iv - 1) / iv)
			}
			if offered == 0 {
				return 0
			}
			return 100 * delivered / offered
		}
	}

	fig1Tab, err := tableGrid{
		ID:    "ablation-resilience",
		Title: "Station failure rate × route policy, 1 paced CBR on a 5-hop line, RIPPLE",
		Unit:  "delivery %",
		Rows:  rows,
		Cols:  cols,
		Config: func(r, c int) (network.Config, error) {
			return network.Config{
				Positions: line.Positions,
				Radio:     lineRadio,
				Scheme:    network.Ripple,
				Routing:   network.RoutingSpec{Kind: pols[c]},
				Faults:    churn(mtbfs[r]),
				Flows:     lineFlows,
			}, nil
		},
		Metric: deliveryRatio(lineFlows),
	}.run(opt)
	if err != nil {
		return nil, err
	}

	cityTab, err := tableGrid{
		ID:    "ablation-resilience-city",
		Title: "Station failure rate × route policy, 2 paced CBR on 60-station city, RIPPLE",
		Unit:  "delivery %",
		Rows:  cityRows,
		Cols:  cols,
		Config: func(r, c int) (network.Config, error) {
			return network.Config{
				Positions: city.Positions,
				Radio:     cityRadio,
				Scheme:    network.Ripple,
				Routing:   network.RoutingSpec{Kind: pols[c]},
				Faults:    churn(cityMtbfs[r]),
				Flows:     cityFlows,
			}, nil
		},
		Metric: deliveryRatio(cityFlows),
	}.run(opt)
	if err != nil {
		return nil, err
	}

	delayTab, err := tableGrid{
		ID:    "ablation-resilience-delay",
		Title: "Delivery delay under station churn, 1 paced CBR on a 5-hop line, RIPPLE",
		Unit:  "ms mean",
		Rows:  rows,
		Cols:  cols,
		Config: func(r, c int) (network.Config, error) {
			return network.Config{
				Positions: line.Positions,
				Radio:     lineRadio,
				Scheme:    network.Ripple,
				Routing:   network.RoutingSpec{Kind: pols[c]},
				Faults:    churn(mtbfs[r]),
				Flows:     lineFlows,
			}, nil
		},
		Metric: func(_, _ int, res *network.Result) float64 {
			var sum float64
			var n int
			for _, fr := range res.Flows {
				if fr.PktsDelivered > 0 {
					sum += fr.MeanDelay.Milliseconds()
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		},
	}.run(opt)
	if err != nil {
		return nil, err
	}
	return []*Table{fig1Tab, cityTab, delayTab}, nil
}
