package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/pkt"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// Scaling is the city-scale sweep the sparse world path exists for: CBR
// meshes on jittered block-grid cities from 1 000 to 20 000 stations, ETX
// routing over the sparse link table. It is not a figure from the paper —
// the paper's scenarios stop at tens of stations — but the regime its
// scaling arguments (and the related Parallel Opportunistic Routing
// literature) speak to. Each row is one world; the columns are metrics of
// that single run, so the table doubles as an end-to-end exercise of
// sparse world construction at every N.
//
// Not in All(): a 20k-station row costs minutes, not seconds, and would
// dominate every default regeneration. cmd/experiments exposes it behind
// the -scaling flag.
func Scaling(opt Options) (*Table, error) {
	sizes := []int{1000, 2000, 5000, 10000, 20000}
	rows := make([]string, len(sizes))
	for i, n := range sizes {
		rows[i] = fmt.Sprintf("N=%d", n)
	}
	// City runs meter steady-state forwarding, not long-run averages: per
	// second each CBR source emits only 50 packets, so 1 s already gives
	// every flow hundreds of delivery samples while keeping the 20k row
	// tractable. Longer -dur values are therefore capped here.
	opt = opt.normalize()
	if opt.Duration > sim.Second {
		opt.Duration = sim.Second
	}
	return tableGrid{
		ID:     "scaling",
		Title:  "City-scale CBR mesh sweep (jittered block grid, sparse ETX routing)",
		Rows:   rows,
		Cols:   []string{"Mbps total", "delay ms", "delivered"},
		PerRow: true,
		Config: func(r, _ int) (network.Config, error) {
			return cityConfig(sizes[r])
		},
		Metric: func(_, c int, res *network.Result) float64 {
			switch c {
			case 0:
				return res.TotalMbps
			case 1:
				var sum float64
				for _, f := range res.Flows {
					sum += float64(f.MeanDelay.Milliseconds())
				}
				return sum / float64(len(res.Flows))
			default:
				var sum float64
				for _, f := range res.Flows {
					sum += float64(f.PktsDelivered)
				}
				return sum
			}
		},
	}.run(opt)
}

// cityConfig builds the scaling scenario for one city size: an n-station
// jittered block grid under the city radio profile (PruneSigma 3), RIPPLE
// forwarding, ETX routes resolved from endpoint pairs, and one paced CBR
// flow per ~500 stations so offered load grows with the city instead of
// saturating it.
func cityConfig(n int) (network.Config, error) {
	top, p := topology.CityN(n, 7)
	nFlows := n / 500
	if nFlows < 4 {
		nFlows = 4
	}
	span := 5 // ≈5 blocks ≈ 750 m: a genuinely multi-hop route
	if span > p.Cols-1 {
		span = p.Cols - 1
	}
	flows := make([]network.FlowSpec, nFlows)
	for i := range flows {
		// Spread sources over distinct grid rows and stagger the columns so
		// the flows tile the city instead of piling onto one corridor. The
		// layout is a pure function of (n, i) — rerunning a row is
		// deterministic.
		gr := (i * p.Rows) / nFlows
		sc := (i * 3) % (p.Cols - span)
		src := pkt.NodeID(gr*p.Cols + sc)
		dst := pkt.NodeID(gr*p.Cols + sc + span)
		flows[i] = network.FlowSpec{
			ID:             i + 1,
			Path:           routing.Path{src, dst},
			Kind:           network.CBRTraffic,
			CBRInterval:    20 * sim.Millisecond,
			CBRPacketBytes: 1000,
		}
	}
	return network.Config{
		Positions: top.Positions,
		Radio:     topology.CityRadio(),
		Scheme:    network.Ripple,
		Flows:     flows,
		Routing:   network.RoutingSpec{Kind: network.RouteETX},
	}, nil
}

// ScalingRunners returns the opt-in city-scale experiments (cmd/experiments
// -scaling); kept out of All() because of their runtime.
func ScalingRunners() []Runner {
	return []Runner{
		{"scaling", func(o Options) ([]*Table, error) { t, err := Scaling(o); return wrap(t, err) }},
	}
}
