package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// The ablations isolate the design choices DESIGN.md §5 calls out. They are
// not figures from the paper; they quantify the mechanisms the paper argues
// for (aggregation limit 16, ≤5 forwarders, Rq, two-way aggregation) and
// the §V future-work multi-rate extension.

// AblationAggLimit sweeps RIPPLE's aggregation limit over a single
// long-lived TCP flow on the Fig. 1 topology (ROUTE0). The paper picks 16
// following 802.11n/AFR; the sweep shows the diminishing returns beyond it.
func AblationAggLimit(opt Options) (*Table, error) {
	opt = opt.normalize()
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	path := routing.Route0().Flow1
	tab := &Table{
		ID:      "ablation-agg",
		Title:   "RIPPLE aggregation limit sweep, 1 TCP flow on ROUTE0",
		Unit:    "Mbps",
		Columns: []string{"R"},
	}
	for _, agg := range []int{1, 2, 4, 8, 16, 32} {
		cfg := network.Config{
			Positions: top.Positions,
			Radio:     rc,
			Scheme:    network.Ripple,
			Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
		}
		cfg.Normalize()
		cfg.RippleOpts.MaxAgg = agg
		res, err := runAvg(cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("ablation-agg %d: %w", agg, err)
		}
		tab.Rows = append(tab.Rows, Row{
			Label: fmt.Sprintf("agg=%d", agg),
			Cells: []float64{res.Flows[0].ThroughputMbps},
		})
	}
	return tab, nil
}

// AblationForwarders sweeps the maximum forwarder count 1-7 on a 7-hop line
// (paper Remark 4: 5 works well; §IV-C considers up to 7). Fewer forwarders
// shorten the relay list but skip coverage; the line topology punishes
// aggressive pruning because the pruned hops exceed decode range.
func AblationForwarders(opt Options) (*Table, error) {
	opt = opt.normalize()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	top, path := topology.Line(7)
	tab := &Table{
		ID:      "ablation-fwd",
		Title:   "RIPPLE max-forwarders sweep, 7-hop line",
		Unit:    "Mbps",
		Columns: []string{"R"},
	}
	for maxFwd := 1; maxFwd <= 7; maxFwd++ {
		cfg := network.Config{
			Positions:     top.Positions,
			Radio:         rc,
			Scheme:        network.Ripple,
			MaxForwarders: maxFwd,
			Flows:         []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
		}
		res, err := runAvg(cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("ablation-fwd %d: %w", maxFwd, err)
		}
		tab.Rows = append(tab.Rows, Row{
			Label: fmt.Sprintf("maxfwd=%d", maxFwd),
			Cells: []float64{res.Flows[0].ThroughputMbps},
		})
	}
	return tab, nil
}

// AblationRq toggles the resequencing queue (Remark 6) under the noisy
// channel, where partial frame corruption reorders without it.
func AblationRq(opt Options) (*Table, error) {
	opt = opt.normalize()
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-5
	path := routing.Route0().Flow1
	tab := &Table{
		ID:      "ablation-rq",
		Title:   "RIPPLE receive queue (Rq) on/off, noisy channel (BER 1e-5)",
		Columns: []string{"Mbps", "reorder %"},
	}
	for _, enabled := range []bool{true, false} {
		cfg := network.Config{
			Positions: top.Positions,
			Radio:     rc,
			Scheme:    network.Ripple,
			Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
		}
		cfg.Normalize()
		cfg.RippleOpts.RqEnabled = enabled
		res, err := runAvg(cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("ablation-rq %v: %w", enabled, err)
		}
		label := "Rq on"
		if !enabled {
			label = "Rq off"
		}
		tab.Rows = append(tab.Rows, Row{
			Label: label,
			Cells: []float64{res.Flows[0].ThroughputMbps, 100 * res.Flows[0].ReorderRate},
		})
	}
	return tab, nil
}

// AblationTwoWay disables aggregation at the flow's destination so TCP ACKs
// travel one per frame — isolating the paper's "two-way" part of the
// aggregation design (§III-A2).
func AblationTwoWay(opt Options) (*Table, error) {
	opt = opt.normalize()
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	path := routing.Route0().Flow1
	tab := &Table{
		ID:      "ablation-twoway",
		Title:   "RIPPLE two-way vs one-way aggregation, 1 TCP flow on ROUTE0",
		Unit:    "Mbps",
		Columns: []string{"R"},
	}
	for _, twoWay := range []bool{true, false} {
		cfg := network.Config{
			Positions: top.Positions,
			Radio:     rc,
			Scheme:    network.Ripple,
			Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
		}
		if !twoWay {
			cfg.NodeMaxAgg = map[pkt.NodeID]int{path.Dst(): 1}
		}
		res, err := runAvg(cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("ablation-twoway %v: %w", twoWay, err)
		}
		label := "two-way"
		if !twoWay {
			label = "one-way"
		}
		tab.Rows = append(tab.Rows, Row{
			Label: label,
			Cells: []float64{res.Flows[0].ThroughputMbps},
		})
	}
	return tab, nil
}

// AblationRelayDefer compares the strict reading of the relay rule (any
// carrier during the idle wait discards the frame) against the deferral
// interpretation this implementation defaults to, under hidden interferers
// (see DESIGN.md on the ambiguity in §III-A).
func AblationRelayDefer(opt Options) (*Table, error) {
	opt = opt.normalize()
	rc := topology.HiddenRadio()
	rc.BitErrorRate = 1e-6
	tab := &Table{
		ID:      "ablation-defer",
		Title:   "RIPPLE relay deferral vs strict idle rule, hidden interferers",
		Unit:    "Mbps (flow 1)",
		Columns: []string{"defer", "strict"},
	}
	for _, n := range []int{0, 2, 4} {
		top, main, hidden := topology.Hidden(n)
		row := Row{Label: fmt.Sprintf("%d hidden", n)}
		for _, defer_ := range []bool{true, false} {
			flows := []network.FlowSpec{{ID: 1, Path: main, Kind: network.FTP}}
			for i, p := range hidden {
				flows = append(flows, network.FlowSpec{
					ID: i + 2, Path: p, Kind: network.CBRTraffic,
					Start: 50 * sim.Millisecond,
				})
			}
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    network.Ripple,
				Flows:     flows,
			}
			cfg.Normalize()
			cfg.RippleOpts.RelayDefer = defer_
			res, err := runAvg(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("ablation-defer: %w", err)
			}
			row.Cells = append(row.Cells, res.Flows[0].ThroughputMbps)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// AblationMultiRate exercises the §V future-work extension: a 6 Mbps base
// configuration over clean 100 m hops where the oracle can upshift.
func AblationMultiRate(opt Options) (*Table, error) {
	opt = opt.normalize()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	top, path := topology.Line(3)
	tab := &Table{
		ID:      "ablation-multirate",
		Title:   "Multi-rate PHY extension, 3-hop line, 6 Mbps base",
		Unit:    "Mbps",
		Columns: []string{"DCF", "RIPPLE"},
	}
	for _, multi := range []bool{false, true} {
		row := Row{Label: "fixed 6 Mbps"}
		if multi {
			row.Label = "multi-rate"
		}
		for _, kind := range []network.SchemeKind{network.DCF, network.Ripple} {
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Phy:       phys.LowRate(),
				Scheme:    kind,
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
				MultiRate: network.MultiRateSpec{Enabled: multi},
			}
			res, err := runAvg(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("ablation-multirate: %w", err)
			}
			row.Cells = append(row.Cells, res.Flows[0].ThroughputMbps)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// AblationRTS compares plain DCF, DCF with RTS/CTS, and RIPPLE under the
// Fig. 6(b) hidden interferers. RTS/CTS is 802.11's own answer to hidden
// terminals; the comparison shows how much of the problem it recovers
// relative to RIPPLE's opportunistic forwarding.
func AblationRTS(opt Options) (*Table, error) {
	opt = opt.normalize()
	rc := topology.HiddenRadio()
	rc.BitErrorRate = 1e-6
	tab := &Table{
		ID:      "ablation-rts",
		Title:   "DCF vs DCF+RTS/CTS vs RIPPLE under hidden interferers",
		Unit:    "Mbps (flow 1)",
		Columns: []string{"DCF", "DCF+RTS", "RIPPLE"},
	}
	for _, n := range []int{0, 3, 6, 9} {
		top, main, hidden := topology.Hidden(n)
		row := Row{Label: fmt.Sprintf("%d hidden", n)}
		for _, variant := range []struct {
			kind network.SchemeKind
			rts  int
		}{{network.DCF, 0}, {network.DCF, 1}, {network.Ripple, 0}} {
			flows := []network.FlowSpec{{ID: 1, Path: main, Kind: network.FTP}}
			for i, p := range hidden {
				flows = append(flows, network.FlowSpec{
					ID: i + 2, Path: p, Kind: network.CBRTraffic,
					Start: 50 * sim.Millisecond,
				})
			}
			cfg := network.Config{
				Positions:    top.Positions,
				Radio:        rc,
				Scheme:       variant.kind,
				RTSThreshold: variant.rts,
				Flows:        flows,
			}
			res, err := runAvg(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("ablation-rts: %w", err)
			}
			row.Cells = append(row.Cells, res.Flows[0].ThroughputMbps)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Ablations returns every ablation in DESIGN.md §5 order.
func Ablations() []Runner {
	return []Runner{
		{"ablation-agg", func(o Options) ([]*Table, error) { t, err := AblationAggLimit(o); return wrap(t, err) }},
		{"ablation-fwd", func(o Options) ([]*Table, error) { t, err := AblationForwarders(o); return wrap(t, err) }},
		{"ablation-rq", func(o Options) ([]*Table, error) { t, err := AblationRq(o); return wrap(t, err) }},
		{"ablation-twoway", func(o Options) ([]*Table, error) { t, err := AblationTwoWay(o); return wrap(t, err) }},
		{"ablation-defer", func(o Options) ([]*Table, error) { t, err := AblationRelayDefer(o); return wrap(t, err) }},
		{"ablation-multirate", func(o Options) ([]*Table, error) { t, err := AblationMultiRate(o); return wrap(t, err) }},
		{"ablation-rts", func(o Options) ([]*Table, error) { t, err := AblationRTS(o); return wrap(t, err) }},
		{"ablation-etx", func(o Options) ([]*Table, error) { t, err := AblationETXRoutes(o); return wrap(t, err) }},
	}
}
