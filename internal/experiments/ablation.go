package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// The ablations isolate the design choices DESIGN.md §5 calls out. They are
// not figures from the paper; they quantify the mechanisms the paper argues
// for (aggregation limit 16, ≤5 forwarders, Rq, two-way aggregation) and
// the §V future-work multi-rate extension. Like the figures, each is a
// campaign grid declaration.

// AblationAggLimit sweeps RIPPLE's aggregation limit over a single
// long-lived TCP flow on the Fig. 1 topology (ROUTE0). The paper picks 16
// following 802.11n/AFR; the sweep shows the diminishing returns beyond it.
func AblationAggLimit(opt Options) (*Table, error) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	path := routing.Route0().Flow1
	aggs := []int{1, 2, 4, 8, 16, 32}
	rows := make([]string, len(aggs))
	for i, agg := range aggs {
		rows[i] = fmt.Sprintf("agg=%d", agg)
	}
	return tableGrid{
		ID:    "ablation-agg",
		Title: "RIPPLE aggregation limit sweep, 1 TCP flow on ROUTE0",
		Unit:  "Mbps",
		Rows:  rows,
		Cols:  []string{"R"},
		Config: func(r, _ int) (network.Config, error) {
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    network.Ripple,
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
			}
			cfg.Normalize()
			cfg.RippleOpts.MaxAgg = aggs[r]
			return cfg, nil
		},
		Metric: flow0Mbps,
	}.run(opt)
}

// flow0Mbps is the ablations' common metric: the first flow's throughput.
func flow0Mbps(_, _ int, res *network.Result) float64 {
	return res.Flows[0].ThroughputMbps
}

// AblationForwarders sweeps the maximum forwarder count 1-7 on a 7-hop line
// (paper Remark 4: 5 works well; §IV-C considers up to 7). Fewer forwarders
// shorten the relay list but skip coverage; the line topology punishes
// aggressive pruning because the pruned hops exceed decode range.
func AblationForwarders(opt Options) (*Table, error) {
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	top, path := topology.Line(7)
	rows := make([]string, 7)
	for i := range rows {
		rows[i] = fmt.Sprintf("maxfwd=%d", i+1)
	}
	return tableGrid{
		ID:    "ablation-fwd",
		Title: "RIPPLE max-forwarders sweep, 7-hop line",
		Unit:  "Mbps",
		Rows:  rows,
		Cols:  []string{"R"},
		Config: func(r, _ int) (network.Config, error) {
			return network.Config{
				Positions:     top.Positions,
				Radio:         rc,
				Scheme:        network.Ripple,
				MaxForwarders: r + 1,
				Flows:         []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
			}, nil
		},
		Metric: flow0Mbps,
	}.run(opt)
}

// AblationRq toggles the resequencing queue (Remark 6) under the noisy
// channel, where partial frame corruption reorders without it.
func AblationRq(opt Options) (*Table, error) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-5
	path := routing.Route0().Flow1
	return tableGrid{
		ID:     "ablation-rq",
		Title:  "RIPPLE receive queue (Rq) on/off, noisy channel (BER 1e-5)",
		Rows:   []string{"Rq on", "Rq off"},
		Cols:   []string{"Mbps", "reorder %"},
		PerRow: true,
		Config: func(r, _ int) (network.Config, error) {
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    network.Ripple,
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
			}
			cfg.Normalize()
			cfg.RippleOpts.RqEnabled = r == 0
			return cfg, nil
		},
		Metric: func(_, c int, res *network.Result) float64 {
			if c == 0 {
				return res.Flows[0].ThroughputMbps
			}
			return 100 * res.Flows[0].ReorderRate
		},
	}.run(opt)
}

// AblationTwoWay disables aggregation at the flow's destination so TCP ACKs
// travel one per frame — isolating the paper's "two-way" part of the
// aggregation design (§III-A2).
func AblationTwoWay(opt Options) (*Table, error) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	path := routing.Route0().Flow1
	return tableGrid{
		ID:    "ablation-twoway",
		Title: "RIPPLE two-way vs one-way aggregation, 1 TCP flow on ROUTE0",
		Unit:  "Mbps",
		Rows:  []string{"two-way", "one-way"},
		Cols:  []string{"R"},
		Config: func(r, _ int) (network.Config, error) {
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    network.Ripple,
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
			}
			if r == 1 {
				cfg.NodeMaxAgg = map[pkt.NodeID]int{path.Dst(): 1}
			}
			return cfg, nil
		},
		Metric: flow0Mbps,
	}.run(opt)
}

// AblationRelayDefer compares the strict reading of the relay rule (any
// carrier during the idle wait discards the frame) against the deferral
// interpretation this implementation defaults to, under hidden interferers
// (see DESIGN.md on the ambiguity in §III-A).
func AblationRelayDefer(opt Options) (*Table, error) {
	rc := topology.HiddenRadio()
	rc.BitErrorRate = 1e-6
	counts := []int{0, 2, 4}
	rows := make([]string, len(counts))
	for i, n := range counts {
		rows[i] = fmt.Sprintf("%d hidden", n)
	}
	return tableGrid{
		ID:    "ablation-defer",
		Title: "RIPPLE relay deferral vs strict idle rule, hidden interferers",
		Unit:  "Mbps (flow 1)",
		Rows:  rows,
		Cols:  []string{"defer", "strict"},
		Config: func(r, c int) (network.Config, error) {
			top, main, hidden := topology.Hidden(counts[r])
			flows := []network.FlowSpec{{ID: 1, Path: main, Kind: network.FTP}}
			for i, p := range hidden {
				flows = append(flows, network.FlowSpec{
					ID: i + 2, Path: p, Kind: network.CBRTraffic,
					Start: 50 * sim.Millisecond,
				})
			}
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    network.Ripple,
				Flows:     flows,
			}
			cfg.Normalize()
			cfg.RippleOpts.RelayDefer = c == 0
			return cfg, nil
		},
		Metric: flow0Mbps,
	}.run(opt)
}

// AblationMultiRate exercises the §V future-work extension: a 6 Mbps base
// configuration over clean 100 m hops where the oracle can upshift.
func AblationMultiRate(opt Options) (*Table, error) {
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6
	top, path := topology.Line(3)
	kinds := []network.SchemeKind{network.DCF, network.Ripple}
	return tableGrid{
		ID:    "ablation-multirate",
		Title: "Multi-rate PHY extension, 3-hop line, 6 Mbps base",
		Unit:  "Mbps",
		Rows:  []string{"fixed 6 Mbps", "multi-rate"},
		Cols:  []string{"DCF", "RIPPLE"},
		Config: func(r, c int) (network.Config, error) {
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Phy:       phys.LowRate(),
				Scheme:    kinds[c],
				Flows:     []network.FlowSpec{{ID: 1, Path: path, Kind: network.FTP}},
				MultiRate: network.MultiRateSpec{Enabled: r == 1},
			}, nil
		},
		Metric: flow0Mbps,
	}.run(opt)
}

// AblationRTS compares plain DCF, DCF with RTS/CTS, and RIPPLE under the
// Fig. 6(b) hidden interferers. RTS/CTS is 802.11's own answer to hidden
// terminals; the comparison shows how much of the problem it recovers
// relative to RIPPLE's opportunistic forwarding.
func AblationRTS(opt Options) (*Table, error) {
	rc := topology.HiddenRadio()
	rc.BitErrorRate = 1e-6
	counts := []int{0, 3, 6, 9}
	rows := make([]string, len(counts))
	for i, n := range counts {
		rows[i] = fmt.Sprintf("%d hidden", n)
	}
	variants := []struct {
		kind network.SchemeKind
		rts  int
	}{{network.DCF, 0}, {network.DCF, 1}, {network.Ripple, 0}}
	return tableGrid{
		ID:    "ablation-rts",
		Title: "DCF vs DCF+RTS/CTS vs RIPPLE under hidden interferers",
		Unit:  "Mbps (flow 1)",
		Rows:  rows,
		Cols:  []string{"DCF", "DCF+RTS", "RIPPLE"},
		Config: func(r, c int) (network.Config, error) {
			top, main, hidden := topology.Hidden(counts[r])
			flows := []network.FlowSpec{{ID: 1, Path: main, Kind: network.FTP}}
			for i, p := range hidden {
				flows = append(flows, network.FlowSpec{
					ID: i + 2, Path: p, Kind: network.CBRTraffic,
					Start: 50 * sim.Millisecond,
				})
			}
			return network.Config{
				Positions:    top.Positions,
				Radio:        rc,
				Scheme:       variants[c].kind,
				RTSThreshold: variants[c].rts,
				Flows:        flows,
			}, nil
		},
		Metric: flow0Mbps,
	}.run(opt)
}

// Ablations returns every ablation in DESIGN.md §5 order.
func Ablations() []Runner {
	return []Runner{
		{"ablation-agg", func(o Options) ([]*Table, error) { t, err := AblationAggLimit(o); return wrap(t, err) }},
		{"ablation-fwd", func(o Options) ([]*Table, error) { t, err := AblationForwarders(o); return wrap(t, err) }},
		{"ablation-rq", func(o Options) ([]*Table, error) { t, err := AblationRq(o); return wrap(t, err) }},
		{"ablation-twoway", func(o Options) ([]*Table, error) { t, err := AblationTwoWay(o); return wrap(t, err) }},
		{"ablation-defer", func(o Options) ([]*Table, error) { t, err := AblationRelayDefer(o); return wrap(t, err) }},
		{"ablation-multirate", func(o Options) ([]*Table, error) { t, err := AblationMultiRate(o); return wrap(t, err) }},
		{"ablation-rts", func(o Options) ([]*Table, error) { t, err := AblationRTS(o); return wrap(t, err) }},
		{"ablation-etx", func(o Options) ([]*Table, error) { t, err := AblationETXRoutes(o); return wrap(t, err) }},
		{"ablation-routepolicy", func(o Options) ([]*Table, error) { t, err := AblationRoutePolicy(o); return wrap(t, err) }},
		{"ablation-mobility", func(o Options) ([]*Table, error) { t, err := AblationMobility(o); return wrap(t, err) }},
		{"ablation-resilience", AblationResilience},
	}
}
