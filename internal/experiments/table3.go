package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// voipFlows builds Table III's workload: ten 96 kbps on-off VoIP calls per
// source/destination pair of the Fig. 1 topology over the ROUTE0 paths.
func voipFlows(nGroups int) []network.FlowSpec {
	rs := routing.Route0()
	var flows []network.FlowSpec
	for g, p := range rs.Flows()[:nGroups] {
		for k := 0; k < 10; k++ {
			id := g*10 + k + 1
			flows = append(flows, network.FlowSpec{
				ID:    id,
				Path:  p,
				Kind:  network.VoIPTraffic,
				Start: sim.Time(k) * 30 * sim.Millisecond,
			})
		}
	}
	return flows
}

// Table3 regenerates Table III: mean VoIP MoS for 10/20/30 calls at BER
// 1e-5 and 1e-6, with both PHY data and basic rates at 6 Mbps.
func Table3(opt Options) (*Table, error) {
	opt = opt.normalize()
	top := topology.Fig1()
	tab := &Table{
		ID:    "table3",
		Title: "VoIP MoS on Fig.1 topology, 6 Mbps PHY",
		Unit:  "mean MoS (1-5)",
	}
	type cell struct {
		ber    float64
		groups int
	}
	var cells []cell
	for _, ber := range []float64{1e-5, 1e-6} {
		for _, g := range []int{1, 2, 3} {
			cells = append(cells, cell{ber, g})
			tab.Columns = append(tab.Columns, fmt.Sprintf("%.0e/1..%d", ber, g*10))
		}
	}
	for _, c := range loadColumns() {
		row := Row{Label: c.label}
		for _, cl := range cells {
			rc := radio.DefaultConfig()
			rc.BitErrorRate = cl.ber
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Phy:       phys.LowRate(),
				Scheme:    c.kind,
				Flows:     voipFlows(cl.groups),
			}
			res, err := runAvg(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("table3 %s ber=%.0e g=%d: %w", c.label, cl.ber, cl.groups, err)
			}
			var mos float64
			for _, f := range res.Flows {
				mos += f.MoS
			}
			mos /= float64(len(res.Flows))
			row.Cells = append(row.Cells, mos)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}
