package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// voipFlows builds Table III's workload: ten 96 kbps on-off VoIP calls per
// source/destination pair of the Fig. 1 topology over the ROUTE0 paths.
func voipFlows(nGroups int) []network.FlowSpec {
	rs := routing.Route0()
	var flows []network.FlowSpec
	for g, p := range rs.Flows()[:nGroups] {
		for k := 0; k < 10; k++ {
			id := g*10 + k + 1
			flows = append(flows, network.FlowSpec{
				ID:    id,
				Path:  p,
				Kind:  network.VoIPTraffic,
				Start: sim.Time(k) * 30 * sim.Millisecond,
			})
		}
	}
	return flows
}

// Table3 regenerates Table III as a (scheme × BER/call-count) grid: mean
// VoIP MoS for 10/20/30 calls at BER 1e-5 and 1e-6, with both PHY data and
// basic rates at 6 Mbps.
func Table3(opt Options) (*Table, error) {
	top := topology.Fig1()
	schemes := loadColumns()
	type cell struct {
		ber    float64
		groups int
	}
	var cells []cell
	var cols []string
	for _, ber := range []float64{1e-5, 1e-6} {
		for _, g := range []int{1, 2, 3} {
			cells = append(cells, cell{ber, g})
			cols = append(cols, fmt.Sprintf("%.0e/1..%d", ber, g*10))
		}
	}
	return tableGrid{
		ID:    "table3",
		Title: "VoIP MoS on Fig.1 topology, 6 Mbps PHY",
		Unit:  "mean MoS (1-5)",
		Rows:  columnLabels(schemes),
		Cols:  cols,
		Config: func(r, c int) (network.Config, error) {
			rc := radio.DefaultConfig()
			rc.BitErrorRate = cells[c].ber
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Phy:       phys.LowRate(),
				Scheme:    schemes[r].kind,
				Flows:     voipFlows(cells[c].groups),
			}, nil
		},
		Metric: func(_, _ int, res *network.Result) float64 {
			var mos float64
			for _, f := range res.Flows {
				mos += f.MoS
			}
			return mos / float64(len(res.Flows))
		},
	}.run(opt)
}
