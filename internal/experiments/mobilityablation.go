package experiments

import (
	"ripple/internal/network"
	"ripple/internal/pkt"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// AblationMobility crosses station motion with the route policies that
// can react to it: static positions against random-waypoint and Markov
// place-transition mobility, routed by minimum ETX (recomputed each epoch
// from the moving topology) and by greedy geographic progress (Li et al.,
// the position-aware policy the epoch-world machinery exists for). The
// arena is a pruned 60-station city with two multi-hop paced CBR flows on
// distinct grid rows (the scaling sweep's flow layout), so every cell
// exercises the sparse incremental epoch rebuild; RIPPLE forwarding
// throughout. The static row is the control; the columns compare a
// globally recomputed metric (ETX) against purely local geographic
// forwarding under the same motion — greedy progress needs no global
// recomputation but pays for voids the moving topology opens up.
func AblationMobility(opt Options) (*Table, error) {
	top, p := topology.CityN(60, 3)
	rc := topology.CityRadio()

	const nFlows = 2
	span := 3 // ≈3 blocks: a genuinely multi-hop route
	if span > p.Cols-1 {
		span = p.Cols - 1
	}
	flows := make([]network.FlowSpec, nFlows)
	for i := range flows {
		gr := (i * p.Rows) / nFlows
		sc := (i * 3) % (p.Cols - span)
		src := pkt.NodeID(gr*p.Cols + sc)
		dst := pkt.NodeID(gr*p.Cols + sc + span)
		flows[i] = network.FlowSpec{
			ID:             i + 1,
			Path:           routing.Path{src, dst},
			Kind:           network.CBRTraffic,
			CBRInterval:    20 * sim.Millisecond,
			CBRPacketBytes: 1000,
			Start:          sim.Time(i) * 50 * sim.Millisecond,
		}
	}

	mobs := []network.MobilityKind{
		network.MobilityStatic, network.MobilityWaypoint, network.MobilityMarkov,
	}
	pols := []network.RoutePolicyKind{network.RouteETX, network.RouteGeo}
	rows := make([]string, len(mobs))
	for i, m := range mobs {
		rows[i] = m.String()
	}
	cols := make([]string, len(pols))
	for i, p := range pols {
		cols[i] = p.String()
	}
	return tableGrid{
		ID:    "ablation-mobility",
		Title: "Mobility model × route policy, 2 CBR on 60-station city, RIPPLE",
		Unit:  "Mbps total",
		Rows:  rows,
		Cols:  cols,
		Config: func(r, c int) (network.Config, error) {
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    network.Ripple,
				Routing:   network.RoutingSpec{Kind: pols[c]},
				Mobility:  network.MobilitySpec{Kind: mobs[r]},
				Flows:     flows,
			}, nil
		},
		Metric: func(_, _ int, res *network.Result) float64 { return res.TotalMbps },
	}.run(opt)
}
