package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// AblationETXRoutes compares the Table II predetermined routes against
// ETX-discovered routes on the Fig. 1 topology (§III-B1: forwarder
// selection is orthogonal to RIPPLE; ExOR/MORE use ETX). Both DCF and
// RIPPLE run all three flows.
func AblationETXRoutes(opt Options) (*Table, error) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6

	// Discover ETX routes for the three flow endpoint pairs.
	tab := routing.NewTable(len(top.Positions), func(a, b pkt.NodeID) float64 {
		return 1 - rc.LossProb(radio.Dist(top.Positions[a], top.Positions[b]))
	}, 0.1)
	pairs := [][2]pkt.NodeID{{0, 3}, {0, 4}, {5, 7}}
	etxPaths := make([]routing.Path, 0, len(pairs))
	for _, pr := range pairs {
		p, err := tab.ShortestPath(pr[0], pr[1])
		if err != nil {
			return nil, fmt.Errorf("ablation-etx: %w", err)
		}
		etxPaths = append(etxPaths, p)
	}

	routeSets := [][]routing.Path{routing.Route0().Flows(), etxPaths}
	kinds := []network.SchemeKind{network.DCF, network.Ripple}
	return tableGrid{
		ID:    "ablation-etx",
		Title: "Table II fixed routes vs ETX-discovered routes, 3 TCP flows",
		Unit:  "Mbps total",
		Rows:  []string{"ROUTE0 (fixed)", "ETX-discovered"},
		Cols:  []string{"DCF", "RIPPLE"},
		Config: func(r, c int) (network.Config, error) {
			flows := make([]network.FlowSpec, 0, 3)
			for i, p := range routeSets[r] {
				flows = append(flows, network.FlowSpec{
					ID: i + 1, Path: p, Kind: network.FTP,
					Start: sim.Time(i) * 100 * sim.Millisecond,
				})
			}
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    kinds[c],
				Flows:     flows,
			}, nil
		},
		Metric: func(_, _ int, res *network.Result) float64 { return totalTCP(res) },
	}.run(opt)
}
