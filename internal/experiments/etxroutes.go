package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// AblationETXRoutes compares the Table II predetermined routes against
// ETX-discovered routes on the Fig. 1 topology (§III-B1: forwarder
// selection is orthogonal to RIPPLE; ExOR/MORE use ETX). Both DCF and
// RIPPLE run all three flows.
func AblationETXRoutes(opt Options) (*Table, error) {
	opt = opt.normalize()
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = 1e-6

	// Discover ETX routes for the three flow endpoint pairs.
	tab := routing.NewTable(len(top.Positions), func(a, b pkt.NodeID) float64 {
		return 1 - rc.LossProb(radio.Dist(top.Positions[a], top.Positions[b]))
	}, 0.1)
	pairs := [][2]pkt.NodeID{{0, 3}, {0, 4}, {5, 7}}
	etxPaths := make([]routing.Path, 0, len(pairs))
	for _, pr := range pairs {
		p, err := tab.ShortestPath(pr[0], pr[1])
		if err != nil {
			return nil, fmt.Errorf("ablation-etx: %w", err)
		}
		etxPaths = append(etxPaths, p)
	}

	out := &Table{
		ID:      "ablation-etx",
		Title:   "Table II fixed routes vs ETX-discovered routes, 3 TCP flows",
		Unit:    "Mbps total",
		Columns: []string{"DCF", "RIPPLE"},
	}
	for _, variant := range []struct {
		label string
		paths []routing.Path
	}{
		{"ROUTE0 (fixed)", routing.Route0().Flows()},
		{"ETX-discovered", etxPaths},
	} {
		row := Row{Label: variant.label}
		for _, kind := range []network.SchemeKind{network.DCF, network.Ripple} {
			flows := make([]network.FlowSpec, 0, 3)
			for i, p := range variant.paths {
				flows = append(flows, network.FlowSpec{
					ID: i + 1, Path: p, Kind: network.FTP,
					Start: sim.Time(i) * 100 * sim.Millisecond,
				})
			}
			cfg := network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    kind,
				Flows:     flows,
			}
			res, err := runAvg(cfg, opt)
			if err != nil {
				return nil, fmt.Errorf("ablation-etx %s: %w", variant.label, err)
			}
			row.Cells = append(row.Cells, totalTCP(res))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
