package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/campaign/pool"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// TestDriverDeterministicAcrossWorkerCounts is the campaign determinism
// guarantee at the driver level: the same grid and seeds must produce an
// identical table (cells and CIs) with one worker and with many — the
// -parallel flag may never change the numbers.
func TestDriverDeterministicAcrossWorkerCounts(t *testing.T) {
	opt := Options{Seeds: []uint64{1, 2, 3}, Duration: 400 * sim.Millisecond}
	opt.Pool = pool.New(1)
	serial, err := fig34("fig3a", routing.Route0(), 1e-6, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Pool = pool.New(8)
	wide, err := fig34("fig3a", routing.Route0(), 1e-6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("tables diverge across worker counts:\n%s\nvs\n%s",
			serial.Format(), wide.Format())
	}
}

// TestMultiSeedTablesCarryCIs asserts that every cell of a multi-seed
// table reports a 95% confidence half-width and that single-seed tables
// stay CI-free.
func TestMultiSeedTablesCarryCIs(t *testing.T) {
	multi, err := Motivation(Options{Seeds: []uint64{1, 2}, Duration: 400 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range multi.Rows {
		if len(r.CIs) != len(r.Cells) {
			t.Fatalf("row %s: %d CIs for %d cells", r.Label, len(r.CIs), len(r.Cells))
		}
		for _, ci := range r.CIs {
			if ci < 0 {
				t.Fatalf("row %s: negative CI %v", r.Label, ci)
			}
		}
	}
	if out := multi.Format(); !strings.Contains(out, "±") {
		t.Fatalf("multi-seed Format misses CIs:\n%s", out)
	}
	single, err := Motivation(quick2())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range single.Rows {
		if r.CIs != nil {
			t.Fatalf("single-seed row %s carries CIs", r.Label)
		}
	}
}

// TestSuiteGoroutinesBoundedByPool runs the full figure suite on a small
// dedicated pool while sampling the process goroutine count: the batch
// engine may add at most workers-1 helper goroutines above the baseline,
// no matter how many cells the grids expand to (the seed implementation
// spawned one goroutine per seed with no cap).
func TestSuiteGoroutinesBoundedByPool(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps the full suite")
	}
	const workers = 3
	opt := Options{
		Seeds:    []uint64{1, 2},
		Duration: 100 * sim.Millisecond,
		Pool:     pool.New(workers),
	}
	base := runtime.NumGoroutine()
	var peak atomic.Int64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		for {
			select {
			case <-stop:
				return
			default:
				n := int64(runtime.NumGoroutine())
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	for _, r := range All() {
		if _, err := r.Run(opt); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
	}
	close(stop)
	<-sampled
	// Budget: baseline + the caller + (workers-1) helpers + the sampler,
	// plus slack for runtime bookkeeping goroutines.
	limit := int64(base + workers + 3)
	if got := peak.Load(); got > limit {
		t.Fatalf("peak goroutines %d exceeds pool bound %d (baseline %d, workers %d)",
			got, limit, base, workers)
	}
}

// TestOptionsProgressIsForwarded wires Options.Progress through a driver
// and checks every unit reports.
func TestOptionsProgressIsForwarded(t *testing.T) {
	var last, calls int
	opt := Options{
		Seeds:    []uint64{1},
		Duration: 200 * sim.Millisecond,
		Progress: func(done, total int) {
			calls++
			last = total
		},
	}
	if _, err := Motivation(opt); err != nil {
		t.Fatal(err)
	}
	// Motivation is 3 rows × 1 run (PerRow) × 1 seed.
	if calls != 3 || last != 3 {
		t.Fatalf("progress calls/total = %d/%d, want 3/3", calls, last)
	}
}
