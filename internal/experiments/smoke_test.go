package experiments

import (
	"testing"

	"ripple/internal/sim"
)

// TestEveryExperimentRuns executes every registered experiment (paper
// figures and ablations) on a micro budget, checking only structural
// soundness: tables render, every row has a cell per column, and values are
// finite and non-negative. The shape assertions live in the dedicated
// tests; the full-budget numbers in EXPERIMENTS.md come from
// cmd/experiments.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-budget sweep still takes ~a minute")
	}
	opt := Options{Seeds: []uint64{1}, Duration: 300 * sim.Millisecond}
	all := append(All(), Ablations()...)
	for _, r := range all {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			t.Parallel()
			tables, err := r.Run(opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if tab.ID == "" || tab.Title == "" {
					t.Errorf("table missing identity: %+v", tab)
				}
				if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
					t.Errorf("%s: empty table", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row.Cells) != len(tab.Columns) {
						t.Errorf("%s/%s: %d cells for %d columns",
							tab.ID, row.Label, len(row.Cells), len(tab.Columns))
					}
					for i, v := range row.Cells {
						if v < 0 || v != v { // negative or NaN
							t.Errorf("%s/%s/%s: bad value %v",
								tab.ID, row.Label, tab.Columns[i], v)
						}
					}
				}
				if tab.Format() == "" {
					t.Errorf("%s: Format produced nothing", tab.ID)
				}
			}
		})
	}
}
