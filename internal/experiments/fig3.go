package experiments

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// schemeColumn is one bar group of Figs. 3/4: the paper's label plus how to
// build the scenario (scheme kind and whether routes are direct SPR paths).
type schemeColumn struct {
	label  string
	kind   network.SchemeKind
	direct bool
}

// figColumns are the five bars of Figs. 3 and 4: S, D, R1, A, R16.
func figColumns() []schemeColumn {
	return []schemeColumn{
		{"S", network.DCF, true},
		{"D", network.DCF, false},
		{"R1", network.RippleNoAgg, false},
		{"A", network.AFR, false},
		{"R16", network.Ripple, false},
	}
}

// columnLabels projects scheme columns onto a grid's column axis.
func columnLabels(cols []schemeColumn) []string {
	labels := make([]string, len(cols))
	for i, c := range cols {
		labels[i] = c.label
	}
	return labels
}

// fig1Flows builds the FTP flow specs for the first n flows of the Fig. 1
// topology under the given route set; direct selects SPR source→destination
// paths instead of the predetermined routes.
func fig1Flows(rs routing.RouteSet, n int, direct bool, stagger sim.Time) []network.FlowSpec {
	flows := make([]network.FlowSpec, 0, n)
	for i, p := range rs.Flows()[:n] {
		path := p
		if direct {
			path = routing.Path{p.Src(), p.Dst()}
		}
		flows = append(flows, network.FlowSpec{
			ID:    i + 1,
			Path:  path,
			Kind:  network.FTP,
			Start: sim.Time(i) * stagger,
		})
	}
	return flows
}

// fig34 declares one subfigure of Fig. 3 (BER 1e-6) or Fig. 4 (BER 1e-5) as
// a (flow count × scheme) grid: total long-lived TCP throughput on the
// Fig. 1 topology for 1, 2 and 3 concurrent flows under every scheme.
func fig34(id string, rs routing.RouteSet, ber float64, opt Options) (*Table, error) {
	top := topology.Fig1()
	rc := radio.DefaultConfig()
	rc.BitErrorRate = ber
	cols := figColumns()
	return tableGrid{
		ID:    id,
		Title: fmt.Sprintf("Long-lived TCP on Fig.1 topology, %s, BER %.0e", rs.Name, ber),
		Unit:  "Mbps total",
		Rows:  []string{"1 flow(s)", "2 flow(s)", "3 flow(s)"},
		Cols:  columnLabels(cols),
		Config: func(r, c int) (network.Config, error) {
			return network.Config{
				Positions: top.Positions,
				Radio:     rc,
				Scheme:    cols[c].kind,
				Flows:     fig1Flows(rs, r+1, cols[c].direct, 100*sim.Millisecond),
			}, nil
		},
		Metric: func(_, _ int, res *network.Result) float64 { return totalTCP(res) },
	}.run(opt)
}

// Fig3 regenerates Fig. 3(a-c): BER 1e-6 over ROUTE0/1/2.
func Fig3(opt Options) ([]*Table, error) {
	var out []*Table
	for i, rs := range routing.RouteSets() {
		t, err := fig34(fmt.Sprintf("fig3%c", 'a'+i), rs, 1e-6, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig4 regenerates Fig. 4(a-c): BER 1e-5 over ROUTE0/1/2.
func Fig4(opt Options) ([]*Table, error) {
	var out []*Table
	for i, rs := range routing.RouteSets() {
		t, err := fig34(fmt.Sprintf("fig4%c", 'a'+i), rs, 1e-5, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
