package ripple

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/traffic"
	"ripple/internal/transport"
)

// TrafficSpec configures a flow's workload. The implementations are the
// traffic model structs FTP, Web, VoIP and CBR; their zero values select
// the paper's parameters, and every knob the internal models expose is a
// public field, so sweep-style experiments can vary codec cadence, Pareto
// shape, CBR rate or TCP windows per flow.
type TrafficSpec interface {
	// applyTo validates the spec and writes it into the flow.
	applyTo(f *network.FlowSpec) error
}

// TCPParams tunes the TCP model of an FTP or Web flow. Zero fields keep
// the paper's defaults (1000-byte MSS, 42-packet receiver window, NewReno
// fast retransmit at 3 dupacks).
type TCPParams struct {
	MSS         int     // data packet payload bytes
	AckBytes    int     // ACK packet bytes
	InitialCwnd float64 // packets
	MaxCwnd     float64 // receiver window, packets
	SSThresh    float64 // initial slow-start threshold, packets
	DupThresh   int     // dupacks triggering fast retransmit
	RTOMin      Time
	RTOInit     Time
	RTOMax      Time
}

// toInternal resolves the params against the paper defaults, or returns
// nil when every field is zero (use the scenario-wide default config).
func (p TCPParams) toInternal() (*transport.TCPConfig, error) {
	if p == (TCPParams{}) {
		return nil, nil
	}
	if p.MSS < 0 || p.AckBytes < 0 || p.InitialCwnd < 0 || p.MaxCwnd < 0 ||
		p.SSThresh < 0 || p.DupThresh < 0 ||
		p.RTOMin < 0 || p.RTOInit < 0 || p.RTOMax < 0 {
		return nil, fmt.Errorf("negative TCP parameter: %+v", p)
	}
	c := transport.DefaultTCPConfig()
	if p.MSS > 0 {
		c.MSS = p.MSS
	}
	if p.AckBytes > 0 {
		c.AckBytes = p.AckBytes
	}
	if p.InitialCwnd > 0 {
		c.InitialCwnd = p.InitialCwnd
	}
	if p.MaxCwnd > 0 {
		c.MaxCwnd = p.MaxCwnd
	}
	if p.SSThresh > 0 {
		c.SSThresh = p.SSThresh
	}
	if p.DupThresh > 0 {
		c.DupThresh = p.DupThresh
	}
	if p.RTOMin > 0 {
		c.RTOMin = p.RTOMin
	}
	if p.RTOInit > 0 {
		c.RTOInit = p.RTOInit
	}
	if p.RTOMax > 0 {
		c.RTOMax = p.RTOMax
	}
	return &c, nil
}

// FTP is a long-lived backlogged TCP transfer (§IV-A).
type FTP struct {
	// TCP overrides the flow's TCP model (zero = paper defaults).
	TCP TCPParams
}

func (t FTP) applyTo(f *network.FlowSpec) error {
	tcp, err := t.TCP.toInternal()
	if err != nil {
		return err
	}
	f.Kind = network.FTP
	f.TCP = tcp
	return nil
}

// Web is the ON/OFF short-transfer TCP workload (§IV-D): transfer sizes
// follow a Pareto distribution, OFF (reading) periods are exponential.
type Web struct {
	// MeanTransferBytes is the Pareto mean transfer size (default 80 KB).
	MeanTransferBytes float64
	// ParetoShape is the Pareto tail index; must exceed 1 for the mean to
	// exist (default 1.5).
	ParetoShape float64
	// MeanOffTime is the mean think time between transfers (default 1 s).
	MeanOffTime Time
	// TCP overrides the flow's TCP model (zero = paper defaults).
	TCP TCPParams
}

func (t Web) applyTo(f *network.FlowSpec) error {
	if t.MeanTransferBytes < 0 || t.MeanOffTime < 0 {
		return fmt.Errorf("negative web parameter: %+v", t)
	}
	if t.ParetoShape != 0 && t.ParetoShape <= 1 {
		return fmt.Errorf("web Pareto shape %g must exceed 1", t.ParetoShape)
	}
	tcp, err := t.TCP.toInternal()
	if err != nil {
		return err
	}
	c := traffic.DefaultWebConfig()
	if t.MeanTransferBytes > 0 {
		c.MeanTransferBytes = t.MeanTransferBytes
	}
	if t.ParetoShape > 0 {
		c.ParetoShape = t.ParetoShape
	}
	if t.MeanOffTime > 0 {
		c.OffMean = t.MeanOffTime
	}
	f.Kind = network.Web
	f.Web = &c
	f.TCP = tcp
	return nil
}

// VoIP is the on-off voice stream (§IV-E), scored with the paper's
// R-factor → Mean Opinion Score model.
type VoIP struct {
	// BitrateKbps is the codec rate during talkspurts (default 96).
	BitrateKbps float64
	// PacketInterval is the packetisation cadence (default 20 ms).
	PacketInterval Time
	// MeanOnTime and MeanOffTime are the exponential talkspurt and silence
	// durations (default 1.5 s each).
	MeanOnTime  Time
	MeanOffTime Time
	// DelayBudget is the one-way delay a packet may spend in flight before
	// it counts as lost for MoS purposes (default 52 ms).
	DelayBudget Time
}

func (t VoIP) applyTo(f *network.FlowSpec) error {
	if t.BitrateKbps < 0 || t.PacketInterval < 0 || t.MeanOnTime < 0 ||
		t.MeanOffTime < 0 || t.DelayBudget < 0 {
		return fmt.Errorf("negative VoIP parameter: %+v", t)
	}
	c := transport.DefaultVoIPConfig()
	if t.BitrateKbps > 0 {
		c.BitsPerSecond = t.BitrateKbps * 1e3
	}
	if t.PacketInterval > 0 {
		c.PacketInterval = t.PacketInterval
	}
	if t.MeanOnTime > 0 {
		c.OnMean = t.MeanOnTime
	}
	if t.MeanOffTime > 0 {
		c.OffMean = t.MeanOffTime
	}
	if t.DelayBudget > 0 {
		c.DelayBudget = t.DelayBudget
	}
	f.Kind = network.VoIPTraffic
	f.VoIP = &c
	return nil
}

// CBR is a constant-bit-rate datagram stream.
type CBR struct {
	// Interval is the emission interval; 0 keeps the source saturated
	// (backlogged), the v1 behaviour.
	Interval Time
	// PacketSize is the payload in bytes (default: the PHY packet size,
	// 1000 bytes).
	PacketSize int
}

func (t CBR) applyTo(f *network.FlowSpec) error {
	if t.Interval < 0 {
		return fmt.Errorf("negative CBR interval %v", t.Interval)
	}
	if t.PacketSize < 0 {
		return fmt.Errorf("negative CBR packet size %d", t.PacketSize)
	}
	f.Kind = network.CBRTraffic
	f.CBRInterval = t.Interval
	f.CBRPacketBytes = t.PacketSize
	return nil
}
