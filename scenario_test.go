package ripple

import (
	"strings"
	"testing"
)

// The toConfig error paths: a scenario with an unknown enum value must be
// rejected with a message naming what was wrong, before any run starts.

func validScenario() Scenario {
	top, path := LineTopology(2)
	return Scenario{
		Topology: top,
		Scheme:   SchemeRIPPLE,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: TrafficFTP}},
		Duration: Second,
	}
}

func TestToConfigRejectsUnknownScheme(t *testing.T) {
	for _, scheme := range []Scheme{0, Scheme(99), Scheme(-1)} {
		s := validScenario()
		s.Scheme = scheme
		if _, err := s.toConfig(); err == nil {
			t.Errorf("scheme %d: no error", int(scheme))
		} else if !strings.Contains(err.Error(), "unknown scheme") {
			t.Errorf("scheme %d: err = %v", int(scheme), err)
		}
		// The same failure must surface through Run.
		if _, err := Run(s); err == nil {
			t.Errorf("scheme %d: Run accepted it", int(scheme))
		}
	}
}

func TestToConfigRejectsUnknownRadioProfile(t *testing.T) {
	for _, profile := range []RadioProfile{RadioProfile(4), RadioProfile(99), RadioProfile(-2)} {
		s := validScenario()
		s.Radio = profile
		if _, err := s.toConfig(); err == nil {
			t.Errorf("profile %d: no error", int(profile))
		} else if !strings.Contains(err.Error(), "unknown radio profile") {
			t.Errorf("profile %d: err = %v", int(profile), err)
		}
	}
}

func TestToConfigRejectsUnknownTraffic(t *testing.T) {
	for _, traffic := range []Traffic{0, Traffic(77)} {
		s := validScenario()
		s.Flows = []Flow{{ID: 5, Path: s.Flows[0].Path, Traffic: traffic}}
		_, err := s.toConfig()
		if err == nil {
			t.Errorf("traffic %d: no error", int(traffic))
			continue
		}
		// The message names the offending flow.
		if !strings.Contains(err.Error(), "unknown traffic") || !strings.Contains(err.Error(), "flow 5") {
			t.Errorf("traffic %d: err = %v", int(traffic), err)
		}
	}
}

func TestToConfigAcceptsEveryDeclaredSchemeAndProfile(t *testing.T) {
	for _, scheme := range []Scheme{SchemeDCF, SchemeAFR, SchemePreExOR, SchemeMCExOR, SchemeRIPPLE, SchemeRIPPLENoAgg} {
		for _, profile := range []RadioProfile{0, RadioDefault, RadioHidden, RadioIdeal} {
			s := validScenario()
			s.Scheme = scheme
			s.Radio = profile
			if _, err := s.toConfig(); err != nil {
				t.Errorf("scheme %v profile %d: %v", scheme, int(profile), err)
			}
		}
	}
}
