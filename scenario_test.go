package ripple

import (
	"strings"
	"testing"

	"ripple/internal/radio"
)

// The toConfig error paths: a scenario with an unknown scheme, an invalid
// radio, a missing traffic model or out-of-range traffic parameters must
// be rejected with a message naming what was wrong, before any run starts.

func validScenario() Scenario {
	top, path := LineTopology(2)
	return Scenario{
		Topology: top,
		Scheme:   SchemeRIPPLE,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration: Second,
	}
}

func TestToConfigRejectsUnknownScheme(t *testing.T) {
	for _, scheme := range []Scheme{0, Scheme(99), Scheme(-1)} {
		s := validScenario()
		s.Scheme = scheme
		if _, err := s.toConfig(); err == nil {
			t.Errorf("scheme %d: no error", int(scheme))
		} else if !strings.Contains(err.Error(), "unknown scheme") {
			t.Errorf("scheme %d: err = %v", int(scheme), err)
		}
		// The same failure must surface through Run.
		if _, err := Run(s); err == nil {
			t.Errorf("scheme %d: Run accepted it", int(scheme))
		}
	}
}

func TestToConfigRejectsInvalidBER(t *testing.T) {
	for _, ber := range []float64{-1, -1e-9, 1, 1.5} {
		s := validScenario()
		s.Radio = DefaultRadio().WithBER(ber)
		if _, err := s.toConfig(); err == nil {
			t.Errorf("BER %g: no error", ber)
		} else if !strings.Contains(err.Error(), "bit error rate") {
			t.Errorf("BER %g: err = %v", ber, err)
		}
	}
	// WithBER(0) is valid: an explicit error-free channel.
	s := validScenario()
	s.Radio = DefaultRadio().WithBER(0)
	if _, err := s.toConfig(); err != nil {
		t.Errorf("WithBER(0): %v", err)
	}
}

func TestToConfigPruneSigma(t *testing.T) {
	// Profile default: pruning on at radio.DefaultPruneSigma.
	s := validScenario()
	cfg, err := s.toConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Radio.PruneSigma != radio.DefaultPruneSigma {
		t.Errorf("default PruneSigma = %g, want %g", cfg.Radio.PruneSigma, float64(radio.DefaultPruneSigma))
	}
	// WithPruneSigma(0) is the explicit exact-medium escape hatch.
	s.Radio = DefaultRadio().WithPruneSigma(0)
	if cfg, err = s.toConfig(); err != nil {
		t.Fatal(err)
	} else if cfg.Radio.PruneSigma != 0 {
		t.Errorf("WithPruneSigma(0) → PruneSigma = %g, want 0", cfg.Radio.PruneSigma)
	}
	if got := s.Radio.String(); !strings.Contains(got, "prune=0") {
		t.Errorf("Radio.String() = %q, want prune=0 mentioned", got)
	}
	// Negative is rejected.
	s.Radio = DefaultRadio().WithPruneSigma(-1)
	if _, err := s.toConfig(); err == nil || !strings.Contains(err.Error(), "prune sigma") {
		t.Errorf("WithPruneSigma(-1): err = %v", err)
	}
}

func TestToConfigRejectsMissingTraffic(t *testing.T) {
	s := validScenario()
	s.Flows = []Flow{{ID: 5, Path: s.Flows[0].Path}}
	_, err := s.toConfig()
	if err == nil {
		t.Fatal("nil traffic: no error")
	}
	// The message names the offending flow.
	if !strings.Contains(err.Error(), "no traffic model") || !strings.Contains(err.Error(), "flow 5") {
		t.Errorf("nil traffic: err = %v", err)
	}
}

func TestToConfigRejectsInvalidTrafficParams(t *testing.T) {
	cases := []struct {
		name    string
		traffic TrafficSpec
		errPart string
	}{
		{"negative CBR interval", CBR{Interval: -Second}, "CBR interval"},
		{"negative CBR size", CBR{PacketSize: -1}, "CBR packet size"},
		{"pareto shape below 1", Web{ParetoShape: 0.5}, "Pareto shape"},
		{"negative web bytes", Web{MeanTransferBytes: -1}, "web parameter"},
		{"negative voip rate", VoIP{BitrateKbps: -96}, "VoIP parameter"},
		{"negative tcp mss", FTP{TCP: TCPParams{MSS: -1}}, "TCP parameter"},
		{"negative tcp rto", FTP{TCP: TCPParams{MSS: 1000, RTOMin: -Second}}, "TCP parameter"},
	}
	for _, c := range cases {
		s := validScenario()
		s.Flows[0].Traffic = c.traffic
		_, err := s.toConfig()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) || !strings.Contains(err.Error(), "flow 1") {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
}

func TestToConfigAcceptsEveryDeclaredSchemeAndRadio(t *testing.T) {
	for _, scheme := range []Scheme{SchemeDCF, SchemeAFR, SchemePreExOR, SchemeMCExOR, SchemeRIPPLE, SchemeRIPPLENoAgg} {
		for _, r := range []Radio{{}, DefaultRadio(), HiddenRadio(), IdealRadio(), DefaultRadio().WithBER(1e-5)} {
			s := validScenario()
			s.Scheme = scheme
			s.Radio = r
			if _, err := s.toConfig(); err != nil {
				t.Errorf("scheme %v radio %v: %v", scheme, r, err)
			}
		}
	}
}

func TestToConfigAutoAssignsFlowIDs(t *testing.T) {
	s := validScenario()
	p := s.Flows[0].Path
	s.Flows = []Flow{
		{Path: p, Traffic: FTP{}},
		{Path: p, Traffic: VoIP{}},
	}
	cfg, err := s.toConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Flows[0].ID != 1 || cfg.Flows[1].ID != 2 {
		t.Fatalf("auto IDs = %d, %d, want 1, 2", cfg.Flows[0].ID, cfg.Flows[1].ID)
	}
	// Mixing explicit and auto IDs must not collide: auto assignment
	// skips IDs that are explicitly taken.
	s.Flows = []Flow{
		{Path: p, Traffic: FTP{}},
		{ID: 1, Path: p, Traffic: FTP{}},
		{Path: p, Traffic: FTP{}},
	}
	cfg, err = s.toConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Flows[0].ID != 2 || cfg.Flows[1].ID != 1 || cfg.Flows[2].ID != 3 {
		t.Fatalf("mixed IDs = %d, %d, %d, want 2, 1, 3",
			cfg.Flows[0].ID, cfg.Flows[1].ID, cfg.Flows[2].ID)
	}
}

func TestToConfigPerFlowTrafficParams(t *testing.T) {
	s := validScenario()
	p := s.Flows[0].Path
	s.Flows = []Flow{
		{ID: 1, Path: p, Traffic: VoIP{BitrateKbps: 64, PacketInterval: 10 * Millisecond}},
		{ID: 2, Path: p, Traffic: VoIP{}},
		{ID: 3, Path: p, Traffic: Web{MeanTransferBytes: 20e3, TCP: TCPParams{MaxCwnd: 8}}},
		{ID: 4, Path: p, Traffic: CBR{Interval: 5 * Millisecond, PacketSize: 200}},
	}
	cfg, err := s.toConfig()
	if err != nil {
		t.Fatal(err)
	}
	v := cfg.Flows[0].VoIP
	if v == nil || v.BitsPerSecond != 64e3 || v.PacketInterval != 10*Millisecond {
		t.Fatalf("per-flow VoIP config = %+v", v)
	}
	// Unset fields keep the paper defaults.
	if v.DelayBudget != 52*Millisecond {
		t.Fatalf("VoIP delay budget = %v, want paper default", v.DelayBudget)
	}
	if d := cfg.Flows[1].VoIP; d == nil || d.BitsPerSecond != 96e3 {
		t.Fatalf("default VoIP config = %+v", d)
	}
	w := cfg.Flows[2]
	if w.Web == nil || w.Web.MeanTransferBytes != 20e3 || w.Web.ParetoShape != 1.5 {
		t.Fatalf("per-flow web config = %+v", w.Web)
	}
	if w.TCP == nil || w.TCP.MaxCwnd != 8 || w.TCP.MSS != 1000 {
		t.Fatalf("per-flow TCP config = %+v", w.TCP)
	}
	c := cfg.Flows[3]
	if c.CBRInterval != 5*Millisecond || c.CBRPacketBytes != 200 {
		t.Fatalf("per-flow CBR config = %+v", c)
	}
}
