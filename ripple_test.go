package ripple

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	top, path := LineTopology(3)
	res, err := Run(Scenario{
		Topology: top,
		Scheme:   SchemeRIPPLE,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration: Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 || res.Flows[0].Throughput.Mean <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunRejectsUnknownScheme(t *testing.T) {
	top, path := LineTopology(2)
	_, err := Run(Scenario{
		Topology: top,
		Scheme:   Scheme(99),
		Flows:    []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration: Second,
	})
	if err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestRunRejectsMissingTraffic(t *testing.T) {
	top, path := LineTopology(2)
	_, err := Run(Scenario{
		Topology: top,
		Scheme:   SchemeDCF,
		Flows:    []Flow{{ID: 1, Path: path}},
		Duration: Second,
	})
	if err == nil || !strings.Contains(err.Error(), "no traffic model") {
		t.Fatalf("missing traffic spec: err = %v", err)
	}
}

func TestCompareReturnsAllSchemes(t *testing.T) {
	top, path := LineTopology(2)
	sc := Scenario{
		Topology: top,
		Flows:    []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration: Second,
		Radio:    IdealRadio(),
	}
	got, err := Compare(sc, SchemeDCF, SchemeRIPPLE)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Compare = %v", got)
	}
	if got["RIPPLE"].Total.Mean <= 0 || got["DCF"].Total.Mean <= 0 {
		t.Fatalf("Compare = %v", got)
	}
}

func TestSchemeLabels(t *testing.T) {
	want := map[Scheme]string{
		SchemeDCF: "DCF", SchemeAFR: "AFR", SchemePreExOR: "preExOR",
		SchemeMCExOR: "MCExOR", SchemeRIPPLE: "RIPPLE", SchemeRIPPLENoAgg: "RIPPLE-noagg",
	}
	for k, label := range want {
		if k.String() != label {
			t.Errorf("%d = %q, want %q", int(k), k.String(), label)
		}
	}
}

func TestTopologyConstructorsExposePaperLayouts(t *testing.T) {
	if got := len(Fig1Topology().Positions); got != 8 {
		t.Errorf("Fig1 stations = %d", got)
	}
	top, paths := RegularTopology(4)
	if len(paths) != 4 || len(top.Positions) != 16 {
		t.Errorf("Regular(4): %d stations, %d paths", len(top.Positions), len(paths))
	}
	_, main, hidden := HiddenTopology(3)
	if len(main) != 4 || len(hidden) != 3 {
		t.Errorf("Hidden(3): main %v, hidden %d", main, len(hidden))
	}
	wt, wf, hp := WigleTopology()
	if len(wt.Positions) != 10 || len(wf) != 8 || len(hp) != 2 {
		t.Errorf("Wigle: %d stations, %d flows, hidden %v", len(wt.Positions), len(wf), hp)
	}
	if len(RoofnetTopology().Positions) < 25 {
		t.Error("Roofnet too small")
	}
	r0 := Route0()
	if r0.Name != "ROUTE0" || len(r0.Flow1) != 4 {
		t.Errorf("Route0 = %+v", r0)
	}
}

func TestRadioProfiles(t *testing.T) {
	top, path := LineTopology(1)
	for _, r := range []Radio{{}, DefaultRadio(), HiddenRadio(), IdealRadio(),
		DefaultRadio().WithBER(1e-5), DefaultRadio().WithLowRatePHY()} {
		_, err := Run(Scenario{
			Topology: top,
			Scheme:   SchemeDCF,
			Radio:    r,
			Flows:    []Flow{{ID: 1, Path: path, Traffic: CBR{}}},
			Duration: 100 * Millisecond,
		})
		if err != nil {
			t.Errorf("radio %v: %v", r, err)
		}
	}
	for _, bad := range []float64{-1e-6, 1, 2} {
		if _, err := Run(Scenario{
			Topology: top,
			Scheme:   SchemeDCF,
			Radio:    DefaultRadio().WithBER(bad),
			Flows:    []Flow{{ID: 1, Path: path, Traffic: CBR{}}},
			Duration: 100 * Millisecond,
		}); err == nil {
			t.Errorf("BER %g must error", bad)
		}
	}
}

func TestRadioString(t *testing.T) {
	cases := map[string]Radio{
		"default":                  DefaultRadio(),
		"hidden":                   HiddenRadio(),
		"ideal":                    IdealRadio(),
		"default(ber=1e-05)":       DefaultRadio().WithBER(1e-5),
		"default(lowrate)":         DefaultRadio().WithLowRatePHY(),
		"ideal(ber=0.001,lowrate)": IdealRadio().WithBER(1e-3).WithLowRatePHY(),
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("Radio.String() = %q, want %q", got, want)
		}
	}
}
