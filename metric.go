package ripple

import (
	"fmt"

	"ripple/internal/network"
	"ripple/internal/stats"
)

// Metric is one measurement aggregated over a scenario's seeds. Every
// numeric field of Result and FlowResult is a Metric, so confidence
// intervals are available for delay, reordering, MoS and fairness exactly
// as they are for throughput.
type Metric struct {
	// Mean is the arithmetic mean over the seeds.
	Mean float64
	// CI95 is the 95% confidence half-width of Mean (Student t over the
	// seed samples; 0 with fewer than two seeds). Report Mean ± CI95.
	CI95 float64
	// Min and Max bound the per-seed samples.
	Min, Max float64
	// N is the number of seeds folded in.
	N int
}

// String renders the metric as "mean" or "mean ±ci95" when an interval
// is available.
func (m Metric) String() string {
	if m.N >= 2 {
		return fmt.Sprintf("%.3g ±%.2g", m.Mean, m.CI95)
	}
	return fmt.Sprintf("%.3g", m.Mean)
}

// newMetric converts a Welford summary into the public Metric.
func newMetric(s stats.Summary) Metric {
	return Metric{Mean: s.Mean, CI95: s.CI95, Min: s.Min, Max: s.Max, N: int(s.N)}
}

// foldMetric streams one scalar of every per-seed result (in seed order,
// so the numbers are deterministic) through a Welford accumulator.
func foldMetric(results []*network.Result, get func(*network.Result) float64) Metric {
	var w stats.Welford
	for _, r := range results {
		w.Add(get(r))
	}
	return newMetric(w.Summary())
}

// foldFlowMetric folds one scalar of flow i across the per-seed results.
func foldFlowMetric(results []*network.Result, i int, get func(network.FlowResult) float64) Metric {
	var w stats.Welford
	for _, r := range results {
		w.Add(get(r.Flows[i]))
	}
	return newMetric(w.Summary())
}
