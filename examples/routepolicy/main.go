// Routepolicy: the route-discovery metric as a first-class experiment axis.
// The paper fixes ETX for every scheme; the related work shows both the
// metric (Bhorkar et al., congestion-diversity routing) and the
// forwarder-list size (Blomer & Jindal, "how many relays should there
// be?") change opportunistic gains. This driver runs a policy × K campaign
// grid on the Fig. 1 topology: a VoIP call 0→3 whose minimum-ETX route
// transits station 1, an FTP transfer 0→4, and a hotspot FTP transfer
// *originating at station 1* — so ETX keeps the call on the congested
// relay while congestion diversity routes it around the hotspot's queue.
// Each cell reports throughput and VoIP quality, mean ± 95% CI over the
// seeds.
//
//	go run ./examples/routepolicy
package main

import (
	"fmt"
	"log"

	"ripple"
)

func main() {
	policies := []struct {
		label string
		r     ripple.Routing
	}{
		{"etx", ripple.ETXRouting()},
		{"congestion", ripple.CongestionRouting()},
	}
	ks := []int{0, 1, 2, 3} // 0 = the policy's own route length

	top := ripple.Fig1Topology()
	net, err := ripple.NewNet(top, ripple.DefaultRadio())
	if err != nil {
		log.Fatal(err)
	}

	// One scenario per (policy, K) cell, three seeds each; RunBatch
	// schedules every run on the shared bounded pool and folds each cell's
	// seeds into typed metrics.
	var scenarios []ripple.Scenario
	for _, pol := range policies {
		for _, k := range ks {
			routing := pol.r
			if k > 0 {
				routing = routing.WithForwarders(k)
			}
			sc := net.WithRouting(routing).Scenario(ripple.SchemeRIPPLE,
				net.FlowTo(0, 3, ripple.VoIP{}),
				net.FlowTo(0, 4, ripple.FTP{}),
				net.FlowTo(1, 7, ripple.FTP{}),
			)
			sc.Duration = 5 * ripple.Second
			sc.Seeds = []uint64{1, 2, 3}
			scenarios = append(scenarios, sc)
		}
	}

	results, err := ripple.RunBatch(ripple.Campaign{
		Scenarios: scenarios,
		Progress: func(done, total int) {
			fmt.Printf("\r%d/%d runs", done, total)
			if done == total {
				fmt.Println()
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RIPPLE on Fig.1, VoIP 0→3 + FTP 0→4 + hotspot FTP 1→7 (mean ±95% CI over 3 seeds):")
	i := 0
	for _, pol := range policies {
		fmt.Printf("\npolicy %s:\n", pol.label)
		fmt.Printf("  %-8s %-22s %-18s %s\n", "K", "total (Mbps)", "VoIP MoS", "VoIP delay (ms)")
		for _, k := range ks {
			res := results[i]
			i++
			voip := res.Flows[0]
			label := "free"
			if k > 0 {
				label = fmt.Sprintf("%d", k)
			}
			fmt.Printf("  %-8s %8.3f ±%-10.3f %5.2f ±%-9.2f %7.2f ±%.2f\n",
				label,
				res.Total.Mean, res.Total.CI95,
				voip.MoS.Mean, voip.MoS.CI95,
				voip.Delay.Mean, voip.Delay.CI95)
		}
	}
}
