// Quickstart: run one long-lived TCP flow over a lossy 3-hop wireless path
// and compare RIPPLE against plain 802.11 forwarding. Compare returns each
// scheme's full result, so throughput, delay and confidence intervals all
// come from one campaign.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ripple"
)

func main() {
	top, path := ripple.LineTopology(3)

	scenario := ripple.Scenario{
		Topology: top,
		Flows: []ripple.Flow{
			{Path: path, Traffic: ripple.FTP{}},
		},
		Duration: 5 * ripple.Second,
		Seeds:    []uint64{1, 2, 3},
	}

	results, err := ripple.Compare(scenario,
		ripple.SchemeDCF,         // "D": predetermined routing, plain DCF
		ripple.SchemeAFR,         // "A": single-hop aggregation
		ripple.SchemeRIPPLENoAgg, // "R1": mTXOP only
		ripple.SchemeRIPPLE,      // "R16": mTXOP + two-way aggregation
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("3-hop TCP transfer, shadowing channel (BER 1e-6):")
	for _, label := range []string{"DCF", "AFR", "RIPPLE-noagg", "RIPPLE"} {
		res := results[label]
		fmt.Printf("  %-14s %6.2f ±%.2f Mbps   delay %6.1f ms\n",
			label, res.Total.Mean, res.Total.CI95, res.Flows[0].Delay.Mean)
	}
}
