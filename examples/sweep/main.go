// Sweep: a parameter-sweep campaign over the API v2 surface — the style of
// question the opportunistic-routing literature keeps asking ("what rate
// should nodes use?"). A grid of CBR emission interval × channel BER over
// the 3-hop line topology runs as one campaign on the shared bounded pool;
// each cell reports mean ± 95% CI delay and throughput over its seeds.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"ripple"
)

func main() {
	intervals := []ripple.Time{ripple.Millisecond, 2 * ripple.Millisecond, 5 * ripple.Millisecond, 10 * ripple.Millisecond}
	bers := []float64{1e-6, 1e-5}

	top, path := ripple.LineTopology(3)

	// Build the grid: the cartesian product of the two axes, every cell a
	// scenario with three seeds. RunBatch schedules every (cell × seed)
	// run on one bounded worker pool and folds each cell's seeds into
	// typed metrics.
	var scenarios []ripple.Scenario
	for _, ber := range bers {
		for _, interval := range intervals {
			scenarios = append(scenarios, ripple.Scenario{
				Topology: top,
				Scheme:   ripple.SchemeRIPPLE,
				Radio:    ripple.DefaultRadio().WithBER(ber),
				Flows: []ripple.Flow{
					{Path: path, Traffic: ripple.CBR{Interval: interval}},
				},
				Duration: 2 * ripple.Second,
				Seeds:    []uint64{1, 2, 3},
			})
		}
	}

	results, err := ripple.RunBatch(ripple.Campaign{
		Scenarios: scenarios,
		Progress: func(done, total int) {
			fmt.Printf("\r%d/%d runs", done, total)
			if done == total {
				fmt.Println()
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("RIPPLE, 3-hop line, CBR pacing sweep (mean ±95% CI over 3 seeds):")
	i := 0
	for _, ber := range bers {
		fmt.Printf("\nBER %g:\n", ber)
		fmt.Printf("  %-10s %-22s %s\n", "interval", "throughput (Mbps)", "delay (ms)")
		for _, interval := range intervals {
			res := results[i]
			i++
			f := res.Flows[0]
			fmt.Printf("  %-10v %7.3f ±%-12.3f %7.2f ±%.2f\n",
				interval,
				res.Total.Mean, res.Total.CI95,
				f.Delay.Mean, f.Delay.CI95)
		}
	}
}
