// Sitesurvey: plan routes over a mesh deployment before running traffic.
// Uses the ETX router to inspect link qualities and pick paths over the
// Roofnet-like topology, then validates the chosen route with a short
// simulation and an airtime trace — the workflow a mesh operator would use
// with this library.
//
//	go run ./examples/sitesurvey
package main

import (
	"fmt"
	"log"
	"os"

	"ripple"
)

func main() {
	top := ripple.RoofnetTopology()
	router, err := ripple.NewRouter(top, ripple.RadioDefault)
	if err != nil {
		log.Fatal(err)
	}

	// Survey: candidate gateway pairs across the mesh.
	pairs := [][2]int{{0, 8}, {0, 12}, {0, 16}, {1, 21}}
	fmt.Println("ETX route survey:")
	var best ripple.Path
	bestETX := 1e18
	for _, pr := range pairs {
		path, err := router.Path(pr[0], pr[1])
		if err != nil {
			fmt.Printf("  %d→%d: unreachable (%v)\n", pr[0], pr[1], err)
			continue
		}
		etx := router.PathETX(path)
		fmt.Printf("  %d→%d: path %v, %d hops, ETX %.2f\n",
			pr[0], pr[1], path, len(path)-1, etx)
		for i := 0; i+1 < len(path); i++ {
			q := router.LinkQuality(path[i], path[i+1])
			fmt.Printf("      link %d→%d delivery %.1f%%\n", path[i], path[i+1], 100*q)
		}
		if etx < bestETX {
			bestETX, best = etx, path
		}
	}
	if best == nil {
		log.Fatal("no usable route found")
	}

	// Validate the best route with traffic and capture an airtime trace.
	traceFile, err := os.CreateTemp("", "sitesurvey-*.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(traceFile.Name())
	res, err := ripple.Run(ripple.Scenario{
		Topology:   top,
		Scheme:     ripple.SchemeRIPPLE,
		Flows:      []ripple.Flow{{ID: 1, Path: best, Traffic: ripple.TrafficFTP}},
		Duration:   2 * ripple.Second,
		TraceJSONL: traceFile,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidation run on %v: %.2f Mbps, channel busy %.0f%%\n",
		best, res.TotalMbps, 100*res.BusyFraction)
	fmt.Println("airtime per station:")
	for _, n := range best {
		fmt.Printf("  node %2d: %v\n", n, res.AirtimePerNode[n])
	}
	fmt.Printf("full trace written to %s (inspect with cmd/rippletrace)\n", traceFile.Name())
}
