// Sitesurvey: plan routes over a mesh deployment before running traffic.
// Builds a Net (topology + ETX router under one radio), inspects link
// qualities of candidate gateway pairs over the Roofnet-like topology,
// then validates the best pair with endpoint-declared flows and an airtime
// trace — the workflow a mesh operator would use with this library.
//
//	go run ./examples/sitesurvey
package main

import (
	"fmt"
	"log"
	"os"

	"ripple"
)

func main() {
	net, err := ripple.NewNet(ripple.RoofnetTopology(), ripple.DefaultRadio())
	if err != nil {
		log.Fatal(err)
	}
	router := net.Router()

	// Survey: candidate gateway pairs across the mesh.
	pairs := [][2]int{{0, 8}, {0, 12}, {0, 16}, {1, 21}}
	fmt.Println("ETX route survey:")
	best := [2]int{-1, -1}
	bestETX := 1e18
	for _, pr := range pairs {
		path, err := router.Path(pr[0], pr[1])
		if err != nil {
			fmt.Printf("  %d→%d: unreachable (%v)\n", pr[0], pr[1], err)
			continue
		}
		etx := router.PathETX(path)
		fmt.Printf("  %d→%d: path %v, %d hops, ETX %.2f\n",
			pr[0], pr[1], path, len(path)-1, etx)
		for i := 0; i+1 < len(path); i++ {
			q := router.LinkQuality(path[i], path[i+1])
			fmt.Printf("      link %d→%d delivery %.1f%%\n", path[i], path[i+1], 100*q)
		}
		if etx < bestETX {
			bestETX, best = etx, pr
		}
	}
	if best[0] < 0 {
		log.Fatal("no usable route found")
	}

	// Validate the best pair with traffic and capture an airtime trace. The
	// flow is declared by endpoints: the net computes the forwarder list.
	traceFile, err := os.CreateTemp("", "sitesurvey-*.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(traceFile.Name())
	flow := net.FlowTo(best[0], best[1], ripple.FTP{})
	sc := net.Scenario(ripple.SchemeRIPPLE, flow)
	sc.Duration = 2 * ripple.Second
	sc.TraceJSONL = traceFile
	res, err := ripple.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	route := flow.Path
	fmt.Printf("\nvalidation run on %v: %.2f Mbps, channel busy %.0f%%\n",
		route, res.Total.Mean, 100*res.BusyFraction)
	fmt.Println("airtime per station:")
	for _, n := range route {
		fmt.Printf("  node %2d: %v\n", n, res.AirtimePerNode[n])
	}
	fmt.Printf("full trace written to %s (inspect with cmd/rippletrace)\n", traceFile.Name())
}
