// Meshbackhaul: the paper's motivating mesh scenario — several TCP flows
// crossing a wireless mesh (the Fig. 1 topology with the Table II ROUTE0
// routes), where intermediate stations forward each other's traffic toward
// gateways. Shows per-flow fairness and the total-capacity gain of RIPPLE's
// mTXOP + aggregation over contention-per-hop schemes.
//
//	go run ./examples/meshbackhaul
package main

import (
	"fmt"
	"log"

	"ripple"
)

func main() {
	top := ripple.Fig1Topology()
	routes := ripple.Route0()

	scenario := ripple.Scenario{
		Topology: top,
		Flows: []ripple.Flow{
			{ID: 1, Path: routes.Flow1, Traffic: ripple.FTP{}},
			{ID: 2, Path: routes.Flow2, Traffic: ripple.FTP{}, Start: 100 * ripple.Millisecond},
			{ID: 3, Path: routes.Flow3, Traffic: ripple.FTP{}, Start: 200 * ripple.Millisecond},
		},
		Duration: 5 * ripple.Second,
		Seeds:    []uint64{1, 2, 3},
	}

	for _, scheme := range []ripple.Scheme{ripple.SchemeDCF, ripple.SchemeAFR, ripple.SchemeRIPPLE} {
		sc := scenario
		sc.Scheme = scheme
		res, err := ripple.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: total %v Mbps, fairness %.3f\n", scheme, res.Total, res.Fairness.Mean)
		for _, f := range res.Flows {
			fmt.Printf("  flow %d: %6.2f Mbps, mean delay %.1f ms, reorder %.2f%%\n",
				f.ID, f.Throughput.Mean, f.Delay.Mean, 100*f.Reorder.Mean)
		}
	}
}
