// Webworkload: interactive web browsing over a wireless mesh (the §IV-D
// setting) — thirty short TCP connections with Pareto-distributed transfer
// sizes (mean 80 KB) and one-second think times. Short transfers never
// leave slow start, so per-packet signalling overhead dominates; the
// example reports completed transfers and total goodput per scheme.
//
//	go run ./examples/webworkload
package main

import (
	"fmt"
	"log"

	"ripple"
)

func main() {
	top := ripple.Fig1Topology()
	routes := ripple.Route0()

	var flows []ripple.Flow
	id := 1
	for _, p := range []ripple.Path{routes.Flow1, routes.Flow2, routes.Flow3} {
		for k := 0; k < 10; k++ {
			flows = append(flows, ripple.Flow{
				ID:      id,
				Path:    p,
				Traffic: ripple.TrafficWeb,
				Start:   ripple.Time(k) * 20 * ripple.Millisecond,
			})
			id++
		}
	}

	scenario := ripple.Scenario{
		Topology: top,
		Flows:    flows,
		Duration: 10 * ripple.Second,
		Seeds:    []uint64{1, 2},
	}

	fmt.Println("30 web-browsing connections (Pareto 80 KB transfers):")
	for _, scheme := range []ripple.Scheme{ripple.SchemeDCF, ripple.SchemeAFR, ripple.SchemeRIPPLE} {
		sc := scenario
		sc.Scheme = scheme
		res, err := ripple.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		var transfers int64
		for _, f := range res.Flows {
			transfers += f.Transfers
		}
		fmt.Printf("  %-8s total %6.2f Mbps, %d transfers completed\n",
			scheme, res.TotalMbps, transfers)
	}
}
