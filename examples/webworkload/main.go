// Webworkload: interactive web browsing over a wireless mesh (the §IV-D
// setting) — thirty short TCP connections with Pareto-distributed transfer
// sizes and exponential think times, both tuned through the public Web
// traffic spec. Short transfers never leave slow start, so per-packet
// signalling overhead dominates; the example reports completed transfers
// and total goodput per scheme.
//
//	go run ./examples/webworkload
package main

import (
	"fmt"
	"log"

	"ripple"
)

func main() {
	top := ripple.Fig1Topology()
	routes := ripple.Route0()

	// The workload knobs are public API v2 fields: halve the paper's 80 KB
	// mean transfer and think for half a second between clicks.
	browse := ripple.Web{
		MeanTransferBytes: 40e3,
		MeanOffTime:       500 * ripple.Millisecond,
	}

	var flows []ripple.Flow
	for _, p := range []ripple.Path{routes.Flow1, routes.Flow2, routes.Flow3} {
		for k := 0; k < 10; k++ {
			flows = append(flows, ripple.Flow{
				Path:    p,
				Traffic: browse,
				Start:   ripple.Time(k) * 20 * ripple.Millisecond,
			})
		}
	}

	scenario := ripple.Scenario{
		Topology: top,
		Flows:    flows,
		Duration: 10 * ripple.Second,
		Seeds:    []uint64{1, 2},
	}

	fmt.Println("30 web-browsing connections (Pareto 40 KB transfers):")
	for _, scheme := range []ripple.Scheme{ripple.SchemeDCF, ripple.SchemeAFR, ripple.SchemeRIPPLE} {
		sc := scenario
		sc.Scheme = scheme
		res, err := ripple.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		var transfers float64
		for _, f := range res.Flows {
			transfers += f.Transfers.Mean
		}
		fmt.Printf("  %-8s total %6.2f ±%.2f Mbps, %.0f transfers completed\n",
			scheme, res.Total.Mean, res.Total.CI95, transfers)
	}
}
