// Voipwlan: voice calls over a lossy 6 Mbps wireless mesh (the Table III
// setting). Thirty 96 kbps on-off calls share the Fig. 1 topology; call
// quality is scored with the paper's R-factor → Mean Opinion Score model
// (>4 good, <2 unusable). RIPPLE keeps MoS up under load where per-hop
// contention schemes collapse.
//
//	go run ./examples/voipwlan
package main

import (
	"fmt"
	"log"

	"ripple"
)

func main() {
	top := ripple.Fig1Topology()
	routes := ripple.Route0()

	var flows []ripple.Flow
	pairs := []ripple.Path{routes.Flow1, routes.Flow2, routes.Flow3}
	id := 1
	for _, p := range pairs {
		for k := 0; k < 10; k++ {
			flows = append(flows, ripple.Flow{
				ID:      id,
				Path:    p,
				Traffic: ripple.TrafficVoIP,
				Start:   ripple.Time(k) * 30 * ripple.Millisecond,
			})
			id++
		}
	}

	scenario := ripple.Scenario{
		Topology:     top,
		Flows:        flows,
		Duration:     10 * ripple.Second,
		Seeds:        []uint64{1, 2},
		LowRatePHY:   true, // both PHY rates 6 Mbps, as in Table III
		BitErrorRate: 1e-6,
	}

	fmt.Println("30 VoIP calls on a 6 Mbps mesh:")
	for _, scheme := range []ripple.Scheme{ripple.SchemeDCF, ripple.SchemeAFR, ripple.SchemeRIPPLE} {
		sc := scenario
		sc.Scheme = scheme
		res, err := ripple.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		var mos, loss float64
		for _, f := range res.Flows {
			mos += f.MoS
			loss += f.LossRate
		}
		n := float64(len(res.Flows))
		fmt.Printf("  %-8s mean MoS %.2f, mean loss %.1f%%\n", scheme, mos/n, 100*loss/n)
	}
}
