// Voipwlan: voice calls over a lossy 6 Mbps wireless mesh (the Table III
// setting). Thirty 96 kbps on-off calls share the Fig. 1 topology; call
// quality is scored with the paper's R-factor → Mean Opinion Score model
// (>4 good, <2 unusable). RIPPLE keeps MoS up under load where per-hop
// contention schemes collapse.
//
//	go run ./examples/voipwlan
package main

import (
	"fmt"
	"log"

	"ripple"
)

func main() {
	top := ripple.Fig1Topology()
	routes := ripple.Route0()

	// A 64 kbps call with a 30 ms packetisation cadence — the codec knobs
	// are public API v2 fields (zero values keep the paper's 96 kbps/20 ms).
	call := ripple.VoIP{BitrateKbps: 64, PacketInterval: 30 * ripple.Millisecond}

	var flows []ripple.Flow
	pairs := []ripple.Path{routes.Flow1, routes.Flow2, routes.Flow3}
	for _, p := range pairs {
		for k := 0; k < 10; k++ {
			flows = append(flows, ripple.Flow{
				Path:    p,
				Traffic: call,
				Start:   ripple.Time(k) * 30 * ripple.Millisecond,
			})
		}
	}

	scenario := ripple.Scenario{
		Topology: top,
		Flows:    flows,
		Duration: 10 * ripple.Second,
		Seeds:    []uint64{1, 2},
		// Both PHY rates 6 Mbps, as in Table III, on the clear channel.
		Radio: ripple.DefaultRadio().WithLowRatePHY().WithBER(1e-6),
	}

	fmt.Println("30 VoIP calls (64 kbps codec) on a 6 Mbps mesh:")
	for _, scheme := range []ripple.Scheme{ripple.SchemeDCF, ripple.SchemeAFR, ripple.SchemeRIPPLE} {
		sc := scenario
		sc.Scheme = scheme
		res, err := ripple.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		var mos, loss float64
		for _, f := range res.Flows {
			mos += f.MoS.Mean
			loss += f.Loss.Mean
		}
		n := float64(len(res.Flows))
		fmt.Printf("  %-8s mean MoS %.2f, mean loss %.1f%%\n", scheme, mos/n, 100*loss/n)
	}
}
