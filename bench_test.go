package ripple

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`). Each benchmark executes
// the corresponding experiment end to end per iteration (short runs, one
// seed) and reports headline metrics via b.ReportMetric so regression in
// either speed or *result shape* is visible. The cmd/experiments binary
// runs the same code with the paper's full 10-second, multi-seed settings.

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"ripple/internal/campaign/pool"
	"ripple/internal/experiments"
	"ripple/internal/network"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// benchOpt is the per-iteration budget for macro-benchmarks. Under -short
// (the CI bench smoke step) the simulated duration shrinks so every
// benchmark can run once quickly while still exercising the full
// pool/fold path.
func benchOpt() experiments.Options {
	opt := experiments.Options{Seeds: []uint64{1}, Duration: sim.Second}
	if testing.Short() {
		opt.Duration = 100 * sim.Millisecond
	}
	return opt
}

// reportCells publishes selected table cells as benchmark metrics.
func reportCells(b *testing.B, t *experiments.Table, row string, cols ...string) {
	b.Helper()
	for _, c := range cols {
		if v, ok := t.Cell(row, c); ok {
			b.ReportMetric(v, metricName(c+"_"+t.MetricUnit()))
		}
	}
}

// metricName strips characters ReportMetric rejects.
func metricName(s string) string {
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "%", "pct")
	s = strings.ReplaceAll(s, "..", "_")
	s = strings.ReplaceAll(s, "/", "_")
	s = strings.ReplaceAll(s, "(", "")
	s = strings.ReplaceAll(s, ")", "")
	return s
}

func BenchmarkMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Motivation(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "preExOR", "reorder %")
			reportCells(b, tab, "SPR", "Mbps")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Fig3(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tabs[0], "1 flow(s)", "D", "A", "R16")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Fig4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tabs[0], "1 flow(s)", "D", "R16")
		}
	}
}

func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig6a(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "10 flows", "DCF", "RIPPLE")
		}
	}
}

func BenchmarkFig6b(b *testing.B) {
	opt := benchOpt()
	opt.Duration = 700 * sim.Millisecond // saturated hidden flows are event-heavy
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig6b(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "0 hidden", "RIPPLE")
			reportCells(b, tab, "9 hidden", "RIPPLE", "DCF")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Fig7(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tabs[0], "7 hops", "DCF", "RIPPLE")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig8(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "flows 1..30", "DCF", "RIPPLE")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	opt := benchOpt()
	opt.Duration = 2 * sim.Second // VoIP on-off needs a few cycles
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table3(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "RIPPLE", "1e-06/1..30")
			reportCells(b, tab, "DCF", "1e-06/1..30")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Fig10(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tabs[2], "1-4-6-8", "DCF", "RIPPLE")
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Fig12(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tabs[2], "5(1)", "DCF", "RIPPLE")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

func BenchmarkAblationAggLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationAggLimit(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "agg=1", "R")
			reportCells(b, tab, "agg=16", "R")
		}
	}
}

func BenchmarkAblationForwarders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationForwarders(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "maxfwd=2", "R")
			reportCells(b, tab, "maxfwd=6", "R")
		}
	}
}

func BenchmarkAblationRq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationRq(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "Rq off", "reorder %")
			reportCells(b, tab, "Rq on", "Mbps")
		}
	}
}

func BenchmarkAblationTwoWay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationTwoWay(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "two-way", "R")
			reportCells(b, tab, "one-way", "R")
		}
	}
}

func BenchmarkAblationRelayDefer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationRelayDefer(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "4 hidden", "defer", "strict")
		}
	}
}

func BenchmarkAblationMultiRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationMultiRate(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "multi-rate", "RIPPLE")
			reportCells(b, tab, "fixed 6 Mbps", "RIPPLE")
		}
	}
}

func BenchmarkAblationRTS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationRTS(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, tab, "6 hidden", "DCF", "DCF+RTS", "RIPPLE")
		}
	}
}

// --- Campaign pool benches ---

// benchCampaignSuite runs the full figure suite (every driver, every cell)
// through a pool of the given size on a short per-run budget. Completed
// seed-runs are counted through the serialized Progress callback and
// reported as runs/sec, so setup amortisation (world snapshots shared
// across each cell's seeds) is visible in the bench JSON, not just ns/op.
func benchCampaignSuite(b *testing.B, workers int) {
	runs := 0
	opt := experiments.Options{
		Seeds:    []uint64{1, 2, 3},
		Duration: 150 * sim.Millisecond,
		Pool:     pool.New(workers),
		Progress: func(done, total int) { runs++ },
	}
	if testing.Short() {
		opt.Duration = 50 * sim.Millisecond
	}
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.All() {
			if _, err := r.Run(opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(runs)/secs, "runs/sec")
	}
}

// BenchmarkCampaignSuitePooled is the campaign engine as shipped: every
// cell of every experiment drains through one GOMAXPROCS-sized pool, so
// scheme columns and rows of the same figure overlap.
func BenchmarkCampaignSuitePooled(b *testing.B) {
	benchCampaignSuite(b, runtime.GOMAXPROCS(0))
}

// BenchmarkCampaignSuiteSeedFanout approximates the seed repo's schedule
// for comparison: RunSeeds fanned out one goroutine per seed inside each
// cell but cells ran strictly one after another, so concurrency never
// exceeded the seed count. A seed-count-wide pool reproduces that width
// (though not the per-cell barriers, which idled cores at every cell
// boundary — so this baseline is, if anything, faster than the true old
// schedule and the comparison understates the pooled engine's gain).
func BenchmarkCampaignSuiteSeedFanout(b *testing.B) {
	benchCampaignSuite(b, 3) // = len(Seeds), the old per-call fan-out width
}

// worldConfig builds a routing-active scenario over n stations laid out on
// a line at relay spacing, so BuildWorld exercises both the O(N²) radio
// link plan and the ETX table + per-flow Dijkstra.
func worldConfig(n int) network.Config {
	top, path := topology.Line(n - 1)
	return network.Config{
		Positions: top.Positions,
		Scheme:    network.Ripple,
		Flows: []network.FlowSpec{{
			ID:   1,
			Path: routing.Path{path.Src(), path.Dst()},
			Kind: network.FTP,
		}},
		Routing: network.RoutingSpec{Kind: network.RouteETX},
	}
}

// benchWorldBuild measures snapshot construction alone.
func benchWorldBuild(b *testing.B, cfg network.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := network.BuildWorld(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldBuildFig1 builds the snapshot for a Fig.1-sized topology
// (8 stations): the per-cell cost every campaign cell pays exactly once.
func BenchmarkWorldBuildFig1(b *testing.B) {
	benchWorldBuild(b, worldConfig(len(topology.Fig1().Positions)))
}

// BenchmarkWorldBuildLarge builds the snapshot for a topology 5× the size
// of Fig.1 (40 stations), where the O(N²) matrices and Dijkstra dominate.
func BenchmarkWorldBuildLarge(b *testing.B) {
	benchWorldBuild(b, worldConfig(5*len(topology.Fig1().Positions)))
}

// cityBuildConfig is a 5 000-station city with one ETX-routed flow — just
// enough routing to exercise the table without per-flow Dijkstra noise
// drowning the plan-construction signal.
func cityBuildConfig(pruneSigma float64) network.Config {
	top, _ := topology.CityN(5000, 7)
	rc := topology.CityRadio()
	rc.PruneSigma = pruneSigma
	return network.Config{
		Positions: top.Positions,
		Radio:     rc,
		Scheme:    network.Ripple,
		Flows: []network.FlowSpec{{
			ID:   1,
			Path: routing.Path{0, 5}, // 5 blocks along the first row: multi-hop
			Kind: network.CBRTraffic,
		}},
		Routing: network.RoutingSpec{Kind: network.RouteETX},
	}
}

// BenchmarkWorldBuildCity builds the sparse city snapshot (grid-indexed
// link plan + adjacency ETX table) at N=5000 — the configuration the
// -scaling sweep runs. Compare against BenchmarkWorldBuildCityDense for
// the O(N²)→O(N·k) win in both ns/op and B/op.
func BenchmarkWorldBuildCity(b *testing.B) {
	benchWorldBuild(b, cityBuildConfig(topology.CityPruneSigma))
}

// BenchmarkWorldBuildCityDense is the dense baseline: the identical city
// with pruning off, paying the full N² link plan and ETX matrix.
func BenchmarkWorldBuildCityDense(b *testing.B) {
	benchWorldBuild(b, cityBuildConfig(0))
}

// BenchmarkEpochRebuildCity measures what an epoch boundary costs relative
// to building the 5 000-station city snapshot from scratch. Each iteration
// times the static build, then the same build with Markov mobility (high
// stay probability — the sparse-patch sweet spot) deriving 9 epoch worlds
// incrementally; per-epoch cost is the difference divided by the epoch
// count. The speedup_x metric (scratch ÷ per-epoch) is the incremental
// path's reason to exist and gates at ≥5× in scripts/bench_thresholds.txt.
func BenchmarkEpochRebuildCity(b *testing.B) {
	static := cityBuildConfig(topology.CityPruneSigma)
	static.Duration = 5 * sim.Second
	mobile := static
	mobile.Mobility = network.MobilitySpec{Kind: network.MobilityMarkov, Stay: 0.998}
	epochs := int((mobile.Duration - 1) / network.DefaultMobilityEpoch)
	// Untimed warmup: the first build of the session pays page faults and
	// heap growth that would otherwise swamp a -benchtime 1x ratio.
	if _, err := network.BuildWorld(mobile); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	// The epoch cost is the difference of two large timings, so each
	// iteration takes the minimum of three alternating pairs — the standard
	// noise-robust estimator for a duration (scheduler noise only ever adds
	// time).
	tStatic, tMobile := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < b.N; i++ {
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := network.BuildWorld(static); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(start); d < tStatic {
				tStatic = d
			}
			start = time.Now()
			w, err := network.BuildWorld(mobile)
			if err != nil {
				b.Fatal(err)
			}
			if d := time.Since(start); d < tMobile {
				tMobile = d
			}
			if w.Epochs() != epochs {
				b.Fatalf("got %d epochs, want %d", w.Epochs(), epochs)
			}
		}
	}
	perEpoch := (tMobile - tStatic).Seconds() / float64(epochs)
	scratch := tStatic.Seconds()
	if perEpoch <= 0 {
		// Timer noise swallowed the epoch cost entirely; report the cap
		// rather than a nonsensical negative ratio.
		perEpoch = scratch / 1000
	}
	b.ReportMetric(scratch/perEpoch, "speedup_x")
	b.ReportMetric(perEpoch*1e9, "epoch_ns")
}

// BenchmarkEpochWorldMobile1k builds a mobile 1 000-station city world —
// base snapshot plus all epoch derivations. Its B/op gate in
// scripts/bench_thresholds.txt is the alloc-counting guard that epoch
// rebuilds stay on the sparse constructors: one dense N×N fallback per
// epoch would blow through it immediately.
func BenchmarkEpochWorldMobile1k(b *testing.B) {
	top, _ := topology.CityN(1000, 3)
	cfg := network.Config{
		Positions: top.Positions,
		Radio:     topology.CityRadio(),
		Scheme:    network.Ripple,
		Flows: []network.FlowSpec{{
			ID:   1,
			Path: routing.Path{0, 5},
			Kind: network.CBRTraffic,
		}},
		Routing:  network.RoutingSpec{Kind: network.RouteETX},
		Mobility: network.MobilitySpec{Kind: network.MobilityMarkov, Stay: 0.95},
		Duration: 5 * sim.Second,
	}
	for i := 0; i < b.N; i++ {
		if _, err := network.BuildWorld(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput is a micro-benchmark of the simulation core:
// events processed per wall second for a saturated RIPPLE run.
func BenchmarkEngineThroughput(b *testing.B) {
	top, path := LineTopology(3)
	var events float64
	for i := 0; i < b.N; i++ {
		res, err := Run(Scenario{
			Topology: top,
			Scheme:   SchemeRIPPLE,
			Flows:    []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
			Duration: Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events.Mean
	}
	b.ReportMetric(events/float64(b.N), "events/run")
}
